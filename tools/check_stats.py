#!/usr/bin/env python3
"""CI validator for a merged telemetry timeline (tools/px_stats.py output).

Checks that the stats pipeline produced something physically plausible,
not merely well-formed JSON:

  * every series' timestamps are strictly increasing (the sampler ticks
    monotonically; a merge that scrambled clocks or rings shows up here);
  * every rank present contributed at least `--min-ranks` shards;
  * each rank took at least `--min-ticks` sampler ticks;
  * the derived machine-wide parcel rate is nonzero, and (for a
    distributed run) more than one rank delivered parcels — this is the
    cross-rank liveness check: a storm over tcp/shm must move parcels on
    every participating rank;
  * each delivering rank reports a nonzero p99 send->dispatch latency
    (the histogram instrumentation actually observed parcels).

Prints each problem as `ERROR: ...` on stderr and exits 1 if any;
exits 2 on usage/IO errors.  Stdlib only.

  python3 tools/check_stats.py stats.json --min-ranks 4 --min-ticks 3
"""

import argparse
import json
import sys


def check(merged, min_ranks, min_ticks):
    errors = []

    ranks = merged.get("ranks", [])
    if len(ranks) < min_ranks:
        errors.append(
            f"expected >= {min_ranks} rank shard(s), found {len(ranks)}")
    for r in ranks:
        if r.get("ticks", 0) < min_ticks:
            errors.append(
                f"rank {r.get('rank')}: only {r.get('ticks', 0)} sampler "
                f"tick(s), expected >= {min_ticks}")

    series = merged.get("series", [])
    if not series:
        errors.append("no series in merged timeline")
    for s in series:
        pts = s.get("points", [])
        label = f"rank {s.get('rank')} series {s.get('path')}"
        for i in range(1, len(pts)):
            if pts[i][0] <= pts[i - 1][0]:
                errors.append(
                    f"{label}: non-monotone timestamps at point {i} "
                    f"({pts[i - 1][0]} -> {pts[i][0]})")
                break

    derived = merged.get("derived", {})
    rate = derived.get("parcel_rate_per_sec", 0.0)
    if rate <= 0.0:
        errors.append(f"machine-wide parcel rate is {rate}, expected > 0")
    per_rank = derived.get("parcel_rate_per_rank", {})
    delivering = [r for r, v in per_rank.items() if v > 0.0]
    if min_ranks > 1 and len(delivering) < 2:
        errors.append(
            f"parcels delivered on {len(delivering)} rank(s) "
            f"({sorted(delivering)}); a distributed run must deliver "
            "on >= 2 ranks")
    p99 = derived.get("p99_dispatch_ns_per_rank", {})
    for r in delivering:
        if p99.get(r, 0) <= 0:
            errors.append(
                f"rank {r} delivered parcels but reports no p99 "
                "dispatch latency")

    return errors


def main(argv):
    ap = argparse.ArgumentParser(
        description="validate a merged px_stats timeline")
    ap.add_argument("merged", help="px_stats.py output JSON")
    ap.add_argument("--min-ranks", type=int, default=1,
                    help="minimum rank shards expected (default 1)")
    ap.add_argument("--min-ticks", type=int, default=2,
                    help="minimum sampler ticks per rank (default 2)")
    args = ap.parse_args(argv)

    try:
        with open(args.merged, "r", encoding="utf-8") as f:
            merged = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"ERROR: {args.merged}: {e}", file=sys.stderr)
        return 2

    errors = check(merged, args.min_ranks, args.min_ticks)
    if errors:
        for e in errors:
            print(f"ERROR: {e}", file=sys.stderr)
        return 1

    d = merged.get("derived", {})
    print(f"ok: {len(merged.get('ranks', []))} rank(s), "
          f"{len(merged.get('series', []))} series, "
          f"parcel rate {d.get('parcel_rate_per_sec', 0.0):.1f}/s")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
