#!/usr/bin/env python3
"""Intra-repo markdown link checker.

Walks README.md and docs/*.md, extracts [text](target) links, and fails
on any relative target that does not resolve to a file in the repository
(anchors are checked against the target file's headings).  External
links (scheme://) are ignored — CI must not depend on the network.

Usage: python3 tools/check_links.py [repo-root]
"""

import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#+\s+(.*)$", re.M)
# Inline code/fences can contain pseudo-links; strip them first.
CODE_RE = re.compile(r"```.*?```|`[^`]*`", re.S)


def slugify(heading: str) -> str:
    """GitHub-style anchor slug (close enough for ASCII headings)."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def headings_of(path: str) -> set[str]:
    with open(path, encoding="utf-8") as f:
        text = CODE_RE.sub("", f.read())
    return {slugify(h) for h in HEADING_RE.findall(text)}


def check_file(md_path: str, root: str) -> list[str]:
    errors = []
    with open(md_path, encoding="utf-8") as f:
        text = CODE_RE.sub("", f.read())
    base = os.path.dirname(md_path)
    for target in LINK_RE.findall(text):
        if "://" in target or target.startswith("mailto:"):
            continue
        path_part, _, anchor = target.partition("#")
        if path_part:
            resolved = os.path.normpath(os.path.join(base, path_part))
            if not os.path.exists(resolved):
                errors.append(f"{os.path.relpath(md_path, root)}: broken "
                              f"link target '{target}'")
                continue
        else:
            resolved = md_path  # pure-anchor link into this file
        if anchor and resolved.endswith(".md"):
            if anchor not in headings_of(resolved):
                errors.append(f"{os.path.relpath(md_path, root)}: anchor "
                              f"'#{anchor}' not found in "
                              f"{os.path.relpath(resolved, root)}")
    return errors


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    files = [os.path.join(root, "README.md")]
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        files += sorted(
            os.path.join(docs, f) for f in os.listdir(docs)
            if f.endswith(".md"))
    errors = []
    checked = 0
    for md in files:
        if not os.path.exists(md):
            errors.append(f"missing expected file: {os.path.relpath(md, root)}")
            continue
        errors += check_file(md, root)
        checked += 1
    for e in errors:
        print(f"ERROR: {e}", file=sys.stderr)
    print(f"checked {checked} files, {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
