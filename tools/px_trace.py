#!/usr/bin/env python3
"""Merge flight-recorder shards into Chrome trace_event JSON for Perfetto.

Each rank of a traced run (PX_TRACE=1, see docs/tracing.md) writes a
binary shard `px_trace.<rank>.bin` at shutdown.  This tool merges any
number of shards into one `{"traceEvents": [...]}` JSON loadable in
https://ui.perfetto.dev or chrome://tracing:

  * one process per rank, one thread track per event ring (worker,
    transport progress thread, main);
  * `X` duration slices for fiber executions (fiber_start up to the next
    fiber_{end,suspend,yield} on the same ring);
  * instant events for everything else;
  * `s`/`f` flow arrows joining each parcel_send to the parcel_dispatch
    that shares its (trace id, span id) key — across ranks, this draws
    the causal chain of a request through the machine;
  * per-rank timestamps normalized onto rank 0's clock via the bootstrap
    clock-sync offset stamped in each shard;
  * the shard's counter-delta trailer, attached as process metadata.

Stdlib only.  Usage:

  python3 tools/px_trace.py trace/px_trace.*.bin -o trace.json
"""

import argparse
import json
import struct
import sys

SHARD_MAGIC = 0x52545850  # "PXTR"
SHARD_VERSION = 1
EVENT_STRUCT = struct.Struct("<qQQQQII")  # ts, trace, span, parent, data,
                                          # kind, arg — 48 bytes

KIND_NAMES = {
    0: "none",
    1: "fiber_spawn",
    2: "fiber_start",
    3: "fiber_suspend",
    4: "fiber_resume",
    5: "fiber_yield",
    6: "fiber_end",
    7: "parcel_send",
    8: "parcel_enqueue",
    9: "wire_tx",
    10: "wire_rx",
    11: "parcel_dispatch",
    12: "lco_wait",
    13: "lco_fire",
    14: "migrate_begin",
    15: "migrate_implant",
    16: "migrate_end",
}
FIBER_SLICE_END = {"fiber_end", "fiber_suspend", "fiber_yield"}


class ShardError(Exception):
    pass


def parse_shard(path):
    """Returns (rank, clock_offset_ns, rings, counter_deltas).

    rings is {ring_id: [event dict, ...]}; an event dict has ts (ns,
    already offset-normalized onto rank 0's clock), trace, span, parent,
    data, kind (name string), arg.
    """
    with open(path, "rb") as f:
        blob = f.read()
    if len(blob) < 24:
        raise ShardError(f"{path}: truncated header")
    magic, version, rank, nrings = struct.unpack_from("<IIII", blob, 0)
    (clock_offset_ns,) = struct.unpack_from("<q", blob, 16)
    if magic != SHARD_MAGIC:
        raise ShardError(f"{path}: bad magic 0x{magic:08x}")
    if version != SHARD_VERSION:
        raise ShardError(f"{path}: unsupported shard version {version}")
    off = 24
    rings = {}
    for _ in range(nrings):
        if off + 16 > len(blob):
            raise ShardError(f"{path}: truncated ring header")
        ring_id, _reserved, count = struct.unpack_from("<IIQ", blob, off)
        off += 16
        need = count * EVENT_STRUCT.size
        if off + need > len(blob):
            raise ShardError(f"{path}: ring {ring_id} truncated "
                             f"({count} events claimed)")
        events = []
        for _ in range(count):
            ts, trace, span, parent, data, kind, arg = \
                EVENT_STRUCT.unpack_from(blob, off)
            off += EVENT_STRUCT.size
            events.append({
                "ts": ts - clock_offset_ns,
                "trace": trace,
                "span": span,
                "parent": parent,
                "data": data,
                "kind": KIND_NAMES.get(kind, f"kind{kind}"),
                "arg": arg,
            })
        rings[ring_id] = events
    if off + 4 > len(blob):
        raise ShardError(f"{path}: missing counter trailer")
    (ntrailer,) = struct.unpack_from("<I", blob, off)
    off += 4
    deltas = {}
    for _ in range(ntrailer):
        if off + 4 > len(blob):
            raise ShardError(f"{path}: truncated trailer entry")
        (plen,) = struct.unpack_from("<I", blob, off)
        off += 4
        if off + plen + 8 > len(blob):
            raise ShardError(f"{path}: truncated trailer entry")
        cpath = blob[off:off + plen].decode("utf-8", "replace")
        off += plen
        (delta,) = struct.unpack_from("<q", blob, off)
        off += 8
        deltas[cpath] = delta
    if off != len(blob):
        raise ShardError(f"{path}: {len(blob) - off} trailing bytes")
    return rank, clock_offset_ns, rings, deltas


def fiber_slices(events):
    """Pairs fiber_start with the next slice-ending event on one ring.

    Returns (slices, leftovers): slices as (start_ev, end_ev) tuples,
    leftovers the events not consumed into a slice.
    """
    slices = []
    leftovers = []
    open_start = None
    for ev in events:
        if ev["kind"] == "fiber_start":
            if open_start is not None:
                leftovers.append(open_start)  # unterminated (ring drop)
            open_start = ev
        elif ev["kind"] in FIBER_SLICE_END and open_start is not None \
                and ev["data"] == open_start["data"]:
            slices.append((open_start, ev))
            open_start = None
        else:
            leftovers.append(ev)
    if open_start is not None:
        leftovers.append(open_start)
    return slices, leftovers


def emit_trace_events(shards):
    """Builds the traceEvents list from {rank: (offset, rings, deltas)}."""
    out = []
    sends = {}       # (trace, span) -> send event ref
    dispatches = {}  # (trace, span) -> dispatch event ref
    for rank in sorted(shards):
        _offset, rings, deltas = shards[rank]
        out.append({
            "ph": "M", "name": "process_name", "pid": rank, "tid": 0,
            "args": {"name": f"rank {rank}"},
        })
        if deltas:
            out.append({
                "ph": "M", "name": "process_labels", "pid": rank, "tid": 0,
                "args": {"labels": json.dumps(
                    {k: v for k, v in sorted(deltas.items()) if v != 0})},
            })
        for ring_id in sorted(rings):
            out.append({
                "ph": "M", "name": "thread_name", "pid": rank,
                "tid": ring_id, "args": {"name": f"ring {ring_id}"},
            })
            slices, rest = fiber_slices(rings[ring_id])
            for start, end in slices:
                out.append({
                    "ph": "X", "name": f"fiber {start['data']}",
                    "cat": "fiber", "pid": rank, "tid": ring_id,
                    "ts": start["ts"] / 1000.0,
                    "dur": max((end["ts"] - start["ts"]) / 1000.0, 0.001),
                    "args": {"trace": str(start["trace"]),
                             "span": str(start["span"])},
                })
            for ev in rest:
                record = {
                    "ph": "i", "s": "t", "name": ev["kind"],
                    "cat": ev["kind"].split("_")[0], "pid": rank,
                    "tid": ring_id, "ts": ev["ts"] / 1000.0,
                    "args": {"trace": str(ev["trace"]),
                             "span": str(ev["span"]),
                             "data": str(ev["data"]), "arg": ev["arg"]},
                }
                out.append(record)
                key = (ev["trace"], ev["span"])
                if ev["trace"] != 0:
                    if ev["kind"] == "parcel_send":
                        sends[key] = record
                    elif ev["kind"] == "parcel_dispatch":
                        dispatches.setdefault(key, record)
    # Flow arrows: one s/f pair per matched send -> dispatch key.  The
    # flow id must be unique per arrow; the span id already is.
    for key, send in sorted(sends.items()):
        disp = dispatches.get(key)
        if disp is None:
            continue
        trace, span = key
        for phase, ref in (("s", send), ("f", disp)):
            arrow = {
                "ph": phase, "name": "parcel", "cat": "parcel",
                "id": f"{trace:x}.{span:x}", "pid": ref["pid"],
                "tid": ref["tid"], "ts": ref["ts"],
            }
            if phase == "f":
                arrow["bp"] = "e"  # bind to enclosing slice when present
            out.append(arrow)
    return out


def main():
    ap = argparse.ArgumentParser(
        description="merge px_trace shards into Perfetto-loadable JSON")
    ap.add_argument("shards", nargs="+", help="px_trace.<rank>.bin files")
    ap.add_argument("-o", "--output", default="trace.json",
                    help="output JSON path (default trace.json)")
    args = ap.parse_args()

    shards = {}
    for path in args.shards:
        try:
            rank, offset, rings, deltas = parse_shard(path)
        except (OSError, ShardError) as exc:
            print(f"ERROR: {exc}", file=sys.stderr)
            return 1
        if rank in shards:
            print(f"ERROR: duplicate shard for rank {rank}: {path}",
                  file=sys.stderr)
            return 1
        shards[rank] = (offset, rings, deltas)

    events = emit_trace_events(shards)
    with open(args.output, "w", encoding="utf-8") as f:
        json.dump({"traceEvents": events, "displayTimeUnit": "ns"}, f)
        f.write("\n")
    nranks = len(shards)
    nflow = sum(1 for e in events if e["ph"] == "s")
    print(f"wrote {args.output}: {len(events)} trace events from "
          f"{nranks} rank(s), {nflow} parcel flow arrow(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
