#!/usr/bin/env python3
"""Fit scaling models to telemetry counters and gate regressions.

Sweeps a self-launching distributed binary (default:
example_distributed_pingpong) across increasing load points with
PX_STATS=1, aggregates each subsystem counter's delta over the sampled
window across ranks, and fits a log-log power law per counter:

    total(x) ~ coeff * x^exponent

For pingpong at x round-trips per peer, every fitted counter (parcels
sent/delivered, wire messages, fibers spawned) should scale linearly —
exponent ~= 1.0.  A change that makes the runtime do superlinear work
per request (say, a forwarding loop or a retry storm) shows up as a
larger exponent long before absolute timings drift out of CI noise.

The fits are written to a BENCH_model.json; `--check reference.json`
compares them against checked-in expectations and fails (exit 1) when a
counter's exponent exceeds the reference by more than the tolerance.
`--model existing.json` re-checks a previous sweep without re-running.

Stdlib only.  Usage:

  python3 tools/px_fit.py --binary build/example_distributed_pingpong \
      --points 100,200,400,800 -o BENCH_model.json \
      --check tools/px_fit_reference.json
"""

import argparse
import json
import math
import os
import subprocess
import sys
import tempfile

import px_stats  # shard parser (same directory)

# Counter path tails fitted by default: one per subsystem the pingpong
# load exercises (parcel layer, wire layer, scheduler).
DEFAULT_COUNTERS = [
    "parcels/sent",
    "parcels/delivered",
    "net/msgs_tx",
    "sched/spawned",
]


class FitError(Exception):
    pass


def counter_deltas(stats_dir, tails):
    """Sums each counter tail's (last - first) across all rank shards."""
    shards = sorted(
        os.path.join(stats_dir, f) for f in os.listdir(stats_dir)
        if f.startswith("px_stats.") and f.endswith(".jsonl"))
    if not shards:
        raise FitError(f"no px_stats shards in {stats_dir}")
    totals = {t: 0 for t in tails}
    for shard in shards:
        _, series = px_stats.parse_shard(shard)
        for s in series:
            for t in tails:
                if s["path"].endswith("/" + t) and len(s["points"]) >= 2:
                    totals[t] += s["points"][-1][1] - s["points"][0][1]
    return totals


def run_point(binary, ranks, iters, tails, interval_us, timeout_s):
    with tempfile.TemporaryDirectory(prefix="px_fit.") as stats_dir:
        env = dict(os.environ)
        env["PX_STATS"] = "1"
        env["PX_STATS_DIR"] = stats_dir
        env["PX_STATS_INTERVAL_US"] = str(interval_us)
        proc = subprocess.run(
            [binary, str(ranks), str(iters)], env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
            timeout=timeout_s)
        if proc.returncode != 0:
            raise FitError(
                f"{binary} {ranks} {iters} exited {proc.returncode}: "
                f"{proc.stderr.decode(errors='replace').strip()}")
        return counter_deltas(stats_dir, tails)


def fit_power_law(xs, ys):
    """Least-squares fit of log(y) = log(coeff) + exponent*log(x).

    Returns (exponent, coeff, r2).  Zero/negative samples are clamped to
    1 so a dead counter fits exponent ~0 instead of raising.
    """
    lx = [math.log(x) for x in xs]
    ly = [math.log(max(y, 1)) for y in ys]
    n = len(lx)
    mx = sum(lx) / n
    my = sum(ly) / n
    sxx = sum((a - mx) ** 2 for a in lx)
    sxy = sum((a - mx) * (b - my) for a, b in zip(lx, ly))
    if sxx == 0.0:
        raise FitError("need >= 2 distinct sweep points")
    slope = sxy / sxx
    intercept = my - slope * mx
    ss_tot = sum((b - my) ** 2 for b in ly)
    ss_res = sum((b - (intercept + slope * a)) ** 2
                 for a, b in zip(lx, ly))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0.0 else 1.0
    return slope, math.exp(intercept), r2


def sweep(args, tails):
    points = []
    for iters in args.points:
        totals = run_point(args.binary, args.ranks, iters, tails,
                           args.interval_us, args.timeout)
        points.append({"iters": iters, "counters": totals})
        print(f"point iters={iters}: " +
              ", ".join(f"{t}={totals[t]}" for t in tails))

    fits = {}
    xs = [p["iters"] for p in points]
    for t in tails:
        ys = [p["counters"][t] for p in points]
        exponent, coeff, r2 = fit_power_law(xs, ys)
        fits[t] = {"exponent": round(exponent, 4),
                   "coeff": round(coeff, 4), "r2": round(r2, 4)}
        print(f"fit {t}: total ~ {coeff:.2f} * x^{exponent:.3f} "
              f"(r2={r2:.3f})")
    return {
        "version": 1,
        "binary": os.path.basename(args.binary),
        "ranks": args.ranks,
        "sweep": points,
        "fits": fits,
    }


def check_against(model, reference, tolerance):
    """Returns error strings for exponents degraded past tolerance."""
    errors = []
    fits = model.get("fits", {})
    for counter, ref in reference.get("fits", {}).items():
        got = fits.get(counter)
        if got is None:
            errors.append(f"{counter}: fitted model has no entry")
            continue
        degradation = got["exponent"] - ref["exponent"]
        if degradation > tolerance:
            errors.append(
                f"{counter}: exponent {got['exponent']:.3f} exceeds "
                f"reference {ref['exponent']:.3f} by {degradation:.3f} "
                f"(> tolerance {tolerance})")
    return errors


def main(argv):
    ap = argparse.ArgumentParser(
        description="fit counter scaling models from a PX_STATS sweep")
    ap.add_argument("--binary", default="build/example_distributed_pingpong",
                    help="self-launching binary: <binary> <ranks> <iters>")
    ap.add_argument("--ranks", type=int, default=2)
    ap.add_argument("--points", default="100,200,400,800",
                    help="comma-separated iteration counts to sweep")
    ap.add_argument("--counters", default=",".join(DEFAULT_COUNTERS),
                    help="comma-separated counter path tails to fit")
    ap.add_argument("--interval-us", type=int, default=2000,
                    help="PX_STATS_INTERVAL_US for sweep runs")
    ap.add_argument("--timeout", type=int, default=120,
                    help="per-point timeout in seconds")
    ap.add_argument("-o", "--output", default="BENCH_model.json")
    ap.add_argument("--model", default=None,
                    help="check an existing model JSON instead of sweeping")
    ap.add_argument("--check", default=None,
                    help="reference model JSON to gate exponents against")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="max allowed exponent increase over the reference")
    args = ap.parse_args(argv)
    args.points = [int(p) for p in args.points.split(",") if p]
    tails = [t for t in args.counters.split(",") if t]

    try:
        if args.model is not None:
            with open(args.model, "r", encoding="utf-8") as f:
                model = json.load(f)
        else:
            if len(args.points) < 2:
                raise FitError("need >= 2 sweep points")
            model = sweep(args, tails)
            with open(args.output, "w", encoding="utf-8") as f:
                json.dump(model, f, indent=1)
                f.write("\n")
            print(f"wrote {args.output}")
    except (FitError, px_stats.ShardError, OSError,
            subprocess.TimeoutExpired) as e:
        print(f"ERROR: {e}", file=sys.stderr)
        return 1

    if args.check is not None:
        try:
            with open(args.check, "r", encoding="utf-8") as f:
                reference = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"ERROR: {args.check}: {e}", file=sys.stderr)
            return 2
        errors = check_against(model, reference, args.tolerance)
        if errors:
            for e in errors:
                print(f"ERROR: {e}", file=sys.stderr)
            return 1
        print(f"ok: {len(reference.get('fits', {}))} counter exponent(s) "
              f"within tolerance {args.tolerance}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
