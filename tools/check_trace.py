#!/usr/bin/env python3
"""CI validator for merged flight-recorder traces (tools/px_trace.py).

Checks that a trace JSON is well-formed Chrome trace_event input that
Perfetto will load — `traceEvents` list, required keys per phase type,
numeric timestamps — and that it demonstrates at least one *cross-rank*
causal edge: a flow start (`ph: "s"`) whose matching finish (`ph: "f"`,
same id) carries a different pid.  That edge is the point of the whole
pipeline; a merge that loses it is broken even if the JSON parses.

Prints ERROR lines to stderr and exits 1 on any failure.

Usage: python3 tools/check_trace.py trace.json
"""

import json
import sys

REQUIRED_BY_PHASE = {
    "M": ("name", "pid"),
    "X": ("name", "pid", "tid", "ts", "dur"),
    "i": ("name", "pid", "tid", "ts"),
    "s": ("name", "id", "pid", "tid", "ts"),
    "f": ("name", "id", "pid", "tid", "ts"),
}


def check(path):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: not parseable JSON: {exc}"]

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return [f"{path}: top level must be an object with 'traceEvents'"]
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        return [f"{path}: 'traceEvents' must be a non-empty list"]

    flow_starts = {}
    flow_finishes = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"{path}: event {i} is not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or ph not in REQUIRED_BY_PHASE:
            errors.append(f"{path}: event {i} has unknown phase {ph!r}")
            continue
        for key in REQUIRED_BY_PHASE[ph]:
            if key not in ev:
                errors.append(
                    f"{path}: event {i} (ph={ph}) missing key '{key}'")
        for key in ("ts", "dur"):
            if key in ev and not isinstance(ev[key], (int, float)):
                errors.append(
                    f"{path}: event {i} has non-numeric '{key}'")
        if ph == "s":
            flow_starts[ev.get("id")] = ev
        elif ph == "f":
            flow_finishes.setdefault(ev.get("id"), ev)

    if not flow_starts:
        errors.append(f"{path}: no flow-start ('s') events — no parcel "
                      "edges were merged")
    cross_rank = 0
    for fid, start in flow_starts.items():
        finish = flow_finishes.get(fid)
        if finish is None:
            continue
        if start.get("pid") != finish.get("pid"):
            cross_rank += 1
    if flow_starts and cross_rank == 0:
        errors.append(f"{path}: no cross-rank flow edge (an s/f pair with "
                      "differing pids) — the causal chain does not cross "
                      "a process boundary")
    if not errors:
        print(f"{path}: {len(events)} events, {len(flow_starts)} flow "
              f"edges, {cross_rank} cross-rank")
    return errors


def main():
    if len(sys.argv) != 2:
        print("usage: check_trace.py <trace.json>", file=sys.stderr)
        return 2
    errors = check(sys.argv[1])
    for e in errors:
        print(f"ERROR: {e}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
