#!/usr/bin/env python3
"""Merge telemetry shards into one machine-wide timeline JSON.

Each rank of a sampled run (PX_STATS=1, see docs/metrics.md) writes a
jsonl shard `px_stats.<rank>.jsonl` at shutdown (or mid-run via the
px.stats_dump action): one header object line, then one object line per
counter series with its ring of [ts_ns, value] points.  This tool merges
any number of shards into a single JSON document:

  * per-rank timestamps are normalized onto rank 0's clock with the
    bootstrap clock-sync offset stamped in each header
    (rank0_time = local_time - clock_offset_ns);
  * every series is re-emitted under its shard's rank with normalized
    timestamps, oldest point first;
  * derived machine-wide figures are computed from the merged series:
    the aggregate parcel delivery rate (sum of per-rank first-to-last
    rates of `.../parcels/delivered`) and the final p99 parcel
    send->dispatch latency per rank
    (`.../parcels/hist_dispatch_ns/p99`).

Stdlib only.  Usage:

  python3 tools/px_stats.py stats/px_stats.*.jsonl -o stats.json
"""

import argparse
import json
import sys


class ShardError(Exception):
    pass


def parse_shard(path):
    """Returns (header dict, [series dict]) for one jsonl shard."""
    header = None
    series = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                raise ShardError(f"{path}:{lineno}: bad json: {e}") from e
            kind = obj.get("kind")
            if kind == "header":
                if header is not None:
                    raise ShardError(f"{path}:{lineno}: duplicate header")
                if obj.get("version") != 1:
                    raise ShardError(
                        f"{path}:{lineno}: unsupported version "
                        f"{obj.get('version')!r}")
                header = obj
            elif kind == "series":
                if header is None:
                    raise ShardError(f"{path}:{lineno}: series before header")
                if "path" not in obj or "points" not in obj:
                    raise ShardError(f"{path}:{lineno}: malformed series")
                series.append(obj)
            else:
                raise ShardError(f"{path}:{lineno}: unknown kind {kind!r}")
    if header is None:
        raise ShardError(f"{path}: no header line")
    return header, series


def first_to_last_rate(points):
    """Events/sec over the retained window, or None without a usable span."""
    if len(points) < 2:
        return None
    (t0, v0), (t1, v1) = points[0], points[-1]
    if t1 <= t0:
        return None
    return (v1 - v0) * 1e9 / (t1 - t0)


def merge(shard_paths):
    ranks = []
    all_series = []
    seen_ranks = set()
    for path in shard_paths:
        header, series = parse_shard(path)
        rank = header["rank"]
        if rank in seen_ranks:
            raise ShardError(f"{path}: duplicate shard for rank {rank}")
        seen_ranks.add(rank)
        off = header.get("clock_offset_ns", 0)
        ranks.append({
            "rank": rank,
            "clock_offset_ns": off,
            "interval_us": header.get("interval_us", 0),
            "ticks": header.get("ticks", 0),
            "dropped_points": header.get("dropped_points", 0),
            "shard": path,
        })
        for s in series:
            all_series.append({
                "rank": rank,
                "path": s["path"],
                "points": [[ts - off, value] for ts, value in s["points"]],
            })
    ranks.sort(key=lambda r: r["rank"])
    all_series.sort(key=lambda s: (s["rank"], s["path"]))

    # Machine-wide parcel delivery rate: each rank's delivered counter is
    # monotone, so the sum of per-rank window rates is the aggregate rate.
    per_rank_rate = {}
    p99_dispatch = {}
    for s in all_series:
        if s["path"].endswith("/parcels/delivered"):
            rate = first_to_last_rate(s["points"])
            if rate is not None:
                key = s["rank"]
                per_rank_rate[key] = per_rank_rate.get(key, 0.0) + rate
        elif s["path"].endswith("/parcels/hist_dispatch_ns/p99"):
            if s["points"]:
                p99_dispatch[s["rank"]] = max(
                    p99_dispatch.get(s["rank"], 0), s["points"][-1][1])

    derived = {
        "parcel_rate_per_sec": sum(per_rank_rate.values()),
        "parcel_rate_per_rank": {
            str(r): rate for r, rate in sorted(per_rank_rate.items())},
        "p99_dispatch_ns_per_rank": {
            str(r): v for r, v in sorted(p99_dispatch.items())},
    }
    return {
        "version": 1,
        "ranks": ranks,
        "derived": derived,
        "series": all_series,
    }


def main(argv):
    ap = argparse.ArgumentParser(
        description="merge px_stats jsonl shards into one timeline JSON")
    ap.add_argument("shards", nargs="+", help="px_stats.<rank>.jsonl files")
    ap.add_argument("-o", "--output", default="stats.json",
                    help="merged output path (default: stats.json)")
    args = ap.parse_args(argv)

    try:
        merged = merge(args.shards)
    except (ShardError, OSError) as e:
        print(f"ERROR: {e}", file=sys.stderr)
        return 1

    with open(args.output, "w", encoding="utf-8") as f:
        json.dump(merged, f, indent=1)
        f.write("\n")

    d = merged["derived"]
    print(f"merged {len(merged['ranks'])} shard(s), "
          f"{len(merged['series'])} series -> {args.output}")
    print(f"machine parcel rate: {d['parcel_rate_per_sec']:.1f}/s; "
          f"p99 dispatch ns per rank: {d['p99_dispatch_ns_per_rank']}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
