// Adaptive mesh refinement over a distributed directed graph (paper §2.1:
// "directed graphs (adaptive mesh refinement, semantic nets)").
//
// Cells form a quadtree-like refinement graph distributed across
// localities.  Each sweep estimates an error indicator per cell and
// refines cells above threshold; refinement creates children on the
// least-loaded locality (dynamic object distribution in the global name
// space).  Sweeps are coordinated purely by LCO dataflow — the classic
// barrier-per-level structure is absent; a cell refines as soon as its own
// indicator is known.
#include <atomic>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/action.hpp"
#include "core/runtime.hpp"
#include "lco/lco.hpp"
#include "util/spinlock.hpp"

namespace {

using namespace px;

struct cell {
  double x = 0, y = 0, size = 1.0;
  int level = 0;
};

// The distributed mesh: per-locality cell stores, linked by gids.
struct mesh_shard {
  util::spinlock lock;
  std::vector<cell> cells;
};

core::runtime* g_rt = nullptr;
std::vector<std::shared_ptr<mesh_shard>> g_shards;
std::atomic<std::uint64_t> g_refinements{0};
std::atomic<std::uint64_t> g_active{0};  // sweep-wide activity counter
lco::gate* g_sweep_done = nullptr;

// A sharp feature the refinement should chase (a circular front).
double error_indicator(const cell& c) {
  const double r = std::sqrt(c.x * c.x + c.y * c.y);
  const double dist_to_front = std::fabs(r - 0.6);
  return c.size / (dist_to_front + 0.05);
}

void finish_one() {
  if (g_active.fetch_sub(1) == 1) g_sweep_done->open();
}

// Action: examine cell `index` of shard `where`; refine in place if the
// indicator exceeds the threshold and depth allows.  Children are placed
// on the least-loaded locality and examined recursively *immediately* —
// no level-step barrier.
void examine_cell(std::uint32_t where, std::uint64_t index, double threshold,
                  int max_level) {
  mesh_shard& shard = *g_shards[where];
  cell c;
  {
    std::lock_guard lock(shard.lock);
    c = shard.cells[index];
  }
  if (c.level < max_level && error_indicator(c) > threshold) {
    g_refinements.fetch_add(1);
    // Place all four children on the currently least-loaded shard.
    std::uint32_t target = 0;
    std::size_t best = SIZE_MAX;
    for (std::uint32_t s = 0; s < g_shards.size(); ++s) {
      std::lock_guard lock(g_shards[s]->lock);
      if (g_shards[s]->cells.size() < best) {
        best = g_shards[s]->cells.size();
        target = s;
      }
    }
    const double h = c.size / 2;
    for (int q = 0; q < 4; ++q) {
      cell child;
      child.x = c.x + ((q & 1) ? h / 2 : -h / 2);
      child.y = c.y + ((q & 2) ? h / 2 : -h / 2);
      child.size = h;
      child.level = c.level + 1;
      std::uint64_t child_index;
      {
        std::lock_guard lock(g_shards[target]->lock);
        child_index = g_shards[target]->cells.size();
        g_shards[target]->cells.push_back(child);
      }
      // Chase the front immediately: message-driven recursion.
      g_active.fetch_add(1);
      core::apply<&examine_cell>(
          g_rt->locality_gid(static_cast<gas::locality_id>(target)), target,
          child_index, threshold, max_level);
    }
  }
  finish_one();
}
PX_REGISTER_ACTION(examine_cell)

}  // namespace

int main(int argc, char** argv) {
  const int max_level = argc > 1 ? std::atoi(argv[1]) : 7;
  const double threshold = 1.5;

  core::runtime_params params;
  params.localities = 4;
  params.workers_per_locality = 2;
  params.fabric.base_latency_ns = 2'000;
  core::runtime rt(params);
  g_rt = &rt;
  rt.start();

  // Coarse 4x4 root mesh spread across shards.
  for (std::size_t i = 0; i < rt.num_localities(); ++i) {
    g_shards.push_back(std::make_shared<mesh_shard>());
  }
  std::size_t seeded = 0;
  for (int ix = 0; ix < 4; ++ix) {
    for (int iy = 0; iy < 4; ++iy) {
      cell c;
      c.x = -0.75 + 0.5 * ix;
      c.y = -0.75 + 0.5 * iy;
      c.size = 0.5;
      g_shards[seeded++ % g_shards.size()]->cells.push_back(c);
    }
  }

  lco::gate done;
  g_sweep_done = &done;

  rt.run([&] {
    // Seed the sweep: one examine per root cell; everything else cascades.
    std::uint64_t initial = 0;
    for (std::uint32_t s = 0; s < g_shards.size(); ++s) {
      initial += g_shards[s]->cells.size();
    }
    g_active.store(initial);
    for (std::uint32_t s = 0; s < g_shards.size(); ++s) {
      const std::size_t count = g_shards[s]->cells.size();
      for (std::uint64_t i = 0; i < count; ++i) {
        core::apply<&examine_cell>(
            rt.locality_gid(static_cast<gas::locality_id>(s)), s, i,
            threshold, max_level);
      }
    }
    done.wait();
  });

  std::size_t total = 0, deepest = 0;
  std::vector<std::size_t> per_shard;
  for (const auto& sh : g_shards) {
    per_shard.push_back(sh->cells.size());
    total += sh->cells.size();
    for (const auto& c : sh->cells) {
      deepest = std::max(deepest, static_cast<std::size_t>(c.level));
    }
  }
  std::printf("amr: %zu cells after %llu refinements, max level %zu\n",
              total, static_cast<unsigned long long>(g_refinements.load()),
              deepest);
  std::printf("load balance:");
  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    std::printf(" L%zu=%zu", s, per_shard[s]);
  }
  std::printf("\n");
  rt.stop();
  return 0;
}
