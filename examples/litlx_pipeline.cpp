// LITL-X end-to-end: every §2.3 construct in one pipeline.
//
// A three-stage stencil-ish pipeline over blocks:
//   stage A (generate)  -- percolated to locality 1 with its operands;
//   stage B (transform) -- asynchronous calls joined by an EARTH sync slot;
//   stage C (reduce)    -- dataflow variables feed a location-consistent
//                          atomic accumulation.
#include <cstdio>
#include <numeric>
#include <vector>

#include "litlx/litlx.hpp"

namespace {

using namespace px;

std::vector<double> generate_block(std::uint64_t seed, std::uint64_t n) {
  std::vector<double> block(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    block[i] = static_cast<double>((seed * 2654435761u + i) % 1000) / 1000.0;
  }
  return block;
}
PX_REGISTER_ACTION(generate_block)

double transform_block(std::vector<double> block) {
  // "instruction block" percolated with its data: compute local to it.
  double acc = 0;
  for (double v : block) acc += v * v;
  return acc;
}
PX_REGISTER_ACTION(transform_block)

// Stage C's atomic-section bodies (typed actions since PR 6).
void add_to_total(double& total, double r) { total += r; }
PX_REGISTER_ATOMIC_SECTION(double, add_to_total)

double read_total(double& total) { return total; }
PX_REGISTER_ATOMIC_SECTION(double, read_total)

}  // namespace

int main() {
  core::runtime_params params;
  params.localities = 4;
  params.workers_per_locality = 2;
  params.fabric.base_latency_ns = 5'000;
  core::runtime rt(params);
  rt.start();

  constexpr int kBlocks = 16;
  constexpr std::uint64_t kBlockLen = 4096;

  double grand_total = 0;
  rt.run([&] {
    // Stage C's accumulator: atomic sections at locality 3.
    litlx::atomic_object<double> accumulator(rt, 3, 0.0);

    // Stage A: percolate the generators (block + code prestaged at loc 1).
    std::vector<lco::future<std::vector<double>>> blocks;
    for (int b = 0; b < kBlocks; ++b) {
      blocks.push_back(litlx::percolate<&generate_block>(
          1, static_cast<std::uint64_t>(b), kBlockLen));
    }

    // Stage B: as each block materializes, fire an async transform at a
    // rotating locality; an EARTH-style sync slot joins the wave.
    litlx::sync_slot wave(kBlocks);
    std::vector<litlx::dataflow_var<double>> results(kBlocks);
    for (int b = 0; b < kBlocks; ++b) {
      const auto where = static_cast<gas::locality_id>(b % 4);
      auto& dv = results[static_cast<std::size_t>(b)];
      blocks[static_cast<std::size_t>(b)].on_ready(
          [&, b, where, dv] {
            litlx::spawn_thread([&, b, where, dv] {
              auto fut = core::async<&transform_block>(
                  rt.locality_gid(where),
                  blocks[static_cast<std::size_t>(b)].get());
              const double r = fut.get();
              dv.write(r);  // single-assignment dataflow variable
              // Stage C: atomic section at the accumulator's location.
              accumulator.atomically<&add_to_total>(r).wait();
              wave.signal();
            });
          });
    }
    wave.wait();

    grand_total = accumulator.atomically<&read_total>().get();

    // Cross-check against the dataflow variables.
    double check = 0;
    for (const auto& dv : results) check += dv.read();
    std::printf("litlx pipeline: %d blocks, total=%.3f, dataflow check=%.3f\n",
                kBlocks, grand_total, check);
  });

  rt.stop();
  return grand_total > 0 ? 0 : 1;
}
