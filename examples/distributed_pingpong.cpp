// Distributed pingpong: parcels crossing real process boundaries.
//
// This binary is its own px-launch style launcher.  Invoked plainly it
// forks itself once per rank with the PX_NET_* environment set and reaps
// the children:
//
//   ./example_distributed_pingpong [nranks=2] [iters=1000]
//
// Invoked with PX_NET_RANK set (by the launcher or by hand across real
// machines) it runs as one rank: every process hosts one locality, rank 0
// measures action round-trip latency to each peer over TCP, and global
// quiescence + shutdown run the distributed protocol.  The rank body is
// the same code you would write against the simulated fabric — only the
// environment differs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/action.hpp"
#include "core/runtime.hpp"
#include "util/subproc.hpp"

namespace {

using namespace px;

std::uint64_t ping(std::uint64_t x) { return x + 1; }
PX_REGISTER_ACTION(ping)

int run_rank(int iters) {
  core::runtime rt;  // backend, rank, ranks: resolved from PX_NET_*
  const auto nranks = static_cast<std::uint32_t>(rt.num_localities());
  rt.run([&] {
    if (rt.rank() != 0) return;  // peers just serve pings
    std::printf("rank 0: %u ranks, %d round trips per peer\n", nranks,
                iters);
    for (std::uint32_t peer = 1; peer < nranks; ++peer) {
      // Warmup, then the timed run.
      for (int i = 0; i < 10; ++i) {
        core::async<&ping>(rt.locality_gid(peer), 1ull).get();
      }
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < iters; ++i) {
        const std::uint64_t got =
            core::async<&ping>(rt.locality_gid(peer),
                               static_cast<std::uint64_t>(i))
                .get();
        if (got != static_cast<std::uint64_t>(i) + 1) {
          std::fprintf(stderr, "rank 0: bad echo from peer %u\n", peer);
          std::abort();
        }
      }
      const double us =
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - t0)
              .count();
      std::printf("  peer %u: %.1f us/round-trip over %d iters\n", peer,
                  us / iters, iters);
    }
  });
  rt.stop();
  return 0;
}

int run_launcher(int nranks, int iters) {
  const int root_port = util::pick_free_tcp_port();
  std::printf("launching %d ranks (root 127.0.0.1:%d)...\n", nranks,
              root_port);
  const std::vector<std::string> argv = {util::self_exe_path(),
                                         std::to_string(nranks),
                                         std::to_string(iters)};
  // The launcher's own PX_NET_BACKEND picks the ranks' data plane, so
  // `PX_NET_BACKEND=shm ./example_... ` exercises the shm mesh end to end.
  const char* be = std::getenv("PX_NET_BACKEND");
  const std::string backend = be != nullptr && be[0] != '\0' ? be : "tcp";
  std::vector<pid_t> pids;
  for (int r = 0; r < nranks; ++r) {
    pids.push_back(util::spawn_process(
        argv, util::net_rank_env(r, nranks, root_port, backend)));
  }
  int failures = 0;
  for (int r = 0; r < nranks; ++r) {
    const int code = util::wait_exit(pids[r]);
    if (code != 0) {
      std::fprintf(stderr, "rank %d failed (exit %d)\n", r, code);
      failures += 1;
    }
  }
  std::printf(failures == 0 ? "all ranks exited cleanly\n"
                            : "%d rank(s) failed\n",
              failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 2;
  const int iters = argc > 2 ? std::atoi(argv[2]) : 1000;
  if (nranks < 2 || iters < 1) {
    std::fprintf(stderr, "usage: %s [nranks>=2] [iters>=1]\n", argv[0]);
    return 2;
  }
  if (std::getenv("PX_NET_RANK") != nullptr) return run_rank(iters);
  return run_launcher(nranks, iters);
}
