// Particle-in-cell skeleton (paper §2.1: "particle in cell (magneto hydro
// dynamics)") — the third irregular-parallelism workload the paper names.
//
// A 1-D periodic domain is split into cells owned by localities.  Each
// step: (1) deposit charge per cell, (2) a dataflow reduction produces the
// mean field — no global barrier, the reduction *is* the synchronization —
// and (3) particles push and migrate; a particle leaving its cell is SENT
// to the neighbour cell's locality as a parcel (move work to data), not
// gathered by the neighbour.
#include <atomic>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/action.hpp"
#include "core/runtime.hpp"
#include "lco/lco.hpp"
#include "util/rng.hpp"
#include "util/spinlock.hpp"

namespace {

using namespace px;

constexpr std::size_t kCells = 64;
constexpr double kDomain = 1.0;
constexpr double kDt = 0.005;

struct particle {
  double x = 0, v = 0;
  template <typename Ar>
  friend void serialize(Ar& ar, particle& p) {
    ar& p.x& p.v;
  }
};

struct cell_store {
  util::spinlock lock;
  std::vector<particle> parts;
};

core::runtime* g_rt = nullptr;
std::vector<std::shared_ptr<cell_store>> g_cells;  // kCells entries
std::atomic<std::uint64_t> g_migrations{0};

gas::locality_id owner_of_cell(std::size_t c) {
  return static_cast<gas::locality_id>(c * g_rt->num_localities() / kCells);
}

std::size_t cell_of(double x) {
  const double wrapped = x - kDomain * std::floor(x / kDomain);
  return std::min(kCells - 1,
                  static_cast<std::size_t>(wrapped / kDomain * kCells));
}

// Action: charge in cells [first, last) at this locality.
double deposit_range(std::uint64_t first, std::uint64_t last) {
  double q = 0;
  for (std::uint64_t c = first; c < last; ++c) {
    std::lock_guard lock(g_cells[c]->lock);
    q += static_cast<double>(g_cells[c]->parts.size());
  }
  return q;
}
PX_REGISTER_ACTION(deposit_range)

// Action: accept a migrated particle into cell `c` (work moved to data).
void accept_particle(std::uint64_t c, particle p) {
  std::lock_guard lock(g_cells[c]->lock);
  g_cells[c]->parts.push_back(p);
}
PX_REGISTER_ACTION(accept_particle)

// Action: push every particle in cells [first, last) with field E; emit
// leavers as parcels to their new cell's owner.
void push_range(std::uint64_t first, std::uint64_t last, double field) {
  for (std::uint64_t c = first; c < last; ++c) {
    std::vector<particle> stay;
    std::vector<std::pair<std::size_t, particle>> leave;
    {
      std::lock_guard lock(g_cells[c]->lock);
      for (auto& p : g_cells[c]->parts) {
        p.v += field * kDt;
        p.x += p.v * kDt;
        const std::size_t nc = cell_of(p.x);
        if (nc == c) {
          stay.push_back(p);
        } else {
          leave.emplace_back(nc, p);
        }
      }
      g_cells[c]->parts.swap(stay);
    }
    for (auto& [nc, p] : leave) {
      g_migrations.fetch_add(1);
      core::apply<&accept_particle>(
          g_rt->locality_gid(owner_of_cell(nc)), nc, p);
    }
  }
}
PX_REGISTER_ACTION(push_range)

}  // namespace

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 40;
  const std::size_t particles_per_cell = 200;

  core::runtime_params params;
  params.localities = 4;
  params.workers_per_locality = 2;
  params.fabric.base_latency_ns = 2'000;
  core::runtime rt(params);
  g_rt = &rt;
  rt.start();

  util::xoshiro256 rng(11);
  for (std::size_t c = 0; c < kCells; ++c) {
    auto store = std::make_shared<cell_store>();
    for (std::size_t i = 0; i < particles_per_cell; ++i) {
      particle p;
      p.x = (static_cast<double>(c) + rng.uniform01()) / kCells;
      p.v = rng.uniform(-0.4, 0.4) + (p.x < 0.5 ? 0.2 : -0.2);  // two streams
      store->parts.push_back(p);
    }
    g_cells.push_back(std::move(store));
  }

  const std::size_t cells_per_loc = kCells / rt.num_localities();
  for (int s = 0; s < steps; ++s) {
    rt.run([&] {
      // Phase 1+2: distributed deposit, dataflow reduction of mean charge.
      std::vector<lco::future<double>> partial;
      for (std::size_t l = 0; l < rt.num_localities(); ++l) {
        partial.push_back(core::async<&deposit_range>(
            rt.locality_gid(static_cast<gas::locality_id>(l)),
            l * cells_per_loc, (l + 1) * cells_per_loc));
      }
      lco::when_all(partial).wait();
      double mean_q = 0;
      for (auto& f : partial) mean_q += f.get();
      mean_q /= kCells;
      // Toy restoring field proportional to deviation (keeps it bounded).
      const double field = 0.1 * std::sin(2 * M_PI * s * kDt) - 1e-4 * mean_q;

      // Phase 3: push + migrate (fire-and-forget; quiescence closes step).
      for (std::size_t l = 0; l < rt.num_localities(); ++l) {
        core::apply<&push_range>(
            rt.locality_gid(static_cast<gas::locality_id>(l)),
            l * cells_per_loc, (l + 1) * cells_per_loc, field);
      }
    });
  }

  std::size_t total = 0;
  for (const auto& c : g_cells) total += c->parts.size();
  std::printf("pic: %d steps, %zu particles conserved (expected %zu), "
              "%llu inter-cell migrations\n",
              steps, total, kCells * particles_per_cell,
              static_cast<unsigned long long>(g_migrations.load()));
  rt.stop();
  return total == kCells * particles_per_cell ? 0 : 1;
}
