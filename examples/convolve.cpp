// Image grayscale + 3x3 convolution as a nested pattern composition:
//
//   pipeline( stage_gray -> stage_conv( map_reduce over band rows ) )
//
// Row bands flow through a two-stage pipeline whose stages are tracked
// process children placed by spawn_any over the whole span; stage B runs a
// *nested* map_reduce over its band's rows (the pattern-in-pattern proof),
// then ships the convolved rows to a rank-0 collector.  All arithmetic is
// integer, so the result is pixel-exact against the serial reference.
//
// Like distributed_pingpong, this binary is its own launcher:
//
//   ./example_convolve                 # sim: 4 localities, one process
//   ./example_convolve --ranks 4      # forks itself into 4 TCP ranks
//
// The rank body is identical in both modes — only the environment differs.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/action.hpp"
#include "patterns/patterns.hpp"
#include "util/subproc.hpp"

namespace {

using namespace px;

constexpr std::uint32_t kW = 96;
constexpr std::uint32_t kH = 64;
constexpr std::uint32_t kBandRows = 8;

// Deterministic synthetic RGB source (any rank can regenerate any pixel).
inline std::uint8_t src_r(std::uint32_t x, std::uint32_t y) {
  return static_cast<std::uint8_t>((x * 3 + y * 5) & 0xff);
}
inline std::uint8_t src_g(std::uint32_t x, std::uint32_t y) {
  return static_cast<std::uint8_t>((x * 7 + y * 11) & 0xff);
}
inline std::uint8_t src_b(std::uint32_t x, std::uint32_t y) {
  return static_cast<std::uint8_t>((x * 13 + y * 17) & 0xff);
}

// Integer ITU-ish grayscale: exact on every platform.
inline std::uint8_t gray_at(std::uint32_t x, std::uint32_t y) {
  return static_cast<std::uint8_t>(
      (77u * src_r(x, y) + 150u * src_g(x, y) + 29u * src_b(x, y)) >> 8);
}

constexpr int kKernel[3][3] = {{1, 2, 1}, {2, 4, 2}, {1, 2, 1}};  // /16

// ------------------------------------------------------------ wire types

struct band_desc {
  std::uint64_t collector_bits = 0;
  std::uint32_t y0 = 0, y1 = 0, w = 0, h = 0;
};
template <typename Ar>
void serialize(Ar& ar, band_desc& b) {
  ar & b.collector_bits & b.y0 & b.y1 & b.w & b.h;
}

// Grayscale band rows [gy0, gy0 + rows), including one halo row beyond
// each edge of [y0, y1) where the image provides one.
struct gray_band {
  std::uint64_t collector_bits = 0;
  std::uint32_t y0 = 0, y1 = 0, w = 0, h = 0, gy0 = 0;
  std::vector<std::uint8_t> gray;
};
template <typename Ar>
void serialize(Ar& ar, gray_band& b) {
  ar & b.collector_bits & b.y0 & b.y1 & b.w & b.h & b.gy0 & b.gray;
}

using row_list =
    std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>>;

// ------------------------------------------------- rank-0 result collector

struct collector {
  collector(std::uint32_t w, std::uint32_t h)
      : width(w), out(static_cast<std::size_t>(w) * h) {}
  std::uint32_t width;
  std::vector<std::uint8_t> out;
  util::spinlock lock;
  lco::counting_semaphore bands_done{0};
};

void collect_rows(std::uint64_t collector_bits, row_list rows) {
  core::locality* here = core::this_locality();
  auto obj = here->get_object(gas::gid::from_bits(collector_bits));
  PX_ASSERT_MSG(obj != nullptr, "collect_rows landed off rank 0");
  auto coll = std::static_pointer_cast<collector>(obj);
  {
    std::lock_guard g(coll->lock);
    for (auto& [y, row] : rows) {
      std::memcpy(coll->out.data() + y * coll->width, row.data(),
                  row.size());
    }
  }
  coll->bands_done.release(1);
}
PX_REGISTER_ACTION(collect_rows)

// -------------------------------------------------------- pipeline stages

// Stage A: grayscale the band (with halo) from the deterministic source.
gray_band stage_gray(band_desc d) {
  gray_band gb;
  gb.collector_bits = d.collector_bits;
  gb.y0 = d.y0;
  gb.y1 = d.y1;
  gb.w = d.w;
  gb.h = d.h;
  gb.gy0 = d.y0 == 0 ? 0 : d.y0 - 1;
  const std::uint32_t gy1 = std::min(d.h, d.y1 + 1);
  gb.gray.resize(static_cast<std::size_t>(gy1 - gb.gy0) * d.w);
  for (std::uint32_t y = gb.gy0; y < gy1; ++y) {
    for (std::uint32_t x = 0; x < d.w; ++x) {
      gb.gray[static_cast<std::size_t>(y - gb.gy0) * d.w + x] = gray_at(x, y);
    }
  }
  return gb;
}

// Stage B stages its band here so the nested map tasks (which receive only
// an opaque ctx word) can reach it; erased once the band is reduced.
std::mutex g_bands_lock;
std::unordered_map<std::uint64_t, std::shared_ptr<const gray_band>> g_bands;

row_list conv_rows(std::uint64_t band_key, std::uint64_t begin,
                   std::uint64_t end) {
  std::shared_ptr<const gray_band> band;
  {
    std::lock_guard g(g_bands_lock);
    band = g_bands.at(band_key);
  }
  row_list out;
  out.reserve(end - begin);
  for (std::uint64_t i = begin; i < end; ++i) {
    const std::uint32_t y = band->y0 + static_cast<std::uint32_t>(i);
    std::vector<std::uint8_t> row(band->w);
    for (std::uint32_t x = 0; x < band->w; ++x) {
      unsigned acc = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const auto yy = static_cast<std::uint32_t>(std::clamp<int>(
              static_cast<int>(y) + dy, 0, static_cast<int>(band->h) - 1));
          const auto xx = static_cast<std::uint32_t>(std::clamp<int>(
              static_cast<int>(x) + dx, 0, static_cast<int>(band->w) - 1));
          acc += static_cast<unsigned>(kKernel[dy + 1][dx + 1]) *
                 band->gray[static_cast<std::size_t>(yy - band->gy0) *
                                band->w +
                            xx];
        }
      }
      row[x] = static_cast<std::uint8_t>(acc / 16);
    }
    out.emplace_back(y, std::move(row));
  }
  return out;
}

row_list concat_rows(row_list a, row_list b) {
  a.insert(a.end(), std::make_move_iterator(b.begin()),
           std::make_move_iterator(b.end()));
  return a;
}

// Stage B: nested map_reduce over the band's rows, then ship the result.
void stage_conv(gray_band gb) {
  const std::uint64_t cbits = gb.collector_bits;
  const std::uint64_t key = gb.y0;
  const std::uint64_t rows = gb.y1 - gb.y0;
  core::runtime& rt = core::this_locality()->rt();
  {
    std::lock_guard g(g_bands_lock);
    g_bands.emplace(key, std::make_shared<const gray_band>(std::move(gb)));
  }
  // Nested pattern: the band's data is rank-local, so the nested span is
  // this rank alone in distributed mode (and every locality in sim).
  std::vector<gas::locality_id> nested_span;
  if (rt.distributed()) {
    nested_span.push_back(rt.rank());
  } else {
    for (std::size_t i = 0; i < rt.num_localities(); ++i) {
      nested_span.push_back(static_cast<gas::locality_id>(i));
    }
  }
  row_list result = patterns::map_reduce<&conv_rows, &concat_rows>(
      rt, std::move(nested_span), rows, /*chunk=*/2, /*ctx=*/key,
      /*nested=*/true);
  {
    std::lock_guard g(g_bands_lock);
    g_bands.erase(key);
  }
  core::apply<&collect_rows>(gas::gid::from_bits(cbits), cbits,
                             std::move(result));
}

PX_REGISTER_PIPELINE("conv", &stage_gray, &stage_conv)
PX_REGISTER_MAP_REDUCE(conv_rows, concat_rows)

// ------------------------------------------------------------ the driver

std::vector<std::uint8_t> serial_reference() {
  std::vector<std::uint8_t> out(static_cast<std::size_t>(kW) * kH);
  for (std::uint32_t y = 0; y < kH; ++y) {
    for (std::uint32_t x = 0; x < kW; ++x) {
      unsigned acc = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const auto yy = static_cast<std::uint32_t>(
              std::clamp<int>(static_cast<int>(y) + dy, 0, kH - 1));
          const auto xx = static_cast<std::uint32_t>(
              std::clamp<int>(static_cast<int>(x) + dx, 0, kW - 1));
          acc += static_cast<unsigned>(kKernel[dy + 1][dx + 1]) *
                 gray_at(xx, yy);
        }
      }
      out[static_cast<std::size_t>(y) * kW + x] =
          static_cast<std::uint8_t>(acc / 16);
    }
  }
  return out;
}

int run_body() {
  core::runtime_params p;
  p.localities = 4;
  p.workers_per_locality = 2;
  core::runtime rt(p);  // backend + rank resolved from PX_NET_* if set
  int result = 0;
  rt.run([&] {
    if (rt.distributed() && rt.rank() != 0) return;  // SPMD peers serve
    const gas::gid cid = rt.new_object<collector>(0, kW, kH);
    auto coll = rt.get_local<collector>(0, cid);

    std::vector<gas::locality_id> span;
    for (std::size_t i = 0; i < rt.num_localities(); ++i) {
      span.push_back(static_cast<gas::locality_id>(i));
    }
    patterns::pipeline<&stage_gray, &stage_conv> pipe(rt, span,
                                                      /*window=*/4);
    std::uint32_t bands = 0;
    for (std::uint32_t y0 = 0; y0 < kH; y0 += kBandRows) {
      pipe.push(band_desc{cid.bits(), y0, std::min(kH, y0 + kBandRows), kW,
                          kH});
      bands += 1;
    }
    pipe.close();  // every band has left every stage
    for (std::uint32_t b = 0; b < bands; ++b) coll->bands_done.acquire();

    const auto ref = serial_reference();
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      if (coll->out[i] != ref[i]) mismatches += 1;
    }
    std::printf("convolve: %ux%u image, %u bands over %zu localities "
                "[%s]: %s (%zu mismatching pixels)\n",
                kW, kH, bands, rt.num_localities(),
                rt.transport().backend_name(),
                mismatches == 0 ? "OK" : "FAIL", mismatches);
    result = mismatches == 0 ? 0 : 1;
  });
  rt.stop();
  return result;
}

int run_launcher(int nranks) {
  const int root_port = util::pick_free_tcp_port();
  std::printf("launching %d ranks (root 127.0.0.1:%d)...\n", nranks,
              root_port);
  const std::vector<std::string> argv = {util::self_exe_path(), "--ranks",
                                         std::to_string(nranks)};
  // The launcher's own PX_NET_BACKEND picks the ranks' data plane, so
  // `PX_NET_BACKEND=shm ./example_... ` exercises the shm mesh end to end.
  const char* be = std::getenv("PX_NET_BACKEND");
  const std::string backend = be != nullptr && be[0] != '\0' ? be : "tcp";
  std::vector<pid_t> pids;
  for (int r = 0; r < nranks; ++r) {
    pids.push_back(util::spawn_process(
        argv, util::net_rank_env(r, nranks, root_port, backend)));
  }
  int failures = 0;
  for (int r = 0; r < nranks; ++r) {
    const int code = util::wait_exit(pids[r]);
    if (code != 0) {
      std::fprintf(stderr, "rank %d failed (exit %d)\n", r, code);
      failures += 1;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int ranks = 0;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--ranks") == 0) ranks = std::atoi(argv[i + 1]);
  }
  if (std::getenv("PX_NET_RANK") != nullptr) return run_body();
  if (ranks > 1) return run_launcher(ranks);
  return run_body();
}
