// N-body tree code on ParalleX (paper §2.1: "direct support for lightweight
// processing of irregular time-varying sparse data structure parallelism
// such as that for trees (N-body codes)").
//
// A 2-D Barnes–Hut step: build a quadtree over the bodies, then evaluate
// forces with the theta acceptance criterion.  The force pass is
// decomposed into per-chunk actions distributed round-robin over the
// localities; partial energies flow back through futures and are combined
// with a dataflow reduction — no barrier anywhere.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/action.hpp"
#include "core/runtime.hpp"
#include "lco/lco.hpp"
#include "util/rng.hpp"

namespace {

struct body {
  double x = 0, y = 0, mass = 0;
};

struct quad_node {
  double cx = 0, cy = 0, half = 0;       // square region
  double mx = 0, my = 0, mass = 0;       // center of mass
  int body_index = -1;                   // leaf payload
  std::unique_ptr<quad_node> child[4];

  bool leaf() const { return child[0] == nullptr; }
};

int quadrant_of(const quad_node& n, double x, double y) {
  return (x >= n.cx ? 1 : 0) | (y >= n.cy ? 2 : 0);
}

void subdivide(quad_node& n) {
  const double h = n.half / 2;
  for (int q = 0; q < 4; ++q) {
    auto c = std::make_unique<quad_node>();
    c->cx = n.cx + ((q & 1) ? h : -h);
    c->cy = n.cy + ((q & 2) ? h : -h);
    c->half = h;
    n.child[q] = std::move(c);
  }
}

void insert(quad_node& n, const std::vector<body>& bodies, int idx) {
  const body& b = bodies[static_cast<std::size_t>(idx)];
  if (n.leaf() && n.body_index < 0) {
    n.body_index = idx;
    return;
  }
  if (n.leaf()) {
    if (n.half < 1e-9) return;  // coincident bodies: merge into this leaf
    const int old = n.body_index;
    n.body_index = -1;
    subdivide(n);
    const body& ob = bodies[static_cast<std::size_t>(old)];
    insert(*n.child[quadrant_of(n, ob.x, ob.y)], bodies, old);
  }
  insert(*n.child[quadrant_of(n, b.x, b.y)], bodies, idx);
}

void summarize(quad_node& n, const std::vector<body>& bodies) {
  if (n.leaf()) {
    if (n.body_index >= 0) {
      const body& b = bodies[static_cast<std::size_t>(n.body_index)];
      n.mx = b.x;
      n.my = b.y;
      n.mass = b.mass;
    }
    return;
  }
  for (auto& c : n.child) {
    summarize(*c, bodies);
    n.mass += c->mass;
    n.mx += c->mx * c->mass;
    n.my += c->my * c->mass;
  }
  if (n.mass > 0) {
    n.mx /= n.mass;
    n.my /= n.mass;
  }
}

constexpr double kTheta = 0.5;

void accumulate_force(const quad_node& n, const body& b, double& ax,
                      double& ay) {
  if (n.mass <= 0) return;
  const double dx = n.mx - b.x, dy = n.my - b.y;
  const double d2 = dx * dx + dy * dy + 1e-6;
  const double d = std::sqrt(d2);
  if (n.leaf() || (2 * n.half) / d < kTheta) {
    const double f = n.mass / (d2 * d);
    ax += f * dx;
    ay += f * dy;
    return;
  }
  for (const auto& c : n.child) accumulate_force(*c, b, ax, ay);
}

// Shared per-run state: the tree and bodies are built once at locality 0
// and read-only during the force pass (in-process global address space).
std::vector<body> g_bodies;
std::unique_ptr<quad_node> g_root;

// Action: evaluate forces for bodies [first, first+count); returns the
// chunk's kinetic proxy (sum of |acceleration|) as a progress metric.
double force_chunk(std::uint64_t first, std::uint64_t count) {
  double total = 0;
  for (std::uint64_t i = first; i < first + count; ++i) {
    const body& b = g_bodies[i];
    double ax = 0, ay = 0;
    accumulate_force(*g_root, b, ax, ay);
    total += std::sqrt(ax * ax + ay * ay);
  }
  return total;
}
PX_REGISTER_ACTION(force_chunk)

}  // namespace

int main(int argc, char** argv) {
  using namespace px;
  const std::size_t n_bodies = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                        : 20'000;
  const std::size_t chunk = 512;

  core::runtime_params params;
  params.localities = 4;
  params.workers_per_locality = 2;
  params.fabric.base_latency_ns = 2'000;
  core::runtime rt(params);
  rt.start();

  // Plummer-ish disc of bodies.
  util::xoshiro256 rng(2026);
  g_bodies.resize(n_bodies);
  for (auto& b : g_bodies) {
    const double r = std::sqrt(rng.uniform01());
    const double phi = rng.uniform(0, 2 * M_PI);
    b.x = r * std::cos(phi);
    b.y = r * std::sin(phi);
    b.mass = 1.0 / static_cast<double>(n_bodies);
  }
  g_root = std::make_unique<quad_node>();
  g_root->half = 1.1;
  for (std::size_t i = 0; i < n_bodies; ++i) {
    insert(*g_root, g_bodies, static_cast<int>(i));
  }
  summarize(*g_root, g_bodies);
  std::printf("barnes-hut: %zu bodies, tree mass %.3f\n", n_bodies,
              g_root->mass);

  double total_force = 0;
  rt.run([&] {
    // Scatter chunks round-robin; gather with a dataflow reduction.
    std::vector<lco::future<double>> parts;
    for (std::size_t first = 0; first < n_bodies; first += chunk) {
      const auto where = static_cast<gas::locality_id>(
          (first / chunk) % rt.num_localities());
      parts.push_back(core::async<&force_chunk>(
          rt.locality_gid(where), first,
          std::min<std::uint64_t>(chunk, n_bodies - first)));
    }
    lco::when_all(parts).wait();
    for (auto& p : parts) total_force += p.get();
  });

  std::printf("force pass done: mean |a| = %.6f over %zu chunks\n",
              total_force / static_cast<double>(n_bodies),
              (n_bodies + chunk - 1) / chunk);
  rt.stop();
  return 0;
}
