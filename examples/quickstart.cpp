// Quickstart: the ParalleX model in one file.
//
// Demonstrates the five core moves:
//   1. bring up a runtime (4 localities on a latency-modelled fabric);
//   2. fire work at a remote locality with apply<> (message-driven);
//   3. get a value back split-phase with async<> + future;
//   4. compose results with dataflow LCOs instead of blocking;
//   5. shut down via global quiescence.
//
// Build: cmake --build build --target quickstart
// Run:   ./build/examples/quickstart
#include <cstdio>

#include "core/action.hpp"
#include "core/runtime.hpp"
#include "lco/lco.hpp"

namespace {

// Any free function can become an action.
int square(int x) { return x * x; }
PX_REGISTER_ACTION(square)

void greet(std::string who) {
  std::printf("  [locality %u] hello, %s!\n",
              px::core::this_locality()->id(), who.c_str());
}
PX_REGISTER_ACTION(greet)

}  // namespace

int main() {
  using namespace px;

  core::runtime_params params;
  params.localities = 4;
  params.workers_per_locality = 2;
  params.fabric.base_latency_ns = 5'000;  // a 5us interconnect

  core::runtime rt(params);
  rt.start();

  rt.run([&] {
    // (2) fire-and-forget parcels: the work moves to the data/locality.
    for (std::size_t i = 0; i < rt.num_localities(); ++i) {
      core::apply<&greet>(rt.locality_gid(static_cast<gas::locality_id>(i)),
                          std::string("world"));
    }

    // (3) split-phase invocation: returns a future immediately.
    auto a = core::async<&square>(rt.locality_gid(1), 6);
    auto b = core::async<&square>(rt.locality_gid(2), 8);

    // (4) dataflow: combine when ready; nobody blocks an execution site.
    auto sum = lco::dataflow([](int x, int y) { return x + y; }, a, b);
    std::printf("6^2 + 8^2 = %d (computed on localities 1 and 2)\n",
                sum.get());
  });

  rt.stop();  // (5) waits for global quiescence first
  std::printf("quiescent; runtime stopped.\n");
  return 0;
}
