// FIG-1: the two-modality heterogeneous chip (paper §3.2, Figure 1).
//
// Sweep mean temporal locality and run the same task set on (a) the MIND
// PIM array only, (b) the dataflow accelerator only, (c) the adaptive
// policy that routes by locality — the architecture's design argument:
// each structure "operates best at one of the two modalities of operation
// determined by degree of temporal locality", so the heterogeneous chip
// needs both.
#include <cstdio>

#include "common.hpp"
#include "gilgamesh/machine.hpp"
#include "util/table.hpp"

int main() {
  using namespace px;
  bench::banner(
      "FIG-1 / execution modalities vs temporal locality (Figure 1)",
      "\"At high temporal locality ... a streaming architecture based on "
      "dataflow control ... At low (or no) temporal locality ... an advanced "
      "Processor in Memory architecture called MIND provides short latencies "
      "and very high memory bandwidth with in-memory threads.\"");

  gilgamesh::chip_model chip;
  util::text_table table({"mean locality", "MIND-only (us)", "accel-only (us)",
                          "adaptive (us)", "best", "accel share"});

  for (const double locality :
       {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    const auto tasks =
        gilgamesh::make_locality_workload(600, locality, 60'000, 65'536, 42);
    const auto mind =
        chip.run(tasks, gilgamesh::placement_policy::mind_only);
    const auto accel =
        chip.run(tasks, gilgamesh::placement_policy::accel_only);
    const auto adaptive =
        chip.run(tasks, gilgamesh::placement_policy::adaptive, 0.5);

    const char* best = "adaptive";
    if (mind.makespan_ns < accel.makespan_ns &&
        mind.makespan_ns <= adaptive.makespan_ns) {
      best = "MIND";
    } else if (accel.makespan_ns < mind.makespan_ns &&
               accel.makespan_ns <= adaptive.makespan_ns) {
      best = "accel";
    }
    const double share =
        static_cast<double>(adaptive.tasks_on_accel) /
        static_cast<double>(adaptive.tasks_on_accel + adaptive.tasks_on_mind);
    table.add_row(locality, mind.makespan_ns / 1e3, accel.makespan_ns / 1e3,
                  adaptive.makespan_ns / 1e3, best, share);
  }
  table.print("Makespan vs temporal locality (600 tasks, scaled chip)");
  std::printf("%s", table.render_csv().c_str());
  std::printf(
      "\nshape check: MIND wins at low locality, the accelerator at high "
      "locality, and the crossover motivates carrying both structures.\n");
  return 0;
}
