// ECHO-1: echo copy semantics vs home-anchored access (paper §2.2: "When a
// writable variable is to be used by many separate execution points during
// the same temporal interval, ParalleX may assert a copy semantics called
// echo ... This permits overlap between coherency verification and
// continued computation").
//
// K readers/writers spread across localities share one variable.  Each
// iteration does R reads, some compute, and occasionally a write.
//   home-anchored: every read and write is a round trip to the home
//                  locality (the no-replication discipline);
//   echo:          reads hit the local replica at zero fabric cost; writes
//                  are split-phase validated commits.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/action.hpp"
#include "core/echo.hpp"
#include "core/runtime.hpp"
#include "lco/lco.hpp"
#include "util/table.hpp"

namespace {

using namespace px;

constexpr int kIterations = 60;
constexpr int kReadsPerIter = 8;
constexpr double kComputeUs = 5.0;
constexpr int kWriteEvery = 10;  // one write per 10 iterations

double g_home_value = 0;

double home_read() { return g_home_value; }
PX_REGISTER_ACTION(home_read)

void home_write(double v) { g_home_value = v; }
PX_REGISTER_ACTION(home_write)

core::runtime_params make_params(std::size_t localities) {
  core::runtime_params p;
  p.localities = localities;
  p.workers_per_locality = 2;
  p.fabric.base_latency_ns = 20'000;  // 20us
  return p;
}

double run_home_anchored_ms(core::runtime& rt, int actors) {
  double ms = 0;
  rt.run([&] {
    ms = bench::time_ms([&] {
      lco::and_gate done(static_cast<std::uint64_t>(actors));
      for (int a = 0; a < actors; ++a) {
        const auto where =
            static_cast<gas::locality_id>(a % rt.num_localities());
        rt.at(where).spawn([&, a] {
          for (int it = 0; it < kIterations; ++it) {
            double acc = 0;
            for (int r = 0; r < kReadsPerIter; ++r) {
              acc += core::async<&home_read>(rt.locality_gid(0)).get();
            }
            bench::busy_spin_us(kComputeUs);
            if (it % kWriteEvery == a % kWriteEvery) {
              core::async<&home_write>(rt.locality_gid(0), acc + 1).get();
            }
          }
          done.signal();
        });
      }
      done.wait();
    });
  });
  return ms;
}

double run_echo_ms(core::runtime& rt, int actors) {
  double ms = 0;
  rt.run([&] {
    core::echo<double> var(rt, 0, 0.0);
    ms = bench::time_ms([&] {
      lco::and_gate done(static_cast<std::uint64_t>(actors));
      for (int a = 0; a < actors; ++a) {
        const auto where =
            static_cast<gas::locality_id>(a % rt.num_localities());
        rt.at(where).spawn([&, a] {
          for (int it = 0; it < kIterations; ++it) {
            double acc = 0;
            std::uint64_t version = 0;
            for (int r = 0; r < kReadsPerIter; ++r) {
              auto [v, ver] = var.read();  // local replica: no fabric
              acc += v;
              version = ver;
            }
            bench::busy_spin_us(kComputeUs);
            if (it % kWriteEvery == a % kWriteEvery) {
              // Split-phase: continue only when validation demands it.
              auto ack = var.commit(version, acc + 1);
              if (!ack.get()) {
                var.update([&](double cur) { return cur + 1; });
              }
            }
          }
          done.signal();
        });
      }
      done.wait();
    });
  });
  return ms;
}

}  // namespace

int main() {
  using namespace px;
  bench::banner(
      "ECHO-1 / echo copy semantics vs home-anchored sharing (section 2.2)",
      "\"echo ... identifies the tree of equivalent locations all of which "
      "are to be operated upon as if a single value ... reducing the "
      "apparent latency and increasing the available parallelism.\"");

  util::text_table table({"sharers", "home-anchored (ms)", "echo (ms)",
                          "speedup", "stale commits"});
  for (const int actors : {1, 2, 4, 8, 16}) {
    core::runtime rt(make_params(4));
    rt.start();
    const double home_ms = run_home_anchored_ms(rt, actors);
    const auto stale_before = rt.echo_mgr().stats().commits_stale;
    const double echo_ms = run_echo_ms(rt, actors);
    const auto stale =
        rt.echo_mgr().stats().commits_stale - stale_before;
    table.add_row(actors, home_ms, echo_ms, home_ms / echo_ms,
                  static_cast<std::int64_t>(stale));
    rt.stop();
  }
  table.print(
      "read-mostly sharing (8 reads : 0.1 writes per iter), 20us fabric");
  std::printf("%s", table.render_csv().c_str());
  std::printf(
      "\nshape check: home-anchored cost scales with reads x latency x "
      "sharers; echo reads are local so time stays near the compute+write "
      "bound, with occasional stale-commit retries under contention.\n");
  return 0;
}
