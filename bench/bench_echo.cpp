// ECHO-1: echo copy semantics vs home-anchored access (paper §2.2: "When a
// writable variable is to be used by many separate execution points during
// the same temporal interval, ParalleX may assert a copy semantics called
// echo ... This permits overlap between coherency verification and
// continued computation").
//
// K readers/writers spread across localities share one variable.  Each
// iteration does R reads, some compute, and occasionally a write.
//   home-anchored: every read and write is a round trip to the home
//                  locality (the no-replication discipline);
//   echo:          reads hit the local replica at zero fabric cost; writes
//                  are split-phase validated commits.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/action.hpp"
#include "core/echo.hpp"
#include "core/runtime.hpp"
#include "lco/lco.hpp"
#include "util/subproc.hpp"
#include "util/table.hpp"

namespace {

using namespace px;

constexpr int kIterations = 60;
constexpr int kReadsPerIter = 8;
constexpr double kComputeUs = 5.0;
constexpr int kWriteEvery = 10;  // one write per 10 iterations

double g_home_value = 0;

double home_read() { return g_home_value; }
PX_REGISTER_ACTION(home_read)

void home_write(double v) { g_home_value = v; }
PX_REGISTER_ACTION(home_write)

core::runtime_params make_params(std::size_t localities) {
  core::runtime_params p;
  p.localities = localities;
  p.workers_per_locality = 2;
  p.fabric.base_latency_ns = 20'000;  // 20us
  return p;
}

double run_home_anchored_ms(core::runtime& rt, int actors) {
  double ms = 0;
  rt.run([&] {
    ms = bench::time_ms([&] {
      lco::and_gate done(static_cast<std::uint64_t>(actors));
      for (int a = 0; a < actors; ++a) {
        const auto where =
            static_cast<gas::locality_id>(a % rt.num_localities());
        rt.at(where).spawn([&, a] {
          for (int it = 0; it < kIterations; ++it) {
            double acc = 0;
            for (int r = 0; r < kReadsPerIter; ++r) {
              acc += core::async<&home_read>(rt.locality_gid(0)).get();
            }
            bench::busy_spin_us(kComputeUs);
            if (it % kWriteEvery == a % kWriteEvery) {
              core::async<&home_write>(rt.locality_gid(0), acc + 1).get();
            }
          }
          done.signal();
        });
      }
      done.wait();
    });
  });
  return ms;
}

double run_echo_ms(core::runtime& rt, int actors) {
  double ms = 0;
  rt.run([&] {
    core::echo<double> var(rt, 0, 0.0);
    ms = bench::time_ms([&] {
      lco::and_gate done(static_cast<std::uint64_t>(actors));
      for (int a = 0; a < actors; ++a) {
        const auto where =
            static_cast<gas::locality_id>(a % rt.num_localities());
        rt.at(where).spawn([&, a] {
          for (int it = 0; it < kIterations; ++it) {
            double acc = 0;
            std::uint64_t version = 0;
            for (int r = 0; r < kReadsPerIter; ++r) {
              auto [v, ver] = var.read();  // local replica: no fabric
              acc += v;
              version = ver;
            }
            bench::busy_spin_us(kComputeUs);
            if (it % kWriteEvery == a % kWriteEvery) {
              // Split-phase: continue only when validation demands it.
              auto ack = var.commit(version, acc + 1);
              if (!ack.get()) {
                var.update([&](double cur) { return cur + 1; });
              }
            }
          }
          done.signal();
        });
      }
      done.wait();
    });
  });
  return ms;
}

// ---------------------------------------------- two-process net mode
//
// PX_BENCH_NET=1 turns this binary into a two-process transport benchmark:
// the parent forks itself as ranks once per backend — tcp loopback, then
// shm rings — and each pass has rank 0 measure (a) single-request action
// round-trip latency (the eager-flush path) and (b) batched
// fire-and-forget parcel throughput including the distributed quiescence
// wait.  The launcher collects both passes into one BENCH_net.json with a
// per-backend section each plus shm-vs-tcp speedup headlines.  This is the
// perf-trajectory probe for the real data planes, the wire counterpart of
// the modeled numbers in BENCH_latency.json/BENCH_overhead.json.

std::uint64_t net_ping(std::uint64_t x) { return x + 1; }
PX_REGISTER_ACTION(net_ping)

std::atomic<std::uint64_t> g_net_hits{0};
void net_storm_hit() { g_net_hits.fetch_add(1); }
PX_REGISTER_ACTION(net_storm_hit)

int net_rank_main() {
  const int rtt_iters = bench::smoke_mode() ? 200 : 5000;
  const int storm_parcels = bench::smoke_mode() ? 20'000 : 400'000;
  const char* backend_env = std::getenv("PX_NET_BACKEND");
  const std::string backend = backend_env != nullptr ? backend_env : "tcp";

  core::runtime rt;  // backend/rank/ranks from the launcher's PX_NET_* env
  double rtt_us = 0.0;
  util::log_histogram rtt_hist;  // per-request ns, for the tail columns
  rt.run([&] {
    if (rt.rank() != 0) return;
    for (int i = 0; i < 50; ++i) {  // warmup
      core::async<&net_ping>(rt.locality_gid(1), 1ull).get();
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < rtt_iters; ++i) {
      const auto r0 = std::chrono::steady_clock::now();
      core::async<&net_ping>(rt.locality_gid(1),
                             static_cast<std::uint64_t>(i))
          .get();
      rtt_hist.add(std::chrono::duration<double, std::nano>(
                       std::chrono::steady_clock::now() - r0)
                       .count());
    }
    rtt_us = std::chrono::duration<double, std::micro>(
                 std::chrono::steady_clock::now() - t0)
                 .count() /
             rtt_iters;
  });

  // Throughput storm, timed around run() so the figure includes shipping,
  // remote delivery, AND the distributed quiescence proof.
  const auto t0 = std::chrono::steady_clock::now();
  rt.run([&] {
    if (rt.rank() != 0) return;
    for (int i = 0; i < storm_parcels; ++i) {
      core::apply<&net_storm_hit>(rt.locality_gid(1));
    }
  });
  const double storm_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();

  int rc = 0;
  if (rt.rank() == 1 &&
      g_net_hits.load() != static_cast<std::uint64_t>(storm_parcels)) {
    std::fprintf(stderr, "net bench: rank 1 saw %llu of %d storm parcels\n",
                 static_cast<unsigned long long>(g_net_hits.load()),
                 storm_parcels);
    rc = 1;
  }
  if (rt.rank() == 0) {
    const auto link = rt.transport().link(0);
    const double parcels_per_sec = storm_parcels / (storm_ms / 1000.0);
    std::printf("%s: %.1f us/round-trip, storm %d parcels in "
                "%.1f ms (%.0f parcels/s, %llu frames, %llu bytes tx)\n",
                backend.c_str(), rtt_us, storm_parcels, storm_ms,
                parcels_per_sec,
                static_cast<unsigned long long>(link.msgs_tx),
                static_cast<unsigned long long>(link.bytes_tx));
    bench::json_writer json;
    bench::add_metadata(json, backend);
    json.add("rtt_iters", static_cast<std::int64_t>(rtt_iters));
    json.add("single_request_rtt_us", rtt_us);
    bench::add_hist_percentiles(json, "rtt_ns", rtt_hist);
    json.add("storm_parcels", static_cast<std::int64_t>(storm_parcels));
    json.add("storm_ms", storm_ms);
    json.add("parcels_per_sec", parcels_per_sec);
    json.add("frames_tx", static_cast<std::int64_t>(link.msgs_tx));
    json.add("bytes_tx", static_cast<std::int64_t>(link.bytes_tx));
    // The launcher collates the per-backend sections; this rank only
    // drops its own where the launcher told it to.
    const char* out = std::getenv("PX_BENCH_NET_OUT");
    json.write(out != nullptr ? out : "BENCH_net.json");
  }
  rt.stop();
  return rc;
}

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  while (!out.empty() && (out.back() == '\n' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

// Pulls `"key": <number>` out of a rendered section; 0.0 when absent.
double json_number(const std::string& body, const std::string& key) {
  const auto pos = body.find("\"" + key + "\": ");
  if (pos == std::string::npos) return 0.0;
  return std::strtod(body.c_str() + pos + key.size() + 4, nullptr);
}

// One backend pass: two ranks over `backend`, rank 0's section written to
// `out_path`.  Returns false if any rank failed.
bool net_run_backend(const std::string& backend, const std::string& out_path) {
  const int nranks = 2;
  const int root_port = util::pick_free_tcp_port();
  std::printf("-- %s pass: launching %d ranks\n", backend.c_str(), nranks);
  const std::vector<std::string> argv = {util::self_exe_path()};
  std::vector<pid_t> pids;
  for (int r = 0; r < nranks; ++r) {
    auto env = util::net_rank_env(r, nranks, root_port, backend);
    env.emplace_back("PX_BENCH_NET_OUT", out_path);
    pids.push_back(util::spawn_process(argv, env));
  }
  int failures = 0;
  for (int r = 0; r < nranks; ++r) {
    if (util::wait_exit(pids[r]) != 0) failures += 1;
  }
  if (failures != 0) {
    std::fprintf(stderr, "net bench: %d %s rank(s) failed\n", failures,
                 backend.c_str());
    return false;
  }
  return true;
}

int net_launcher_main() {
  std::printf("ECHO-net / two-process parcel bench: tcp loopback vs shm\n");
  bool ok = true;
  std::vector<std::string> sections;
  for (const std::string backend : {"tcp", "shm"}) {
    const std::string part = "BENCH_net." + backend + ".part.json";
    if (!net_run_backend(backend, part)) {
      ok = false;
      continue;
    }
    const std::string body = slurp(part);
    std::remove(part.c_str());
    if (body.empty()) {
      std::fprintf(stderr, "net bench: missing %s section\n",
                   backend.c_str());
      ok = false;
      continue;
    }
    sections.push_back(body);
  }
  if (!ok || sections.size() != 2) return 1;

  const std::string& tcp = sections[0];
  const std::string& shm = sections[1];
  bench::json_writer json;
  json.add("bench", std::string("net"));
  bench::add_metadata(json, "tcp+shm");
  json.add("smoke", static_cast<std::int64_t>(bench::smoke_mode() ? 1 : 0));
  json.add("ranks", static_cast<std::int64_t>(2));
  json.add_rows("backends", sections);
  // Headlines a dashboard can threshold without digging into sections.
  const double tcp_rtt = json_number(tcp, "single_request_rtt_us");
  const double shm_rtt = json_number(shm, "single_request_rtt_us");
  const double tcp_pps = json_number(tcp, "parcels_per_sec");
  const double shm_pps = json_number(shm, "parcels_per_sec");
  json.add("tcp_rtt_us", tcp_rtt);
  json.add("shm_rtt_us", shm_rtt);
  json.add("tcp_parcels_per_sec", tcp_pps);
  json.add("shm_parcels_per_sec", shm_pps);
  json.add("shm_speedup_rtt", shm_rtt > 0 ? tcp_rtt / shm_rtt : 0.0);
  json.add("shm_speedup_storm", tcp_pps > 0 ? shm_pps / tcp_pps : 0.0);
  json.write("BENCH_net.json");
  std::printf("shm vs tcp: rtt %.1fus -> %.1fus (%.1fx), storm %.0f -> "
              "%.0f parcels/s (%.2fx)\n",
              tcp_rtt, shm_rtt, shm_rtt > 0 ? tcp_rtt / shm_rtt : 0.0,
              tcp_pps, shm_pps, tcp_pps > 0 ? shm_pps / tcp_pps : 0.0);
  return 0;
}

}  // namespace

int main() {
  using namespace px;
  if (std::getenv("PX_BENCH_NET") != nullptr &&
      std::getenv("PX_BENCH_NET")[0] != '0') {
    // Children carry PX_NET_RANK (set by the launcher); the plain
    // invocation is the launcher itself.
    return std::getenv("PX_NET_RANK") != nullptr ? net_rank_main()
                                                 : net_launcher_main();
  }
  bench::banner(
      "ECHO-1 / echo copy semantics vs home-anchored sharing (section 2.2)",
      "\"echo ... identifies the tree of equivalent locations all of which "
      "are to be operated upon as if a single value ... reducing the "
      "apparent latency and increasing the available parallelism.\"");

  util::text_table table({"sharers", "home-anchored (ms)", "echo (ms)",
                          "speedup", "stale commits"});
  for (const int actors : {1, 2, 4, 8, 16}) {
    core::runtime rt(make_params(4));
    rt.start();
    const double home_ms = run_home_anchored_ms(rt, actors);
    const auto stale_before = rt.echo_mgr().stats().commits_stale;
    const double echo_ms = run_echo_ms(rt, actors);
    const auto stale =
        rt.echo_mgr().stats().commits_stale - stale_before;
    table.add_row(actors, home_ms, echo_ms, home_ms / echo_ms,
                  static_cast<std::int64_t>(stale));
    rt.stop();
  }
  table.print(
      "read-mostly sharing (8 reads : 0.1 writes per iter), 20us fabric");
  std::printf("%s", table.render_csv().c_str());
  std::printf(
      "\nshape check: home-anchored cost scales with reads x latency x "
      "sharers; echo reads are local so time stays near the compute+write "
      "bound, with occasional stale-commit retries under contention.\n");
  return 0;
}
