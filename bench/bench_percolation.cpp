// PERC-1: percolation (prestaging) vs demand fetch vs self-issued prefetch
// at a precious compute resource (paper §2.2: "Percolation ... employs
// ancillary mechanisms to prestage data and tasks in high speed memory near
// the high cost compute elements ... Prefetching is also a form of
// prestaging but performed by the compute element itself, thus imposing the
// overhead burden, and possibly the impact of latency, on it as well").
//
// The precious resource is modelled explicitly: locality 1 owns ONE compute
// unit (a semaphore LCO) that a task must hold for its entire occupancy —
// like a dense-math engine that cannot context-switch mid-kernel.  64 tasks
// each need 4 operand blocks homed at locality 0 plus 80us of compute.
//   demand   : the task acquires the unit, then round-trips per block —
//              the unit sits idle under every exposed latency;
//   prefetch : the task acquires the unit, issues all fetches itself
//              (paying per-block issue overhead on the unit), overlaps the
//              flights, then computes — one latency + overhead exposed;
//   percolate: ancillary source-side machinery ships blocks+task together;
//              the unit is only ever held for compute.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/action.hpp"
#include "core/percolation.hpp"
#include "core/runtime.hpp"
#include "lco/lco.hpp"
#include "util/table.hpp"

namespace {

using namespace px;

constexpr int kTasks = 64;
constexpr int kBlocksPerTask = 4;
constexpr std::size_t kBlockBytes = 2048;
constexpr double kComputeUs = 80.0;
constexpr double kIssueOverheadUs = 8.0;  // prefetch engine on the unit

// The precious compute unit at locality 1.
lco::counting_semaphore* g_unit = nullptr;

std::vector<std::byte> fetch_block(std::uint64_t) {
  return std::vector<std::byte>(kBlockBytes);
}
PX_REGISTER_ACTION(fetch_block)

double consume(const std::vector<std::byte>& block) {
  double acc = 0;
  for (std::size_t i = 0; i < block.size(); i += 64) {
    acc += static_cast<double>(std::to_integer<int>(block[i]));
  }
  return acc;
}

// Demand-fetch: the unit is held across every serial round trip.
void task_demand(std::uint64_t task_id) {
  core::runtime& rt = core::this_locality()->rt();
  g_unit->acquire();
  for (int b = 0; b < kBlocksPerTask; ++b) {
    auto block = core::async<&fetch_block>(
                     rt.locality_gid(0),
                     task_id * kBlocksPerTask + static_cast<std::uint64_t>(b))
                     .get();  // unit idle: latency exposed at the resource
    (void)consume(block);
  }
  bench::busy_spin_us(kComputeUs);
  g_unit->release();
}
PX_REGISTER_ACTION(task_demand)

// Prefetch: flights overlap, but issue overhead and one latency are still
// paid while holding the unit.
void task_prefetch(std::uint64_t task_id) {
  core::runtime& rt = core::this_locality()->rt();
  g_unit->acquire();
  std::vector<lco::future<std::vector<std::byte>>> futs;
  for (int b = 0; b < kBlocksPerTask; ++b) {
    bench::busy_spin_us(kIssueOverheadUs);  // the compute element pays
    futs.push_back(core::async<&fetch_block>(
        rt.locality_gid(0),
        task_id * kBlocksPerTask + static_cast<std::uint64_t>(b)));
  }
  for (auto& f : futs) (void)consume(f.get());
  bench::busy_spin_us(kComputeUs);
  g_unit->release();
}
PX_REGISTER_ACTION(task_prefetch)

// Percolated: operands arrived with the task; the unit only computes.
void task_staged(std::vector<std::byte> b0, std::vector<std::byte> b1,
                 std::vector<std::byte> b2, std::vector<std::byte> b3) {
  (void)consume(b0);
  (void)consume(b1);
  (void)consume(b2);
  (void)consume(b3);
  g_unit->acquire();
  bench::busy_spin_us(kComputeUs);
  g_unit->release();
}
PX_REGISTER_ACTION(task_staged)

core::runtime_params make_params(std::uint64_t latency_ns) {
  core::runtime_params p;
  p.localities = 2;
  // One worker per locality: the target is a single-pipe resource by
  // construction, and extra busy-spinning workers would only starve the
  // fabric progress thread on small host machines.
  p.workers_per_locality = 1;
  p.staging_slots_per_locality = 8;
  p.fabric.base_latency_ns = latency_ns;
  p.fabric.bytes_per_ns = 4.0;
  return p;
}

template <auto TaskFn>
double run_pull_strategy_ms(std::uint64_t latency_ns) {
  core::runtime rt(make_params(latency_ns));
  rt.start();
  lco::counting_semaphore unit(1);
  g_unit = &unit;
  double ms = 0;
  rt.run([&] {
    ms = bench::time_ms([&] {
      lco::and_gate done(kTasks);
      for (int t = 0; t < kTasks; ++t) {
        auto fut = core::async<TaskFn>(rt.locality_gid(1),
                                       static_cast<std::uint64_t>(t));
        fut.on_ready([&done] { done.signal(); });
      }
      done.wait();
    });
  });
  rt.stop();
  return ms;
}

double run_percolate_ms(std::uint64_t latency_ns) {
  core::runtime rt(make_params(latency_ns));
  rt.start();
  lco::counting_semaphore unit(1);
  g_unit = &unit;
  double ms = 0;
  rt.run([&] {
    ms = bench::time_ms([&] {
      lco::and_gate done(kTasks);
      for (int t = 0; t < kTasks; ++t) {
        core::this_locality()->spawn([&rt, &done] {
          // The ancillary (source-side) machinery gathers the operands and
          // pushes everything at once; back-pressure via staging slots.
          auto fut = core::percolate<&task_staged>(
              1, std::vector<std::byte>(kBlockBytes),
              std::vector<std::byte>(kBlockBytes),
              std::vector<std::byte>(kBlockBytes),
              std::vector<std::byte>(kBlockBytes));
          fut.on_ready([&done] { done.signal(); });
        });
      }
      done.wait();
    });
  });
  rt.stop();
  return ms;
}

}  // namespace

int main() {
  using namespace px;
  bench::banner(
      "PERC-1 / percolation vs demand fetch vs prefetch (paper section 2.2)",
      "\"Percolation ... prestages data and tasks in high speed memory near "
      "the high cost compute elements ... Prefetching ... imposes the "
      "overhead burden, and possibly the impact of latency, on [the compute "
      "element] as well.\"");

  const double unit_bound_ms = kTasks * kComputeUs / 1000.0;
  util::text_table table({"latency (us)", "demand (ms)", "prefetch (ms)",
                          "percolate (ms)", "unit util (percolate)"});
  for (const std::uint64_t lat_us : {5ull, 20ull, 50ull, 100ull}) {
    const double demand = run_pull_strategy_ms<&task_demand>(lat_us * 1000);
    const double prefetch =
        run_pull_strategy_ms<&task_prefetch>(lat_us * 1000);
    const double perc = run_percolate_ms(lat_us * 1000);
    table.add_row(static_cast<std::int64_t>(lat_us), demand, prefetch, perc,
                  unit_bound_ms / perc);
  }
  table.print(
      "64 tasks x (4 operand blocks + 80us on an exclusive compute unit)");
  std::printf("%s", table.render_csv().c_str());
  std::printf(
      "\nshape check: demand degrades linearly with latency (unit held idle "
      "across serial round trips); prefetch exposes one latency plus issue "
      "overhead per block on the unit; percolation keeps the unit at its "
      "compute bound regardless of latency.\n");
  return 0;
}
