// DP-1: regenerate the Gilgamesh II design-point arithmetic (paper §3.2).
//
// The paper's quantitative claims — 16 PIM x 32 MIND per chip, ~10 TF/chip,
// >1 EF from 100K chips, 4 PB with the Penultimate Store — derived from
// per-unit technology parameters instead of quoted.
#include <cstdio>

#include "common.hpp"
#include "gilgamesh/tech.hpp"
#include "util/table.hpp"

int main() {
  using namespace px;
  bench::banner(
      "DP-1 / design point (paper section 3.2)",
      "\"A peak performance in excess of 1 Exaflops is achievable with 100K "
      "chips. Each Gilgamesh chip is a heterogeneous multicore subsystem "
      "with a dataflow accelerator and 16 PIM modules, each with 32 MIND "
      "nodes. Each chip is capable of approximately 10 Teraflops... a DRAM "
      "backing store referred to as the Penultimate Store is included on an "
      "additional 100K chips for a total memory storage of 4 Petabytes.\"");

  const gilgamesh::design_point dp;
  gilgamesh::chip_composition_table(dp).print("Chip composition (Figure 1)");
  gilgamesh::design_point_table(dp).print("System design point");

  std::printf("checks: chip ~10 TF: %s | system > 1 EF: %s | memory ~4 PB: %s\n",
              (dp.chip_sustained_tflops >= 9 && dp.chip_sustained_tflops <= 11)
                  ? "PASS" : "FAIL",
              dp.system_peak_pflops > 1000 ? "PASS" : "FAIL",
              (dp.total_memory_pbytes > 3.75 && dp.total_memory_pbytes < 4.25)
                  ? "PASS" : "FAIL");
  return 0;
}
