// WORK-1: move work to the data vs move data to the work (paper §2.2:
// ParalleX "moves the work to the data when this is preferable to just
// moving the data to the work as is conventionally done").
//
// A dataset lives at locality 1.  A client at locality 0 must run K
// operations against it.
//   data-to-work: fetch the whole dataset once (pays size/bandwidth), then
//                 operate locally K times — the CSP/get model;
//   work-to-data: send K small parcels that operate in place, each paying
//                 a round trip but moving only bytes of arguments/results.
// The crossover in K (amortization of the bulk transfer) is the point: an
// execution model must support *both*, choosing per use.
#include <cstdio>
#include <numeric>
#include <vector>

#include "common.hpp"
#include "core/action.hpp"
#include "core/runtime.hpp"
#include "util/table.hpp"

namespace {

using namespace px;

constexpr std::size_t kElems = 1 << 17;  // 1 MiB of doubles
std::vector<double> g_dataset;

std::vector<double> fetch_dataset() { return g_dataset; }
PX_REGISTER_ACTION(fetch_dataset)

double operate_in_place(std::uint64_t op) {
  // A small reduction over a window: cheap compute on big data.
  const std::size_t begin = (op * 4099) % (kElems - 1024);
  double acc = 0;
  for (std::size_t i = begin; i < begin + 1024; ++i) acc += g_dataset[i];
  return acc;
}
PX_REGISTER_ACTION(operate_in_place)

double local_operate(const std::vector<double>& data, std::uint64_t op) {
  const std::size_t begin = (op * 4099) % (kElems - 1024);
  double acc = 0;
  for (std::size_t i = begin; i < begin + 1024; ++i) acc += data[i];
  return acc;
}

}  // namespace

int main() {
  using namespace px;
  bench::banner(
      "WORK-1 / work-to-data vs data-to-work crossover (paper section 2.2)",
      "\"...moves the work to the data when this is preferable to just "
      "moving the data to the work as is conventionally done.\"");

  g_dataset.resize(kElems);
  std::iota(g_dataset.begin(), g_dataset.end(), 0.0);

  core::runtime_params p;
  p.localities = 2;
  p.workers_per_locality = 2;
  p.fabric.base_latency_ns = 20'000;  // 20us
  p.fabric.bytes_per_ns = 1.0;        // 1 GB/s: 1 MiB costs ~1ms on the wire
  core::runtime rt(p);
  rt.start();

  util::text_table table({"ops K", "data-to-work (ms)", "work-to-data (ms)",
                          "winner"});
  for (const std::uint64_t k : {1ull, 4ull, 16ull, 64ull, 256ull, 1024ull}) {
    double ship_data_ms = 0, ship_work_ms = 0;
    rt.run([&] {
      ship_data_ms = bench::time_ms([&] {
        auto data = core::async<&fetch_dataset>(rt.locality_gid(1)).get();
        double acc = 0;
        for (std::uint64_t op = 0; op < k; ++op) acc += local_operate(data, op);
        (void)acc;
      });
    });
    rt.run([&] {
      ship_work_ms = bench::time_ms([&] {
        // Pipeline the parcels (split-phase), gather at the end.
        std::vector<lco::future<double>> futs;
        futs.reserve(k);
        for (std::uint64_t op = 0; op < k; ++op) {
          futs.push_back(
              core::async<&operate_in_place>(rt.locality_gid(1), op));
        }
        double acc = 0;
        for (auto& f : futs) acc += f.get();
        (void)acc;
      });
    });
    table.add_row(static_cast<std::int64_t>(k), ship_data_ms, ship_work_ms,
                  ship_work_ms < ship_data_ms ? "work-to-data"
                                              : "data-to-work");
  }
  table.print("1 MiB dataset at locality 1, 20us latency, 1 GB/s fabric");
  std::printf("%s", table.render_csv().c_str());
  std::printf(
      "\nshape check: work-to-data wins until the bulk transfer amortizes "
      "over many operations; the crossover K is the decision boundary.\n");
  rt.stop();
  return 0;
}
