// OVH-1: overhead determines the minimum exploitable task granularity
// (paper §2.1: "Overhead ... can determine the scalability of a system and
// the minimum granularity of program tasks that can be effectively
// exploited").
//
// Part 1 — thread overhead: fixed total work (160ms of compute) is cut
// into tasks of decreasing grain and executed by (a) ParalleX threads on
// the work-stealing scheduler and (b) one OS thread per task.  Efficiency
// = ideal parallel time / measured time.  The grain at which efficiency
// collapses is the system's minimum exploitable granularity.
//
// Part 2 — parcel overhead: a cross-locality apply storm of small parcels
// measured with the coalescing parcel port enabled vs disabled.  The
// per-parcel cost is the communication-side analogue of the same claim:
// batching amortizes the fabric's per-message costs, lowering the minimum
// message granularity the runtime can exploit.
//
// Emits BENCH_overhead.json next to the binary's cwd for the perf
// trajectory; PX_BENCH_SMOKE=1 shrinks everything to CI scale.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/action.hpp"
#include "core/runtime.hpp"
#include "threads/scheduler.hpp"
#include "util/table.hpp"

namespace {

using namespace px;

const double kTotalWorkMs = bench::smoke_mode() ? 8.0 : 160.0;
// Matched to the physical cores: oversubscribed workers would time-share
// and corrupt the efficiency figures.
const unsigned kWorkers = std::max(1u, std::thread::hardware_concurrency());

double parallex_ms(double grain_us, std::size_t tasks) {
  threads::scheduler sched(threads::scheduler_params{.workers = kWorkers});
  sched.start();
  const double ms = bench::time_ms([&] {
    for (std::size_t i = 0; i < tasks; ++i) {
      sched.spawn([grain_us] { bench::busy_spin_us(grain_us); });
    }
    sched.wait_quiescent();
  });
  sched.stop();
  return ms;
}

double os_threads_ms(double grain_us, std::size_t tasks) {
  // One OS thread per task, throttled in waves of 64 so the process does
  // not exhaust thread limits at fine grain.
  const double ms = bench::time_ms([&] {
    std::size_t launched = 0;
    while (launched < tasks) {
      const std::size_t wave = std::min<std::size_t>(64, tasks - launched);
      std::vector<std::thread> threads;
      threads.reserve(wave);
      for (std::size_t i = 0; i < wave; ++i) {
        threads.emplace_back([grain_us] { bench::busy_spin_us(grain_us); });
      }
      for (auto& t : threads) t.join();
      launched += wave;
    }
  });
  return ms;
}

// ------------------------------------------------------ parcel overhead

std::atomic<std::int64_t> g_parcel_sink{0};

void parcel_nop(std::int64_t x) {
  g_parcel_sink.fetch_add(x, std::memory_order_relaxed);
}
PX_REGISTER_ACTION(parcel_nop)

// Dispatch-only counter: a raw fast-path action that runs inline on the
// delivery thread (like sink continuations do), so the storm below
// measures the parcel *pipeline* — encode, port, fabric, zero-copy decode,
// dispatch — without conflating in per-parcel thread instantiation (part 1
// already measures that).
parcel::action_id dispatch_count_action() {
  static const parcel::action_id id =
      parcel::action_registry::global().register_action(
          "bench.ovh.count", +[](void*, const parcel::parcel_view& pv) {
            g_parcel_sink.fetch_add(1, std::memory_order_relaxed);
            (void)pv;
          });
  return id;
}

core::runtime_params storm_params(bool coalesce) {
  core::runtime_params p;
  p.localities = 4;
  p.workers_per_locality = 2;
  if (!coalesce) p.parcel_flush_count = 1;  // one frame per parcel
  return p;
}

// Per-parcel wall time (ns) for a storm of small remote parcels from
// locality 0 to localities 1..3, with or without coalescing.  `spawning`
// selects the typed-action path (each parcel instantiates a thread) vs the
// dispatch-only path (pure pipeline cost).
double parcel_storm_ns(bool coalesce, bool spawning, int parcels) {
  core::runtime rt(storm_params(coalesce));
  g_parcel_sink.store(0);
  const double ms = bench::time_ms([&] {
    rt.run([&] {
      if (spawning) {
        for (int i = 0; i < parcels; ++i) {
          core::apply<&parcel_nop>(rt.locality_gid(1 + i % 3),
                                   std::int64_t{1});
        }
      } else {
        auto* here = core::this_locality();
        const parcel::action_id count = dispatch_count_action();
        for (int i = 0; i < parcels; ++i) {
          parcel::parcel t;
          t.destination = rt.locality_gid(1 + i % 3);
          t.action = count;
          t.arguments = util::to_bytes(std::int64_t{1});  // small payload
          here->send(std::move(t));
        }
      }
    });
  });
  rt.stop();
  if (g_parcel_sink.load() != parcels) {
    std::fprintf(stderr, "parcel storm lost parcels: %lld/%d\n",
                 static_cast<long long>(g_parcel_sink.load()), parcels);
  }
  return ms * 1e6 / parcels;
}

}  // namespace

int main() {
  using namespace px;
  bench::banner(
      "OVH-1 / overhead and minimum exploitable granularity (section 2.1)",
      "\"Overhead is the critical path work required to manage parallel "
      "physical resources and concurrent abstract tasks.  Overhead can "
      "determine ... the minimum granularity of program tasks that can be "
      "effectively exploited.\"");

  const double ideal_ms = kTotalWorkMs / kWorkers;
  std::vector<std::string> grain_rows;
  util::text_table table({"grain (us)", "tasks", "ParalleX (ms)", "PX eff",
                          "OS threads (ms)", "OS eff"});
  const std::vector<double> grains = bench::smoke_mode()
                                         ? std::vector<double>{250.0, 50.0}
                                         : std::vector<double>{1000.0, 250.0,
                                                               50.0, 10.0,
                                                               2.0};
  for (const double grain_us : grains) {
    const auto tasks =
        static_cast<std::size_t>(kTotalWorkMs * 1000.0 / grain_us);
    const double px_ms = parallex_ms(grain_us, tasks);
    // OS threads become hopeless below ~50us; cap the task count to keep
    // the run bounded and report the measured (terrible) efficiency.
    const double os_ms = os_threads_ms(grain_us, tasks);
    table.add_row(grain_us, static_cast<std::int64_t>(tasks), px_ms,
                  ideal_ms / px_ms, os_ms, ideal_ms / os_ms);
    char row[256];
    std::snprintf(row, sizeof row,
                  "{\"grain_us\": %g, \"tasks\": %zu, \"parallex_ms\": %.4g, "
                  "\"px_efficiency\": %.4g, \"os_threads_ms\": %.4g, "
                  "\"os_efficiency\": %.4g}",
                  grain_us, tasks, px_ms, ideal_ms / px_ms, os_ms,
                  ideal_ms / os_ms);
    grain_rows.push_back(row);
  }
  table.print("thread overhead: fixed total compute, decreasing grain");
  std::printf("%s", table.render_csv().c_str());

  const int parcels = bench::smoke_mode() ? 4'000 : 40'000;
  const double pipe_batched_ns =
      parcel_storm_ns(/*coalesce=*/true, /*spawning=*/false, parcels);
  const double pipe_unbatched_ns =
      parcel_storm_ns(/*coalesce=*/false, /*spawning=*/false, parcels);
  const double spawn_batched_ns =
      parcel_storm_ns(/*coalesce=*/true, /*spawning=*/true, parcels);
  const double spawn_unbatched_ns =
      parcel_storm_ns(/*coalesce=*/false, /*spawning=*/true, parcels);
  util::text_table ptable(
      {"path", "mode", "parcels", "ns/parcel", "speedup vs unbatched"});
  ptable.add_row("pipeline", "batched", static_cast<std::int64_t>(parcels),
                 pipe_batched_ns, pipe_unbatched_ns / pipe_batched_ns);
  ptable.add_row("pipeline", "unbatched", static_cast<std::int64_t>(parcels),
                 pipe_unbatched_ns, 1.0);
  ptable.add_row("+thread spawn", "batched",
                 static_cast<std::int64_t>(parcels), spawn_batched_ns,
                 spawn_unbatched_ns / spawn_batched_ns);
  ptable.add_row("+thread spawn", "unbatched",
                 static_cast<std::int64_t>(parcels), spawn_unbatched_ns, 1.0);
  ptable.print("parcel overhead: small-parcel storm, 1 -> 3 localities");
  std::printf("%s", ptable.render_csv().c_str());

  bench::json_writer json;
  json.add("bench", std::string("overhead"));
  bench::add_metadata(json, "sim");
  json.add("workers", static_cast<std::int64_t>(kWorkers));
  json.add("total_work_ms", kTotalWorkMs);
  json.add("smoke", static_cast<std::int64_t>(bench::smoke_mode() ? 1 : 0));
  json.add_rows("grains", grain_rows);
  json.add("parcels", static_cast<std::int64_t>(parcels));
  json.add("parcel_ns_batched", pipe_batched_ns);
  json.add("parcel_ns_unbatched", pipe_unbatched_ns);
  json.add("parcel_batching_speedup", pipe_unbatched_ns / pipe_batched_ns);
  json.add("parcel_spawn_ns_batched", spawn_batched_ns);
  json.add("parcel_spawn_ns_unbatched", spawn_unbatched_ns);
  json.write("BENCH_overhead.json");

  std::printf(
      "\nshape check: ParalleX threads sustain efficiency to ~10us grains "
      "(OS threads collapse orders of magnitude earlier), and batching "
      "cuts per-parcel cost by >=2x at small payloads.\n");
  return 0;
}
