// OVH-1: overhead determines the minimum exploitable task granularity
// (paper §2.1: "Overhead ... can determine the scalability of a system and
// the minimum granularity of program tasks that can be effectively
// exploited").
//
// Fixed total work (160ms of compute) is cut into tasks of decreasing
// grain and executed by (a) ParalleX threads on the work-stealing
// scheduler and (b) one OS thread per task.  Efficiency = ideal parallel
// time / measured time.  The grain at which efficiency collapses is the
// system's minimum exploitable granularity — the lighter the thread
// mechanism, the finer the parallelism it can harvest.
#include <cstdio>
#include <thread>
#include <vector>

#include "common.hpp"
#include "threads/scheduler.hpp"
#include "util/table.hpp"

namespace {

using namespace px;

constexpr double kTotalWorkMs = 160.0;
// Matched to the physical cores: oversubscribed workers would time-share
// and corrupt the efficiency figures.
const unsigned kWorkers = std::max(1u, std::thread::hardware_concurrency());

double parallex_ms(double grain_us, std::size_t tasks) {
  threads::scheduler sched(threads::scheduler_params{.workers = kWorkers});
  sched.start();
  const double ms = bench::time_ms([&] {
    for (std::size_t i = 0; i < tasks; ++i) {
      sched.spawn([grain_us] { bench::busy_spin_us(grain_us); });
    }
    sched.wait_quiescent();
  });
  sched.stop();
  return ms;
}

double os_threads_ms(double grain_us, std::size_t tasks) {
  // One OS thread per task, throttled in waves of 64 so the process does
  // not exhaust thread limits at fine grain.
  const double ms = bench::time_ms([&] {
    std::size_t launched = 0;
    while (launched < tasks) {
      const std::size_t wave = std::min<std::size_t>(64, tasks - launched);
      std::vector<std::thread> threads;
      threads.reserve(wave);
      for (std::size_t i = 0; i < wave; ++i) {
        threads.emplace_back([grain_us] { bench::busy_spin_us(grain_us); });
      }
      for (auto& t : threads) t.join();
      launched += wave;
    }
  });
  return ms;
}

}  // namespace

int main() {
  using namespace px;
  bench::banner(
      "OVH-1 / overhead and minimum exploitable granularity (section 2.1)",
      "\"Overhead is the critical path work required to manage parallel "
      "physical resources and concurrent abstract tasks.  Overhead can "
      "determine ... the minimum granularity of program tasks that can be "
      "effectively exploited.\"");

  const double ideal_ms = kTotalWorkMs / kWorkers;
  util::text_table table({"grain (us)", "tasks", "ParalleX (ms)", "PX eff",
                          "OS threads (ms)", "OS eff"});
  for (const double grain_us : {1000.0, 250.0, 50.0, 10.0, 2.0}) {
    const auto tasks =
        static_cast<std::size_t>(kTotalWorkMs * 1000.0 / grain_us);
    const double px_ms = parallex_ms(grain_us, tasks);
    // OS threads become hopeless below ~50us; cap the task count to keep
    // the run bounded and report the measured (terrible) efficiency.
    const double os_ms = os_threads_ms(grain_us, tasks);
    table.add_row(grain_us, static_cast<std::int64_t>(tasks), px_ms,
                  ideal_ms / px_ms, os_ms, ideal_ms / os_ms);
  }
  table.print("160ms of total compute, 4 workers");
  std::printf("%s", table.render_csv().c_str());
  std::printf(
      "\nshape check: ParalleX threads sustain efficiency to ~10us grains; "
      "OS threads collapse one to two orders of magnitude earlier.\n");
  return 0;
}
