// CONT-1: contention for shared resources (paper §2.1: "Contention for
// shared resources causes delays while one requesting execution site is
// blocked by another accessing the same needed resource").
//
// N ParalleX threads perform fixed per-thread updates against:
//   (a) one central mutex LCO (the shared channel/bank);
//   (b) 16 sharded mutex LCOs (distributed resource);
//   (c) hardware atomics (the locality's compound-atomic guarantee).
// Reported: wall time vs requester count — the contention curve the model
// tries to flatten by distributing control state into LCOs.
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "common.hpp"
#include "lco/lco.hpp"
#include "threads/scheduler.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace px;

constexpr int kUpdatesPerThread = 3000;
constexpr int kShards = 16;

double central_ms(threads::scheduler& sched, int requesters) {
  lco::mutex mtx;
  std::int64_t value = 0;
  const double ms = bench::time_ms([&] {
    for (int r = 0; r < requesters; ++r) {
      sched.spawn([&] {
        for (int i = 0; i < kUpdatesPerThread; ++i) {
          std::lock_guard lock(mtx);
          value += 1;
        }
      });
    }
    sched.wait_quiescent();
  });
  if (value != static_cast<std::int64_t>(requesters) * kUpdatesPerThread) {
    std::fprintf(stderr, "central count mismatch\n");
  }
  return ms;
}

double sharded_ms(threads::scheduler& sched, int requesters) {
  struct shard {
    lco::mutex mtx;
    std::int64_t value = 0;
  };
  std::vector<std::unique_ptr<shard>> shards;
  for (int s = 0; s < kShards; ++s) shards.push_back(std::make_unique<shard>());
  const double ms = bench::time_ms([&] {
    for (int r = 0; r < requesters; ++r) {
      sched.spawn([&, r] {
        for (int i = 0; i < kUpdatesPerThread; ++i) {
          shard& s = *shards[static_cast<std::size_t>((r * 31 + i) % kShards)];
          std::lock_guard lock(s.mtx);
          s.value += 1;
        }
      });
    }
    sched.wait_quiescent();
  });
  return ms;
}

// Skew mode: a fraction of all updates hits shard 0 (a hot key), the rest
// spread uniformly.  Sharding only flattens the contention curve while
// access stays balanced; skew quietly re-centralizes it — the measured
// motivation for redistributing hot state adaptively instead of once.
double sharded_skewed_ms(threads::scheduler& sched, int requesters,
                         double hot_fraction) {
  struct shard {
    lco::mutex mtx;
    std::int64_t value = 0;
  };
  std::vector<std::unique_ptr<shard>> shards;
  for (int s = 0; s < kShards; ++s) shards.push_back(std::make_unique<shard>());
  const double ms = bench::time_ms([&] {
    for (int r = 0; r < requesters; ++r) {
      sched.spawn([&, r] {
        util::xoshiro256 rng(1000 + static_cast<std::uint64_t>(r));
        for (int i = 0; i < kUpdatesPerThread; ++i) {
          const std::size_t idx =
              rng.uniform(0.0, 1.0) < hot_fraction
                  ? 0
                  : static_cast<std::size_t>(rng.below(kShards));
          shard& s = *shards[idx];
          std::lock_guard lock(s.mtx);
          s.value += 1;
        }
      });
    }
    sched.wait_quiescent();
  });
  return ms;
}

double atomic_ms(threads::scheduler& sched, int requesters) {
  std::atomic<std::int64_t> value{0};
  const double ms = bench::time_ms([&] {
    for (int r = 0; r < requesters; ++r) {
      sched.spawn([&] {
        for (int i = 0; i < kUpdatesPerThread; ++i) {
          value.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    sched.wait_quiescent();
  });
  return ms;
}

}  // namespace

int main() {
  using namespace px;
  bench::banner(
      "CONT-1 / shared-resource contention (paper section 2.1)",
      "\"Contention for shared resources causes delays while one requesting "
      "execution site is blocked by another accessing the same needed "
      "resource.\"");

  threads::scheduler sched(threads::scheduler_params{
      .workers = std::max(2u, std::thread::hardware_concurrency())});
  sched.start();

  util::text_table table({"requesters", "central mutex (ms)",
                          "16 shards (ms)", "atomic (ms)",
                          "central/sharded"});
  for (const int requesters : {1, 2, 4, 8, 16, 32}) {
    // Best of three: contention cost is structural, noise only adds.
    double central = 1e300, sharded = 1e300, atomics = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      central = std::min(central, central_ms(sched, requesters));
      sharded = std::min(sharded, sharded_ms(sched, requesters));
      atomics = std::min(atomics, atomic_ms(sched, requesters));
    }
    table.add_row(requesters, central, sharded, atomics, central / sharded);
  }
  table.print("3000 updates per requester, 4 workers");
  std::printf("%s", table.render_csv().c_str());

  // Skew mode: hot-key fraction vs contention at a fixed requester count.
  // The hot = 0 row *is* the uniform baseline (ratio 1 by construction).
  constexpr int kSkewRequesters = 16;
  util::text_table skewed({"hot fraction", "16 shards skewed (ms)",
                           "vs uniform"});
  double uniform = 0;
  for (const double hot : {0.0, 0.5, 0.9}) {
    double ms = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      ms = std::min(ms, sharded_skewed_ms(sched, kSkewRequesters, hot));
    }
    if (hot == 0.0) uniform = ms;
    skewed.add_row(hot, ms, ms / uniform);
  }
  skewed.print("access skew re-centralizes a sharded resource (16 "
               "requesters)");
  std::printf("%s", skewed.render_csv().c_str());

  std::printf(
      "\nshape check: the central resource's delay grows with requester "
      "count; distributing control state (shards / locality atomics) "
      "flattens the curve — until access skew re-concentrates it on a hot "
      "shard.\n");
  sched.stop();
  return 0;
}
