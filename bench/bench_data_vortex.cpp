// NET-1: Data-Vortex-style fabric vs mesh vs crossbar (paper §3.2).
//
// The design point assumes "the innovative Data Vortex network": a
// low-diameter, high-path-diversity fabric.  This harness sweeps offered
// load under uniform and hot-spot traffic and reports latency curves for
// the three topology models; the property that matters for the paper is
// that the vortex tracks the (unbuildable-at-scale) crossbar far more
// closely than a mesh does.
#include <cstdio>

#include "common.hpp"
#include "gilgamesh/vortex.hpp"
#include "util/table.hpp"

namespace {

px::gilgamesh::network_result run_one(px::net::topology_kind topo,
                                      double load, double hotspot) {
  px::gilgamesh::network_params np;
  np.nodes = 256;
  np.topology = topo;
  px::gilgamesh::network_model nm(np);
  px::gilgamesh::traffic_params t;
  t.load = load;
  t.hotspot_fraction = hotspot;
  t.messages_per_node = 150;
  return nm.run(t);
}

}  // namespace

int main() {
  using namespace px;
  bench::banner(
      "NET-1 / interconnect comparison (paper section 3.2)",
      "\"The system is assumed to be connected by the innovative Data Vortex "
      "network\" — a low-diameter fabric whose contention behaviour stays "
      "near the ideal crossbar's at a fraction of the cost.");

  for (const double hotspot : {0.0, 0.05}) {
    util::text_table table({"load", "crossbar mean/p99 (ns)",
                            "vortex mean/p99 (ns)", "mesh mean/p99 (ns)",
                            "vortex/crossbar", "mesh/vortex"});
    for (const double load : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      const auto xb =
          run_one(net::topology_kind::crossbar, load, hotspot);
      const auto vx = run_one(net::topology_kind::vortex, load, hotspot);
      const auto ms = run_one(net::topology_kind::mesh2d, load, hotspot);
      char xbs[64], vxs[64], mss[64];
      std::snprintf(xbs, sizeof xbs, "%.0f / %.0f", xb.mean_latency_ns,
                    xb.p99_latency_ns);
      std::snprintf(vxs, sizeof vxs, "%.0f / %.0f", vx.mean_latency_ns,
                    vx.p99_latency_ns);
      std::snprintf(mss, sizeof mss, "%.0f / %.0f", ms.mean_latency_ns,
                    ms.p99_latency_ns);
      table.add_row(load, xbs, vxs, mss,
                    vx.mean_latency_ns / xb.mean_latency_ns,
                    ms.mean_latency_ns / vx.mean_latency_ns);
    }
    table.print(hotspot == 0.0
                    ? "Uniform random traffic (256 nodes)"
                    : "Hot-spot traffic (5% of all messages to node 0; the "
                      "hot ejection port saturates every topology — an "
                      "endpoint bound no fabric can remove)");
  }
  std::printf(
      "shape check: vortex latency stays within a small factor of the "
      "crossbar across load; the mesh diverges with distance and load.\n");
  return 0;
}
