// REBAL-1: adaptive rebalancing vs static placement on a skewed hot-spot
// workload (paper §2.1: starvation "caused either due to inadequate
// program parallelism or due to poor load balancing", answered by the
// model's dynamic adaptive resource management).
//
// Workload: M hot data objects, all initially bound at locality 0; each
// object carries a chain of D message-driven hops, every hop performing a
// fixed *service* at the object's current owner before re-sending to the
// same gid.  The service is latency-bound (a short compute slice plus a
// blocking hold of the execution site — the paper's "L": waiting on a slow
// resource), so completion time is governed by the deepest service queue,
// not by aggregate CPU; the experiment is therefore meaningful on any host
// core count, including single-core CI runners.
//
// With the rebalancer off, every hop lands on locality 0 and the other
// execution sites starve behind it.  With it on, the introspection
// monitors expose the ready-depth skew, hot objects migrate away
// (agas::migrate + stale-cache forwarding), and the chains follow their
// objects to the idle sites — completion approaches work/sites.
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/action.hpp"
#include "core/runtime.hpp"
#include "gas/gid.hpp"
#include "parcel/migration.hpp"
#include "util/subproc.hpp"
#include "util/table.hpp"

namespace {

using namespace px;

const std::size_t kLocalities = 4;
const int kObjects = bench::smoke_mode() ? 12 : 32;
const std::uint32_t kHops = bench::smoke_mode() ? 40 : 120;
constexpr double kSpinUs = 3.0;    // compute slice (CPU-bound)
constexpr double kBlockUs = 40.0;  // blocking hold of the execution site

std::atomic<std::uint64_t> hops_done{0};

void chain_hop(std::uint64_t gid_bits, std::uint32_t remaining) {
  bench::busy_spin_us(kSpinUs);
  // The slow-resource hold: blocks this worker (the execution site), so
  // queued hops behind it wait — exactly the starvation a deep queue
  // means.  A real machine would be stalled on memory or a device here.
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::micro>(kBlockUs));
  hops_done.fetch_add(1, std::memory_order_relaxed);
  if (remaining > 0) {
    core::apply<&chain_hop>(gas::gid::from_bits(gid_bits), gid_bits,
                            remaining - 1);
  }
}
PX_REGISTER_ACTION(chain_hop)

struct run_result {
  double ms = 0;
  std::uint64_t migrations = 0;
  std::uint64_t triggers = 0;
  std::vector<std::size_t> objects_per_locality;
};

run_result hot_spot_run(bool adaptive) {
  core::runtime_params p;
  p.localities = kLocalities;
  p.workers_per_locality = 1;
  p.rebalance = adaptive ? 1 : 0;
  p.rebalance_interval_us = 100;
  p.rebalance_min_depth = 4;
  core::runtime rt(p);

  std::vector<gas::gid> objs;
  for (int i = 0; i < kObjects; ++i) {
    objs.push_back(rt.new_object<int>(0, i));  // the hot spot: all at loc 0
  }

  hops_done.store(0);
  run_result res;
  rt.start();
  res.ms = bench::time_ms([&] {
    rt.run([&] {
      for (const auto id : objs) {
        core::apply<&chain_hop>(id, id.bits(), kHops - 1);
      }
    });
  });
  if (hops_done.load() !=
      static_cast<std::uint64_t>(kObjects) * kHops) {
    std::fprintf(stderr, "rebalance bench lost hops: %llu/%llu\n",
                 static_cast<unsigned long long>(hops_done.load()),
                 static_cast<unsigned long long>(
                     static_cast<std::uint64_t>(kObjects) * kHops));
  }
  const auto st = rt.balancer().stats();
  res.migrations = st.objects_migrated;
  res.triggers = st.triggers;
  for (std::size_t l = 0; l < kLocalities; ++l) {
    res.objects_per_locality.push_back(
        rt.at(static_cast<gas::locality_id>(l)).object_count());
  }
  rt.stop();
  return res;
}

// ------------------------------------------------- distributed mode
//
// PX_BENCH_DIST=1 turns this binary into a 4-process TCP benchmark: the
// same skewed chain workload, but the "localities" are real OS processes
// and migration is the PR 5 px.migrate_object handoff.  One runtime, one
// knob flipped per phase: the *static* phase binds the hot population
// with plain new_object (untagged — the rebalancer's sync checks reject
// them, pinning every chain to rank 0), the *adaptive* phase binds them
// with new_migratable, so the identical enabled rebalancer can actually
// ship them.  Rank 0 times each collective run and emits
// BENCH_rebalance_dist.json — the first cross-process datapoint in the
// rebalancing perf trajectory.

struct dist_obj {
  std::uint64_t v = 0;
  template <typename Ar>
  friend void serialize(Ar& ar, dist_obj& o) {
    ar& o.v;
  }
};
PX_REGISTER_MIGRATABLE(dist_obj)

constexpr std::size_t kDistMaxObjs = 32;
std::array<std::atomic<std::uint64_t>, kDistMaxObjs> g_dist_objs{};
void dist_announce(std::uint64_t slot, std::uint64_t bits) {
  g_dist_objs[slot].store(bits);
}
PX_REGISTER_ACTION(dist_announce)

std::atomic<std::uint64_t> g_dist_hops{0};
void dist_hop(std::uint64_t gid_bits, std::uint32_t remaining) {
  std::this_thread::sleep_for(std::chrono::microseconds(40));
  g_dist_hops.fetch_add(1);
  if (remaining > 0) {
    core::apply<&dist_hop>(gas::gid::from_bits(gid_bits), gid_bits,
                           remaining - 1);
  }
}
PX_REGISTER_ACTION(dist_hop)

std::uint64_t dist_hops_read() { return g_dist_hops.load(); }
PX_REGISTER_ACTION(dist_hops_read)

// One measured phase: create + announce the population (tagged migratable
// or not), seed the chains from rank 0, time the collective run, and
// verify no hop was lost machine-wide.  Returns the wall time at rank 0.
double dist_phase(core::runtime& rt, int objs, std::uint32_t hops,
                  bool migratable, int* rc) {
  const auto n = static_cast<std::uint32_t>(rt.num_localities());
  rt.run([&] {
    if (rt.rank() != 0) return;
    for (int i = 0; i < objs; ++i) {
      const gas::gid o =
          migratable
              ? rt.new_migratable<dist_obj>(0, static_cast<std::uint64_t>(i))
              : rt.new_object<dist_obj>(0, static_cast<std::uint64_t>(i));
      for (std::uint32_t r = 0; r < n; ++r) {
        core::apply<&dist_announce>(rt.locality_gid(r),
                                    static_cast<std::uint64_t>(i), o.bits());
      }
    }
  });

  const std::uint64_t hops_before = [&] {
    std::uint64_t total = 0;
    rt.run([&] {
      if (rt.rank() != 0) return;
      std::uint64_t t = 0;
      for (std::uint32_t r = 0; r < n; ++r) {
        t += core::async<&dist_hops_read>(rt.locality_gid(r)).get();
      }
      total = t;
    });
    return total;
  }();

  // The clock brackets the whole collective: seeding, chained hops,
  // migrations, and the global-quiescence verdict.
  const auto t0 = std::chrono::steady_clock::now();
  rt.run([&] {
    if (rt.rank() != 0) return;
    for (int i = 0; i < objs; ++i) {
      core::apply<&dist_hop>(gas::gid::from_bits(g_dist_objs[i].load()),
                             g_dist_objs[i].load(), hops - 1);
    }
  });
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

  rt.run([&] {
    if (rt.rank() != 0) return;
    std::uint64_t total = 0;
    for (std::uint32_t r = 0; r < n; ++r) {
      const std::uint64_t h =
          core::async<&dist_hops_read>(rt.locality_gid(r)).get();
      if (std::getenv("PX_BENCH_DEBUG")) {
        std::fprintf(stderr, "PHASE mig=%d rank %u hops_cum=%llu\n",
                     migratable ? 1 : 0, r, (unsigned long long)h);
      }
      total += h;
    }
    const std::uint64_t expect =
        hops_before + static_cast<std::uint64_t>(objs) * hops;
    if (total != expect) {
      std::fprintf(stderr,
                   "rebalance dist bench lost hops: %llu/%llu\n",
                   static_cast<unsigned long long>(total),
                   static_cast<unsigned long long>(expect));
      *rc = 1;
    }
  });
  return ms;
}

int dist_rank_main() {
  const int objs = bench::smoke_mode() ? 8 : 16;
  const std::uint32_t hops = bench::smoke_mode() ? 60 : 120;

  core::runtime_params p;  // tcp backend from the launcher's PX_NET_* env
  p.rebalance = 1;
  p.rebalance_min_depth = 3;
  p.rebalance_max_migrations = 8;
  p.rebalance_interval_us = 30;
  core::runtime rt(p);
  const auto n = static_cast<std::uint32_t>(rt.num_localities());

  int rc = 0;
  const double off_ms = dist_phase(rt, objs, hops, /*migratable=*/false, &rc);
  const double on_ms = dist_phase(rt, objs, hops, /*migratable=*/true, &rc);

  if (rt.rank() == 0) {
    const auto st = rt.balancer().stats();
    std::printf(
        "tcp 4-rank rebalance: static %.1f ms, adaptive %.1f ms "
        "(%.2fx, %llu cross-process migrations, %llu trigger rounds)\n",
        off_ms, on_ms, off_ms / on_ms,
        static_cast<unsigned long long>(st.objects_migrated),
        static_cast<unsigned long long>(st.triggers));
    bench::json_writer json;
    json.add("bench", std::string("rebalance_dist"));
    bench::add_metadata(json, "tcp");
    json.add("ranks", static_cast<std::int64_t>(n));
    json.add("objects", static_cast<std::int64_t>(objs));
    json.add("hops", static_cast<std::int64_t>(hops));
    json.add("static_ms", off_ms);
    json.add("adaptive_ms", on_ms);
    json.add("improvement", off_ms / on_ms);
    json.add("migrations", static_cast<std::int64_t>(st.objects_migrated));
    json.add("trigger_rounds", static_cast<std::int64_t>(st.triggers));
    json.add("smoke",
             static_cast<std::int64_t>(bench::smoke_mode() ? 1 : 0));
    json.write("BENCH_rebalance_dist.json");
  }
  rt.stop();
  return rc;
}

int dist_launcher_main() {
  const int nranks = 4;
  const int root_port = util::pick_free_tcp_port();
  std::printf(
      "REBAL-dist / adaptive rebalancing over 4 TCP ranks: launching\n");
  const std::vector<std::string> argv = {util::self_exe_path()};
  std::vector<pid_t> pids;
  for (int r = 0; r < nranks; ++r) {
    pids.push_back(
        util::spawn_process(argv, util::net_rank_env(r, nranks, root_port)));
  }
  int failures = 0;
  for (int r = 0; r < nranks; ++r) {
    if (util::wait_exit(pids[r]) != 0) failures += 1;
  }
  if (failures != 0) {
    std::fprintf(stderr, "rebalance dist bench: %d rank(s) failed\n",
                 failures);
    return 1;
  }
  return 0;
}

}  // namespace

int main() {
  using namespace px;
  if (std::getenv("PX_BENCH_DIST") != nullptr &&
      std::getenv("PX_BENCH_DIST")[0] != '0') {
    return std::getenv("PX_NET_RANK") != nullptr ? dist_rank_main()
                                                 : dist_launcher_main();
  }
  bench::banner(
      "REBAL-1 / adaptive rebalancing vs static hot spot (section 2.1)",
      "\"Starvation is the lack of work and therefore the idle cycles "
      "experienced by an execution site ... caused either due to inadequate "
      "program parallelism or due to poor load balancing.\"  Dynamic "
      "adaptive resource management is the model's answer.");

  // Best of two: rebalancing decisions are timing-dependent, scheduling
  // noise only adds.
  run_result off = hot_spot_run(false);
  run_result on = hot_spot_run(true);
  {
    const run_result off2 = hot_spot_run(false);
    if (off2.ms < off.ms) off = off2;
    run_result on2 = hot_spot_run(true);
    if (on2.ms < on.ms) on = std::move(on2);
  }

  util::text_table table({"rebalancer", "completion (ms)", "improvement",
                          "migrations", "trigger rounds"});
  table.add_row("off", off.ms, 1.0, static_cast<std::int64_t>(off.migrations),
                static_cast<std::int64_t>(off.triggers));
  table.add_row("on", on.ms, off.ms / on.ms,
                static_cast<std::int64_t>(on.migrations),
                static_cast<std::int64_t>(on.triggers));
  table.print(std::to_string(kObjects) + " hot objects x " +
              std::to_string(kHops) + " chained hops x (" +
              std::to_string(static_cast<int>(kSpinUs)) + "us compute + " +
              std::to_string(static_cast<int>(kBlockUs)) +
              "us blocking service), all bound at locality 0 of " +
              std::to_string(kLocalities));
  std::printf("%s", table.render_csv().c_str());

  std::printf("\nfinal object distribution (rebalancer on): ");
  for (std::size_t l = 0; l < on.objects_per_locality.size(); ++l) {
    std::printf("L%zu=%zu ", l, on.objects_per_locality[l]);
  }
  std::printf("\n");

  bench::json_writer json;
  json.add("bench", std::string("rebalance"));
  bench::add_metadata(json, "sim");
  json.add("objects", static_cast<std::int64_t>(kObjects));
  json.add("hops", static_cast<std::int64_t>(kHops));
  json.add("spin_us", kSpinUs);
  json.add("block_us", kBlockUs);
  json.add("localities", static_cast<std::int64_t>(kLocalities));
  json.add("off_ms", off.ms);
  json.add("on_ms", on.ms);
  json.add("improvement", off.ms / on.ms);
  json.add("migrations", static_cast<std::int64_t>(on.migrations));
  json.add("trigger_rounds", static_cast<std::int64_t>(on.triggers));
  json.add("smoke", static_cast<std::int64_t>(bench::smoke_mode() ? 1 : 0));
  json.write("BENCH_rebalance.json");

  std::printf(
      "\nshape check: with the rebalancer off, every chained hop lands on "
      "locality 0 (one site computes, three starve); with it on, hot "
      "objects migrate toward idle sites and completion approaches "
      "work/sites.\n");
  return 0;
}
