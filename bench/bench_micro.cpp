// THR-1: micro-costs of the mechanisms the model requires to be cheap
// (paper §2.1: "Incorporation of low overhead mechanisms for managing
// global system parallelism including synchronization, scheduling, data
// movement...").  google-benchmark timings for thread lifecycle, context
// switches, LCO operations, AGAS resolution, and parcel handling.
#include <benchmark/benchmark.h>

#include <atomic>

#include "core/action.hpp"
#include "core/runtime.hpp"
#include "gas/agas.hpp"
#include "lco/lco.hpp"
#include "parcel/parcel.hpp"
#include "threads/context.hpp"
#include "threads/scheduler.hpp"

namespace {

using namespace px;

// ------------------------------------------------------- raw context swap

struct swap_fixture {
  threads::context main_ctx;
  threads::context fiber_ctx;
  std::vector<char> stack = std::vector<char>(32 * 1024);
  bool stop = false;
};
swap_fixture* g_swap = nullptr;

void swap_entry(void*) {
  for (;;) {
    threads::context::swap(g_swap->fiber_ctx, g_swap->main_ctx, nullptr);
  }
}

void BM_ContextSwapPair(benchmark::State& state) {
  swap_fixture fx;
  g_swap = &fx;
  fx.fiber_ctx = threads::context::make(fx.stack.data() + fx.stack.size(),
                                        &swap_entry);
  for (auto _ : state) {
    // One round trip = two swaps.
    threads::context::swap(fx.main_ctx, fx.fiber_ctx, nullptr);
  }
}
BENCHMARK(BM_ContextSwapPair);

// ------------------------------------------------------- thread lifecycle

void BM_ThreadSpawnToCompletion(benchmark::State& state) {
  threads::scheduler sched(threads::scheduler_params{.workers = 2});
  sched.start();
  for (auto _ : state) {
    std::atomic<bool> ran{false};
    sched.spawn([&] { ran.store(true, std::memory_order_release); });
    while (!ran.load(std::memory_order_acquire)) {
    }
  }
  sched.wait_quiescent();
  sched.stop();
}
BENCHMARK(BM_ThreadSpawnToCompletion);

void BM_ThreadSpawnThroughput(benchmark::State& state) {
  threads::scheduler sched(threads::scheduler_params{.workers = 4});
  sched.start();
  for (auto _ : state) {
    state.PauseTiming();
    std::atomic<int> remaining{10000};
    state.ResumeTiming();
    for (int i = 0; i < 10000; ++i) {
      sched.spawn([&] { remaining.fetch_sub(1, std::memory_order_relaxed); });
    }
    sched.wait_quiescent();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
  sched.stop();
}
BENCHMARK(BM_ThreadSpawnThroughput);

// ------------------------------------------------------------------- LCO

void BM_FutureSetAndGetReady(benchmark::State& state) {
  for (auto _ : state) {
    lco::promise<int> prom;
    auto fut = prom.get_future();
    prom.set_value(1);
    benchmark::DoNotOptimize(fut.get());
  }
}
BENCHMARK(BM_FutureSetAndGetReady);

void BM_SuspendResumeRoundTrip(benchmark::State& state) {
  threads::scheduler sched(threads::scheduler_params{.workers = 2});
  sched.start();
  // Two threads ping-pong through gates; measures park/wake cost under the
  // depleted-thread machinery.
  for (auto _ : state) {
    lco::counting_semaphore ping(0), pong(0);
    std::atomic<bool> done{false};
    sched.spawn([&] {
      for (int i = 0; i < 100; ++i) {
        ping.release();
        pong.acquire();
      }
      done.store(true);
    });
    sched.spawn([&] {
      for (int i = 0; i < 100; ++i) {
        ping.acquire();
        pong.release();
      }
    });
    while (!done.load()) {
    }
    sched.wait_quiescent();
  }
  state.SetItemsProcessed(state.iterations() * 200);  // parks+wakes
  sched.stop();
}
BENCHMARK(BM_SuspendResumeRoundTrip);

// ------------------------------------------------------------------ AGAS

void BM_AgasResolveCached(benchmark::State& state) {
  gas::agas directory(8);
  const gas::gid g = directory.allocate(gas::gid_kind::data, 3);
  directory.bind(g, 3);
  (void)directory.resolve(0, g);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(directory.resolve(0, g));
  }
}
BENCHMARK(BM_AgasResolveCached);

void BM_AgasResolveAuthoritative(benchmark::State& state) {
  gas::agas directory(8);
  const gas::gid g = directory.allocate(gas::gid_kind::data, 3);
  directory.bind(g, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(directory.resolve_authoritative(0, g));
  }
}
BENCHMARK(BM_AgasResolveAuthoritative);

// ---------------------------------------------------------------- parcels

parcel::parcel sample_parcel() {
  parcel::parcel p;
  p.destination = gas::gid::make(gas::gid_kind::data, 1, 99);
  p.action = 3;
  p.cont.target = gas::gid::make(gas::gid_kind::lco, 0, 7);
  p.cont.action = 1;
  p.arguments = util::to_bytes(std::uint64_t{42}, 3.14);
  return p;
}

// Encode into a reused buffer, decode via zero-copy view: the steady-state
// per-parcel wire cost (no allocation in the loop).
void BM_ParcelEncodeViewDecode(benchmark::State& state) {
  const parcel::parcel p = sample_parcel();
  std::vector<std::byte> buf;
  for (auto _ : state) {
    buf.clear();
    parcel::encode_into(buf, p);
    auto v = parcel::parcel_view::parse(buf);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ParcelEncodeViewDecode);

// Full batch frame round trip at a representative coalescing factor.
void BM_ParcelFrameRoundTrip32(benchmark::State& state) {
  const parcel::parcel p = sample_parcel();
  std::vector<std::byte> buf;
  for (auto _ : state) {
    parcel::frame_begin(buf);
    for (int i = 0; i < 32; ++i) parcel::frame_append(buf, p);
    auto frame = parcel::frame_view::parse(buf);
    std::size_t args = 0;
    for (auto it = frame->begin(); it != frame->end(); ++it) {
      args += (*it).arguments().size();
    }
    benchmark::DoNotOptimize(args);
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_ParcelFrameRoundTrip32);

int identity(int x) { return x; }
PX_REGISTER_ACTION(identity)

void BM_LocalAsyncRoundTrip(benchmark::State& state) {
  core::runtime_params params;
  params.localities = 2;
  params.workers_per_locality = 2;
  core::runtime rt(params);
  rt.start();
  for (auto _ : state) {
    std::atomic<int> out{-1};
    rt.at(0).spawn([&] {
      out.store(core::async<&identity>(rt.locality_gid(1), 5).get());
    });
    while (out.load() != 5) {
    }
  }
  rt.stop();
}
BENCHMARK(BM_LocalAsyncRoundTrip);

}  // namespace

BENCHMARK_MAIN();
