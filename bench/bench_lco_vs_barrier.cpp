// LCO-1: dataflow LCO synchronization vs global barriers (paper §2.2:
// "LCOs eliminate most uses of global barriers greatly freeing the dynamic
// adaptive flexibility of parallel processing and relaxing the over
// constraining operation imposed by barriers").
//
// A wavefront computation: S stages x P elements; element (s,e) depends
// only on (s-1, e-1), (s-1, e), (s-1, e+1).  Task durations are drawn from
// an increasingly skewed distribution (imbalance sweep).
//   barrier version: every thread arrives at a global barrier per stage —
//     each stage costs the *maximum* task time in the stage;
//   LCO version: an and_gate per element releases it the moment its three
//     parents finish — slack from fast elements flows downhill.
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "common.hpp"
#include "lco/lco.hpp"
#include "threads/scheduler.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace px;

constexpr int kStages = 32;
// Few elements per worker: the barrier's end-of-stage idle time is the
// effect under test, and it vanishes when work depth >> worker count.
constexpr int kElems = 8;
const unsigned kWorkers = std::max(2u, std::thread::hardware_concurrency());
constexpr double kMeanUs = 60.0;

// Task durations [stage][elem]: one straggler of skew x mean per stage at
// a rotating position (stride 3, coprime with the neighbour dependency
// width, so consecutive stragglers are NOT on each other's critical path);
// everything else is a short task.  Deterministic: the measured gap is
// structure, not sampling noise.
std::vector<std::vector<double>> make_durations(double skew,
                                                std::uint64_t seed) {
  util::xoshiro256 rng(seed);
  std::vector<std::vector<double>> d(kStages, std::vector<double>(kElems));
  for (int s = 0; s < kStages; ++s) {
    const int straggler = (s * 3) % kElems;
    for (int e = 0; e < kElems; ++e) {
      d[s][static_cast<std::size_t>(e)] =
          (e == straggler) ? kMeanUs * (1.0 + skew)
                           : kMeanUs * rng.uniform(0.25, 0.35);
    }
  }
  return d;
}

double barrier_version_ms(const std::vector<std::vector<double>>& dur) {
  threads::scheduler sched(threads::scheduler_params{.workers = kWorkers});
  sched.start();
  lco::barrier bar(kElems);
  const double ms = bench::time_ms([&] {
    for (int e = 0; e < kElems; ++e) {
      sched.spawn([&, e] {
        for (int s = 0; s < kStages; ++s) {
          bench::busy_spin_us(dur[s][e]);
          bar.arrive_and_wait();  // whole wave gated on the straggler
        }
      });
    }
    sched.wait_quiescent();
  });
  sched.stop();
  return ms;
}

double lco_version_ms(const std::vector<std::vector<double>>& dur) {
  threads::scheduler sched(threads::scheduler_params{.workers = kWorkers});
  sched.start();

  // gates[s][e] counts the element's parents in stage s-1.
  std::vector<std::vector<std::unique_ptr<lco::and_gate>>> gates(kStages);
  for (int s = 0; s < kStages; ++s) {
    for (int e = 0; e < kElems; ++e) {
      const std::uint64_t parents =
          s == 0 ? 0 : static_cast<std::uint64_t>(
                           (e > 0) + 1 + (e < kElems - 1));
      gates[s].push_back(std::make_unique<lco::and_gate>(parents));
    }
  }
  lco::and_gate all_done(static_cast<std::uint64_t>(kElems));

  const double ms = bench::time_ms([&] {
    for (int s = 0; s < kStages; ++s) {
      for (int e = 0; e < kElems; ++e) {
        gates[s][static_cast<std::size_t>(e)]->when_ready([&, s, e] {
          sched.spawn([&, s, e] {
            bench::busy_spin_us(dur[s][e]);
            if (s + 1 < kStages) {
              if (e > 0) gates[s + 1][static_cast<std::size_t>(e - 1)]->signal();
              gates[s + 1][static_cast<std::size_t>(e)]->signal();
              if (e < kElems - 1) {
                gates[s + 1][static_cast<std::size_t>(e + 1)]->signal();
              }
            } else {
              all_done.signal();
            }
          });
        });
      }
    }
    all_done.wait();
    sched.wait_quiescent();
  });
  sched.stop();
  return ms;
}

}  // namespace

int main() {
  using namespace px;
  bench::banner(
      "LCO-1 / dataflow LCOs vs global barriers (paper section 2.2)",
      "\"LCOs eliminate most uses of global barriers ... relaxing the over "
      "constraining operation imposed by barriers.\"");

  util::text_table table({"straggler skew", "barrier (ms)", "LCO (ms)",
                          "barrier/LCO"});
  for (const double skew : {0.0, 2.0, 4.0, 8.0, 16.0}) {
    const auto dur = make_durations(skew, 1234);
    // Best of three: the structural cost is the minimum; OS scheduling
    // noise on small hosts only ever adds time.
    double bar_ms = 1e300, lco_ms = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      bar_ms = std::min(bar_ms, barrier_version_ms(dur));
      lco_ms = std::min(lco_ms, lco_version_ms(dur));
    }
    table.add_row(skew, bar_ms, lco_ms, bar_ms / lco_ms);
  }
  table.print("24-stage x 48-element wavefront, 4 workers");
  std::printf("%s", table.render_csv().c_str());
  std::printf(
      "\nshape check: with balanced tasks the two are comparable; as "
      "stragglers grow, barrier time tracks per-stage maxima while dataflow "
      "lets slack flow — the gap widens with skew.\n");
  return 0;
}
