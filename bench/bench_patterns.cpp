// PATTERNS-1: the composable pattern library on a real kernel — image
// grayscale + 3x3 convolution expressed as pipeline(stage_gray ->
// stage_sum(nested map_reduce)) — against a plain std::thread baseline
// doing the identical arithmetic.
//
// Two measured modes, one output file (BENCH_patterns.json):
//
//   * sim: 4 localities in this process, ParalleX patterns vs a threaded
//     band-pool with the same worker count;
//   * tcp: the binary forks itself into 4 ranks (distributed_pingpong
//     idiom) and runs the *same pattern code* over real sockets — the
//     point being that the pattern expression did not change, only the
//     environment did.  Rank 0 reports its wall time through a temp file
//     named on the child's command line.
//
// All arithmetic is integer, so every mode must land the same checksum.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common.hpp"
#include "core/action.hpp"
#include "core/runtime.hpp"
#include "lco/lco.hpp"
#include "patterns/patterns.hpp"
#include "util/subproc.hpp"
#include "util/table.hpp"

namespace {

using namespace px;

struct dims {
  std::uint32_t w, h, band;
};

dims pick_dims() {
  return bench::smoke_mode() ? dims{128, 96, 8} : dims{512, 384, 16};
}

// Deterministic synthetic source; identical in every process and mode.
inline std::uint8_t src_r(std::uint32_t x, std::uint32_t y) {
  return static_cast<std::uint8_t>((x * 3 + y * 5) & 0xff);
}
inline std::uint8_t src_g(std::uint32_t x, std::uint32_t y) {
  return static_cast<std::uint8_t>((x * 7 + y * 11) & 0xff);
}
inline std::uint8_t src_b(std::uint32_t x, std::uint32_t y) {
  return static_cast<std::uint8_t>((x * 13 + y * 17) & 0xff);
}
inline std::uint8_t gray_at(std::uint32_t x, std::uint32_t y) {
  return static_cast<std::uint8_t>(
      (77u * src_r(x, y) + 150u * src_g(x, y) + 29u * src_b(x, y)) >> 8);
}

constexpr int kKernel[3][3] = {{1, 2, 1}, {2, 4, 2}, {1, 2, 1}};  // /16

inline std::uint32_t clamp_u(int v, int hi) {
  return static_cast<std::uint32_t>(v < 0 ? 0 : (v > hi ? hi : v));
}

// ------------------------------------------------------------ wire types

struct band_desc {
  std::uint32_t y0 = 0, y1 = 0, w = 0, h = 0;
};
template <typename Ar>
void serialize(Ar& ar, band_desc& b) {
  ar & b.y0 & b.y1 & b.w & b.h;
}

struct gray_band {
  std::uint32_t y0 = 0, y1 = 0, w = 0, h = 0, gy0 = 0;
  std::vector<std::uint8_t> gray;
};
template <typename Ar>
void serialize(Ar& ar, gray_band& b) {
  ar & b.y0 & b.y1 & b.w & b.h & b.gy0 & b.gray;
}

// --------------------------------------------------------------- stages

gray_band stage_gray(band_desc d) {
  gray_band gb;
  gb.y0 = d.y0;
  gb.y1 = d.y1;
  gb.w = d.w;
  gb.h = d.h;
  gb.gy0 = d.y0 == 0 ? 0 : d.y0 - 1;
  const std::uint32_t gy1 = d.y1 + 1 > d.h ? d.h : d.y1 + 1;
  gb.gray.resize(static_cast<std::size_t>(gy1 - gb.gy0) * d.w);
  for (std::uint32_t y = gb.gy0; y < gy1; ++y) {
    for (std::uint32_t x = 0; x < d.w; ++x) {
      gb.gray[static_cast<std::size_t>(y - gb.gy0) * d.w + x] = gray_at(x, y);
    }
  }
  return gb;
}

std::mutex g_bands_lock;
std::unordered_map<std::uint64_t, std::shared_ptr<const gray_band>> g_bands;

std::uint64_t sum_rows(std::uint64_t band_key, std::uint64_t begin,
                       std::uint64_t end) {
  std::shared_ptr<const gray_band> band;
  {
    std::lock_guard g(g_bands_lock);
    band = g_bands.at(band_key);
  }
  std::uint64_t sum = 0;
  for (std::uint64_t i = begin; i < end; ++i) {
    const std::uint32_t y = band->y0 + static_cast<std::uint32_t>(i);
    for (std::uint32_t x = 0; x < band->w; ++x) {
      unsigned acc = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const std::uint32_t yy = clamp_u(static_cast<int>(y) + dy,
                                           static_cast<int>(band->h) - 1);
          const std::uint32_t xx = clamp_u(static_cast<int>(x) + dx,
                                           static_cast<int>(band->w) - 1);
          acc += static_cast<unsigned>(kKernel[dy + 1][dx + 1]) *
                 band->gray[static_cast<std::size_t>(yy - band->gy0) *
                                band->w +
                            xx];
        }
      }
      sum += acc / 16;
    }
  }
  return sum;
}

std::uint64_t add_u64(std::uint64_t a, std::uint64_t b) { return a + b; }

// Rank-0 accumulator for per-band results (untracked parcels; the driver
// waits on the semaphore, which only exists while a run is in flight).
std::atomic<std::uint64_t> g_sum{0};
lco::counting_semaphore* g_bands_done = nullptr;

void band_done(std::uint64_t band_sum) {
  g_sum.fetch_add(band_sum, std::memory_order_relaxed);
  g_bands_done->release(1);
}
PX_REGISTER_ACTION(band_done)

void stage_sum(gray_band gb) {
  const std::uint64_t key = gb.y0;
  const std::uint64_t rows = gb.y1 - gb.y0;
  core::runtime& rt = core::this_locality()->rt();
  {
    std::lock_guard g(g_bands_lock);
    g_bands.emplace(key, std::make_shared<const gray_band>(std::move(gb)));
  }
  std::vector<gas::locality_id> nested_span;
  if (rt.distributed()) {
    nested_span.push_back(rt.rank());
  } else {
    for (std::size_t i = 0; i < rt.num_localities(); ++i) {
      nested_span.push_back(static_cast<gas::locality_id>(i));
    }
  }
  const std::uint64_t band_sum = patterns::map_reduce<&sum_rows, &add_u64>(
      rt, std::move(nested_span), rows, /*chunk=*/2, /*ctx=*/key,
      /*nested=*/true);
  {
    std::lock_guard g(g_bands_lock);
    g_bands.erase(key);
  }
  core::apply<&band_done>(rt.locality_gid(0), band_sum);
}

PX_REGISTER_PIPELINE("bsum", &stage_gray, &stage_sum)
PX_REGISTER_MAP_REDUCE(sum_rows, add_u64)

// ------------------------------------------------------------- baselines

std::uint64_t serial_checksum(dims d) {
  std::uint64_t sum = 0;
  for (std::uint32_t y = 0; y < d.h; ++y) {
    for (std::uint32_t x = 0; x < d.w; ++x) {
      unsigned acc = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          acc += static_cast<unsigned>(kKernel[dy + 1][dx + 1]) *
                 gray_at(clamp_u(static_cast<int>(x) + dx,
                                 static_cast<int>(d.w) - 1),
                         clamp_u(static_cast<int>(y) + dy,
                                 static_cast<int>(d.h) - 1));
        }
      }
      sum += acc / 16;
    }
  }
  return sum;
}

// Plain threads, same arithmetic, same band decomposition: a band pool
// with work stealing via an atomic band cursor.
std::uint64_t g_baseline_sum;
double baseline_threaded_ms(dims d, unsigned nthreads) {
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint32_t> next{0};
  const std::uint32_t bands = (d.h + d.band - 1) / d.band;
  const double ms = bench::time_ms([&] {
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < nthreads; ++t) {
      pool.emplace_back([&] {
        for (;;) {
          const std::uint32_t b = next.fetch_add(1);
          if (b >= bands) return;
          const std::uint32_t y0 = b * d.band;
          const std::uint32_t y1 = y0 + d.band > d.h ? d.h : y0 + d.band;
          // Grayscale the band (with halo) into a buffer, then convolve —
          // the same two passes the pipeline stages perform.
          gray_band gb = stage_gray(band_desc{y0, y1, d.w, d.h});
          std::uint64_t band_sum = 0;
          for (std::uint32_t y = y0; y < y1; ++y) {
            for (std::uint32_t x = 0; x < d.w; ++x) {
              unsigned acc = 0;
              for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx) {
                  const std::uint32_t yy = clamp_u(
                      static_cast<int>(y) + dy, static_cast<int>(d.h) - 1);
                  const std::uint32_t xx = clamp_u(
                      static_cast<int>(x) + dx, static_cast<int>(d.w) - 1);
                  acc += static_cast<unsigned>(kKernel[dy + 1][dx + 1]) *
                         gb.gray[static_cast<std::size_t>(yy - gb.gy0) *
                                     d.w +
                                 xx];
                }
              }
              band_sum += acc / 16;
            }
          }
          sum.fetch_add(band_sum, std::memory_order_relaxed);
        }
      });
    }
    for (auto& t : pool) t.join();
  });
  g_baseline_sum = sum.load();
  return ms;
}

// OpenMP baseline: the same band decomposition under `omp parallel for`
// with dynamic scheduling — the conventional-practice yardstick the paper
// positions ParalleX against.  Compiled only when the toolchain provides
// OpenMP (CMake links it when found); otherwise the row is skipped and the
// JSON says so.
#ifdef _OPENMP
double baseline_omp_ms(dims d, unsigned nthreads) {
  std::uint64_t sum = 0;
  const auto bands = static_cast<int>((d.h + d.band - 1) / d.band);
  const double ms = bench::time_ms([&] {
#pragma omp parallel for schedule(dynamic) num_threads(nthreads) \
    reduction(+ : sum)
    for (int b = 0; b < bands; ++b) {
      const std::uint32_t y0 = static_cast<std::uint32_t>(b) * d.band;
      const std::uint32_t y1 = y0 + d.band > d.h ? d.h : y0 + d.band;
      gray_band gb = stage_gray(band_desc{y0, y1, d.w, d.h});
      std::uint64_t band_sum = 0;
      for (std::uint32_t y = y0; y < y1; ++y) {
        for (std::uint32_t x = 0; x < d.w; ++x) {
          unsigned acc = 0;
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              const std::uint32_t yy = clamp_u(static_cast<int>(y) + dy,
                                               static_cast<int>(d.h) - 1);
              const std::uint32_t xx = clamp_u(static_cast<int>(x) + dx,
                                               static_cast<int>(d.w) - 1);
              acc += static_cast<unsigned>(kKernel[dy + 1][dx + 1]) *
                     gb.gray[static_cast<std::size_t>(yy - gb.gy0) * d.w +
                             xx];
            }
          }
          band_sum += acc / 16;
        }
      }
      sum += band_sum;
    }
  });
  g_baseline_sum = sum;
  return ms;
}
#endif

// ------------------------------------------------------- pattern driver

// Runs the pipeline(map_reduce) composition on `rt` — identical for the
// sim and tcp shapes.  Returns wall ms on the driving rank; fills *sum.
double run_patterns_ms(core::runtime& rt, dims d, std::uint64_t* sum) {
  double ms = 0;
  rt.run([&] {
    if (rt.distributed() && rt.rank() != 0) return;
    lco::counting_semaphore done{0};
    g_sum.store(0);
    g_bands_done = &done;
    std::uint32_t bands = 0;
    ms = bench::time_ms([&] {
      std::vector<gas::locality_id> span;
      for (std::size_t i = 0; i < rt.num_localities(); ++i) {
        span.push_back(static_cast<gas::locality_id>(i));
      }
      patterns::pipeline<&stage_gray, &stage_sum> pipe(rt, span,
                                                       /*window=*/4);
      for (std::uint32_t y0 = 0; y0 < d.h; y0 += d.band) {
        pipe.push(band_desc{y0, y0 + d.band > d.h ? d.h : y0 + d.band, d.w,
                            d.h});
        bands += 1;
      }
      pipe.close();
      for (std::uint32_t b = 0; b < bands; ++b) done.acquire();
    });
    *sum = g_sum.load();
    g_bands_done = nullptr;
  });
  return ms;
}

// ----------------------------------------------------------- tcp shape

int dist_rank_main(dims d, const char* out_path) {
  core::runtime rt;  // tcp backend resolved from the launcher's PX_NET_* env
  std::uint64_t sum = 0;
  const double ms = run_patterns_ms(rt, d, &sum);
  int rc = 0;
  if (rt.rank() == 0) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_patterns: cannot write %s\n", out_path);
      rc = 1;
    } else {
      std::fprintf(f, "%.3f %llu\n", ms,
                   static_cast<unsigned long long>(sum));
      std::fclose(f);
    }
  }
  rt.stop();
  return rc;
}

// Launches 4 TCP ranks of this binary; returns {ms, sum} via *ms/*sum and
// true on success.
bool run_dist(double* ms, std::uint64_t* sum) {
  const int nranks = 4;
  const int root_port = util::pick_free_tcp_port();
  const std::string out_path = "BENCH_patterns_dist.tmp";
  std::remove(out_path.c_str());
  const std::vector<std::string> argv = {util::self_exe_path(), "--dist-out",
                                         out_path};
  std::vector<pid_t> pids;
  for (int r = 0; r < nranks; ++r) {
    pids.push_back(
        util::spawn_process(argv, util::net_rank_env(r, nranks, root_port)));
  }
  int failures = 0;
  for (int r = 0; r < nranks; ++r) {
    if (util::wait_exit(pids[r]) != 0) failures += 1;
  }
  if (failures != 0) {
    std::fprintf(stderr, "bench_patterns: %d tcp rank(s) failed\n", failures);
    return false;
  }
  std::FILE* f = std::fopen(out_path.c_str(), "r");
  if (f == nullptr) return false;
  unsigned long long s = 0;
  const bool ok = std::fscanf(f, "%lf %llu", ms, &s) == 2;
  std::fclose(f);
  std::remove(out_path.c_str());
  *sum = s;
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace px;
  const dims d = pick_dims();

  const char* dist_out = nullptr;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--dist-out") == 0) dist_out = argv[i + 1];
  }
  if (std::getenv("PX_NET_RANK") != nullptr && dist_out != nullptr) {
    return dist_rank_main(d, dist_out);
  }

  bench::banner(
      "PATTERNS-1 / composable patterns on a convolution kernel",
      "\"a process may have many parts ... running concurrently and "
      "distributed across many execution sites\" — the same "
      "pipeline(map_reduce) expression runs unchanged over the modeled "
      "fabric and real sockets.");

  const std::uint64_t expect = serial_checksum(d);
  const std::uint32_t bands = (d.h + d.band - 1) / d.band;

  // Sim shape: 4 localities x 2 workers, vs 8 plain threads.
  const double base_ms = baseline_threaded_ms(d, 8);
  const bool base_ok = g_baseline_sum == expect;

  // Conventional-practice column: OpenMP over the identical bands.
  double omp_ms = 0;
  bool omp_ok = false;
  bool omp_ran = false;
#ifdef _OPENMP
  omp_ms = baseline_omp_ms(d, 8);
  omp_ok = g_baseline_sum == expect;
  omp_ran = true;
#endif

  core::runtime_params p;
  p.localities = 4;
  p.workers_per_locality = 2;
  core::runtime rt(p);
  std::uint64_t sim_sum = 0;
  const double sim_ms = run_patterns_ms(rt, d, &sim_sum);
  rt.stop();
  const bool sim_ok = sim_sum == expect;

  // TCP shape: same pattern code, 4 real processes on loopback.
  double dist_ms = 0;
  std::uint64_t dist_sum = 0;
  const bool dist_ran = run_dist(&dist_ms, &dist_sum);
  const bool dist_ok = dist_ran && dist_sum == expect;

  util::text_table table(
      {"mode", "workers", "wall (ms)", "checksum ok"});
  table.add_row("threads", 8, base_ms, static_cast<std::int64_t>(base_ok));
  if (omp_ran) {
    table.add_row("openmp", 8, omp_ms, static_cast<std::int64_t>(omp_ok));
  }
  table.add_row("patterns/sim", 8, sim_ms,
                static_cast<std::int64_t>(sim_ok));
  table.add_row("patterns/tcp x4", 8, dist_ms,
                static_cast<std::int64_t>(dist_ok));
  char caption[128];
  std::snprintf(caption, sizeof caption,
                "%ux%u image, %u bands, 3x3 convolution, checksum %llu",
                d.w, d.h, bands, static_cast<unsigned long long>(expect));
  table.print(caption);
  std::printf("%s", table.render_csv().c_str());

  bench::json_writer json;
  json.add("bench", std::string("patterns"));
  bench::add_metadata(json, "sim");
  json.add("smoke", static_cast<std::int64_t>(bench::smoke_mode() ? 1 : 0));
  json.add("width", static_cast<std::int64_t>(d.w));
  json.add("height", static_cast<std::int64_t>(d.h));
  json.add("bands", static_cast<std::int64_t>(bands));
  json.add("checksum", static_cast<std::int64_t>(expect));
  json.add("baseline_threads", static_cast<std::int64_t>(8));
  json.add("baseline_ms", base_ms);
  json.add("baseline_ok", static_cast<std::int64_t>(base_ok ? 1 : 0));
  json.add("omp_available", static_cast<std::int64_t>(omp_ran ? 1 : 0));
  json.add("omp_ms", omp_ms);
  json.add("omp_ok", static_cast<std::int64_t>(omp_ok ? 1 : 0));
  json.add("sim_ms", sim_ms);
  json.add("sim_ok", static_cast<std::int64_t>(sim_ok ? 1 : 0));
  json.add("tcp_ranks", static_cast<std::int64_t>(4));
  json.add("tcp_ms", dist_ms);
  json.add("tcp_ok", static_cast<std::int64_t>(dist_ok ? 1 : 0));
  json.write("BENCH_patterns.json");

  return base_ok && sim_ok && dist_ok && (!omp_ran || omp_ok) ? 0 : 1;
}
