// STARV-1: starvation from static work placement vs message-driven work
// queues (paper §2.1: "Starvation is the lack of work and therefore the
// idle cycles experienced by an execution site ... caused either due to
// inadequate program parallelism or due to poor load balancing").
//
// A skewed bag of tasks (a few large stragglers among many small tasks) is
// executed by (a) four isolated single-worker schedulers with a static
// round-robin pre-partition — a rank that finishes early starves — and
// (b) one four-worker work-stealing scheduler fed the identical bag.
//
// Skew mode (full-runtime): the same bag arrives as paced task arrivals
// placed by process::spawn_any across single-worker localities — where
// work stealing cannot help (threads are locality-bound) and placement is
// the only balancer.  Static round-robin placement re-creates the
// starvation; the introspection-driven rebalancer steers arrivals toward
// shallow ready queues instead.
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/process.hpp"
#include "core/runtime.hpp"
#include "threads/scheduler.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace px;

// Execution sites = physical cores; more would time-share and blur the
// static-placement starvation this experiment measures.
const unsigned kSites = std::max(2u, std::thread::hardware_concurrency());
constexpr std::size_t kTasks = 256;
constexpr double kMeanUs = 200.0;

// The bag models a spatial domain whose expensive region is contiguous:
// 16 stragglers sit at indices that index-round-robin assigns to the SAME
// site — the classic way static decomposition starves its peers (cost
// correlates with position, placement does not know it).
std::vector<double> make_bag(double skew, std::uint64_t seed) {
  util::xoshiro256 rng(seed);
  std::vector<double> bag(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    bag[i] = kMeanUs * rng.uniform(0.2, 0.4);
  }
  for (std::size_t k = 0; k < 16; ++k) {
    bag[k * kSites] = kMeanUs * (1.0 + skew);
  }
  return bag;
}

double static_partition_ms(const std::vector<double>& bag) {
  std::vector<std::unique_ptr<threads::scheduler>> sites;
  for (unsigned s = 0; s < kSites; ++s) {
    sites.push_back(std::make_unique<threads::scheduler>(
        threads::scheduler_params{.workers = 1}));
    sites.back()->start();
  }
  const double ms = bench::time_ms([&] {
    for (std::size_t i = 0; i < bag.size(); ++i) {
      const double us = bag[i];
      sites[i % kSites]->spawn([us] { bench::busy_spin_us(us); });
    }
    for (auto& site : sites) site->wait_quiescent();
  });
  for (auto& site : sites) site->stop();
  return ms;
}

double work_queue_ms(const std::vector<double>& bag) {
  threads::scheduler sched(threads::scheduler_params{.workers = kSites});
  sched.start();
  const double ms = bench::time_ms([&] {
    for (const double us : bag) {
      sched.spawn([us] { bench::busy_spin_us(us); });
    }
    sched.wait_quiescent();
  });
  sched.stop();
  return ms;
}

// Full-runtime placement experiment: localities with one worker each (no
// intra-machine stealing), tasks arriving at roughly the aggregate service
// rate.  `adaptive` toggles the rebalancer, i.e. spawn_any's placement
// policy: static round-robin vs least-ready-depth.  Task durations are
// *blocking service holds* of the execution site (sleep, not spin), so the
// measurement reflects queueing behind stragglers — the quantity placement
// controls — independent of how many physical cores the host time-shares.
double px_placement_ms(const std::vector<double>& bag, bool adaptive) {
  core::runtime_params p;
  p.localities = kSites;
  p.workers_per_locality = 1;
  p.rebalance = adaptive ? 1 : 0;
  p.rebalance_min_depth = 1000000;  // isolate the placement actuator
  core::runtime rt(p);
  rt.start();
  std::vector<gas::locality_id> span;
  for (unsigned s = 0; s < kSites; ++s) {
    span.push_back(static_cast<gas::locality_id>(s));
  }
  auto proc = core::create_process(rt, span);

  double total_us = 0;
  for (const double t : bag) total_us += t;
  // Paced arrivals: one task per (mean service time / sites), so the
  // backlog a straggler builds is visible to the placement decisions that
  // follow it (a single burst would be placed before any queue formed).
  const double pace_us = total_us / static_cast<double>(bag.size()) /
                         static_cast<double>(kSites);
  const double ms = bench::time_ms([&] {
    for (const double us : bag) {
      proc->spawn_any([us] {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::micro>(us));
      });
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::micro>(pace_us));
    }
    proc->seal();
    proc->terminated().wait();
  });
  rt.stop();
  return ms;
}

}  // namespace

int main() {
  using namespace px;
  bench::banner(
      "STARV-1 / starvation under static vs dynamic placement (section 2.1)",
      "\"Starvation is the lack of work and therefore the idle cycles "
      "experienced by an execution site ... caused either due to inadequate "
      "program parallelism or due to poor load balancing.\"");

  util::text_table table({"straggler skew", "static (ms)", "work-queue (ms)",
                          "static/dynamic", "static idle %"});
  for (const double skew : {0.0, 4.0, 8.0, 16.0, 32.0}) {
    const auto bag = make_bag(skew, 777);
    double busy_ms = 0;
    for (const double t : bag) busy_ms += t / 1000.0;
    const double ideal_ms = busy_ms / kSites;

    // Best of three: scheduling noise only adds time.
    double stat_ms = 1e300, dyn_ms = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      stat_ms = std::min(stat_ms, static_partition_ms(bag));
      dyn_ms = std::min(dyn_ms, work_queue_ms(bag));
    }
    const double idle_frac = 1.0 - ideal_ms / stat_ms;
    table.add_row(skew, stat_ms, dyn_ms, stat_ms / dyn_ms,
                  100.0 * idle_frac);
  }
  table.print("256 tasks; 16 stragglers land on one site under round-robin");
  std::printf("%s", table.render_csv().c_str());

  // Skew mode: the full runtime with locality-bound threads, where only
  // *placement* can balance.  Round-robin spawn_any (rebalancer off) vs
  // ready-depth-steered spawn_any (rebalancer on).
  util::text_table placement({"straggler skew", "round-robin (ms)",
                              "adaptive (ms)", "static/adaptive"});
  for (const double skew : {4.0, 16.0, 32.0}) {
    const auto bag = make_bag(skew, 777);
    double rr_ms = 1e300, ad_ms = 1e300;
    for (int rep = 0; rep < 2; ++rep) {
      rr_ms = std::min(rr_ms, px_placement_ms(bag, /*adaptive=*/false));
      ad_ms = std::min(ad_ms, px_placement_ms(bag, /*adaptive=*/true));
    }
    placement.add_row(skew, rr_ms, ad_ms, rr_ms / ad_ms);
  }
  placement.print("paced arrivals, 1-worker localities (placement is the "
                  "only balancer)");
  std::printf("%s", placement.render_csv().c_str());

  std::printf(
      "\nshape check: static placement idles sites behind the straggler "
      "partition (static/dynamic grows with skew); the shared work-queue "
      "model keeps all sites fed, and at the runtime level adaptive "
      "spawn_any placement recovers what locality-bound threads lose.\n");
  return 0;
}
