// LAT-1: intrinsic latency hiding — ParalleX message-driven multithreading
// vs the blocking CSP baseline, on the same fabric.
//
// Workload: 384 items; each needs one value from a remote "server"
// locality/rank plus 10us of local compute.  CSP issues a blocking
// request/reply per item (2 traversals exposed per item); ParalleX spawns
// one thread per item — a thread that suspends on its future is a
// *depleted thread* costing nothing while parcels fly, so compute and
// communication overlap automatically ("intrinsic mechanisms for automatic
// latency hiding").
#include <cstdio>
#include <vector>

#include "baseline/csp.hpp"
#include "common.hpp"
#include "core/action.hpp"
#include "core/runtime.hpp"
#include "lco/lco.hpp"
#include "util/table.hpp"

namespace {

using namespace px;

const int kItems = bench::smoke_mode() ? 48 : 384;
constexpr double kComputeUs = 10.0;

double serve_value(std::uint64_t key) {
  return static_cast<double>(key) * 1.5;
}
PX_REGISTER_ACTION(serve_value)

double parallex_run_ms(std::uint64_t latency_ns) {
  core::runtime_params p;
  p.localities = 2;
  p.workers_per_locality = 2;
  p.fabric.base_latency_ns = latency_ns;
  core::runtime rt(p);
  rt.start();
  double elapsed = 0;
  rt.run([&] {
    elapsed = bench::time_ms([&] {
      lco::and_gate done(kItems);
      for (int i = 0; i < kItems; ++i) {
        core::this_locality()->spawn([&, i] {
          auto fut = core::async<&serve_value>(rt.locality_gid(1),
                                               static_cast<std::uint64_t>(i));
          const double v = fut.get();  // suspends; worker runs other items
          (void)v;
          bench::busy_spin_us(kComputeUs);
          done.signal();
        });
      }
      done.wait();
    });
  });
  rt.stop();
  return elapsed;
}

// Isolated request/reply round trip: one thread, one outstanding request,
// nothing to coalesce behind it.  This is the parcel pipeline's worst case
// (batching buys nothing, buffering costs latency); the first-parcel eager
// flush exists exactly for it.  PX_PARCEL_EAGER_FLUSH / parcel_eager_flush
// toggles the two modes being compared.
double single_request_us(bool eager, std::uint64_t latency_ns) {
  const int reps = bench::smoke_mode() ? 64 : 512;
  core::runtime_params p;
  p.localities = 2;
  p.workers_per_locality = 1;
  p.parcel_eager_flush = eager ? 1 : 0;
  p.fabric.base_latency_ns = latency_ns;
  core::runtime rt(p);
  rt.start();
  double elapsed_ms = 0;
  rt.run([&] {
    // Warm caches, stacks, and the action registry off the clock.
    core::async<&serve_value>(rt.locality_gid(1), 0).get();
    elapsed_ms = bench::time_ms([&] {
      for (int i = 0; i < reps; ++i) {
        (void)core::async<&serve_value>(rt.locality_gid(1),
                                        static_cast<std::uint64_t>(i))
            .get();
      }
    });
  });
  rt.stop();
  return elapsed_ms * 1000.0 / reps;
}

double csp_run_ms(std::uint64_t latency_ns) {
  baseline::csp_params p;
  p.ranks = 2;
  p.fabric.base_latency_ns = latency_ns;
  baseline::csp_runtime rt(p);
  double elapsed = 0;
  rt.run([&](baseline::rank_context& ctx) {
    if (ctx.rank() == 0) {
      elapsed = bench::time_ms([&] {
        for (int i = 0; i < kItems; ++i) {
          ctx.send_value(1, 1, static_cast<std::uint64_t>(i));
          (void)ctx.recv_value<double>(1, 2);  // rank blocks: latency exposed
          bench::busy_spin_us(kComputeUs);
        }
        ctx.send_value(1, 1, std::uint64_t(~0ull));  // stop token
      });
    } else {
      for (;;) {
        const auto key = ctx.recv_value<std::uint64_t>(0, 1);
        if (key == ~0ull) break;
        ctx.send_value(0, 2, static_cast<double>(key) * 1.5);
      }
    }
  });
  return elapsed;
}

}  // namespace

int main() {
  using namespace px;
  bench::banner(
      "LAT-1 / latency hiding (paper sections 1, 2.1, 2.2)",
      "\"The message driven paradigm combined with multithreading ... "
      "provides intrinsic latency hiding at multiple levels within the "
      "system\"; blocking on remote access is the baseline's cost.");

  util::text_table table({"latency (us)", "CSP (ms)", "ParalleX (ms)",
                          "speedup", "CSP exposed/item (us)"});
  std::vector<std::string> rows;
  const std::vector<std::uint64_t> latencies =
      bench::smoke_mode() ? std::vector<std::uint64_t>{0, 20}
                          : std::vector<std::uint64_t>{0, 5, 20, 50, 100};
  for (const std::uint64_t lat_us : latencies) {
    const double csp = csp_run_ms(lat_us * 1000);
    const double pxm = parallex_run_ms(lat_us * 1000);
    table.add_row(static_cast<std::int64_t>(lat_us), csp, pxm, csp / pxm,
                  csp * 1000.0 / kItems - kComputeUs);
    char row[224];
    std::snprintf(row, sizeof row,
                  "{\"latency_us\": %llu, \"csp_ms\": %.4g, "
                  "\"parallex_ms\": %.4g, \"speedup\": %.4g}",
                  static_cast<unsigned long long>(lat_us), csp, pxm,
                  csp / pxm);
    rows.push_back(row);
  }
  table.print(std::to_string(kItems) +
              " items x (remote fetch + 10us compute)");
  std::printf("%s", table.render_csv().c_str());

  // Single-request latency, both pipeline modes: eager first-parcel flush
  // (ship the lone parcel from the send path) vs idle-flush only (the
  // parcel waits for the sender to suspend and the flush-on-idle pass).
  util::text_table single({"fabric latency (us)", "eager RTT (us)",
                           "idle-flush RTT (us)", "eager saves (us)"});
  std::vector<std::string> single_rows;
  for (const std::uint64_t lat_us : {0ull, 20ull}) {
    const double on = single_request_us(true, lat_us * 1000);
    const double off = single_request_us(false, lat_us * 1000);
    single.add_row(static_cast<std::int64_t>(lat_us), on, off, off - on);
    char row[160];
    std::snprintf(row, sizeof row,
                  "{\"latency_us\": %llu, \"eager_us\": %.4g, "
                  "\"idle_flush_us\": %.4g}",
                  static_cast<unsigned long long>(lat_us), on, off);
    single_rows.push_back(row);
  }
  single.print("isolated request/reply round trip (no concurrency to hide "
               "behind)");
  std::printf("%s", single.render_csv().c_str());

  bench::json_writer json;
  json.add("bench", std::string("latency_hiding"));
  bench::add_metadata(json, "sim");
  json.add("items", static_cast<std::int64_t>(kItems));
  json.add("compute_us", kComputeUs);
  json.add("smoke", static_cast<std::int64_t>(bench::smoke_mode() ? 1 : 0));
  json.add_rows("latencies", rows);
  json.add_rows("single_request", single_rows);
  json.write("BENCH_latency.json");

  std::printf(
      "\nshape check: CSP time grows linearly with latency (2 traversals "
      "exposed per item); ParalleX stays near the compute bound.\n");
  return 0;
}
