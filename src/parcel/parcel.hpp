// Parcels: the ParalleX message-driven work unit.
//
// Paper §2.2 "Parcels": a parcel carries (1) the destination virtual address
// of a remote target object, (2) an action specifier, (3) argument values
// moving prior state to the invocation site, and (4) — the distinguishing
// feature over active messages — a *continuation specifier* naming what
// happens after the action completes.  The continuation lets the locus of
// control migrate across the system instead of bouncing back to a caller.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gas/gid.hpp"
#include "util/serialize.hpp"

namespace px::parcel {

using action_id = std::uint32_t;

inline constexpr action_id invalid_action = 0;

// Continuation specifier: when the action produces a value, apply
// `action` to object `target` with that value as argument.  The common
// cases are "set this future LCO" (target = lco gid, action = set-value)
// and "chain into the next stage" (target = next object).
struct continuation {
  gas::gid target;
  action_id action = invalid_action;

  bool valid() const noexcept { return target.valid(); }

  template <typename Ar>
  friend void serialize(Ar& ar, continuation& c) {
    ar& c.target& c.action;
  }
};

struct parcel {
  gas::gid destination;       // target object (data, LCO, process...)
  action_id action = invalid_action;
  continuation cont;          // optional
  std::vector<std::byte> arguments;  // serialized argument tuple

  // Bookkeeping: source locality (for stats/diagnostics) and hop count
  // (bounded forwarding when AGAS caches are stale).
  gas::locality_id source = gas::invalid_locality;
  std::uint8_t forwards = 0;

  template <typename Ar>
  friend void serialize(Ar& ar, parcel& p) {
    ar& p.destination& p.action& p.cont& p.arguments& p.source& p.forwards;
  }
};

// Wire helpers: a parcel is the payload of exactly one fabric message.
std::vector<std::byte> encode(const parcel& p);
parcel decode(std::span<const std::byte> bytes);

}  // namespace px::parcel
