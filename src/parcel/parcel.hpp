// Parcels: the ParalleX message-driven work unit.
//
// Paper §2.2 "Parcels": a parcel carries (1) the destination virtual address
// of a remote target object, (2) an action specifier, (3) argument values
// moving prior state to the invocation site, and (4) — the distinguishing
// feature over active messages — a *continuation specifier* naming what
// happens after the action completes.  The continuation lets the locus of
// control migrate across the system instead of bouncing back to a caller.
//
// Wire format.  Parcels travel in *batch frames* so the fabric's per-message
// costs amortize over many parcels (the coalescing the AMT literature
// identifies as the deciding factor for parcel-rate ceilings):
//
//   frame  := [u32 magic "PXBF"] [u32 count] record*count
//   record := [u32 len] parcel-bytes (len of them)
//   parcel := [u64 destination] [u64 cont.target] [u32 action]
//             [u32 cont.action] [u32 source] [u8 forwards] [u8 flags]
//             [u8*2 zero] [u32 arg_len] extension-bytes argument-bytes
//
// `flags` bit 0 marks an optional 16-byte trace extension ([u64 trace id]
// [u64 span id], trace/trace.hpp) and bit 1 an optional 8-byte stats
// extension ([u64 send timestamp, ns on the rank-0 clock],
// introspect/stats.hpp — the sender's half of the send→dispatch latency
// histogram), in that order between the fixed header and the argument
// bytes; with tracing and stats off the flag byte is zero and the record
// is byte-identical to the pre-extension format.  The extensions are
// self-describing per record, so every transport backend carries them
// unmodified.
//
// All integers are *little-endian on the wire* (normalized in encode/decode;
// a no-op on x86-64).  Since PR 4 parcels cross real process boundaries over
// TCP, so the format must be well-defined independent of the host: a frame
// produced on any supported host parses identically on any other.  Encoding
// appends into a caller-supplied buffer — typically one drawn from a
// px::util::buffer_pool — and decoding is zero-copy: a `parcel_view` reads
// every field in place over a std::span, so the receive path touches no heap
// until an action chooses to materialize what it needs.
//
// Streaming: a batch frame is self-delimiting (count + per-record lengths),
// so `frame_assembler` below can cut complete frames out of a TCP byte
// stream incrementally, across arbitrary partial-read boundaries.
#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "gas/gid.hpp"
#include "util/serialize.hpp"

namespace px::parcel {

using action_id = std::uint32_t;

inline constexpr action_id invalid_action = 0;

// Continuation specifier: when the action produces a value, apply
// `action` to object `target` with that value as argument.  The common
// cases are "set this future LCO" (target = lco gid, action = set-value)
// and "chain into the next stage" (target = next object).
struct continuation {
  gas::gid target;
  action_id action = invalid_action;

  bool valid() const noexcept { return target.valid(); }

  template <typename Ar>
  friend void serialize(Ar& ar, continuation& c) {
    ar& c.target& c.action;
  }
};

struct parcel {
  gas::gid destination;       // target object (data, LCO, process...)
  action_id action = invalid_action;
  continuation cont;          // optional
  std::vector<std::byte> arguments;  // serialized argument tuple

  // Bookkeeping: source locality (for stats/diagnostics) and hop count
  // (bounded forwarding when AGAS caches are stale).
  gas::locality_id source = gas::invalid_locality;
  std::uint8_t forwards = 0;

  // Causal flight-recorder identity (trace/trace.hpp): which logical
  // request this parcel belongs to and which hop it is.  Zero = untraced;
  // nonzero rides the wire as the flagged header extension.  Transport
  // metadata, deliberately outside serialize() — a parcel embedded in
  // another payload does not carry its own trace hop.
  std::uint64_t trace_id = 0;
  std::uint64_t trace_span = 0;

  // Telemetry send timestamp (introspect/stats.hpp): ns on the rank-0
  // clock (local steady clock minus the bootstrap clock offset), stamped
  // by locality::send when PX_STATS is armed.  Zero = unstamped; nonzero
  // rides the wire as the flags-bit-1 extension so the receiving rank can
  // histogram the full cross-rank send→dispatch latency.  Transport
  // metadata, outside serialize(), like the trace identity.
  std::uint64_t send_ts_ns = 0;

  template <typename Ar>
  friend void serialize(Ar& ar, parcel& p) {
    ar& p.destination& p.action& p.cont& p.arguments& p.source& p.forwards;
  }
};

// ------------------------------------------------------------ wire layout

// The wire format is defined little-endian.  Mixed-endian hosts (and
// anything else where a byte-order flip is not a well-defined transform)
// are out of scope; big-endian hosts byte-swap in the store/load shims.
static_assert(std::endian::native == std::endian::little ||
                  std::endian::native == std::endian::big,
              "parcel wire format requires a little- or big-endian host");

inline constexpr std::size_t wire_header_bytes = 36;
inline constexpr std::size_t frame_header_bytes = 8;
inline constexpr std::uint32_t frame_magic = 0x46425850u;  // "PXBF"

// Optional trace extension: [u64 trace id][u64 span id], present iff flags
// bit 0 is set in the header.
inline constexpr std::size_t trace_ext_bytes = 16;
inline constexpr std::uint8_t wire_flag_trace = 0x01;

// Optional stats extension: [u64 send ts ns], present iff flags bit 1 is
// set; follows the trace extension when both are present.
inline constexpr std::size_t stats_ext_bytes = 8;
inline constexpr std::uint8_t wire_flag_stats = 0x02;

// Exact encoded size of one parcel record body (excluding the frame's
// per-record length prefix).
inline std::size_t encoded_size(const parcel& p) noexcept {
  return wire_header_bytes + (p.trace_id != 0 ? trace_ext_bytes : 0) +
         (p.send_ts_ns != 0 ? stats_ext_bytes : 0) + p.arguments.size();
}

// Appends the encoded record body of `p` to `out` (no frame bookkeeping;
// use frame_append for framed traffic).
void encode_into(std::vector<std::byte>& out, const parcel& p);

// Zero-copy decoded parcel: scalar fields are read out of the record header
// and the argument bytes stay in place as a span into the backing buffer.
// A view is valid only while that buffer lives; handlers that outlive the
// dispatch call must copy (to_parcel or from_bytes over arguments()).
class parcel_view {
 public:
  parcel_view() = default;

  // Validates and decodes exactly one record body.  Rejects (nullopt)
  // truncated headers and argument lengths that disagree with the record
  // size; never reads out of bounds.
  static std::optional<parcel_view> parse(
      std::span<const std::byte> record) noexcept;

  // Borrows an in-memory parcel (arguments() aliases p.arguments); used by
  // the local fast path to dispatch without an encode round trip.
  static parcel_view of(const parcel& p) noexcept;

  gas::gid destination() const noexcept { return destination_; }
  action_id action() const noexcept { return action_; }
  const continuation& cont() const noexcept { return cont_; }
  gas::locality_id source() const noexcept { return source_; }
  std::uint8_t forwards() const noexcept { return forwards_; }
  std::uint64_t trace_id() const noexcept { return trace_id_; }
  std::uint64_t trace_span() const noexcept { return trace_span_; }
  std::uint64_t send_ts_ns() const noexcept { return send_ts_ns_; }
  std::span<const std::byte> arguments() const noexcept { return arguments_; }

  // Materializes an owning parcel (copies the argument bytes).
  parcel to_parcel() const;

 private:
  gas::gid destination_;
  continuation cont_;
  action_id action_ = invalid_action;
  gas::locality_id source_ = gas::invalid_locality;
  std::uint8_t forwards_ = 0;
  std::uint64_t trace_id_ = 0;
  std::uint64_t trace_span_ = 0;
  std::uint64_t send_ts_ns_ = 0;
  std::span<const std::byte> arguments_;
};

// --------------------------------------------------------- frame encoding

// Starts an empty batch frame in `buf` (clears it first).
void frame_begin(std::vector<std::byte>& buf);

// Appends one parcel record to an open frame and bumps its count in place.
void frame_append(std::vector<std::byte>& buf, const parcel& p);

// Count field of a frame; 0 for buffers too short to carry one.
std::uint32_t frame_count(std::span<const std::byte> frame) noexcept;

// Validated, zero-copy reader over a batch frame.  parse() walks the whole
// frame once — magic, count, every record length, every parcel header — and
// rejects anything inconsistent (truncation, trailing garbage, corrupt
// lengths), so iteration afterwards cannot go out of bounds.
class frame_view {
 public:
  static std::optional<frame_view> parse(
      std::span<const std::byte> frame) noexcept;

  std::uint32_t count() const noexcept { return count_; }

  class iterator {
   public:
    parcel_view operator*() const noexcept;
    iterator& operator++() noexcept;
    bool operator!=(const iterator& other) const noexcept {
      return index_ != other.index_;
    }

   private:
    friend class frame_view;
    iterator(std::span<const std::byte> frame, std::size_t offset,
             std::uint32_t index) noexcept
        : frame_(frame), offset_(offset), index_(index) {}
    std::span<const std::byte> frame_;
    std::size_t offset_ = 0;
    std::uint32_t index_ = 0;
  };

  iterator begin() const noexcept {
    return iterator(frame_, frame_header_bytes, 0);
  }
  iterator end() const noexcept { return iterator(frame_, 0, count_); }

 private:
  frame_view(std::span<const std::byte> frame, std::uint32_t count) noexcept
      : frame_(frame), count_(count) {}
  std::span<const std::byte> frame_;
  std::uint32_t count_ = 0;
};

// ------------------------------------------------------ stream reassembly

// Incremental frame reassembly over a byte stream (the TCP receive path).
//
// frame_view::parse needs the whole frame in one span, but a socket hands
// out bytes at arbitrary boundaries — possibly one frame split across many
// reads, possibly several frames (plus a partial) in one read.  The
// assembler buffers fed bytes and cuts out complete frames as their
// self-delimiting structure (magic, count, per-record lengths) resolves.
//
// A stream that desynchronizes is *rejected, never resynchronized*: scanning
// for the next plausible magic would silently drop parcels and could lock
// onto magic-valued argument bytes.  Garbage poisons the assembler (feed
// returns false, next_frame never yields again) and the owner must tear the
// connection down.  Every yielded frame has passed frame_view::parse, so
// downstream iteration is bounds-safe.
class frame_assembler {
 public:
  // `max_frame_bytes` bounds what a corrupt length/count field can make us
  // buffer before the stream is declared garbage.
  explicit frame_assembler(std::size_t max_frame_bytes = 64u << 20)
      : max_frame_bytes_(max_frame_bytes) {}

  // Appends stream bytes.  Returns false iff the stream is (or already was)
  // poisoned: bad magic, or a frame that cannot fit max_frame_bytes.
  bool feed(std::span<const std::byte> bytes);

  // Extracts the next complete, fully validated frame; nullopt when more
  // bytes are needed (or the stream is poisoned).  The returned buffer
  // holds exactly one frame.
  std::optional<std::vector<std::byte>> next_frame();

  bool poisoned() const noexcept { return poisoned_; }
  // Bytes buffered but not yet yielded as a frame (0 at clean stream end).
  std::size_t buffered_bytes() const noexcept { return buf_.size(); }

 private:
  // Advances the incremental boundary scan; sets frame_len_ when the frame
  // at the head of buf_ is complete, poisons on structural garbage.
  void scan() noexcept;

  std::size_t max_frame_bytes_;
  std::vector<std::byte> buf_;
  // Scan state for the (single) frame at the head of buf_.
  std::size_t scan_pos_ = 0;        // next unparsed record boundary
  std::uint32_t records_seen_ = 0;  // records fully delimited so far
  std::size_t frame_len_ = 0;       // complete-frame length; 0 = unknown
  bool poisoned_ = false;
};

}  // namespace px::parcel
