#include "parcel/action_registry.hpp"

#include <mutex>

#include "util/assert.hpp"

namespace px::parcel {

action_registry& action_registry::global() {
  static action_registry instance;
  return instance;
}

action_id action_registry::register_action(std::string name, handler h) {
  PX_ASSERT(!name.empty());
  PX_ASSERT(h != nullptr);
  std::lock_guard lock(lock_);
  for (const auto& e : entries_) {
    PX_ASSERT_MSG(e.name != name, "action name registered twice");
  }
  entries_.push_back(entry{std::move(name), std::move(h)});
  return static_cast<action_id>(entries_.size());  // ids start at 1
}

void action_registry::dispatch(void* ctx, parcel p) const {
  const action_id id = p.action;
  const handler* fn = nullptr;
  {
    std::lock_guard lock(lock_);
    PX_ASSERT_MSG(id != invalid_action && id <= entries_.size(),
                  "dispatch of unregistered action");
    fn = &entries_[id - 1].fn;
  }
  // Handlers are immutable once registered; calling outside the lock is
  // safe and required (they may send parcels, spawning registry lookups).
  (*fn)(ctx, std::move(p));
}

std::optional<action_id> action_registry::find(std::string_view name) const {
  std::lock_guard lock(lock_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == name) return static_cast<action_id>(i + 1);
  }
  return std::nullopt;
}

const std::string& action_registry::name_of(action_id id) const {
  std::lock_guard lock(lock_);
  PX_ASSERT(id != invalid_action && id <= entries_.size());
  return entries_[id - 1].name;
}

std::size_t action_registry::size() const {
  std::lock_guard lock(lock_);
  return entries_.size();
}

}  // namespace px::parcel
