#include "parcel/action_registry.hpp"

#include <mutex>

#include "util/assert.hpp"

namespace px::parcel {

action_registry& action_registry::global() {
  static action_registry instance;
  return instance;
}

action_registry::action_registry()
    : entries_(std::make_unique<entry[]>(max_actions)) {}

action_id action_registry::insert(std::string name, view_handler fast,
                                  handler slow) {
  PX_ASSERT(!name.empty());
  std::lock_guard lock(lock_);
  const std::uint32_t n = count_.load(std::memory_order_relaxed);
  PX_ASSERT_MSG(n < max_actions, "action registry full");
  for (std::uint32_t i = 0; i < n; ++i) {
    PX_ASSERT_MSG(entries_[i].name != name, "action name registered twice");
  }
  entries_[n].name = std::move(name);
  entries_[n].fast = fast;
  entries_[n].slow = std::move(slow);
  // Publish: dispatchers index only below count_, so the release store
  // makes the fully-written slot visible without them taking the lock.
  count_.store(n + 1, std::memory_order_release);
  return static_cast<action_id>(n + 1);  // ids start at 1
}

action_id action_registry::register_action(std::string name,
                                           view_handler fn) {
  PX_ASSERT(fn != nullptr);
  return insert(std::move(name), fn, nullptr);
}

action_id action_registry::register_action(std::string name, handler h) {
  PX_ASSERT(h != nullptr);
  return insert(std::move(name), nullptr, std::move(h));
}

const action_registry::entry& action_registry::at(action_id id) const {
  const std::uint32_t n = count_.load(std::memory_order_acquire);
  PX_ASSERT_MSG(id != invalid_action && id <= n,
                "dispatch of unregistered action");
  return entries_[id - 1];
}

void action_registry::dispatch(void* ctx, const parcel_view& pv) const {
  const entry& e = at(pv.action());
  if (e.fast != nullptr) {
    e.fast(ctx, pv);
    return;
  }
  e.slow(ctx, pv.to_parcel());
}

void action_registry::dispatch(void* ctx, parcel p) const {
  const entry& e = at(p.action);
  if (e.fast != nullptr) {
    e.fast(ctx, parcel_view::of(p));  // borrows p.arguments, no copy
    return;
  }
  e.slow(ctx, std::move(p));
}

std::optional<action_id> action_registry::find(std::string_view name) const {
  std::lock_guard lock(lock_);
  const std::uint32_t n = count_.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (entries_[i].name == name) return static_cast<action_id>(i + 1);
  }
  return std::nullopt;
}

const std::string& action_registry::name_of(action_id id) const {
  std::lock_guard lock(lock_);
  PX_ASSERT(id != invalid_action &&
            id <= count_.load(std::memory_order_relaxed));
  return entries_[id - 1].name;
}

std::size_t action_registry::size() const {
  return count_.load(std::memory_order_acquire);
}

}  // namespace px::parcel
