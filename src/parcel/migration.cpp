#include "parcel/migration.hpp"

#include <mutex>

namespace px::parcel {

migratable_registry& migratable_registry::global() {
  static migratable_registry instance;
  return instance;
}

void migratable_registry::register_type(std::string name, vtable vt) {
  PX_ASSERT(!name.empty());
  PX_ASSERT(vt.encode != nullptr && vt.decode != nullptr);
  std::lock_guard lock(lock_);
  const auto [it, inserted] = types_.emplace(std::move(name), std::move(vt));
  (void)it;
  PX_ASSERT_MSG(inserted, "migratable type name registered twice");
}

const migratable_registry::vtable* migratable_registry::find(
    const std::string& name) const {
  std::lock_guard lock(lock_);
  const auto it = types_.find(name);
  return it != types_.end() ? &it->second : nullptr;
}

std::size_t migratable_registry::size() const {
  std::lock_guard lock(lock_);
  return types_.size();
}

}  // namespace px::parcel
