// Action registry: names -> action ids -> invocation handlers.
//
// Actions are first-class in the ParalleX name space ("actions as well as
// data are first class entities").  Every locality shares one registry (we
// model a single program image, as MPI/SPMD systems do), so an action_id is
// valid system-wide.  Handlers receive an opaque runtime context pointer —
// the locality the parcel landed on — and the parcel itself; the typed
// argument-unpacking layer lives in core/action.hpp.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "parcel/parcel.hpp"
#include "util/spinlock.hpp"

namespace px::parcel {

class action_registry {
 public:
  // `ctx` is the destination locality (core::locality*), kept opaque here
  // to avoid a dependency cycle.
  using handler = std::function<void(void* ctx, parcel p)>;

  // Registers under a unique name; returns the stable id.  Re-registering
  // a name is an error (asserts) — action identity must be unambiguous.
  action_id register_action(std::string name, handler h);

  // Invokes the handler for p.action.
  void dispatch(void* ctx, parcel p) const;

  std::optional<action_id> find(std::string_view name) const;
  const std::string& name_of(action_id id) const;
  std::size_t size() const;

  // Process-wide instance (single program image model).
  static action_registry& global();

 private:
  struct entry {
    std::string name;
    handler fn;
  };

  mutable util::spinlock lock_;
  std::vector<entry> entries_;
};

}  // namespace px::parcel
