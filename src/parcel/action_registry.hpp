// Action registry: names -> action ids -> invocation handlers.
//
// Actions are first-class in the ParalleX name space ("actions as well as
// data are first class entities").  Every locality shares one registry (we
// model a single program image, as MPI/SPMD systems do), so an action_id is
// valid system-wide.  Handlers receive an opaque runtime context pointer —
// the locality the parcel landed on — and a zero-copy parcel_view; the
// typed argument-unpacking layer lives in core/action.hpp.
//
// Dispatch is the per-parcel hot path, so it is lock-free and, for actions
// registered through core/action.hpp, allocation-free: entries live in a
// fixed slab published by an atomic count (slots are written before the
// count advances and are immutable afterwards), and the fast path is a raw
// function pointer — no std::function type erasure, no registry lock.
// Closure handlers remain supported for tests and ad-hoc endpoints; they
// pay one parcel materialization per dispatch.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "parcel/parcel.hpp"
#include "util/spinlock.hpp"

namespace px::parcel {

class action_registry {
 public:
  // `ctx` is the destination locality (core::locality*), kept opaque here
  // to avoid a dependency cycle.  The view (and its backing buffer) is only
  // valid for the duration of the call; handlers copy what they keep.
  using view_handler = void (*)(void* ctx, const parcel_view& pv);
  using handler = std::function<void(void* ctx, parcel p)>;

  action_registry();

  // Registers under a unique name; returns the stable id.  Re-registering
  // a name is an error (asserts) — action identity must be unambiguous.
  action_id register_action(std::string name, view_handler fn);
  action_id register_action(std::string name, handler h);

  // Invokes the handler for the view's action.  Zero-copy fast path for
  // view_handler entries; closure entries receive a materialized parcel.
  void dispatch(void* ctx, const parcel_view& pv) const;
  // Dispatches an owned parcel (local fast path): view_handler entries
  // borrow it without copying, closure entries take it by move.
  void dispatch(void* ctx, parcel p) const;

  std::optional<action_id> find(std::string_view name) const;
  const std::string& name_of(action_id id) const;
  std::size_t size() const;

  // Process-wide instance (single program image model).
  static action_registry& global();

  static constexpr std::size_t max_actions = 1024;

 private:
  struct entry {
    std::string name;
    view_handler fast = nullptr;  // non-allocating dispatch when set
    handler slow;                 // closure fallback
  };

  action_id insert(std::string name, view_handler fast, handler slow);
  const entry& at(action_id id) const;

  mutable util::spinlock lock_;  // writers and name lookups only
  std::unique_ptr<entry[]> entries_;
  std::atomic<std::uint32_t> count_{0};
};

}  // namespace px::parcel
