// Migration payload records: object state on the wire.
//
// In-process migration (PR 3's rebalancer, runtime::migrate_object<T>)
// moves a shared_ptr between locality tables — the bytes never move.  A
// *cross-process* migration has to ship the object's state through the
// same PR 2 frame pipeline every parcel rides, which needs two things the
// type-erased object table cannot provide:
//
//   * a wire encoding of the object's state (`migration_record`), and
//   * a way for the receiving process to reconstruct the object from those
//     bytes without knowing its static type (`migratable_registry`).
//
// A type participates by registering once, under a name, in every process
// (distributed mode enforces same-binary at bootstrap, so a static
// registration — PX_REGISTER_MIGRATABLE — holds machine-wide):
//
//   struct particle { double x, v;
//     template <typename Ar> friend void serialize(Ar& ar, particle& p) {
//       ar & p.x & p.v; } };
//   PX_REGISTER_MIGRATABLE(particle)
//
// The record carries the *name*, not a positional id: migration is
// control-plane rare, so a few string bytes per move buy immunity to
// registration-order drift between binaries.  Objects created through
// runtime::new_object are NOT migratable across processes unless created
// with runtime::new_migratable (which tags the gid with its type name);
// the rebalancer silently skips untagged objects when picking migration
// candidates, exactly as it skips non-data gids.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/assert.hpp"
#include "util/serialize.hpp"
#include "util/spinlock.hpp"

namespace px::parcel {

// The argument payload of a px.migrate_object parcel: which object, what
// type, and its serialized state.  Travels as an ordinary typed-action
// argument tuple, so it flows through the batched/pooled frame pipeline
// like any other parcel.
struct migration_record {
  std::uint64_t gid_bits = 0;
  std::string type_name;
  std::vector<std::byte> payload;

  template <typename Ar>
  friend void serialize(Ar& ar, migration_record& r) {
    ar& r.gid_bits& r.type_name& r.payload;
  }
};

// Name -> {encode, decode} table for cross-process migratable types.
class migratable_registry {
 public:
  struct vtable {
    // Serializes the object's current state (the pointer is the object
    // table's type-erased entry; the caller guarantees it really is the
    // registered type).
    std::function<std::vector<std::byte>(const std::shared_ptr<void>&)>
        encode;
    // Reconstructs a fresh object from record bytes.
    std::function<std::shared_ptr<void>(std::span<const std::byte>)> decode;
  };

  static migratable_registry& global();

  // Asserts on duplicate names: two types sharing a name would implant the
  // wrong type at the destination.
  void register_type(std::string name, vtable vt);

  // nullptr for unknown names.  The returned pointer stays valid for the
  // process lifetime (entries are never removed).
  const vtable* find(const std::string& name) const;

  std::size_t size() const;

 private:
  mutable util::spinlock lock_;
  std::map<std::string, vtable> types_;
};

// Per-type registration handle: remembers the name a type was registered
// under so runtime::new_migratable can tag fresh gids with it.
template <typename T>
struct migratable_type {
  static const std::string& ensure_registered(const char* name) {
    static const bool once = [name] {
      name_slot() = name;
      migratable_registry::global().register_type(
          name,
          migratable_registry::vtable{
              [](const std::shared_ptr<void>& p) {
                return util::to_bytes(*static_cast<const T*>(p.get()));
              },
              [](std::span<const std::byte> bytes) -> std::shared_ptr<void> {
                return std::make_shared<T>(util::from_bytes<T>(bytes));
              }});
      return true;
    }();
    (void)once;
    return name_slot();
  }

  static const std::string& name() {
    PX_ASSERT_MSG(!name_slot().empty(),
                  "type not registered; add PX_REGISTER_MIGRATABLE(T)");
    return name_slot();
  }

 private:
  static std::string& name_slot() {
    static std::string n;
    return n;
  }
};

// Registers T eagerly at static-init time (required: migration records may
// arrive before any local code touched T).
#define PX_DETAIL_MIG_CONCAT2(a, b) a##b
#define PX_DETAIL_MIG_CONCAT(a, b) PX_DETAIL_MIG_CONCAT2(a, b)
#define PX_REGISTER_MIGRATABLE_AS(T, name)                            \
  namespace {                                                         \
  [[maybe_unused]] const std::string& PX_DETAIL_MIG_CONCAT(           \
      px_migratable_registration_, __COUNTER__) =                     \
      ::px::parcel::migratable_type<T>::ensure_registered(name);      \
  }
#define PX_REGISTER_MIGRATABLE(T) PX_REGISTER_MIGRATABLE_AS(T, #T)

}  // namespace px::parcel
