#include "parcel/parcel.hpp"

#include <bit>
#include <cstring>

#include "util/assert.hpp"

namespace px::parcel {

namespace {

// Field offsets inside a parcel record body (see the layout comment in
// parcel.hpp).  Scalars are memcpy'd — the buffer carries no alignment
// guarantee.
constexpr std::size_t kOffDestination = 0;
constexpr std::size_t kOffContTarget = 8;
constexpr std::size_t kOffAction = 16;
constexpr std::size_t kOffContAction = 20;
constexpr std::size_t kOffSource = 24;
constexpr std::size_t kOffForwards = 28;
constexpr std::size_t kOffFlags = 29;  // bit 0: trace ext, bit 1: stats ext
constexpr std::size_t kOffArgLen = 32;

// Wire byte order is little-endian; normalize on big-endian hosts so the
// same frame bytes mean the same parcel on every peer of a distributed
// run.  (std::byteswap is C++23; spell it out for the C++20 build.)
template <typename T>
constexpr T to_wire_order(T value) noexcept {
  static_assert(std::is_unsigned_v<T>);
  if constexpr (std::endian::native == std::endian::little ||
                sizeof(T) == 1) {
    return value;
  } else if constexpr (sizeof(T) == 4) {
    return __builtin_bswap32(value);
  } else {
    static_assert(sizeof(T) == 8);
    return __builtin_bswap64(value);
  }
}

template <typename T>
void store(std::byte* base, std::size_t off, T value) noexcept {
  value = to_wire_order(value);
  std::memcpy(base + off, &value, sizeof value);
}

template <typename T>
T load(const std::byte* base, std::size_t off) noexcept {
  T value;
  std::memcpy(&value, base + off, sizeof value);
  return to_wire_order(value);  // involution: wire -> host
}

void patch_u32(std::vector<std::byte>& buf, std::size_t off,
               std::uint32_t value) noexcept {
  value = to_wire_order(value);
  std::memcpy(buf.data() + off, &value, sizeof value);
}

std::uint32_t read_u32(std::span<const std::byte> buf,
                       std::size_t off) noexcept {
  std::uint32_t value;
  std::memcpy(&value, buf.data() + off, sizeof value);
  return to_wire_order(value);
}

}  // namespace

void encode_into(std::vector<std::byte>& out, const parcel& p) {
  PX_ASSERT_MSG(p.arguments.size() <= 0xffffffffull,
                "parcel arguments exceed the u32 wire length field");
  const bool traced = p.trace_id != 0;
  const bool stamped = p.send_ts_ns != 0;
  const std::size_t ext = (traced ? trace_ext_bytes : 0) +
                          (stamped ? stats_ext_bytes : 0);
  const std::size_t base = out.size();
  out.resize(base + wire_header_bytes + ext + p.arguments.size());
  std::byte* d = out.data() + base;
  store<std::uint64_t>(d, kOffDestination, p.destination.bits());
  store<std::uint64_t>(d, kOffContTarget, p.cont.target.bits());
  store<std::uint32_t>(d, kOffAction, p.action);
  store<std::uint32_t>(d, kOffContAction, p.cont.action);
  store<std::uint32_t>(d, kOffSource, p.source);
  store<std::uint8_t>(d, kOffForwards, p.forwards);
  store<std::uint8_t>(d, kOffFlags,
                      static_cast<std::uint8_t>(
                          (traced ? wire_flag_trace : 0) |
                          (stamped ? wire_flag_stats : 0)));
  std::memset(d + kOffFlags + 1, 0, 2);  // reserved
  store<std::uint32_t>(d, kOffArgLen,
                       static_cast<std::uint32_t>(p.arguments.size()));
  std::size_t off = wire_header_bytes;
  if (traced) {
    store<std::uint64_t>(d, off, p.trace_id);
    store<std::uint64_t>(d, off + 8, p.trace_span);
    off += trace_ext_bytes;
  }
  if (stamped) {
    store<std::uint64_t>(d, off, p.send_ts_ns);
    off += stats_ext_bytes;
  }
  if (!p.arguments.empty()) {
    std::memcpy(d + off, p.arguments.data(), p.arguments.size());
  }
}

std::optional<parcel_view> parcel_view::parse(
    std::span<const std::byte> record) noexcept {
  if (record.size() < wire_header_bytes) return std::nullopt;
  const std::byte* d = record.data();
  const auto flags = load<std::uint8_t>(d, kOffFlags);
  if ((flags & ~(wire_flag_trace | wire_flag_stats)) != 0) {
    return std::nullopt;  // unknown bits
  }
  const std::size_t ext =
      ((flags & wire_flag_trace) != 0 ? trace_ext_bytes : 0) +
      ((flags & wire_flag_stats) != 0 ? stats_ext_bytes : 0);
  if (record.size() < wire_header_bytes + ext) return std::nullopt;
  const auto arg_len = load<std::uint32_t>(d, kOffArgLen);
  if (record.size() - wire_header_bytes - ext != arg_len) return std::nullopt;
  parcel_view v;
  v.destination_ = gas::gid::from_bits(load<std::uint64_t>(d, kOffDestination));
  v.cont_.target = gas::gid::from_bits(load<std::uint64_t>(d, kOffContTarget));
  v.action_ = load<std::uint32_t>(d, kOffAction);
  v.cont_.action = load<std::uint32_t>(d, kOffContAction);
  v.source_ = load<std::uint32_t>(d, kOffSource);
  v.forwards_ = load<std::uint8_t>(d, kOffForwards);
  std::size_t off = wire_header_bytes;
  if ((flags & wire_flag_trace) != 0) {
    v.trace_id_ = load<std::uint64_t>(d, off);
    v.trace_span_ = load<std::uint64_t>(d, off + 8);
    off += trace_ext_bytes;
  }
  if ((flags & wire_flag_stats) != 0) {
    v.send_ts_ns_ = load<std::uint64_t>(d, off);
    off += stats_ext_bytes;
  }
  v.arguments_ = record.subspan(off, arg_len);
  return v;
}

parcel_view parcel_view::of(const parcel& p) noexcept {
  parcel_view v;
  v.destination_ = p.destination;
  v.cont_ = p.cont;
  v.action_ = p.action;
  v.source_ = p.source;
  v.forwards_ = p.forwards;
  v.trace_id_ = p.trace_id;
  v.trace_span_ = p.trace_span;
  v.send_ts_ns_ = p.send_ts_ns;
  v.arguments_ = std::span<const std::byte>(p.arguments);
  return v;
}

parcel parcel_view::to_parcel() const {
  parcel p;
  p.destination = destination_;
  p.action = action_;
  p.cont = cont_;
  p.source = source_;
  p.forwards = forwards_;
  p.trace_id = trace_id_;
  p.trace_span = trace_span_;
  p.send_ts_ns = send_ts_ns_;
  p.arguments.assign(arguments_.begin(), arguments_.end());
  return p;
}

void frame_begin(std::vector<std::byte>& buf) {
  buf.clear();
  buf.resize(frame_header_bytes);
  patch_u32(buf, 0, frame_magic);
  patch_u32(buf, 4, 0);
}

void frame_append(std::vector<std::byte>& buf, const parcel& p) {
  PX_DEBUG_ASSERT(buf.size() >= frame_header_bytes);
  const std::size_t len_off = buf.size();
  buf.resize(len_off + sizeof(std::uint32_t));
  const std::size_t start = buf.size();
  encode_into(buf, p);
  patch_u32(buf, len_off, static_cast<std::uint32_t>(buf.size() - start));
  patch_u32(buf, 4, frame_count(buf) + 1);
}

std::uint32_t frame_count(std::span<const std::byte> frame) noexcept {
  if (frame.size() < frame_header_bytes) return 0;
  return read_u32(frame, 4);
}

std::optional<frame_view> frame_view::parse(
    std::span<const std::byte> frame) noexcept {
  if (frame.size() < frame_header_bytes) return std::nullopt;
  if (read_u32(frame, 0) != frame_magic) return std::nullopt;
  const std::uint32_t count = read_u32(frame, 4);
  std::size_t offset = frame_header_bytes;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (frame.size() - offset < sizeof(std::uint32_t)) return std::nullopt;
    const std::uint32_t len = read_u32(frame, offset);
    offset += sizeof(std::uint32_t);
    if (frame.size() - offset < len) return std::nullopt;
    if (!parcel_view::parse(frame.subspan(offset, len))) return std::nullopt;
    offset += len;
  }
  if (offset != frame.size()) return std::nullopt;  // trailing garbage
  return frame_view(frame, count);
}

parcel_view frame_view::iterator::operator*() const noexcept {
  const std::uint32_t len = read_u32(frame_, offset_);
  auto v = parcel_view::parse(
      frame_.subspan(offset_ + sizeof(std::uint32_t), len));
  PX_DEBUG_ASSERT(v.has_value());  // frame_view::parse validated every record
  return *v;
}

frame_view::iterator& frame_view::iterator::operator++() noexcept {
  const std::uint32_t len = read_u32(frame_, offset_);
  offset_ += sizeof(std::uint32_t) + len;
  index_ += 1;
  return *this;
}

// ------------------------------------------------------ stream reassembly

bool frame_assembler::feed(std::span<const std::byte> bytes) {
  if (poisoned_) return false;
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  scan();
  return !poisoned_;
}

void frame_assembler::scan() noexcept {
  if (poisoned_ || frame_len_ != 0) return;  // head frame already delimited
  if (buf_.size() < frame_header_bytes) return;
  if (scan_pos_ == 0) {
    if (read_u32(buf_, 0) != frame_magic) {
      // Garbage prefix: reject outright rather than hunting for the next
      // magic — resync would silently drop an unknowable number of parcels.
      poisoned_ = true;
      return;
    }
    const std::uint32_t count = read_u32(buf_, 4);
    // Every record costs at least its length prefix plus a parcel header,
    // so a corrupt count is detectable before buffering toward it.
    const std::size_t floor =
        frame_header_bytes +
        static_cast<std::size_t>(count) *
            (sizeof(std::uint32_t) + wire_header_bytes);
    if (floor > max_frame_bytes_) {
      poisoned_ = true;
      return;
    }
    scan_pos_ = frame_header_bytes;
  }
  const std::uint32_t count = read_u32(buf_, 4);
  while (records_seen_ < count) {
    if (buf_.size() - scan_pos_ < sizeof(std::uint32_t)) return;
    const std::uint32_t len = read_u32(buf_, scan_pos_);
    const std::size_t record_end = scan_pos_ + sizeof(std::uint32_t) + len;
    if (record_end > max_frame_bytes_) {
      poisoned_ = true;  // corrupt length field
      return;
    }
    if (buf_.size() < record_end) return;  // record still streaming in
    scan_pos_ = record_end;
    records_seen_ += 1;
  }
  frame_len_ = scan_pos_;
}

std::optional<std::vector<std::byte>> frame_assembler::next_frame() {
  if (poisoned_) return std::nullopt;
  if (frame_len_ == 0) scan();
  if (frame_len_ == 0) return std::nullopt;
  const std::span<const std::byte> head(buf_.data(), frame_len_);
  // The boundary scan only delimited the frame; full validation (record
  // headers, arg lengths) still runs once per frame, so a stream that is
  // structurally delimitable but semantically corrupt also poisons here.
  if (!frame_view::parse(head).has_value()) {
    poisoned_ = true;
    return std::nullopt;
  }
  std::vector<std::byte> frame(head.begin(), head.end());
  buf_.erase(buf_.begin(),
             buf_.begin() + static_cast<std::ptrdiff_t>(frame_len_));
  scan_pos_ = 0;
  records_seen_ = 0;
  frame_len_ = 0;
  scan();  // the next frame may already be complete in the buffer
  return frame;
}

}  // namespace px::parcel
