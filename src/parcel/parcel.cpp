#include "parcel/parcel.hpp"

namespace px::parcel {

std::vector<std::byte> encode(const parcel& p) {
  util::output_archive ar;
  ar& p;
  return std::move(ar).take();
}

parcel decode(std::span<const std::byte> bytes) {
  util::input_archive ar(bytes);
  parcel p;
  ar& p;
  return p;
}

}  // namespace px::parcel
