#include "parcel/parcel.hpp"

#include <cstring>

#include "util/assert.hpp"

namespace px::parcel {

namespace {

// Field offsets inside a parcel record body (see the layout comment in
// parcel.hpp).  Scalars are memcpy'd — the buffer carries no alignment
// guarantee.
constexpr std::size_t kOffDestination = 0;
constexpr std::size_t kOffContTarget = 8;
constexpr std::size_t kOffAction = 16;
constexpr std::size_t kOffContAction = 20;
constexpr std::size_t kOffSource = 24;
constexpr std::size_t kOffForwards = 28;
constexpr std::size_t kOffArgLen = 32;

template <typename T>
void store(std::byte* base, std::size_t off, T value) noexcept {
  std::memcpy(base + off, &value, sizeof value);
}

template <typename T>
T load(const std::byte* base, std::size_t off) noexcept {
  T value;
  std::memcpy(&value, base + off, sizeof value);
  return value;
}

void patch_u32(std::vector<std::byte>& buf, std::size_t off,
               std::uint32_t value) noexcept {
  std::memcpy(buf.data() + off, &value, sizeof value);
}

std::uint32_t read_u32(std::span<const std::byte> buf,
                       std::size_t off) noexcept {
  std::uint32_t value;
  std::memcpy(&value, buf.data() + off, sizeof value);
  return value;
}

}  // namespace

void encode_into(std::vector<std::byte>& out, const parcel& p) {
  PX_ASSERT_MSG(p.arguments.size() <= 0xffffffffull,
                "parcel arguments exceed the u32 wire length field");
  const std::size_t base = out.size();
  out.resize(base + wire_header_bytes + p.arguments.size());
  std::byte* d = out.data() + base;
  store<std::uint64_t>(d, kOffDestination, p.destination.bits());
  store<std::uint64_t>(d, kOffContTarget, p.cont.target.bits());
  store<std::uint32_t>(d, kOffAction, p.action);
  store<std::uint32_t>(d, kOffContAction, p.cont.action);
  store<std::uint32_t>(d, kOffSource, p.source);
  store<std::uint8_t>(d, kOffForwards, p.forwards);
  std::memset(d + kOffForwards + 1, 0, 3);  // reserved
  store<std::uint32_t>(d, kOffArgLen,
                       static_cast<std::uint32_t>(p.arguments.size()));
  if (!p.arguments.empty()) {
    std::memcpy(d + wire_header_bytes, p.arguments.data(),
                p.arguments.size());
  }
}

std::optional<parcel_view> parcel_view::parse(
    std::span<const std::byte> record) noexcept {
  if (record.size() < wire_header_bytes) return std::nullopt;
  const std::byte* d = record.data();
  const auto arg_len = load<std::uint32_t>(d, kOffArgLen);
  if (record.size() - wire_header_bytes != arg_len) return std::nullopt;
  parcel_view v;
  v.destination_ = gas::gid::from_bits(load<std::uint64_t>(d, kOffDestination));
  v.cont_.target = gas::gid::from_bits(load<std::uint64_t>(d, kOffContTarget));
  v.action_ = load<std::uint32_t>(d, kOffAction);
  v.cont_.action = load<std::uint32_t>(d, kOffContAction);
  v.source_ = load<std::uint32_t>(d, kOffSource);
  v.forwards_ = load<std::uint8_t>(d, kOffForwards);
  v.arguments_ = record.subspan(wire_header_bytes, arg_len);
  return v;
}

parcel_view parcel_view::of(const parcel& p) noexcept {
  parcel_view v;
  v.destination_ = p.destination;
  v.cont_ = p.cont;
  v.action_ = p.action;
  v.source_ = p.source;
  v.forwards_ = p.forwards;
  v.arguments_ = std::span<const std::byte>(p.arguments);
  return v;
}

parcel parcel_view::to_parcel() const {
  parcel p;
  p.destination = destination_;
  p.action = action_;
  p.cont = cont_;
  p.source = source_;
  p.forwards = forwards_;
  p.arguments.assign(arguments_.begin(), arguments_.end());
  return p;
}

void frame_begin(std::vector<std::byte>& buf) {
  buf.clear();
  buf.resize(frame_header_bytes);
  patch_u32(buf, 0, frame_magic);
  patch_u32(buf, 4, 0);
}

void frame_append(std::vector<std::byte>& buf, const parcel& p) {
  PX_DEBUG_ASSERT(buf.size() >= frame_header_bytes);
  const std::size_t len_off = buf.size();
  buf.resize(len_off + sizeof(std::uint32_t));
  const std::size_t start = buf.size();
  encode_into(buf, p);
  patch_u32(buf, len_off, static_cast<std::uint32_t>(buf.size() - start));
  patch_u32(buf, 4, frame_count(buf) + 1);
}

std::uint32_t frame_count(std::span<const std::byte> frame) noexcept {
  if (frame.size() < frame_header_bytes) return 0;
  return read_u32(frame, 4);
}

std::optional<frame_view> frame_view::parse(
    std::span<const std::byte> frame) noexcept {
  if (frame.size() < frame_header_bytes) return std::nullopt;
  if (read_u32(frame, 0) != frame_magic) return std::nullopt;
  const std::uint32_t count = read_u32(frame, 4);
  std::size_t offset = frame_header_bytes;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (frame.size() - offset < sizeof(std::uint32_t)) return std::nullopt;
    const std::uint32_t len = read_u32(frame, offset);
    offset += sizeof(std::uint32_t);
    if (frame.size() - offset < len) return std::nullopt;
    if (!parcel_view::parse(frame.subspan(offset, len))) return std::nullopt;
    offset += len;
  }
  if (offset != frame.size()) return std::nullopt;  // trailing garbage
  return frame_view(frame, count);
}

parcel_view frame_view::iterator::operator*() const noexcept {
  const std::uint32_t len = read_u32(frame_, offset_);
  auto v = parcel_view::parse(
      frame_.subspan(offset_ + sizeof(std::uint32_t), len));
  PX_DEBUG_ASSERT(v.has_value());  // frame_view::parse validated every record
  return *v;
}

frame_view::iterator& frame_view::iterator::operator++() noexcept {
  const std::uint32_t len = read_u32(frame_, offset_);
  offset_ += sizeof(std::uint32_t) + len;
  index_ += 1;
  return *this;
}

}  // namespace px::parcel
