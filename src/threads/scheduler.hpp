// Work-stealing M:N scheduler — one instance per ParalleX locality.
//
// Workers run ParalleX threads from a private Chase–Lev deque (LIFO for the
// owner, FIFO for thieves); external producers (parcel handlers on the
// network progress thread, LCO wakeups from other localities) push through a
// wait-free MPSC inject queue.  Idle workers spin-steal briefly, then sleep
// on a condition variable with a timeout backstop.
//
// This layer is the paper's "work queue model" by which message-driven
// computing "largely circumvents idle cycles due to blocking on remote
// access delays".
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "threads/stack.hpp"
#include "threads/thread.hpp"
#include "util/histogram.hpp"
#include "util/mpsc_queue.hpp"
#include "util/spinlock.hpp"

namespace px::threads {

namespace detail {
struct worker;  // defined in scheduler.cpp
}

struct scheduler_params {
  unsigned workers = 0;  // 0 => hardware_concurrency
  std::size_t stack_bytes = 64 * 1024;
  unsigned steal_rounds = 64;  // spin-steal attempts before sleeping
  std::uint64_t seed = 1;
};

struct scheduler_stats {
  std::uint64_t spawned = 0;
  std::uint64_t completed = 0;
  std::uint64_t steals = 0;
  std::uint64_t yields = 0;
  std::uint64_t suspends = 0;
  std::uint64_t sleeps = 0;  // times a worker gave up spinning
};

class scheduler {
 public:
  explicit scheduler(scheduler_params params = {});
  ~scheduler();

  scheduler(const scheduler&) = delete;
  scheduler& operator=(const scheduler&) = delete;

  void start();

  // Stops workers.  Callers needing a clean shutdown quiesce first (see
  // wait_quiescent); threads still live at stop() are abandoned (their
  // stacks are reclaimed by the pools, their closures leak deliberately —
  // emergency path only).
  void stop();

  // Runs once on each worker OS thread before it enters its loop; the
  // embedding layer uses this to establish per-worker context (e.g. the
  // owning ParalleX locality).  Must be set before start().
  void set_worker_init(std::function<void(unsigned)> fn);

  // Runs on a worker each time it exhausts local work, theft, and the
  // inject queue — just before it considers sleeping.  The runtime hangs
  // the parcel-port flush here, so coalesced parcels leave the moment a
  // locality has nothing better to do (the paper's "overlap communication
  // with computation" turned into: communicate when computation runs dry).
  // Must be set before start(); must not block.
  void set_idle_hook(std::function<void()> fn);

  // Creates a ParalleX thread.  Callable from worker threads, from other
  // schedulers' workers, and from plain OS threads (e.g. main, network
  // progress).
  void spawn(std::function<void()> fn);

  // Re-queues a suspended thread.  Safe from any OS thread; the descriptor
  // must have been published via a suspend hook on this scheduler.
  void resume(thread_descriptor* td);

  // --- Calls valid only on a ParalleX thread of this scheduler ---

  // Cooperatively reschedules the calling thread to the back of its queue.
  static void yield();

  // Parks the calling thread.  `hook(td, arg)` runs on the scheduler
  // context *after* the switch completes; it is the only safe place to
  // hand `td` to a wakeup source (this two-phase protocol is what makes a
  // concurrent wake race-free).  If the hook finds the wait already
  // satisfied it may call resume(td) directly.
  static void suspend(thread_descriptor::suspend_hook hook, void* arg);

  // Descriptor of the calling ParalleX thread, or nullptr on a plain OS
  // thread.  Deliberately not inlined so the compiler cannot cache the
  // thread-local lookup across a suspension point.
  static thread_descriptor* self() noexcept;

  // True when the caller runs on one of this scheduler's workers.
  bool on_worker() const noexcept;

  // Threads spawned but not yet terminated (ready + running + suspended).
  std::uint64_t live_threads() const noexcept {
    return live_.load(std::memory_order_acquire);
  }

  // Monotonic count of spawn() calls, incremented before the new thread
  // becomes runnable.  The runtime's quiescence protocol snapshots this to
  // detect activity that raced between its counter reads.
  std::uint64_t spawn_count() const noexcept {
    return spawned_.load(std::memory_order_acquire);
  }

  // Threads queued runnable but not currently executing (deques + inject).
  // Maintained with relaxed counters around enqueue/dequeue, so the value
  // is exact up to in-flight transitions — the introspection subsystem's
  // load signal and the rebalancer's imbalance input.
  std::uint64_t ready_estimate() const noexcept {
    return ready_.load(std::memory_order_relaxed);
  }

  // Blocks the calling OS thread until live_threads() drops to zero.
  // Must not be called from a ParalleX thread of this scheduler.
  void wait_quiescent() const;

  unsigned worker_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }
  scheduler_stats stats() const;
  const scheduler_params& params() const noexcept { return params_; }

  // Telemetry distributions (populated only while PX_STATS is armed;
  // introspect/stats.hpp): per-slice fiber run time and ready→start wait
  // time, both in ns.  Registered as the runtime/loc<i>/sched/hist_*
  // histogram counters.
  util::log_histogram run_hist_snapshot() const {
    return run_hist_.snapshot();
  }
  util::log_histogram wait_hist_snapshot() const {
    return wait_hist_.snapshot();
  }

 private:
  friend struct detail::worker;

  static void thread_trampoline(void* arg);
  void worker_main(detail::worker& w);
  void run_one(detail::worker& w, thread_descriptor* td);
  thread_descriptor* find_work(detail::worker& w);
  thread_descriptor* pop_inject();
  void idle_wait(detail::worker& w);
  thread_descriptor* acquire_descriptor(std::function<void()> fn);
  void recycle(thread_descriptor* td);
  void enqueue(thread_descriptor* td);
  void wake_for_new_work();
  void wake_sleepers(bool all);

  scheduler_params params_;
  std::function<void(unsigned)> worker_init_;
  std::function<void()> idle_hook_;
  std::vector<std::unique_ptr<detail::worker>> workers_;
  util::intrusive_mpsc_queue<thread_descriptor> inject_;
  util::spinlock inject_drain_lock_;  // MPSC pop is single-consumer
  stack_pool stacks_;

  util::spinlock free_lock_;
  std::vector<thread_descriptor*> free_descriptors_;

  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::atomic<unsigned> sleepers_{0};

  mutable std::mutex quiesce_mutex_;
  mutable std::condition_variable quiesce_cv_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> live_{0};
  std::atomic<std::uint64_t> ready_{0};
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> spawned_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> yields_{0};
  std::atomic<std::uint64_t> suspends_{0};

  util::log_histogram run_hist_;   // internally locked
  util::log_histogram wait_hist_;  // internally locked
};

}  // namespace px::threads
