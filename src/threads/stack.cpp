#include "threads/stack.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <mutex>

#include "util/assert.hpp"

namespace px::threads {

stack_pool::stack_pool(std::size_t usable_bytes, std::size_t max_pooled)
    : page_size_(static_cast<std::size_t>(::sysconf(_SC_PAGESIZE))),
      max_pooled_(max_pooled) {
  usable_bytes_ = ((usable_bytes + page_size_ - 1) / page_size_) * page_size_;
  PX_ASSERT(usable_bytes_ >= page_size_);
}

stack_pool::~stack_pool() {
  std::lock_guard lock(lock_);
  for (const auto& s : free_) destroy(s);
  free_.clear();
}

stack stack_pool::create() {
  const std::size_t total = usable_bytes_ + page_size_;
  void* base = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  PX_ASSERT_MSG(base != MAP_FAILED, "stack mmap failed");
  PX_ASSERT(::mprotect(base, page_size_, PROT_NONE) == 0);
  stack s;
  s.base = base;
  s.size = total;
  s.top = static_cast<char*>(base) + total;
  return s;
}

void stack_pool::destroy(const stack& s) { ::munmap(s.base, s.size); }

stack stack_pool::allocate() {
  {
    std::lock_guard lock(lock_);
    ++outstanding_;
    if (!free_.empty()) {
      stack s = free_.back();
      free_.pop_back();
      return s;
    }
  }
  return create();
}

void stack_pool::deallocate(stack s) {
  {
    std::lock_guard lock(lock_);
    PX_ASSERT(outstanding_ > 0);
    --outstanding_;
    if (free_.size() < max_pooled_) {
      free_.push_back(s);
      return;
    }
  }
  // Over the cap: unmap outside the lock (munmap is a syscall; keeping it
  // out of the critical section keeps allocate() latency flat).
  destroy(s);
}

std::size_t stack_pool::outstanding() const noexcept {
  std::lock_guard lock(lock_);
  return outstanding_;
}

std::size_t stack_pool::pooled() const noexcept {
  std::lock_guard lock(lock_);
  return free_.size();
}

}  // namespace px::threads
