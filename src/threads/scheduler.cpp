#include "threads/scheduler.hpp"

#include <chrono>
#include <exception>
#include <thread>

#include "introspect/stats.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"
#include "util/cache.hpp"
#include "util/clock.hpp"
#include "util/fence.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/ws_deque.hpp"

namespace px::threads {

namespace detail {

struct worker {
  scheduler* sched = nullptr;
  unsigned index = 0;
  util::ws_deque<thread_descriptor*> deque;
  context sched_ctx;  // parked scheduler loop while a thread runs
  thread_descriptor* current = nullptr;
  util::xoshiro256 rng;
  // Written by the owning worker, read by stats() from arbitrary threads.
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> sleeps{0};
  std::thread os_thread;
};

}  // namespace detail

namespace {

thread_local detail::worker* tl_worker = nullptr;

// Not inlined: a ParalleX thread may migrate between OS threads across a
// suspension point, so the thread-local lookup must be re-done at every
// call site rather than cached in a register by the optimizer.
__attribute__((noinline)) detail::worker* current_worker() noexcept {
  return tl_worker;
}

}  // namespace

scheduler::scheduler(scheduler_params params)
    : params_(params), stacks_(params.stack_bytes) {
  if (params_.workers == 0) {
    params_.workers = std::max(1u, std::thread::hardware_concurrency());
  }
  util::xoshiro256 seeder(params_.seed);
  for (unsigned i = 0; i < params_.workers; ++i) {
    auto w = std::make_unique<detail::worker>();
    w->sched = this;
    w->index = i;
    w->rng = seeder.split(i);
    workers_.push_back(std::move(w));
  }
}

scheduler::~scheduler() {
  if (running_.load(std::memory_order_acquire)) stop();
  std::lock_guard lock(free_lock_);
  for (auto* td : free_descriptors_) {
    if (td->stk.valid()) stacks_.deallocate(td->stk);
    delete td;
  }
}

void scheduler::start() {
  PX_ASSERT_MSG(!running_.exchange(true), "scheduler started twice");
  stop_.store(false, std::memory_order_release);
  for (auto& w : workers_) {
    w->os_thread = std::thread([this, wp = w.get()] { worker_main(*wp); });
  }
}

void scheduler::stop() {
  if (!running_.exchange(false)) return;
  stop_.store(true, std::memory_order_release);
  wake_sleepers(/*all=*/true);
  for (auto& w : workers_) {
    if (w->os_thread.joinable()) w->os_thread.join();
  }
  if (live_.load(std::memory_order_acquire) != 0) {
    PX_LOG_WARN("scheduler stopped with %llu live threads",
                static_cast<unsigned long long>(live_.load()));
  }
}

thread_descriptor* scheduler::acquire_descriptor(std::function<void()> fn) {
  thread_descriptor* td = nullptr;
  {
    std::lock_guard lock(free_lock_);
    if (!free_descriptors_.empty()) {
      td = free_descriptors_.back();
      free_descriptors_.pop_back();
    }
  }
  if (td == nullptr) {
    td = new thread_descriptor();
    td->owner = this;
    td->stk = stacks_.allocate();
  }
  td->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  td->state = thread_state::ready;
  td->ctx = context::make(td->stk.top, &thread_trampoline);
  td->entry = std::move(fn);
  td->on_suspend = nullptr;
  td->on_suspend_arg = nullptr;
  td->child_proc_bits = 0;
  td->child_edge = ~0ull;
  td->trace_bits = 0;
  td->trace_span = 0;
  td->ready_since_ns = 0;
  return td;
}

void scheduler::recycle(thread_descriptor* td) {
  td->entry = nullptr;  // release captured resources promptly
  std::lock_guard lock(free_lock_);
  free_descriptors_.push_back(td);
}

void scheduler::spawn(std::function<void()> fn) {
  thread_descriptor* td = acquire_descriptor(std::move(fn));
  if (trace::enabled()) {
    // The spawner's causal context rides into the child descriptor, so a
    // request's trace follows its whole fiber tree (the continuation-based
    // dispatch in core/action.hpp spawns through here too).
    const trace::context ctx = trace::current();
    td->trace_bits = ctx.trace_id;
    td->trace_span = ctx.span;
    trace::emit(trace::event_kind::fiber_spawn, ctx.trace_id, ctx.span, 0,
                td->id);
  }
  live_.fetch_add(1, std::memory_order_acq_rel);
  spawned_.fetch_add(1, std::memory_order_relaxed);
  enqueue(td);
}

void scheduler::resume(thread_descriptor* td) {
  PX_DEBUG_ASSERT(td->owner == this);
  if (trace::enabled()) {
    trace::emit(trace::event_kind::fiber_resume, td->trace_bits,
                td->trace_span, 0, td->id);
  }
  td->state = thread_state::ready;
  enqueue(td);
}

void scheduler::enqueue(thread_descriptor* td) {
  if (introspect::stats_armed()) td->ready_since_ns = util::now_ns();
  ready_.fetch_add(1, std::memory_order_relaxed);
  detail::worker* w = current_worker();
  if (w != nullptr && w->sched == this) {
    w->deque.push(td);
  } else {
    inject_.push(td);
  }
  wake_for_new_work();
}

// Producer half of the sleep/wake handshake.  The push above and the
// sleepers_ read below must not be reordered against the consumer's
// "increment sleepers_, then re-check the queues" sequence in idle_wait();
// the seq_cst fences on both sides make this a sound Dekker-style
// handshake: either we observe the sleeper (and notify), or the sleeper's
// re-check observes our push — a wakeup can never fall between the cracks.
// (Without the fence the relaxed sleepers_ load may be satisfied before the
// push is visible, which is the lost wakeup that wedged NestedSpawnFanOut.)
void scheduler::wake_for_new_work() {
  util::thread_fence(std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_relaxed) > 0) {
    wake_sleepers(/*all=*/false);
  }
}

void scheduler::wake_sleepers(bool all) {
  // The lock pairs with idle_wait's re-check so a wake between "found no
  // work" and "went to sleep" is never lost.
  std::lock_guard lock(idle_mutex_);
  if (all) {
    idle_cv_.notify_all();
  } else {
    idle_cv_.notify_one();
  }
}

thread_descriptor* scheduler::pop_inject() {
  if (!inject_drain_lock_.try_lock()) return nullptr;
  thread_descriptor* td = inject_.pop();
  inject_drain_lock_.unlock();
  return td;
}

thread_descriptor* scheduler::find_work(detail::worker& w) {
  if (auto local = w.deque.pop()) return *local;
  if (auto* injected = pop_inject()) return injected;
  const std::size_t n = workers_.size();
  for (unsigned round = 0; round < params_.steal_rounds; ++round) {
    if (n > 1) {
      auto& victim = *workers_[w.rng.below(n)];
      if (&victim != &w) {
        if (auto stolen = victim.deque.steal()) {
          w.steals.fetch_add(1, std::memory_order_relaxed);
          return *stolen;
        }
      }
    }
    if (auto* injected = pop_inject()) return injected;
    if (stop_.load(std::memory_order_relaxed)) return nullptr;
    util::cpu_relax();
  }
  return nullptr;
}

void scheduler::idle_wait(detail::worker& w) {
  // Flush-on-idle: give the embedding layer one shot at deferred work
  // (outbound parcel coalescing buffers) before this worker parks.  Runs
  // on every idle pass, so even a fully-asleep locality re-drives it each
  // timeout tick.
  if (idle_hook_) idle_hook_();
  w.sleeps.fetch_add(1, std::memory_order_relaxed);
  sleepers_.fetch_add(1, std::memory_order_seq_cst);
  // Consumer half of the handshake with wake_for_new_work(): the fence
  // orders "announce sleeper" before "re-check queues", pairing with the
  // producer's "push, fence, read sleepers_" so one side always sees the
  // other.
  util::thread_fence(std::memory_order_seq_cst);
  {
    std::unique_lock lock(idle_mutex_);
    // Re-check under the lock: a producer that saw sleepers_ > 0 will
    // notify while holding idle_mutex_, so this cannot miss new work.
    // Two details make the re-check sufficient:
    //  - Gate on empty_estimate(), never on a pop() having returned
    //    nullptr: the MPSC pop is tri-state (empty OR producer mid-push)
    //    while empty_estimate() stays conservatively non-empty through
    //    the whole push window — sleeping on a nullptr pop alone would
    //    re-open the lost-wakeup hole.
    //  - Scan *every* worker's deque, not just our own: a worker spawning
    //    into its own deque also notifies, and if that notify fired
    //    before we started waiting, the pushed work is visible here (the
    //    producer's push precedes its fenced sleepers_ read, which saw
    //    us).  Checking only our own deque would stall stealable work for
    //    a full timeout period.
    // The timeout is defence in depth, not the correctness mechanism.
    bool any_work = !inject_.empty_estimate();
    for (const auto& other : workers_) {
      any_work = any_work || !other->deque.empty_estimate();
    }
    if (!stop_.load(std::memory_order_acquire) && !any_work) {
      idle_cv_.wait_for(lock, std::chrono::microseconds(500));
    }
  }
  sleepers_.fetch_sub(1, std::memory_order_seq_cst);
}

void scheduler::set_worker_init(std::function<void(unsigned)> fn) {
  PX_ASSERT_MSG(!running_.load(std::memory_order_acquire),
                "set_worker_init after start");
  worker_init_ = std::move(fn);
}

void scheduler::set_idle_hook(std::function<void()> fn) {
  PX_ASSERT_MSG(!running_.load(std::memory_order_acquire),
                "set_idle_hook after start");
  idle_hook_ = std::move(fn);
}

void scheduler::worker_main(detail::worker& w) {
  tl_worker = &w;
  if (worker_init_) worker_init_(w.index);
  while (!stop_.load(std::memory_order_acquire)) {
    thread_descriptor* td = find_work(w);
    if (td != nullptr) {
      ready_.fetch_sub(1, std::memory_order_relaxed);
      run_one(w, td);
    } else {
      idle_wait(w);
    }
  }
  tl_worker = nullptr;
}

void scheduler::run_one(detail::worker& w, thread_descriptor* td) {
  const bool tracing = trace::enabled();
  if (tracing) {
    trace::emit(trace::event_kind::fiber_start, td->trace_bits,
                td->trace_span, 0, td->id);
  }
  // Telemetry (latched here, not re-read after the swap: arming mid-slice
  // must not record a run time with no matching start stamp).
  const bool sampling = introspect::stats_armed();
  std::int64_t slice_start_ns = 0;
  if (sampling) {
    slice_start_ns = util::now_ns();
    if (td->ready_since_ns != 0) {
      const std::int64_t wait = slice_start_ns - td->ready_since_ns;
      wait_hist_.add(wait > 0 ? static_cast<double>(wait) : 0.0);
      td->ready_since_ns = 0;
    }
  }
  w.current = td;
  td->state = thread_state::running;
  context::swap(w.sched_ctx, td->ctx, td);
  // Back on the scheduler context; the thread either terminated, yielded,
  // or suspended.  After the handoff below `td` must not be touched: a
  // concurrent wake may already be running it elsewhere — so the trace
  // records in each arm are emitted before the descriptor is published
  // (recycled, hooked, or re-injected).
  w.current = nullptr;
  if (sampling) {
    run_hist_.add(static_cast<double>(util::now_ns() - slice_start_ns));
  }
  switch (td->state) {
    case thread_state::terminated: {
      if (tracing) {
        trace::emit(trace::event_kind::fiber_end, td->trace_bits,
                    td->trace_span, 0, td->id);
      }
      td->ctx.retire();  // context::make rebuilds it on descriptor reuse
      recycle(td);
      completed_.fetch_add(1, std::memory_order_relaxed);
      if (live_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lock(quiesce_mutex_);
        quiesce_cv_.notify_all();
      }
      break;
    }
    case thread_state::suspended: {
      if (tracing) {
        trace::emit(trace::event_kind::fiber_suspend, td->trace_bits,
                    td->trace_span, 0, td->id);
      }
      suspends_.fetch_add(1, std::memory_order_relaxed);
      auto hook = td->on_suspend;
      void* arg = td->on_suspend_arg;
      td->on_suspend = nullptr;
      td->on_suspend_arg = nullptr;
      PX_ASSERT_MSG(hook != nullptr, "suspended without a hook");
      hook(td, arg);
      break;
    }
    case thread_state::ready: {  // yield
      if (tracing) {
        trace::emit(trace::event_kind::fiber_yield, td->trace_bits,
                    td->trace_span, 0, td->id);
      }
      yields_.fetch_add(1, std::memory_order_relaxed);
      ready_.fetch_add(1, std::memory_order_relaxed);
      if (sampling) td->ready_since_ns = util::now_ns();
      // FIFO inject queue, not the owner's LIFO deque: a yielded thread
      // re-pushed locally would be popped right back, starving peers.
      // Same wake handshake as enqueue(): a sibling worker drifting off to
      // sleep must either be notified or observe this push in its re-check.
      inject_.push(td);
      wake_for_new_work();
      break;
    }
    case thread_state::running:
      PX_UNREACHABLE();
  }
}

void scheduler::thread_trampoline(void* arg) {
  auto* td = static_cast<thread_descriptor*>(arg);
  try {
    td->entry();
  } catch (const std::exception& e) {
    PX_LOG_ERROR("uncaught exception in ParalleX thread %llu: %s",
                 static_cast<unsigned long long>(td->id), e.what());
    std::terminate();
  } catch (...) {
    PX_LOG_ERROR("uncaught exception in ParalleX thread %llu",
                 static_cast<unsigned long long>(td->id));
    std::terminate();
  }
  td->state = thread_state::terminated;
  detail::worker* w = current_worker();
  context::swap(td->ctx, w->sched_ctx, nullptr);
  PX_UNREACHABLE();
}

void scheduler::yield() {
  detail::worker* w = current_worker();
  PX_ASSERT_MSG(w != nullptr, "yield outside a ParalleX thread");
  thread_descriptor* td = w->current;
  td->state = thread_state::ready;
  context::swap(td->ctx, w->sched_ctx, nullptr);
}

void scheduler::suspend(thread_descriptor::suspend_hook hook, void* arg) {
  detail::worker* w = current_worker();
  PX_ASSERT_MSG(w != nullptr, "suspend outside a ParalleX thread");
  thread_descriptor* td = w->current;
  td->on_suspend = hook;
  td->on_suspend_arg = arg;
  td->state = thread_state::suspended;
  context::swap(td->ctx, w->sched_ctx, nullptr);
  // Resumed: control returns here on whichever worker woke us.
}

thread_descriptor* scheduler::self() noexcept {
  detail::worker* w = current_worker();
  return w != nullptr ? w->current : nullptr;
}

bool scheduler::on_worker() const noexcept {
  detail::worker* w = current_worker();
  return w != nullptr && w->sched == this;
}

void scheduler::wait_quiescent() const {
  PX_ASSERT_MSG(!on_worker(),
                "wait_quiescent would deadlock on a worker thread");
  std::unique_lock lock(quiesce_mutex_);
  quiesce_cv_.wait(lock, [&] {
    return live_.load(std::memory_order_acquire) == 0;
  });
}

scheduler_stats scheduler::stats() const {
  scheduler_stats s;
  s.spawned = spawned_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.yields = yields_.load(std::memory_order_relaxed);
  s.suspends = suspends_.load(std::memory_order_relaxed);
  for (const auto& w : workers_) {
    s.steals += w->steals.load(std::memory_order_relaxed);
    s.sleeps += w->sleeps.load(std::memory_order_relaxed);
  }
  return s;
}

}  // namespace px::threads
