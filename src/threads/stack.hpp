// Fiber stack allocation with guard pages and pooling.
//
// ParalleX threads are ephemeral: workloads spawn millions of short threads,
// so stacks must be recycled, not re-mmapped.  Each stack carries a
// PROT_NONE guard page at its low end so overflow faults immediately instead
// of corrupting a neighbouring fiber.
#pragma once

#include <cstddef>
#include <vector>

#include "util/spinlock.hpp"

namespace px::threads {

struct stack {
  void* base = nullptr;    // mmap base (guard page)
  std::size_t size = 0;    // total mapping including guard
  void* top = nullptr;     // high end; context::make builds downward from here

  bool valid() const noexcept { return base != nullptr; }
};

class stack_pool {
 public:
  // usable_bytes is rounded up to whole pages; the guard page is extra.
  // At most max_pooled retired stacks are cached for reuse; beyond that,
  // deallocate() unmaps immediately so a burst of a million short threads
  // does not pin a million stacks of address space forever.
  explicit stack_pool(std::size_t usable_bytes = 64 * 1024,
                      std::size_t max_pooled = 128);
  ~stack_pool();

  stack_pool(const stack_pool&) = delete;
  stack_pool& operator=(const stack_pool&) = delete;

  stack allocate();
  void deallocate(stack s);

  std::size_t usable_bytes() const noexcept { return usable_bytes_; }
  std::size_t max_pooled() const noexcept { return max_pooled_; }
  std::size_t outstanding() const noexcept;
  std::size_t pooled() const noexcept;

 private:
  stack create();
  static void destroy(const stack& s);

  std::size_t usable_bytes_;
  std::size_t page_size_;
  std::size_t max_pooled_;

  mutable util::spinlock lock_;
  std::vector<stack> free_;
  std::size_t outstanding_ = 0;
};

}  // namespace px::threads
