// Execution context: a parked continuation identified by its stack pointer.
//
// On x86-64 this wraps the hand-written px_ctx_swap (see context_x86_64.S);
// other architectures need an equivalent assembly backend (see context.cpp
// porting note).
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/fence.hpp"  // PX_TSAN_ACTIVE detection

namespace px::threads {

using context_entry = void (*)(void*);

#if defined(__x86_64__)
#define PX_HAVE_FCONTEXT 1
#else
// Porting: implement px_ctx_swap/px_ctx_trampoline in a context_<arch>.S
// (save callee-saved GPRs + FP control state, exchange stack pointers,
// match the frame layout in context::make), add it to CMakeLists.txt, and
// extend this detection.  See the note in context.cpp for why a ucontext
// fallback is deliberately not offered.
#error "parallex: no fiber context backend for this architecture (x86-64 only)"
#endif

// ThreadSanitizer cannot follow a raw stack switch; annotate switches with
// its fiber API so happens-before flows through px_ctx_swap and reports
// carry fiber-correct stacks.  Detection lives in util/fence.hpp so the
// fence substitution and the fiber annotations can never disagree about
// whether TSan is active.
#if defined(PX_TSAN_ACTIVE)
#define PX_TSAN_FIBERS 1
#endif

class context {
 public:
  context() = default;

  // Builds a fresh continuation on [stack_top - ..., stack_top) that will
  // invoke entry(payload) when first swapped to.  stack_top must be the
  // high end of a writable region with at least 4 KiB available.
  static context make(void* stack_top, context_entry entry);

  // Parks the caller into `from` and resumes `to`; `payload` is delivered
  // to the resumed side (return value here, or entry argument for a fresh
  // context).  `from` and `to` may live on different OS threads over time,
  // but a given context is resumed by exactly one thread at a time.
  static void* swap(context& from, context& to, void* payload);

  // Releases sanitizer bookkeeping for a context that will never run again
  // (thread terminated).  No-op without TSan; must not be called on the
  // currently executing context.
  void retire() noexcept;

  bool valid() const noexcept { return sp_ != nullptr; }

 private:
  void* sp_ = nullptr;
#if defined(PX_TSAN_FIBERS)
  void* tsan_fiber_ = nullptr;
#endif
};

}  // namespace px::threads
