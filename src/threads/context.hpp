// Execution context: a parked continuation identified by its stack pointer.
//
// On x86-64 this wraps the hand-written px_ctx_swap (see context_x86_64.S);
// other architectures need an equivalent assembly backend (see context.cpp
// porting note).
#pragma once

#include <cstddef>
#include <cstdint>

namespace px::threads {

using context_entry = void (*)(void*);

#if defined(__x86_64__)
#define PX_HAVE_FCONTEXT 1
#endif

class context {
 public:
  context() = default;

  // Builds a fresh continuation on [stack_top - ..., stack_top) that will
  // invoke entry(payload) when first swapped to.  stack_top must be the
  // high end of a writable region with at least 4 KiB available.
  static context make(void* stack_top, context_entry entry);

  // Parks the caller into `from` and resumes `to`; `payload` is delivered
  // to the resumed side (return value here, or entry argument for a fresh
  // context).  `from` and `to` may live on different OS threads over time,
  // but a given context is resumed by exactly one thread at a time.
  static void* swap(context& from, context& to, void* payload);

  bool valid() const noexcept { return sp_ != nullptr; }

 private:
  void* sp_ = nullptr;
};

}  // namespace px::threads
