// ParalleX thread descriptor.
//
// Paper §2.2 "Multithreaded": a thread is an ephemeral, locality-bound unit
// of partially ordered operations.  It never migrates between localities; to
// act remotely it suspends into a depleted-thread record (LCO waiter) or
// terminates into a parcel.  Within its locality a suspended thread may be
// resumed by any worker.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "threads/context.hpp"
#include "threads/stack.hpp"

namespace px::threads {

class scheduler;

enum class thread_state : std::uint8_t {
  ready,       // in a run queue
  running,     // executing on a worker
  suspended,   // parked in an LCO waiter record ("depleted thread")
  terminated,  // finished; descriptor pending recycle
};

struct thread_descriptor {
  // Intrusive link for the scheduler's MPSC inject queue.
  std::atomic<thread_descriptor*> next{nullptr};

  std::uint64_t id = 0;
  scheduler* owner = nullptr;
  thread_state state = thread_state::ready;
  context ctx;
  stack stk;
  std::function<void()> entry;

  // Two-phase suspension: the suspending thread registers hook+arg, swaps
  // out, and the *scheduler* invokes the hook after the switch completes.
  // The hook is therefore the only place it is safe to publish this
  // descriptor to a wakeup source (fixes the wake-before-parked race).
  using suspend_hook = void (*)(thread_descriptor*, void*);
  suspend_hook on_suspend = nullptr;
  void* on_suspend_arg = nullptr;

  // Fiber-local slot for the process layer: which tracked child (process
  // bits + credit-ledger edge, core/process_site.hpp) this thread runs
  // under.  Lives on the descriptor — not in a thread_local — because a
  // suspended thread may resume on a different worker.
  std::uint64_t child_proc_bits = 0;
  std::uint64_t child_edge = ~0ull;

  // Fiber-local slot for the flight recorder (trace/trace.hpp): the causal
  // trace id + current span this thread runs under.  Descriptor storage
  // for the same reason as child_proc_bits — a context must travel with
  // the fiber across suspension and work-stealing, not stay behind on the
  // worker that happened to start it.
  std::uint64_t trace_bits = 0;
  std::uint64_t trace_span = 0;

  // Telemetry (introspect/stats.hpp): when this descriptor was last made
  // runnable, stamped by the enqueuer while PX_STATS is armed so the
  // dequeuing worker can histogram the ready→start wait.  The queue
  // handoff orders the write before the read; 0 = unstamped.
  std::int64_t ready_since_ns = 0;
};

}  // namespace px::threads
