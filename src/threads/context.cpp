#include "threads/context.hpp"

#include "util/assert.hpp"

#if defined(PX_HAVE_FCONTEXT)

extern "C" {
void* px_ctx_swap(void** save_sp, void* target_sp, void* payload);
void px_ctx_trampoline();
}

#if defined(PX_TSAN_FIBERS)
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif

namespace px::threads {

context context::make(void* stack_top, context_entry entry) {
  auto top = reinterpret_cast<std::uintptr_t>(stack_top) &
             ~static_cast<std::uintptr_t>(15);
  auto* slot = reinterpret_cast<std::uint64_t*>(top);
  slot[-1] = 0;  // fake return address: entry must never return
  slot[-2] = reinterpret_cast<std::uint64_t>(&px_ctx_trampoline);
  slot[-3] = 0;  // rbp
  slot[-4] = reinterpret_cast<std::uint64_t>(entry);  // rbx
  slot[-5] = 0;  // r12
  slot[-6] = 0;  // r13
  slot[-7] = 0;  // r14
  slot[-8] = 0;  // r15
  auto* fp = reinterpret_cast<std::uint32_t*>(top - 72);
  fp[0] = 0x1f80;  // mxcsr: default, all exceptions masked
  fp[1] = 0x037f;  // x87 control word: default
  context ctx;
  ctx.sp_ = reinterpret_cast<void*>(top - 72);
#if defined(PX_TSAN_FIBERS)
  ctx.tsan_fiber_ = __tsan_create_fiber(0);
#endif
  return ctx;
}

void* context::swap(context& from, context& to, void* payload) {
  PX_DEBUG_ASSERT(to.valid());
  void* target = to.sp_;
  to.sp_ = nullptr;  // consumed; will be republished when `to` parks again
#if defined(PX_TSAN_FIBERS)
  // Record where the caller parks and tell TSan about the switch (flag 0:
  // establish synchronization), immediately before the real swap per the
  // fiber API contract.
  from.tsan_fiber_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(to.tsan_fiber_, 0);
#endif
  return px_ctx_swap(&from.sp_, target, payload);
}

void context::retire() noexcept {
#if defined(PX_TSAN_FIBERS)
  if (tsan_fiber_ != nullptr) {
    __tsan_destroy_fiber(tsan_fiber_);
    tsan_fiber_ = nullptr;
  }
#endif
  sp_ = nullptr;
}

}  // namespace px::threads

#else

// Porting note: add a context_<arch>.S implementing px_ctx_swap (save
// callee-saved registers + FP control state, exchange stack pointers) and a
// trampoline, then extend the PX_HAVE_FCONTEXT detection in context.hpp.
// A ucontext-based fallback is deliberately not provided: swapcontext's
// per-switch sigprocmask system calls violate the lightweight-thread cost
// model this runtime exists to demonstrate.
#error "parallex: no context-switch backend for this architecture (x86-64 only)"

#endif
