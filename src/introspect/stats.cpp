#include "introspect/stats.hpp"

#include <chrono>
#include <cstdio>

#include "util/clock.hpp"
#include "util/log.hpp"

namespace px::introspect {

namespace detail {
std::atomic<bool> g_stats_enabled{false};
}  // namespace detail

stats_collector::stats_collector(registry& reg, stats_params params)
    : reg_(reg), params_(std::move(params)) {
  if (params_.interval_us == 0) params_.interval_us = 10'000;
  if (params_.ring_points < 2) params_.ring_points = 2;
  if (params_.dir.empty()) params_.dir = ".";
}

stats_collector::~stats_collector() { disarm(); }

void stats_collector::arm() {
  if (!params_.enabled || running_) return;
  detail::g_stats_enabled.store(true, std::memory_order_relaxed);
  tick_now();  // t=0 point for every series, so short runs still get a rate
  stop_ = false;
  running_ = true;
  sampler_ = std::thread([this] { sampler_main(); });
}

void stats_collector::disarm() {
  if (running_) {
    {
      std::lock_guard lock(wake_mu_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    sampler_.join();
    running_ = false;
    tick_now();  // closing point: the window always ends at disarm time
  }
  if (params_.enabled) {
    detail::g_stats_enabled.store(false, std::memory_order_relaxed);
  }
}

void stats_collector::sampler_main() {
  const auto period = std::chrono::microseconds(params_.interval_us);
  std::unique_lock lock(wake_mu_);
  while (!wake_cv_.wait_for(lock, period, [this] { return stop_; })) {
    lock.unlock();
    tick_now();
    lock.lock();
  }
}

void stats_collector::append(const std::string& path, std::int64_t ts,
                             std::uint64_t value) {
  series& s = series_[path];
  if (s.pts.empty()) s.pts.resize(params_.ring_points);
  if (s.count == s.pts.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);  // oldest overwritten
  } else {
    ++s.count;
  }
  s.pts[s.head] = series_point{ts, value};
  s.head = (s.head + 1) % s.pts.size();
}

void stats_collector::tick_now() {
  // Sample outside the series lock: registry callbacks take their own
  // (registry spinlock, per-histogram locks) and queries must never wait
  // on a sampler mid-walk.
  const auto scalars = reg_.snapshot_all();
  const auto hists = reg_.snapshot_hists();
  const std::int64_t ts = util::now_ns();

  std::lock_guard lock(mu_);
  for (const auto& c : scalars) append(c.path, ts, c.value);
  for (const auto& h : hists) {
    for (const auto& [suffix, q] : k_hist_quantiles) {
      append(h.path + "/" + suffix, ts,
             static_cast<std::uint64_t>(h.hist.quantile(q)));
    }
  }
  ticks_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<series_point> stats_collector::window(
    std::string_view path) const {
  std::vector<series_point> out;
  std::lock_guard lock(mu_);
  const auto it = series_.find(std::string(path));
  if (it == series_.end()) return out;
  const series& s = it->second;
  out.reserve(s.count);
  const std::size_t start = (s.head + s.pts.size() - s.count) % s.pts.size();
  for (std::size_t i = 0; i < s.count; ++i) {
    out.push_back(s.pts[(start + i) % s.pts.size()]);
  }
  return out;
}

std::optional<series_point> stats_collector::latest(
    std::string_view path) const {
  std::lock_guard lock(mu_);
  const auto it = series_.find(std::string(path));
  if (it == series_.end() || it->second.count == 0) return std::nullopt;
  const series& s = it->second;
  return s.pts[(s.head + s.pts.size() - 1) % s.pts.size()];
}

std::optional<double> stats_collector::rate_per_sec(
    std::string_view path) const {
  const auto pts = window(path);
  if (pts.size() < 2) return std::nullopt;
  const auto& a = pts.front();
  const auto& b = pts.back();
  if (b.ts_ns <= a.ts_ns) return std::nullopt;
  const double dv = static_cast<double>(b.value) - static_cast<double>(a.value);
  return dv * 1e9 / static_cast<double>(b.ts_ns - a.ts_ns);
}

std::string stats_collector::serialize_jsonl() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "{\"kind\":\"header\",\"version\":1,\"rank\":%u,"
                "\"clock_offset_ns\":%lld,\"interval_us\":%llu,"
                "\"ticks\":%llu,\"dropped_points\":%llu}\n",
                params_.rank, static_cast<long long>(clock_offset_ns_),
                static_cast<unsigned long long>(params_.interval_us),
                static_cast<unsigned long long>(ticks()),
                static_cast<unsigned long long>(dropped_points()));
  out += buf;

  std::lock_guard lock(mu_);
  for (const auto& [path, s] : series_) {
    // Counter paths are name_service-validated segments ([a-z0-9_./]), so
    // no JSON string escaping is ever needed here.
    out += "{\"kind\":\"series\",\"path\":\"";
    out += path;
    out += "\",\"points\":[";
    const std::size_t start = (s.head + s.pts.size() - s.count) % s.pts.size();
    for (std::size_t i = 0; i < s.count; ++i) {
      const series_point& p = s.pts[(start + i) % s.pts.size()];
      std::snprintf(buf, sizeof buf, "%s[%lld,%llu]", i == 0 ? "" : ",",
                    static_cast<long long>(p.ts_ns),
                    static_cast<unsigned long long>(p.value));
      out += buf;
    }
    out += "]}\n";
  }
  return out;
}

bool stats_collector::dump() const {
  const std::string path =
      params_.dir + "/px_stats." + std::to_string(params_.rank) + ".jsonl";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    PX_LOG_WARN("stats: cannot write shard %s", path.c_str());
    return false;
  }
  const std::string body = serialize_jsonl();
  const bool wrote = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  const bool ok = std::fclose(f) == 0 && wrote;
  if (ok) {
    PX_LOG_INFO("stats: wrote shard %s (%llu ticks)", path.c_str(),
                static_cast<unsigned long long>(ticks()));
  }
  return ok;
}

}  // namespace px::introspect
