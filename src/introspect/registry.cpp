#include "introspect/registry.hpp"

#include <algorithm>
#include <map>
#include <mutex>

#include "util/assert.hpp"

namespace px::introspect {

registry::registry(gas::agas& agas, gas::name_service& names)
    : agas_(agas), names_(names) {}

gas::gid registry::register_entry(gas::locality_id home, std::string path,
                                  sample_fn fn, hist_fn hfn) {
  PX_ASSERT_MSG(gas::name_service::valid_path(path),
                "introspect: malformed counter path");
  const gas::gid id = agas_.allocate(gas::gid_kind::hardware, home);
  agas_.bind(id, home);
  const bool named = names_.register_name(path, id);
  PX_ASSERT_MSG(named, "introspect: counter path already registered");
  std::lock_guard lock(lock_);
  counters_.emplace(id, entry{std::move(path), std::move(fn), std::move(hfn)});
  return id;
}

gas::gid registry::add(gas::locality_id home, std::string path,
                       sample_fn fn) {
  // Only the remote path (register_entry via add_remote) may omit the
  // sampler; a null fn here is a caller bug that would otherwise surface
  // as a counter that silently never reads.
  PX_ASSERT(fn != nullptr);
  return register_entry(home, std::move(path), std::move(fn));
}

gas::gid registry::add_raw(gas::locality_id home, std::string path,
                           const std::atomic<std::uint64_t>& raw) {
  return add(home, std::move(path),
             [&raw] { return raw.load(std::memory_order_relaxed); });
}

gas::gid registry::add_remote(gas::locality_id home, std::string path) {
  return register_entry(home, std::move(path), nullptr);
}

gas::gid registry::add_hist(gas::locality_id home, std::string path,
                            hist_fn fn) {
  PX_ASSERT(fn != nullptr);
  return register_entry(home, std::move(path), nullptr, std::move(fn));
}

std::optional<std::uint64_t> registry::read(gas::gid id) const {
  // The sample runs under the lock: entries are never removed, but the
  // callbacks are cheap by contract, so holding the spinlock across the
  // call is simpler than a copy of the std::function per read.
  std::lock_guard lock(lock_);
  const auto it = counters_.find(id);
  if (it == counters_.end()) return std::nullopt;
  if (it->second.hist != nullptr) return it->second.hist().count();
  if (it->second.sample == nullptr) return std::nullopt;  // remote counter
  return it->second.sample();
}

std::optional<std::uint64_t> registry::read(std::string_view path) const {
  const auto id = find(path);
  if (!id.has_value()) return std::nullopt;
  return read(*id);
}

std::optional<util::log_histogram> registry::read_hist(gas::gid id) const {
  std::lock_guard lock(lock_);
  const auto it = counters_.find(id);
  if (it == counters_.end() || it->second.hist == nullptr) return std::nullopt;
  return it->second.hist();
}

std::optional<util::log_histogram> registry::read_hist(
    std::string_view path) const {
  const auto id = find(path);
  if (!id.has_value()) return std::nullopt;
  return read_hist(*id);
}

std::optional<std::uint64_t> registry::read_quantile(gas::gid id,
                                                     double q) const {
  const auto h = read_hist(id);
  if (!h.has_value()) return std::nullopt;
  return static_cast<std::uint64_t>(h->quantile(q));
}

std::optional<std::uint64_t> registry::read_quantile(std::string_view path,
                                                     double q) const {
  const auto id = find(path);
  if (!id.has_value()) return std::nullopt;
  return read_quantile(*id, q);
}

std::optional<gas::gid> registry::find(std::string_view path) const {
  const auto id = names_.lookup(path);
  if (!id.has_value()) return std::nullopt;
  std::lock_guard lock(lock_);
  if (counters_.find(*id) == counters_.end()) return std::nullopt;
  return id;
}

std::vector<counter_info> registry::list(std::string_view prefix) const {
  std::vector<counter_info> out;
  auto named = names_.list(prefix);
  std::lock_guard lock(lock_);
  for (auto& [path, id] : named) {
    if (counters_.find(id) == counters_.end()) continue;
    out.push_back(counter_info{std::move(path), id});
  }
  return out;
}

std::size_t registry::size() const {
  std::lock_guard lock(lock_);
  return counters_.size();
}

std::vector<counter_sample> registry::snapshot_all() const {
  std::vector<counter_sample> out;
  {
    std::lock_guard lock(lock_);
    out.reserve(counters_.size());
    for (const auto& [id, e] : counters_) {
      if (e.hist != nullptr) {
        // Histogram counters read as their population so rate queries and
        // delta trailers see them as ordinary monotonic scalars.
        out.push_back(counter_sample{e.path, e.hist().count()});
        continue;
      }
      if (e.sample == nullptr) continue;  // remote: sampled on its home rank
      out.push_back(counter_sample{e.path, e.sample()});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const counter_sample& a, const counter_sample& b) {
              return a.path < b.path;
            });
  return out;
}

std::vector<hist_sample> registry::snapshot_hists() const {
  std::vector<hist_sample> out;
  {
    std::lock_guard lock(lock_);
    for (const auto& [id, e] : counters_) {
      if (e.hist == nullptr) continue;  // scalar or remote
      out.push_back(hist_sample{e.path, e.hist()});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const hist_sample& a, const hist_sample& b) {
              return a.path < b.path;
            });
  return out;
}

std::vector<std::pair<std::string, std::int64_t>> registry::delta(
    const std::vector<counter_sample>& before,
    const std::vector<counter_sample>& after) {
  std::map<std::string, std::int64_t> acc;
  for (const auto& s : before) {
    acc[s.path] -= static_cast<std::int64_t>(s.value);
  }
  for (const auto& s : after) {
    acc[s.path] += static_cast<std::int64_t>(s.value);
  }
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(acc.size());
  for (auto& [path, d] : acc) out.emplace_back(path, d);
  return out;
}

std::uint64_t registry::schema_digest() const {
  // Sum of per-entry FNV-1a hashes: commutative, so the unordered map's
  // iteration order (which differs across processes) cannot matter.
  std::lock_guard lock(lock_);
  std::uint64_t digest = 0;
  for (const auto& [id, e] : counters_) {
    std::uint64_t h = 14695981039346656037ull;
    for (const char c : e.path) {
      h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    }
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((id.bits() >> (8 * i)) & 0xff)) * 1099511628211ull;
    }
    digest += h;
  }
  return digest;
}

}  // namespace px::introspect
