#include "introspect/registry.hpp"

#include <mutex>

#include "util/assert.hpp"

namespace px::introspect {

registry::registry(gas::agas& agas, gas::name_service& names)
    : agas_(agas), names_(names) {}

gas::gid registry::add(gas::locality_id home, std::string path,
                       sample_fn fn) {
  PX_ASSERT_MSG(gas::name_service::valid_path(path),
                "introspect: malformed counter path");
  PX_ASSERT(fn != nullptr);
  const gas::gid id = agas_.allocate(gas::gid_kind::hardware, home);
  agas_.bind(id, home);
  const bool named = names_.register_name(path, id);
  PX_ASSERT_MSG(named, "introspect: counter path already registered");
  std::lock_guard lock(lock_);
  counters_.emplace(id, entry{std::move(path), std::move(fn)});
  return id;
}

gas::gid registry::add_raw(gas::locality_id home, std::string path,
                           const std::atomic<std::uint64_t>& raw) {
  return add(home, std::move(path),
             [&raw] { return raw.load(std::memory_order_relaxed); });
}

std::optional<std::uint64_t> registry::read(gas::gid id) const {
  // The sample runs under the lock: entries are never removed, but the
  // callbacks are cheap by contract, so holding the spinlock across the
  // call is simpler than a copy of the std::function per read.
  std::lock_guard lock(lock_);
  const auto it = counters_.find(id);
  if (it == counters_.end()) return std::nullopt;
  return it->second.sample();
}

std::optional<std::uint64_t> registry::read(std::string_view path) const {
  const auto id = find(path);
  if (!id.has_value()) return std::nullopt;
  return read(*id);
}

std::optional<gas::gid> registry::find(std::string_view path) const {
  const auto id = names_.lookup(path);
  if (!id.has_value()) return std::nullopt;
  std::lock_guard lock(lock_);
  if (counters_.find(*id) == counters_.end()) return std::nullopt;
  return id;
}

std::vector<counter_info> registry::list(std::string_view prefix) const {
  std::vector<counter_info> out;
  auto named = names_.list(prefix);
  std::lock_guard lock(lock_);
  for (auto& [path, id] : named) {
    if (counters_.find(id) == counters_.end()) continue;
    out.push_back(counter_info{std::move(path), id});
  }
  return out;
}

std::size_t registry::size() const {
  std::lock_guard lock(lock_);
  return counters_.size();
}

}  // namespace px::introspect
