// Introspection counter registry: the runtime observing itself.
//
// Paper §2.1 frames ParalleX as "dynamic adaptive resource management"
// against the SLOW factors; nothing adapts without observation, so every
// interesting runtime quantity — scheduler ready depth, steal counts,
// parcel-port queue depths, fabric rates, AGAS hit/miss ratios, LCO event
// counts — registers here as a *first-class counter*.  A counter is a
// gid-addressable object (`gid_kind::hardware`, the paper's "hardware
// resources have their own names") bound in the AGAS directory and exposed
// under a hierarchical path in the symbolic name space, e.g.
//
//   runtime/loc3/sched/ready_depth
//   runtime/agas/cache_misses
//
// so any locality can discover counters by prefix listing and interrogate
// any other locality with a plain parcel (see introspect/query.hpp).
//
// Cost model: registration happens at runtime construction (spinlocked);
// reads take the same spinlock only to find the entry — the sample
// callbacks themselves are relaxed-atomic loads or O(workers) scans, so a
// monitor sampling every counter steals microseconds, not milliseconds,
// from the execution sites it watches.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gas/agas.hpp"
#include "gas/gid.hpp"
#include "gas/name_service.hpp"
#include "util/histogram.hpp"
#include "util/spinlock.hpp"

namespace px::introspect {

// Samples the counter's current value.  Must be cheap, non-blocking, and
// callable from any thread (workers, the fabric progress thread, plain OS
// threads); must not call back into the registry.
using sample_fn = std::function<std::uint64_t()>;

// Samples a distribution counter: returns a detached point-in-time copy of
// the underlying log_histogram (the util::log_histogram::snapshot idiom).
// Same contract as sample_fn: cheap, non-blocking, no registry re-entry.
using hist_fn = std::function<util::log_histogram()>;

struct counter_info {
  std::string path;
  gas::gid id;
};

// One locally-sampled counter value at a point in time (snapshot_all).
struct counter_sample {
  std::string path;
  std::uint64_t value = 0;
};

// One locally-sampled histogram counter at a point in time (snapshot_hists).
struct hist_sample {
  std::string path;
  util::log_histogram hist;
};

class registry {
 public:
  registry(gas::agas& agas, gas::name_service& names);

  registry(const registry&) = delete;
  registry& operator=(const registry&) = delete;

  // Registers a sampled counter homed at locality `home` under `path`.
  // Allocates + binds a hardware gid (hardware gids never migrate, so the
  // home locality stays the single authority for the counter) and binds
  // the path in the symbolic name space.  Asserts on duplicate paths.
  gas::gid add(gas::locality_id home, std::string path, sample_fn fn);

  // Convenience for the common case: the counter is an existing relaxed
  // atomic (locality stats, fabric stats, lco_counters, ...).
  gas::gid add_raw(gas::locality_id home, std::string path,
                   const std::atomic<std::uint64_t>& raw);

  // Registers a counter that is *sampled elsewhere*: allocates and names
  // the gid exactly like add(), but installs no sampler (read() here
  // returns nullopt; query_counter routes to the home rank, whose registry
  // has the live callback).  Distributed mode replays the full machine-wide
  // counter schema through this in every process, which keeps boot-time
  // gid allocation sequences identical across ranks — the reason a rank
  // can name (and query) a remote counter without any directory traffic.
  gas::gid add_remote(gas::locality_id home, std::string path);

  // Registers a histogram-kind counter (a latency/depth *distribution*
  // rather than a scalar gauge).  Allocation, binding, and naming are
  // identical to add() — histogram counters take slots in the same
  // positional gid sequence, so distributed replay uses plain add_remote()
  // for them and the schema digest needs no kind bit.  read() on a
  // histogram counter reports its sample count; quantiles go through
  // read_quantile() / px.query_hist.
  gas::gid add_hist(gas::locality_id home, std::string path, hist_fn fn);

  // Samples a counter; nullopt for gids/paths that name no counter.
  // Histogram counters read as their cumulative sample count, so they
  // participate in snapshot_all()/delta() like any scalar.
  std::optional<std::uint64_t> read(gas::gid id) const;
  std::optional<std::uint64_t> read(std::string_view path) const;

  // Snapshot of a histogram counter's full distribution; nullopt for
  // scalar counters, unknown ids, and remote (replayed) entries.
  std::optional<util::log_histogram> read_hist(gas::gid id) const;
  std::optional<util::log_histogram> read_hist(std::string_view path) const;

  // Value at quantile q of a histogram counter, rounded to whole units
  // (ns for the runtime's latency hists); nullopt as read_hist.
  std::optional<std::uint64_t> read_quantile(gas::gid id, double q) const;
  std::optional<std::uint64_t> read_quantile(std::string_view path,
                                             double q) const;

  // Path -> gid through the name service (nullopt when the path is bound
  // to something that is not a counter).
  std::optional<gas::gid> find(std::string_view path) const;

  // All counters under `prefix` (name-service segment semantics), sampled
  // lazily by the caller via read().
  std::vector<counter_info> list(std::string_view prefix) const;

  std::size_t size() const;

  // Samples every *locally-sampled* counter (add_remote entries are
  // skipped — their live callbacks belong to another rank) into a
  // path-sorted vector.  A pair of snapshots brackets a region of
  // interest; see delta().
  std::vector<counter_sample> snapshot_all() const;

  // Detached copies of every locally-sampled histogram counter, path-
  // sorted.  The stats_collector expands these into per-quantile series
  // each tick.
  std::vector<hist_sample> snapshot_hists() const;

  // Per-path value change between two snapshots (after - before), sorted
  // by path.  Paths present in only one snapshot count from/to zero, so a
  // counter registered between the snapshots still reports.  Values are
  // unsigned monotonic in practice but the delta is signed: a snapshot
  // taken across a runtime reset may legitimately go backwards.
  static std::vector<std::pair<std::string, std::int64_t>> delta(
      const std::vector<counter_sample>& before,
      const std::vector<counter_sample>& after);

  // Order-independent digest over every registered (path, gid) pair.
  // Distributed boot compares ranks' digests at the pre-traffic barrier:
  // counter gids are positional (allocation order), so a rank whose
  // schema drifted — an add() without the matching add_remote replay —
  // would silently read *neighboring* counters cross-process.  The digest
  // turns that into a loud bootstrap failure.
  std::uint64_t schema_digest() const;

 private:
  struct entry {
    std::string path;
    sample_fn sample;  // null for add_remote and add_hist entries
    hist_fn hist;      // non-null only for add_hist entries
  };

  // Shared allocate/bind/name/insert path; both fns null means remote.
  gas::gid register_entry(gas::locality_id home, std::string path,
                          sample_fn fn, hist_fn hfn = nullptr);

  gas::agas& agas_;
  gas::name_service& names_;

  mutable util::spinlock lock_;
  std::unordered_map<gas::gid, entry> counters_;
};

}  // namespace px::introspect
