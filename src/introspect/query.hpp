// Remote counter interrogation: any locality reads any other locality's
// counters with plain parcels.
//
// A counter gid is hardware-kind, so its home locality is its permanent
// owner; query_counter ships a typed action parcel to that home (paying
// fabric latency like any other parcel — introspection enjoys no magic
// side channel) where the registry samples the live value, and the result
// flows back through the standard continuation/future machinery.  This is
// the paper's "remotely identified ... hardware resources" made useful:
// the counters *are* the instrument panel of the machine.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "core/locality.hpp"
#include "gas/gid.hpp"
#include "lco/lco.hpp"

namespace px::introspect {

// Value returned for a gid that names no counter at its home locality
// (e.g. queried after meaning something else): the query still completes.
inline constexpr std::uint64_t no_such_counter = ~0ull;

// Reads counter `id` at its home locality.  `from` is the asking locality;
// the returned future is satisfied by the reply parcel.
lco::future<std::uint64_t> query_counter(core::locality& from, gas::gid id);

// Callback form: same px.query_counter round trip, but the reply fires
// `cb(value)` on the delivery thread instead of satisfying a future — for
// callers that must not block (the distributed rebalancer samples from
// the transport progress thread).  `cb` must be cheap and non-blocking.
void query_counter_cb(core::locality& from, gas::gid id,
                      std::function<void(std::uint64_t)> cb);

// Path-addressed form: resolves the hierarchical path in the (shared)
// symbolic name space first; nullopt when the path names no counter.
std::optional<lco::future<std::uint64_t>> query_counter(core::locality& from,
                                                        std::string_view path);

// Quantile-addressed read of a *histogram* counter (registry::add_hist):
// ships `q` to the counter's home locality over the px.query_hist inline
// action and returns the distribution's value at that quantile, rounded to
// whole units (ns for the runtime's latency hists).  Replies
// no_such_counter when the gid names no histogram counter at its home —
// scalar counters are not quantile-addressable.
lco::future<std::uint64_t> query_hist(core::locality& from, gas::gid id,
                                      double q);

// Path-addressed form, like query_counter's.
std::optional<lco::future<std::uint64_t>> query_hist(core::locality& from,
                                                     std::string_view path,
                                                     double q);

// Machine-wide series gather: pulls rank `rank`'s full jsonl stats shard
// (the introspect/stats.hpp serialization) over the px.stats_pull typed
// action, so rank 0 can collect every rank's series without touching
// remote filesystems.  The future resolves to the empty string when the
// machine runs with PX_STATS off.  Defined in core/runtime.cpp beside the
// action.
lco::future<std::string> stats_pull(core::locality& from,
                                    gas::locality_id rank);

}  // namespace px::introspect
