// Telemetry plane: continuous counter time series for the whole runtime.
//
// The counter registry (introspect/registry.hpp) answers "how much, right
// now"; the flight recorder (trace/trace.hpp) answers "where did this one
// request go".  This answers "how does the machine *evolve*": a background
// sampler thread snapshots every locally-sampled counter each tick into a
// per-counter bounded ring of {ts_ns, value} points, so rates, derivatives,
// and tail-latency quantiles are queryable live (and exportable for the
// tools/px_fit.py scaling models) without the application storing anything.
//
// Histogram counters (registry::add_hist) are expanded per tick into
// synthetic quantile series `<path>/p50 … /p999`, so e.g. the p99 parcel
// send→dispatch latency is itself a time series; the histogram's population
// count rides in the scalar snapshot under the histogram's own path.
//
// Cost model mirrors the flight recorder: always compiled in, armed by
// PX_STATS (period PX_STATS_INTERVAL_US, shard directory PX_STATS_DIR);
// when disabled every instrumentation site pays exactly one relaxed load
// and a predicted branch — no clock read, no histogram lock.  The sampler
// itself never blocks runtime progress: rings overwrite their oldest point
// when full (counted in dropped_points), and sampling runs on a plain OS
// thread outside the scheduler, invisible to quiescence.
//
// Export: at shutdown (or mid-run via the px.stats_dump action) each rank
// drains its series to `PX_STATS_DIR/px_stats.<rank>.jsonl`; the
// px.stats_pull action returns the same serialization over the wire so
// rank 0 can gather the machine.  tools/px_stats.py merges shards into one
// timeline using the bootstrap-sampled clock offsets (docs/metrics.md).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "introspect/registry.hpp"

namespace px::introspect {

namespace detail {
// Constant-initialized at namespace scope for the same reason as
// trace::detail::g_enabled: the disabled fast path in every
// instrumentation site (parcel deliver, scheduler run/wait, monitor tick)
// must be one relaxed load + branch, with no init-guard.
extern std::atomic<bool> g_stats_enabled;
}  // namespace detail

// True while some runtime's stats_collector is armed.  Instrumentation
// sites gate their clock reads and histogram adds on this.
inline bool stats_armed() noexcept {
  return detail::g_stats_enabled.load(std::memory_order_relaxed);
}

struct stats_params {
  bool enabled = false;
  std::uint64_t interval_us = 10'000;  // sampler period (PX_STATS_INTERVAL_US)
  std::size_t ring_points = 512;       // per-series ring capacity
  std::string dir = ".";               // shard directory (PX_STATS_DIR)
  std::uint32_t rank = 0;
};

// One sampled point of one counter's series.
struct series_point {
  std::int64_t ts_ns = 0;  // util::now_ns (per-process steady epoch)
  std::uint64_t value = 0;
};

class stats_collector {
 public:
  stats_collector(registry& reg, stats_params params);
  ~stats_collector();

  stats_collector(const stats_collector&) = delete;
  stats_collector& operator=(const stats_collector&) = delete;

  // Arms the global flag, takes the t=0 tick, and starts the sampler
  // thread.  No-op unless constructed with params.enabled.  Call once the
  // counter schema is final (after runtime counter registration).
  void arm();

  // Takes a final tick, stops + joins the sampler thread, and clears the
  // global flag.  Idempotent; also run by the destructor.
  void disarm();

  bool enabled() const noexcept { return params_.enabled; }
  const stats_params& params() const noexcept { return params_; }

  // One sampling pass over the registry (scalars + histogram quantiles),
  // appending a point to every series.  The sampler thread calls this each
  // period; tests (and dump, for freshness) call it directly.
  void tick_now();

  std::uint64_t ticks() const noexcept {
    return ticks_.load(std::memory_order_relaxed);
  }
  // Points overwritten because their ring was full (drop-the-oldest; the
  // window slides, the sampler never blocks or grows).
  std::uint64_t dropped_points() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  // The series recorded for `path`, oldest point first.  Histogram
  // quantile series are addressed as `<counter path>/p50|p95|p99|p999`.
  std::vector<series_point> window(std::string_view path) const;
  std::optional<series_point> latest(std::string_view path) const;

  // First-differences rate over the retained window: (last-first)/Δt per
  // second.  Negative for shrinking gauges; nullopt without >= 2 points
  // spanning nonzero time.
  std::optional<double> rate_per_sec(std::string_view path) const;

  // Clock offset to rank 0 (net::bootstrap::clock_sync), stamped into the
  // shard header so px_stats.py can merge ranks onto one timeline.
  void set_clock_offset(std::int64_t off_ns) noexcept {
    clock_offset_ns_ = off_ns;
  }

  // The jsonl shard serialization (docs/metrics.md): one header object
  // line, then one object line per series.  Also the px.stats_pull wire
  // payload.
  std::string serialize_jsonl() const;

  // Writes `<dir>/px_stats.<rank>.jsonl`.  Non-destructive (series keep
  // accumulating; a later dump overwrites with a longer window).  Returns
  // false (with a log line) when the file cannot be written.
  bool dump() const;

 private:
  struct series {
    std::vector<series_point> pts;  // ring storage, capacity ring_points
    std::size_t head = 0;           // next write slot
    std::size_t count = 0;          // live points (<= capacity)
  };

  void append(const std::string& path, std::int64_t ts, std::uint64_t value);
  void sampler_main();

  registry& reg_;
  stats_params params_;

  mutable std::mutex mu_;                // series map: sampler vs queries
  std::map<std::string, series> series_;

  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::int64_t clock_offset_ns_ = 0;

  std::mutex wake_mu_;  // sampler sleep/stop handshake
  std::condition_variable wake_cv_;
  bool stop_ = false;
  bool running_ = false;
  std::thread sampler_;
};

// Quantiles expanded per tick for every histogram counter, as (suffix,
// q) pairs — shared with the serializer and docs.
inline constexpr struct {
  const char* suffix;
  double q;
} k_hist_quantiles[] = {
    {"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}, {"p999", 0.999}};

}  // namespace px::introspect
