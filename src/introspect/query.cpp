#include "introspect/query.hpp"

#include "core/action.hpp"
#include "core/runtime.hpp"

namespace px::introspect {

namespace {

// Runs at the counter's home locality: sample the registry and return the
// value through the continuation.  The destination gid doubles as the
// argument so the handler knows which counter was addressed.
//
// Raw-registered (non-spawning, like px.sink): a counter read is a
// spinlocked map lookup plus a relaxed-atomic sample, and the rank being
// interrogated is typically the *overloaded* one — a spawned handler
// would queue the measurement behind the very backlog it is measuring.
parcel::action_id query_counter_action_id() {
  static const parcel::action_id id =
      parcel::action_registry::global().register_action(
          "px.query_counter", +[](void* ctx, const parcel::parcel_view& pv) {
            auto* loc = static_cast<core::locality*>(ctx);
            const auto bits =
                util::from_bytes<std::uint64_t>(pv.arguments());
            const auto value =
                loc->rt().introspection().read(gas::gid::from_bits(bits));
            core::send_continuation_reply(
                *loc, pv.cont(),
                util::to_bytes(value.value_or(no_such_counter)));
          });
  return id;
}

// Eager: action ids are positional; every rank mints this at boot.
[[maybe_unused]] const parcel::action_id k_query_counter_registration =
    query_counter_action_id();

// Quantiles travel as parts-per-million so the argument block stays two
// fixed u64s (doubles have no place on the wire).
constexpr double kPpm = 1e6;

// px.query_hist: the quantile-addressed twin of px.query_counter.  Runs at
// the histogram counter's home, snapshots the distribution, and replies
// with the value at the requested quantile.  Raw-registered for the same
// reason: reading a latency histogram from a loaded rank must not queue
// behind the load being measured.
parcel::action_id query_hist_action_id() {
  static const parcel::action_id id =
      parcel::action_registry::global().register_action(
          "px.query_hist", +[](void* ctx, const parcel::parcel_view& pv) {
            auto* loc = static_cast<core::locality*>(ctx);
            util::input_archive ar(pv.arguments());
            std::uint64_t bits = 0;
            std::uint64_t q_ppm = 0;
            ar& bits;
            ar& q_ppm;
            const auto value = loc->rt().introspection().read_quantile(
                gas::gid::from_bits(bits), static_cast<double>(q_ppm) / kPpm);
            core::send_continuation_reply(
                *loc, pv.cont(),
                util::to_bytes(value.value_or(no_such_counter)));
          });
  return id;
}

[[maybe_unused]] const parcel::action_id k_query_hist_registration =
    query_hist_action_id();

void send_query(core::locality& from, gas::gid id,
                parcel::continuation cont) {
  parcel::parcel p;
  p.destination = id;
  p.action = query_counter_action_id();
  p.cont = cont;
  p.arguments = util::to_bytes(id.bits());
  from.send(std::move(p));
}

}  // namespace

lco::future<std::uint64_t> query_counter(core::locality& from, gas::gid id) {
  lco::promise<std::uint64_t> prom;
  auto fut = prom.get_future();
  send_query(from, id,
             core::make_promise_sink<std::uint64_t>(from, std::move(prom)));
  return fut;
}

void query_counter_cb(core::locality& from, gas::gid id,
                      std::function<void(std::uint64_t)> cb) {
  const gas::gid sink = from.register_sink(
      [cb = std::move(cb)](parcel::parcel p) {
        cb(util::from_bytes<std::uint64_t>(p.arguments));
      });
  send_query(from, id, parcel::continuation{sink, core::sink_action_id()});
}

std::optional<lco::future<std::uint64_t>> query_counter(
    core::locality& from, std::string_view path) {
  const auto id = from.rt().introspection().find(path);
  if (!id.has_value()) return std::nullopt;
  return query_counter(from, *id);
}

lco::future<std::uint64_t> query_hist(core::locality& from, gas::gid id,
                                      double q) {
  lco::promise<std::uint64_t> prom;
  auto fut = prom.get_future();
  parcel::parcel p;
  p.destination = id;
  p.action = query_hist_action_id();
  p.cont = core::make_promise_sink<std::uint64_t>(from, std::move(prom));
  p.arguments =
      util::to_bytes(id.bits(), static_cast<std::uint64_t>(q * kPpm));
  from.send(std::move(p));
  return fut;
}

std::optional<lco::future<std::uint64_t>> query_hist(core::locality& from,
                                                     std::string_view path,
                                                     double q) {
  const auto id = from.rt().introspection().find(path);
  if (!id.has_value()) return std::nullopt;
  return query_hist(from, *id, q);
}

}  // namespace px::introspect
