#include "introspect/query.hpp"

#include "core/action.hpp"
#include "core/runtime.hpp"

namespace px::introspect {

namespace {

// Runs at the counter's home locality: sample the registry and return the
// value through the continuation.  The destination gid doubles as the
// argument so the handler knows which counter was addressed.
std::uint64_t read_counter_action(std::uint64_t gid_bits) {
  core::locality* here = core::this_locality();
  const auto value =
      here->rt().introspection().read(gas::gid::from_bits(gid_bits));
  return value.value_or(no_such_counter);
}
PX_REGISTER_ACTION_AS(read_counter_action, "px.query_counter")

}  // namespace

lco::future<std::uint64_t> query_counter(core::locality& from, gas::gid id) {
  return core::async_from<&read_counter_action>(from, id, id.bits());
}

std::optional<lco::future<std::uint64_t>> query_counter(
    core::locality& from, std::string_view path) {
  const auto id = from.rt().introspection().find(path);
  if (!id.has_value()) return std::nullopt;
  return query_counter(from, *id);
}

}  // namespace px::introspect
