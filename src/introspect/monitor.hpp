// Per-locality load monitor: periodic sampling of the scheduler's ready
// depth into a smoothed (EWMA) load signal.
//
// Ticks are driven from two existing idle paths — the scheduler's
// flush-on-idle hook (an under-loaded locality samples itself constantly,
// decaying its signal toward zero) and the fabric progress thread's idle
// callback (which ticks *every* monitor, so a locality whose workers are
// pinned busy is still observed from outside).  A tick is a relaxed-atomic
// rate gate plus one relaxed load in the common "too soon" case; the
// sample itself is one more relaxed load, so monitoring costs the hot path
// nothing it would notice.
#pragma once

#include <atomic>
#include <cstdint>

#include "threads/scheduler.hpp"
#include "util/histogram.hpp"

namespace px::introspect {

struct monitor_params {
  std::uint64_t sample_interval_us = 100;  // min spacing between samples
  double alpha = 0.25;                     // EWMA weight of the new sample
};

class monitor {
 public:
  explicit monitor(threads::scheduler& sched, monitor_params params = {});

  monitor(const monitor&) = delete;
  monitor& operator=(const monitor&) = delete;

  // Takes a sample if at least sample_interval_us elapsed since the last
  // one; otherwise a no-op.  Callable concurrently from any thread.
  void tick() noexcept;

  // Instantaneous ready depth (no smoothing, no rate limit).
  std::uint64_t ready_now() const noexcept { return sched_.ready_estimate(); }

  // Smoothed ready depth.
  double ready_ewma() const noexcept {
    return static_cast<double>(ewma_milli_.load(std::memory_order_relaxed)) /
           1000.0;
  }

  // Fixed-point (x1000) EWMA for counter export (counters are u64).
  std::uint64_t ready_ewma_milli() const noexcept {
    return ewma_milli_.load(std::memory_order_relaxed);
  }

  std::uint64_t samples_taken() const noexcept {
    return samples_.load(std::memory_order_relaxed);
  }

  // Distribution of sampled ready depths (populated only while PX_STATS is
  // armed); registered as the runtime/loc<i>/sched/hist_ready_depth
  // histogram counter.
  util::log_histogram depth_hist_snapshot() const {
    return depth_hist_.snapshot();
  }

 private:
  threads::scheduler& sched_;
  monitor_params params_;
  std::atomic<std::uint64_t> ewma_milli_{0};
  std::atomic<std::int64_t> last_sample_ns_{0};
  std::atomic<std::uint64_t> samples_{0};
  util::log_histogram depth_hist_;  // internally locked
};

}  // namespace px::introspect
