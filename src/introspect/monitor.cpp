#include "introspect/monitor.hpp"

#include "introspect/stats.hpp"
#include "util/clock.hpp"

namespace px::introspect {

using util::now_ns;

monitor::monitor(threads::scheduler& sched, monitor_params params)
    : sched_(sched), params_(params) {}

void monitor::tick() noexcept {
  const std::int64_t now = now_ns();
  std::int64_t last = last_sample_ns_.load(std::memory_order_relaxed);
  const auto interval_ns =
      static_cast<std::int64_t>(params_.sample_interval_us) * 1000;
  if (now - last < interval_ns) return;
  // One sampler wins the slot; losers skip (concurrent ticks come from
  // idle workers and the fabric progress thread).
  if (!last_sample_ns_.compare_exchange_strong(last, now,
                                               std::memory_order_relaxed)) {
    return;
  }
  const auto depth = static_cast<double>(sched_.ready_estimate());
  if (stats_armed()) depth_hist_.add(depth);
  const auto prev =
      static_cast<double>(ewma_milli_.load(std::memory_order_relaxed));
  const double next = params_.alpha * depth * 1000.0 +
                      (1.0 - params_.alpha) * prev;
  ewma_milli_.store(static_cast<std::uint64_t>(next),
                    std::memory_order_relaxed);
  samples_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace px::introspect
