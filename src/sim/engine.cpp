#include "sim/engine.hpp"

#include "util/assert.hpp"

namespace px::sim {

void engine::schedule_at(time_ps when, action fn) {
  PX_ASSERT_MSG(when >= now_, "cannot schedule into the past");
  queue_.push(event{when, next_seq_++, std::move(fn)});
}

bool engine::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; move is safe because pop follows.
  event ev = std::move(const_cast<event&>(queue_.top()));
  queue_.pop();
  now_ = ev.at;
  ++executed_;
  ev.fn();
  return true;
}

std::size_t engine::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t engine::run_until(time_ps deadline) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    step();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

void resource::account() {
  busy_accum_ += static_cast<time_ps>(busy_) * (engine_.now() - last_change_);
  last_change_ = engine_.now();
}

time_ps resource::busy_time() const noexcept {
  return busy_accum_ +
         static_cast<time_ps>(busy_) * (engine_.now() - last_change_);
}

void resource::acquire(engine::action granted) {
  if (busy_ < capacity_) {
    account();
    ++busy_;
    ++grants_;
    granted();
    return;
  }
  waiters_.push_back(std::move(granted));
}

void resource::release() {
  PX_ASSERT_MSG(busy_ > 0, "release without acquire");
  if (next_waiter_ < waiters_.size()) {
    // Hand the slot directly to the oldest waiter; busy_ is unchanged.
    auto granted = std::move(waiters_[next_waiter_++]);
    ++grants_;
    if (next_waiter_ > 64 && next_waiter_ * 2 > waiters_.size()) {
      waiters_.erase(waiters_.begin(),
                     waiters_.begin() + static_cast<std::ptrdiff_t>(next_waiter_));
      next_waiter_ = 0;
    }
    granted();
    return;
  }
  account();
  --busy_;
}

void resource::use(time_ps service, engine::action done) {
  acquire([this, service, done = std::move(done)]() mutable {
    engine_.schedule_after(service, [this, done = std::move(done)]() mutable {
      release();
      done();
    });
  });
}

}  // namespace px::sim
