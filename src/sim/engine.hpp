// Discrete-event simulation core.
//
// Deterministic: events fire in (time, insertion-sequence) order, so two
// runs with the same seeds produce identical traces.  Virtual time is in
// integer picoseconds, which resolves sub-cycle timing for the multi-GHz
// clocks of the Gilgamesh II design point without floating-point drift.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace px::sim {

// Virtual time in picoseconds.
using time_ps = std::uint64_t;

inline constexpr time_ps ps = 1;
inline constexpr time_ps ns = 1000 * ps;
inline constexpr time_ps us = 1000 * ns;
inline constexpr time_ps ms = 1000 * us;

class engine {
 public:
  using action = std::function<void()>;

  time_ps now() const noexcept { return now_; }

  void schedule_at(time_ps when, action fn);
  void schedule_after(time_ps delay, action fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  // Runs the earliest pending event; returns false when none remain.
  bool step();

  // Runs events until the queue drains; returns the number executed.
  std::size_t run();

  // Runs events with timestamp <= deadline; clock ends at
  // max(now, deadline) if the queue drained early.
  std::size_t run_until(time_ps deadline);

  std::size_t pending() const noexcept { return queue_.size(); }
  std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct event {
    time_ps at;
    std::uint64_t seq;
    action fn;
  };
  struct later {
    bool operator()(const event& a, const event& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  std::priority_queue<event, std::vector<event>, later> queue_;
  time_ps now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

// A FIFO-queued server with fixed concurrency, the queueing-theory "c-server
// station".  Models ALU pipelines, memory banks, and network ports: clients
// call acquire() with a continuation that runs when a slot is granted; the
// holder calls release() when its service completes.
class resource {
 public:
  resource(engine& eng, unsigned capacity)
      : engine_(eng), capacity_(capacity) {}

  resource(const resource&) = delete;
  resource& operator=(const resource&) = delete;

  void acquire(engine::action granted);
  void release();

  // acquire + hold for `service` + release, then `done`.
  void use(time_ps service, engine::action done);

  unsigned in_use() const noexcept { return busy_; }
  std::size_t queue_length() const noexcept { return waiters_.size(); }
  std::uint64_t total_grants() const noexcept { return grants_; }
  // Aggregate busy time across all slots; divide by (elapsed * capacity)
  // for utilization.
  time_ps busy_time() const noexcept;

 private:
  engine& engine_;
  unsigned capacity_;
  unsigned busy_ = 0;
  std::uint64_t grants_ = 0;
  std::vector<engine::action> waiters_;
  std::size_t next_waiter_ = 0;  // index into waiters_, amortized FIFO
  time_ps busy_accum_ = 0;
  time_ps last_change_ = 0;

  void account();
};

}  // namespace px::sim
