// LITL-X is header-only over the core runtime; this translation unit exists
// to anchor the library target (and any future out-of-line definitions).
#include "litlx/litlx.hpp"
