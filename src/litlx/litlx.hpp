// LITL-X ("little-X"): the Latency Intrinsic-Tolerant Language prototype.
//
// Paper §2.3: LITL-X extends a TNT-like coarse-grain thread layer with four
// construct families, prototyped here exactly as the paper enumerates them:
//
//   1. asynchronous calls with EARTH/Cilk-style completion counting
//      (async_call + sync_slot);
//   2. percolation of instruction blocks and data to the site of intended
//      computation (litlx::percolate, delegating to the core manager);
//   3. dataflow-style synchronization constructs (sync_slot is the EARTH
//      sync counter; dataflow_var is a single-assignment I-structure);
//   4. atomic sections with a weak (location-consistency-flavoured) memory
//      model: sections on the same object serialize *at the object's home
//      location*; sections on different objects are unordered.
//
// LITL-X is "not intended as a final programming language ... but a logical
// testbed" — accordingly this is a thin veneer over the ParalleX runtime.
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "core/action.hpp"
#include "core/percolation.hpp"
#include "core/runtime.hpp"
#include "lco/lco.hpp"

namespace px::litlx {

// ------------------------------------------------------------ TNT threads

// Coarse-grain local thread spawn (the TNT substrate LITL-X extends).
inline void spawn_thread(std::function<void()> fn) {
  core::locality* here = core::this_locality();
  PX_ASSERT_MSG(here != nullptr, "spawn_thread outside a ParalleX thread");
  here->spawn(std::move(fn));
}

// ------------------------------------------------------------- sync slots

// EARTH-style synchronization slot: initialized with a count, decremented
// by completions; consumers block (or chain) on zero.
class sync_slot : public lco::and_gate {
 public:
  explicit sync_slot(std::uint64_t expected) : lco::and_gate(expected) {}
};

// ------------------------------------------------------------ async calls

// Asynchronous remote call: launch Fn(args...) at `where`, signal `slot`
// when the completion (continuation parcel) arrives back at the caller.
template <auto Fn, typename... Args>
void async_call(sync_slot& slot, gas::locality_id where, Args&&... args) {
  core::locality* here = core::this_locality();
  PX_ASSERT_MSG(here != nullptr, "async_call outside a ParalleX thread");
  auto fut = core::async_from<Fn>(*here, here->rt().locality_gid(where),
                                  std::forward<Args>(args)...);
  fut.on_ready([&slot] { slot.signal(); });
}

// Value-returning form: result lands in `out` before the slot signals.
// `out` must outlive the call (normal EARTH frame discipline).
template <auto Fn, typename R, typename... Args>
void async_call_into(sync_slot& slot, R& out, gas::locality_id where,
                     Args&&... args) {
  core::locality* here = core::this_locality();
  PX_ASSERT_MSG(here != nullptr, "async_call outside a ParalleX thread");
  auto fut = core::async_from<Fn>(*here, here->rt().locality_gid(where),
                                  std::forward<Args>(args)...);
  fut.on_ready([&slot, &out, fut] {
    out = fut.get();
    slot.signal();
  });
}

// ------------------------------------------------------------- percolation

// Percolates Fn and its operands to `where` (paper item: "percolation of
// program instruction blocks and data at the site of the intended
// computation, to eliminate waiting for remote accesses").
template <auto Fn, typename... Args>
auto percolate(gas::locality_id where, Args&&... args) {
  return core::percolate<Fn>(where, std::forward<Args>(args)...);
}

// ---------------------------------------------------------- dataflow vars

// Single-assignment dataflow variable (I-structure): writes happen once;
// reads block until written.  "Dataflow constructs allow true asynchronous
// value oriented flow control."
template <typename T>
class dataflow_var {
 public:
  dataflow_var() : state_(std::make_shared<state>()) {}

  void write(T value) const { state_->prom.set_value(std::move(value)); }
  const T& read() const { return state_->fut.get(); }
  bool written() const { return state_->fut.is_ready(); }
  lco::future<T> future() const { return state_->fut; }

 private:
  struct state {
    lco::promise<T> prom;
    lco::future<T> fut = prom.get_future();
  };
  std::shared_ptr<state> state_;
};

// ---------------------------------------------------------- atomic sections

// An object guarded by location-consistent atomic sections [Sarkar & Gao].
// Sections execute at the object's home locality, serialized by a mutex
// LCO there; there is no global ordering between sections on different
// objects — the weak model that makes fine-grained synchronization scale.
template <typename T>
class atomic_object {
 public:
  atomic_object(core::runtime& /*rt*/, gas::locality_id home, T initial)
      : home_(home), state_(std::make_shared<state>(std::move(initial))) {}

  gas::locality_id home() const noexcept { return home_; }

  // Runs fn(value&) atomically at the object's location; returns a future
  // for fn's result.  The calling thread is free to continue — atomic
  // sections are split-phase like everything else in the model.
  template <typename F>
  auto atomically(F fn) const {
    using R = std::invoke_result_t<F, T&>;
    core::locality* here = core::this_locality();
    PX_ASSERT_MSG(here != nullptr, "atomically outside a ParalleX thread");
    lco::promise<R> prom;
    auto fut = prom.get_future();
    here->rt().remote_spawn(
        *here, home_, [st = state_, fn = std::move(fn), prom]() mutable {
          std::lock_guard lock(st->section);
          if constexpr (std::is_void_v<R>) {
            fn(st->value);
            prom.set_value();
          } else {
            prom.set_value(fn(st->value));
          }
        });
    return fut;
  }

 private:
  struct state {
    explicit state(T v) : value(std::move(v)) {}
    T value;
    lco::mutex section;
  };

  gas::locality_id home_;
  std::shared_ptr<state> state_;
};

}  // namespace px::litlx
