// LITL-X ("little-X"): the Latency Intrinsic-Tolerant Language prototype.
//
// Paper §2.3: LITL-X extends a TNT-like coarse-grain thread layer with four
// construct families, prototyped here exactly as the paper enumerates them:
//
//   1. asynchronous calls with EARTH/Cilk-style completion counting
//      (async_call + sync_slot);
//   2. percolation of instruction blocks and data to the site of intended
//      computation (litlx::percolate, delegating to the core manager);
//   3. dataflow-style synchronization constructs (sync_slot is the EARTH
//      sync counter; dataflow_var is a single-assignment I-structure);
//   4. atomic sections with a weak (location-consistency-flavoured) memory
//      model: sections on the same object serialize *at the object's home
//      location*; sections on different objects are unordered.
//
// LITL-X is "not intended as a final programming language ... but a logical
// testbed" — accordingly this is a thin veneer over the ParalleX runtime.
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "core/action.hpp"
#include "core/percolation.hpp"
#include "core/runtime.hpp"
#include "lco/lco.hpp"

namespace px::litlx {

// ------------------------------------------------------------ TNT threads

// Coarse-grain local thread spawn (the TNT substrate LITL-X extends).
inline void spawn_thread(std::function<void()> fn) {
  core::locality* here = core::this_locality();
  PX_ASSERT_MSG(here != nullptr, "spawn_thread outside a ParalleX thread");
  here->spawn(std::move(fn));
}

// ------------------------------------------------------------- sync slots

// EARTH-style synchronization slot: initialized with a count, decremented
// by completions; consumers block (or chain) on zero.
class sync_slot : public lco::and_gate {
 public:
  explicit sync_slot(std::uint64_t expected) : lco::and_gate(expected) {}
};

// ------------------------------------------------------------ async calls

// Asynchronous remote call: launch Fn(args...) at `where`, signal `slot`
// when the completion (continuation parcel) arrives back at the caller.
template <auto Fn, typename... Args>
void async_call(sync_slot& slot, gas::locality_id where, Args&&... args) {
  core::locality* here = core::this_locality();
  PX_ASSERT_MSG(here != nullptr, "async_call outside a ParalleX thread");
  auto fut = core::async_from<Fn>(*here, here->rt().locality_gid(where),
                                  std::forward<Args>(args)...);
  fut.on_ready([&slot] { slot.signal(); });
}

// Value-returning form: result lands in `out` before the slot signals.
// `out` must outlive the call (normal EARTH frame discipline).
template <auto Fn, typename R, typename... Args>
void async_call_into(sync_slot& slot, R& out, gas::locality_id where,
                     Args&&... args) {
  core::locality* here = core::this_locality();
  PX_ASSERT_MSG(here != nullptr, "async_call outside a ParalleX thread");
  auto fut = core::async_from<Fn>(*here, here->rt().locality_gid(where),
                                  std::forward<Args>(args)...);
  fut.on_ready([&slot, &out, fut] {
    out = fut.get();
    slot.signal();
  });
}

// ------------------------------------------------------------- percolation

// Percolates Fn and its operands to `where` (paper item: "percolation of
// program instruction blocks and data at the site of the intended
// computation, to eliminate waiting for remote accesses").
template <auto Fn, typename... Args>
auto percolate(gas::locality_id where, Args&&... args) {
  return core::percolate<Fn>(where, std::forward<Args>(args)...);
}

// ---------------------------------------------------------- dataflow vars

// Single-assignment dataflow variable (I-structure): writes happen once;
// reads block until written.  "Dataflow constructs allow true asynchronous
// value oriented flow control."
template <typename T>
class dataflow_var {
 public:
  dataflow_var() : state_(std::make_shared<state>()) {}

  void write(T value) const { state_->prom.set_value(std::move(value)); }
  const T& read() const { return state_->fut.get(); }
  bool written() const { return state_->fut.is_ready(); }
  lco::future<T> future() const { return state_->fut; }

 private:
  struct state {
    lco::promise<T> prom;
    lco::future<T> fut = prom.get_future();
  };
  std::shared_ptr<state> state_;
};

// ---------------------------------------------------------- atomic sections

namespace detail {

// The guarded cell is an ordinary AGAS data object: sections route to it
// by gid, so they follow the object through migrations and cross process
// boundaries like any other parcel.
template <typename T>
struct atomic_cell {
  explicit atomic_cell(T v) : value(std::move(v)) {}
  T value;
  lco::mutex section;
};

// Fn is a plain function `R fn(T& value, Args...)`; its leading reference
// parameter is satisfied at the owner, the rest travel on the wire.
template <typename>
struct section_traits;

template <typename R, typename T, typename... As>
struct section_traits<R (*)(T&, As...)> {
  using value_type = T;
  using result_type = R;
  using args_tuple = std::tuple<std::decay_t<As>...>;
};

// Typed-action wrapper executing one section at the cell's owner: look the
// cell up locally, serialize on its mutex LCO, run the body.
template <auto Fn, typename T, typename ArgsTuple>
struct atomic_section;

template <auto Fn, typename T, typename... As>
struct atomic_section<Fn, T, std::tuple<As...>> {
  static auto run(std::uint64_t cell_bits, As... args) {
    core::locality* here = core::this_locality();
    auto obj = here->get_object(gas::gid::from_bits(cell_bits));
    PX_ASSERT_MSG(obj != nullptr,
                  "atomic section parcel landed off the cell's owner");
    auto cell = std::static_pointer_cast<atomic_cell<T>>(obj);
    std::lock_guard lock(cell->section);
    return Fn(cell->value, std::move(args)...);
  }
};

}  // namespace detail

// An object guarded by location-consistent atomic sections [Sarkar & Gao].
// Sections execute at the object's home locality, serialized by a mutex
// LCO there; there is no global ordering between sections on different
// objects — the weak model that makes fine-grained synchronization scale.
//
// Sections are typed actions (PR 6): the body is a free function
// `R fn(T& value, Args...)` invoked as `obj.atomically<&fn>(args...)`, and
// the handoff is a real parcel through the locality's routing/accounting
// path — identical in sim and TCP modes.  When the object's home crosses
// processes, register the body eagerly on every rank with
// PX_REGISTER_ATOMIC_SECTION(T, fn) and attach on non-creating ranks via
// the gid constructor.
template <typename T>
class atomic_object {
 public:
  // Creates the guarded cell at `home`.  Distributed: must run in the home
  // rank's process (the cell's state lives there); other ranks attach by
  // gid.
  atomic_object(core::runtime& rt, gas::locality_id home, T initial)
      : id_(rt.new_object<detail::atomic_cell<T>>(home, std::move(initial))) {}

  // Attaches to a cell created elsewhere (gid learned out of band).
  explicit atomic_object(gas::gid id) : id_(id) {}

  gas::gid id() const noexcept { return id_; }
  gas::locality_id home() const noexcept { return id_.home(); }

  // Runs Fn(value&, args...) atomically at the object's location; returns
  // a future for Fn's result.  The calling thread is free to continue —
  // atomic sections are split-phase like everything else in the model.
  template <auto Fn, typename... Args>
  auto atomically(Args&&... args) const {
    using W = detail::atomic_section<
        Fn, T, typename detail::section_traits<decltype(Fn)>::args_tuple>;
    return core::async<&W::run>(id_, id_.bits(),
                                std::forward<Args>(args)...);
  }

 private:
  gas::gid id_;
};

// Eagerly registers fn's atomic-section wrapper for atomic_object<T> at
// static-init time — required whenever sections cross processes (action
// ids are positional; every rank must mint the wrapper's id at boot).
#define PX_REGISTER_ATOMIC_SECTION_AS(T, fn, name)                          \
  namespace {                                                               \
  [[maybe_unused]] const ::px::parcel::action_id PX_DETAIL_CONCAT(          \
      px_asection_registration_, __COUNTER__) =                             \
      ::px::core::action<&::px::litlx::detail::atomic_section<              \
          &fn, T,                                                           \
          typename ::px::litlx::detail::section_traits<                     \
              decltype(&fn)>::args_tuple>::run>::ensure_registered(name);   \
  }
#define PX_REGISTER_ATOMIC_SECTION(T, fn) \
  PX_REGISTER_ATOMIC_SECTION_AS(T, fn, "px.asection." #fn)

}  // namespace px::litlx
