#include "lco/lco.hpp"

#include <chrono>
#include <thread>

#include "trace/trace.hpp"

namespace px::lco {

std::atomic<std::uint64_t> lco_counters::depleted_threads_created{0};
std::atomic<std::uint64_t> lco_counters::continuations_attached{0};
std::atomic<std::uint64_t> lco_counters::fires{0};

// ------------------------------------------------------------------ event

void event_base::wait() {
  if (ready()) return;
  if (trace::enabled()) {
    trace::emit_here(trace::event_kind::lco_wait,
                     reinterpret_cast<std::uintptr_t>(this));
  }
  if (threads::scheduler::self() != nullptr) {
    // Two-phase: the hook publishes the depleted thread only after the
    // context switch completed, so a concurrent fire() cannot resume a
    // thread that is still running.
    threads::scheduler::suspend(&suspend_hook, this);
    PX_DEBUG_ASSERT(ready());
    return;
  }
  // Plain OS thread (main/test driver): spin briefly, then sleep-poll.
  util::backoff bo;
  for (int i = 0; i < 256 && !ready(); ++i) bo.pause();
  while (!ready()) {
    std::this_thread::sleep_for(std::chrono::microseconds(20));
  }
}

// Runs on the scheduler context after the waiter's switch-out completed,
// so td is genuinely parked before any wakeup source can see it.  Two races
// meet here and both resolve against the event's lock:
//  - fire() slipped in between wait()'s ready() check and this hook: the
//    fired_ re-check below catches it and we resume td ourselves instead of
//    parking it on an event that will never fire again.
//  - fire() runs concurrently with the push: the lock serializes them, so
//    the firing thread either sees td in waiters_ (and wakes it) or misses
//    it entirely (and we take the already_fired branch).
// After the push is published (lock released), td may be resumed, run to
// completion, and be recycled by another worker at any moment — so nothing
// below the critical section may touch td except the already_fired resume,
// which owns td precisely because it was never published.
void event_base::suspend_hook(threads::thread_descriptor* td, void* self) {
  auto* ev = static_cast<event_base*>(self);
  bool already_fired = false;
  {
    std::lock_guard lock(ev->lock_);
    if (ev->fired_.load(std::memory_order_relaxed)) {
      already_fired = true;
    } else {
      waiter w;
      w.depleted = td;
      ev->waiters_.push_back(std::move(w));
      lco_counters::depleted_threads_created.fetch_add(
          1, std::memory_order_relaxed);
    }
  }
  if (already_fired) td->owner->resume(td);
}

void event_base::when_ready(std::function<void()> fn) {
  lco_counters::continuations_attached.fetch_add(1,
                                                 std::memory_order_relaxed);
  {
    std::lock_guard lock(lock_);
    if (!fired_.load(std::memory_order_relaxed)) {
      waiter w;
      w.continuation = std::move(fn);
      waiters_.push_back(std::move(w));
      return;
    }
  }
  fn();  // already fired: run inline on the caller
}

bool event_base::fire() {
  std::vector<waiter> pending;
  {
    std::lock_guard lock(lock_);
    if (fired_.exchange(true, std::memory_order_acq_rel)) return false;
    pending = std::move(waiters_);
    waiters_.clear();
  }
  lco_counters::fires.fetch_add(1, std::memory_order_relaxed);
  if (trace::enabled()) {
    trace::emit_here(trace::event_kind::lco_fire,
                     reinterpret_cast<std::uintptr_t>(this));
  }
  // Outside the lock: wakeups enqueue into schedulers, continuations run
  // arbitrary (but by contract cheap) user code (CP.22).
  for (auto& w : pending) {
    if (w.depleted != nullptr) {
      w.depleted->owner->resume(w.depleted);
    } else {
      w.continuation();
    }
  }
  return true;
}

// --------------------------------------------------------------- semaphore

void counting_semaphore::acquire() {
  PX_ASSERT_MSG(threads::scheduler::self() != nullptr,
                "semaphore acquire outside a ParalleX thread");
  {
    std::lock_guard lock(lock_);
    if (count_ > 0) {
      --count_;
      return;
    }
  }
  threads::scheduler::suspend(&sem_suspend_hook, this);
  // Woken by release(), which transferred one permit directly to us.
}

void counting_semaphore::sem_suspend_hook(threads::thread_descriptor* td,
                                          void* self) {
  auto* sem = static_cast<counting_semaphore*>(self);
  bool granted = false;
  {
    std::lock_guard lock(sem->lock_);
    // Re-check: a release may have slipped between the fast-path check and
    // this hook; consume the permit instead of parking.
    if (sem->count_ > 0) {
      --sem->count_;
      granted = true;
    } else {
      sem->waiters_.push_back(td);
    }
  }
  if (granted) td->owner->resume(td);
}

bool counting_semaphore::try_acquire() {
  std::lock_guard lock(lock_);
  if (count_ > 0) {
    --count_;
    return true;
  }
  return false;
}

void counting_semaphore::release(std::int64_t n) {
  PX_ASSERT(n > 0);
  std::vector<threads::thread_descriptor*> wake;
  {
    std::lock_guard lock(lock_);
    count_ += n;
    while (count_ > 0 && next_waiter_ < waiters_.size()) {
      wake.push_back(waiters_[next_waiter_++]);
      --count_;
    }
    if (next_waiter_ > 64 && next_waiter_ * 2 > waiters_.size()) {
      waiters_.erase(waiters_.begin(),
                     waiters_.begin() +
                         static_cast<std::ptrdiff_t>(next_waiter_));
      next_waiter_ = 0;
    }
  }
  for (auto* td : wake) td->owner->resume(td);
}

// ----------------------------------------------------------------- barrier

barrier::barrier(std::uint64_t parties) : parties_(parties) {
  PX_ASSERT(parties >= 1);
}

namespace {
struct barrier_wait_record {
  barrier* b;
  std::uint64_t generation;
};
}  // namespace

void barrier::arrive_and_wait() {
  PX_ASSERT_MSG(threads::scheduler::self() != nullptr,
                "barrier arrive outside a ParalleX thread");
  std::uint64_t my_generation;
  std::vector<threads::thread_descriptor*> wake;
  bool last_party = false;
  {
    std::lock_guard lock(lock_);
    my_generation = generation_;
    ++arrived_;
    if (arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      wake = std::move(waiting_);
      waiting_.clear();
      last_party = true;
    }
  }
  if (last_party) {
    for (auto* td : wake) td->owner->resume(td);
    return;
  }
  // The record lives on this fiber's stack, which stays mapped while the
  // thread is suspended — the hook may safely read through it.
  barrier_wait_record record{this, my_generation};
  threads::scheduler::suspend(&barrier_suspend_hook, &record);
}

void barrier::barrier_suspend_hook(threads::thread_descriptor* td,
                                   void* arg) {
  auto* record = static_cast<barrier_wait_record*>(arg);
  barrier* b = record->b;
  bool already_released = false;
  {
    std::lock_guard lock(b->lock_);
    // The last party may have flipped the generation between our arrive
    // and this hook; in that case we must not park.
    if (b->generation_ != record->generation) {
      already_released = true;
    } else {
      b->waiting_.push_back(td);
    }
  }
  if (already_released) td->owner->resume(td);
}

}  // namespace px::lco
