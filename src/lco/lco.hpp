// Local Control Objects — the ParalleX lightweight synchronization family.
//
// Paper §2.2 "Local Control Objects (LCO)": dataflow synchronization,
// futures, and metathreads replace global barriers.  An LCO owns a waiter
// list whose entries are either *depleted threads* (paper's term for a
// suspended thread's state parked in the LCO) or continuation callbacks
// (used by the parcel layer to launch a new thread when the event fires,
// and by dataflow composition).
//
// The event_base here is single-fire ("set once, then permanently ready");
// reusable LCOs (and_gate generations, semaphores, mutexes) build their own
// protocols on the same waiter machinery.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "threads/scheduler.hpp"
#include "threads/thread.hpp"
#include "util/assert.hpp"
#include "util/spinlock.hpp"

namespace px::lco {

// Global counters for the micro-cost experiment (THR-1) and tests.
struct lco_counters {
  static std::atomic<std::uint64_t> depleted_threads_created;
  static std::atomic<std::uint64_t> continuations_attached;
  static std::atomic<std::uint64_t> fires;
};

// ------------------------------------------------------------------ event

// Single-fire event with mixed waiters.  Base of future/gate machinery.
class event_base {
 public:
  event_base() = default;
  event_base(const event_base&) = delete;
  event_base& operator=(const event_base&) = delete;

  bool ready() const noexcept {
    return fired_.load(std::memory_order_acquire);
  }

  // Blocks the caller until fired.  On a ParalleX thread this parks the
  // thread as a depleted-thread waiter (two-phase suspend, race-free);
  // on a plain OS thread it spin-sleeps (intended for main/test drivers).
  void wait();

  // Attaches a continuation; runs inline when already fired, otherwise on
  // the firing thread.  Continuations must be cheap and non-blocking —
  // heavy work belongs in a spawned thread.
  void when_ready(std::function<void()> fn);

 protected:
  // Fires the event exactly once; wakes every depleted thread and runs
  // every continuation.  Returns false when already fired.
  bool fire();

 private:
  struct waiter {
    threads::thread_descriptor* depleted = nullptr;  // xor continuation
    std::function<void()> continuation;
  };

  static void suspend_hook(threads::thread_descriptor* td, void* self);

  mutable util::spinlock lock_;
  std::atomic<bool> fired_{false};
  std::vector<waiter> waiters_;
};

// Manually fired event ("gate" in ParalleX terms).
class gate : public event_base {
 public:
  // Opens the gate; subsequent waits pass through.  Idempotent.
  void open() { fire(); }
};

// -------------------------------------------------------------- future<T>

namespace detail {

template <typename T>
class future_state : public event_base {
 public:
  void set_value(T value) {
    {
      std::lock_guard lock(value_lock_);
      PX_ASSERT_MSG(!value_.has_value(), "future set twice");
      value_ = std::move(value);
    }
    PX_ASSERT(fire());
  }

  const T& get() {
    wait();
    // After fire, value_ is immutable; no lock needed.
    return *value_;
  }

 private:
  util::spinlock value_lock_;
  std::optional<T> value_;
};

template <>
class future_state<void> : public event_base {
 public:
  void set_value() { PX_ASSERT(fire()); }
  void get() { wait(); }
};

}  // namespace detail

template <typename T>
class promise;

// Shared-state future.  Copyable (shared read side); `get` waits via the
// LCO machinery, so any number of ParalleX threads may block on one future.
template <typename T>
class future {
 public:
  future() = default;

  bool valid() const noexcept { return state_ != nullptr; }
  bool is_ready() const {
    PX_ASSERT(valid());
    return state_->ready();
  }
  void wait() const {
    PX_ASSERT(valid());
    state_->wait();
  }

  // Returns a reference to the stored value (void for future<void>).
  decltype(auto) get() const {
    PX_ASSERT(valid());
    return state_->get();
  }

  // Attaches fn() to run when the value is available.
  void on_ready(std::function<void()> fn) const {
    PX_ASSERT(valid());
    state_->when_ready(std::move(fn));
  }

 private:
  friend class promise<T>;
  explicit future(std::shared_ptr<detail::future_state<T>> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::future_state<T>> state_;
};

template <typename T>
class promise {
 public:
  promise() : state_(std::make_shared<detail::future_state<T>>()) {}

  future<T> get_future() const { return future<T>(state_); }

  template <typename U = T>
    requires(!std::is_void_v<U>)
  void set_value(U value) {
    state_->set_value(std::move(value));
  }

  template <typename U = T>
    requires std::is_void_v<U>
  void set_value() {
    state_->set_value();
  }

 private:
  std::shared_ptr<detail::future_state<T>> state_;
};

// Convenience: an already-satisfied future.
template <typename T>
future<T> make_ready_future(T value) {
  promise<T> p;
  p.set_value(std::move(value));
  return p.get_future();
}

inline future<void> make_ready_future() {
  promise<void> p;
  p.set_value();
  return p.get_future();
}

// ---------------------------------------------------------------- and_gate

// Counting dataflow join: fires its event after `expected` signals.
// This is the static-dataflow "operand counter" LCO; dataflow() composes
// futures through it.
class and_gate : public event_base {
 public:
  explicit and_gate(std::uint64_t expected) : remaining_(expected) {
    if (expected == 0) fire();
  }

  void signal(std::uint64_t n = 1) {
    const std::uint64_t prev = remaining_.fetch_sub(n, std::memory_order_acq_rel);
    PX_ASSERT_MSG(prev >= n, "and_gate signalled more than expected");
    if (prev == n) fire();
  }

  std::uint64_t remaining() const noexcept {
    return remaining_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::uint64_t> remaining_;
};

// ---------------------------------------------------------------- dataflow

// dataflow(f, fa, fb, ...): runs f(a, b, ...) once every input future is
// ready and returns a future for the result.  Pure value-oriented flow
// control: no thread blocks; the last input to arrive executes f.
template <typename F, typename... Ts>
auto dataflow(F f, future<Ts>... inputs)
    -> future<std::invoke_result_t<F, Ts...>> {
  using R = std::invoke_result_t<F, Ts...>;
  promise<R> result;
  auto gate_ptr = std::make_shared<and_gate>(sizeof...(Ts));
  // Each input signals the gate; the gate's continuation computes.
  auto compute = [f = std::move(f), result, inputs...]() mutable {
    if constexpr (std::is_void_v<R>) {
      f(inputs.get()...);
      result.set_value();
    } else {
      result.set_value(f(inputs.get()...));
    }
  };
  gate_ptr->when_ready(std::move(compute));
  (inputs.on_ready([gate_ptr] { gate_ptr->signal(); }), ...);
  return result.get_future();
}

// when_all: future that fires when all inputs are ready.
template <typename T>
future<void> when_all(const std::vector<future<T>>& inputs) {
  promise<void> done;
  auto gate_ptr = std::make_shared<and_gate>(inputs.size());
  gate_ptr->when_ready([done]() mutable { done.set_value(); });
  for (const auto& f : inputs) {
    f.on_ready([gate_ptr] { gate_ptr->signal(); });
  }
  return done.get_future();
}

// --------------------------------------------------------------- semaphore

// Counting semaphore with FIFO handoff to depleted threads.
class counting_semaphore {
 public:
  explicit counting_semaphore(std::int64_t initial) : count_(initial) {
    PX_ASSERT(initial >= 0);
  }

  // Valid on ParalleX threads only (parks the thread when unavailable).
  void acquire();
  bool try_acquire();
  void release(std::int64_t n = 1);

  std::int64_t value() const {
    std::lock_guard lock(lock_);
    return count_;
  }

 private:
  static void sem_suspend_hook(threads::thread_descriptor* td, void* self);

  mutable util::spinlock lock_;
  std::int64_t count_;
  std::vector<threads::thread_descriptor*> waiters_;
  std::size_t next_waiter_ = 0;
};

// ------------------------------------------------------------------ mutex

// Mutual exclusion LCO: a binary semaphore with owner asserts, satisfying
// Lockable for std::lock_guard (CP.20).
class mutex {
 public:
  mutex() : sem_(1) {}
  void lock() { sem_.acquire(); }
  bool try_lock() { return sem_.try_acquire(); }
  void unlock() { sem_.release(); }

 private:
  counting_semaphore sem_;
};

// ---------------------------------------------------------------- barrier

// Sense-reversing, reusable barrier for ParalleX threads.  Provided for the
// LCO-vs-barrier experiment (LCO-1): the paper argues LCOs "eliminate most
// uses of global barriers"; this is the thing being eliminated, implemented
// over the same waiter machinery for a fair comparison.
class barrier {
 public:
  explicit barrier(std::uint64_t parties);

  // Park until all parties arrive; reusable across generations.
  void arrive_and_wait();

  std::uint64_t generation() const {
    std::lock_guard lock(lock_);
    return generation_;
  }

 private:
  static void barrier_suspend_hook(threads::thread_descriptor* td, void* self);

  mutable util::spinlock lock_;
  const std::uint64_t parties_;
  std::uint64_t arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<threads::thread_descriptor*> waiting_;
};

}  // namespace px::lco
