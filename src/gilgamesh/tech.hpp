// Gilgamesh II design-point technology model.
//
// Paper §3: a point design for a 2020 technology target, validating the
// ParalleX execution model in silicon.  The stated composition and claims:
//
//   * each chip: heterogeneous — one streaming dataflow accelerator (many
//     ALUs on local registers + 4-way multiplexers) and 16 PIM modules,
//     each with 32 MIND nodes (in-memory threads, short latency, very high
//     memory bandwidth);
//   * "each chip is capable of approximately 10 Teraflops although the
//     theoretical peak is substantially higher";
//   * "a peak performance in excess of 1 Exaflops is achievable with 100K
//     chips";
//   * main memory in the MIND modules plus a DRAM "Penultimate Store" on
//     an additional 100K chips for "a total memory storage of 4 Petabytes";
//   * interconnect: the Data Vortex network.
//
// The calculator derives the system-level figures from per-unit technology
// parameters, so the arithmetic consistency of the design point (DP-1) is
// reproducible and auditable rather than quoted.
#pragma once

#include <cstdint>
#include <string>

#include "util/table.hpp"

namespace px::gilgamesh {

struct technology_params {
  int target_year = 2020;

  // --- MIND (processor-in-memory) nodes ---
  unsigned pim_modules_per_chip = 16;
  unsigned mind_nodes_per_pim = 32;
  double mind_clock_ghz = 1.0;
  double mind_flops_per_clock = 2.0;  // fused multiply-add
  double mind_memory_mbytes = 8.0;    // embedded DRAM per MIND node
  double mind_mem_gbytes_per_s = 8.0; // local bandwidth per node
  double mind_watts = 0.15;

  // --- streaming dataflow accelerator ---
  unsigned dataflow_alus = 2048;
  double dataflow_clock_ghz = 2.2;
  double dataflow_flops_per_clock = 2.0;  // FMA per ALU
  double dataflow_sustained_fraction = 1.0;  // at high temporal locality
  double dataflow_peak_multiplier = 2.0;  // dual-issue theoretical peak
  double dataflow_watts = 60.0;

  // --- system composition ---
  std::uint64_t compute_chips = 100'000;
  std::uint64_t penultimate_chips = 100'000;
  double penultimate_gbytes_per_chip = 36.0;  // DRAM backing store
  double penultimate_watts_per_chip = 20.0;
  double chip_overhead_watts = 15.0;  // network, clocking, leakage

  // --- Data Vortex interconnect ---
  double vortex_hop_ns = 5.0;
  double vortex_port_gbytes_per_s = 40.0;
};

// Derived design-point figures (all arithmetic from technology_params).
struct design_point {
  explicit design_point(const technology_params& t = {});

  technology_params tech;

  // per chip
  unsigned mind_nodes_per_chip;
  double mind_tflops_per_chip;      // PIM aggregate
  double dataflow_tflops_per_chip;  // accelerator sustained
  double chip_sustained_tflops;     // ~10 TF claim
  double chip_peak_tflops;          // "substantially higher"
  double chip_memory_gbytes;        // PIM memory
  double chip_watts;

  // system
  double system_sustained_pflops;
  double system_peak_pflops;        // > 1 EF = 1000 PF claim
  double pim_memory_pbytes;
  double penultimate_pbytes;
  double total_memory_pbytes;       // 4 PB claim
  double system_megawatts;
  double vortex_diameter_hops;      // log2(compute chips)
  double bisection_tbytes_per_s;
};

// Renders the DP-1 reproduction table.
util::text_table design_point_table(const design_point& dp);

// Chip composition table (Figure 1 inventory).
util::text_table chip_composition_table(const design_point& dp);

}  // namespace px::gilgamesh
