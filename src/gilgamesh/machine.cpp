#include "gilgamesh/machine.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace px::gilgamesh {

const char* to_string(placement_policy p) noexcept {
  switch (p) {
    case placement_policy::mind_only: return "mind-only";
    case placement_policy::accel_only: return "accel-only";
    case placement_policy::adaptive: return "adaptive";
  }
  return "?";
}

chip_model::chip_model(chip_model_params params) : params_(params) {
  PX_ASSERT(params_.mind_nodes >= 1);
}

modality_result chip_model::run(const std::vector<task_spec>& tasks,
                                placement_policy policy,
                                double locality_threshold) const {
  sim::engine eng;
  // Stage-and-compute pipeline for the accelerator; a node pool for MIND.
  sim::resource staging(eng, 1);
  sim::resource accel(eng, 1);
  sim::resource mind(eng, params_.mind_nodes);

  modality_result res;
  double total_flops = 0.0;

  for (const auto& task : tasks) {
    total_flops += task.flops;
    const bool to_accel =
        policy == placement_policy::accel_only ||
        (policy == placement_policy::adaptive &&
         task.temporal_locality >= locality_threshold);

    if (to_accel) {
      res.tasks_on_accel += 1;
      const double staged_bytes =
          task.bytes * std::max(0.0, 1.0 - task.temporal_locality);
      const auto stage_time = static_cast<sim::time_ps>(
          (staged_bytes / params_.staging_bytes_per_ns) * sim::ns);
      const auto compute_time = static_cast<sim::time_ps>(
          (task.flops / params_.accel_flops_per_ns +
           params_.accel_task_overhead_ns) *
          sim::ns);
      // Percolation-style pipeline: staging for task k+1 overlaps compute
      // for task k; the accelerator itself never waits on a remote fetch.
      eng.schedule_after(0, [&staging, &accel, stage_time, compute_time] {
        staging.use(stage_time, [&accel, compute_time] {
          accel.use(compute_time, [] {});
        });
      });
    } else {
      res.tasks_on_mind += 1;
      // In-memory thread: max of compute and local streaming; temporal
      // locality is irrelevant to a processor living in its memory.
      const double busy_ns =
          std::max(task.flops / params_.mind_flops_per_ns,
                   task.bytes / params_.mind_bytes_per_ns) +
          params_.mind_task_overhead_ns;
      const auto service = static_cast<sim::time_ps>(busy_ns * sim::ns);
      eng.schedule_after(0, [&mind, service] { mind.use(service, [] {}); });
    }
  }

  eng.run();

  const double makespan_ns =
      static_cast<double>(eng.now()) / static_cast<double>(sim::ns);
  res.makespan_ns = makespan_ns;
  res.accel_busy_ns =
      static_cast<double>(accel.busy_time()) / static_cast<double>(sim::ns);
  res.staging_busy_ns =
      static_cast<double>(staging.busy_time()) / static_cast<double>(sim::ns);
  res.mind_busy_ns =
      static_cast<double>(mind.busy_time()) / static_cast<double>(sim::ns);
  if (makespan_ns > 0.0) {
    res.accel_utilization = res.accel_busy_ns / makespan_ns;
    res.mind_utilization =
        res.mind_busy_ns / (makespan_ns * params_.mind_nodes);
    res.throughput_gflops = total_flops / makespan_ns;  // flops/ns == GFLOPS
  }
  return res;
}

std::vector<task_spec> make_locality_workload(std::size_t n,
                                              double mean_locality,
                                              double flops_per_task,
                                              double bytes_per_task,
                                              std::uint64_t seed) {
  util::xoshiro256 rng(seed);
  std::vector<task_spec> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    task_spec t;
    t.flops = flops_per_task * rng.uniform(0.5, 1.5);
    t.bytes = bytes_per_task * rng.uniform(0.5, 1.5);
    // Locality spread of +/-0.2 around the mean, clamped to [0,1].
    t.temporal_locality =
        std::clamp(mean_locality + rng.uniform(-0.2, 0.2), 0.0, 1.0);
    tasks.push_back(t);
  }
  return tasks;
}

}  // namespace px::gilgamesh
