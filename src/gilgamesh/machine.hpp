// Discrete-event model of one Gilgamesh II chip's two execution modalities.
//
// Paper §3.2: "the architecture is heterogeneous with two computing
// structures designed to operate best at the two modalities of operation
// determined by degree of temporal locality.  At high temporal locality ...
// a streaming architecture based on dataflow control ... At low (or no)
// temporal locality ... an advanced Processor in Memory architecture called
// MIND ... short latencies and very high memory bandwidth with in-memory
// threads."
//
// The model (FIG-1 experiment): tasks carry (flops, operand bytes, temporal
// locality in [0,1]).
//   * Dataflow accelerator: enormous aggregate FLOP rate, but operands must
//     be staged through a bandwidth-limited channel; reuse (temporal
//     locality) is captured in local registers, so the staged volume is
//     bytes*(1-locality).  Staging and compute pipeline across tasks.
//   * MIND array: many in-memory nodes; each task's time is the max of its
//     compute time and its local-memory streaming time — locality does not
//     matter because the memory *is* local.
// A placement policy maps tasks to units; the adaptive policy uses the
// temporal-locality threshold, which is exactly Figure 1's design argument.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace px::gilgamesh {

struct chip_model_params {
  // Scaled-down chip (simulating all 512 nodes is possible but slow in
  // fine-grained sweeps; ratios follow the design point).
  unsigned mind_nodes = 64;
  double mind_flops_per_ns = 2.0;       // per node
  double mind_bytes_per_ns = 8.0;       // per node, local PIM bandwidth
  double mind_task_overhead_ns = 50.0;  // thread instantiation at a node

  double accel_flops_per_ns = 512.0;    // aggregate streaming rate
  double staging_bytes_per_ns = 64.0;   // channel into accelerator memory
  double accel_task_overhead_ns = 20.0; // stream reconfiguration
};

struct task_spec {
  double flops = 0.0;
  double bytes = 0.0;
  double temporal_locality = 0.0;  // fraction of operand reuse, [0,1]
};

enum class placement_policy {
  mind_only,
  accel_only,
  adaptive,  // locality >= threshold -> accelerator, else MIND
};

const char* to_string(placement_policy p) noexcept;

struct modality_result {
  double makespan_ns = 0.0;
  double accel_busy_ns = 0.0;      // accelerator compute occupancy
  double staging_busy_ns = 0.0;    // staging channel occupancy
  double mind_busy_ns = 0.0;       // summed across nodes
  double accel_utilization = 0.0;  // busy / makespan
  double mind_utilization = 0.0;   // busy / (makespan * nodes)
  std::uint64_t tasks_on_accel = 0;
  std::uint64_t tasks_on_mind = 0;
  double throughput_gflops = 0.0;  // total flops / makespan
};

class chip_model {
 public:
  explicit chip_model(chip_model_params params = {});

  // Runs the task set to completion under `policy`; deterministic.
  modality_result run(const std::vector<task_spec>& tasks,
                      placement_policy policy,
                      double locality_threshold = 0.5) const;

  const chip_model_params& params() const noexcept { return params_; }

 private:
  chip_model_params params_;
};

// Workload generator for the modality sweep: `n` tasks with the given mean
// temporal locality (clamped beta-like spread), fixed flops/bytes shape.
std::vector<task_spec> make_locality_workload(std::size_t n,
                                              double mean_locality,
                                              double flops_per_task,
                                              double bytes_per_task,
                                              std::uint64_t seed);

}  // namespace px::gilgamesh
