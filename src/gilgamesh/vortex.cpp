#include "gilgamesh/vortex.hpp"

#include <cmath>
#include <memory>

#include "sim/engine.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace px::gilgamesh {

network_model::network_model(network_params params) : params_(params) {
  PX_ASSERT(params_.nodes >= 2);
}

namespace {

// Route of intermediate router indices (into a per-topology router pool)
// for a message a -> b.
std::vector<std::size_t> route_of(const network_params& np, std::uint32_t a,
                                  std::uint32_t b) {
  std::vector<std::size_t> route;
  switch (np.topology) {
    case net::topology_kind::crossbar:
      break;  // direct: no intermediate stage
    case net::topology_kind::mesh2d: {
      const auto side = static_cast<std::uint32_t>(
          std::ceil(std::sqrt(static_cast<double>(np.nodes))));
      std::uint32_t x = a % side, y = a / side;
      const std::uint32_t bx = b % side, by = b / side;
      // Dimension-ordered XY: traverse the router of every intermediate
      // node (including the turn node, excluding source and destination).
      while (x != bx) {
        x = x < bx ? x + 1 : x - 1;
        route.push_back(y * side + x);
      }
      while (y != by) {
        y = y < by ? y + 1 : y - 1;
        route.push_back(y * side + x);
      }
      if (!route.empty()) route.pop_back();  // last hop is the ejection port
      break;
    }
    case net::topology_kind::vortex: {
      const auto levels = static_cast<std::size_t>(
          std::ceil(std::log2(static_cast<double>(np.nodes))));
      // Angle selection per level: full diversity (one router per node per
      // level); deflection routing spreads flows across angles.
      for (std::size_t lvl = 0; lvl < levels; ++lvl) {
        const std::uint64_t mix =
            (static_cast<std::uint64_t>(a) * 0x9e3779b97f4a7c15ull) ^
            (static_cast<std::uint64_t>(b) << 17) ^ (lvl * 0xbf58476d1ce4e5b9ull);
        route.push_back((lvl * np.nodes) + (mix % np.nodes));
      }
      break;
    }
  }
  return route;
}

std::size_t router_pool_size(const network_params& np) {
  switch (np.topology) {
    case net::topology_kind::crossbar:
      return 0;
    case net::topology_kind::mesh2d: {
      // Full side*side grid: XY routes may pass through grid positions
      // beyond the last populated node id.
      const auto side = static_cast<std::size_t>(
          std::ceil(std::sqrt(static_cast<double>(np.nodes))));
      return side * side;
    }
    case net::topology_kind::vortex: {
      const auto levels = static_cast<std::size_t>(
          std::ceil(std::log2(static_cast<double>(np.nodes))));
      return levels * np.nodes;
    }
  }
  return 0;
}

}  // namespace

network_result network_model::run(const traffic_params& traffic) const {
  sim::engine eng;
  const std::size_t n = params_.nodes;

  std::vector<std::unique_ptr<sim::resource>> inject;
  std::vector<std::unique_ptr<sim::resource>> eject;
  std::vector<std::unique_ptr<sim::resource>> routers;
  inject.reserve(n);
  eject.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    inject.push_back(std::make_unique<sim::resource>(eng, 1));
    eject.push_back(std::make_unique<sim::resource>(eng, 1));
  }
  const std::size_t pool = router_pool_size(params_);
  routers.reserve(pool);
  for (std::size_t i = 0; i < pool; ++i) {
    routers.push_back(std::make_unique<sim::resource>(eng, 1));
  }

  const auto port_service = static_cast<sim::time_ps>(
      static_cast<double>(traffic.message_bytes) / params_.port_bytes_per_ns *
      sim::ns);
  const auto router_service = static_cast<sim::time_ps>(
      static_cast<double>(traffic.message_bytes) /
          params_.router_bytes_per_ns * sim::ns);
  const auto hop_delay =
      static_cast<sim::time_ps>(params_.hop_ns * sim::ns);

  // Open-loop Poisson injection: inter-arrival = service / load.
  const double mean_gap_ns =
      (static_cast<double>(port_service) / static_cast<double>(sim::ns)) /
      std::max(1e-9, traffic.load);

  util::log_histogram latency;
  std::uint64_t total_hops = 0;
  std::uint64_t delivered = 0;

  util::xoshiro256 seeder(traffic.seed);

  struct message_walk {
    std::vector<std::size_t> route;
    std::size_t next = 0;
    std::uint32_t dest = 0;
    sim::time_ps born = 0;
  };

  // Forwarding continuation: traverse remaining routers then eject.
  std::function<void(std::shared_ptr<message_walk>)> advance =
      [&](std::shared_ptr<message_walk> mw) {
        if (mw->next < mw->route.size()) {
          const std::size_t r = mw->route[mw->next++];
          eng.schedule_after(hop_delay, [&, mw, r] {
            routers[r]->use(router_service, [&, mw] { advance(mw); });
          });
          return;
        }
        eng.schedule_after(hop_delay, [&, mw] {
          eject[mw->dest]->use(port_service, [&, mw] {
            latency.add(static_cast<double>(eng.now() - mw->born) /
                        static_cast<double>(sim::ns));
            total_hops += mw->route.size() + 1;
            delivered += 1;
          });
        });
      };

  for (std::uint32_t src = 0; src < n; ++src) {
    util::xoshiro256 rng = seeder.split(src);
    sim::time_ps when = 0;
    for (std::size_t k = 0; k < traffic.messages_per_node; ++k) {
      when += static_cast<sim::time_ps>(rng.exponential(mean_gap_ns) *
                                        sim::ns);
      std::uint32_t dst;
      if (traffic.hotspot_fraction > 0.0 &&
          rng.uniform01() < traffic.hotspot_fraction) {
        dst = 0;
      } else {
        dst = static_cast<std::uint32_t>(rng.below(n));
      }
      if (dst == src) dst = (dst + 1) % n;
      eng.schedule_at(when, [&, src, dst] {
        auto mw = std::make_shared<message_walk>();
        mw->route = route_of(params_, src, dst);
        mw->dest = dst;
        mw->born = eng.now();
        inject[src]->use(port_service, [&, mw] { advance(mw); });
      });
    }
  }

  eng.run();

  network_result res;
  res.offered_load = traffic.load;
  res.messages = delivered;
  res.mean_latency_ns = latency.stats().mean();
  res.p50_latency_ns = latency.p50();
  res.p99_latency_ns = latency.p99();
  res.p999_latency_ns = latency.p999();
  res.max_latency_ns = latency.stats().max();
  res.mean_hops =
      delivered > 0 ? static_cast<double>(total_hops) /
                          static_cast<double>(delivered)
                    : 0.0;
  const double elapsed_ns =
      static_cast<double>(eng.now()) / static_cast<double>(sim::ns);
  if (elapsed_ns > 0.0) {
    res.delivered_gbytes_per_s =
        static_cast<double>(delivered) *
        static_cast<double>(traffic.message_bytes) / elapsed_ns;
  }
  return res;
}

}  // namespace px::gilgamesh
