#include "gilgamesh/tech.hpp"

#include <cmath>

namespace px::gilgamesh {

design_point::design_point(const technology_params& t) : tech(t) {
  mind_nodes_per_chip = t.pim_modules_per_chip * t.mind_nodes_per_pim;

  mind_tflops_per_chip = static_cast<double>(mind_nodes_per_chip) *
                         t.mind_clock_ghz * t.mind_flops_per_clock / 1e3;
  dataflow_tflops_per_chip = static_cast<double>(t.dataflow_alus) *
                             t.dataflow_clock_ghz * t.dataflow_flops_per_clock *
                             t.dataflow_sustained_fraction / 1e3;
  chip_sustained_tflops = mind_tflops_per_chip + dataflow_tflops_per_chip;
  chip_peak_tflops = mind_tflops_per_chip +
                     dataflow_tflops_per_chip * t.dataflow_peak_multiplier;
  chip_memory_gbytes =
      static_cast<double>(mind_nodes_per_chip) * t.mind_memory_mbytes / 1024.0;
  chip_watts = static_cast<double>(mind_nodes_per_chip) * t.mind_watts +
               t.dataflow_watts + t.chip_overhead_watts;

  const auto chips = static_cast<double>(t.compute_chips);
  system_sustained_pflops = chip_sustained_tflops * chips / 1e3;
  system_peak_pflops = chip_peak_tflops * chips / 1e3;
  pim_memory_pbytes = chip_memory_gbytes * chips / 1e6;
  penultimate_pbytes = t.penultimate_gbytes_per_chip *
                       static_cast<double>(t.penultimate_chips) / 1e6;
  total_memory_pbytes = pim_memory_pbytes + penultimate_pbytes;
  system_megawatts =
      (chip_watts * chips +
       t.penultimate_watts_per_chip * static_cast<double>(t.penultimate_chips)) /
      1e6;
  vortex_diameter_hops = std::ceil(std::log2(chips));
  bisection_tbytes_per_s =
      t.vortex_port_gbytes_per_s * chips / 2.0 / 1e3;
}

util::text_table design_point_table(const design_point& dp) {
  util::text_table t({"quantity", "paper claim", "model value", "unit"});
  t.add_row("compute chips", "100,000",
            static_cast<std::int64_t>(dp.tech.compute_chips), "chips");
  t.add_row("MIND nodes / chip", "16 PIM x 32 = 512",
            static_cast<std::int64_t>(dp.mind_nodes_per_chip), "nodes");
  t.add_row("chip sustained", "~10", dp.chip_sustained_tflops, "TFLOPS");
  t.add_row("chip theoretical peak", "substantially higher",
            dp.chip_peak_tflops, "TFLOPS");
  t.add_row("system peak", "> 1000 (1 EF)", dp.system_peak_pflops, "PFLOPS");
  t.add_row("system sustained", "--", dp.system_sustained_pflops, "PFLOPS");
  t.add_row("PIM (MIND) memory", "main memory", dp.pim_memory_pbytes, "PB");
  t.add_row("penultimate store chips", "100,000",
            static_cast<std::int64_t>(dp.tech.penultimate_chips), "chips");
  t.add_row("penultimate store", "DRAM backing", dp.penultimate_pbytes, "PB");
  t.add_row("total memory", "4", dp.total_memory_pbytes, "PB");
  t.add_row("system power", "--", dp.system_megawatts, "MW");
  t.add_row("Data Vortex diameter", "low-diameter", dp.vortex_diameter_hops,
            "hops");
  t.add_row("bisection bandwidth", "--", dp.bisection_tbytes_per_s, "TB/s");
  return t;
}

util::text_table chip_composition_table(const design_point& dp) {
  const auto& t = dp.tech;
  util::text_table out({"unit", "count", "clock (GHz)", "contribution"});
  out.add_row("dataflow accelerator ALUs",
              static_cast<std::int64_t>(t.dataflow_alus),
              t.dataflow_clock_ghz,
              util::si_format(dp.dataflow_tflops_per_chip * 1e12, "FLOPS"));
  out.add_row("PIM modules", static_cast<std::int64_t>(t.pim_modules_per_chip),
              t.mind_clock_ghz, "memory + MIND hosts");
  out.add_row("MIND nodes",
              static_cast<std::int64_t>(dp.mind_nodes_per_chip),
              t.mind_clock_ghz,
              util::si_format(dp.mind_tflops_per_chip * 1e12, "FLOPS"));
  out.add_row("on-chip memory", static_cast<std::int64_t>(dp.mind_nodes_per_chip),
              0.0, util::si_format(dp.chip_memory_gbytes * 1e9, "B"));
  return out;
}

}  // namespace px::gilgamesh
