// Interconnect models: Data Vortex vs mesh vs crossbar (NET-1 experiment).
//
// Paper §3.2: "the system is assumed to be connected by the innovative Data
// Vortex network (invented by Coke Reed)".  The property the design point
// leans on is a low-diameter (O(log N)) fabric with enough internal path
// diversity that contention stays near the ideal crossbar's, at far lower
// cost.  The model:
//
//   * every message serializes through its source injection port and its
//     destination ejection port (bandwidth-limited resources);
//   * crossbar: no intermediate stage (1 hop of wire delay);
//   * 2-D mesh: XY routing through per-node router resources — Manhattan
//     distance hops, intermediate blocking;
//   * vortex: ceil(log2 N) deflection levels; each level offers one router
//     per node (angle diversity), chosen by a level/destination hash, so
//     internal blocking is rare but wire delay is logN hops.
//
// Traffic: Poisson open-loop injection at a configurable fraction of port
// capacity, uniform-random or hot-spot destinations.
#pragma once

#include <cstdint>
#include <vector>

#include "net/fabric.hpp"  // topology_kind + hop geometry
#include "util/histogram.hpp"

namespace px::gilgamesh {

struct network_params {
  std::size_t nodes = 64;
  net::topology_kind topology = net::topology_kind::vortex;
  double hop_ns = 5.0;                  // router/wire traversal
  double port_bytes_per_ns = 4.0;       // injection/ejection bandwidth
  double router_bytes_per_ns = 8.0;     // per intermediate router
};

struct traffic_params {
  double load = 0.5;              // fraction of per-port injection capacity
  std::size_t message_bytes = 256;
  double hotspot_fraction = 0.0;  // share of traffic aimed at node 0
  std::size_t messages_per_node = 200;
  std::uint64_t seed = 99;
};

struct network_result {
  double offered_load = 0.0;
  double mean_latency_ns = 0.0;
  double p50_latency_ns = 0.0;
  double p99_latency_ns = 0.0;
  double p999_latency_ns = 0.0;
  double max_latency_ns = 0.0;
  double delivered_gbytes_per_s = 0.0;  // aggregate accepted throughput
  std::uint64_t messages = 0;
  double mean_hops = 0.0;
};

class network_model {
 public:
  explicit network_model(network_params params = {});

  network_result run(const traffic_params& traffic) const;

  const network_params& params() const noexcept { return params_; }

 private:
  network_params params_;
};

}  // namespace px::gilgamesh
