// Composable parallel patterns on the ParalleX primitives.
//
// A small, nestable vocabulary — pipeline, map_reduce, task_pool — built
// entirely from the model's own parts and nothing else:
//
//   * stages and tasks are *tracked process children* (core/process.hpp),
//     so a pattern's completion is the process's Dijkstra–Scholten
//     termination event, and a stage may spawn the next stage on another
//     rank by splitting its own rank's credit (core/process_site.hpp);
//   * queues and completion are LCO dataflow: pipeline backpressure is a
//     counting-semaphore window refilled by parcels, map_reduce completion
//     is a promise fired by the reduction cell;
//   * placement is spawn_any steering — the runtime's rebalancer picks the
//     shallowest ready queue over the pattern's span.
//
// Every pattern works identically over the sim and tcp transports; bodies
// given to a pattern whose span crosses processes must be registered
// eagerly (PX_REGISTER_PIPELINE / PX_REGISTER_MAP_REDUCE /
// PX_REGISTER_PROCESS_CHILD) so action tables match at bootstrap.
// Vocabulary, nesting rules, and placement semantics: docs/patterns.md.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/action.hpp"
#include "core/process.hpp"
#include "core/runtime.hpp"
#include "lco/lco.hpp"
#include "patterns/counters.hpp"
#include "util/spinlock.hpp"

namespace px::patterns {

namespace detail {

// Distributed processes must be created at their primary rank: rotate the
// span so this rank leads.  Sim spans pass through unchanged.
inline std::vector<gas::locality_id> rotate_to_rank(
    core::runtime& rt, std::vector<gas::locality_id> span) {
  PX_ASSERT(!span.empty());
  if (!rt.distributed()) return span;
  const auto it = std::find(span.begin(), span.end(), rt.rank());
  PX_ASSERT_MSG(it != span.end(),
                "pattern span must include this rank (the tracking process "
                "is created here)");
  std::rotate(span.begin(), it, span.end());
  return span;
}

// ------------------------------------------------------------- pipeline

// Backpressure window: an AGAS object at the builder's rank.  push()
// acquires; the final stage's px.pattern.item_done parcel releases.
struct pipeline_window {
  explicit pipeline_window(std::int64_t capacity) : sem(capacity) {}
  lco::counting_semaphore sem;
};

// Registered handler for the window-refill parcel (patterns.cpp).
void pipeline_item_done(std::uint64_t window_bits);

// One stage invocation: run the body, hand the output to the next stage as
// a tracked child placed by spawn_any (a grandchild spawn when this stage
// runs off the primary — the credit-splitting path), or refill the window
// after the last stage.
template <auto... Fns>
struct stage_runner;

template <auto Fn, auto... Rest>
struct stage_runner<Fn, Rest...> {
  using In =
      std::tuple_element_t<0, typename core::action<Fn>::args_tuple>;

  static void run(std::uint64_t proc_bits, std::uint64_t window_bits,
                  In item) {
    if constexpr (sizeof...(Rest) > 0) {
      auto out = Fn(std::move(item));
      core::locality* here = core::this_locality();
      core::process_ref ref(here->rt(), proc_bits);
      ref.spawn_any<&stage_runner<Rest...>::run>(proc_bits, window_bits,
                                                 std::move(out));
    } else {
      Fn(std::move(item));
      core::apply<&pipeline_item_done>(gas::gid::from_bits(window_bits),
                                       window_bits);
    }
  }
};

// Registers the tracked-child wrapper of every stage suffix under
// deterministic names, so stage handoffs can land on any rank.
template <auto Fn, auto... Rest>
struct pipeline_registrar {
  static void ensure(const std::string& base) {
    using R = stage_runner<Fn, Rest...>;
    using W = core::detail::process_child<
        &R::run, typename core::action<&R::run>::args_tuple>;
    core::action<&W::run>::ensure_registered(
        (base + ".s" + std::to_string(1 + sizeof...(Rest))).c_str());
    if constexpr (sizeof...(Rest) > 0) {
      pipeline_registrar<Rest...>::ensure(base);
    }
  }
};

}  // namespace detail

// A linear pipeline whose stages are free functions Fn1: B(A), Fn2: C(B),
// ..., FnN: any(Y) — each item pushed flows through every stage, each hop
// a tracked child placed over `span` by spawn_any.  `window` bounds the
// number of items in flight (LCO backpressure).  close() seals the
// tracking process and waits for its termination event: every pushed item
// has then left every stage.
//
// Nesting: a stage body may build another pattern over its own rank;
// construct it with nested=true so runtime/patterns/nested counts it.
template <auto... Fns>
class pipeline {
  static_assert(sizeof...(Fns) >= 1, "a pipeline needs at least one stage");

 public:
  using input_type = typename detail::stage_runner<Fns...>::In;

  pipeline(core::runtime& rt, std::vector<gas::locality_id> span,
           std::int64_t window = 64, bool nested = false)
      : rt_(rt),
        window_id_(rt.new_object<detail::pipeline_window>(
            rt.distributed() ? rt.rank() : gas::locality_id{0}, window)),
        window_(rt.get_local<detail::pipeline_window>(
            rt.distributed() ? rt.rank() : gas::locality_id{0}, window_id_)),
        proc_(core::create_process(
            rt, detail::rotate_to_rank(rt, std::move(span)))) {
    pattern_counters::pipelines_built.fetch_add(1,
                                                std::memory_order_relaxed);
    if (nested) {
      pattern_counters::nested_patterns.fetch_add(1,
                                                  std::memory_order_relaxed);
    }
  }

  // Feeds one item into the first stage; blocks (fiber suspend) while the
  // in-flight window is full.
  void push(input_type item) {
    window_->sem.acquire();
    proc_->spawn_any<&detail::stage_runner<Fns...>::run>(
        proc_->id().bits(), window_id_.bits(), std::move(item));
  }

  // Seals the tracking process and waits until every pushed item has
  // completed every stage (the process termination LCO).
  void close() {
    proc_->seal();
    proc_->terminated().get();
  }

  core::process& proc() noexcept { return *proc_; }

 private:
  core::runtime& rt_;
  gas::gid window_id_;
  std::shared_ptr<detail::pipeline_window> window_;
  std::shared_ptr<core::process> proc_;
};

// Registers every stage-suffix wrapper of a pipeline<Fns...> eagerly —
// required whenever the pipeline's span crosses processes.  `name` must be
// a string literal, identical on every rank.
#define PX_REGISTER_PIPELINE(name, ...)                                      \
  namespace {                                                                \
  [[maybe_unused]] const bool PX_DETAIL_CONCAT(px_pipeline_registration_,    \
                                               __COUNTER__) =                \
      (::px::patterns::detail::pipeline_registrar<__VA_ARGS__>::ensure(      \
           std::string("px.pipe.") + name),                                  \
       true);                                                                \
  }

// ----------------------------------------------------------- map_reduce

namespace detail {

// Reduction cell: an AGAS object at the caller's rank.  Partials arrive as
// parcels (reduce_into); the promise fires when the last chunk lands.
template <typename R>
struct reduce_cell {
  explicit reduce_cell(std::uint64_t chunks) : remaining(chunks) {}
  util::spinlock lock;
  bool has_value = false;
  R acc{};
  std::uint64_t remaining;
  lco::promise<R> done;
};

template <auto Reduce, typename R>
struct reduce_into {
  static void run(std::uint64_t cell_bits, R partial) {
    core::locality* here = core::this_locality();
    auto obj = here->get_object(gas::gid::from_bits(cell_bits));
    PX_ASSERT_MSG(obj != nullptr,
                  "map_reduce partial landed off the cell's rank");
    auto cell = std::static_pointer_cast<reduce_cell<R>>(obj);
    bool fire = false;
    R result{};
    {
      std::lock_guard g(cell->lock);
      cell->acc = cell->has_value
                      ? Reduce(std::move(cell->acc), std::move(partial))
                      : std::move(partial);
      cell->has_value = true;
      PX_ASSERT(cell->remaining > 0);
      fire = (--cell->remaining == 0);
      if (fire) result = cell->acc;
    }
    if (fire) cell->done.set_value(std::move(result));
  }
};

// One map chunk: compute the partial where the chunk was placed, then ship
// it to the reduction cell as an untracked parcel.
template <auto Map, auto Reduce>
struct mr_child {
  using R = typename core::action<Map>::result_type;

  static void run(std::uint64_t cell_bits, std::uint64_t ctx,
                  std::uint64_t begin, std::uint64_t end) {
    R partial = Map(ctx, begin, end);
    core::apply<&reduce_into<Reduce, R>::run>(
        gas::gid::from_bits(cell_bits), cell_bits, std::move(partial));
  }
};

}  // namespace detail

// Fans [0, n) out in `chunk`-sized tracked children over `span` (spawn_any
// placement), reducing the per-chunk partials with Reduce at the caller's
// rank.  Map is `R map(uint64 ctx, uint64 begin, uint64 end)` — `ctx` is
// an opaque word for workload parameters (gid bits, a table key, ...);
// Reduce is `R reduce(R, R)`, associative.  Blocks until the result is
// complete; returns it.  Register PX_REGISTER_MAP_REDUCE(map, reduce) when
// the span crosses processes.
template <auto Map, auto Reduce>
typename core::action<Map>::result_type map_reduce(
    core::runtime& rt, std::vector<gas::locality_id> span, std::uint64_t n,
    std::uint64_t chunk, std::uint64_t ctx = 0, bool nested = false) {
  using R = typename core::action<Map>::result_type;
  PX_ASSERT(chunk > 0);
  pattern_counters::map_reduce_jobs.fetch_add(1, std::memory_order_relaxed);
  if (nested) {
    pattern_counters::nested_patterns.fetch_add(1,
                                                std::memory_order_relaxed);
  }
  if (n == 0) return R{};
  const std::uint64_t chunks = (n + chunk - 1) / chunk;
  const gas::locality_id cell_home =
      rt.distributed() ? rt.rank() : gas::locality_id{0};
  const gas::gid cell =
      rt.new_object<detail::reduce_cell<R>>(cell_home, chunks);
  auto cellp = rt.get_local<detail::reduce_cell<R>>(cell_home, cell);
  auto result = cellp->done.get_future();

  auto proc =
      core::create_process(rt, detail::rotate_to_rank(rt, std::move(span)));
  for (std::uint64_t b = 0; b < n; b += chunk) {
    pattern_counters::map_tasks.fetch_add(1, std::memory_order_relaxed);
    proc->spawn_any<&detail::mr_child<Map, Reduce>::run>(
        cell.bits(), ctx, b, std::min(n, b + chunk));
  }
  proc->seal();
  // Two waits, deliberately: the termination event returns the credits
  // (all children retired), the cell promise covers the reduce parcels
  // that may trail them.
  proc->terminated().get();
  return result.get();
}

// Registers map_reduce<map, reduce>'s wire surface (the tracked chunk
// wrapper and the reduction parcel) eagerly for cross-process spans.
// Spelled out rather than delegated to PX_REGISTER_*_AS: the template
// argument commas would split a nested macro's argument list.
#define PX_REGISTER_MAP_REDUCE(map_fn, reduce_fn)                            \
  namespace {                                                                \
  [[maybe_unused]] const ::px::parcel::action_id PX_DETAIL_CONCAT(           \
      px_mr_registration_, __COUNTER__) =                                    \
      ::px::core::action<                                                    \
          &::px::core::detail::process_child<                                \
              &::px::patterns::detail::mr_child<&map_fn, &reduce_fn>::run,   \
              typename ::px::core::action<&::px::patterns::detail::mr_child< \
                  &map_fn, &reduce_fn>::run>::args_tuple>::run>::            \
          ensure_registered("px.mr." #map_fn);                               \
  [[maybe_unused]] const ::px::parcel::action_id PX_DETAIL_CONCAT(           \
      px_mrr_registration_, __COUNTER__) =                                   \
      ::px::core::action<                                                    \
          &::px::patterns::detail::reduce_into<                              \
              &reduce_fn,                                                    \
              typename ::px::core::action<&map_fn>::result_type>::run>::     \
          ensure_registered("px.mrr." #map_fn);                              \
  }

// ------------------------------------------------------------ task_pool

// The thinnest pattern: an unordered pool of tracked tasks over a span.
// submit<Fn>(args...) places a typed child via spawn_any; wait() seals and
// blocks until every task (and any tracked descendants) retired.  One-shot:
// build a new pool after wait().
class task_pool {
 public:
  task_pool(core::runtime& rt, std::vector<gas::locality_id> span,
            bool nested = false)
      : proc_(core::create_process(
            rt, detail::rotate_to_rank(rt, std::move(span)))) {
    if (nested) {
      pattern_counters::nested_patterns.fetch_add(1,
                                                  std::memory_order_relaxed);
    }
  }

  template <auto Fn, typename... Args>
  void submit(Args&&... args) {
    pattern_counters::pool_tasks.fetch_add(1, std::memory_order_relaxed);
    proc_->spawn_any<Fn>(std::forward<Args>(args)...);
  }

  // Closure form (local-only in distributed mode, like process::spawn_any).
  void submit(std::function<void()> fn) {
    pattern_counters::pool_tasks.fetch_add(1, std::memory_order_relaxed);
    proc_->spawn_any(std::move(fn));
  }

  void wait() {
    proc_->seal();
    proc_->terminated().get();
  }

  core::process& proc() noexcept { return *proc_; }

 private:
  std::shared_ptr<core::process> proc_;
};

}  // namespace px::patterns
