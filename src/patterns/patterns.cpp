#include "patterns/patterns.hpp"

#include "core/action.hpp"

namespace px::patterns {

std::atomic<std::uint64_t> pattern_counters::pipelines_built{0};
std::atomic<std::uint64_t> pattern_counters::pipeline_items{0};
std::atomic<std::uint64_t> pattern_counters::map_reduce_jobs{0};
std::atomic<std::uint64_t> pattern_counters::map_tasks{0};
std::atomic<std::uint64_t> pattern_counters::pool_tasks{0};
std::atomic<std::uint64_t> pattern_counters::nested_patterns{0};

namespace detail {

// The last stage's completion parcel: lands at the window's home rank,
// refills one backpressure slot.  Eagerly registered — pipelines running
// over tcp send these cross-process from any rank of the span.
void pipeline_item_done(std::uint64_t window_bits) {
  core::locality* here = core::this_locality();
  auto obj = here->get_object(gas::gid::from_bits(window_bits));
  PX_ASSERT_MSG(obj != nullptr,
                "pipeline window parcel landed off its home");
  std::static_pointer_cast<pipeline_window>(obj)->sem.release(1);
  pattern_counters::pipeline_items.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

PX_REGISTER_ACTION_AS(px::patterns::detail::pipeline_item_done,
                      "px.pattern.item_done")

}  // namespace px::patterns
