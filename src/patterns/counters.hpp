// Introspection counters for the parallel-pattern library (src/patterns).
//
// Deliberately dependency-free (only <atomic>/<cstdint>) so core/runtime can
// include it to register the counters without pulling the pattern templates
// into the core layer — same arrangement as lco::lco_counters.
#pragma once

#include <atomic>
#include <cstdint>

namespace px::patterns {

struct pattern_counters {
  // pipeline<> instances constructed.
  static std::atomic<std::uint64_t> pipelines_built;
  // Items that completed every pipeline stage.
  static std::atomic<std::uint64_t> pipeline_items;
  // map_reduce jobs run to completion.
  static std::atomic<std::uint64_t> map_reduce_jobs;
  // Map chunks spawned across all map_reduce jobs.
  static std::atomic<std::uint64_t> map_tasks;
  // Tasks submitted through task_pool.
  static std::atomic<std::uint64_t> pool_tasks;
  // Patterns constructed inside another pattern's task (declared via the
  // nested flag; see docs/patterns.md for why detection is declarative).
  static std::atomic<std::uint64_t> nested_patterns;
};

}  // namespace px::patterns
