#include "net/tcp_transport.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <mutex>

#include "net/socket_util.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace px::net {

namespace {

// Data-connection hello: [u32 magic][u32 sender rank], little-endian.
constexpr std::uint32_t kHelloMagic = 0x49485850u;  // "PXHI"
constexpr std::size_t kHelloBytes = 8;

// Progress-thread poll timeout: bounds idle-callback staleness (the
// coalescing flush backstop) the same way the fabric's 200us tick does —
// poll(2) granularity is 1ms, still far below the quiescence timescale.
constexpr int kPollTimeoutMs = 1;

}  // namespace

tcp_transport::tcp_transport(tcp_params params) : params_(params) {
  PX_ASSERT(params_.nranks >= 1);
  PX_ASSERT_MSG(params_.rank < params_.nranks,
                "tcp_transport: rank out of range");
  const auto [host, port] = split_host_port(params_.listen);
  listen_fd_ = detail::make_listener(host, port);
  detail::set_nonblocking(listen_fd_);
  listen_addr_ = detail::local_address(listen_fd_);
  PX_ASSERT_MSG(pipe(wake_fds_) == 0, "tcp_transport: pipe() failed");
  detail::set_nonblocking(wake_fds_[0]);
  detail::set_nonblocking(wake_fds_[1]);
  init_peer_books(params_.nranks, params_.rank);
  for (std::uint32_t r = 0; r < params_.nranks; ++r) {
    peers_.push_back(std::make_unique<peer>());
    peers_.back()->rank = r;
    peers_.back()->assembler =
        parcel::frame_assembler(params_.max_frame_bytes);
  }
}

std::string tcp_transport::listen_address() const { return listen_addr_; }

void tcp_transport::connect_peers(const std::vector<std::string>& table) {
  PX_ASSERT_MSG(table.size() == params_.nranks,
                "tcp_transport: endpoint table size != nranks");
  PX_ASSERT_MSG(!progress_.joinable(), "tcp_transport: mesh already up");

  // Dial every lower rank (their listeners are up: the bootstrap exchange
  // completed before any table was handed out) and introduce ourselves.
  for (std::uint32_t r = 0; r < params_.rank; ++r) {
    const auto [host, port] = split_host_port(table[r]);
    std::uint64_t attempts = 0;
    const int fd =
        detail::dial(host, port, params_.connect_timeout_ms, &attempts);
    PX_ASSERT_MSG(fd >= 0, "tcp_transport: cannot reach peer data endpoint");
    peers_[r]->reconnects.store(attempts - 1, std::memory_order_relaxed);
    std::uint8_t hello[kHelloBytes];
    detail::put_u32(hello, kHelloMagic);
    detail::put_u32(hello + 4, params_.rank);
    PX_ASSERT_MSG(detail::send_all(fd, hello, sizeof hello),
                  "tcp_transport: hello send failed");
    peers_[r]->fd = fd;
  }

  // Accept every higher rank; the hello tells us who dialed in.
  std::uint32_t expected = params_.nranks - params_.rank - 1;
  std::uint64_t waited_ms = 0;
  while (expected > 0) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = poll(&pfd, 1, 100);
    if (rc == 0) {
      waited_ms += 100;
      PX_ASSERT_MSG(waited_ms < params_.connect_timeout_ms,
                    "tcp_transport: timed out waiting for peers to dial in");
      continue;
    }
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;  // spurious wakeup
    std::uint8_t hello[kHelloBytes];
    PX_ASSERT_MSG(detail::recv_all(fd, hello, sizeof hello),
                  "tcp_transport: hello recv failed");
    PX_ASSERT_MSG(detail::get_u32(hello) == kHelloMagic,
                  "tcp_transport: bad hello magic on data connection");
    const std::uint32_t r = detail::get_u32(hello + 4);
    PX_ASSERT_MSG(r > params_.rank && r < params_.nranks,
                  "tcp_transport: hello rank out of range");
    PX_ASSERT_MSG(peers_[r]->fd < 0, "tcp_transport: duplicate peer hello");
    peers_[r]->fd = fd;
    expected -= 1;
  }

  for (auto& p : peers_) {
    if (p->fd < 0) continue;
    detail::set_nodelay(p->fd);
    detail::set_nonblocking(p->fd);
    p->open = true;
  }
  PX_LOG_INFO("tcp transport up: rank %u/%u at %s", params_.rank,
              params_.nranks, listen_addr_.c_str());
  progress_ = std::thread([this] { progress_loop(); });
}

tcp_transport::~tcp_transport() {
  stopping_.store(true, std::memory_order_release);
  if (progress_.joinable()) {
    wake_progress();
    progress_.join();
  }
  for (auto& p : peers_) {
    if (p->fd >= 0) close(p->fd);
  }
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_fds_[0] >= 0) close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) close(wake_fds_[1]);
}

void tcp_transport::set_handler(endpoint_id ep, handler h) {
  PX_ASSERT_MSG(ep == params_.rank,
                "tcp_transport: only this process's rank takes a handler");
  PX_ASSERT_MSG(!traffic_started_.load(std::memory_order_acquire),
                "set_handler after traffic started");
  handler_ = std::move(h);
}

void tcp_transport::set_idle_callback(std::function<void()> cb) {
  PX_ASSERT_MSG(!traffic_started_.load(std::memory_order_acquire),
                "set_idle_callback after traffic started");
  idle_cb_ = std::move(cb);
}

void tcp_transport::send(message m) {
  PX_ASSERT_MSG(m.dest < params_.nranks, "tcp send: dest out of range");
  PX_ASSERT_MSG(m.dest != params_.rank,
                "tcp send: local delivery never touches the transport");
  PX_ASSERT_MSG(m.source == params_.rank, "tcp send: source must be us");
  PX_ASSERT(m.units >= 1);
  traffic_started_.store(true, std::memory_order_release);
  const std::uint32_t units = m.units;
  account_sent(m.dest, units);
  if (fault_drop_units(m.dest, units) > 0) {
    // Injected drop (PX_FAULT): the units retire into the conservation
    // books exactly like a dead-link drop, so quiescence still balances.
    sent_total_.fetch_add(units, std::memory_order_acq_rel);
    dropped_total_.fetch_add(units, std::memory_order_acq_rel);
    account_dropped(m.dest, units);
    pool_.release(std::move(m.payload));
    return;
  }
  sent_total_.fetch_add(units, std::memory_order_acq_rel);
  in_flight_.fetch_add(units, std::memory_order_acq_rel);
  msgs_tx_.fetch_add(1, std::memory_order_relaxed);
  parcels_tx_.fetch_add(units, std::memory_order_relaxed);
  bytes_tx_.fetch_add(m.payload.size(), std::memory_order_relaxed);

  peer& p = *peers_[m.dest];
  bool dropped = false;
  {
    std::lock_guard lock(p.send_lock);
    if (p.open || !progress_.joinable()) {
      // Queued before the mesh is up only in tests driving the transport
      // directly; the runtime's bootstrap barrier forbids it.
      p.sendq.push_back(outgoing{std::move(m.payload), 0, units});
    } else {
      dropped = true;
    }
  }
  if (dropped) {
    // A dead link mid-run: drop (with the drop recorded so the quiescence
    // books stay balanced) rather than wedge every drain() forever.
    dropped_total_.fetch_add(units, std::memory_order_acq_rel);
    account_dropped(m.dest, units);
    retire_in_flight(units);
    PX_LOG_WARN("tcp send: peer %u link is down, dropping %u parcels",
                m.dest, units);
    return;
  }
  wake_progress();
}

void tcp_transport::wake_progress() {
  const std::uint8_t byte = 1;
  // EAGAIN means a wakeup is already pending; any error is ignorable here.
  [[maybe_unused]] const ssize_t n = write(wake_fds_[1], &byte, 1);
}

bool tcp_transport::pump_sends(peer& p) {
  for (;;) {
    outgoing* front = nullptr;
    {
      std::lock_guard lock(p.send_lock);
      if (p.sendq.empty()) return true;
      front = &p.sendq.front();  // deque: push_back never moves the front
    }
    while (front->offset < front->buf.size()) {
      const ssize_t n =
          ::send(p.fd, front->buf.data() + front->offset,
                 front->buf.size() - front->offset, MSG_NOSIGNAL);
      if (n > 0) {
        front->offset += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      if (n < 0 && errno == EINTR) continue;
      const bool expected = stopping_.load(std::memory_order_acquire) ||
                            disconnects_expected();
      close_peer(p, expected ? nullptr : "send error");
      return false;
    }
    const std::uint32_t units = front->units;
    std::vector<std::byte> done = std::move(front->buf);
    {
      std::lock_guard lock(p.send_lock);
      p.sendq.pop_front();
    }
    pool_.release(std::move(done));
    retire_in_flight(units);
  }
}

void tcp_transport::retire_in_flight(std::uint64_t units) {
  if (in_flight_.fetch_sub(units, std::memory_order_acq_rel) == units) {
    { std::lock_guard lk(drain_mutex_); }
    drained_cv_.notify_all();
  }
}

bool tcp_transport::pump_reads(peer& p) {
  for (;;) {
    const ssize_t n = ::recv(p.fd, scratch_.data(), scratch_.size(), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      const bool expected = stopping_.load(std::memory_order_acquire) ||
                            disconnects_expected();
      close_peer(p, expected ? nullptr : "recv error");
      return false;
    }
    if (n == 0) {
      // Orderly EOF: normal during shutdown, a lost peer otherwise.
      const bool expected = stopping_.load(std::memory_order_acquire) ||
                            disconnects_expected();
      close_peer(p, expected ? nullptr : "peer closed mid-run");
      return false;
    }
    bytes_rx_.fetch_add(static_cast<std::uint64_t>(n),
                        std::memory_order_relaxed);
    if (!p.assembler.feed(std::span<const std::byte>(scratch_.data(),
                                                     static_cast<std::size_t>(
                                                         n)))) {
      close_peer(p, "garbage on parcel stream");
      return false;
    }
    while (auto frame = p.assembler.next_frame()) {
      const std::uint32_t units = parcel::frame_count(*frame);
      if (units == 0) continue;  // empty frame: nothing to deliver
      message m;
      m.source = p.rank;
      m.dest = params_.rank;
      m.units = units;
      m.payload = std::move(*frame);
      msgs_rx_.fetch_add(1, std::memory_order_relaxed);
      handler_(m);
      if (m.payload.capacity() > 0) pool_.release(std::move(m.payload));
      // Counted only after the handler returned: "delivered" in the
      // distributed quiescence books means the parcels' local effects
      // (thread spawns, counter bumps) are already visible.
      received_total_.fetch_add(units, std::memory_order_acq_rel);
      account_delivered(p.rank, units);
    }
  }
}

void tcp_transport::close_peer(peer& p, const char* why) {
  if (!p.open) return;
  if (why != nullptr) {
    PX_LOG_WARN("tcp transport rank %u: closing link to peer %u (%s)",
                params_.rank, p.rank, why);
  }
  std::uint64_t orphaned = 0;
  {
    std::lock_guard lock(p.send_lock);
    p.open = false;
    for (const outgoing& o : p.sendq) orphaned += o.units;
    p.sendq.clear();
  }
  if (orphaned > 0) {
    // Unsendable parcels must leave both the in-flight books (or drain()
    // wedges) and the quiescence sent balance (or quiesce rounds spin).
    dropped_total_.fetch_add(orphaned, std::memory_order_acq_rel);
    account_dropped(p.rank, orphaned);
    retire_in_flight(orphaned);
  }
  close(p.fd);
  p.fd = -1;
  // Shared disconnect books last, with the fold complete and no locks
  // held: an unexpected close marks the peer dead, freezes its lost-unit
  // figure, and fires the runtime's death handler.
  note_peer_closed(p.rank, why == nullptr);
}

void tcp_transport::close_link(std::size_t rank) {
  // External death verdict: the progress thread owns the sockets, so just
  // flag the rank and kick the poll loop.
  pending_dead_.fetch_or(1ull << rank, std::memory_order_acq_rel);
  wake_progress();
}

void tcp_transport::progress_loop() {
  scratch_.resize(64 * 1024);
  std::vector<pollfd> pfds;
  std::vector<peer*> pfd_peers;
  for (;;) {
    if (stopping_.load(std::memory_order_acquire) &&
        in_flight_.load(std::memory_order_acquire) == 0) {
      return;  // every accepted parcel reached the kernel: graceful drain
    }
    // External death verdicts (mark_peer_dead) land here so every
    // socket close runs on the thread that owns the sockets.
    if (const std::uint64_t doomed =
            pending_dead_.exchange(0, std::memory_order_acq_rel)) {
      for (std::size_t r = 0; r < peers_.size(); ++r) {
        if (((doomed >> r) & 1u) && peers_[r]->open) {
          close_peer(*peers_[r], "peer declared dead by the control plane");
        }
      }
    }
    pfds.clear();
    pfd_peers.clear();
    pfds.push_back(pollfd{wake_fds_[0], POLLIN, 0});
    pfd_peers.push_back(nullptr);
    for (auto& p : peers_) {
      if (!p->open) continue;
      short events = POLLIN;
      {
        std::lock_guard lock(p->send_lock);
        if (!p->sendq.empty()) events |= POLLOUT;
      }
      pfds.push_back(pollfd{p->fd, events, 0});
      pfd_peers.push_back(p.get());
    }
    const int rc = poll(pfds.data(), pfds.size(), kPollTimeoutMs);
    if (rc < 0) {
      PX_ASSERT_MSG(errno == EINTR, "tcp transport: poll() failed");
      continue;
    }
    if (pfds[0].revents & POLLIN) {
      std::uint8_t sink[256];
      while (read(wake_fds_[0], sink, sizeof sink) > 0) {
      }
    }
    for (std::size_t i = 1; i < pfds.size(); ++i) {
      peer* p = pfd_peers[i];
      if (!p->open) continue;  // closed by an earlier pump this pass
      if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        if (!pump_reads(*p)) continue;
      }
      if (pfds[i].revents & POLLOUT) pump_sends(*p);
    }
    // Senders that enqueued while we were busy need no separate signal:
    // the wake pipe byte keeps poll from sleeping, and POLLOUT interest is
    // recomputed from the queues every pass.  An idle pass (nothing
    // readable, nothing queued) runs the flush backstop.
    if (rc == 0 && idle_cb_) idle_cb_();
  }
}

void tcp_transport::drain() {
  std::unique_lock lock(drain_mutex_);
  drained_cv_.wait(lock, [&] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

endpoint_stats tcp_transport::stats(endpoint_id ep) const {
  PX_ASSERT_MSG(ep == params_.rank,
                "tcp stats: remote ranks keep their own books");
  endpoint_stats out;
  out.messages_sent = msgs_tx_.load(std::memory_order_relaxed);
  out.parcels_sent = parcels_tx_.load(std::memory_order_relaxed);
  out.messages_received = msgs_rx_.load(std::memory_order_relaxed);
  out.bytes_sent = bytes_tx_.load(std::memory_order_relaxed);
  out.bytes_received = bytes_rx_.load(std::memory_order_relaxed);
  return out;
}

link_counters tcp_transport::link(endpoint_id ep) const {
  PX_ASSERT_MSG(ep == params_.rank,
                "tcp link: remote ranks keep their own books");
  link_counters out;
  out.bytes_tx = bytes_tx_.load(std::memory_order_relaxed);
  out.bytes_rx = bytes_rx_.load(std::memory_order_relaxed);
  out.msgs_tx = msgs_tx_.load(std::memory_order_relaxed);
  out.msgs_rx = msgs_rx_.load(std::memory_order_relaxed);
  return out;
}

std::vector<extra_link_counter> tcp_transport::extra_link_counters(
    endpoint_id ep) const {
  PX_ASSERT_MSG(ep == params_.rank,
                "tcp link: remote ranks keep their own books");
  std::uint64_t reconnects = 0;
  for (const auto& p : peers_) {
    reconnects += p->reconnects.load(std::memory_order_relaxed);
  }
  return {{"reconnects", reconnects},
          {"peer_failed", peers_failed_total()},
          {"parcels_lost", parcels_lost_total()}};
}

}  // namespace px::net
