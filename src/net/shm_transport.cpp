#include "net/shm_transport.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include <linux/futex.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include "net/socket_util.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace px::net {

namespace detail {

// One SPSC direction.  `tail` (producer) and `head` (consumer) are
// monotonic byte offsets on separate cache lines so the hot path never
// false-shares; `consumed_units` closes the loop for in_flight(): the
// consumer bumps it only after its handler returned.
struct shm_ring {
  alignas(64) std::atomic<std::uint64_t> tail;
  alignas(64) std::atomic<std::uint64_t> head;
  alignas(64) std::atomic<std::uint64_t> consumed_units;
  alignas(64) std::atomic<std::uint32_t> producer_closed;
  std::atomic<std::uint32_t> consumer_closed;
};

// Pair segment: header + data[2][ring_bytes].  rings[0]/data #0 carry
// lower-rank -> higher-rank traffic.
struct shm_pair_hdr {
  std::uint32_t magic;
  std::uint32_t ring_bytes;
  std::uint32_t lo_rank;
  std::uint32_t hi_rank;
  std::atomic<std::uint32_t> attached;  // opener raises; creator unlinks
  std::atomic<std::int32_t> pids[2];    // [0]=lo, [1]=hi (liveness probes)
  shm_ring rings[2];
};

// Per-rank doorbell: `seq` is the futex word every peer bumps on any event
// for this rank (new record, space freed, consumption progress, closure);
// `sleeping` is the Dekker flag that lets senders skip FUTEX_WAKE while
// the receiver is spinning.
struct shm_doorbell {
  std::uint32_t magic;
  std::atomic<std::uint32_t> seq;
  std::atomic<std::uint32_t> sleeping;
  std::atomic<std::uint32_t> attached;  // openers count in; owner unlinks
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free);
static_assert(std::atomic<std::uint32_t>::is_always_lock_free);

}  // namespace detail

namespace {

constexpr std::uint32_t kPairMagic = 0x4D535850u;      // "PXSM"
constexpr std::uint32_t kDoorbellMagic = 0x42445850u;  // "PXDB"
constexpr std::uint32_t kWrapMarker = 0xFFFFFFFFu;
constexpr std::size_t kRecHdr = 8;  // [u32 len][u32 units]

std::size_t align8(std::size_t n) { return (n + 7u) & ~std::size_t{7}; }
std::size_t align64(std::size_t n) { return (n + 63u) & ~std::size_t{63}; }

std::size_t pair_segment_bytes(std::size_t ring_bytes) {
  return align64(sizeof(detail::shm_pair_hdr)) + 2 * ring_bytes;
}

std::byte* pair_data(detail::shm_pair_hdr* h, int dir, std::size_t ring_bytes) {
  return reinterpret_cast<std::byte*>(h) +
         align64(sizeof(detail::shm_pair_hdr)) +
         static_cast<std::size_t>(dir) * ring_bytes;
}

std::string pair_name(const std::string& lo_token, std::uint32_t hi_rank) {
  return lo_token + ".p" + std::to_string(hi_rank);
}

// Unique per transport *instance* (tests run two ranks in one process).
std::string make_token(std::uint32_t rank) {
  static std::atomic<std::uint32_t> counter{0};
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  char buf[96];
  std::snprintf(buf, sizeof buf, "px.%d-%u-%u-%llx",
                static_cast<int>(::getpid()), rank,
                counter.fetch_add(1, std::memory_order_relaxed),
                static_cast<unsigned long long>(
                    ts.tv_sec * 1'000'000'000ll + ts.tv_nsec));
  return buf;
}

// Cross-process futex: no FUTEX_PRIVATE_FLAG — the word lives in a shared
// mapping.  A stale `expect` makes the kernel return EAGAIN immediately,
// which is the lost-wakeup proof for the doorbell protocol.
int futex_wait(std::atomic<std::uint32_t>* addr, std::uint32_t expect,
               std::int64_t timeout_ns) {
  timespec ts{};
  ts.tv_sec = timeout_ns / 1'000'000'000;
  ts.tv_nsec = timeout_ns % 1'000'000'000;
  return static_cast<int>(::syscall(SYS_futex, addr, FUTEX_WAIT, expect, &ts,
                                    nullptr, 0));
}

void futex_wake_one(std::atomic<std::uint32_t>* addr) {
  ::syscall(SYS_futex, addr, FUTEX_WAKE, 1, nullptr, nullptr, 0);
}

}  // namespace

shm_transport::shm_transport(shm_params params) : params_(params) {
  PX_ASSERT_MSG(params_.nranks >= 1 && params_.rank < params_.nranks,
                "shm_transport: rank out of range");
  PX_ASSERT_MSG(params_.ring_bytes >= 4096 && params_.ring_bytes % 8 == 0,
                "shm_transport: ring_bytes must be >= 4096 and 8-aligned");
  if (params_.spin_us < 0) {
    // Spinning only pays when every rank's progress thread can own a core;
    // on an oversubscribed host it just steals cycles from the peer we are
    // waiting for, so fall back to (nearly) immediate futex sleep.
    const unsigned cores = std::thread::hardware_concurrency();
    params_.spin_us = cores >= 2u * params_.nranks ? 50 : 2;
  }
  token_ = make_token(params_.rank);
  init_peer_books(params_.nranks, params_.rank);

  own_db_seg_ =
      util::shm_segment::create(token_, sizeof(detail::shm_doorbell));
  own_db_ = new (own_db_seg_.data()) detail::shm_doorbell{};
  own_db_->magic = kDoorbellMagic;

  peers_.resize(params_.nranks);
  for (std::uint32_t r = 0; r < params_.nranks; ++r) {
    peers_[r] = std::make_unique<peer>();
    peers_[r]->rank = r;
  }
  // The lower rank of each pair creates the segment *now*, pre-exchange,
  // named after its own token — the only name peers can derive from the
  // bootstrap table.
  for (std::uint32_t r = params_.rank + 1; r < params_.nranks; ++r) {
    peer& p = *peers_[r];
    p.seg = util::shm_segment::create(pair_name(token_, r),
                                      pair_segment_bytes(params_.ring_bytes));
    auto* h = new (p.seg.data()) detail::shm_pair_hdr{};
    h->magic = kPairMagic;
    h->ring_bytes = static_cast<std::uint32_t>(params_.ring_bytes);
    h->lo_rank = params_.rank;
    h->hi_rank = r;
    h->pids[0].store(static_cast<std::int32_t>(::getpid()),
                     std::memory_order_release);
    p.hdr = h;
    p.cap = params_.ring_bytes;
    p.out = &h->rings[0];  // we are the lower rank
    p.in = &h->rings[1];
    p.out_data = pair_data(h, 0, p.cap);
    p.in_data = pair_data(h, 1, p.cap);
    p.ingest = whole_frame_ingest(params_.max_frame_bytes);
  }
  PX_LOG_INFO("shm transport up: rank %u/%u token %s (ring %zu B/dir)",
              params_.rank, params_.nranks, token_.c_str(),
              params_.ring_bytes);
}

std::string shm_transport::listen_address() const { return token_; }

void shm_transport::connect_peers(const std::vector<std::string>& table) {
  PX_ASSERT_MSG(table.size() == static_cast<std::size_t>(params_.nranks),
                "shm connect_peers: endpoint table size mismatch");
  for (std::uint32_t r = 0; r < params_.nranks; ++r) {
    if (r == params_.rank) continue;
    peer& p = *peers_[r];
    if (r < params_.rank) {
      // We are the higher rank: attach to the peer's pre-created segment
      // and raise the flag that lets it retire the name.
      p.seg = util::shm_segment::open_existing(pair_name(table[r], params_.rank),
                                               params_.connect_timeout_ms);
      auto* h = reinterpret_cast<detail::shm_pair_hdr*>(p.seg.data());
      PX_ASSERT_MSG(h->magic == kPairMagic &&
                        h->lo_rank == r && h->hi_rank == params_.rank,
                    "shm connect_peers: pair segment header mismatch");
      p.hdr = h;
      p.cap = h->ring_bytes;
      p.out = &h->rings[1];  // higher -> lower
      p.in = &h->rings[0];
      p.out_data = pair_data(h, 1, p.cap);
      p.in_data = pair_data(h, 0, p.cap);
      p.ingest = whole_frame_ingest(params_.max_frame_bytes);
      h->pids[1].store(static_cast<std::int32_t>(::getpid()),
                       std::memory_order_release);
      h->attached.store(1, std::memory_order_release);
    }
    p.db_seg =
        util::shm_segment::open_existing(table[r], params_.connect_timeout_ms);
    p.db = reinterpret_cast<detail::shm_doorbell*>(p.db_seg.data());
    PX_ASSERT_MSG(p.db->magic == kDoorbellMagic,
                  "shm connect_peers: doorbell segment header mismatch");
    p.db->attached.fetch_add(1, std::memory_order_acq_rel);
    p.open.store(true, std::memory_order_release);
  }

  progress_ = std::thread([this] { progress_loop(); });

  // Crash-safe unlink: once every name we created has an attacher, retire
  // it — from here the segments live exactly as long as their mappings.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(params_.connect_timeout_ms);
  for (std::uint32_t r = params_.rank + 1; r < params_.nranks; ++r) {
    peer& p = *peers_[r];
    while (p.hdr->attached.load(std::memory_order_acquire) == 0) {
      PX_ASSERT_MSG(std::chrono::steady_clock::now() < deadline,
                    "shm connect_peers: peer never attached pair segment");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    p.seg.unlink();
  }
  while (own_db_->attached.load(std::memory_order_acquire) !=
         params_.nranks - 1) {
    PX_ASSERT_MSG(std::chrono::steady_clock::now() < deadline,
                  "shm connect_peers: peers never attached doorbell");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  own_db_seg_.unlink();
  PX_LOG_INFO("shm transport rank %u: mesh up, segments unlinked",
              params_.rank);
}

shm_transport::~shm_transport() {
  stopping_.store(true, std::memory_order_release);
  if (progress_.joinable()) {
    own_db_->seq.fetch_add(1, std::memory_order_seq_cst);
    futex_wake_one(&own_db_->seq);
    progress_.join();
  }
  // Announce closure on both directions of every link and wake the peers
  // so their progress threads notice without waiting for a probe.
  for (auto& pp : peers_) {
    if (pp == nullptr || pp->rank == params_.rank) continue;
    peer& p = *pp;
    if (p.out != nullptr) p.out->producer_closed.store(1, std::memory_order_release);
    if (p.in != nullptr) p.in->consumer_closed.store(1, std::memory_order_release);
    if (p.db != nullptr) ring_doorbell(p);
  }
  // Mappings unmap via shm_segment RAII; any name that never saw an
  // attacher (a peer crashed during boot) is unlinked there too.
}

void shm_transport::set_handler(endpoint_id ep, handler h) {
  PX_ASSERT_MSG(ep == params_.rank,
                "shm transport: only the local rank takes a handler");
  PX_ASSERT_MSG(!traffic_started_.load(std::memory_order_acquire),
                "shm transport: handler registration after traffic started");
  handler_ = std::move(h);
}

void shm_transport::set_idle_callback(std::function<void()> cb) {
  PX_ASSERT_MSG(!traffic_started_.load(std::memory_order_acquire),
                "shm transport: idle callback set after traffic started");
  idle_cb_ = std::move(cb);
}

bool shm_transport::ring_write(peer& p, const std::byte* data,
                               std::size_t len, std::uint32_t units) {
  detail::shm_ring& r = *p.out;
  const std::size_t cap = p.cap;
  const std::uint64_t tail = r.tail.load(std::memory_order_relaxed);
  const std::size_t need = align8(kRecHdr + len);
  const std::size_t pos = static_cast<std::size_t>(tail % cap);
  const std::size_t to_end = cap - pos;
  const bool wrap = need > to_end;
  const std::size_t total = wrap ? to_end + need : need;
  if (tail + total - p.cached_head > cap) {
    p.cached_head = r.head.load(std::memory_order_acquire);
    if (tail + total - p.cached_head > cap) return false;
  }
  auto* base = reinterpret_cast<std::uint8_t*>(p.out_data);
  std::size_t at = pos;
  if (wrap) {
    detail::put_u32(base + at, kWrapMarker);
    at = 0;
  }
  detail::put_u32(base + at, static_cast<std::uint32_t>(len));
  detail::put_u32(base + at + 4, units);
  std::memcpy(base + at + kRecHdr, data, len);
  // Units join the in-flight books *before* the record becomes visible, so
  // the peer's consumed_units can never transiently exceed ring_units.
  p.ring_units.fetch_add(units, std::memory_order_relaxed);
  r.tail.store(tail + total, std::memory_order_release);
  return true;
}

void shm_transport::ring_doorbell(peer& p) {
  if (p.db == nullptr) return;
  p.db->seq.fetch_add(1, std::memory_order_seq_cst);
  if (p.db->sleeping.load(std::memory_order_seq_cst) != 0) {
    futex_wake_one(&p.db->seq);
    wakeups_.fetch_add(1, std::memory_order_relaxed);
  }
}

void shm_transport::send(message m) {
  PX_ASSERT_MSG(m.dest < params_.nranks && m.dest != params_.rank,
                "shm send: dest must be a remote rank");
  PX_ASSERT_MSG(m.source == params_.rank, "shm send: source must be self");
  PX_ASSERT_MSG(m.units >= 1, "shm send: zero-unit message");
  traffic_started_.store(true, std::memory_order_release);
  const std::uint32_t units = m.units;
  sent_total_.fetch_add(units, std::memory_order_release);
  msgs_tx_.fetch_add(1, std::memory_order_relaxed);
  parcels_tx_.fetch_add(units, std::memory_order_relaxed);
  bytes_tx_.fetch_add(m.payload.size(), std::memory_order_relaxed);
  account_sent(m.dest, units);

  // Fault seam (PX_FAULT): an armed drop takes the whole batch before the
  // record becomes visible to the peer; a kill never returns.
  if (fault_drop_units(m.dest, units) > 0) {
    dropped_total_.fetch_add(units, std::memory_order_release);
    account_dropped(m.dest, units);
    pool_.release(std::move(m.payload));
    notify_if_drained();
    return;
  }

  peer& p = *peers_[m.dest];
  bool to_ring = false;
  bool dropped = false;
  bool oversize = false;
  {
    std::lock_guard lock(p.send_lock);
    if (!p.open.load(std::memory_order_acquire)) {
      dropped = true;
    } else if (align8(kRecHdr + m.payload.size()) > p.cap / 2) {
      // Larger than half the ring can wedge behind the wrap marker even
      // on an empty ring; refuse loudly instead.
      dropped = oversize = true;
    } else if (p.pendq.empty() &&
               ring_write(p, m.payload.data(), m.payload.size(), units)) {
      to_ring = true;
    } else {
      // Ring full (or FIFO behind earlier overflow): park locally.  The
      // peer's consumer bumps our doorbell as it frees space, and the
      // progress thread replays the queue in order.
      ring_full_waits_.fetch_add(1, std::memory_order_relaxed);
      p.pend_units.fetch_add(units, std::memory_order_release);
      p.pendq.push_back({std::move(m.payload), units});
    }
  }
  if (to_ring) {
    pool_.release(std::move(m.payload));
    ring_doorbell(p);
  } else if (dropped) {
    dropped_total_.fetch_add(units, std::memory_order_release);
    account_dropped(m.dest, units);
    if (oversize) {
      PX_LOG_WARN(
          "shm send: frame of %zu bytes exceeds ring capacity %zu/2, "
          "dropping %u parcels (raise PX_SHM_RING_BYTES)",
          m.payload.size(), p.cap, units);
    } else if (!disconnects_expected()) {
      PX_LOG_WARN("shm send: peer %u link is down, dropping %u parcels",
                  m.dest, units);
    }
    notify_if_drained();
  }
}

bool shm_transport::pump_ring(peer& p) {
  if (!p.open.load(std::memory_order_acquire) || p.in == nullptr) return false;
  detail::shm_ring& r = *p.in;
  const std::size_t cap = p.cap;
  auto* base = reinterpret_cast<const std::uint8_t*>(p.in_data);
  std::uint64_t head = r.head.load(std::memory_order_relaxed);
  bool any = false;
  for (;;) {
    const std::uint64_t tail = r.tail.load(std::memory_order_acquire);
    if (head == tail) break;
    const std::size_t pos = static_cast<std::size_t>(head % cap);
    const std::uint32_t len = detail::get_u32(base + pos);
    if (len == kWrapMarker) {
      head += cap - pos;
      r.head.store(head, std::memory_order_release);
      continue;
    }
    const std::size_t need = align8(kRecHdr + len);
    if (need > cap - pos || head + need > tail ||
        len > params_.max_frame_bytes) {
      close_peer(p, "corrupt record on shm ring");
      return true;
    }
    const std::uint32_t rec_units = detail::get_u32(base + pos + 4);
    auto buf = pool_.acquire();
    buf.resize(len);
    std::memcpy(buf.data(), base + pos + kRecHdr, len);
    // Space frees the moment the copy lands — the producer can refill this
    // stretch while our handler is still running.
    head += need;
    r.head.store(head, std::memory_order_release);
    bytes_rx_.fetch_add(len, std::memory_order_relaxed);

    // Whole-frame seam: no frame_assembler — one validation pass and the
    // frame goes straight to delivery.
    const auto count = p.ingest.accept(buf);
    if (!count.has_value()) {
      pool_.release(std::move(buf));
      close_peer(p, "garbage frame on shm ring (frame_view::parse rejected)");
      return true;
    }
    if (*count > 0) {
      PX_ASSERT_MSG(handler_ != nullptr, "shm rx: no handler registered");
      message m;
      m.source = p.rank;
      m.dest = params_.rank;
      m.units = *count;
      m.payload = std::move(buf);
      msgs_rx_.fetch_add(1, std::memory_order_relaxed);
      handler_(m);
      pool_.release(std::move(m.payload));
      received_total_.fetch_add(*count, std::memory_order_release);
      account_delivered(p.rank, *count);
    } else {
      pool_.release(std::move(buf));
    }
    // After the handler: this is what makes the sender's in_flight() a
    // consumed-by-peer bound, per the transport contract.
    r.consumed_units.fetch_add(rec_units, std::memory_order_release);
    any = true;
  }
  if (any) ring_doorbell(p);  // space freed + consumption progressed
  if (!p.eof_noted && r.producer_closed.load(std::memory_order_acquire) != 0 &&
      head == r.tail.load(std::memory_order_acquire)) {
    // Producer-side EOF with the ring drained: same verdict rules as a tcp
    // EOF — orderly iff disconnects were announced, otherwise the close
    // routes through the shared death books (note_peer_closed).
    p.eof_noted = true;
    const bool expected = disconnects_expected() ||
                          stopping_.load(std::memory_order_acquire);
    close_peer(p, expected ? nullptr : "peer closed its producer side");
  }
  return any;
}

bool shm_transport::pump_pend(peer& p) {
  if (!p.open.load(std::memory_order_acquire)) return false;
  bool any = false;
  std::lock_guard lock(p.send_lock);
  while (!p.pendq.empty()) {
    auto& o = p.pendq.front();
    if (!ring_write(p, o.buf.data(), o.buf.size(), o.units)) break;
    p.pend_units.fetch_sub(o.units, std::memory_order_release);
    pool_.release(std::move(o.buf));
    p.pendq.pop_front();
    any = true;
  }
  return any;
}

void shm_transport::close_peer(peer& p, const char* why) {
  if (!p.open.exchange(false, std::memory_order_acq_rel)) return;
  if (why != nullptr) {
    PX_LOG_WARN("shm transport rank %u: closing link to peer %u (%s)",
                params_.rank, p.rank, why);
  }
  if (p.in != nullptr) p.in->consumer_closed.store(1, std::memory_order_release);
  if (p.out != nullptr) p.out->producer_closed.store(1, std::memory_order_release);
  std::uint64_t orphaned = 0;
  {
    std::lock_guard lock(p.send_lock);
    for (const auto& o : p.pendq) orphaned += o.units;
    p.pendq.clear();
    p.pend_units.store(0, std::memory_order_release);
  }
  if (why == nullptr) {
    // Orderly close: ring-resident units the peer will never (verifiably)
    // consume retire into the dropped books so conservation stays
    // satisfiable without a death verdict.
    const std::uint64_t rung = p.ring_units.load(std::memory_order_acquire);
    const std::uint64_t consumed =
        p.out != nullptr ? p.out->consumed_units.load(std::memory_order_acquire)
                         : 0;
    orphaned += rung > consumed ? rung - consumed : 0;
    if (orphaned > 0) {
      dropped_total_.fetch_add(orphaned, std::memory_order_release);
      account_dropped(p.rank, orphaned);
    }
  }
  // Unexpected close: leave the outstanding column intact — the shared
  // death fold (note_peer_closed) charges everything sent-minus-dropped as
  // lost, the same conservative verdict tcp reaches.  Splitting consumed
  // vs unconsumed units here would make parcels_lost race with how far the
  // casualty's consumer got before dying.
  ring_doorbell(p);
  notify_if_drained();
  // Shared disconnect books last, with no locks held: orderly closes are
  // counted, unexpected ones become a death verdict (and may re-enter the
  // transport through the peer-death handler).
  note_peer_closed(p.rank, why == nullptr);
}

std::uint64_t shm_transport::in_flight() const noexcept {
  std::uint64_t total = 0;
  for (const auto& pp : peers_) {
    if (pp == nullptr || pp->rank == params_.rank) continue;
    const peer& p = *pp;
    if (!p.open.load(std::memory_order_acquire)) continue;
    const std::uint64_t rung = p.ring_units.load(std::memory_order_acquire);
    const std::uint64_t consumed =
        p.out != nullptr
            ? p.out->consumed_units.load(std::memory_order_acquire)
            : 0;
    total += rung > consumed ? rung - consumed : 0;
    total += p.pend_units.load(std::memory_order_acquire);
  }
  return total;
}

void shm_transport::notify_if_drained() {
  if (in_flight() == 0) {
    std::lock_guard lock(drain_mutex_);
    drained_cv_.notify_all();
  }
}

void shm_transport::drain() {
  std::unique_lock lock(drain_mutex_);
  while (in_flight() != 0) {
    // Notified by the progress thread on the zero transition; the timeout
    // is a belt-and-braces bound, not the mechanism.
    drained_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

void shm_transport::close_link(std::size_t rank) {
  // External death verdict (heartbeat lease, px.peer_down): the progress
  // thread owns peer state, so park the request and wake it.
  pending_dead_.fetch_or(1ull << rank, std::memory_order_acq_rel);
  own_db_->seq.fetch_add(1, std::memory_order_seq_cst);
  futex_wake_one(&own_db_->seq);
}

void shm_transport::progress_loop() {
  using clock = std::chrono::steady_clock;
  auto last_probe = clock::now();
  for (;;) {
    const std::uint32_t seq = own_db_->seq.load(std::memory_order_acquire);
    const std::uint64_t doomed =
        pending_dead_.exchange(0, std::memory_order_acq_rel);
    if (doomed != 0) {
      for (std::uint32_t r = 0; r < params_.nranks; ++r) {
        if (((doomed >> r) & 1u) == 0 || r == params_.rank) continue;
        close_peer(*peers_[r], "peer declared dead by the control plane");
      }
    }
    bool did = false;
    for (auto& pp : peers_) {
      peer& p = *pp;
      if (p.rank == params_.rank) continue;
      did |= pump_ring(p);
      if (pump_pend(p)) {
        ring_doorbell(p);
        did = true;
      }
      if (p.open.load(std::memory_order_acquire) && p.out != nullptr &&
          p.out->consumer_closed.load(std::memory_order_acquire) != 0) {
        const bool expected = disconnects_expected() ||
                              stopping_.load(std::memory_order_acquire);
        close_peer(p, expected ? nullptr : "peer closed its consumer side");
      }
    }
    notify_if_drained();
    if (stopping_.load(std::memory_order_acquire) && in_flight() == 0) return;
    if (did) continue;

    const auto now = clock::now();
    if (now - last_probe > std::chrono::milliseconds(100)) {
      last_probe = now;
      for (auto& pp : peers_) {
        peer& p = *pp;
        if (p.rank == params_.rank ||
            !p.open.load(std::memory_order_acquire) || p.hdr == nullptr) {
          continue;
        }
        const int slot = p.rank > params_.rank ? 1 : 0;
        const auto pid = p.hdr->pids[slot].load(std::memory_order_acquire);
        if (pid != 0 && ::kill(pid, 0) == -1 && errno == ESRCH) {
          close_peer(p, "peer process died");
        }
      }
    }

    // Spin window: zero syscalls while both sides stay hot.
    const auto spin_deadline = now + std::chrono::microseconds(params_.spin_us);
    bool rung = false;
    while (clock::now() < spin_deadline) {
      if (own_db_->seq.load(std::memory_order_acquire) != seq ||
          stopping_.load(std::memory_order_relaxed)) {
        rung = true;
        break;
      }
      util::cpu_relax();
    }
    if (rung) continue;

    // Dekker handoff: publish intent, re-check, then sleep.  A sender that
    // bumped seq after our load either sees `sleeping` (and wakes us) or
    // raced our re-check — in which case futex_wait returns EAGAIN on the
    // stale value.  Either way no wakeup is lost.
    own_db_->sleeping.store(1, std::memory_order_seq_cst);
    bool work = own_db_->seq.load(std::memory_order_seq_cst) != seq ||
                stopping_.load(std::memory_order_acquire);
    if (!work) {
      for (const auto& pp : peers_) {
        const peer& p = *pp;
        if (p.rank == params_.rank ||
            !p.open.load(std::memory_order_acquire) || p.in == nullptr) {
          continue;
        }
        if (p.in->tail.load(std::memory_order_acquire) !=
            p.in->head.load(std::memory_order_relaxed)) {
          work = true;
          break;
        }
      }
    }
    if (!work) {
      const int rc = futex_wait(&own_db_->seq, seq, 1'000'000 /* 1ms */);
      if (rc != 0 && errno == ETIMEDOUT && idle_cb_) idle_cb_();
    }
    own_db_->sleeping.store(0, std::memory_order_seq_cst);
  }
}

endpoint_stats shm_transport::stats(endpoint_id ep) const {
  PX_ASSERT_MSG(ep == params_.rank,
                "shm stats: remote ranks keep their own books");
  endpoint_stats out;
  out.messages_sent = msgs_tx_.load(std::memory_order_relaxed);
  out.parcels_sent = parcels_tx_.load(std::memory_order_relaxed);
  out.messages_received = msgs_rx_.load(std::memory_order_relaxed);
  out.bytes_sent = bytes_tx_.load(std::memory_order_relaxed);
  out.bytes_received = bytes_rx_.load(std::memory_order_relaxed);
  return out;
}

link_counters shm_transport::link(endpoint_id ep) const {
  PX_ASSERT_MSG(ep == params_.rank,
                "shm link: remote ranks keep their own books");
  link_counters out;
  out.bytes_tx = bytes_tx_.load(std::memory_order_relaxed);
  out.bytes_rx = bytes_rx_.load(std::memory_order_relaxed);
  out.msgs_tx = msgs_tx_.load(std::memory_order_relaxed);
  out.msgs_rx = msgs_rx_.load(std::memory_order_relaxed);
  return out;
}

std::vector<extra_link_counter> shm_transport::extra_link_counters(
    endpoint_id ep) const {
  PX_ASSERT_MSG(ep == params_.rank,
                "shm link: remote ranks keep their own books");
  return {{"ring_full_waits",
           ring_full_waits_.load(std::memory_order_relaxed)},
          {"wakeups", wakeups_.load(std::memory_order_relaxed)},
          {"peer_failed", peers_failed_total()},
          {"parcels_lost", parcels_lost_total()}};
}

}  // namespace px::net
