// Bootstrap: the control plane that turns N processes into one machine.
//
// Rank 0 listens on a well-known address (PX_NET_ROOT); every other rank
// dials in (with retries — the launcher starts processes in any order).
// The handshake carries each rank's locality id and data-plane endpoint;
// rank 0 replies with the full endpoint table plus its resolved runtime
// parameter blob, so every process runs the wire-relevant knobs (flush
// thresholds, forward bound, eager flush) with rank 0's values even if
// their environments disagree.  A barrier gates the first parcel: nobody
// sends until everybody's data listener is connected.
//
// The control connections stay open for the life of the runtime and carry
// two more collectives:
//   * barrier() — shutdown sequencing;
//   * quiesce_round() — one round of counting termination detection
//     (Mattern-style): each rank reports (locally-stable, activity
//     snapshot, parcels sent to remote ranks, parcels delivered from
//     remote ranks).  Rank 0 declares global quiescence when every rank is
//     locally stable, the machine-wide sent and delivered totals balance,
//     and the whole gathered vector is *identical to the previous round's*
//     — two matching observations bracket any in-flight or racing parcel
//     (its delivery would have moved a counter between the rounds).
//
// All calls are collective and blocking: every rank must make the same
// sequence of bootstrap calls, in the same order (exchange, then any mix
// of quiesce_round/barrier rounds, implicitly closed by destruction).
//
// Failure detection (docs/resilience.md): exchange() additionally opens a
// second, dedicated heartbeat connection per rank.  A background thread on
// every rank exchanges kTagHb records with rank 0 at heartbeat_interval_us;
// a rank whose heartbeats stop for lease_ms (or whose channel EOFs without
// an orderly goodbye) is declared dead.  By default any death is fatal:
// the observing process prints a diagnostic and exits nonzero within the
// lease — a partial machine must never hang.  A runtime that can survive
// rank loss arms survive mode with set_peer_down_handler(); from then on
// non-root deaths are broadcast by rank 0 (kTagPeerDown), collectives skip
// the casualty, and quiesce rounds carry each rank's dead mask so the
// verdict is only reached once every survivor has folded the loss into its
// books.  Rank 0's own death is always fatal to the others — it is the
// control plane.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace px::net {

struct bootstrap_params {
  std::uint32_t rank = 0;
  std::uint32_t nranks = 2;
  std::string root = "127.0.0.1:7733";  // rank 0's control listen address
  std::uint64_t connect_timeout_ms = 20'000;
  // Heartbeat cadence (PX_HEARTBEAT_INTERVAL_US) and the failure lease
  // (PX_LEASE_MS): a rank silent for lease_ms is declared dead.
  std::uint64_t heartbeat_interval_us = 100'000;
  std::uint64_t lease_ms = 10'000;
};

class bootstrap {
 public:
  explicit bootstrap(bootstrap_params params);
  ~bootstrap();

  bootstrap(const bootstrap&) = delete;
  bootstrap& operator=(const bootstrap&) = delete;

  struct exchange_result {
    std::vector<std::string> endpoints;  // data-plane address per rank
    std::vector<std::byte> params_blob;  // rank 0's runtime param blob
  };

  // The handshake collective.  `my_endpoint` is this rank's data-plane
  // listen address; `root_blob` is consulted on rank 0 only and broadcast
  // to everyone.
  exchange_result exchange(const std::string& my_endpoint,
                           std::span<const std::byte> root_blob);

  // `digest`, when nonzero, is additionally verified equal across all
  // ranks (root asserts otherwise) — used by the runtime's pre-traffic
  // barrier to prove every process registered the identical boot-time
  // schema (counter gids are positional; see registry::schema_digest).
  void barrier(std::uint64_t digest = 0);

  // One round of the termination protocol described above.  Returns true
  // on every rank when the machine is globally quiescent.  Under rank
  // loss the round runs over the *live* membership: dead ranks are
  // skipped, and each rank's report carries its local dead mask — the
  // verdict requires every live rank to agree on who is dead, so the
  // machine only quiesces once the casualty is folded in everywhere.
  // Callers must already subtract the casualty from their sent/delivered
  // totals (distributed_transport::live_units_sent/received).
  bool quiesce_round(bool locally_stable, std::uint64_t activity,
                     std::uint64_t parcels_sent_remote,
                     std::uint64_t parcels_delivered_remote);

  // ---------------------------------------------------------- resilience

  // Arms survive mode: `h` is invoked (from the heartbeat thread) once per
  // confirmed-dead peer rank.  Without a handler any rank loss is fatal —
  // diagnostic + _Exit(1) within the lease.  Rank 0's death is fatal
  // regardless: it is the control plane.
  void set_peer_down_handler(std::function<void(std::uint32_t)> h);

  // External death verdict (e.g. the data plane saw the peer's socket
  // reset, or a px.peer_down parcel arrived).  Idempotent; on rank 0 it
  // also broadcasts kTagPeerDown to the other survivors.
  void note_rank_dead(std::uint32_t rank);

  // Announce orderly shutdown: after this, peer heartbeat EOFs and lease
  // expiries are expected and ignored.  The runtime calls it after the
  // final shutdown barrier, before tearing the machine down.
  void expect_shutdown() noexcept;

  bool is_alive(std::uint32_t rank) const noexcept {
    return rank < params_.nranks &&
           ((dead_mask_.load(std::memory_order_acquire) >> rank) & 1u) == 0;
  }
  // Bit r set = rank r confirmed dead.
  std::uint64_t dead_mask() const noexcept {
    return dead_mask_.load(std::memory_order_acquire);
  }
  std::uint32_t live_ranks() const noexcept;

  // Clock-offset collective for the flight recorder (trace/): util::now_ns
  // is a *per-process* steady epoch, so per-rank trace timestamps are
  // mutually meaningless until normalized.  Each non-root rank ping-pongs
  // rank 0 a few times (NTP-style) and keeps the minimum-RTT sample's
  // offset; returns `off` such that `local_now_ns - off` is approximately
  // rank 0's clock.  Rank 0 returns 0.  Collective: every rank must call
  // it at the same point in the bootstrap sequence.
  std::int64_t clock_sync();

  std::uint32_t rank() const noexcept { return params_.rank; }
  std::uint32_t nranks() const noexcept { return params_.nranks; }

 private:
  // Blocking, length-prefixed control records: [u32 len][u8 tag][payload].
  void send_record(int fd, std::uint8_t tag,
                   std::span<const std::byte> payload);
  std::vector<std::byte> recv_record(int fd, std::uint8_t expect_tag);
  // Non-asserting variants for links that may legitimately die.
  bool try_send_record(int fd, std::uint8_t tag,
                       std::span<const std::byte> payload);
  std::optional<std::pair<std::uint8_t, std::vector<std::byte>>>
  try_recv_record_any(int fd);

  // Root: wait for `tag` from rank `r`, polling in lease-bounded slices so
  // a rank that dies mid-collective is skipped instead of hanging the
  // machine.  nullopt = the rank is (now) dead.
  std::optional<std::vector<std::byte>> recv_from_live(std::uint32_t r,
                                                       std::uint8_t tag);
  // Root -> rank send that converts a failure into a death verdict.
  void send_to_live(std::uint32_t r, std::uint8_t tag,
                    std::span<const std::byte> payload);

  // The one death funnel: first verdict per rank wins; fatal unless
  // survive mode is armed (and never survivable for rank 0).
  void death_verdict(std::uint32_t rank, const char* why);
  void require_survivable(std::uint32_t rank);
  [[noreturn]] void fail_fast(std::uint32_t rank, const char* why);
  void start_heartbeat();
  void hb_loop_root();
  void hb_loop_rank();

  bootstrap_params params_;
  int listen_fd_ = -1;            // rank 0 only
  std::vector<int> rank_fds_;     // rank 0: control socket per rank (0 = self)
  int root_fd_ = -1;              // other ranks: socket to rank 0
  std::vector<std::uint64_t> prev_gather_;  // rank 0: last round's vector

  // Heartbeat channel (second connection per rank, opened in exchange()).
  int hb_fd_ = -1;                // non-root: hb socket to rank 0
  std::vector<int> hb_fds_;       // root: hb socket per rank (0 = self)
  std::thread hb_thread_;
  std::mutex hb_send_mutex_;      // hb sockets are written from two threads
  std::atomic<std::uint64_t> dead_mask_{0};
  std::atomic<std::uint64_t> goodbye_mask_{0};  // root: orderly goodbyes
  std::atomic<bool> closing_{false};
  std::mutex handler_mutex_;
  std::function<void(std::uint32_t)> on_peer_down_;  // set = survive mode
};

}  // namespace px::net
