// Bootstrap: the control plane that turns N processes into one machine.
//
// Rank 0 listens on a well-known address (PX_NET_ROOT); every other rank
// dials in (with retries — the launcher starts processes in any order).
// The handshake carries each rank's locality id and data-plane endpoint;
// rank 0 replies with the full endpoint table plus its resolved runtime
// parameter blob, so every process runs the wire-relevant knobs (flush
// thresholds, forward bound, eager flush) with rank 0's values even if
// their environments disagree.  A barrier gates the first parcel: nobody
// sends until everybody's data listener is connected.
//
// The control connections stay open for the life of the runtime and carry
// two more collectives:
//   * barrier() — shutdown sequencing;
//   * quiesce_round() — one round of counting termination detection
//     (Mattern-style): each rank reports (locally-stable, activity
//     snapshot, parcels sent to remote ranks, parcels delivered from
//     remote ranks).  Rank 0 declares global quiescence when every rank is
//     locally stable, the machine-wide sent and delivered totals balance,
//     and the whole gathered vector is *identical to the previous round's*
//     — two matching observations bracket any in-flight or racing parcel
//     (its delivery would have moved a counter between the rounds).
//
// All calls are collective and blocking: every rank must make the same
// sequence of bootstrap calls, in the same order (exchange, then any mix
// of quiesce_round/barrier rounds, implicitly closed by destruction).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace px::net {

struct bootstrap_params {
  std::uint32_t rank = 0;
  std::uint32_t nranks = 2;
  std::string root = "127.0.0.1:7733";  // rank 0's control listen address
  std::uint64_t connect_timeout_ms = 20'000;
};

class bootstrap {
 public:
  explicit bootstrap(bootstrap_params params);
  ~bootstrap();

  bootstrap(const bootstrap&) = delete;
  bootstrap& operator=(const bootstrap&) = delete;

  struct exchange_result {
    std::vector<std::string> endpoints;  // data-plane address per rank
    std::vector<std::byte> params_blob;  // rank 0's runtime param blob
  };

  // The handshake collective.  `my_endpoint` is this rank's data-plane
  // listen address; `root_blob` is consulted on rank 0 only and broadcast
  // to everyone.
  exchange_result exchange(const std::string& my_endpoint,
                           std::span<const std::byte> root_blob);

  // `digest`, when nonzero, is additionally verified equal across all
  // ranks (root asserts otherwise) — used by the runtime's pre-traffic
  // barrier to prove every process registered the identical boot-time
  // schema (counter gids are positional; see registry::schema_digest).
  void barrier(std::uint64_t digest = 0);

  // One round of the termination protocol described above.  Returns true
  // on every rank when the machine is globally quiescent.
  bool quiesce_round(bool locally_stable, std::uint64_t activity,
                     std::uint64_t parcels_sent_remote,
                     std::uint64_t parcels_delivered_remote);

  // Clock-offset collective for the flight recorder (trace/): util::now_ns
  // is a *per-process* steady epoch, so per-rank trace timestamps are
  // mutually meaningless until normalized.  Each non-root rank ping-pongs
  // rank 0 a few times (NTP-style) and keeps the minimum-RTT sample's
  // offset; returns `off` such that `local_now_ns - off` is approximately
  // rank 0's clock.  Rank 0 returns 0.  Collective: every rank must call
  // it at the same point in the bootstrap sequence.
  std::int64_t clock_sync();

  std::uint32_t rank() const noexcept { return params_.rank; }
  std::uint32_t nranks() const noexcept { return params_.nranks; }

 private:
  // Blocking, length-prefixed control records: [u32 len][u8 tag][payload].
  void send_record(int fd, std::uint8_t tag,
                   std::span<const std::byte> payload);
  std::vector<std::byte> recv_record(int fd, std::uint8_t expect_tag);

  bootstrap_params params_;
  int listen_fd_ = -1;            // rank 0 only
  std::vector<int> rank_fds_;     // rank 0: control socket per rank (0 = self)
  int root_fd_ = -1;              // other ranks: socket to rank 0
  std::vector<std::uint64_t> prev_gather_;  // rank 0: last round's vector
};

}  // namespace px::net
