#include "net/fabric.hpp"

#include <chrono>
#include <cmath>
#include <mutex>

#include "util/assert.hpp"
#include "util/fence.hpp"
#include "util/log.hpp"

namespace px::net {

namespace {
// Progress-thread wakeup cadence when idle: bounds how stale the idle
// callback (coalescing-buffer flush backstop) can get, and self-heals any
// theoretically-missed notification.
constexpr auto kIdleTick = std::chrono::microseconds(200);
}  // namespace

const char* to_string(topology_kind k) noexcept {
  switch (k) {
    case topology_kind::crossbar: return "crossbar";
    case topology_kind::mesh2d: return "mesh2d";
    case topology_kind::vortex: return "vortex";
  }
  return "?";
}

std::uint32_t topology_hops(topology_kind k, std::size_t endpoints,
                            endpoint_id a, endpoint_id b) noexcept {
  if (a == b) return 0;
  switch (k) {
    case topology_kind::crossbar:
      return 1;
    case topology_kind::mesh2d: {
      const auto side = static_cast<std::uint32_t>(
          std::ceil(std::sqrt(static_cast<double>(endpoints))));
      const std::uint32_t ax = a % side, ay = a / side;
      const std::uint32_t bx = b % side, by = b / side;
      const std::uint32_t dx = ax > bx ? ax - bx : bx - ax;
      const std::uint32_t dy = ay > by ? ay - by : by - ay;
      return dx + dy;
    }
    case topology_kind::vortex: {
      // Data Vortex: hierarchical multi-level structure with diameter
      // O(log N); traversal descends the angle/level hierarchy.
      std::uint32_t levels = 0;
      std::size_t n = endpoints - 1;
      while (n > 0) {
        ++levels;
        n >>= 1;
      }
      return levels == 0 ? 1 : levels;
    }
  }
  return 1;
}

fabric::fabric(fabric_params params)
    : params_(params), handlers_(params.endpoints) {
  PX_ASSERT(params_.endpoints > 0);
  util::xoshiro256 seeder(params_.seed);
  for (std::size_t i = 0; i < params_.endpoints; ++i) {
    auto shard = std::make_unique<send_shard>();
    shard->rng = seeder.split(static_cast<unsigned>(i));
    shards_.push_back(std::move(shard));
    stats_.push_back(std::make_unique<atomic_endpoint_stats>());
  }
  progress_ = std::thread([this] { progress_loop(); });
}

fabric::~fabric() {
  drain();
  {
    std::lock_guard lock(progress_mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  progress_.join();
}

void fabric::set_handler(endpoint_id ep, handler h) {
  PX_ASSERT_MSG(ep < handlers_.size(), "set_handler: endpoint out of range");
  PX_ASSERT_MSG(!traffic_started_.load(std::memory_order_acquire),
                "set_handler after traffic started");
  handlers_[ep] = std::move(h);
}

void fabric::set_idle_callback(std::function<void()> cb) {
  PX_ASSERT_MSG(!traffic_started_.load(std::memory_order_acquire),
                "set_idle_callback after traffic started");
  std::lock_guard lock(progress_mutex_);
  idle_cb_ = std::move(cb);
}

std::uint64_t fabric::model_latency_ns(endpoint_id a, endpoint_id b,
                                       std::size_t bytes) const noexcept {
  std::uint64_t ns = params_.base_latency_ns;
  ns += static_cast<std::uint64_t>(
            topology_hops(params_.topology, params_.endpoints, a, b)) *
        params_.per_hop_ns;
  if (params_.bytes_per_ns > 0.0) {
    ns += static_cast<std::uint64_t>(static_cast<double>(bytes) /
                                     params_.bytes_per_ns);
  }
  return ns;
}

void fabric::send(message m) {
  // Always-on range checks: an out-of-range endpoint would index
  // handlers_/stats_/shards_ out of bounds.
  PX_ASSERT_MSG(m.dest < params_.endpoints, "fabric::send: dest out of range");
  PX_ASSERT_MSG(m.source < params_.endpoints,
                "fabric::send: source out of range");
  PX_ASSERT(m.units >= 1);
  traffic_started_.store(true, std::memory_order_release);
  const std::uint32_t units = m.units;
  sent_total_.fetch_add(units, std::memory_order_acq_rel);
  in_flight_.fetch_add(units, std::memory_order_acq_rel);

  const auto now = std::chrono::steady_clock::now();
  auto& st = *stats_[m.source];
  st.messages_sent.fetch_add(1, std::memory_order_relaxed);
  st.parcels_sent.fetch_add(units, std::memory_order_relaxed);
  st.bytes_sent.fetch_add(m.payload.size(), std::memory_order_relaxed);

  std::uint64_t delay_ns =
      model_latency_ns(m.source, m.dest, m.payload.size());
  {
    send_shard& shard = *shards_[m.dest];
    std::lock_guard lock(shard.m);
    if (params_.jitter_ns > 0) delay_ns += shard.rng.below(params_.jitter_ns);
    shard.q.push(
        timed_message{now + std::chrono::nanoseconds(delay_ns),
                      next_seq_.fetch_add(1, std::memory_order_relaxed),
                      std::move(m)});
  }
  // One histogram sample per parcel (weighted, so one locked O(1) op per
  // frame): every coalesced parcel experienced the frame's modeled
  // latency — its own bytes plus the shared frame are what the bandwidth
  // term charged.
  latency_hist_.add(static_cast<double>(delay_ns), units);
  wake_progress();
}

// Producer half of the sleep/wake handshake (see header): the shard push
// above must be visible to a progress thread that is about to sleep, or we
// must see sleeping_ set and notify.  Timed waits backstop the protocol.
void fabric::wake_progress() {
  dirty_.store(true, std::memory_order_seq_cst);
  if (sleeping_.load(std::memory_order_seq_cst)) {
    std::lock_guard lock(progress_mutex_);
    cv_.notify_one();
  }
}

void fabric::progress_loop() {
  std::unique_lock lock(progress_mutex_);
  for (;;) {
    if (stopping_) {
      // Drain whatever is still queued before exiting so drain() callers
      // and the destructor see a clean fabric.
      bool any = false;
      for (auto& shard : shards_) {
        std::lock_guard sl(shard->m);
        any = any || !shard->q.empty();
      }
      if (!any) return;
    }
    dirty_.store(false, std::memory_order_seq_cst);

    // Earliest-due message across all shards.
    int best = -1;
    std::chrono::steady_clock::time_point best_due{};
    std::uint64_t best_seq = 0;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      send_shard& shard = *shards_[i];
      std::lock_guard sl(shard.m);
      if (shard.q.empty()) continue;
      const timed_message& top = shard.q.top();
      if (best < 0 || top.due < best_due ||
          (top.due == best_due && top.seq < best_seq)) {
        best = static_cast<int>(i);
        best_due = top.due;
        best_seq = top.seq;
      }
    }

    if (best < 0) {
      if (stopping_) return;
      if (idle_cb_) {
        lock.unlock();
        idle_cb_();
        lock.lock();
        if (stopping_) continue;
      }
      sleeping_.store(true, std::memory_order_seq_cst);
      cv_.wait_for(lock, kIdleTick, [&] {
        return dirty_.load(std::memory_order_seq_cst) || stopping_;
      });
      sleeping_.store(false, std::memory_order_seq_cst);
      continue;
    }

    const auto now = std::chrono::steady_clock::now();
    if (best_due > now) {
      sleeping_.store(true, std::memory_order_seq_cst);
      if (stopping_) {
        // Shutdown drain: the predicate below would be permanently true,
        // turning this into a busy spin for the full modeled latency —
        // just sleep the delay out (spurious wakeups only cause a rescan).
        cv_.wait_until(lock, best_due);
      } else {
        cv_.wait_until(lock, best_due, [&] {
          return dirty_.load(std::memory_order_seq_cst) || stopping_;
        });
      }
      sleeping_.store(false, std::memory_order_seq_cst);
      continue;  // re-scan: an earlier message may have arrived
    }

    timed_message tm;
    {
      send_shard& shard = *shards_[best];
      std::lock_guard sl(shard.m);
      // priority_queue::top is const; safe to move because pop follows.
      tm = std::move(const_cast<timed_message&>(shard.q.top()));
      shard.q.pop();
    }
    stats_[tm.msg.dest]->messages_received.fetch_add(
        1, std::memory_order_relaxed);
    stats_[tm.msg.dest]->bytes_received.fetch_add(tm.msg.payload.size(),
                                                  std::memory_order_relaxed);
    handler& h = handlers_[tm.msg.dest];
    PX_ASSERT_MSG(h != nullptr, "message to endpoint without handler");
    const std::uint32_t units = tm.msg.units;
    lock.unlock();
    h(tm.msg);
    // Recycle the payload's capacity unless the handler stole it.
    if (tm.msg.payload.capacity() > 0) {
      pool_.release(std::move(tm.msg.payload));
    }
    const auto remaining =
        in_flight_.fetch_sub(units, std::memory_order_acq_rel);
    lock.lock();
    if (remaining == units) drained_cv_.notify_all();
  }
}

void fabric::drain() {
  std::unique_lock lock(progress_mutex_);
  drained_cv_.wait(lock, [&] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

endpoint_stats fabric::stats(endpoint_id ep) const {
  PX_ASSERT(ep < stats_.size());
  const atomic_endpoint_stats& st = *stats_[ep];
  endpoint_stats out;
  out.messages_sent = st.messages_sent.load(std::memory_order_relaxed);
  out.parcels_sent = st.parcels_sent.load(std::memory_order_relaxed);
  out.messages_received = st.messages_received.load(std::memory_order_relaxed);
  out.bytes_sent = st.bytes_sent.load(std::memory_order_relaxed);
  out.bytes_received = st.bytes_received.load(std::memory_order_relaxed);
  return out;
}

link_counters fabric::link(endpoint_id ep) const {
  const endpoint_stats st = stats(ep);
  link_counters out;
  out.bytes_tx = st.bytes_sent;
  out.bytes_rx = st.bytes_received;
  out.msgs_tx = st.messages_sent;
  out.msgs_rx = st.messages_received;
  return out;
}

util::log_histogram fabric::latency_histogram() const {
  return latency_hist_.snapshot();
}

}  // namespace px::net
