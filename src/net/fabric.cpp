#include "net/fabric.hpp"

#include <chrono>
#include <cmath>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace px::net {

const char* to_string(topology_kind k) noexcept {
  switch (k) {
    case topology_kind::crossbar: return "crossbar";
    case topology_kind::mesh2d: return "mesh2d";
    case topology_kind::vortex: return "vortex";
  }
  return "?";
}

std::uint32_t topology_hops(topology_kind k, std::size_t endpoints,
                            endpoint_id a, endpoint_id b) noexcept {
  if (a == b) return 0;
  switch (k) {
    case topology_kind::crossbar:
      return 1;
    case topology_kind::mesh2d: {
      const auto side = static_cast<std::uint32_t>(
          std::ceil(std::sqrt(static_cast<double>(endpoints))));
      const std::uint32_t ax = a % side, ay = a / side;
      const std::uint32_t bx = b % side, by = b / side;
      const std::uint32_t dx = ax > bx ? ax - bx : bx - ax;
      const std::uint32_t dy = ay > by ? ay - by : by - ay;
      return dx + dy;
    }
    case topology_kind::vortex: {
      // Data Vortex: hierarchical multi-level structure with diameter
      // O(log N); traversal descends the angle/level hierarchy.
      std::uint32_t levels = 0;
      std::size_t n = endpoints - 1;
      while (n > 0) {
        ++levels;
        n >>= 1;
      }
      return levels == 0 ? 1 : levels;
    }
  }
  return 1;
}

fabric::fabric(fabric_params params)
    : params_(params),
      handlers_(params.endpoints),
      rng_(params.seed),
      stats_(params.endpoints) {
  PX_ASSERT(params_.endpoints > 0);
  progress_ = std::thread([this] { progress_loop(); });
}

fabric::~fabric() {
  drain();
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  progress_.join();
}

void fabric::set_handler(endpoint_id ep, handler h) {
  PX_ASSERT(ep < handlers_.size());
  handlers_[ep] = std::move(h);
}

std::uint64_t fabric::model_latency_ns(endpoint_id a, endpoint_id b,
                                       std::size_t bytes) const noexcept {
  std::uint64_t ns = params_.base_latency_ns;
  ns += static_cast<std::uint64_t>(
            topology_hops(params_.topology, params_.endpoints, a, b)) *
        params_.per_hop_ns;
  if (params_.bytes_per_ns > 0.0) {
    ns += static_cast<std::uint64_t>(static_cast<double>(bytes) /
                                     params_.bytes_per_ns);
  }
  return ns;
}

void fabric::send(message m) {
  PX_ASSERT(m.dest < handlers_.size());
  const auto now = std::chrono::steady_clock::now();
  sent_total_.fetch_add(1, std::memory_order_acq_rel);
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard lock(mutex_);
    std::uint64_t delay_ns = model_latency_ns(m.source, m.dest,
                                              m.payload.size());
    if (params_.jitter_ns > 0) delay_ns += rng_.below(params_.jitter_ns);
    latency_hist_.add(static_cast<double>(delay_ns));
    auto& st = stats_[m.source];
    st.messages_sent += 1;
    st.bytes_sent += m.payload.size();
    queue_.push(timed_message{now + std::chrono::nanoseconds(delay_ns),
                              next_seq_++, std::move(m)});
  }
  cv_.notify_one();
}

void fabric::progress_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (queue_.empty()) {
      if (stopping_) return;
      cv_.wait(lock, [&] { return !queue_.empty() || stopping_; });
      continue;
    }
    const auto due = queue_.top().due;
    const auto now = std::chrono::steady_clock::now();
    if (due > now) {
      cv_.wait_until(lock, due);
      continue;  // re-check: new earlier message may have arrived
    }
    // priority_queue::top is const; safe to move because pop follows.
    timed_message tm = std::move(const_cast<timed_message&>(queue_.top()));
    queue_.pop();
    stats_[tm.msg.dest].messages_received += 1;
    handler& h = handlers_[tm.msg.dest];
    PX_ASSERT_MSG(h != nullptr, "message to endpoint without handler");
    lock.unlock();
    h(std::move(tm.msg));
    const auto remaining = in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    lock.lock();
    if (remaining == 1) drained_cv_.notify_all();
  }
}

void fabric::drain() {
  std::unique_lock lock(mutex_);
  drained_cv_.wait(lock, [&] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

endpoint_stats fabric::stats(endpoint_id ep) const {
  std::lock_guard lock(mutex_);
  return stats_[ep];
}

util::log_histogram fabric::latency_histogram() const {
  std::lock_guard lock(mutex_);
  return latency_hist_;
}

}  // namespace px::net
