// Internal POSIX socket helpers shared by the TCP transport and the
// bootstrap control plane.  IPv4 only (the launcher targets localhost and
// cluster interconnects addressed numerically or via /etc/hosts); failures
// of calls that cannot legitimately fail under correct usage assert, the
// rest surface through return values the callers retry or report.
#pragma once

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "util/assert.hpp"

namespace px::net::detail {

// Little-endian scalar codec shared by the control plane (bootstrap
// records) and the data-plane hello — one place to touch if the framing
// ever changes, and byte-order-explicit like the parcel wire format.
inline void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

inline void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

inline std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline std::pair<std::string, std::uint16_t> split_host_port_impl(
    const std::string& s) {
  const auto colon = s.rfind(':');
  PX_ASSERT_MSG(colon != std::string::npos && colon + 1 < s.size(),
                "net address must be host:port");
  char* end = nullptr;
  const long port = std::strtol(s.c_str() + colon + 1, &end, 10);
  // A partially-numeric port ("77x3") must fail here, not dial the wrong
  // port and time out 20 seconds later with a misleading diagnostic.
  PX_ASSERT_MSG(end != nullptr && *end == '\0',
                "net address port is not a number");
  PX_ASSERT_MSG(port >= 0 && port <= 65535, "net address port out of range");
  return {s.substr(0, colon), static_cast<std::uint16_t>(port)};
}

inline sockaddr_in resolve_ipv4(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const int rc = getaddrinfo(host.c_str(), nullptr, &hints, &res);
    PX_ASSERT_MSG(rc == 0 && res != nullptr,
                  "net: cannot resolve host address");
    addr.sin_addr =
        reinterpret_cast<const sockaddr_in*>(res->ai_addr)->sin_addr;
    freeaddrinfo(res);
  }
  return addr;
}

inline void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  PX_ASSERT(flags >= 0);
  PX_ASSERT(fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

inline void set_nodelay(int fd) {
  const int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

// Binds + listens on host:port (port 0 = ephemeral); returns the fd.
inline int make_listener(const std::string& host, std::uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  PX_ASSERT_MSG(fd >= 0, "net: socket() failed");
  const int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = resolve_ipv4(host, port);
  PX_ASSERT_MSG(
      bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0,
      "net: bind() failed (address in use?)");
  PX_ASSERT_MSG(listen(fd, SOMAXCONN) == 0, "net: listen() failed");
  return fd;
}

inline std::string local_address(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  PX_ASSERT(getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0);
  char host[INET_ADDRSTRLEN] = {};
  inet_ntop(AF_INET, &addr.sin_addr, host, sizeof host);
  return std::string(host) + ":" + std::to_string(ntohs(addr.sin_port));
}

// Blocking dial with retry until `timeout_ms`; returns the connected fd or
// -1.  `attempts` (optional) reports how many dials it took — attempts
// beyond the first are what the transport books as reconnects.
inline int dial(const std::string& host, std::uint16_t port,
                std::uint64_t timeout_ms, std::uint64_t* attempts = nullptr) {
  const sockaddr_in addr = resolve_ipv4(host, port);
  std::uint64_t tries = 0;
  for (std::uint64_t waited_ms = 0;;) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    PX_ASSERT_MSG(fd >= 0, "net: socket() failed");
    tries += 1;
    if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
        0) {
      if (attempts != nullptr) *attempts = tries;
      return fd;
    }
    close(fd);
    if (waited_ms >= timeout_ms) {
      if (attempts != nullptr) *attempts = tries;
      return -1;
    }
    usleep(50 * 1000);
    waited_ms += 50;
  }
}

// Blocking full-buffer send/recv (control plane and hellos only; the data
// plane is nonblocking).  Return false on EOF or error.
inline bool send_all(int fd, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

inline bool recv_all(int fd, void* data, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::recv(fd, p, len, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace px::net::detail
