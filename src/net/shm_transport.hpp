// Shared-memory transport: parcels between same-host ranks with zero
// syscalls on the hot path.
//
// Topology mirrors the TCP mesh — one OS process per rank — but the wire
// is a shm_open/mmap segment per unordered rank pair holding one SPSC byte
// ring per direction.  Each ring carries the PR 2 batch frames verbatim:
// a record is [u32 len][u32 units][frame bytes], 8-byte aligned, never
// straddling the wrap (a len=0xFFFFFFFF marker pads to the ring end).
// Because a record holds a *complete* frame, the receive path skips
// parcel::frame_assembler entirely: each frame passes once through
// whole_frame_ingest (the frame_view::parse validation gate shared with
// any future RDMA backend — see transport.hpp) and goes straight to the
// handler.
//
// Ring protocol (per direction; producer and consumer in different
// processes):
//   * `tail` (producer-owned) and `head` (consumer-owned) are monotonic
//     byte offsets in separate cache lines; each side caches its remote
//     index and refreshes only when the ring looks full/empty, so a
//     steady-state send is: write payload, bump tail (release), bump the
//     peer's doorbell counter — no syscall, no lock shared with the peer.
//   * Sleep/wake is a per-rank doorbell segment holding a futex word.
//     Receivers spin for shm.spin_us, then publish a `sleeping` flag
//     (Dekker-style: seq_cst on both sides), re-scan, and futex-wait on
//     the counter.  Senders bump the counter first and only issue
//     FUTEX_WAKE when `sleeping` is set — with both sides hot the wake
//     syscall disappears.  A stale counter observed by the sleeper makes
//     the kernel return EAGAIN, so no wakeup can be lost.
//   * in_flight() counts units the peer's consumer has not yet finished
//     handling (`consumed_units`, bumped after the handler returns) plus
//     anything parked in the local ring-full overflow queue — stronger
//     than TCP's written-to-kernel bound, and what makes drain() a true
//     peer-consumption barrier.
//
// Lifetime/crash-safety: the lower rank of each pair creates the pair
// segment before the bootstrap exchange and names it after its own
// endpoint token (the string other ranks learn from the exchange); the
// higher rank attaches in connect_peers and raises an `attached` flag, at
// which point the creator unlinks the name — from then on the segment
// lives exactly as long as its mappings and a crash leaks nothing.  Peer
// death is detected by pid liveness probes plus producer/consumer closed
// flags in the ring header; a dead or poisoned link drops its outstanding
// units into parcels_dropped_total() so the machine-wide conservation
// books still balance.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.hpp"
#include "util/shm_segment.hpp"
#include "util/spinlock.hpp"

namespace px::net {

struct shm_params {
  std::uint32_t rank = 0;
  std::uint32_t nranks = 2;
  // Per-direction ring capacity for each peer pair (PX_SHM_RING_BYTES).
  // A frame larger than the ring can never be shipped and is dropped with
  // a diagnostic.
  std::size_t ring_bytes = 1u << 20;
  // Receiver spin window before futex sleep (PX_SHM_SPIN_US); -1 resolves
  // by core count: generous when every rank can own a core, minimal when
  // ranks timeshare (spinning then only steals the sender's cycles).
  std::int64_t spin_us = -1;
  // Budget for peers to create/attach segments while the mesh comes up.
  std::uint64_t connect_timeout_ms = 20'000;
  // Poisons the link on any record claiming a frame larger than this.
  std::size_t max_frame_bytes = 64u << 20;
};

namespace detail {
struct shm_ring;
struct shm_pair_hdr;
struct shm_doorbell;
}  // namespace detail

class shm_transport final : public distributed_transport {
 public:
  explicit shm_transport(shm_params params);
  ~shm_transport() override;

  shm_transport(const shm_transport&) = delete;
  shm_transport& operator=(const shm_transport&) = delete;

  // The endpoint token other ranks use to derive this rank's segment
  // names; rides the bootstrap exchange where tcp puts "host:port".
  std::string listen_address() const override;
  void connect_peers(const std::vector<std::string>& table) override;

  // ------------------------------------------------- transport interface
  void set_handler(endpoint_id ep, handler h) override;
  void set_idle_callback(std::function<void()> cb) override;
  void send(message m) override;
  void drain() override;
  std::uint64_t in_flight() const noexcept override;
  std::uint64_t messages_sent_total() const noexcept override {
    return sent_total_.load(std::memory_order_acquire);
  }
  util::buffer_pool& pool() noexcept override { return pool_; }
  std::size_t endpoints() const noexcept override { return params_.nranks; }
  endpoint_stats stats(endpoint_id ep) const override;
  link_counters link(endpoint_id ep) const override;
  const char* backend_name() const noexcept override { return "shm"; }
  bool whole_frame_delivery() const noexcept override { return true; }
  // Shm-specific rows: sends parked because a peer ring was full, futex
  // wakeups actually issued (0 under steady spin = the zero-syscall hot
  // path is real), plus the shared resilience rows (peers confirmed dead,
  // units lost with them).
  std::vector<extra_link_counter> extra_link_counters(
      endpoint_id ep) const override;

  std::uint64_t parcels_received_total() const noexcept override {
    return received_total_.load(std::memory_order_acquire);
  }
  std::uint64_t parcels_dropped_total() const noexcept override {
    return dropped_total_.load(std::memory_order_acquire);
  }

  const shm_params& params() const noexcept { return params_; }

 protected:
  // distributed_transport resilience seam: request an asynchronous close
  // of the link to `rank` on the progress thread (external death verdict).
  void close_link(std::size_t rank) override;

 private:
  struct outgoing {
    std::vector<std::byte> buf;
    std::uint32_t units = 0;
  };
  struct peer {
    std::uint32_t rank = 0;
    std::atomic<bool> open{false};
    util::shm_segment seg;                 // the pair segment mapping
    detail::shm_pair_hdr* hdr = nullptr;
    detail::shm_ring* out = nullptr;       // ring we produce into
    detail::shm_ring* in = nullptr;        // ring we consume from
    std::byte* out_data = nullptr;
    std::byte* in_data = nullptr;
    std::size_t cap = 0;                   // per-direction ring bytes
    util::shm_segment db_seg;              // peer's doorbell mapping
    detail::shm_doorbell* db = nullptr;    // peer's doorbell (we ring it)
    util::spinlock send_lock;
    std::deque<outgoing> pendq;            // ring-full overflow (send_lock)
    std::atomic<std::uint64_t> pend_units{0};
    std::atomic<std::uint64_t> ring_units{0};  // units written to `out`
    whole_frame_ingest ingest{};
    std::uint64_t cached_head = 0;  // producer's cached view of out->head
    bool eof_noted = false;         // producer_closed already handled
  };

  void progress_loop();
  // Consumes everything currently in `p`'s inbound ring; returns true if
  // any record was handled.
  bool pump_ring(peer& p);
  // Moves parked overflow records into the ring as space frees up.
  bool pump_pend(peer& p);
  // Writes one record into p.out if it fits right now (send_lock held).
  bool ring_write(peer& p, const std::byte* data, std::size_t len,
                  std::uint32_t units);
  void ring_doorbell(peer& p);
  // `why == nullptr` means an orderly/expected close; anything else is an
  // unexpected disconnect and marks the peer dead in the shared books.
  void close_peer(peer& p, const char* why);
  void notify_if_drained();

  shm_params params_;
  std::string token_;  // this rank's endpoint token (names our segments)

  handler handler_;
  std::function<void()> idle_cb_;
  std::vector<std::unique_ptr<peer>> peers_;  // index == peer rank
  util::buffer_pool pool_;

  util::shm_segment own_db_seg_;           // our doorbell (we sleep on it)
  detail::shm_doorbell* own_db_ = nullptr;

  std::atomic<bool> traffic_started_{false};
  std::atomic<bool> stopping_{false};
  // Ranks whose links close_link() asked the progress thread to tear down.
  std::atomic<std::uint64_t> pending_dead_{0};

  std::atomic<std::uint64_t> sent_total_{0};
  std::atomic<std::uint64_t> received_total_{0};
  std::atomic<std::uint64_t> dropped_total_{0};

  std::atomic<std::uint64_t> msgs_tx_{0};
  std::atomic<std::uint64_t> parcels_tx_{0};
  std::atomic<std::uint64_t> bytes_tx_{0};
  std::atomic<std::uint64_t> msgs_rx_{0};
  std::atomic<std::uint64_t> bytes_rx_{0};
  std::atomic<std::uint64_t> ring_full_waits_{0};
  std::atomic<std::uint64_t> wakeups_{0};

  mutable std::mutex drain_mutex_;
  std::condition_variable drained_cv_;

  std::thread progress_;
};

}  // namespace px::net
