#include "net/bootstrap.hpp"

#include <poll.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "net/socket_util.hpp"
#include "util/assert.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"

namespace px::net {

namespace {

// Control record tags.  Every record is [u32 len][u8 tag][payload]; len
// covers tag + payload.  The control plane is tiny and latency-tolerant,
// so records are blocking and unbatched.
constexpr std::uint8_t kTagHello = 1;    // rank -> root: u32 rank + endpoint
constexpr std::uint8_t kTagTable = 2;    // root -> rank: endpoints + blob
constexpr std::uint8_t kTagBarrier = 3;  // both directions, empty payload
constexpr std::uint8_t kTagQuiesce = 4;  // rank -> root: 5 x u64
constexpr std::uint8_t kTagVerdict = 5;  // root -> rank: u8 quiescent
constexpr std::uint8_t kTagClockPing = 6;  // rank -> root: empty
constexpr std::uint8_t kTagClockPong = 7;  // root -> rank: u64 root now_ns
// Heartbeat channel (dedicated second connection per rank).
constexpr std::uint8_t kTagHbHello = 8;    // rank -> root: u32 rank
constexpr std::uint8_t kTagHb = 9;         // both directions, empty payload
constexpr std::uint8_t kTagPeerDown = 10;  // root -> rank: u32 dead rank
constexpr std::uint8_t kTagGoodbye = 11;   // orderly-shutdown announcement

// Collective poll slice: how often a blocked collective rechecks the dead
// mask; bounds how long a casualty can stall the survivors beyond the
// lease itself.
constexpr int kPollSliceMs = 50;

// Thin std::byte-buffer wrappers over the shared little-endian codec in
// socket_util.hpp (one byte-order authority for the whole net layer).
void append_u32(std::vector<std::byte>& out, std::uint32_t v) {
  std::uint8_t tmp[4];
  detail::put_u32(tmp, v);
  for (const std::uint8_t b : tmp) out.push_back(static_cast<std::byte>(b));
}

void append_u64(std::vector<std::byte>& out, std::uint64_t v) {
  std::uint8_t tmp[8];
  detail::put_u64(tmp, v);
  for (const std::uint8_t b : tmp) out.push_back(static_cast<std::byte>(b));
}

std::uint32_t read_u32(const std::byte* p) {
  return detail::get_u32(reinterpret_cast<const std::uint8_t*>(p));
}

std::uint64_t read_u64(const std::byte* p) {
  return detail::get_u64(reinterpret_cast<const std::uint8_t*>(p));
}

}  // namespace

bootstrap::bootstrap(bootstrap_params params) : params_(params) {
  PX_ASSERT(params_.nranks >= 1);
  PX_ASSERT_MSG(params_.rank < params_.nranks, "bootstrap: rank out of range");
  PX_ASSERT_MSG(params_.nranks <= 64,
                "bootstrap: the dead mask caps the machine at 64 ranks");
  PX_ASSERT_MSG(params_.lease_ms >= 1 && params_.heartbeat_interval_us >= 1,
                "bootstrap: heartbeat interval and lease must be nonzero");
  const auto [host, port] = detail::split_host_port_impl(params_.root);
  if (params_.rank == 0) {
    listen_fd_ = detail::make_listener(host, port);
    rank_fds_.assign(params_.nranks, -1);
    hb_fds_.assign(params_.nranks, -1);
  } else {
    root_fd_ = detail::dial(host, port, params_.connect_timeout_ms);
    PX_ASSERT_MSG(root_fd_ >= 0,
                  "bootstrap: cannot reach rank 0 (PX_NET_ROOT)");
  }
}

bootstrap::~bootstrap() {
  closing_.store(true, std::memory_order_release);
  if (hb_thread_.joinable()) hb_thread_.join();
  for (const int fd : rank_fds_) {
    if (fd >= 0) close(fd);
  }
  for (const int fd : hb_fds_) {
    if (fd >= 0) close(fd);
  }
  if (root_fd_ >= 0) close(root_fd_);
  if (hb_fd_ >= 0) close(hb_fd_);
  if (listen_fd_ >= 0) close(listen_fd_);
}

void bootstrap::send_record(int fd, std::uint8_t tag,
                            std::span<const std::byte> payload) {
  std::vector<std::byte> rec;
  rec.reserve(5 + payload.size());
  append_u32(rec, static_cast<std::uint32_t>(1 + payload.size()));
  rec.push_back(static_cast<std::byte>(tag));
  rec.insert(rec.end(), payload.begin(), payload.end());
  PX_ASSERT_MSG(detail::send_all(fd, rec.data(), rec.size()),
                "bootstrap: control send failed (peer died?)");
}

std::vector<std::byte> bootstrap::recv_record(int fd,
                                              std::uint8_t expect_tag) {
  std::byte header[4];
  PX_ASSERT_MSG(detail::recv_all(fd, header, sizeof header),
                "bootstrap: control recv failed (peer died?)");
  const std::uint32_t len = read_u32(header);
  PX_ASSERT_MSG(len >= 1 && len <= (1u << 20),
                "bootstrap: corrupt control record length");
  std::vector<std::byte> body(len);
  PX_ASSERT_MSG(detail::recv_all(fd, body.data(), body.size()),
                "bootstrap: control recv failed (peer died?)");
  PX_ASSERT_MSG(std::to_integer<std::uint8_t>(body[0]) == expect_tag,
                "bootstrap: unexpected control record tag (collective "
                "calls out of order?)");
  body.erase(body.begin());
  return body;
}

bool bootstrap::try_send_record(int fd, std::uint8_t tag,
                                std::span<const std::byte> payload) {
  std::vector<std::byte> rec;
  rec.reserve(5 + payload.size());
  append_u32(rec, static_cast<std::uint32_t>(1 + payload.size()));
  rec.push_back(static_cast<std::byte>(tag));
  rec.insert(rec.end(), payload.begin(), payload.end());
  return detail::send_all(fd, rec.data(), rec.size());
}

std::optional<std::pair<std::uint8_t, std::vector<std::byte>>>
bootstrap::try_recv_record_any(int fd) {
  std::byte header[4];
  if (!detail::recv_all(fd, header, sizeof header)) return std::nullopt;
  const std::uint32_t len = read_u32(header);
  PX_ASSERT_MSG(len >= 1 && len <= (1u << 20),
                "bootstrap: corrupt control record length");
  std::vector<std::byte> body(len);
  if (!detail::recv_all(fd, body.data(), body.size())) return std::nullopt;
  const auto tag = std::to_integer<std::uint8_t>(body[0]);
  body.erase(body.begin());
  return std::make_pair(tag, std::move(body));
}

std::uint32_t bootstrap::live_ranks() const noexcept {
  std::uint32_t n = 0;
  const std::uint64_t mask = dead_mask_.load(std::memory_order_acquire);
  for (std::uint32_t r = 0; r < params_.nranks; ++r) {
    if (((mask >> r) & 1u) == 0) n += 1;
  }
  return n;
}

void bootstrap::set_peer_down_handler(std::function<void(std::uint32_t)> h) {
  std::lock_guard lock(handler_mutex_);
  on_peer_down_ = std::move(h);
}

void bootstrap::expect_shutdown() noexcept {
  if (closing_.exchange(true, std::memory_order_acq_rel)) return;
  // Tell the other side the silence to come is orderly, so its lease/EOF
  // detectors stand down even if our process exits before it reacts.
  std::lock_guard lock(hb_send_mutex_);
  if (params_.rank == 0) {
    for (std::uint32_t r = 1; r < params_.nranks; ++r) {
      if (hb_fds_[r] >= 0 && is_alive(r)) {
        (void)try_send_record(hb_fds_[r], kTagGoodbye, {});
      }
    }
  } else if (hb_fd_ >= 0) {
    (void)try_send_record(hb_fd_, kTagGoodbye, {});
  }
}

void bootstrap::note_rank_dead(std::uint32_t rank) {
  if (rank < params_.nranks) death_verdict(rank, "reported by the runtime");
}

void bootstrap::fail_fast(std::uint32_t rank, const char* why) {
  PX_LOG_ERROR(
      "bootstrap: rank %u is lost (%s) and this machine cannot survive "
      "rank loss here -- exiting",
      rank, why);
  // _Exit, not abort: the diagnostic above *is* the product; a core dump
  // of the surviving process would only bury it.
  std::_Exit(1);
}

void bootstrap::require_survivable(std::uint32_t rank) {
  if (closing_.load(std::memory_order_acquire)) return;
  std::lock_guard lock(handler_mutex_);
  // A thread that merely *observes* an existing verdict must die here in
  // fail-fast mode: the thread that issued the verdict may still be
  // between its dead-mask store and its _Exit, and an observer sailing
  // past the shrunk collective could beat it to a clean exit code.  The
  // issuing thread owns the diagnostic; this exit is silent on purpose.
  if (on_peer_down_ == nullptr || rank == 0) std::_Exit(1);
}

void bootstrap::death_verdict(std::uint32_t rank, const char* why) {
  if (closing_.load(std::memory_order_acquire)) return;
  const std::uint64_t bit = 1ull << rank;
  if (dead_mask_.fetch_or(bit, std::memory_order_acq_rel) & bit) {
    require_survivable(rank);
    return;
  }
  std::function<void(std::uint32_t)> handler;
  {
    std::lock_guard lock(handler_mutex_);
    handler = on_peer_down_;
  }
  // Rank 0 is the control plane: nobody survives its loss.  Everything
  // else is survivable once a peer-down handler is armed.
  if (handler == nullptr || rank == 0) fail_fast(rank, why);
  PX_LOG_WARN("bootstrap: rank %u declared dead (%s); continuing with %u "
              "live ranks",
              rank, why, live_ranks());
  if (params_.rank == 0) {
    // Broadcast the verdict so survivors that cannot see the casualty
    // directly (e.g. it died silently between heartbeats) converge fast.
    std::vector<std::byte> payload;
    append_u32(payload, rank);
    std::lock_guard lock(hb_send_mutex_);
    for (std::uint32_t r = 1; r < params_.nranks; ++r) {
      if (r == rank || hb_fds_[r] < 0 || !is_alive(r)) continue;
      (void)try_send_record(hb_fds_[r], kTagPeerDown, payload);
    }
  }
  handler(rank);
}

std::optional<std::vector<std::byte>> bootstrap::recv_from_live(
    std::uint32_t r, std::uint8_t tag) {
  for (;;) {
    if (!is_alive(r)) {
      require_survivable(r);
      return std::nullopt;
    }
    pollfd p{rank_fds_[r], POLLIN, 0};
    const int rc = ::poll(&p, 1, kPollSliceMs);
    if (rc < 0) {
      PX_ASSERT_MSG(errno == EINTR, "bootstrap: poll() failed");
      continue;
    }
    if (rc == 0) continue;  // re-check the dead mask, poll again
    auto rec = try_recv_record_any(rank_fds_[r]);
    if (!rec.has_value()) {
      death_verdict(r, "control socket EOF mid-collective");
      return std::nullopt;
    }
    PX_ASSERT_MSG(rec->first == tag,
                  "bootstrap: unexpected control record tag (collective "
                  "calls out of order?)");
    return std::move(rec->second);
  }
}

void bootstrap::send_to_live(std::uint32_t r, std::uint8_t tag,
                             std::span<const std::byte> payload) {
  if (!is_alive(r)) {
    require_survivable(r);
    return;
  }
  if (!try_send_record(rank_fds_[r], tag, payload)) {
    death_verdict(r, "control socket reset mid-collective");
  }
}

bootstrap::exchange_result bootstrap::exchange(
    const std::string& my_endpoint, std::span<const std::byte> root_blob) {
  exchange_result out;
  // Boot has no heartbeats yet, so the accept loops are bounded by the
  // connect budget instead: a rank that dies before saying hello turns
  // into a clean root-side diagnostic and nonzero exit, never a hang (and
  // the root's exit EOFs every other rank out in turn).
  const auto boot_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(params_.connect_timeout_ms);
  const auto accept_or_die = [&](const char* phase) {
    for (;;) {
      pollfd p{listen_fd_, POLLIN, 0};
      const int rc = ::poll(&p, 1, kPollSliceMs);
      if (rc < 0) {
        PX_ASSERT_MSG(errno == EINTR, "bootstrap: poll() failed");
        continue;
      }
      if (rc > 0) {
        const int fd = accept(listen_fd_, nullptr, nullptr);
        PX_ASSERT_MSG(fd >= 0, "bootstrap: accept() failed");
        return fd;
      }
      if (std::chrono::steady_clock::now() >= boot_deadline) {
        PX_LOG_ERROR(
            "bootstrap: gave up waiting for %s after %llu ms -- a rank "
            "died (or never started) during boot; exiting",
            phase,
            static_cast<unsigned long long>(params_.connect_timeout_ms));
        std::_Exit(1);
      }
    }
  };
  if (params_.rank == 0) {
    // Collect every rank's hello; the launcher may start them in any
    // order, so accept until all are in.
    std::vector<std::string> endpoints(params_.nranks);
    endpoints[0] = my_endpoint;
    for (std::uint32_t seen = 1; seen < params_.nranks;) {
      const int fd = accept_or_die("rank hellos");
      const auto hello_rec = try_recv_record_any(fd);
      if (!hello_rec.has_value()) {
        PX_LOG_ERROR(
            "bootstrap: a rank's control connection died mid-hello; "
            "exiting");
        std::_Exit(1);
      }
      PX_ASSERT_MSG(hello_rec->first == kTagHello,
                    "bootstrap: unexpected control record tag (collective "
                    "calls out of order?)");
      const auto& hello = hello_rec->second;
      PX_ASSERT_MSG(hello.size() > 4, "bootstrap: malformed hello");
      const std::uint32_t r = read_u32(hello.data());
      PX_ASSERT_MSG(r >= 1 && r < params_.nranks,
                    "bootstrap: hello rank out of range");
      PX_ASSERT_MSG(rank_fds_[r] < 0, "bootstrap: duplicate rank hello "
                                      "(two processes share a rank?)");
      rank_fds_[r] = fd;
      endpoints[r].assign(
          reinterpret_cast<const char*>(hello.data()) + 4,
          hello.size() - 4);
      seen += 1;
    }
    // Broadcast the table + the root param blob: endpoints are
    // newline-joined (addresses never contain '\n').
    std::vector<std::byte> reply;
    std::string joined;
    for (std::uint32_t r = 0; r < params_.nranks; ++r) {
      joined += endpoints[r];
      joined += '\n';
    }
    append_u32(reply, static_cast<std::uint32_t>(joined.size()));
    for (const char c : joined) reply.push_back(static_cast<std::byte>(c));
    reply.insert(reply.end(), root_blob.begin(), root_blob.end());
    for (std::uint32_t r = 1; r < params_.nranks; ++r) {
      send_record(rank_fds_[r], kTagTable, reply);
    }
    out.endpoints = std::move(endpoints);
    out.params_blob.assign(root_blob.begin(), root_blob.end());
    PX_LOG_INFO("bootstrap: %u ranks registered", params_.nranks);
  } else {
    std::vector<std::byte> hello;
    append_u32(hello, params_.rank);
    for (const char c : my_endpoint) {
      hello.push_back(static_cast<std::byte>(c));
    }
    auto table_rec = std::optional<
        std::pair<std::uint8_t, std::vector<std::byte>>>{};
    if (try_send_record(root_fd_, kTagHello, hello)) {
      table_rec = try_recv_record_any(root_fd_);
    }
    if (!table_rec.has_value()) {
      // Root exits with its own diagnostic when any rank dies during
      // boot; our EOF here is the echo of that.
      PX_LOG_ERROR(
          "bootstrap: rank 0 went away during boot (another rank died "
          "before hello?); exiting");
      std::_Exit(1);
    }
    PX_ASSERT_MSG(table_rec->first == kTagTable,
                  "bootstrap: unexpected control record tag (collective "
                  "calls out of order?)");
    const auto& reply = table_rec->second;
    PX_ASSERT_MSG(reply.size() >= 4, "bootstrap: malformed table");
    const std::uint32_t joined_len = read_u32(reply.data());
    PX_ASSERT_MSG(4 + joined_len <= reply.size(),
                  "bootstrap: malformed table");
    std::string joined(reinterpret_cast<const char*>(reply.data()) + 4,
                       joined_len);
    std::size_t pos = 0;
    for (std::uint32_t r = 0; r < params_.nranks; ++r) {
      const std::size_t nl = joined.find('\n', pos);
      PX_ASSERT_MSG(nl != std::string::npos, "bootstrap: short table");
      out.endpoints.push_back(joined.substr(pos, nl - pos));
      pos = nl + 1;
    }
    out.params_blob.assign(reply.begin() + 4 + joined_len, reply.end());
  }

  // Open the dedicated heartbeat channel (a second connection per rank)
  // and start the failure detector.  Kept off the main control sockets so
  // heartbeats never interleave with in-order collective records.
  if (params_.nranks > 1) {
    if (params_.rank == 0) {
      for (std::uint32_t seen = 1; seen < params_.nranks; ++seen) {
        const int fd = accept_or_die("heartbeat channels");
        const auto hb_hello = try_recv_record_any(fd);
        if (!hb_hello.has_value()) {
          PX_LOG_ERROR(
              "bootstrap: a rank died opening its heartbeat channel; "
              "exiting");
          std::_Exit(1);
        }
        PX_ASSERT_MSG(
            hb_hello->first == kTagHbHello && hb_hello->second.size() == 4,
            "bootstrap: malformed heartbeat hello");
        const std::uint32_t r = read_u32(hb_hello->second.data());
        PX_ASSERT_MSG(r >= 1 && r < params_.nranks && hb_fds_[r] < 0,
                      "bootstrap: heartbeat hello rank out of range");
        hb_fds_[r] = fd;
      }
    } else {
      const auto [host, port] = detail::split_host_port_impl(params_.root);
      hb_fd_ = detail::dial(host, port, params_.connect_timeout_ms);
      PX_ASSERT_MSG(hb_fd_ >= 0,
                    "bootstrap: cannot open heartbeat channel to rank 0");
      std::vector<std::byte> hb_hello;
      append_u32(hb_hello, params_.rank);
      send_record(hb_fd_, kTagHbHello, hb_hello);
    }
    start_heartbeat();
  }
  return out;
}

void bootstrap::start_heartbeat() {
  if (params_.rank == 0) {
    hb_thread_ = std::thread([this] { hb_loop_root(); });
  } else {
    hb_thread_ = std::thread([this] { hb_loop_rank(); });
  }
}

void bootstrap::hb_loop_root() {
  using clock = std::chrono::steady_clock;
  const auto interval =
      std::chrono::microseconds(params_.heartbeat_interval_us);
  const auto lease = std::chrono::milliseconds(params_.lease_ms);
  const int slice_ms = static_cast<int>(
      std::min<std::uint64_t>(params_.heartbeat_interval_us / 1000 + 1, 50));
  std::vector<clock::time_point> last_rx(params_.nranks, clock::now());
  auto last_tx = clock::now() - interval;
  std::vector<pollfd> fds;
  std::vector<std::uint32_t> fd_rank;
  while (!closing_.load(std::memory_order_acquire)) {
    fds.clear();
    fd_rank.clear();
    const std::uint64_t gone = goodbye_mask_.load(std::memory_order_acquire);
    for (std::uint32_t r = 1; r < params_.nranks; ++r) {
      if (!is_alive(r) || ((gone >> r) & 1u) != 0) continue;
      fds.push_back({hb_fds_[r], POLLIN, 0});
      fd_rank.push_back(r);
    }
    if (fds.empty()) return;  // every peer dead or said goodbye
    const int rc = ::poll(fds.data(), fds.size(), slice_ms);
    if (rc < 0 && errno != EINTR) return;
    const auto now = clock::now();
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const std::uint32_t r = fd_rank[i];
      const auto rec = try_recv_record_any(hb_fds_[r]);
      if (!rec.has_value()) {
        death_verdict(r, "heartbeat channel EOF");
        continue;
      }
      if (rec->first == kTagHb) {
        last_rx[r] = now;
      } else if (rec->first == kTagGoodbye) {
        goodbye_mask_.fetch_or(1ull << r, std::memory_order_acq_rel);
      }
    }
    if (now - last_tx >= interval) {
      last_tx = now;
      // Verdicts re-take hb_send_mutex_ to broadcast kTagPeerDown, so a
      // verdict issued under the fan-out lock self-deadlocks this thread.
      // Collect the failed ranks and judge them after the lock drops.
      std::vector<std::uint32_t> reset;
      {
        std::lock_guard lock(hb_send_mutex_);
        for (const std::uint32_t r : fd_rank) {
          if (!is_alive(r)) continue;
          if (!try_send_record(hb_fds_[r], kTagHb, {})) reset.push_back(r);
        }
      }
      for (const std::uint32_t r : reset) {
        death_verdict(r, "heartbeat channel reset");
      }
    }
    for (const std::uint32_t r : fd_rank) {
      if (is_alive(r) && now - last_rx[r] > lease) {
        death_verdict(r, "heartbeat lease expired");
      }
    }
  }
}

void bootstrap::hb_loop_rank() {
  using clock = std::chrono::steady_clock;
  const auto interval =
      std::chrono::microseconds(params_.heartbeat_interval_us);
  const auto lease = std::chrono::milliseconds(params_.lease_ms);
  const int slice_ms = static_cast<int>(
      std::min<std::uint64_t>(params_.heartbeat_interval_us / 1000 + 1, 50));
  auto last_root_rx = clock::now();
  auto last_tx = clock::now() - interval;
  while (!closing_.load(std::memory_order_acquire)) {
    pollfd p{hb_fd_, POLLIN, 0};
    const int rc = ::poll(&p, 1, slice_ms);
    if (rc < 0 && errno != EINTR) return;
    const auto now = clock::now();
    if (rc > 0 && (p.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      const auto rec = try_recv_record_any(hb_fd_);
      if (!rec.has_value()) {
        death_verdict(0, "heartbeat channel EOF");
        return;
      }
      if (rec->first == kTagHb) {
        last_root_rx = now;
      } else if (rec->first == kTagPeerDown) {
        PX_ASSERT_MSG(rec->second.size() == 4,
                      "bootstrap: malformed peer-down record");
        // Wire-supplied rank: bounds-check before the 1<<rank inside
        // death_verdict (mirrors note_rank_dead's guard).
        const std::uint32_t dead = read_u32(rec->second.data());
        if (dead < params_.nranks) {
          death_verdict(dead, "announced dead by rank 0");
        }
      } else if (rec->first == kTagGoodbye) {
        // Root is shutting the machine down cleanly; everything that goes
        // silent from here is expected.
        closing_.store(true, std::memory_order_release);
        return;
      }
    }
    if (now - last_tx >= interval) {
      last_tx = now;
      std::lock_guard lock(hb_send_mutex_);
      if (!try_send_record(hb_fd_, kTagHb, {})) {
        death_verdict(0, "heartbeat channel reset");
        return;
      }
    }
    if (now - last_root_rx > lease) {
      death_verdict(0, "heartbeat lease expired");
      return;
    }
  }
}

void bootstrap::barrier(std::uint64_t digest) {
  std::vector<std::byte> payload;
  append_u64(payload, digest);
  if (params_.rank == 0) {
    for (std::uint32_t r = 1; r < params_.nranks; ++r) {
      const auto rec = recv_from_live(r, kTagBarrier);
      if (!rec.has_value()) continue;  // casualty: the barrier shrinks
      PX_ASSERT(rec->size() == 8);
      PX_ASSERT_MSG(digest == 0 || read_u64(rec->data()) == digest,
                    "bootstrap: ranks disagree on the boot-time schema "
                    "digest (counter registration drift between "
                    "processes?)");
    }
    for (std::uint32_t r = 1; r < params_.nranks; ++r) {
      send_to_live(r, kTagBarrier, payload);
    }
  } else {
    if (!try_send_record(root_fd_, kTagBarrier, payload)) {
      death_verdict(0, "control socket reset in barrier");
      return;  // unreachable: losing rank 0 is fatal
    }
    // Blocking is safe: rank 0's side of this collective is lease-bounded,
    // and its own death EOFs us out into the fatal path.
    const auto release = try_recv_record_any(root_fd_);
    if (!release.has_value()) {
      death_verdict(0, "control socket EOF in barrier");
      return;
    }
    PX_ASSERT_MSG(release->first == kTagBarrier,
                  "bootstrap: unexpected control record tag (collective "
                  "calls out of order?)");
  }
}

bool bootstrap::quiesce_round(bool locally_stable, std::uint64_t activity,
                              std::uint64_t parcels_sent_remote,
                              std::uint64_t parcels_delivered_remote) {
  constexpr std::size_t kFields = 5;  // per-rank report width
  const std::uint64_t my_mask = dead_mask_.load(std::memory_order_acquire);
  std::vector<std::byte> report;
  append_u64(report, locally_stable ? 1 : 0);
  append_u64(report, activity);
  append_u64(report, parcels_sent_remote);
  append_u64(report, parcels_delivered_remote);
  append_u64(report, my_mask);

  if (params_.rank != 0) {
    if (!try_send_record(root_fd_, kTagQuiesce, report)) {
      death_verdict(0, "control socket reset in quiesce");
      return false;  // unreachable: losing rank 0 is fatal
    }
    const auto verdict_rec = try_recv_record_any(root_fd_);
    if (!verdict_rec.has_value()) {
      death_verdict(0, "control socket EOF in quiesce");
      return false;
    }
    PX_ASSERT(verdict_rec->first == kTagVerdict &&
              verdict_rec->second.size() == 1);
    return std::to_integer<std::uint8_t>(verdict_rec->second[0]) != 0;
  }

  // Root: gather the live ranks (self included) into one rank-ordered
  // vector.  Dead ranks contribute constant all-zero rows, so once the
  // membership stabilizes the two-identical-gathers rule works exactly as
  // in the full-machine protocol; the round a casualty drops out, its row
  // changes and forces at least one more confirming round.
  std::vector<std::uint64_t> gather(params_.nranks * kFields, 0);
  gather[0] = locally_stable ? 1 : 0;
  gather[1] = activity;
  gather[2] = parcels_sent_remote;
  gather[3] = parcels_delivered_remote;
  gather[4] = my_mask;
  bool membership_changed = false;
  for (std::uint32_t r = 1; r < params_.nranks; ++r) {
    // A rank already confirmed dead contributes its constant zero row
    // without being polled — only a death *during* this gather is a
    // membership change.  (Flagging long-dead ranks every round would
    // veto the verdict forever.)
    if (!is_alive(r)) continue;
    const auto rec = recv_from_live(r, kTagQuiesce);
    if (!rec.has_value()) {
      // Died mid-gather: zero row, and never declare quiescence on the
      // round that shrank the membership.
      membership_changed = true;
      continue;
    }
    PX_ASSERT(rec->size() == kFields * 8);
    for (std::size_t f = 0; f < kFields; ++f) {
      gather[r * kFields + f] = read_u64(rec->data() + f * 8);
    }
  }

  bool all_stable = true;
  bool masks_agree = true;
  std::uint64_t sent_sum = 0, delivered_sum = 0;
  for (std::uint32_t r = 0; r < params_.nranks; ++r) {
    if (!is_alive(r)) continue;
    all_stable = all_stable && gather[r * kFields] == 1;
    sent_sum += gather[r * kFields + 2];
    delivered_sum += gather[r * kFields + 3];
    // Every survivor must have folded the same casualties into its books,
    // or the sent/delivered totals aren't comparable yet.
    masks_agree = masks_agree && gather[r * kFields + 4] == my_mask;
  }
  // Two identical consecutive gathers make round N-1 a consistent cut: any
  // parcel in flight (or delivered-then-reacting) between the gathers
  // would have moved a sent/delivered/activity counter somewhere.
  const bool quiescent = all_stable && masks_agree && !membership_changed &&
                         sent_sum == delivered_sum && gather == prev_gather_;
  {
    // Stuck-round diagnostic: if the machine spins without converging,
    // say why (which term of the verdict fails and with what numbers).
    static std::atomic<std::uint64_t> rounds{0};
    if (!quiescent && (rounds.fetch_add(1) + 1) % 4096 == 0) {
      PX_LOG_WARN("quiesce not converging after %llu rounds: stable=%d "
                  "masks=%d membership=%d sent=%llu delivered=%llu",
                  static_cast<unsigned long long>(rounds.load()),
                  all_stable ? 1 : 0, masks_agree ? 1 : 0,
                  membership_changed ? 1 : 0,
                  static_cast<unsigned long long>(sent_sum),
                  static_cast<unsigned long long>(delivered_sum));
      for (std::uint32_t r = 0; r < params_.nranks; ++r) {
        if (!is_alive(r)) continue;
        PX_LOG_WARN("  rank %u: stable=%llu activity=%llu sent=%llu "
                    "delivered=%llu mask=%llx",
                    r,
                    static_cast<unsigned long long>(gather[r * kFields]),
                    static_cast<unsigned long long>(gather[r * kFields + 1]),
                    static_cast<unsigned long long>(gather[r * kFields + 2]),
                    static_cast<unsigned long long>(gather[r * kFields + 3]),
                    static_cast<unsigned long long>(gather[r * kFields + 4]));
      }
    }
  }
  prev_gather_ = quiescent ? std::vector<std::uint64_t>{} : std::move(gather);

  const std::byte verdict{static_cast<std::uint8_t>(quiescent ? 1 : 0)};
  for (std::uint32_t r = 1; r < params_.nranks; ++r) {
    send_to_live(r, kTagVerdict, std::span(&verdict, 1));
  }
  return quiescent;
}

std::int64_t bootstrap::clock_sync() {
  constexpr int kSamples = 5;
  if (params_.rank == 0) {
    // Serve each rank's pings in rank order; every rank has a dedicated
    // control socket, so serializing here just paces the dialers.
    for (std::uint32_t r = 1; r < params_.nranks; ++r) {
      for (int s = 0; s < kSamples; ++s) {
        (void)recv_record(rank_fds_[r], kTagClockPing);
        std::vector<std::byte> pong;
        append_u64(pong, static_cast<std::uint64_t>(util::now_ns()));
        send_record(rank_fds_[r], kTagClockPong, pong);
      }
    }
    return 0;
  }
  std::int64_t best_rtt = 0;
  std::int64_t best_offset = 0;
  for (int s = 0; s < kSamples; ++s) {
    const std::int64_t t0 = util::now_ns();
    send_record(root_fd_, kTagClockPing, {});
    const auto pong = recv_record(root_fd_, kTagClockPong);
    const std::int64_t t1 = util::now_ns();
    PX_ASSERT(pong.size() == 8);
    const auto t_root = static_cast<std::int64_t>(read_u64(pong.data()));
    const std::int64_t rtt = t1 - t0;
    // The midpoint estimate is most trustworthy on the tightest round
    // trip (least asymmetric queueing).
    if (s == 0 || rtt < best_rtt) {
      best_rtt = rtt;
      best_offset = (t0 + t1) / 2 - t_root;
    }
  }
  return best_offset;
}

}  // namespace px::net
