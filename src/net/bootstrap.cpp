#include "net/bootstrap.hpp"

#include <unistd.h>

#include <cstring>

#include "net/socket_util.hpp"
#include "util/assert.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"

namespace px::net {

namespace {

// Control record tags.  Every record is [u32 len][u8 tag][payload]; len
// covers tag + payload.  The control plane is tiny and latency-tolerant,
// so records are blocking and unbatched.
constexpr std::uint8_t kTagHello = 1;    // rank -> root: u32 rank + endpoint
constexpr std::uint8_t kTagTable = 2;    // root -> rank: endpoints + blob
constexpr std::uint8_t kTagBarrier = 3;  // both directions, empty payload
constexpr std::uint8_t kTagQuiesce = 4;  // rank -> root: 4 x u64
constexpr std::uint8_t kTagVerdict = 5;  // root -> rank: u8 quiescent
constexpr std::uint8_t kTagClockPing = 6;  // rank -> root: empty
constexpr std::uint8_t kTagClockPong = 7;  // root -> rank: u64 root now_ns

// Thin std::byte-buffer wrappers over the shared little-endian codec in
// socket_util.hpp (one byte-order authority for the whole net layer).
void append_u32(std::vector<std::byte>& out, std::uint32_t v) {
  std::uint8_t tmp[4];
  detail::put_u32(tmp, v);
  for (const std::uint8_t b : tmp) out.push_back(static_cast<std::byte>(b));
}

void append_u64(std::vector<std::byte>& out, std::uint64_t v) {
  std::uint8_t tmp[8];
  detail::put_u64(tmp, v);
  for (const std::uint8_t b : tmp) out.push_back(static_cast<std::byte>(b));
}

std::uint32_t read_u32(const std::byte* p) {
  return detail::get_u32(reinterpret_cast<const std::uint8_t*>(p));
}

std::uint64_t read_u64(const std::byte* p) {
  return detail::get_u64(reinterpret_cast<const std::uint8_t*>(p));
}

}  // namespace

bootstrap::bootstrap(bootstrap_params params) : params_(params) {
  PX_ASSERT(params_.nranks >= 1);
  PX_ASSERT_MSG(params_.rank < params_.nranks, "bootstrap: rank out of range");
  const auto [host, port] = detail::split_host_port_impl(params_.root);
  if (params_.rank == 0) {
    listen_fd_ = detail::make_listener(host, port);
    rank_fds_.assign(params_.nranks, -1);
  } else {
    root_fd_ = detail::dial(host, port, params_.connect_timeout_ms);
    PX_ASSERT_MSG(root_fd_ >= 0,
                  "bootstrap: cannot reach rank 0 (PX_NET_ROOT)");
  }
}

bootstrap::~bootstrap() {
  for (const int fd : rank_fds_) {
    if (fd >= 0) close(fd);
  }
  if (root_fd_ >= 0) close(root_fd_);
  if (listen_fd_ >= 0) close(listen_fd_);
}

void bootstrap::send_record(int fd, std::uint8_t tag,
                            std::span<const std::byte> payload) {
  std::vector<std::byte> rec;
  rec.reserve(5 + payload.size());
  append_u32(rec, static_cast<std::uint32_t>(1 + payload.size()));
  rec.push_back(static_cast<std::byte>(tag));
  rec.insert(rec.end(), payload.begin(), payload.end());
  PX_ASSERT_MSG(detail::send_all(fd, rec.data(), rec.size()),
                "bootstrap: control send failed (peer died?)");
}

std::vector<std::byte> bootstrap::recv_record(int fd,
                                              std::uint8_t expect_tag) {
  std::byte header[4];
  PX_ASSERT_MSG(detail::recv_all(fd, header, sizeof header),
                "bootstrap: control recv failed (peer died?)");
  const std::uint32_t len = read_u32(header);
  PX_ASSERT_MSG(len >= 1 && len <= (1u << 20),
                "bootstrap: corrupt control record length");
  std::vector<std::byte> body(len);
  PX_ASSERT_MSG(detail::recv_all(fd, body.data(), body.size()),
                "bootstrap: control recv failed (peer died?)");
  PX_ASSERT_MSG(std::to_integer<std::uint8_t>(body[0]) == expect_tag,
                "bootstrap: unexpected control record tag (collective "
                "calls out of order?)");
  body.erase(body.begin());
  return body;
}

bootstrap::exchange_result bootstrap::exchange(
    const std::string& my_endpoint, std::span<const std::byte> root_blob) {
  exchange_result out;
  if (params_.rank == 0) {
    // Collect every rank's hello; the launcher may start them in any
    // order, so accept until all are in.
    std::vector<std::string> endpoints(params_.nranks);
    endpoints[0] = my_endpoint;
    for (std::uint32_t seen = 1; seen < params_.nranks;) {
      const int fd = accept(listen_fd_, nullptr, nullptr);
      PX_ASSERT_MSG(fd >= 0, "bootstrap: accept() failed");
      const auto hello = recv_record(fd, kTagHello);
      PX_ASSERT_MSG(hello.size() > 4, "bootstrap: malformed hello");
      const std::uint32_t r = read_u32(hello.data());
      PX_ASSERT_MSG(r >= 1 && r < params_.nranks,
                    "bootstrap: hello rank out of range");
      PX_ASSERT_MSG(rank_fds_[r] < 0, "bootstrap: duplicate rank hello "
                                      "(two processes share a rank?)");
      rank_fds_[r] = fd;
      endpoints[r].assign(
          reinterpret_cast<const char*>(hello.data()) + 4,
          hello.size() - 4);
      seen += 1;
    }
    // Broadcast the table + the root param blob: endpoints are
    // newline-joined (addresses never contain '\n').
    std::vector<std::byte> reply;
    std::string joined;
    for (std::uint32_t r = 0; r < params_.nranks; ++r) {
      joined += endpoints[r];
      joined += '\n';
    }
    append_u32(reply, static_cast<std::uint32_t>(joined.size()));
    for (const char c : joined) reply.push_back(static_cast<std::byte>(c));
    reply.insert(reply.end(), root_blob.begin(), root_blob.end());
    for (std::uint32_t r = 1; r < params_.nranks; ++r) {
      send_record(rank_fds_[r], kTagTable, reply);
    }
    out.endpoints = std::move(endpoints);
    out.params_blob.assign(root_blob.begin(), root_blob.end());
    PX_LOG_INFO("bootstrap: %u ranks registered", params_.nranks);
  } else {
    std::vector<std::byte> hello;
    append_u32(hello, params_.rank);
    for (const char c : my_endpoint) {
      hello.push_back(static_cast<std::byte>(c));
    }
    send_record(root_fd_, kTagHello, hello);
    const auto reply = recv_record(root_fd_, kTagTable);
    PX_ASSERT_MSG(reply.size() >= 4, "bootstrap: malformed table");
    const std::uint32_t joined_len = read_u32(reply.data());
    PX_ASSERT_MSG(4 + joined_len <= reply.size(),
                  "bootstrap: malformed table");
    std::string joined(reinterpret_cast<const char*>(reply.data()) + 4,
                       joined_len);
    std::size_t pos = 0;
    for (std::uint32_t r = 0; r < params_.nranks; ++r) {
      const std::size_t nl = joined.find('\n', pos);
      PX_ASSERT_MSG(nl != std::string::npos, "bootstrap: short table");
      out.endpoints.push_back(joined.substr(pos, nl - pos));
      pos = nl + 1;
    }
    out.params_blob.assign(reply.begin() + 4 + joined_len, reply.end());
  }
  return out;
}

void bootstrap::barrier(std::uint64_t digest) {
  std::vector<std::byte> payload;
  append_u64(payload, digest);
  if (params_.rank == 0) {
    for (std::uint32_t r = 1; r < params_.nranks; ++r) {
      const auto rec = recv_record(rank_fds_[r], kTagBarrier);
      PX_ASSERT(rec.size() == 8);
      PX_ASSERT_MSG(digest == 0 || read_u64(rec.data()) == digest,
                    "bootstrap: ranks disagree on the boot-time schema "
                    "digest (counter registration drift between "
                    "processes?)");
    }
    for (std::uint32_t r = 1; r < params_.nranks; ++r) {
      send_record(rank_fds_[r], kTagBarrier, payload);
    }
  } else {
    send_record(root_fd_, kTagBarrier, payload);
    (void)recv_record(root_fd_, kTagBarrier);
  }
}

bool bootstrap::quiesce_round(bool locally_stable, std::uint64_t activity,
                              std::uint64_t parcels_sent_remote,
                              std::uint64_t parcels_delivered_remote) {
  constexpr std::size_t kFields = 4;  // per-rank report width
  std::vector<std::byte> report;
  append_u64(report, locally_stable ? 1 : 0);
  append_u64(report, activity);
  append_u64(report, parcels_sent_remote);
  append_u64(report, parcels_delivered_remote);

  if (params_.rank != 0) {
    send_record(root_fd_, kTagQuiesce, report);
    const auto verdict = recv_record(root_fd_, kTagVerdict);
    PX_ASSERT(verdict.size() == 1);
    return std::to_integer<std::uint8_t>(verdict[0]) != 0;
  }

  // Root: gather everyone (self included) into one rank-ordered vector.
  std::vector<std::uint64_t> gather(params_.nranks * kFields);
  gather[0] = locally_stable ? 1 : 0;
  gather[1] = activity;
  gather[2] = parcels_sent_remote;
  gather[3] = parcels_delivered_remote;
  for (std::uint32_t r = 1; r < params_.nranks; ++r) {
    const auto rec = recv_record(rank_fds_[r], kTagQuiesce);
    PX_ASSERT(rec.size() == kFields * 8);
    for (std::size_t f = 0; f < kFields; ++f) {
      gather[r * kFields + f] = read_u64(rec.data() + f * 8);
    }
  }

  bool all_stable = true;
  std::uint64_t sent_sum = 0, delivered_sum = 0;
  for (std::uint32_t r = 0; r < params_.nranks; ++r) {
    all_stable = all_stable && gather[r * kFields] == 1;
    sent_sum += gather[r * kFields + 2];
    delivered_sum += gather[r * kFields + 3];
  }
  // Two identical consecutive gathers make round N-1 a consistent cut: any
  // parcel in flight (or delivered-then-reacting) between the gathers
  // would have moved a sent/delivered/activity counter somewhere.
  const bool quiescent =
      all_stable && sent_sum == delivered_sum && gather == prev_gather_;
  prev_gather_ = quiescent ? std::vector<std::uint64_t>{} : std::move(gather);

  const std::byte verdict{static_cast<std::uint8_t>(quiescent ? 1 : 0)};
  for (std::uint32_t r = 1; r < params_.nranks; ++r) {
    send_record(rank_fds_[r], kTagVerdict, std::span(&verdict, 1));
  }
  return quiescent;
}

std::int64_t bootstrap::clock_sync() {
  constexpr int kSamples = 5;
  if (params_.rank == 0) {
    // Serve each rank's pings in rank order; every rank has a dedicated
    // control socket, so serializing here just paces the dialers.
    for (std::uint32_t r = 1; r < params_.nranks; ++r) {
      for (int s = 0; s < kSamples; ++s) {
        (void)recv_record(rank_fds_[r], kTagClockPing);
        std::vector<std::byte> pong;
        append_u64(pong, static_cast<std::uint64_t>(util::now_ns()));
        send_record(rank_fds_[r], kTagClockPong, pong);
      }
    }
    return 0;
  }
  std::int64_t best_rtt = 0;
  std::int64_t best_offset = 0;
  for (int s = 0; s < kSamples; ++s) {
    const std::int64_t t0 = util::now_ns();
    send_record(root_fd_, kTagClockPing, {});
    const auto pong = recv_record(root_fd_, kTagClockPong);
    const std::int64_t t1 = util::now_ns();
    PX_ASSERT(pong.size() == 8);
    const auto t_root = static_cast<std::int64_t>(read_u64(pong.data()));
    const std::int64_t rtt = t1 - t0;
    // The midpoint estimate is most trustworthy on the tightest round
    // trip (least asymmetric queueing).
    if (s == 0 || rtt < best_rtt) {
      best_rtt = rtt;
      best_offset = (t0 + t1) / 2 - t_root;
    }
  }
  return best_offset;
}

}  // namespace px::net
