// Simulated interconnect fabric.
//
// ParalleX localities and CSP baseline ranks live in one OS process; this
// fabric is the only path between them, and it imposes the physics of a real
// interconnect: per-message base latency, per-hop latency from a topology
// model, finite bandwidth, and optional jitter (which also yields reordering,
// a useful failure-injection mode for tests).
//
// Delivery runs on a dedicated progress thread so a blocked receiver never
// stalls the sender — matching the split-phase, asynchronous transport the
// ParalleX model assumes.  Handlers must be registered before traffic flows
// and must not block for long (they hand off to scheduler queues).
//
// Hot-path design: the send queue is sharded per destination endpoint, so
// concurrent senders to different endpoints never contend on one global
// mutex (per-endpoint stats are atomics, the latency histogram is internally
// locked, and jitter RNG state is per shard).  Message payloads are drawn
// from a buffer pool and recycled after the receive handler returns —
// handlers take `message&` and decode in place (or steal the payload, which
// simply costs the pool a miss).  A message may carry several coalesced
// parcels: `units` is the logical parcel count, and the quiescence-facing
// counters (messages_sent_total, in_flight) account in parcels, not frames,
// while the latency model charges the full frame's bytes to the wire.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "net/transport.hpp"
#include "util/buffer_pool.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/spinlock.hpp"

namespace px::net {

enum class topology_kind {
  crossbar,  // 1 hop between any pair
  mesh2d,    // sqrt(N) x sqrt(N) mesh, Manhattan hops
  vortex,    // Data-Vortex-style low-diameter fabric: ~log2(N) hops
};

const char* to_string(topology_kind k) noexcept;

// Hop count between endpoints under a topology; exposed for tests and for
// the Gilgamesh network model, which reuses the same geometry.
std::uint32_t topology_hops(topology_kind k, std::size_t endpoints,
                            endpoint_id a, endpoint_id b) noexcept;

struct fabric_params {
  std::size_t endpoints = 2;
  std::uint64_t base_latency_ns = 0;  // fixed wire+injection cost
  std::uint64_t per_hop_ns = 0;       // router traversal cost
  double bytes_per_ns = 0.0;          // 0 => infinite bandwidth
  std::uint64_t jitter_ns = 0;        // uniform [0, jitter) added per message
  topology_kind topology = topology_kind::crossbar;
  std::uint64_t seed = 42;
};

class fabric final : public transport {
 public:
  explicit fabric(fabric_params params);
  ~fabric() override;

  fabric(const fabric&) = delete;
  fabric& operator=(const fabric&) = delete;

  // Registration is not thread-safe and must complete before the first
  // send(); both are asserted.
  void set_handler(endpoint_id ep, handler h) override;

  // Optional backstop invoked by the progress thread whenever its queues
  // run dry (at most every ~200us): the runtime uses it to flush outbound
  // coalescing buffers even if every scheduler worker is pinned busy.
  // Must be set before traffic starts; runs on the progress thread.
  void set_idle_callback(std::function<void()> cb) override;

  // Computes the delivery deadline from the latency model and enqueues.
  // Thread-safe; never blocks on the receiver.  Asserts source/dest range.
  void send(message m) override;

  // Model-predicted one-way latency for a payload of `bytes` between a and
  // b, excluding jitter.  Benches use this to report the modeled physics.
  std::uint64_t model_latency_ns(endpoint_id a, endpoint_id b,
                                 std::size_t bytes) const noexcept;

  // Parcels (units) currently queued or in a handler.
  std::uint64_t in_flight() const noexcept override {
    return in_flight_.load(std::memory_order_acquire);
  }

  // Monotonic count of parcels (message units) accepted by send(),
  // incremented before the message is visible to the progress thread.
  // Paired with scheduler::spawn_count() in the runtime's quiescence
  // protocol to detect activity racing its counter reads.
  std::uint64_t messages_sent_total() const noexcept override {
    return sent_total_.load(std::memory_order_acquire);
  }

  // Blocks until every message sent so far has been handed to its handler
  // and the handler returned.
  void drain() override;

  // Recycled payload buffers; senders acquire here so the steady state
  // allocates nothing per message.
  util::buffer_pool& pool() noexcept override { return pool_; }

  const fabric_params& params() const noexcept { return params_; }
  std::size_t endpoints() const noexcept override {
    return params_.endpoints;
  }
  endpoint_stats stats(endpoint_id ep) const override;
  link_counters link(endpoint_id ep) const override;
  const char* backend_name() const noexcept override { return "sim"; }
  // Distribution of modeled in-flight delays (ns), one sample per parcel.
  util::log_histogram latency_histogram() const;

 private:
  struct timed_message {
    std::chrono::steady_clock::time_point due;
    std::uint64_t seq;
    message msg;
  };
  struct later {
    bool operator()(const timed_message& a, const timed_message& b) const {
      return a.due != b.due ? a.due > b.due : a.seq > b.seq;
    }
  };
  // One shard per destination endpoint: senders to different endpoints
  // touch disjoint locks.  Delivery order is preserved within a shard;
  // across shards only due-time order is honored (as jitter reorders
  // anyway, no cross-endpoint ordering is promised).
  struct send_shard {
    std::mutex m;
    std::priority_queue<timed_message, std::vector<timed_message>, later> q;
    util::xoshiro256 rng{0};
  };
  struct atomic_endpoint_stats {
    std::atomic<std::uint64_t> messages_sent{0};
    std::atomic<std::uint64_t> parcels_sent{0};
    std::atomic<std::uint64_t> messages_received{0};
    std::atomic<std::uint64_t> bytes_sent{0};
    std::atomic<std::uint64_t> bytes_received{0};
  };

  void progress_loop();
  void wake_progress();

  fabric_params params_;
  std::vector<handler> handlers_;
  std::function<void()> idle_cb_;
  std::vector<std::unique_ptr<send_shard>> shards_;
  std::vector<std::unique_ptr<atomic_endpoint_stats>> stats_;

  util::log_histogram latency_hist_;  // internally locked

  util::buffer_pool pool_;

  // Progress-thread sleep/wake handshake: senders push to a shard, then
  // seq_cst-store dirty_ and check sleeping_; the progress thread seq_cst-
  // stores sleeping_ before re-evaluating dirty_ under progress_mutex_.
  // One side always observes the other (Dekker), and every wait is timed
  // as defence in depth.
  std::mutex progress_mutex_;
  std::condition_variable cv_;
  std::condition_variable drained_cv_;
  bool stopping_ = false;  // guarded by progress_mutex_
  std::atomic<bool> dirty_{false};
  std::atomic<bool> sleeping_{false};
  std::atomic<bool> traffic_started_{false};

  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<std::uint64_t> sent_total_{0};
  std::thread progress_;
};

}  // namespace px::net
