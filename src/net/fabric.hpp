// Simulated interconnect fabric.
//
// ParalleX localities and CSP baseline ranks live in one OS process; this
// fabric is the only path between them, and it imposes the physics of a real
// interconnect: per-message base latency, per-hop latency from a topology
// model, finite bandwidth, and optional jitter (which also yields reordering,
// a useful failure-injection mode for tests).
//
// Delivery runs on a dedicated progress thread so a blocked receiver never
// stalls the sender — matching the split-phase, asynchronous transport the
// ParalleX model assumes.  Handlers must be registered before traffic flows
// and must not block for long (they hand off to scheduler queues).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/histogram.hpp"
#include "util/rng.hpp"

namespace px::net {

using endpoint_id = std::uint32_t;

struct message {
  endpoint_id source = 0;
  endpoint_id dest = 0;
  std::uint64_t tag = 0;  // channel discriminator for the CSP baseline
  std::vector<std::byte> payload;
};

enum class topology_kind {
  crossbar,  // 1 hop between any pair
  mesh2d,    // sqrt(N) x sqrt(N) mesh, Manhattan hops
  vortex,    // Data-Vortex-style low-diameter fabric: ~log2(N) hops
};

const char* to_string(topology_kind k) noexcept;

// Hop count between endpoints under a topology; exposed for tests and for
// the Gilgamesh network model, which reuses the same geometry.
std::uint32_t topology_hops(topology_kind k, std::size_t endpoints,
                            endpoint_id a, endpoint_id b) noexcept;

struct fabric_params {
  std::size_t endpoints = 2;
  std::uint64_t base_latency_ns = 0;  // fixed wire+injection cost
  std::uint64_t per_hop_ns = 0;       // router traversal cost
  double bytes_per_ns = 0.0;          // 0 => infinite bandwidth
  std::uint64_t jitter_ns = 0;        // uniform [0, jitter) added per message
  topology_kind topology = topology_kind::crossbar;
  std::uint64_t seed = 42;
};

struct endpoint_stats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_sent = 0;
};

class fabric {
 public:
  using handler = std::function<void(message)>;

  explicit fabric(fabric_params params);
  ~fabric();

  fabric(const fabric&) = delete;
  fabric& operator=(const fabric&) = delete;

  // Registration is not thread-safe; complete it before sending.
  void set_handler(endpoint_id ep, handler h);

  // Computes the delivery deadline from the latency model and enqueues.
  // Thread-safe; never blocks on the receiver.
  void send(message m);

  // Model-predicted one-way latency for a payload of `bytes` between a and
  // b, excluding jitter.  Benches use this to report the modeled physics.
  std::uint64_t model_latency_ns(endpoint_id a, endpoint_id b,
                                 std::size_t bytes) const noexcept;

  std::uint64_t in_flight() const noexcept {
    return in_flight_.load(std::memory_order_acquire);
  }

  // Monotonic count of send() calls, incremented before the message is
  // visible to the progress thread.  Paired with scheduler::spawn_count()
  // in the runtime's quiescence protocol to detect activity racing its
  // counter reads.
  std::uint64_t messages_sent_total() const noexcept {
    return sent_total_.load(std::memory_order_acquire);
  }

  // Blocks until every message sent so far has been handed to its handler
  // and the handler returned.
  void drain();

  const fabric_params& params() const noexcept { return params_; }
  std::size_t endpoints() const noexcept { return params_.endpoints; }
  endpoint_stats stats(endpoint_id ep) const;
  // Distribution of modeled in-flight delays (ns) across all messages.
  util::log_histogram latency_histogram() const;

 private:
  struct timed_message {
    std::chrono::steady_clock::time_point due;
    std::uint64_t seq;
    message msg;
  };
  struct later {
    bool operator()(const timed_message& a, const timed_message& b) const {
      return a.due != b.due ? a.due > b.due : a.seq > b.seq;
    }
  };

  void progress_loop();

  fabric_params params_;
  std::vector<handler> handlers_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable drained_cv_;
  std::priority_queue<timed_message, std::vector<timed_message>, later> queue_;
  std::uint64_t next_seq_ = 0;
  bool stopping_ = false;
  util::xoshiro256 rng_;
  std::vector<endpoint_stats> stats_;
  util::log_histogram latency_hist_;

  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<std::uint64_t> sent_total_{0};
  std::thread progress_;
};

}  // namespace px::net
