// TCP transport: parcels over real sockets between OS processes.
//
// Each endpoint (locality) is one process ("rank"); the full mesh of
// pairwise TCP connections is the wire.  The PR 2 batch-frame format is
// already self-delimiting and self-validating, so the data plane streams
// raw frames with no extra envelope: the connection identifies the peer
// (fixed at the hello handshake), `frame_assembler` cuts complete frames
// out of the byte stream across arbitrary partial reads, and frame count
// == message units.  A nonblocking poll(2) progress thread owns every
// socket: it reassembles inbound frames and feeds them to the registered
// handler (the runtime's deliver_from_fabric path, same as the simulated
// fabric) and drains per-peer send queues whose buffers recycle through
// the shared util::buffer_pool.
//
// In-flight semantics (quiescence): in_flight() counts units accepted by
// send() whose bytes have not yet fully reached the kernel.  Once written,
// a parcel is invisible to *this* process — the distributed quiescence
// protocol (runtime::wait_quiescent over net::bootstrap) balances global
// sent/delivered totals to prove nothing is left on any wire.
//
// Setup is two-phase because endpoints learn each other's addresses from
// the bootstrap exchange: construct (binds the listener, possibly on an
// ephemeral port), hand listen_address() to the bootstrap, then
// connect_peers() with the full table.  Ranks below ours are dialed, ranks
// above us dial in; each data connection opens with an 8-byte hello naming
// the peer's rank.  No traffic may flow before connect_peers returns.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.hpp"
#include "parcel/parcel.hpp"
#include "util/spinlock.hpp"

namespace px::net {

struct tcp_params {
  std::uint32_t rank = 0;
  std::uint32_t nranks = 2;
  // Data-plane listen address; port 0 binds an ephemeral port (the actual
  // address is what listen_address() reports to the bootstrap).
  std::string listen = "127.0.0.1:0";
  // Poisons a connection whose stream claims a frame larger than this.
  std::size_t max_frame_bytes = 64u << 20;
  // Dial retry budget while the mesh comes up (peers start asynchronously).
  std::uint64_t connect_timeout_ms = 20'000;
};

class tcp_transport final : public distributed_transport {
 public:
  explicit tcp_transport(tcp_params params);
  ~tcp_transport() override;

  tcp_transport(const tcp_transport&) = delete;
  tcp_transport& operator=(const tcp_transport&) = delete;

  // Actual bound data-plane address ("host:port"), for the bootstrap
  // endpoint table.
  std::string listen_address() const override;

  // Establishes the full mesh from the bootstrap-exchanged table (index ==
  // rank; our own entry is ignored) and starts the progress thread.
  // Blocks until every peer link is up; asserts on timeout.
  void connect_peers(const std::vector<std::string>& table) override;

  // ------------------------------------------------- transport interface

  // Only this process's own rank is a valid endpoint for a handler.
  void set_handler(endpoint_id ep, handler h) override;
  void set_idle_callback(std::function<void()> cb) override;
  void send(message m) override;
  void drain() override;
  std::uint64_t in_flight() const noexcept override {
    return in_flight_.load(std::memory_order_acquire);
  }
  std::uint64_t messages_sent_total() const noexcept override {
    return sent_total_.load(std::memory_order_acquire);
  }
  util::buffer_pool& pool() noexcept override { return pool_; }
  std::size_t endpoints() const noexcept override { return params_.nranks; }
  // Traffic totals of *this* rank (ep must equal rank; remote ranks keep
  // their own books — ask them with a query_counter parcel).
  endpoint_stats stats(endpoint_id ep) const override;
  link_counters link(endpoint_id ep) const override;
  const char* backend_name() const noexcept override { return "tcp"; }
  // One TCP-specific row: extra dial attempts while the mesh came up.
  std::vector<extra_link_counter> extra_link_counters(
      endpoint_id ep) const override;

  // Monotonic count of units fully delivered to the handler; the second
  // half of the distributed quiescence sent/delivered balance.
  std::uint64_t parcels_received_total() const noexcept override {
    return received_total_.load(std::memory_order_acquire);
  }

  // Units accepted by send() but dropped before reaching a wire (dead
  // link).  The quiescence books subtract these from the sent total: a
  // dropped parcel will never be delivered anywhere, and leaving it in
  // the balance would make global sent == delivered unsatisfiable — every
  // rank would spin in quiesce rounds forever.
  std::uint64_t parcels_dropped_total() const noexcept override {
    return dropped_total_.load(std::memory_order_acquire);
  }

  const tcp_params& params() const noexcept { return params_; }

 protected:
  // distributed_transport resilience seam: request an asynchronous close
  // of the link to `rank` on the progress thread (external death verdict).
  void close_link(std::size_t rank) override;

 private:
  struct outgoing {
    std::vector<std::byte> buf;
    std::size_t offset = 0;   // bytes already written to the kernel
    std::uint32_t units = 0;  // parcels carried (in_flight accounting)
  };
  struct peer {
    int fd = -1;
    std::uint32_t rank = 0;
    bool open = false;           // owned by the progress thread after start
    util::spinlock send_lock;
    std::deque<outgoing> sendq;  // guarded by send_lock
    parcel::frame_assembler assembler;  // progress thread only
    std::atomic<std::uint64_t> reconnects{0};
  };

  void progress_loop();
  void wake_progress();
  // Writes as much of `p`'s queue as the kernel accepts; returns false if
  // the connection died.
  bool pump_sends(peer& p);
  // Reads everything available, reassembles, dispatches complete frames;
  // returns false on EOF/error.
  bool pump_reads(peer& p);
  // `why == nullptr` means an orderly/expected close; anything else is an
  // unexpected disconnect and marks the peer dead in the shared books.
  void close_peer(peer& p, const char* why);

  tcp_params params_;
  int listen_fd_ = -1;
  std::string listen_addr_;  // actual bound host:port
  int wake_fds_[2] = {-1, -1};  // self-pipe: senders kick the poll loop

  handler handler_;
  std::function<void()> idle_cb_;
  std::vector<std::unique_ptr<peer>> peers_;  // index == peer rank
  util::buffer_pool pool_;
  std::vector<std::byte> scratch_;  // progress-thread receive buffer

  std::atomic<bool> traffic_started_{false};
  std::atomic<bool> stopping_{false};
  // Ranks whose links close_link() asked the progress thread to tear down.
  std::atomic<std::uint64_t> pending_dead_{0};
  // Removes `units` from the in-flight books and wakes drain() waiters on
  // the transition to zero (notify under drain_mutex_: lost-wakeup-free).
  void retire_in_flight(std::uint64_t units);

  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<std::uint64_t> sent_total_{0};
  std::atomic<std::uint64_t> received_total_{0};
  std::atomic<std::uint64_t> dropped_total_{0};

  // Aggregate tx/rx books for stats()/link() (this rank's endpoint only).
  std::atomic<std::uint64_t> msgs_tx_{0};
  std::atomic<std::uint64_t> parcels_tx_{0};
  std::atomic<std::uint64_t> bytes_tx_{0};
  std::atomic<std::uint64_t> msgs_rx_{0};
  std::atomic<std::uint64_t> bytes_rx_{0};

  mutable std::mutex drain_mutex_;
  std::condition_variable drained_cv_;

  std::thread progress_;
};

}  // namespace px::net
