// Transport: the runtime's pluggable wire abstraction.
//
// PR 2 built the parcel pipeline against the simulated `net::fabric`; this
// interface is the seam that lets the same pipeline run over a real network.
// Everything above it — parcel ports, quiescence accounting, delivery into
// localities — talks only to `transport`, and a backend is chosen at runtime
// construction (PX_NET_BACKEND): the latency-modelled in-process fabric
// (default; every test and bench keeps its physics), the TCP backend in
// net/tcp_transport.hpp where each endpoint is a separate OS process, or the
// same-host shared-memory backend in net/shm_transport.hpp.
//
// Contract every backend must honor (the quiescence protocol depends on it):
//   * send() never blocks on the receiver and is thread-safe;
//   * messages_sent_total() counts *units* (logical parcels) and is bumped
//     before the message becomes visible to any progress machinery;
//   * in_flight() covers every unit accepted by send() that this process
//     still holds (queued or mid-delivery).  For the fabric that means
//     until the receive handler returned; for TCP it means until the last
//     byte reached the kernel; for shm it means until the peer's consumer
//     finished handling the frame — cross-process flight is additionally
//     tracked by the distributed quiescence counters (runtime::wait_quiescent);
//   * drain() blocks until in_flight() == 0;
//   * handlers and the idle callback run on the backend's progress thread
//     and must not block for long.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/buffer_pool.hpp"

namespace px::util {
class fault_injector;
}

namespace px::net {

using endpoint_id = std::uint32_t;

// Backend selection and distributed identity.  Every field left at its
// default resolves from the PX_NET_* environment in the runtime ctor (the
// launcher's channel to its ranks); explicit values win.
//
//   backend   ""  -> PX_NET_BACKEND -> "sim"      "sim" | "tcp" | "shm"
//   rank      -1  -> PX_NET_RANK    -> 0          this process's locality id
//   ranks     0   -> PX_NET_RANKS                 total processes (tcp/shm)
//   listen    ""  -> PX_NET_LISTEN  -> "127.0.0.1:0"   data-plane bind (tcp)
//   root      ""  -> PX_NET_ROOT    -> "127.0.0.1:7733" rank 0 control addr
//   migration -1  -> PX_MIGRATION   -> 1 (on)     cross-process AGAS moves
struct net_params {
  std::string backend;
  std::int64_t rank = -1;
  std::int64_t ranks = 0;
  std::string listen;
  std::string root;
  // Cross-process object migration (tcp/shm backends): tri-state so "unset"
  // resolves from the environment.  Rank 0's resolved value rides the
  // bootstrap wire-params blob — migration changes how *every* rank routes
  // and forwards, so the machine must agree.  0 restores PR 4's static
  // home-owned PGAS behavior.
  std::int64_t migration = -1;
};

struct message {
  endpoint_id source = 0;
  endpoint_id dest = 0;
  std::uint64_t tag = 0;  // channel discriminator for the CSP baseline
  std::vector<std::byte> payload;
  std::uint32_t units = 1;  // logical parcels carried (1 for plain traffic)
};

struct endpoint_stats {
  std::uint64_t messages_sent = 0;   // frames put on the wire
  std::uint64_t parcels_sent = 0;    // logical units (== messages unbatched)
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

// Per-endpoint traffic totals in the shape the introspection registry
// exposes them (runtime/loc<i>/net/*): what this endpoint put on and took
// off the wire.  Backend-specific churn (TCP re-dials, shm ring stalls)
// is published through extra_link_counters() below, so the schema only
// carries rows the active backend actually maintains.
struct link_counters {
  std::uint64_t bytes_tx = 0;
  std::uint64_t bytes_rx = 0;
  std::uint64_t msgs_tx = 0;
  std::uint64_t msgs_rx = 0;
};

// A backend-specific counter row: registered as runtime/loc<i>/net/<name>
// only when that backend is active, keeping the schema honest (the fix for
// `reconnects` reading as an always-zero row under sim).  All ranks run
// the same backend, so positional gid allocation still replays identically
// machine-wide.
struct extra_link_counter {
  const char* name;
  std::uint64_t value;
};

class transport {
 public:
  // The payload is owned by the transport after send(): the receive-side
  // handler decodes in place or steals it, and whatever capacity is left is
  // recycled through pool().
  using handler = std::function<void(message&)>;

  virtual ~transport();  // key function (transport.cpp)

  // Registration is not thread-safe and must complete before the first
  // send(); backends assert this.
  virtual void set_handler(endpoint_id ep, handler h) = 0;

  // Optional backstop invoked by the progress thread whenever its queues
  // run dry (bounded staleness, ~200us-1ms): the runtime uses it to flush
  // outbound coalescing buffers even if every scheduler worker is pinned
  // busy.  Must be set before traffic starts; runs on the progress thread.
  virtual void set_idle_callback(std::function<void()> cb) = 0;

  // Thread-safe; never blocks on the receiver.  Asserts endpoint ranges.
  virtual void send(message m) = 0;

  // Blocks until in_flight() == 0 (see the class comment for what a
  // backend counts as in flight).
  virtual void drain() = 0;

  virtual std::uint64_t in_flight() const noexcept = 0;

  // Monotonic count of units accepted by send(); paired with
  // scheduler::spawn_count() in the quiescence activity snapshot.
  virtual std::uint64_t messages_sent_total() const noexcept = 0;

  // Recycled payload buffers; senders acquire here so the steady state
  // allocates nothing per message.
  virtual util::buffer_pool& pool() noexcept = 0;

  virtual std::size_t endpoints() const noexcept = 0;
  virtual endpoint_stats stats(endpoint_id ep) const = 0;
  virtual link_counters link(endpoint_id ep) const = 0;
  virtual const char* backend_name() const noexcept = 0;

  // Whole-frame delivery seam.  A byte-stream backend (TCP) hands the
  // receive path arbitrary fragments and needs parcel::frame_assembler to
  // cut frames back out; a message-oriented backend (shm rings today, an
  // ibverbs/libfabric RECV completion tomorrow) delivers complete frames
  // and must skip reassembly entirely — its receive path validates each
  // frame through whole_frame_ingest below and hands it straight to the
  // handler.  The flag is advisory for introspection/tests; the backend
  // itself owns acting on it.
  virtual bool whole_frame_delivery() const noexcept { return false; }

  // Backend-specific counter rows for endpoint `ep` (empty by default).
  // Names must be stable across the run; the runtime registers one
  // introspection counter per row at boot.
  virtual std::vector<extra_link_counter> extra_link_counters(
      endpoint_id ep) const {
    (void)ep;
    return {};
  }
};

// Validation gate for whole-frame backends: the frame_assembler bypass
// must not also bypass its safety properties.  accept() runs the same
// checks the assembler applies to a cut frame — bounded size, then a full
// frame_view::parse walk (magic, count, every record length, every parcel
// header) — and returns the frame's record count on success.  Any
// rejection poisons the ingest permanently (the assembler's
// poison-don't-resync stance: a corrupt shared-memory ring has no
// trustworthy next message), and the owner must tear the link down.
class whole_frame_ingest {
 public:
  explicit whole_frame_ingest(std::size_t max_frame_bytes = 64u << 20)
      : max_frame_bytes_(max_frame_bytes) {}

  // Returns the validated frame's record count, or nullopt (poisoning the
  // ingest) if the frame is oversize or fails frame_view::parse.
  std::optional<std::uint32_t> accept(std::span<const std::byte> frame);

  bool poisoned() const noexcept { return poisoned_; }

 private:
  std::size_t max_frame_bytes_;
  bool poisoned_ = false;
};

// Contract extensions shared by every multi-process backend (tcp, shm, a
// future RDMA transport) and consumed by the runtime's distributed boot
// and quiescence machinery.  The fabric is not one of these — it models a
// whole machine in one process.
//
// The base class owns the *peer ledger*: per-peer unit books (sent to /
// received from / dropped toward each rank), the orderly-vs-unexpected
// disconnect accounting, and the `mark_peer_dead` seam every death source
// funnels through — a tcp EOF mid-run, the shm pid probe or closed flag,
// and the bootstrap lease expiry all land in the same books, so both
// backends report rank loss identically (docs/resilience.md).  A backend's
// job is reduced to (a) calling account_sent/account_delivered/
// account_dropped next to its own counters, (b) routing every peer-close
// through note_peer_closed, and (c) implementing close_link() so an
// external death verdict tears the link down and folds its outstanding
// units into the dropped books.
class distributed_transport : public transport {
 public:
  ~distributed_transport() override;  // key function (transport.cpp)

  // The string peers need to reach this endpoint, exchanged (opaquely)
  // through the bootstrap hello/reply: "host:port" for tcp, the shm
  // segment-name token for shm.
  virtual std::string listen_address() const = 0;

  // Establishes the full pairwise mesh from the bootstrap-exchanged
  // endpoint table (index == rank) and starts the progress thread.
  virtual void connect_peers(const std::vector<std::string>& table) = 0;

  // Units fully delivered to this process's handler / units this process
  // dropped (dead link, oversize): inputs to the machine-wide parcel
  // conservation identity in runtime::wait_quiescent.
  virtual std::uint64_t parcels_received_total() const noexcept = 0;
  virtual std::uint64_t parcels_dropped_total() const noexcept = 0;

  // Arms orderly-shutdown mode: subsequent peer EOFs/closures are expected
  // teardown, not anomalies worth a warning.  Both backends consult this
  // shared flag (it used to be consulted only on the tcp EOF path).
  void expect_peer_disconnects() noexcept { closing_.store(true); }
  bool disconnects_expected() const noexcept { return closing_.load(); }

  // ---- resilience seam -------------------------------------------------

  // External death verdict (bootstrap lease expiry, px.peer_down from a
  // peer): tear down the link to `rank` and fold its outstanding units
  // into the conservation books.  Idempotent; thread-safe; the actual
  // close runs on the backend's progress thread.
  void mark_peer_dead(std::size_t rank) noexcept;

  // Called once per confirmed-dead peer, after the link is closed and the
  // books folded.  Runs on the backend's progress thread; must not block.
  // Must be installed before connect_peers().
  void set_peer_death_handler(std::function<void(std::size_t)> h) {
    on_peer_death_ = std::move(h);
  }

  // Arms deterministic fault injection (PX_FAULT) on the send path; null
  // (the default) costs one pointer test per send.  Install before
  // connect_peers().
  void arm_faults(util::fault_injector* f) noexcept { fault_ = f; }

  bool peer_confirmed_dead(std::size_t rank) const noexcept {
    return (dead_mask_.load() >> rank) & 1u;
  }
  std::uint64_t dead_peer_mask() const noexcept { return dead_mask_.load(); }
  // Peers whose close fold has fully retired: link closed, lost-unit
  // figure frozen, peer_failed counted.  Distinct from dead_peer_mask(),
  // whose bit is the fold's *entry* guard and is visible before the books
  // settle; readers that need final books (the quiesce swept gate,
  // conservation checks) must gate on this mask instead.
  std::uint64_t folded_peer_mask() const noexcept {
    return folded_mask_.load(std::memory_order_acquire);
  }
  std::uint64_t peers_failed_total() const noexcept {
    return peers_failed_.load();
  }
  // Units this endpoint put on the wire toward now-dead peers whose fate
  // is unknown (the casualty may or may not have handled them before
  // dying): the lost_to_casualty term of the conservation identity.
  std::uint64_t parcels_lost_total() const noexcept {
    return parcels_lost_.load();
  }
  std::uint64_t orderly_disconnects() const noexcept {
    return orderly_disconnects_.load();
  }
  std::uint64_t unexpected_disconnects() const noexcept {
    return unexpected_disconnects_.load();
  }

  // Per-peer unit books (index == rank; the self row stays zero).
  std::uint64_t units_sent_to(std::size_t rank) const noexcept;
  std::uint64_t units_received_from(std::size_t rank) const noexcept;
  std::uint64_t units_dropped_to(std::size_t rank) const noexcept;

  // The reduced-membership quiescence ledger: units on the wire toward /
  // received from peers *not* in `dead_mask` — the casualty's column
  // drops out of both sides, so Mattern rounds converge minus the
  // casualty (runtime::wait_quiescent).
  std::uint64_t live_units_sent(std::uint64_t dead_mask) const noexcept;
  std::uint64_t live_units_received(std::uint64_t dead_mask) const noexcept;

 protected:
  // Backend obligation for mark_peer_dead: request an asynchronous close
  // of the link to `rank` on the progress thread (close + fold outstanding
  // units + note_peer_closed), exactly like a locally-detected death.
  virtual void close_link(std::size_t rank) = 0;

  // Sized nranks; `self` reserved (never accounted).  Call from the ctor.
  void init_peer_books(std::size_t nranks, std::size_t self);

  void account_sent(std::size_t rank, std::uint64_t units) noexcept;
  void account_delivered(std::size_t rank, std::uint64_t units) noexcept;
  void account_dropped(std::size_t rank, std::uint64_t units) noexcept;

  // Fault-injection hook for the send path: returns how many of `units`
  // the backend must silently drop (0 when disarmed); may not return at
  // all (a `kill` action SIGKILLs the process mid-call).
  std::uint64_t fault_drop_units(std::size_t rank,
                                 std::uint64_t units) noexcept;

  // Shared disconnect bookkeeping — every peer-close path funnels here,
  // after the backend folded the link's outstanding units into its
  // dropped books.  An unexpected close marks the peer dead, freezes the
  // lost-units figure, and fires the death handler; an orderly close only
  // counts.  Call with no backend locks held.
  void note_peer_closed(std::size_t rank, bool orderly);

 private:
  std::atomic<bool> closing_{false};
  std::atomic<std::uint64_t> dead_mask_{0};
  std::atomic<std::uint64_t> folded_mask_{0};
  std::atomic<std::uint64_t> peers_failed_{0};
  std::atomic<std::uint64_t> parcels_lost_{0};
  std::atomic<std::uint64_t> orderly_disconnects_{0};
  std::atomic<std::uint64_t> unexpected_disconnects_{0};
  std::vector<std::atomic<std::uint64_t>> units_to_;
  std::vector<std::atomic<std::uint64_t>> units_from_;
  std::vector<std::atomic<std::uint64_t>> dropped_to_;
  std::size_t self_rank_ = 0;
  std::function<void(std::size_t)> on_peer_death_;
  util::fault_injector* fault_ = nullptr;
};

// Parses "host:port" (the PX_NET_LISTEN / PX_NET_ROOT syntax); asserts on
// malformed input.
std::pair<std::string, std::uint16_t> split_host_port(const std::string& s);

}  // namespace px::net
