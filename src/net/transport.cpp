#include "net/transport.hpp"

#include "net/socket_util.hpp"

namespace px::net {

// Key function: anchors the transport vtable in one translation unit.
transport::~transport() = default;

std::pair<std::string, std::uint16_t> split_host_port(const std::string& s) {
  return detail::split_host_port_impl(s);
}

}  // namespace px::net
