#include "net/transport.hpp"

#include "net/socket_util.hpp"
#include "parcel/parcel.hpp"
#include "util/assert.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace px::net {

// Key functions: anchor the transport vtables in one translation unit.
transport::~transport() = default;
distributed_transport::~distributed_transport() = default;

void distributed_transport::init_peer_books(std::size_t nranks,
                                            std::size_t self) {
  PX_ASSERT_MSG(nranks <= 64, "peer ledger caps the machine at 64 ranks");
  self_rank_ = self;
  units_to_ = std::vector<std::atomic<std::uint64_t>>(nranks);
  units_from_ = std::vector<std::atomic<std::uint64_t>>(nranks);
  dropped_to_ = std::vector<std::atomic<std::uint64_t>>(nranks);
}

void distributed_transport::account_sent(std::size_t rank,
                                         std::uint64_t units) noexcept {
  if (rank < units_to_.size()) units_to_[rank].fetch_add(units);
}

void distributed_transport::account_delivered(std::size_t rank,
                                              std::uint64_t units) noexcept {
  if (rank < units_from_.size()) units_from_[rank].fetch_add(units);
}

void distributed_transport::account_dropped(std::size_t rank,
                                            std::uint64_t units) noexcept {
  if (rank < dropped_to_.size()) dropped_to_[rank].fetch_add(units);
}

std::uint64_t distributed_transport::fault_drop_units(
    std::size_t rank, std::uint64_t units) noexcept {
  if (fault_ == nullptr) return 0;
  return fault_->on_send(rank, units);
}

std::uint64_t distributed_transport::units_sent_to(
    std::size_t rank) const noexcept {
  return rank < units_to_.size() ? units_to_[rank].load() : 0;
}

std::uint64_t distributed_transport::units_received_from(
    std::size_t rank) const noexcept {
  return rank < units_from_.size() ? units_from_[rank].load() : 0;
}

std::uint64_t distributed_transport::units_dropped_to(
    std::size_t rank) const noexcept {
  return rank < dropped_to_.size() ? dropped_to_[rank].load() : 0;
}

std::uint64_t distributed_transport::live_units_sent(
    std::uint64_t dead_mask) const noexcept {
  std::uint64_t sum = 0;
  for (std::size_t r = 0; r < units_to_.size(); ++r) {
    if (r == self_rank_ || ((dead_mask >> r) & 1u)) continue;
    const std::uint64_t to = units_to_[r].load();
    const std::uint64_t dropped = dropped_to_[r].load();
    sum += to > dropped ? to - dropped : 0;
  }
  return sum;
}

std::uint64_t distributed_transport::live_units_received(
    std::uint64_t dead_mask) const noexcept {
  std::uint64_t sum = 0;
  for (std::size_t r = 0; r < units_from_.size(); ++r) {
    if (r == self_rank_ || ((dead_mask >> r) & 1u)) continue;
    sum += units_from_[r].load();
  }
  return sum;
}

void distributed_transport::mark_peer_dead(std::size_t rank) noexcept {
  if (rank >= units_to_.size() || rank == self_rank_) return;
  if (peer_confirmed_dead(rank)) return;  // verdict already landed
  close_link(rank);
}

void distributed_transport::note_peer_closed(std::size_t rank, bool orderly) {
  if (orderly) {
    orderly_disconnects_.fetch_add(1);
    return;
  }
  // One death verdict per peer, no matter how many sources observe it
  // (EOF + pid probe + lease can all fire for the same casualty).
  const std::uint64_t bit = 1ull << rank;
  if (dead_mask_.fetch_or(bit) & bit) return;
  unexpected_disconnects_.fetch_add(1);
  peers_failed_.fetch_add(1);
  // The link is closed and its queue folded, so the books are final:
  // everything sent toward the casualty minus what we already dropped
  // actually reached the wire, and its fate died with the peer.
  const std::uint64_t to = units_sent_to(rank);
  const std::uint64_t dropped = units_dropped_to(rank);
  parcels_lost_.fetch_add(to > dropped ? to - dropped : 0);
  PX_LOG_WARN("net: peer rank %zu confirmed dead (%llu units lost)", rank,
              static_cast<unsigned long long>(to > dropped ? to - dropped
                                                           : 0));
  // Publish the fold only now that the books are final: readers gating on
  // folded_peer_mask() may assume parcels_lost/peers_failed include this
  // casualty the moment they observe the bit.
  folded_mask_.fetch_or(bit, std::memory_order_acq_rel);
  if (on_peer_death_) on_peer_death_(rank);
}

std::optional<std::uint32_t> whole_frame_ingest::accept(
    std::span<const std::byte> frame) {
  if (poisoned_) return std::nullopt;
  if (frame.size() > max_frame_bytes_) {
    poisoned_ = true;
    return std::nullopt;
  }
  const auto view = parcel::frame_view::parse(frame);
  if (!view.has_value()) {
    poisoned_ = true;
    return std::nullopt;
  }
  return view->count();
}

std::pair<std::string, std::uint16_t> split_host_port(const std::string& s) {
  return detail::split_host_port_impl(s);
}

}  // namespace px::net
