#include "net/transport.hpp"

#include "net/socket_util.hpp"
#include "parcel/parcel.hpp"

namespace px::net {

// Key functions: anchor the transport vtables in one translation unit.
transport::~transport() = default;
distributed_transport::~distributed_transport() = default;

std::optional<std::uint32_t> whole_frame_ingest::accept(
    std::span<const std::byte> frame) {
  if (poisoned_) return std::nullopt;
  if (frame.size() > max_frame_bytes_) {
    poisoned_ = true;
    return std::nullopt;
  }
  const auto view = parcel::frame_view::parse(frame);
  if (!view.has_value()) {
    poisoned_ = true;
    return std::nullopt;
  }
  return view->count();
}

std::pair<std::string, std::uint16_t> split_host_port(const std::string& s) {
  return detail::split_host_port_impl(s);
}

}  // namespace px::net
