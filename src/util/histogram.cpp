#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <mutex>

namespace px::util {

void running_stats::add(double x, std::uint64_t weight) noexcept {
  if (weight == 0) return;
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  // Weighted Welford update: identical moments to `weight` repeated adds
  // of the same value.
  count_ += weight;
  const double delta = x - mean_;
  mean_ += delta * static_cast<double>(weight) / static_cast<double>(count_);
  m2_ += delta * (x - mean_) * static_cast<double>(weight);
}

void running_stats::merge(const running_stats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double running_stats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double running_stats::stddev() const noexcept { return std::sqrt(variance()); }

log_histogram::log_histogram() : buckets_(kBuckets, 0) {}

log_histogram::log_histogram(const log_histogram& other) {
  std::lock_guard lock(other.lock_);
  buckets_ = other.buckets_;
  total_ = other.total_;
  stats_ = other.stats_;
}

log_histogram& log_histogram::operator=(const log_histogram& other) {
  if (this == &other) return *this;
  // Copy out under the source lock, then install under ours: never holds
  // both locks at once, so two histograms assigning to each other from
  // two threads cannot deadlock.
  log_histogram tmp(other);
  std::lock_guard lock(lock_);
  buckets_ = std::move(tmp.buckets_);
  total_ = tmp.total_;
  stats_ = tmp.stats_;
  return *this;
}

namespace {

int bucket_of(double value) noexcept {
  if (!(value > 0.0)) return 0;
  const int b = 1 + std::ilogb(value);
  return std::clamp(b, 0, 63);
}

}  // namespace

void log_histogram::add(double value, std::uint64_t weight) noexcept {
  std::lock_guard lock(lock_);
  buckets_[static_cast<std::size_t>(bucket_of(value))] += weight;
  total_ += weight;
  stats_.add(value, weight);
}

void log_histogram::merge(const log_histogram& other) noexcept {
  // Detach the source first (its lock only), then fold in under ours.
  const log_histogram src = other.snapshot();
  std::lock_guard lock(lock_);
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += src.buckets_[i];
  total_ += src.total_;
  stats_.merge(src.stats_);
}

log_histogram log_histogram::snapshot() const { return log_histogram(*this); }

std::uint64_t log_histogram::count() const noexcept {
  std::lock_guard lock(lock_);
  return total_;
}

double log_histogram::quantile_locked(double q) const noexcept {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_ - 1));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen > target) {
      // Bucket 0 is [0,1): dominated by literal zeros in practice (an
      // all-zero sample set must report p50 = 0, not a midpoint).
      if (i == 0) return 0.0;
      const double lo = std::ldexp(1.0, i - 1);
      return lo * 1.5;  // bucket midpoint
    }
  }
  return stats_.max();
}

double log_histogram::quantile(double q) const noexcept {
  std::lock_guard lock(lock_);
  return quantile_locked(q);
}

running_stats log_histogram::stats() const noexcept {
  std::lock_guard lock(lock_);
  return stats_;
}

std::string log_histogram::summary(const std::string& unit) const {
  const log_histogram snap = snapshot();
  char buf[224];
  std::snprintf(
      buf, sizeof buf,
      "n=%llu mean=%.3g p50=%.3g p95=%.3g p99=%.3g p999=%.3g max=%.3g %s",
      static_cast<unsigned long long>(snap.total_), snap.stats_.mean(),
      snap.quantile_locked(0.50), snap.quantile_locked(0.95),
      snap.quantile_locked(0.99), snap.quantile_locked(0.999),
      snap.stats_.max(), unit.c_str());
  return buf;
}

}  // namespace px::util
