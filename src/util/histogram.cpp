#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace px::util {

void running_stats::add(double x, std::uint64_t weight) noexcept {
  if (weight == 0) return;
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  // Weighted Welford update: identical moments to `weight` repeated adds
  // of the same value.
  count_ += weight;
  const double delta = x - mean_;
  mean_ += delta * static_cast<double>(weight) / static_cast<double>(count_);
  m2_ += delta * (x - mean_) * static_cast<double>(weight);
}

void running_stats::merge(const running_stats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double running_stats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double running_stats::stddev() const noexcept { return std::sqrt(variance()); }

log_histogram::log_histogram() : buckets_(kBuckets, 0) {}

namespace {

int bucket_of(double value) noexcept {
  if (!(value > 0.0)) return 0;
  const int b = 1 + std::ilogb(value);
  return std::clamp(b, 0, 63);
}

}  // namespace

void log_histogram::add(double value, std::uint64_t weight) noexcept {
  buckets_[static_cast<std::size_t>(bucket_of(value))] += weight;
  total_ += weight;
  stats_.add(value, weight);
}

void log_histogram::merge(const log_histogram& other) noexcept {
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  total_ += other.total_;
  stats_.merge(other.stats_);
}

double log_histogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_ - 1));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen > target) {
      if (i == 0) return 0.5;
      const double lo = std::ldexp(1.0, i - 1);
      return lo * 1.5;  // bucket midpoint
    }
  }
  return stats_.max();
}

std::string log_histogram::summary(const std::string& unit) const {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "n=%llu mean=%.3g p50=%.3g p95=%.3g p99=%.3g max=%.3g %s",
                static_cast<unsigned long long>(total_), stats_.mean(), p50(),
                p95(), p99(), stats_.max(), unit.c_str());
  return buf;
}

}  // namespace px::util
