// Child-process helpers for the multi-process launcher path.
//
// Distributed tests, the px-launch style examples, and the TCP loopback
// bench all follow the same pattern: the parent re-executes its own binary
// once per rank with PX_NET_* set, then reaps the children.  These helpers
// keep that fork/execve plumbing in one place.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include <sys/types.h>

namespace px::util {

// Path of the currently running executable (/proc/self/exe).
std::string self_exe_path();

// A TCP port that was free a moment ago (bind :0, read, close).  Inherently
// racy, but ample for launcher rendezvous on localhost — the bootstrap
// retries its dial and rank 0's bind failure is loud, not silent.
int pick_free_tcp_port();

// fork + execv of `argv[0]` with `argv` and the current environment
// extended/overridden by `extra_env`.  Returns the child pid (asserts on
// fork failure; exec failure exits the child with 127).
pid_t spawn_process(
    const std::vector<std::string>& argv,
    const std::vector<std::pair<std::string, std::string>>& extra_env);

// Waits for `pid` up to `timeout_ms`, then SIGKILLs it.  Returns the exit
// code, or -1 for signal death / timeout.
int wait_exit(pid_t pid, std::uint64_t timeout_ms = 120'000);

// Environment for rank `rank` of an `nranks`-process distributed machine
// whose rank 0 control plane listens on 127.0.0.1:`root_port`.  `backend`
// selects the data plane ("tcp" or "shm").
std::vector<std::pair<std::string, std::string>> net_rank_env(
    int rank, int nranks, int root_port, const std::string& backend = "tcp");

}  // namespace px::util
