// Byte-oriented serialization archives for parcel payloads.
//
// Parcels move argument values and continuations between localities; the
// archive is the single encoding used by the parcel layer, the AGAS symbolic
// namespace, and echo update broadcasts.
//
// Both archives expose `operator&` so a user type implements one function:
//
//   struct particle { double x, v; };
//   template <typename Ar> void serialize(Ar& ar, particle& p) {
//     ar & p.x & p.v;
//   }
//
// Supported out of the box: arithmetic types, enums, std::string,
// std::vector, std::array, std::pair, std::tuple, std::optional, and any
// type with an ADL-visible `serialize(ar, value)`.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace px::util {

class output_archive;
class input_archive;

namespace detail {

template <typename T>
inline constexpr bool is_bitwise_v =
    std::is_arithmetic_v<T> || std::is_enum_v<T>;

}  // namespace detail

class output_archive {
 public:
  static constexpr bool is_saving = true;

  void write_bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::byte*>(data);
    buffer_.insert(buffer_.end(), p, p + size);
  }

  template <typename T>
    requires detail::is_bitwise_v<T>
  output_archive& operator&(const T& value) {
    write_bytes(&value, sizeof value);
    return *this;
  }

  output_archive& operator&(const std::string& s) {
    const auto n = static_cast<std::uint64_t>(s.size());
    *this & n;
    write_bytes(s.data(), s.size());
    return *this;
  }

  template <typename T>
  output_archive& operator&(const std::vector<T>& v) {
    const auto n = static_cast<std::uint64_t>(v.size());
    *this & n;
    if constexpr (detail::is_bitwise_v<T>) {
      write_bytes(v.data(), v.size() * sizeof(T));
    } else {
      for (const auto& elem : v) *this & elem;
    }
    return *this;
  }

  template <typename T, std::size_t N>
  output_archive& operator&(const std::array<T, N>& a) {
    for (const auto& elem : a) *this & elem;
    return *this;
  }

  template <typename A, typename B>
  output_archive& operator&(const std::pair<A, B>& p) {
    return *this & p.first & p.second;
  }

  template <typename... Ts>
  output_archive& operator&(const std::tuple<Ts...>& t) {
    std::apply([this](const Ts&... elems) { ((*this & elems), ...); }, t);
    return *this;
  }

  template <typename T>
  output_archive& operator&(const std::optional<T>& opt) {
    const std::uint8_t has = opt.has_value() ? 1 : 0;
    *this & has;
    if (opt) *this & *opt;
    return *this;
  }

  // ADL fallback for user types.
  template <typename T>
    requires(!detail::is_bitwise_v<T>)
  output_archive& operator&(const T& value) {
    serialize(*this, const_cast<T&>(value));
    return *this;
  }

  std::vector<std::byte> take() && { return std::move(buffer_); }
  const std::vector<std::byte>& bytes() const noexcept { return buffer_; }
  std::size_t size() const noexcept { return buffer_.size(); }

 private:
  std::vector<std::byte> buffer_;
};

class input_archive {
 public:
  static constexpr bool is_saving = false;

  explicit input_archive(std::span<const std::byte> data) noexcept
      : data_(data) {}

  void read_bytes(void* out, std::size_t size) {
    PX_ASSERT_MSG(offset_ + size <= data_.size(),
                  "input_archive: truncated payload");
    std::memcpy(out, data_.data() + offset_, size);
    offset_ += size;
  }

  template <typename T>
    requires detail::is_bitwise_v<T>
  input_archive& operator&(T& value) {
    read_bytes(&value, sizeof value);
    return *this;
  }

  input_archive& operator&(std::string& s) {
    std::uint64_t n = 0;
    *this & n;
    s.resize(n);
    read_bytes(s.data(), n);
    return *this;
  }

  template <typename T>
  input_archive& operator&(std::vector<T>& v) {
    std::uint64_t n = 0;
    *this & n;
    v.resize(n);
    if constexpr (detail::is_bitwise_v<T>) {
      read_bytes(v.data(), v.size() * sizeof(T));
    } else {
      for (auto& elem : v) *this & elem;
    }
    return *this;
  }

  template <typename T, std::size_t N>
  input_archive& operator&(std::array<T, N>& a) {
    for (auto& elem : a) *this & elem;
    return *this;
  }

  template <typename A, typename B>
  input_archive& operator&(std::pair<A, B>& p) {
    return *this & p.first & p.second;
  }

  template <typename... Ts>
  input_archive& operator&(std::tuple<Ts...>& t) {
    std::apply([this](Ts&... elems) { ((*this & elems), ...); }, t);
    return *this;
  }

  template <typename T>
  input_archive& operator&(std::optional<T>& opt) {
    std::uint8_t has = 0;
    *this & has;
    if (has) {
      T value{};
      *this & value;
      opt = std::move(value);
    } else {
      opt.reset();
    }
    return *this;
  }

  template <typename T>
    requires(!detail::is_bitwise_v<T>)
  input_archive& operator&(T& value) {
    serialize(*this, value);
    return *this;
  }

  std::size_t remaining() const noexcept { return data_.size() - offset_; }
  bool exhausted() const noexcept { return remaining() == 0; }

 private:
  std::span<const std::byte> data_;
  std::size_t offset_ = 0;
};

// Convenience round-trip helpers.
template <typename... Ts>
std::vector<std::byte> to_bytes(const Ts&... values) {
  output_archive ar;
  ((ar & values), ...);
  return std::move(ar).take();
}

template <typename T>
T from_bytes(std::span<const std::byte> data) {
  input_archive ar(data);
  T value{};
  ar& value;
  return value;
}

}  // namespace px::util
