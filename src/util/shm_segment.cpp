#include "util/shm_segment.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/assert.hpp"

namespace px::util {

namespace {

// shm_open requires a leading '/'; the transport-level names (px.<pid>-...)
// don't carry one, so normalize here and nowhere else.
std::string shm_path(const std::string& name) {
  return name.empty() || name[0] == '/' ? name : "/" + name;
}

}  // namespace

shm_segment::~shm_segment() { release(); }

shm_segment::shm_segment(shm_segment&& other) noexcept
    : name_(std::move(other.name_)),
      base_(std::exchange(other.base_, nullptr)),
      bytes_(std::exchange(other.bytes_, 0)),
      owner_(std::exchange(other.owner_, false)),
      unlinked_(std::exchange(other.unlinked_, false)) {}

shm_segment& shm_segment::operator=(shm_segment&& other) noexcept {
  if (this != &other) {
    release();
    name_ = std::move(other.name_);
    base_ = std::exchange(other.base_, nullptr);
    bytes_ = std::exchange(other.bytes_, 0);
    owner_ = std::exchange(other.owner_, false);
    unlinked_ = std::exchange(other.unlinked_, false);
  }
  return *this;
}

void shm_segment::release() noexcept {
  if (base_ != nullptr) {
    ::munmap(base_, bytes_);
    base_ = nullptr;
  }
  if (owner_ && !unlinked_) {
    ::shm_unlink(shm_path(name_).c_str());
    unlinked_ = true;
  }
}

void shm_segment::unlink() noexcept {
  if (owner_ && !unlinked_) {
    ::shm_unlink(shm_path(name_).c_str());
    unlinked_ = true;
  }
}

shm_segment shm_segment::create(const std::string& name, std::size_t bytes) {
  const std::string path = shm_path(name);
  const int fd = ::shm_open(path.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  PX_ASSERT_MSG(fd >= 0, "shm_open(create) failed");
  const int rc = ::ftruncate(fd, static_cast<off_t>(bytes));
  PX_ASSERT_MSG(rc == 0, "ftruncate on shm segment failed");
  void* base =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  PX_ASSERT_MSG(base != MAP_FAILED, "mmap of created shm segment failed");
  std::memset(base, 0, bytes);
  return shm_segment(name, base, bytes, /*owner=*/true);
}

shm_segment shm_segment::open_existing(const std::string& name,
                                       std::uint64_t timeout_ms) {
  const std::string path = shm_path(name);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd = ::shm_open(path.c_str(), O_RDWR, 0);
    if (fd >= 0) {
      struct stat st {};
      const int rc = ::fstat(fd, &st);
      if (rc == 0 && st.st_size > 0) {
        const auto bytes = static_cast<std::size_t>(st.st_size);
        void* base =
            ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
        ::close(fd);
        PX_ASSERT_MSG(base != MAP_FAILED, "mmap of opened shm segment failed");
        return shm_segment(name, base, bytes, /*owner=*/false);
      }
      ::close(fd);  // created but not yet sized; retry
    } else {
      PX_ASSERT_MSG(errno == ENOENT, "shm_open(attach) failed");
    }
    PX_ASSERT_MSG(std::chrono::steady_clock::now() < deadline,
                  "timed out attaching to peer shm segment");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace px::util
