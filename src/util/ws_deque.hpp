// Chase–Lev work-stealing deque.
//
// Each scheduler worker owns one deque: the owner pushes/pops at the bottom
// (LIFO, cache-warm), thieves steal from the top (FIFO, oldest task — the
// largest remaining subtree in divide-and-conquer workloads).
//
// Reference: Chase & Lev, "Dynamic Circular Work-Stealing Deque", SPAA 2005;
// memory orderings follow Lê et al., "Correct and Efficient Work-Stealing
// for Weak Memory Models", PPoPP 2013.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "util/assert.hpp"
#include "util/fence.hpp"

namespace px::util {

template <typename T>
  requires std::is_trivially_copyable_v<T>
class ws_deque {
  struct ring {
    explicit ring(std::int64_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<T>[cap]) {
      PX_ASSERT_MSG((cap & (cap - 1)) == 0, "capacity must be a power of two");
    }
    std::int64_t capacity;
    std::int64_t mask;
    std::unique_ptr<std::atomic<T>[]> slots;

    // Plain builds: relaxed slot accesses, ordered by the fences per Lê et
    // al.  TSan builds: util::thread_fence degrades to a dummy RMW, which
    // cannot reproduce the fence-to-atomic pairing that publishes a pushed
    // payload to a thief — so strengthen the slot accesses themselves to
    // release/acquire, giving TSan a real happens-before edge on the exact
    // location the stolen task's payload is read through.
#if defined(PX_TSAN_ACTIVE)
    static constexpr std::memory_order slot_store = std::memory_order_release;
    static constexpr std::memory_order slot_load = std::memory_order_acquire;
#else
    static constexpr std::memory_order slot_store = std::memory_order_relaxed;
    static constexpr std::memory_order slot_load = std::memory_order_relaxed;
#endif

    T get(std::int64_t i) const noexcept {
      return slots[i & mask].load(slot_load);
    }
    void put(std::int64_t i, T v) noexcept {
      slots[i & mask].store(v, slot_store);
    }
  };

 public:
  explicit ws_deque(std::int64_t initial_capacity = 256)
      : ring_(new ring(initial_capacity)) {}

  ~ws_deque() {
    delete ring_.load(std::memory_order_relaxed);
    for (auto* old : retired_) delete old;
  }

  ws_deque(const ws_deque&) = delete;
  ws_deque& operator=(const ws_deque&) = delete;

  // Owner only.
  void push(T value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    ring* r = ring_.load(std::memory_order_relaxed);
    if (b - t >= r->capacity - 1) {
      r = grow(r, b, t);
    }
    r->put(b, value);
    util::thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  // Owner only.
  std::optional<T> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    ring* r = ring_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    util::thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);

    if (t > b) {
      // Deque was empty; restore.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    T value = r->get(b);
    if (t == b) {
      // Last element: race against thieves for it.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        bottom_.store(b + 1, std::memory_order_relaxed);
        return std::nullopt;  // thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return value;
  }

  // Any thread.
  std::optional<T> steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    util::thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return std::nullopt;
    // acquire, not consume: Lê et al. (PPoPP 2013) publish the grown ring
    // with a release store, and the thief must observe the copied slots
    // through the ring pointer.  memory_order_consume is deprecated and
    // promoted to acquire by every implementation anyway (P0371R1), so
    // spell the real requirement.
    ring* r = ring_.load(std::memory_order_acquire);
    T value = r->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return std::nullopt;  // lost the race
    }
    return value;
  }

  // Approximate; callers use it only for heuristics (steal target choice).
  std::int64_t size_estimate() const noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

  bool empty_estimate() const noexcept { return size_estimate() == 0; }

 private:
  ring* grow(ring* old, std::int64_t b, std::int64_t t) {
    auto* bigger = new ring(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    ring_.store(bigger, std::memory_order_release);
    // Old ring may still be read by in-flight thieves; retire, free at dtor.
    retired_.push_back(old);
    return bigger;
  }

  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<ring*> ring_;
  std::vector<ring*> retired_;  // owner-only
};

}  // namespace px::util
