#include "util/fault.hpp"

#include <signal.h>
#include <unistd.h>

#include <cctype>
#include <cstdlib>

#include "util/log.hpp"

namespace px::util {

namespace {

// Strict unsigned parse: the whole token must be digits.
std::optional<std::uint64_t> parse_uint(const std::string& tok) {
  if (tok.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : tok) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - d) / 10) return std::nullopt;  // overflow
    v = v * 10 + d;
  }
  return v;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const auto pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::optional<fault_action> parse_spec(const std::string& spec) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos) return std::nullopt;
  const std::string action = spec.substr(0, colon);

  fault_action a;
  if (action == "kill") {
    a.what = fault_action::kind::kill;
  } else if (action == "drop") {
    a.what = fault_action::kind::drop;
  } else if (action == "delay") {
    a.what = fault_action::kind::delay;
  } else {
    return std::nullopt;
  }

  bool saw_rank = false;
  for (const auto& field : split(spec.substr(colon + 1), ',')) {
    const auto eq = field.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = field.substr(0, eq);
    const auto value = parse_uint(field.substr(eq + 1));
    if (!value) return std::nullopt;
    if (key == "rank") {
      a.rank = *value;
      saw_rank = true;
    } else if (key == "after_parcels") {
      a.after_parcels = *value;
    } else if (key == "count") {
      if (*value == 0) return std::nullopt;  // dropping nothing is a typo
      a.count = *value;
    } else if (key == "peer") {
      a.peer = *value;
    } else if (key == "ms") {
      a.ms = *value;
    } else {
      return std::nullopt;
    }
  }
  // Every action must name the rank that performs it; an unaddressed
  // fault firing on every rank at once is never what a test means.
  if (!saw_rank) return std::nullopt;
  return a;
}

}  // namespace

std::optional<fault_plan> fault_plan::parse(const std::string& spec) {
  if (spec.empty()) return std::nullopt;
  fault_plan plan;
  for (const auto& s : split(spec, ';')) {
    const auto a = parse_spec(s);
    if (!a) return std::nullopt;
    plan.actions.push_back(*a);
  }
  return plan;
}

std::vector<fault_action> fault_plan::for_rank(std::uint64_t rank) const {
  std::vector<fault_action> out;
  for (const auto& a : actions) {
    if (a.rank == rank) out.push_back(a);
  }
  return out;
}

fault_injector::fault_injector(std::vector<fault_action> actions,
                               std::uint64_t self_rank) {
  for (auto& a : actions) {
    if (a.rank != self_rank) continue;
    actions_.push_back(armed{a, false, 0});
  }
}

std::uint64_t fault_injector::on_send(std::uint64_t peer,
                                      std::uint64_t units) {
  std::uint64_t delay_ms = 0;
  std::uint64_t drop = 0;
  bool die = false;
  {
    std::lock_guard<std::mutex> g(lock_);
    sent_ += units;
    for (auto& arm : actions_) {
      if (arm.done) continue;
      if (arm.act.peer && *arm.act.peer != peer) continue;
      if (sent_ < arm.act.after_parcels) continue;
      switch (arm.act.what) {
        case fault_action::kind::kill:
          die = true;
          break;
        case fault_action::kind::delay:
          delay_ms = arm.act.ms;
          arm.done = true;
          break;
        case fault_action::kind::drop:
          // A batch frame cannot be partially discarded without
          // re-encoding, so a drop takes the whole send; `count` bounds
          // how many consecutive sends are taken.
          arm.dropped += 1;
          if (arm.dropped >= arm.act.count) arm.done = true;
          drop = units;
          break;
      }
    }
  }
  if (die) {
    PX_LOG_WARN("fault: kill firing on this rank (PX_FAULT)");
    raise(SIGKILL);
  }
  if (delay_ms != 0) {
    PX_LOG_WARN("fault: delaying send path %llu ms (PX_FAULT)",
                static_cast<unsigned long long>(delay_ms));
    usleep(static_cast<useconds_t>(delay_ms * 1000));
  }
  return drop;
}

}  // namespace px::util
