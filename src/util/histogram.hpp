// Streaming statistics: running moments and a log-bucketed histogram.
//
// Used by the network layer (per-link latency), the scheduler (steal/queue
// depths), the telemetry plane (introspect/stats.hpp histogram counters),
// and every bench binary for percentile reporting without storing raw
// samples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/spinlock.hpp"

namespace px::util {

// Welford running mean/variance plus min/max.
class running_stats {
 public:
  void add(double x) noexcept { add(x, 1); }
  // Weighted sample: equivalent to `weight` repeated add(x) calls (used by
  // the fabric to record one latency per coalesced parcel in O(1)).
  void add(double x, std::uint64_t weight) noexcept;
  void merge(const running_stats& other) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }
  double sum() const noexcept { return count_ ? mean_ * count_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Log2-bucketed histogram over non-negative values.  Buckets are
// [0,1), [1,2), [2,4), [4,8), ... so percentile estimates carry at most a
// factor-of-two quantization error, adequate for latency distributions
// spanning many decades.
//
// Internally synchronized: add/merge/quantile/snapshot take a short
// spinlock, so instrumentation sites on different workers can feed one
// instance and the stats sampler thread can read it concurrently.
// Copying (and snapshot(), which is the intention-revealing spelling)
// locks the source only — the copy is a plain detached value.
class log_histogram {
 public:
  log_histogram();
  log_histogram(const log_histogram& other);
  log_histogram& operator=(const log_histogram& other);

  void add(double value) noexcept { add(value, 1); }
  void add(double value, std::uint64_t weight) noexcept;
  void merge(const log_histogram& other) noexcept;

  // Consistent point-in-time copy taken under the lock; readers iterate
  // the snapshot lock-free afterwards (one lock hop per sample tick, not
  // one per quantile).
  log_histogram snapshot() const;

  std::uint64_t count() const noexcept;
  // Estimated value at quantile q in [0,1] (bucket midpoint interpolation;
  // the zero bucket [0,1) reports 0 — an all-zero distribution has p50 0,
  // not the bucket midpoint).
  double quantile(double q) const noexcept;
  double p50() const noexcept { return quantile(0.50); }
  double p95() const noexcept { return quantile(0.95); }
  double p99() const noexcept { return quantile(0.99); }
  double p999() const noexcept { return quantile(0.999); }

  // Moment accessors; taken from a locked copy so concurrent adds cannot
  // tear the Welford state mid-read.
  running_stats stats() const noexcept;
  std::string summary(const std::string& unit = "") const;

 private:
  static constexpr int kBuckets = 64;
  double quantile_locked(double q) const noexcept;

  mutable spinlock lock_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  running_stats stats_;
};

}  // namespace px::util
