// Deterministic fault injection for the resilience test harness.
//
// A fault plan is parsed from PX_FAULT and armed on the distributed
// transport's send path, so faults strike at exact points in the parcel
// stream instead of at wall-clock times (docs/resilience.md).  Grammar:
//
//   plan    := spec (';' spec)*
//   spec    := action ':' field (',' field)*
//   action  := 'kill' | 'drop' | 'delay'
//   field   := key '=' uint
//   key     := 'rank' | 'after_parcels' | 'count' | 'peer' | 'ms'
//
// Examples:
//   kill:rank=2,after_parcels=500      rank 2 SIGKILLs itself after its
//                                      transport accepts its 500th parcel
//   drop:rank=1,after_parcels=10,count=3   rank 1 silently drops its next
//                                      3 sends once 10 parcels have been
//                                      accepted (the units retire into
//                                      the dropped conservation books)
//   delay:rank=0,after_parcels=100,ms=5    rank 0 stalls its send path 5ms
//                                      once, at parcel 100
//
// Parsing is strict: an unknown action or key, a malformed number, or an
// empty field yields std::nullopt — a fault spec that does not parse must
// refuse to arm rather than silently doing nothing (CI negative-tests
// this).  When PX_FAULT is unset nothing is constructed and the transport
// pays one null-pointer test per send.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace px::util {

struct fault_action {
  enum class kind : std::uint8_t { kill, drop, delay };
  kind what = kind::kill;
  // Which rank performs the action; every action must name one.
  std::uint64_t rank = 0;
  // Fire once this rank's transport has accepted this many parcels.
  std::uint64_t after_parcels = 0;
  // drop: how many consecutive sends (batch frames) to drop (default 1).
  std::uint64_t count = 1;
  // Restrict to parcels addressed to this peer (default: any peer).
  std::optional<std::uint64_t> peer;
  // delay: stall duration in milliseconds.
  std::uint64_t ms = 0;
};

struct fault_plan {
  std::vector<fault_action> actions;

  // Strict parse of the PX_FAULT grammar above; nullopt on any error.
  static std::optional<fault_plan> parse(const std::string& spec);

  // The subset of actions assigned to `rank`.
  std::vector<fault_action> for_rank(std::uint64_t rank) const;
};

// Per-process injector, armed on the transport send seam.  `on_send` is
// called with every parcel batch the transport accepts (dest peer, unit
// count) *before* the bytes become visible to the peer; it returns the
// number of those units the transport must drop (0 = proceed).  A `kill`
// action does not return: it raises SIGKILL mid-call, exactly like a
// lost node.
class fault_injector {
 public:
  fault_injector(std::vector<fault_action> actions, std::uint64_t self_rank);

  // Thread-safe; called from locality threads and progress threads.
  std::uint64_t on_send(std::uint64_t peer, std::uint64_t units);

  bool empty() const { return actions_.empty(); }

 private:
  struct armed {
    fault_action act;
    bool done = false;
    std::uint64_t dropped = 0;  // drop progress
  };
  std::mutex lock_;
  std::vector<armed> actions_;
  std::uint64_t sent_ = 0;  // parcels accepted by this rank's transport
};

}  // namespace px::util
