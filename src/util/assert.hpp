// Lightweight always-on assertions for runtime invariants.
//
// PX_ASSERT stays enabled in release builds: the ParalleX runtime is a
// concurrent system whose invariant violations (lost wakeups, double fires,
// stale AGAS entries) are far cheaper to catch at the point of breakage than
// to debug downstream.  Hot-path checks that are too expensive for release
// use PX_DEBUG_ASSERT.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace px::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "parallex: assertion failed: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg ? msg : "");
  std::fflush(stderr);
  std::abort();
}

}  // namespace px::util

#define PX_ASSERT(expr)                                                  \
  do {                                                                   \
    if (!(expr)) ::px::util::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define PX_ASSERT_MSG(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) ::px::util::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifndef NDEBUG
#define PX_DEBUG_ASSERT(expr) PX_ASSERT(expr)
#else
#define PX_DEBUG_ASSERT(expr) \
  do {                        \
  } while (0)
#endif

#define PX_UNREACHABLE() \
  ::px::util::assert_fail("unreachable", __FILE__, __LINE__, "")
