// Plain-text table rendering for bench harness output.
//
// Every bench binary prints its reproduction of a paper table/figure as an
// aligned text table plus an optional CSV block, so results can be diffed
// and re-plotted without extra tooling.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace px::util {

class text_table {
 public:
  explicit text_table(std::vector<std::string> headers);

  // Variadic row builder: accepts strings and arithmetic values.
  template <typename... Ts>
  void add_row(const Ts&... cells) {
    std::vector<std::string> row;
    row.reserve(sizeof...(Ts));
    (row.push_back(to_cell(cells)), ...);
    add_row_vec(std::move(row));
  }

  void add_row_vec(std::vector<std::string> row);

  // Render with column alignment; `title` prints above the table.
  std::string render(const std::string& title = "") const;
  std::string render_csv() const;
  void print(const std::string& title = "") const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(double v);
  static std::string to_cell(float v) { return to_cell(static_cast<double>(v)); }
  template <typename T>
    requires std::is_integral_v<T>
  static std::string to_cell(T v) {
    return std::to_string(v);
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Human-friendly engineering notation: 1.50e+18 -> "1.5 E" style helpers.
std::string si_format(double value, const std::string& unit = "");

}  // namespace px::util
