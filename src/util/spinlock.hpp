// Test-and-test-and-set spinlock with exponential backoff.
//
// Used for short critical sections inside the runtime (LCO state, AGAS
// directory buckets) where a futex sleep would cost more than the expected
// hold time.  Satisfies Lockable so std::lock_guard / std::scoped_lock work
// (CP.20: RAII, never plain lock/unlock).
#pragma once

#include <atomic>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace px::util {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

// Bounded exponential backoff for contended CAS loops.
class backoff {
 public:
  void pause() noexcept {
    for (std::uint32_t i = 0; i < count_; ++i) cpu_relax();
    if (count_ < kMax) count_ *= 2;
  }
  void reset() noexcept { count_ = 1; }

 private:
  static constexpr std::uint32_t kMax = 1024;
  std::uint32_t count_ = 1;
};

class spinlock {
 public:
  spinlock() = default;
  spinlock(const spinlock&) = delete;
  spinlock& operator=(const spinlock&) = delete;

  void lock() noexcept {
    backoff bo;
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      while (locked_.load(std::memory_order_relaxed)) bo.pause();
    }
  }

  bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace px::util
