#include "util/config.hpp"

#include <cctype>
#include <cstdlib>
#include <string>

extern char** environ;

namespace px::util {

void config::load_environment() {
  for (char** env = environ; *env != nullptr; ++env) {
    const std::string entry(*env);
    if (entry.rfind("PX_", 0) != 0) continue;
    const auto eq = entry.find('=');
    if (eq == std::string::npos) continue;
    std::string key;
    for (std::size_t i = 3; i < eq; ++i) {
      const char c = entry[i];
      key.push_back(c == '_' ? '.' : static_cast<char>(std::tolower(c)));
    }
    values_[key] = entry.substr(eq + 1);
  }
}

void config::set(const std::string& key, std::string value) {
  values_[key] = std::move(value);
}

void config::set(const std::string& key, const char* value) {
  values_[key] = value;
}

void config::set(const std::string& key, std::int64_t value) {
  values_[key] = std::to_string(value);
}

void config::set(const std::string& key, double value) {
  values_[key] = std::to_string(value);
}

void config::set(const std::string& key, bool value) {
  values_[key] = value ? "true" : "false";
}

bool config::contains(const std::string& key) const {
  // Delegate to raw() so this agrees with the getters about
  // environment-derived keys (underscore-to-dot normalization).
  return raw(key).has_value();
}

std::optional<std::string> config::raw(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end() && key.find('_') != std::string::npos) {
    // Environment-derived entries are fully dotted (PX_A_B_C -> "a.b.c"),
    // so a key with an underscore segment ("rebalance.min_depth") can only
    // have arrived from the environment under its normalized spelling —
    // retry with underscores flattened to dots.  Exact-match set() calls
    // still win above.
    std::string normalized = key;
    for (char& c : normalized) {
      if (c == '_') c = '.';
    }
    it = values_.find(normalized);
  }
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string config::get_string(const std::string& key,
                               const std::string& fallback) const {
  return raw(key).value_or(fallback);
}

std::int64_t config::get_int(const std::string& key,
                             std::int64_t fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  try {
    return std::stoll(*v);
  } catch (...) {
    return fallback;
  }
}

double config::get_double(const std::string& key, double fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  try {
    return std::stod(*v);
  } catch (...) {
    return fallback;
  }
}

bool config::get_bool(const std::string& key, bool fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  if (*v == "1" || *v == "true" || *v == "yes" || *v == "on") return true;
  if (*v == "0" || *v == "false" || *v == "no" || *v == "off") return false;
  return fallback;
}

std::string config::env_name_for(const std::string& key) {
  std::string name = "PX_";
  for (const char c : key) {
    name.push_back(c == '.' ? '_' : static_cast<char>(std::toupper(c)));
  }
  return name;
}

std::vector<knob_info> config::known_knobs() {
  auto knob = [](const char* key, const char* summary) {
    return knob_info{key, env_name_for(key), summary};
  };
  return {
      knob("net.backend", "transport backend: \"sim\", \"tcp\", or \"shm\""),
      knob("net.rank", "this process's locality id (tcp/shm)"),
      knob("net.ranks", "total rank count (tcp/shm, required)"),
      knob("net.listen", "data-plane bind address (tcp only)"),
      knob("net.root", "rank 0 bootstrap listen address (tcp/shm)"),
      knob("migration", "cross-process object migration on/off (tcp/shm)"),
      knob("heartbeat.interval_us",
           "control-plane heartbeat cadence (tcp/shm)"),
      knob("lease.ms", "failure lease: a rank silent this long is dead"),
      knob("fault", "fault-injection plan (docs/resilience.md grammar)"),
      knob("shm.ring_bytes", "shm backend: per-direction ring bytes per pair"),
      knob("shm.spin_us", "shm backend: receiver spin before futex sleep"),
      knob("parcel.flush_bytes", "coalesced-frame byte threshold"),
      knob("parcel.flush_count", "coalesced-frame parcel-count threshold"),
      knob("parcel.eager_flush", "first-parcel eager flush on/off"),
      knob("rebalance", "adaptive rebalancer on/off"),
      knob("rebalance.threshold", "max/mean ready-depth trigger ratio"),
      knob("rebalance.min_depth", "minimum deepest-queue depth to act"),
      knob("rebalance.max_migrations", "object migrations per round"),
      knob("rebalance.interval_us", "minimum spacing between rounds"),
      knob("trace", "flight recorder on/off (docs/tracing.md)"),
      knob("trace.ring_bytes", "per-thread trace ring size in bytes"),
      knob("trace.dir", "directory for px_trace.<rank>.bin shards"),
      knob("stats", "telemetry sampler on/off (docs/metrics.md)"),
      knob("stats.interval_us", "telemetry sampling period"),
      knob("stats.dir", "directory for px_stats.<rank>.jsonl shards"),
      // util/log resolves this one directly (not through config), but it
      // is part of the supported environment surface all the same.
      knob("log.level", "log verbosity: debug|info|warn|error|off"),
  };
}

}  // namespace px::util
