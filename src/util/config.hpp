// Key/value runtime configuration with typed accessors.
//
// Sources, later wins: built-in defaults < PX_* environment variables <
// explicit set() calls.  Keys use dotted lowercase ("scheduler.workers",
// "net.latency_ns"); the matching env var is uppercase with dots as
// underscores prefixed by PX_ ("PX_SCHEDULER_WORKERS").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace px::util {

// One entry of the runtime's supported-knob table (see config::known_knobs).
struct knob_info {
  std::string key;       // dotted config key, e.g. "parcel.flush_bytes"
  std::string env;       // matching environment variable, e.g. PX_PARCEL_...
  std::string summary;   // one-line meaning (docs/counters.md is the prose)
};

class config {
 public:
  config() = default;

  // Loads every PX_* environment variable into the map.
  void load_environment();

  void set(const std::string& key, std::string value);
  // Without this overload a string literal would convert to bool (pointer
  // decay beats the user-defined conversion to std::string).
  void set(const std::string& key, const char* value);
  void set(const std::string& key, std::int64_t value);
  void set(const std::string& key, double value);
  void set(const std::string& key, bool value);

  bool contains(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  static std::string env_name_for(const std::string& key);

  // The authoritative list of PX_* knobs the runtime resolves through this
  // class (plus PX_LOG_LEVEL, which util/log reads directly).  Kept here —
  // next to the lookup machinery — so there is exactly one place to extend
  // when a knob is added; the doc-consistency test (tests/test_docs.cpp)
  // asserts every entry is documented in docs/counters.md, accepted by the
  // environment-loading path, and that no undocumented PX_* appears in the
  // docs, so the reference cannot rot in either direction.
  static std::vector<knob_info> known_knobs();

 private:
  std::optional<std::string> raw(const std::string& key) const;
  std::map<std::string, std::string> values_;
};

}  // namespace px::util
