// Deterministic, splittable random number generation.
//
// Benchmarks and the discrete-event simulator need reproducible streams that
// can be split per-entity without correlation; xoshiro256** seeded through
// splitmix64 is the standard recipe.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace px::util {

inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

class xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bull) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Derives an uncorrelated child stream; entity i of a simulation gets
  // split(i) so event ordering changes cannot perturb its draws.
  xoshiro256 split(std::uint64_t stream_id) const noexcept {
    std::uint64_t sm = state_[0] ^ (stream_id * 0xd1342543de82ef95ull + 1);
    xoshiro256 child;
    for (auto& word : child.state_) word = splitmix64(sm);
    return child;
  }

  // Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    unsigned __int128 m = static_cast<unsigned __int128>(operator()()) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        m = static_cast<unsigned __int128>(operator()()) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  double uniform01() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  // Exponential with given mean; used for Poisson arrival processes.
  double exponential(double mean) noexcept {
    double u;
    do {
      u = uniform01();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace px::util
