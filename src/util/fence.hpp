// Standalone memory fences that stay ThreadSanitizer-friendly.
//
// TSan does not model std::atomic_thread_fence (gcc even rejects it under
// -fsanitize=thread -Werror via -Wtsan): it would silently drop the
// happens-before edges that our fence-based protocols (Chase-Lev deque,
// the scheduler's sleep/wake Dekker handshake) rely on, burying real
// reports under false ones.  Under TSan we substitute an RMW on one shared
// dummy atomic: every fence call site then synchronizes through a single
// modification order, which over-approximates the fence (conservative, a
// few ns slower) while giving TSan an edge it understands.  Plain builds
// get the real instruction-level fence.
#pragma once

#include <atomic>

#if defined(__SANITIZE_THREAD__)  // gcc
#define PX_TSAN_ACTIVE 1
#elif defined(__has_feature)  // clang
#if __has_feature(thread_sanitizer)
#define PX_TSAN_ACTIVE 1
#endif
#endif

namespace px::util {

#if defined(PX_TSAN_ACTIVE)

namespace detail {
inline std::atomic<unsigned> tsan_fence_sync{0};
}

inline void thread_fence(std::memory_order order) noexcept {
  detail::tsan_fence_sync.fetch_add(0, order);
}

#else

inline void thread_fence(std::memory_order order) noexcept {
  std::atomic_thread_fence(order);
}

#endif

}  // namespace px::util
