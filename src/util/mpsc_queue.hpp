// Multi-producer single-consumer queues.
//
// The scheduler's inject queue (parcel handlers and remote wakeups push,
// one worker drains) and each locality's parcel port use these.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace px::util {

// Vyukov-style intrusive MPSC queue.  T must expose `std::atomic<T*> next`.
// push() is wait-free; pop() is single-consumer and may transiently observe
// an in-progress push (returns nullptr, caller retries or moves on).
template <typename T>
class intrusive_mpsc_queue {
 public:
  intrusive_mpsc_queue() : head_(&stub_), tail_(&stub_) {
    stub_.next.store(nullptr, std::memory_order_relaxed);
  }

  intrusive_mpsc_queue(const intrusive_mpsc_queue&) = delete;
  intrusive_mpsc_queue& operator=(const intrusive_mpsc_queue&) = delete;

  void push(T* node) noexcept {
    node->next.store(nullptr, std::memory_order_relaxed);
    T* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
  }

  // Single-consumer dequeue.  A nullptr return is tri-state in disguise:
  // the queue may be truly empty, or a producer may be mid-push (head_
  // already swung to the new node, predecessor's `next` not yet linked).
  // Callers that are about to *sleep* must therefore gate on
  // empty_estimate(), which stays conservatively "non-empty" through the
  // whole push window — treating this nullptr as definitive is the classic
  // lost-wakeup feeder.
  T* pop() noexcept {
    T* tail = tail_;
    T* next = tail->next.load(std::memory_order_acquire);
    if (tail == &stub_) {
      if (next == nullptr) return nullptr;  // empty
      tail_ = next;
      tail = next;
      next = next->next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {
      tail_ = next;
      return tail;
    }
    T* head = head_.load(std::memory_order_acquire);
    if (tail != head) return nullptr;  // producer mid-push; try later
    push(&stub_);
    next = tail->next.load(std::memory_order_acquire);
    if (next != nullptr) {
      tail_ = next;
      return tail;
    }
    return nullptr;
  }

  // True only when the queue is definitely empty.  head_ points at the
  // stub iff every pushed node has been fully consumed; a producer mid-push
  // has already swung head_ to its node, so this reports "non-empty" for
  // the entire push window.  That conservatism is load-bearing: it is what
  // lets the scheduler's idle path sleep safely after pop() returned
  // nullptr.  (Deliberately reads only head_: tail_ is consumer-private and
  // reading it here from other threads would be a data race.)
  bool empty_estimate() const noexcept {
    return head_.load(std::memory_order_acquire) == &stub_;
  }

 private:
  std::atomic<T*> head_;
  T* tail_;  // consumer-private; never read outside pop()
  // The stub is a real (default-constructed) T so it can sit in the linked
  // list; only its `next` field is ever touched.
  T stub_{};
};

// Blocking MPMC channel with closed-state; used where throughput is not
// critical (runtime control plane, CSP baseline rendezvous buffers).
template <typename T>
class blocking_queue {
 public:
  void push(T value) {
    {
      std::lock_guard lock(mutex_);
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
  }

  // Blocks until an item arrives or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  std::optional<T> try_pop() {
    std::lock_guard lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace px::util
