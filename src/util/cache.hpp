// Cache-line geometry and false-sharing avoidance helpers.
#pragma once

#include <cstddef>
#include <new>

namespace px::util {

// Fixed rather than std::hardware_destructive_interference_size: that value
// varies with -mtune and would silently change ABI between translation
// units compiled with different flags (GCC warns for exactly this reason).
inline constexpr std::size_t cache_line_size = 64;

// Wraps a value in its own cache line so per-worker counters and queue
// endpoints do not false-share.
template <typename T>
struct alignas(cache_line_size) padded {
  T value{};

  padded() = default;
  explicit padded(T v) : value(std::move(v)) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

}  // namespace px::util
