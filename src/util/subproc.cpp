#include "util/subproc.hpp"

#include <netinet/in.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "util/assert.hpp"

namespace px::util {

std::string self_exe_path() {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof buf - 1);
  PX_ASSERT_MSG(n > 0, "subproc: cannot read /proc/self/exe");
  return std::string(buf, static_cast<std::size_t>(n));
}

int pick_free_tcp_port() {
  // The port has to survive a close-then-rebind handoff (the parent picks
  // it, a spawned rank 0 binds it), so a plain bind(:0)+close probe races
  // other concurrently-launching test parents: two parents can be handed
  // the same ephemeral port and the slower rank 0 dies on bind.  Instead,
  // probe a pid-salted sequence — concurrent parents walk disjoint
  // sequences, so the close-to-rebind window is never contested — and
  // verify each candidate is actually bindable before handing it out.
  static std::atomic<unsigned> seq{0};
  const unsigned salt = static_cast<unsigned>(getpid()) * 7919u +
                        seq.fetch_add(1) * 131071u;
  for (unsigned attempt = 0; attempt < 512; ++attempt) {
    const int port =
        static_cast<int>(15000u + (salt + attempt * 257u) % 45000u);
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    PX_ASSERT(fd >= 0);
    const int one = 1;
    (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    const int rc =
        bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
    close(fd);
    if (rc == 0) return port;
  }
  PX_ASSERT_MSG(false, "subproc: no bindable tcp port in 512 probes");
  return -1;
}

pid_t spawn_process(
    const std::vector<std::string>& argv,
    const std::vector<std::pair<std::string, std::string>>& extra_env) {
  PX_ASSERT(!argv.empty());
  const pid_t parent = getpid();
  const pid_t pid = fork();
  PX_ASSERT_MSG(pid >= 0, "subproc: fork() failed");
  if (pid != 0) return pid;

  // Child: die with the parent.  A crashed/killed test parent must never
  // strand a mesh of live ranks — without this only wait_exit's hard cap
  // reaps them, and a SIGKILLed parent never reaches wait_exit at all.
  // PR_SET_PDEATHSIG survives execv; re-check the parent afterwards to
  // close the fork-then-parent-dies race (the signal only fires for deaths
  // that happen after the prctl).
  prctl(PR_SET_PDEATHSIG, SIGKILL);
  if (getppid() != parent) _exit(126);

  // Apply the environment overrides, then exec.
  for (const auto& [key, value] : extra_env) {
    setenv(key.c_str(), value.c_str(), 1);
  }
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);
  execv(cargv[0], cargv.data());
  _exit(127);  // exec failed; the parent sees it as a plain nonzero exit
}

int wait_exit(pid_t pid, std::uint64_t timeout_ms) {
  for (std::uint64_t waited_ms = 0;;) {
    int status = 0;
    const pid_t r = waitpid(pid, &status, WNOHANG);
    if (r == pid) {
      if (WIFEXITED(status)) return WEXITSTATUS(status);
      return -1;  // killed by a signal (assert/abort/segfault)
    }
    PX_ASSERT_MSG(r == 0 || errno == EINTR, "subproc: waitpid() failed");
    if (waited_ms >= timeout_ms) {
      // A wedged child must not wedge the parent (and with it CI): kill
      // and report failure.
      kill(pid, SIGKILL);
      (void)waitpid(pid, &status, 0);
      return -1;
    }
    usleep(20 * 1000);
    waited_ms += 20;
  }
}

std::vector<std::pair<std::string, std::string>> net_rank_env(
    int rank, int nranks, int root_port, const std::string& backend) {
  return {
      {"PX_NET_BACKEND", backend},
      {"PX_NET_RANK", std::to_string(rank)},
      {"PX_NET_RANKS", std::to_string(nranks)},
      {"PX_NET_ROOT", "127.0.0.1:" + std::to_string(root_port)},
      {"PX_NET_LISTEN", "127.0.0.1:0"},
  };
}

}  // namespace px::util
