// Monotonic nanosecond timestamp shared by the runtime's rate gates
// (monitor sampling, rebalance polling, parcel-port burst detection).
#pragma once

#include <chrono>
#include <cstdint>

namespace px::util {

inline std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace px::util
