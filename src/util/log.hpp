// Minimal leveled logger.
//
// The runtime logs only lifecycle events and anomalies; hot paths never log.
// Level is settable at runtime (PX_LOG_LEVEL=debug|info|warn|error|off).
#pragma once

#include <cstdarg>
#include <string>

namespace px::util {

enum class log_level : int { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

log_level get_log_level() noexcept;
void set_log_level(log_level level) noexcept;
log_level parse_log_level(const std::string& name) noexcept;

void vlog(log_level level, const char* fmt, std::va_list args);

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void log(log_level level, const char* fmt, ...);

}  // namespace px::util

#define PX_LOG_DEBUG(...) ::px::util::log(::px::util::log_level::debug, __VA_ARGS__)
#define PX_LOG_INFO(...) ::px::util::log(::px::util::log_level::info, __VA_ARGS__)
#define PX_LOG_WARN(...) ::px::util::log(::px::util::log_level::warn, __VA_ARGS__)
#define PX_LOG_ERROR(...) ::px::util::log(::px::util::log_level::error, __VA_ARGS__)
