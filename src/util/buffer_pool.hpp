// Bounded pool of reusable byte buffers for the parcel/net hot path.
//
// The parcel pipeline's steady state must perform zero heap allocations per
// parcel: outbound coalescing buffers are acquired here, shipped through the
// fabric as message payloads, and released back after the receive handler
// returns — so a small working set of vectors (with their grown capacity)
// circulates forever.  Buffers above `max_buffer_bytes` are discarded on
// release rather than pinned, which caps the pool's resident footprint after
// a burst of jumbo frames.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "util/spinlock.hpp"

namespace px::util {

struct buffer_pool_params {
  std::size_t max_buffers = 128;           // pooled buffers kept at rest
  std::size_t max_buffer_bytes = 1 << 20;  // larger buffers are not retained
};

struct buffer_pool_stats {
  std::uint64_t acquires = 0;
  std::uint64_t hits = 0;      // acquires served from the pool
  std::uint64_t releases = 0;
  std::uint64_t discards = 0;  // releases dropped (pool full / oversized)
};

class buffer_pool {
 public:
  explicit buffer_pool(buffer_pool_params params = {}) : params_(params) {}

  buffer_pool(const buffer_pool&) = delete;
  buffer_pool& operator=(const buffer_pool&) = delete;

  // Returns an empty buffer, reusing pooled capacity when available.
  std::vector<std::byte> acquire() {
    std::lock_guard lock(lock_);
    stats_.acquires += 1;
    if (!free_.empty()) {
      stats_.hits += 1;
      std::vector<std::byte> buf = std::move(free_.back());
      free_.pop_back();
      buf.clear();
      return buf;
    }
    return {};
  }

  // Returns a buffer's capacity to the pool.  Safe to call with a
  // moved-from or capacity-less vector (it is simply dropped).
  void release(std::vector<std::byte> buf) {
    std::lock_guard lock(lock_);
    stats_.releases += 1;
    if (buf.capacity() == 0 || buf.capacity() > params_.max_buffer_bytes ||
        free_.size() >= params_.max_buffers) {
      stats_.discards += 1;
      return;  // vector destructor frees it
    }
    free_.push_back(std::move(buf));
  }

  std::size_t pooled() const {
    std::lock_guard lock(lock_);
    return free_.size();
  }

  buffer_pool_stats stats() const {
    std::lock_guard lock(lock_);
    return stats_;
  }

  const buffer_pool_params& params() const noexcept { return params_; }

 private:
  buffer_pool_params params_;
  mutable spinlock lock_;
  std::vector<std::vector<std::byte>> free_;
  buffer_pool_stats stats_;
};

}  // namespace px::util
