#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace px::util {

namespace {

std::atomic<int> g_level = [] {
  if (const char* env = std::getenv("PX_LOG_LEVEL")) {
    return static_cast<int>(parse_log_level(env));
  }
  return static_cast<int>(log_level::warn);
}();

std::mutex g_log_mutex;

const char* level_name(log_level level) noexcept {
  switch (level) {
    case log_level::debug: return "DEBUG";
    case log_level::info: return "INFO";
    case log_level::warn: return "WARN";
    case log_level::error: return "ERROR";
    case log_level::off: return "OFF";
  }
  return "?";
}

}  // namespace

log_level get_log_level() noexcept {
  return static_cast<log_level>(g_level.load(std::memory_order_relaxed));
}

void set_log_level(log_level level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

log_level parse_log_level(const std::string& name) noexcept {
  if (name == "debug") return log_level::debug;
  if (name == "info") return log_level::info;
  if (name == "warn") return log_level::warn;
  if (name == "error") return log_level::error;
  if (name == "off") return log_level::off;
  return log_level::warn;
}

void vlog(log_level level, const char* fmt, std::va_list args) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard lock(g_log_mutex);
  std::fprintf(stderr, "[px %-5s] ", level_name(level));
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}

void log(log_level level, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::va_list args;
  va_start(args, fmt);
  vlog(level, fmt, args);
  va_end(args);
}

}  // namespace px::util
