// RAII POSIX shared-memory segment (shm_open / ftruncate / mmap).
//
// The shm transport's crash-safety story lives here.  A segment has two
// lifetimes: the *name* in /dev/shm and the *mapping* in each attached
// process.  `unlink()` retires the name immediately — existing mappings
// stay valid until every attacher unmaps — so the transport unlinks as
// soon as its peer has attached and nothing survives a later crash.  As a
// backstop, the destructor unlinks any still-named segment this process
// created, covering the window where a peer never attached at all.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace px::util {

class shm_segment {
 public:
  shm_segment() = default;
  ~shm_segment();

  shm_segment(const shm_segment&) = delete;
  shm_segment& operator=(const shm_segment&) = delete;
  shm_segment(shm_segment&& other) noexcept;
  shm_segment& operator=(shm_segment&& other) noexcept;

  // Creates a fresh segment (O_CREAT|O_EXCL) of exactly `bytes`, mapped
  // shared and zero-filled.  Asserts on any failure — segment creation
  // happens at boot, where the only correct response to EEXIST/ENOSPC is
  // a loud death.
  static shm_segment create(const std::string& name, std::size_t bytes);

  // Attaches to a segment some other process is creating *right now*:
  // retries open + size-visible until `timeout_ms` elapses (creation is
  // shm_open then ftruncate, so a freshly created name can briefly report
  // size 0).  Asserts on timeout.
  static shm_segment open_existing(const std::string& name,
                                   std::uint64_t timeout_ms);

  // Retires the name from /dev/shm (idempotent; mapping stays valid).
  // Only the creating side ever calls this — openers never own the name.
  void unlink() noexcept;

  bool valid() const noexcept { return base_ != nullptr; }
  void* data() const noexcept { return base_; }
  std::size_t size() const noexcept { return bytes_; }
  const std::string& name() const noexcept { return name_; }

 private:
  shm_segment(std::string name, void* base, std::size_t bytes, bool owner)
      : name_(std::move(name)), base_(base), bytes_(bytes), owner_(owner) {}
  void release() noexcept;

  std::string name_;
  void* base_ = nullptr;
  std::size_t bytes_ = 0;
  bool owner_ = false;     // this process created the name
  bool unlinked_ = false;  // name already retired
};

}  // namespace px::util
