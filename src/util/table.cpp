#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/assert.hpp"

namespace px::util {

text_table::text_table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void text_table::add_row_vec(std::vector<std::string> row) {
  PX_ASSERT_MSG(row.size() == headers_.size(),
                "text_table row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string text_table::to_cell(double v) {
  char buf[48];
  if (v == 0.0) return "0";
  const double mag = std::fabs(v);
  if (mag >= 1e6 || mag < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.4g", v);
  } else if (std::floor(v) == v && mag < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.4f", v);
  }
  return buf;
}

std::string text_table::render(const std::string& title) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  if (!title.empty()) out << title << '\n';

  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      out << std::string(width[c] - row[c].size(), ' ');
      out << (c + 1 < row.size() ? " | " : " |");
    }
    out << '\n';
  };

  emit_row(headers_);
  out << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(width[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string text_table::render_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << (c + 1 < row.size() ? "," : "");
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void text_table::print(const std::string& title) const {
  std::fputs(render(title).c_str(), stdout);
  std::fputc('\n', stdout);
}

std::string si_format(double value, const std::string& unit) {
  static constexpr struct {
    double scale;
    const char* prefix;
  } kScales[] = {
      {1e18, "E"}, {1e15, "P"}, {1e12, "T"}, {1e9, "G"},
      {1e6, "M"},  {1e3, "K"},  {1.0, ""},
  };
  char buf[64];
  const double mag = std::fabs(value);
  for (const auto& s : kScales) {
    if (mag >= s.scale || s.scale == 1.0) {
      std::snprintf(buf, sizeof buf, "%.3g %s%s", value / s.scale, s.prefix,
                    unit.c_str());
      return buf;
    }
  }
  return std::to_string(value) + unit;
}

}  // namespace px::util
