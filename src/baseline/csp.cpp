#include "baseline/csp.hpp"

#include "util/assert.hpp"

namespace px::baseline {

namespace {

// Internal tag space for collectives, disjoint from user tags by the high
// bit.  Epochs keep successive collective rounds from cross-matching.
constexpr std::uint64_t kInternalBit = 1ull << 63;
constexpr std::uint64_t kBarrierArrive = kInternalBit | (1ull << 62);
constexpr std::uint64_t kBarrierRelease = kInternalBit | (1ull << 61);
constexpr std::uint64_t kReduceGather = kInternalBit | (1ull << 60);
constexpr std::uint64_t kReduceResult = kInternalBit | (1ull << 59);

}  // namespace

csp_runtime::csp_runtime(csp_params params) : params_(params) {
  PX_ASSERT(params_.ranks >= 1);
  params_.fabric.endpoints = params_.ranks;
  for (std::size_t i = 0; i < params_.ranks; ++i) {
    mailboxes_.push_back(std::make_unique<mailbox>());
  }
  fabric_ = std::make_unique<net::fabric>(params_.fabric);
  for (std::size_t i = 0; i < params_.ranks; ++i) {
    fabric_->set_handler(
        static_cast<net::endpoint_id>(i), [this, i](net::message& m) {
          envelope env;
          env.source = static_cast<int>(m.source);
          env.tag = m.tag;
          // Steals the payload (mailbox entries outlive the handler); the
          // fabric's pool just sees a capacity-less release.
          env.payload = std::move(m.payload);
          post(static_cast<int>(i), std::move(env));
        });
  }
}

csp_runtime::~csp_runtime() = default;

void csp_runtime::post(int dest, envelope env) {
  mailbox& box = *mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard lock(box.mutex);
    box.messages.push_back(std::move(env));
  }
  box.cv.notify_all();
}

csp_runtime::envelope csp_runtime::take_matching(int rank, int source,
                                                 std::uint64_t tag) {
  mailbox& box = *mailboxes_[static_cast<std::size_t>(rank)];
  std::unique_lock lock(box.mutex);
  for (;;) {
    for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
      if (it->tag == tag && (source < 0 || it->source == source)) {
        envelope env = std::move(*it);
        box.messages.erase(it);
        return env;
      }
    }
    box.cv.wait(lock);
  }
}

void csp_runtime::run(const std::function<void(rank_context&)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(params_.ranks);
  for (std::size_t r = 0; r < params_.ranks; ++r) {
    threads.emplace_back([this, r, &body] {
      rank_context ctx(*this, static_cast<int>(r));
      body(ctx);
    });
  }
  for (auto& t : threads) t.join();
  fabric_->drain();
}

rank_context::rank_context(csp_runtime& rt, int rank)
    : rt_(rt), rank_(rank) {}

int rank_context::size() const noexcept {
  return static_cast<int>(rt_.ranks());
}

void rank_context::send(int dest, std::uint64_t tag,
                        std::vector<std::byte> payload) {
  PX_ASSERT(dest >= 0 && dest < size());
  if (dest == rank_) {
    // Self-sends bypass the fabric, as a local memcpy would.
    csp_runtime::envelope env{rank_, tag, std::move(payload)};
    rt_.post(rank_, std::move(env));
    return;
  }
  net::message m;
  m.source = static_cast<net::endpoint_id>(rank_);
  m.dest = static_cast<net::endpoint_id>(dest);
  m.tag = tag;
  m.payload = std::move(payload);
  rt_.fabric().send(std::move(m));
}

std::vector<std::byte> rank_context::recv(int source, std::uint64_t tag) {
  return rt_.take_matching(rank_, source, tag).payload;
}

void rank_context::barrier() {
  const std::uint64_t epoch = barrier_epoch_++;
  const std::uint64_t arrive = kBarrierArrive | epoch;
  const std::uint64_t release = kBarrierRelease | epoch;
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) (void)recv(-1, arrive);
    for (int r = 1; r < size(); ++r) send(r, release, {});
  } else {
    send(0, arrive, {});
    (void)recv(0, release);
  }
}

double rank_context::allreduce_sum(double value) {
  const std::uint64_t epoch = collective_epoch_++;
  const std::uint64_t gather = kReduceGather | epoch;
  const std::uint64_t result = kReduceResult | epoch;
  if (rank_ == 0) {
    double sum = value;
    for (int r = 1; r < size(); ++r) sum += recv_value<double>(-1, gather);
    for (int r = 1; r < size(); ++r) send_value(r, result, sum);
    return sum;
  }
  send_value(0, gather, value);
  return recv_value<double>(0, result);
}

}  // namespace px::baseline
