// CSP baseline: the "communicating sequential processes" model the paper
// positions ParalleX against (§1: "the dominant model of computation has
// been the communication sequential process or more commonly the message
// passing model represented by various implementations of MPI").
//
// SPMD ranks, blocking two-sided send/recv, global barriers, and collective
// reductions — run over the *same* latency-modelled fabric as the ParalleX
// runtime, so every head-to-head experiment isolates the execution model
// from the interconnect physics.
//
// Deliberate baseline properties (this is what the experiments measure):
//   * recv() blocks the whole rank — no overlap of communication with
//     computation unless the programmer hand-pipelines;
//   * barrier() costs two fabric traversals and serializes at rank 0;
//   * work distribution is static — a straggling rank idles its peers.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "net/fabric.hpp"
#include "util/serialize.hpp"

namespace px::baseline {

struct csp_params {
  std::size_t ranks = 4;
  net::fabric_params fabric{};  // endpoints overwritten with `ranks`
};

class csp_runtime;

// Per-rank communication context handed to the SPMD body.
class rank_context {
 public:
  rank_context(csp_runtime& rt, int rank);

  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  // Buffered send: enqueues into the fabric and returns (MPI_Send with a
  // buffered protocol).  The *receive* side is where CSP blocks.
  void send(int dest, std::uint64_t tag, std::vector<std::byte> payload);

  // Blocks until a message with (source, tag) arrives.
  std::vector<std::byte> recv(int source, std::uint64_t tag);

  template <typename T>
  void send_value(int dest, std::uint64_t tag, const T& value) {
    send(dest, tag, util::to_bytes(value));
  }

  template <typename T>
  T recv_value(int source, std::uint64_t tag) {
    return util::from_bytes<T>(recv(source, tag));
  }

  // Linear global barrier: everyone reports to rank 0, rank 0 releases.
  // Costs 2 fabric traversals; the paper's "synchronous global barriers".
  void barrier();

  // Sum-allreduce via gather-to-0 + broadcast.
  double allreduce_sum(double value);

 private:
  csp_runtime& rt_;
  int rank_;
  std::uint64_t barrier_epoch_ = 0;
  std::uint64_t collective_epoch_ = 0;
};

class csp_runtime {
 public:
  explicit csp_runtime(csp_params params);
  ~csp_runtime();

  csp_runtime(const csp_runtime&) = delete;
  csp_runtime& operator=(const csp_runtime&) = delete;

  std::size_t ranks() const noexcept { return params_.ranks; }
  net::fabric& fabric() noexcept { return *fabric_; }

  // Runs body(rank_context&) on every rank concurrently; returns when all
  // ranks complete.  Callable repeatedly.
  void run(const std::function<void(rank_context&)>& body);

 private:
  friend class rank_context;

  struct envelope {
    int source;
    std::uint64_t tag;
    std::vector<std::byte> payload;
  };

  struct mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<envelope> messages;
  };

  void post(int dest, envelope env);
  envelope take_matching(int rank, int source, std::uint64_t tag);

  csp_params params_;
  std::unique_ptr<net::fabric> fabric_;
  std::vector<std::unique_ptr<mailbox>> mailboxes_;
};

}  // namespace px::baseline
