// Cross-process AGAS resolution: the owner-hint wire protocol.
//
// A gid's home directory lives in its home rank's process (agas.hpp), so a
// sender on another rank has only two sources of truth about the current
// owner: route to the *home* (always correct, possibly one forward hop
// stale) or its local *forwarding cache* of owner hints.  Three parcels
// keep the caches converging without any coherence traffic:
//
//   px.agas_resolve   explicit refresh — ask the home rank for the current
//                     owner (an ordinary typed-action round trip paying
//                     fabric latency; resolve_remote() wraps it and
//                     installs the answer in the local cache);
//   px.agas_hint      owner hint — when a home rank forwards a parcel for
//                     an object that migrated away, it piggybacks the
//                     current owner back to the parcel's source so that
//                     sender converges on direct routing;
//   px.agas_hint with owner == invalid_locality
//                     hint invalidation — when a *stale* owner receives a
//                     parcel for an object that already moved on, it tells
//                     the sender to drop its cached translation (the next
//                     send routes via home and picks up a fresh hint).
//
// Hints are only ever hints: installing a stale one costs a bounded
// forward (runtime::route's max_forwards budget), never correctness.
#pragma once

#include <optional>

#include "gas/gid.hpp"
#include "lco/lco.hpp"

namespace px::core {
class locality;
}

namespace px::gas {

// Asks `id`'s home rank for the current owner (split-phase; the future is
// satisfied by the reply parcel).  Resolves to invalid_locality when the
// gid is unbound at its home.  The value is a locality_id widened to the
// action result type; narrow with static_cast<locality_id>.
lco::future<std::uint64_t> resolve_owner_async(core::locality& from, gid id);

// Blocking convenience (must run on a ParalleX thread): round-trips to the
// home rank, installs the answer as a forwarding hint in `from`'s cache,
// and returns it; nullopt for unbound gids.
std::optional<locality_id> resolve_remote(core::locality& from, gid id);

// Ships an owner hint (or an invalidation, owner == invalid_locality) to
// `to_rank`'s forwarding cache.  Fire-and-forget.
void send_owner_hint(core::locality& from, locality_id to_rank, gid id,
                     locality_id owner);

}  // namespace px::gas
