// Hierarchical symbolic namespace over gids.
//
// Paper §2.2: objects are "remotely identified efficiently through a
// hierarchical naming structure".  Paths are slash-separated UTF-8 segments
// ("app/graph/node42"); each registration binds a leaf path to a gid, and
// prefix queries enumerate a subtree — the pattern knowledge-management
// workloads (directed graphs, semantic nets) use to discover objects.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "gas/gid.hpp"
#include "util/spinlock.hpp"

namespace px::gas {

class name_service {
 public:
  // Binds path -> id.  Returns false when the path is already taken.
  bool register_name(std::string_view path, gid id);

  // Removes a binding; returns false when absent.
  bool unregister_name(std::string_view path);

  std::optional<gid> lookup(std::string_view path) const;

  // All bindings whose path starts with `prefix` followed by end-of-path or
  // '/' (so "app/gr" does NOT match "app/graph/x" but "app/graph" does).
  std::vector<std::pair<std::string, gid>> list(std::string_view prefix) const;

  std::size_t size() const;

  // Validates segment structure: non-empty segments, no leading/trailing
  // slash, printable characters.
  static bool valid_path(std::string_view path);

 private:
  mutable util::spinlock lock_;
  std::map<std::string, gid, std::less<>> bindings_;
};

}  // namespace px::gas
