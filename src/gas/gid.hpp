// Global identifiers for the ParalleX global name space.
//
// Paper §2.2 "Global name space": any first-class object — data, actions,
// LCOs, processes, and even hardware resources — is remotely identifiable.
// A gid encodes the object's *kind*, its *home* locality (whose directory is
// the authority for its current placement; objects may migrate away from
// home), and a sequence number unique within that home.
//
// Layout (64 bits):  [63:60 kind] [59:48 home locality] [47:0 sequence]
// => 16 kinds, 4096 localities, 2^48 objects per locality — ample for an
// in-process model while keeping gids trivially copyable and hashable.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "util/assert.hpp"

namespace px::gas {

using locality_id = std::uint32_t;

inline constexpr locality_id invalid_locality = 0xffffffffu;

// First-class entity kinds.  `hardware` realizes the paper's "hardware
// resources have their own names (typed)".
enum class gid_kind : std::uint8_t {
  data = 0,       // plain global object
  action = 1,     // named task entry point
  lco = 2,        // synchronization object
  process = 3,    // parallel process instance
  hardware = 4,   // typed hardware resource (memory bank, accelerator, ...)
};

class gid {
 public:
  constexpr gid() = default;

  static constexpr gid make(gid_kind kind, locality_id home,
                            std::uint64_t sequence) {
    // A home >= 4096 (or a sequence >= 2^48) would silently alias another
    // locality's (or object's) gid under the masks below — a truncation
    // bug that corrupts the directory, not a representable gid.
    PX_ASSERT_MSG(home <= 0xfffu, "gid::make: home locality out of range");
    PX_ASSERT_MSG(sequence <= 0xffffffffffffull,
                  "gid::make: sequence out of range");
    return gid((static_cast<std::uint64_t>(kind) << 60) |
               (static_cast<std::uint64_t>(home) << 48) |
               sequence);
  }

  static constexpr gid from_bits(std::uint64_t bits) noexcept {
    return gid(bits);
  }

  constexpr bool valid() const noexcept { return bits_ != 0; }
  constexpr gid_kind kind() const noexcept {
    return static_cast<gid_kind>(bits_ >> 60);
  }
  constexpr locality_id home() const noexcept {
    return static_cast<locality_id>((bits_ >> 48) & 0xfff);
  }
  constexpr std::uint64_t sequence() const noexcept {
    return bits_ & 0xffffffffffffull;
  }
  constexpr std::uint64_t bits() const noexcept { return bits_; }

  friend constexpr bool operator==(gid a, gid b) noexcept {
    return a.bits_ == b.bits_;
  }
  friend constexpr bool operator!=(gid a, gid b) noexcept {
    return a.bits_ != b.bits_;
  }
  friend constexpr bool operator<(gid a, gid b) noexcept {
    return a.bits_ < b.bits_;
  }

  std::string to_string() const;

  // Archive support (see util/serialize.hpp).
  template <typename Ar>
  friend void serialize(Ar& ar, gid& g) {
    ar& g.bits_;
  }

 private:
  explicit constexpr gid(std::uint64_t bits) : bits_(bits) {}
  std::uint64_t bits_ = 0;
};

}  // namespace px::gas

template <>
struct std::hash<px::gas::gid> {
  std::size_t operator()(px::gas::gid g) const noexcept {
    // Fibonacci scramble: sequences are dense small integers.
    return static_cast<std::size_t>(g.bits() * 0x9e3779b97f4a7c15ull);
  }
};
