#include "gas/name_service.hpp"

#include <cctype>
#include <mutex>

namespace px::gas {

bool name_service::valid_path(std::string_view path) {
  if (path.empty() || path.front() == '/' || path.back() == '/') return false;
  bool prev_slash = false;
  for (const char c : path) {
    if (c == '/') {
      if (prev_slash) return false;  // empty segment
      prev_slash = true;
      continue;
    }
    prev_slash = false;
    if (!std::isprint(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool name_service::register_name(std::string_view path, gid id) {
  if (!valid_path(path) || !id.valid()) return false;
  std::lock_guard lock(lock_);
  return bindings_.emplace(std::string(path), id).second;
}

bool name_service::unregister_name(std::string_view path) {
  std::lock_guard lock(lock_);
  const auto it = bindings_.find(path);
  if (it == bindings_.end()) return false;
  bindings_.erase(it);
  return true;
}

std::optional<gid> name_service::lookup(std::string_view path) const {
  std::lock_guard lock(lock_);
  const auto it = bindings_.find(path);
  if (it == bindings_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::pair<std::string, gid>> name_service::list(
    std::string_view prefix) const {
  std::vector<std::pair<std::string, gid>> out;
  std::lock_guard lock(lock_);
  for (auto it = bindings_.lower_bound(prefix); it != bindings_.end(); ++it) {
    const std::string& path = it->first;
    if (path.compare(0, prefix.size(), prefix) != 0) break;
    // Segment boundary: exact match or '/' right after the prefix.
    if (path.size() > prefix.size() && !prefix.empty() &&
        path[prefix.size()] != '/') {
      continue;
    }
    out.emplace_back(path, it->second);
  }
  return out;
}

std::size_t name_service::size() const {
  std::lock_guard lock(lock_);
  return bindings_.size();
}

}  // namespace px::gas
