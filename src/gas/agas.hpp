// Active Global Address Space: gid -> current-owner resolution with
// migration support.
//
// The authority for a gid is the *directory shard of its home locality*
// (encoded in the gid).  Every locality keeps a private resolution cache;
// caches are not coherently invalidated on migration — a parcel routed on a
// stale cache arrives at the old owner, which detects the miss and forwards
// (the runtime layer does the forwarding; this class supplies authoritative
// re-resolution and cache refresh).  This is the paper's "efficient address
// translation ... in the presence of dynamic object distribution" without
// requiring global coherence.
//
// Distributed mode (PR 5): every process constructs the same shard/cache
// geometry, but only the shard of its *own rank* is populated — the home
// directory for a gid physically lives in the home rank's process, and it
// is the single authority for that gid machine-wide.  The local cache slot
// of the process's rank doubles as its *forwarding cache* for
// remotely-homed gids: entries arrive as owner hints piggybacked by home
// ranks when they forward a parcel (gas/resolve.hpp), or from an explicit
// px.agas_resolve round trip, and are only ever hints — a parcel routed on
// a stale one lands at the old owner and heals through home forwarding.
// cached()/note_owner() are that hint surface; the directory methods
// (bind/unbind/migrate/resolve_authoritative) must only be called for gids
// homed at this process's rank.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "gas/gid.hpp"
#include "util/cache.hpp"
#include "util/spinlock.hpp"

namespace px::gas {

struct agas_stats {
  std::uint64_t binds = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;  // authoritative directory lookups
  std::uint64_t migrations = 0;
  std::uint64_t stale_refreshes = 0;
  std::uint64_t hint_evictions = 0;  // cold hints aged out of a full cache
};

class agas {
 public:
  explicit agas(std::size_t localities);

  std::size_t localities() const noexcept { return shards_.size(); }

  // Allocates a fresh gid homed at `home` (directory entry not yet bound).
  gid allocate(gid_kind kind, locality_id home);

  // Binds gid to its initial owner locality.  Usually owner == home, but
  // the model permits binding elsewhere from the start.
  void bind(gid id, locality_id owner);

  // Removes the directory entry (object destroyed).
  void unbind(gid id);

  // Resolution as seen from `asking` locality: cache first, then the home
  // directory.  Returns nullopt for unbound gids.
  std::optional<locality_id> resolve(locality_id asking, gid id);

  // Bypasses the cache, consults the home directory, refreshes the asking
  // locality's cache.  Used by the runtime when a parcel arrived at a
  // locality that no longer owns the object (stale-cache forward).
  std::optional<locality_id> resolve_authoritative(locality_id asking, gid id);

  // Moves ownership to `new_owner` (version bump).  Stale caches remain
  // until lazily refreshed.
  void migrate(gid id, locality_id new_owner);

  // Tolerant upsert: migrate when the entry exists, bind when it does not.
  // Used for post-rank-loss re-homing — the successor rank adopts the
  // casualty's directory shard starting from empty, so survivors'
  // re-registrations must not trip the bound-twice/unbound asserts.
  void rebind(gid id, locality_id owner);

  // Directory repair after rank loss: erase every entry in `home`'s shard
  // whose owner is `dead` (those objects died with the casualty's process)
  // and return the erased gids so the runtime can report them lost.
  std::vector<gid> drop_entries_owned_by(locality_id home, locality_id dead);

  // Forwarding-cache repair after rank loss: drop every hint in `asking`'s
  // cache that points at `dead`.  Returns how many were purged.
  std::size_t purge_owner_hints(locality_id asking, locality_id dead);

  // Drops a cached translation (e.g. after the runtime observed it stale).
  void invalidate_cache(locality_id asking, gid id);

  // Cache-only lookup: the hint `asking` holds for `id`, without touching
  // the home directory (which may live in another process).  Counts as a
  // cache hit when present; absence is not counted as a miss — the caller
  // falls back to home routing, not to an authoritative lookup here.
  std::optional<locality_id> cached(locality_id asking, gid id);

  // Installs/overwrites a forwarding hint in `asking`'s cache (an owner
  // hint learned from the wire).  Overwrites count as stale_refreshes —
  // the cache held a translation that just got corrected.
  void note_owner(locality_id asking, gid id, locality_id owner);

  agas_stats stats() const;

 private:
  struct directory_entry {
    locality_id owner = invalid_locality;
    std::uint64_t version = 0;
  };

  // One shard per home locality; the shard holds every gid homed there.
  struct shard {
    util::spinlock lock;
    std::unordered_map<gid, directory_entry> entries;
    std::atomic<std::uint64_t> next_sequence{1};
  };

  // Per-locality private cache.  Bounded: hints carry a heat that grows on
  // use; when the cache is full a rate-limited aging scan halves every heat
  // in place and evicts the entries that reach zero (mirroring the parcel
  // heat table in core/locality).  A hint that cannot find room is simply
  // dropped — the caller falls back to home routing, which stays correct.
  struct hint {
    locality_id owner = invalid_locality;
    std::uint32_t heat = 1;
  };
  struct cache {
    util::spinlock lock;
    std::unordered_map<gid, hint> entries;
    std::int64_t last_age_ns = 0;
  };

  static constexpr std::size_t kMaxCacheEntries = 1024;
  static constexpr std::int64_t kCacheAgeIntervalNs = 1'000'000;  // 1 ms
  static constexpr std::uint32_t kMaxHintHeat = 16;

  enum class hint_install { inserted, refreshed_same, refreshed_changed,
                            dropped };
  // Requires c.lock held.  Installs/refreshes the hint, running the aging
  // eviction scan if the cache is full; reports what happened so callers
  // can keep their distinct stale_refreshes accounting.
  hint_install install_hint_locked(cache& c, gid id, locality_id owner);

  shard& home_shard(gid id);
  const shard& home_shard(gid id) const;

  std::vector<util::padded<shard>> shards_;
  std::vector<util::padded<cache>> caches_;

  std::atomic<std::uint64_t> binds_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> migrations_{0};
  std::atomic<std::uint64_t> stale_refreshes_{0};
  std::atomic<std::uint64_t> hint_evictions_{0};
};

}  // namespace px::gas
