#include "gas/resolve.hpp"

#include "core/action.hpp"
#include "core/locality.hpp"
#include "core/runtime.hpp"

namespace px::gas {

namespace {

// Both protocol actions are raw-registered (non-spawning, like px.sink):
// an authoritative lookup is a spinlocked map read and a hint install a
// spinlocked map write, and the ranks involved — the home of a hot object,
// a sender mid-storm — are exactly the ones whose workers may be
// monopolized; AGAS service traffic must not queue behind user fibers.

// Runs at the gid's home rank: the local directory shard is authoritative
// there.  Replies invalid_locality for unbound gids (the caller decides
// whether that is an error), and refreshes the home's own cache as a side
// effect of the authoritative lookup.
parcel::action_id agas_resolve_action_id() {
  static const parcel::action_id aid =
      parcel::action_registry::global().register_action(
          "px.agas_resolve", +[](void* ctx, const parcel::parcel_view& pv) {
            auto* loc = static_cast<core::locality*>(ctx);
            const auto bits = util::from_bytes<std::uint64_t>(pv.arguments());
            const gid id = gid::from_bits(bits);
            // effective_home: the casualty's successor answers for its
            // adopted shard after a rank loss (docs/resilience.md).
            PX_ASSERT_MSG(loc->rt().effective_home(id) == loc->id(),
                          "px.agas_resolve parcel landed off the home rank");
            const auto owner =
                loc->rt().gas().resolve_authoritative(loc->id(), id);
            core::send_continuation_reply(
                *loc, pv.cont(),
                util::to_bytes(static_cast<std::uint64_t>(
                    owner.value_or(invalid_locality))));
          });
  return aid;
}

// Runs at the hinted rank: install (or drop) the forwarding-cache entry.
parcel::action_id agas_hint_action_id() {
  static const parcel::action_id aid =
      parcel::action_registry::global().register_action(
          "px.agas_hint", +[](void* ctx, const parcel::parcel_view& pv) {
            auto* loc = static_cast<core::locality*>(ctx);
            const auto args =
                util::from_bytes<std::tuple<std::uint64_t, locality_id>>(
                    pv.arguments());
            const gid id = gid::from_bits(std::get<0>(args));
            const locality_id owner = std::get<1>(args);
            if (owner == invalid_locality) {
              loc->rt().gas().invalidate_cache(loc->id(), id);
            } else {
              loc->rt().gas().note_owner(loc->id(), id, owner);
            }
          });
  return aid;
}

// Eager: action ids are positional; every rank mints these at boot.
[[maybe_unused]] const parcel::action_id k_agas_resolve_registration =
    agas_resolve_action_id();
[[maybe_unused]] const parcel::action_id k_agas_hint_registration =
    agas_hint_action_id();

void send_resolve(core::locality& from, gid id, parcel::continuation cont) {
  parcel::parcel p;
  p.destination = from.rt().locality_gid(from.rt().effective_home(id));
  p.action = agas_resolve_action_id();
  p.cont = cont;
  p.arguments = util::to_bytes(id.bits());
  from.send(std::move(p));
}

}  // namespace

lco::future<std::uint64_t> resolve_owner_async(core::locality& from, gid id) {
  lco::promise<std::uint64_t> prom;
  auto fut = prom.get_future();
  send_resolve(from, id,
               core::make_promise_sink<std::uint64_t>(from, std::move(prom)));
  return fut;
}

std::optional<locality_id> resolve_remote(core::locality& from, gid id) {
  auto fut = resolve_owner_async(from, id);
  const auto owner = static_cast<locality_id>(fut.get());
  if (owner == invalid_locality) return std::nullopt;
  from.rt().gas().note_owner(from.id(), id, owner);
  return owner;
}

void send_owner_hint(core::locality& from, locality_id to_rank, gid id,
                     locality_id owner) {
  parcel::parcel p;
  p.destination = from.rt().locality_gid(to_rank);
  p.action = agas_hint_action_id();
  p.arguments = util::to_bytes(
      std::tuple<std::uint64_t, locality_id>(id.bits(), owner));
  from.send(std::move(p));
}

}  // namespace px::gas
