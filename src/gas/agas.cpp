#include "gas/agas.hpp"

#include <cstdio>
#include <mutex>

#include "util/assert.hpp"
#include "util/clock.hpp"

namespace px::gas {

std::string gid::to_string() const {
  static constexpr const char* kKinds[] = {"data", "action", "lco", "process",
                                           "hardware"};
  const auto k = static_cast<std::size_t>(kind());
  char buf[64];
  std::snprintf(buf, sizeof buf, "gid{%s L%u #%llu}",
                k < 5 ? kKinds[k] : "?", home(),
                static_cast<unsigned long long>(sequence()));
  return buf;
}

agas::agas(std::size_t localities)
    : shards_(localities), caches_(localities) {
  PX_ASSERT(localities >= 1 && localities <= 4096);
}

agas::shard& agas::home_shard(gid id) {
  const locality_id home = id.home();
  PX_ASSERT(home < shards_.size());
  return *shards_[home];
}

const agas::shard& agas::home_shard(gid id) const {
  const locality_id home = id.home();
  PX_ASSERT(home < shards_.size());
  return *shards_[home];
}

gid agas::allocate(gid_kind kind, locality_id home) {
  PX_ASSERT(home < shards_.size());
  // Belt and braces with gid::make's own assert: a home that does not fit
  // the 12-bit field would alias another locality's directory shard.
  PX_ASSERT_MSG(home <= 0xfffu, "agas::allocate: home exceeds gid range");
  const std::uint64_t seq =
      shards_[home]->next_sequence.fetch_add(1, std::memory_order_relaxed);
  return gid::make(kind, home, seq);
}

void agas::bind(gid id, locality_id owner) {
  PX_ASSERT(id.valid());
  PX_ASSERT(owner < shards_.size());
  shard& s = home_shard(id);
  std::lock_guard lock(s.lock);
  auto [it, inserted] = s.entries.try_emplace(id);
  PX_ASSERT_MSG(inserted, "gid bound twice");
  it->second.owner = owner;
  it->second.version = 1;
  binds_.fetch_add(1, std::memory_order_relaxed);
}

void agas::unbind(gid id) {
  shard& s = home_shard(id);
  std::lock_guard lock(s.lock);
  s.entries.erase(id);
}

std::optional<locality_id> agas::resolve(locality_id asking, gid id) {
  PX_ASSERT(asking < caches_.size());
  {
    cache& c = *caches_[asking];
    std::lock_guard lock(c.lock);
    const auto it = c.entries.find(id);
    if (it != c.entries.end()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      if (it->second.heat < kMaxHintHeat) it->second.heat += 1;
      return it->second.owner;
    }
  }
  return resolve_authoritative(asking, id);
}

agas::hint_install agas::install_hint_locked(cache& c, gid id,
                                             locality_id owner) {
  const auto it = c.entries.find(id);
  if (it != c.entries.end()) {
    const bool changed = it->second.owner != owner;
    it->second.owner = owner;
    if (it->second.heat < kMaxHintHeat) it->second.heat += 1;
    return changed ? hint_install::refreshed_changed
                   : hint_install::refreshed_same;
  }
  if (c.entries.size() >= kMaxCacheEntries) {
    const std::int64_t now = util::now_ns();
    if (now - c.last_age_ns < kCacheAgeIntervalNs) {
      return hint_install::dropped;  // scan ran too recently; stay bounded
    }
    c.last_age_ns = now;
    std::uint64_t evicted = 0;
    for (auto e = c.entries.begin(); e != c.entries.end();) {
      e->second.heat /= 2;
      if (e->second.heat == 0) {
        e = c.entries.erase(e);
        ++evicted;
      } else {
        ++e;
      }
    }
    if (evicted != 0) {
      hint_evictions_.fetch_add(evicted, std::memory_order_relaxed);
    }
    if (c.entries.size() >= kMaxCacheEntries) {
      return hint_install::dropped;  // everything still hot
    }
  }
  c.entries.emplace(id, hint{owner, 1});
  return hint_install::inserted;
}

std::optional<locality_id> agas::resolve_authoritative(locality_id asking,
                                                       gid id) {
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  locality_id owner = invalid_locality;
  {
    shard& s = home_shard(id);
    std::lock_guard lock(s.lock);
    const auto it = s.entries.find(id);
    if (it == s.entries.end()) return std::nullopt;
    owner = it->second.owner;
  }
  {
    cache& c = *caches_[asking];
    std::lock_guard lock(c.lock);
    const auto r = install_hint_locked(c, id, owner);
    // An authoritative lookup that finds any prior translation counts as a
    // stale refresh (the caller only gets here when routing went wrong).
    if (r == hint_install::refreshed_same ||
        r == hint_install::refreshed_changed) {
      stale_refreshes_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return owner;
}

void agas::migrate(gid id, locality_id new_owner) {
  PX_ASSERT(new_owner < shards_.size());
  shard& s = home_shard(id);
  std::lock_guard lock(s.lock);
  const auto it = s.entries.find(id);
  PX_ASSERT_MSG(it != s.entries.end(), "migrate of unbound gid");
  it->second.owner = new_owner;
  it->second.version += 1;
  migrations_.fetch_add(1, std::memory_order_relaxed);
}

void agas::rebind(gid id, locality_id owner) {
  PX_ASSERT(id.valid());
  PX_ASSERT(owner < shards_.size());
  shard& s = home_shard(id);
  std::lock_guard lock(s.lock);
  auto [it, inserted] = s.entries.try_emplace(id);
  if (inserted) {
    it->second.owner = owner;
    it->second.version = 1;
    binds_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  it->second.owner = owner;
  it->second.version += 1;
  migrations_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<gid> agas::drop_entries_owned_by(locality_id home,
                                             locality_id dead) {
  PX_ASSERT(home < shards_.size());
  std::vector<gid> dropped;
  shard& s = *shards_[home];
  std::lock_guard lock(s.lock);
  for (auto it = s.entries.begin(); it != s.entries.end();) {
    if (it->second.owner == dead) {
      dropped.push_back(it->first);
      it = s.entries.erase(it);
    } else {
      ++it;
    }
  }
  return dropped;
}

std::size_t agas::purge_owner_hints(locality_id asking, locality_id dead) {
  PX_ASSERT(asking < caches_.size());
  cache& c = *caches_[asking];
  std::lock_guard lock(c.lock);
  std::size_t purged = 0;
  for (auto it = c.entries.begin(); it != c.entries.end();) {
    if (it->second.owner == dead) {
      it = c.entries.erase(it);
      ++purged;
    } else {
      ++it;
    }
  }
  return purged;
}

void agas::invalidate_cache(locality_id asking, gid id) {
  cache& c = *caches_[asking];
  std::lock_guard lock(c.lock);
  c.entries.erase(id);
}

std::optional<locality_id> agas::cached(locality_id asking, gid id) {
  PX_ASSERT(asking < caches_.size());
  cache& c = *caches_[asking];
  std::lock_guard lock(c.lock);
  const auto it = c.entries.find(id);
  if (it == c.entries.end()) return std::nullopt;
  cache_hits_.fetch_add(1, std::memory_order_relaxed);
  if (it->second.heat < kMaxHintHeat) it->second.heat += 1;
  return it->second.owner;
}

void agas::note_owner(locality_id asking, gid id, locality_id owner) {
  PX_ASSERT(asking < caches_.size());
  PX_ASSERT(id.valid());
  cache& c = *caches_[asking];
  std::lock_guard lock(c.lock);
  const auto r = install_hint_locked(c, id, owner);
  // Only an actual correction counts: fresh installs and same-value
  // refreshes are the wire doing its job, not a stale cache.
  if (r == hint_install::refreshed_changed) {
    stale_refreshes_.fetch_add(1, std::memory_order_relaxed);
  }
}

agas_stats agas::stats() const {
  agas_stats st;
  st.binds = binds_.load(std::memory_order_relaxed);
  st.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  st.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  st.migrations = migrations_.load(std::memory_order_relaxed);
  st.stale_refreshes = stale_refreshes_.load(std::memory_order_relaxed);
  st.hint_evictions = hint_evictions_.load(std::memory_order_relaxed);
  return st;
}

}  // namespace px::gas
