#include "trace/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "threads/scheduler.hpp"
#include "threads/thread.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"

namespace px::trace {

namespace detail {

// Constant-initialized: readable from any hook before (and after) the
// recorder singleton exists, with no init-guard on the fast path.
std::atomic<bool> g_enabled{false};

// One producer (the owning OS thread), one consumer (dump's drain).  head_
// publishes with release so the drain's acquire load sees complete slots;
// tail_ only ever advances, so a full ring is detected with a relaxed
// read — worst case the producer sees a stale (smaller) tail and drops an
// event the drain had already freed space for, which only undercounts
// capacity, never corrupts a slot.
struct ring {
  explicit ring(std::size_t capacity, std::uint32_t id)
      : slots(capacity), id(id) {}

  std::vector<event> slots;
  std::uint32_t id;
  std::atomic<std::uint64_t> head{0};   // next write index (producer)
  std::atomic<std::uint64_t> tail{0};   // next read index (consumer)
  std::atomic<std::uint64_t> drops{0};
  ring* next = nullptr;  // registry list link (immutable after publish)
};

}  // namespace detail

namespace {

thread_local detail::ring* tl_ring = nullptr;
thread_local context tl_context;  // plain-OS-thread fallback store

}  // namespace

recorder& recorder::global() noexcept {
  static recorder r;
  return r;
}

context current() noexcept {
  if (threads::thread_descriptor* td = threads::scheduler::self()) {
    return context{td->trace_bits, td->trace_span};
  }
  return tl_context;
}

void set_current(context ctx) noexcept {
  if (threads::thread_descriptor* td = threads::scheduler::self()) {
    td->trace_bits = ctx.trace_id;
    td->trace_span = ctx.span;
    return;
  }
  tl_context = ctx;
}

void recorder::configure(bool on, std::size_t ring_bytes, std::string dir,
                         std::uint32_t rank) {
  // Successive runtimes in one process (the common test shape) re-arm the
  // same singleton; reset every ring so a dump never replays the previous
  // instance's events.  Rings of exited threads stay registered — their
  // thread_local owner is gone, so resetting them here is race-free.
  detail::g_enabled.store(false, std::memory_order_relaxed);
  for (detail::ring* r = rings_.load(std::memory_order_acquire); r != nullptr;
       r = r->next) {
    // Zero head and tail (not just tail = head) so events_total() — the
    // trace/events counter — restarts from 0 for the new instance.
    r->head.store(0, std::memory_order_relaxed);
    r->tail.store(0, std::memory_order_release);
    r->drops.store(0, std::memory_order_relaxed);
  }
  id_seq_.store(1, std::memory_order_relaxed);
  // Top 16 bits salt ids by rank so two ranks minting concurrently can
  // never hand out the same trace/span id machine-wide.
  id_salt_ = (static_cast<std::uint64_t>(rank) + 1) << 48;
  ring_capacity_ = std::max<std::size_t>(ring_bytes / sizeof(event), 64);
  rank_ = rank;
  dir_ = dir.empty() ? "." : std::move(dir);
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

detail::ring* recorder::ring_for_this_thread() {
  detail::ring* r = tl_ring;
  if (r != nullptr) return r;
  r = new detail::ring(ring_capacity_,
                       ring_ids_.fetch_add(1, std::memory_order_relaxed));
  // Lock-free push-front; rings are never unregistered (a few KB per OS
  // thread that ever emitted, bounded by worker count).
  detail::ring* head = rings_.load(std::memory_order_relaxed);
  do {
    r->next = head;
  } while (!rings_.compare_exchange_weak(head, r, std::memory_order_release,
                                         std::memory_order_relaxed));
  tl_ring = r;
  return r;
}

void recorder::emit(event_kind kind, std::uint64_t trace_id,
                    std::uint64_t span, std::uint64_t parent_span,
                    std::uint64_t data, std::uint32_t arg) noexcept {
  if (!detail::g_enabled.load(std::memory_order_relaxed)) return;
  detail::ring* r = ring_for_this_thread();
  const std::uint64_t head = r->head.load(std::memory_order_relaxed);
  if (head - r->tail.load(std::memory_order_relaxed) >= r->slots.size()) {
    r->drops.fetch_add(1, std::memory_order_relaxed);  // full: never block
    return;
  }
  event& e = r->slots[head % r->slots.size()];
  e.ts_ns = util::now_ns();
  e.trace_id = trace_id;
  e.span_id = span;
  e.parent_span = parent_span;
  e.data = data;
  e.kind = static_cast<std::uint32_t>(kind);
  e.arg = arg;
  r->head.store(head + 1, std::memory_order_release);
}

std::uint64_t recorder::events_total() const noexcept {
  std::uint64_t n = 0;
  for (detail::ring* r = rings_.load(std::memory_order_acquire); r != nullptr;
       r = r->next) {
    n += r->head.load(std::memory_order_relaxed);
  }
  return n;
}

std::uint64_t recorder::drops_total() const noexcept {
  std::uint64_t n = 0;
  for (detail::ring* r = rings_.load(std::memory_order_acquire); r != nullptr;
       r = r->next) {
    n += r->drops.load(std::memory_order_relaxed);
  }
  return n;
}

namespace {

void put_u32(std::FILE* f, std::uint32_t v) {
  std::uint8_t b[4] = {static_cast<std::uint8_t>(v),
                       static_cast<std::uint8_t>(v >> 8),
                       static_cast<std::uint8_t>(v >> 16),
                       static_cast<std::uint8_t>(v >> 24)};
  std::fwrite(b, 1, sizeof b, f);
}

void put_u64(std::FILE* f, std::uint64_t v) {
  put_u32(f, static_cast<std::uint32_t>(v));
  put_u32(f, static_cast<std::uint32_t>(v >> 32));
}

}  // namespace

bool recorder::dump(
    std::int64_t clock_offset_ns,
    const std::vector<std::pair<std::string, std::int64_t>>& counter_deltas) {
  if (!detail::g_enabled.load(std::memory_order_relaxed)) return false;

  std::vector<detail::ring*> rings;
  for (detail::ring* r = rings_.load(std::memory_order_acquire); r != nullptr;
       r = r->next) {
    rings.push_back(r);
  }

  const std::string path =
      dir_ + "/px_trace." + std::to_string(rank_) + ".bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    PX_LOG_WARN("trace: cannot write shard %s", path.c_str());
    return false;
  }
  put_u32(f, shard_magic);
  put_u32(f, shard_version);
  put_u32(f, rank_);
  put_u32(f, static_cast<std::uint32_t>(rings.size()));
  put_u64(f, static_cast<std::uint64_t>(clock_offset_ns));

  for (detail::ring* r : rings) {
    const std::uint64_t head = r->head.load(std::memory_order_acquire);
    std::uint64_t tail = r->tail.load(std::memory_order_relaxed);
    put_u32(f, r->id);
    put_u32(f, 0);  // reserved
    put_u64(f, head - tail);
    // Records are LE-native in memory (see the event static_assert), so
    // slot-by-slot fwrite is the on-disk format directly.
    for (; tail != head; ++tail) {
      std::fwrite(&r->slots[tail % r->slots.size()], sizeof(event), 1, f);
    }
    r->tail.store(head, std::memory_order_release);
  }

  put_u32(f, static_cast<std::uint32_t>(counter_deltas.size()));
  for (const auto& [cpath, delta] : counter_deltas) {
    put_u32(f, static_cast<std::uint32_t>(cpath.size()));
    std::fwrite(cpath.data(), 1, cpath.size(), f);
    put_u64(f, static_cast<std::uint64_t>(delta));
  }
  const bool ok = std::fclose(f) == 0;
  if (ok) {
    PX_LOG_INFO("trace: wrote shard %s (%zu rings)", path.c_str(),
                rings.size());
  }
  return ok;
}

}  // namespace px::trace
