// Flight recorder: low-overhead causal event tracing for the whole runtime.
//
// The counter registry (introspect/) answers "how much"; this answers
// "where did the time for *one request* go" as it hops fibers, ranks, and
// migration windows.  Every worker (and the transport progress thread, and
// the main thread) owns a bounded SPSC ring of fixed-size binary records;
// emitting is a timestamp read plus one relaxed-indexed slot write — never
// a lock, never an allocation, never blocking.  A full ring counts a drop
// and discards; the hot path cannot be back-pressured by its own
// instrumentation.
//
// Causality: a *trace id* names one logical request end to end and a *span
// id* names one hop of it.  The pair rides in fiber-local slots on
// threads::thread_descriptor (the child_scope pattern — descriptor storage,
// NOT thread_local, because a suspended fiber resumes on any worker) with a
// thread_local fallback for plain OS threads (main, transport progress).
// Crossing the wire it travels as an optional 16-byte parcel header
// extension (parcel/parcel.hpp), so sender-side parcel_send and
// receiver-side parcel_dispatch records share a (trace, span) key that
// tools/px_trace.py turns into Perfetto flow arrows.
//
// Always compiled in, enabled by PX_TRACE (ring size PX_TRACE_RING_BYTES,
// shard directory PX_TRACE_DIR); when disabled the per-event cost is one
// relaxed load and a predicted branch.  At shutdown (or via the
// px.trace_dump action) each rank drains its rings into a binary shard
// `px_trace.<rank>.bin` with a counter-delta trailer; per-rank steady
// clocks are normalized by offsets sampled during net::bootstrap.
// See docs/tracing.md for the schema and the merge pipeline.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace px::trace {

enum class event_kind : std::uint32_t {
  none = 0,
  fiber_spawn,      // data = new thread id           (spawner's context)
  fiber_start,      // data = thread id               (fiber's context)
  fiber_suspend,    // data = thread id
  fiber_resume,     // data = thread id
  fiber_yield,      // data = thread id
  fiber_end,        // data = thread id
  parcel_send,      // data = destination gid bits, arg = action id
  parcel_enqueue,   // data = destination endpoint,  arg = action id
  wire_tx,          // data = frame payload bytes,   arg = dest endpoint
  wire_rx,          // data = frame payload bytes,   arg = source endpoint
  parcel_dispatch,  // data = destination gid bits,  arg = action id
  lco_wait,         // data = lco address
  lco_fire,         // data = lco address
  migrate_begin,    // data = object gid bits,       arg = destination rank
  migrate_implant,  // data = object gid bits,       arg = implanting rank
  migrate_end,      // data = object gid bits,       arg = destination rank
};

// One ring slot: 48 bytes, written little-endian-native (the parcel layer
// already pins the build to LE-or-swappable hosts) so the shard file is
// parseable by `struct.unpack("<qQQQQII")` with no per-field marshalling.
struct event {
  std::int64_t ts_ns = 0;         // util::now_ns (per-process steady epoch)
  std::uint64_t trace_id = 0;     // 0 = untraced machinery
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;
  std::uint64_t data = 0;         // kind-specific payload (see enum)
  std::uint32_t kind = 0;         // event_kind
  std::uint32_t arg = 0;          // kind-specific small payload
};
static_assert(sizeof(event) == 48, "shard format pins the record size");

// The causal identity an activity runs under.
struct context {
  std::uint64_t trace_id = 0;
  std::uint64_t span = 0;
  bool valid() const noexcept { return trace_id != 0; }
};

// Current context: the running fiber's descriptor slots when on a worker,
// a thread_local otherwise.  set_current writes the same store current
// reads, so a context installed on a fiber travels with it across
// suspension/steal (and one installed on the progress thread stays there).
context current() noexcept;
void set_current(context ctx) noexcept;

// Fresh machine-wide-unique id (rank-salted counter); used for both trace
// ids (minted once at the root of a request) and span ids (one per hop).
std::uint64_t new_id() noexcept;

// Installs `ctx` for a dynamic extent and restores the previous context on
// exit — the trace twin of core::detail::child_scope.
class scope {
 public:
  explicit scope(context ctx) : saved_(current()) { set_current(ctx); }
  ~scope() { set_current(saved_); }
  scope(const scope&) = delete;
  scope& operator=(const scope&) = delete;

 private:
  context saved_;
};

namespace detail {
struct ring;
// The armed flag lives at namespace scope (constant-initialized, no
// function-local-static guard) so the disabled fast path in every hook
// is exactly one relaxed load + branch — recorder::global() would pay a
// thread-safe-init guard check per call, measurable at parcel rates.
extern std::atomic<bool> g_enabled;
}  // namespace detail

class recorder {
 public:
  static recorder& global() noexcept;

  // Arms (or disarms) the recorder for a runtime instance.  Resets every
  // ring and the id generator; `rank` salts new_id() so ids minted on
  // different ranks never collide.  Not thread-safe against concurrent
  // emit() — call before schedulers start.
  void configure(bool on, std::size_t ring_bytes, std::string dir,
                 std::uint32_t rank);

  bool enabled() const noexcept {
    return detail::g_enabled.load(std::memory_order_relaxed);
  }

  // Appends one record to the calling thread's ring (allocating and
  // registering the ring on first use).  No-op when disabled.
  void emit(event_kind kind, std::uint64_t trace_id, std::uint64_t span,
            std::uint64_t parent_span, std::uint64_t data,
            std::uint32_t arg) noexcept;

  // Process totals across all rings (the trace/{events,drops} counters).
  std::uint64_t events_total() const noexcept;
  std::uint64_t drops_total() const noexcept;

  // Drains every ring into `<dir>/px_trace.<rank>.bin` (shard format in
  // docs/tracing.md), appending `counter_deltas` as the trailer.  Safe
  // while producers are still live (SPSC: drain only advances tails).
  // Returns false (with a log line) when the file cannot be written.
  bool dump(std::int64_t clock_offset_ns,
            const std::vector<std::pair<std::string, std::int64_t>>&
                counter_deltas);

  std::uint64_t next_id() noexcept {
    return id_seq_.fetch_add(1, std::memory_order_relaxed) | id_salt_;
  }

 private:
  detail::ring* ring_for_this_thread();

  std::atomic<std::uint64_t> id_seq_{1};
  std::uint64_t id_salt_ = 0;
  std::size_t ring_capacity_ = 0;  // events per ring
  std::uint32_t rank_ = 0;
  std::string dir_ = ".";

  // Registry of all rings ever handed out (never shrinks; rings of dead
  // threads are drained like any other at dump time).
  std::atomic<detail::ring*> rings_{nullptr};  // lock-free push-front list
  std::atomic<std::uint32_t> ring_ids_{0};
};

inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

inline std::uint64_t new_id() noexcept {
  return recorder::global().next_id();
}

inline void emit(event_kind kind, std::uint64_t trace_id, std::uint64_t span,
                 std::uint64_t parent_span, std::uint64_t data,
                 std::uint32_t arg = 0) noexcept {
  recorder::global().emit(kind, trace_id, span, parent_span, data, arg);
}

// Emit under the calling activity's current context.
inline void emit_here(event_kind kind, std::uint64_t data,
                      std::uint32_t arg = 0) noexcept {
  const context ctx = current();
  recorder::global().emit(kind, ctx.trace_id, ctx.span, 0, data, arg);
}

// Shard file constants (shared with tools/px_trace.py).
inline constexpr std::uint32_t shard_magic = 0x52545850u;  // "PXTR"
inline constexpr std::uint32_t shard_version = 1;

}  // namespace px::trace
