// The ParalleX runtime: localities + AGAS + parcel transport + lifecycle.
//
// One runtime models a whole machine: K localities (each a scheduler
// domain) connected by a parcel transport.  The runtime owns the global
// services — AGAS directory, symbolic name service, echo manager,
// percolation staging — and the system-wide quiescence protocol used for
// clean shutdown.
//
// Two deployment shapes share this class (PX_NET_BACKEND / net_params):
//
//   * single-process (default): every locality lives here, connected by
//     the latency-modelled net::fabric — the shape every pre-PR-4 test,
//     bench, and example runs in, unchanged;
//   * distributed ("tcp" or "shm"): the machine spans N processes
//     ("ranks"), one locality per process, connected by net::tcp_transport
//     over real sockets or net::shm_transport over same-host mapped rings,
//     with a net::bootstrap control plane.  localities_ is sparse
//     (only this rank's slot is populated; at() on a remote id asserts),
//     the AGAS directory shard for a gid lives in its *home rank's*
//     process, and — since PR 5 — objects genuinely migrate between
//     processes: migrate_gid() ships a registered-migratable object's
//     state (parcel::migration_record) to the destination, which implants
//     it, flips the home directory, and acks before the source retires its
//     copy; parcels routed on stale knowledge heal through bounded home
//     forwarding with piggybacked owner hints (gas/resolve.hpp), and the
//     rebalancer issues cross-process migrations fed by cross-rank
//     query_counter samples.  Closure-carrying calls (the untyped
//     process::spawn) remain local-only — closures cannot cross a process
//     boundary; typed actions (process::spawn_on<Fn>, process_ref,
//     litlx::atomic_object::atomically<Fn>) are the cross-process
//     vocabulary, since PR 6 with per-rank Dijkstra–Scholten credit
//     splitting (core/process_site.hpp) so remote children spawn tracked
//     grandchildren without a primary round trip.  wait_quiescent extends
//     the local fixed
//     point with a counting termination-detection collective over the
//     bootstrap.  Boot-time gid allocation (locality gids, counter gids)
//     replays identically in every process, so those names are
//     machine-wide valid without any directory traffic.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/locality.hpp"
#include "core/parcel_port.hpp"
#include "core/process_site.hpp"
#include "core/rebalancer.hpp"
#include "gas/agas.hpp"
#include "gas/name_service.hpp"
#include "introspect/monitor.hpp"
#include "introspect/registry.hpp"
#include "introspect/stats.hpp"
#include "net/fabric.hpp"
#include "net/transport.hpp"
#include "parcel/action_registry.hpp"
#include "parcel/migration.hpp"
#include "parcel/parcel.hpp"
#include "util/config.hpp"

namespace px::net {
class bootstrap;
}  // namespace px::net

namespace px::util {
class fault_injector;
}  // namespace px::util

namespace px::core {

class echo_manager;
class percolation_manager;

struct runtime_params {
  std::size_t localities = 4;
  unsigned workers_per_locality = 1;
  std::size_t stack_bytes = 64 * 1024;
  unsigned staging_slots_per_locality = 16;  // percolation staging depth
  // Transport backend + distributed identity (PX_NET_*); with the "tcp"
  // backend `localities` is overwritten with the rank count and this
  // process hosts exactly the locality numbered by its rank.
  net::net_params net{};
  // Fabric physics (sim backend only); `endpoints` is overwritten with
  // `localities`.
  net::fabric_params fabric{};
  std::uint64_t seed = 7;
  // Outbound parcel coalescing thresholds.  0 means "resolve from the
  // PX_PARCEL_FLUSH_BYTES / PX_PARCEL_FLUSH_COUNT environment, falling
  // back to the built-in defaults"; an explicit nonzero value wins over
  // the environment (flush_count = 1 disables coalescing).
  std::size_t parcel_flush_bytes = 0;
  std::uint32_t parcel_flush_count = 0;
  // Stale-cache forwarding hop bound: a parcel forwarded more than this
  // many times is dropped with a diagnostic (locality_stats counts drops).
  // Clamped to 254 — the u8 forwards counter must be able to exceed it.
  std::uint8_t max_forwards = 16;
  // First-parcel eager flush: when an isolated parcel opens a quiet port
  // channel and the sending scheduler has no other ready work, ship the
  // frame immediately instead of waiting for the flush-on-idle pass —
  // single-request latency without giving up batched throughput (bursts
  // are detected and left to coalesce).  -1 resolves from
  // PX_PARCEL_EAGER_FLUSH, defaulting to on.
  int parcel_eager_flush = -1;
  // Introspection-driven adaptive rebalancing (core/rebalancer.hpp).
  // `rebalance` is tri-state: -1 resolves from PX_REBALANCE (default
  // off).  Zero-valued tuning fields resolve from PX_REBALANCE_THRESHOLD /
  // PX_REBALANCE_MIN_DEPTH / PX_REBALANCE_MAX_MIGRATIONS /
  // PX_REBALANCE_INTERVAL_US, falling back to the rebalancer_params
  // built-ins.
  int rebalance = -1;
  double rebalance_threshold = 0.0;
  std::uint32_t rebalance_min_depth = 0;
  std::uint32_t rebalance_max_migrations = 0;
  std::uint64_t rebalance_interval_us = 0;
  // Flight recorder (src/trace/, docs/tracing.md).  `trace` is tri-state:
  // -1 resolves from PX_TRACE (default off).  Ring bytes 0 resolves from
  // PX_TRACE_RING_BYTES (default 1 MiB per thread); an empty dir resolves
  // from PX_TRACE_DIR (default ".").  Distributed, rank 0's resolved
  // toggle wins machine-wide (it rides the wire-params blob) so the
  // clock-sync collective and the per-parcel wire extension stay
  // symmetric across ranks.
  int trace = -1;
  std::size_t trace_ring_bytes = 0;
  std::string trace_dir;
  // Telemetry plane (src/introspect/stats.*, docs/metrics.md).  `stats` is
  // tri-state: -1 resolves from PX_STATS (default off); interval 0
  // resolves from PX_STATS_INTERVAL_US (default 10ms); an empty dir
  // resolves from PX_STATS_DIR (default ".").  Distributed, rank 0's
  // resolved toggle wins machine-wide (wire-params blob): the per-parcel
  // send-timestamp wire extension and the clock-sync collective must stay
  // symmetric across ranks, exactly like tracing.
  int stats = -1;
  std::uint64_t stats_interval_us = 0;
  std::string stats_dir;
};

class runtime {
 public:
  explicit runtime(runtime_params params = {});
  ~runtime();

  runtime(const runtime&) = delete;
  runtime& operator=(const runtime&) = delete;

  void start();
  void stop();
  bool started() const noexcept { return started_; }

  std::size_t num_localities() const noexcept { return localities_.size(); }
  // In distributed mode only this process's rank is addressable; asking
  // for a remote locality asserts (reach it with parcels instead).
  locality& at(gas::locality_id id);
  const runtime_params& params() const noexcept { return params_; }

  // Distributed identity: rank() == 0 and distributed() == false in the
  // single-process shape, so callers can be written once for both.
  bool distributed() const noexcept { return distributed_; }
  gas::locality_id rank() const noexcept { return rank_; }
  // The locality this process hosts (rank in distributed mode, 0 here).
  locality& here() { return at(rank_); }
  // Whether cross-process object migration (and the owner-hint forwarding
  // protocol that serves it) is live.  Always false single-process —
  // in-process migration needs no wire protocol; PX_MIGRATION=0 restores
  // PR 4's static home-owned behavior on the tcp backend.
  bool migration_enabled() const noexcept { return migration_enabled_; }

  gas::agas& gas() noexcept { return agas_; }
  gas::name_service& names() noexcept { return names_; }
  // The distributed backend's resilience ledger (per-peer unit books,
  // dead-peer mask, lost-unit totals); nullptr under the sim backend.
  net::distributed_transport* dist() noexcept { return dist_.get(); }
  // The wire, backend-agnostic; and the simulated fabric specifically
  // (latency model, histogram — asserts under the tcp backend).
  net::transport& transport() noexcept { return *transport_; }
  net::fabric& fabric();
  parcel_port& port(gas::locality_id id) { return *ports_.at(id); }
  echo_manager& echo_mgr() noexcept { return *echo_; }
  percolation_manager& percolation_mgr() noexcept { return *percolation_; }

  // Introspection: the counter registry (every counter is gid-addressable
  // and path-named; see introspect/registry.hpp), the per-locality load
  // monitors, and the adaptive rebalancer acting on them.
  introspect::registry& introspection() noexcept { return introspect_; }
  introspect::monitor& monitor_at(gas::locality_id id) {
    return *monitors_.at(id);
  }
  rebalancer& balancer() noexcept { return *balancer_; }

  // Untyped control-plane migration used by the rebalancer: moves the
  // object's table entry (implant at destination, then AGAS rebind, then
  // erase at source — the object is continuously resolvable and present at
  // whichever locality a racing parcel lands on).  Returns false when the
  // object vanished or no longer lives at `from` (a stale heat entry for
  // an object that already migrated away must not be yanked off an
  // innocent locality).
  bool rebalance_migrate(gas::gid id, gas::locality_id from,
                         gas::locality_id to);

  // The typed hardware gid naming locality `id` (paper: hardware resources
  // are first-class named entities).
  gas::gid locality_gid(gas::locality_id id) const;

  // Routes a parcel from locality `from` toward its destination's current
  // owner.  Local destinations dispatch without touching the fabric;
  // remote destinations coalesce through `from`'s parcel port.  Parcels
  // past the max_forwards hop bound are dropped with a diagnostic.
  void route(gas::locality_id from, parcel::parcel p);

  // Owner locality for a destination gid as seen from `from` (LCO/hardware
  // gids never migrate: owner == home).
  gas::locality_id owner_of(gas::locality_id from, gas::gid id);

  // Blocks until every scheduler is quiescent and the transport is drained
  // — i.e. no thread, parcel, or pending wakeup exists anywhere.
  // Internally loops until a pass over all counters is bracketed by two
  // identical activity snapshots (see activity_snapshot), which makes the
  // check race-free against threads that hand off work and terminate
  // mid-pass.  Distributed mode extends the local fixed point with a
  // counting termination-detection collective (bootstrap::quiesce_round):
  // ALL ranks must call wait_quiescent (directly or via run()/stop()) the
  // same number of times — it is a collective operation.
  void wait_quiescent();

  // Drains this rank's trace rings into px_trace.<rank>.bin (no-op with
  // tracing off), with the counter movement since boot as the shard
  // trailer.  stop() calls it after quiescence; the px.trace_dump action
  // triggers it mid-run (rings drain destructively, so a later dump
  // carries only events since).
  void dump_trace();

  // Takes a fresh sampling tick and writes this rank's series shard to
  // PX_STATS_DIR/px_stats.<rank>.jsonl (no-op with PX_STATS off).  stop()
  // calls it after quiescence; the px.stats_dump action triggers it
  // mid-run (series are non-destructive, so a later dump supersedes an
  // earlier one with a longer window).
  void dump_stats();

  // This rank's full jsonl shard (with a fresh tick), as shipped by the
  // px.stats_pull action so rank 0 can gather the machine without touching
  // remote filesystems.  Empty with PX_STATS off.
  std::string stats_serialize();

  // The telemetry collector (introspect/stats.hpp): series windows, rates,
  // tick/drop totals.  Valid whether or not PX_STATS armed it.
  introspect::stats_collector& telemetry() noexcept { return *stats_; }

  // This rank's steady-clock offset from rank 0, sampled over the
  // bootstrap when tracing or stats are on (0 when sim, rank 0, or both
  // planes off).  local_now - offset ≈ rank-0 clock.
  std::int64_t clock_offset_ns() const noexcept { return clock_offset_ns_; }

  // Per-rank Dijkstra–Scholten credit ledgers for distributed process
  // trees (core/process_site.hpp; used by process_ref and the typed child
  // wrappers in core/process.hpp).
  process_site_table& process_sites() noexcept { return psites_; }

  // Convenience driver: start if needed, run `root`, wait for global
  // quiescence.  Single-process: `root` runs once, on locality 0.
  // Distributed: every rank runs its own `root` on its own locality (SPMD
  // — branch on rank() inside), and the quiescence wait is the collective.
  void run(std::function<void()> root);

  // ------------------------------------------------- global object API

  // Constructs a T at locality `where`, binds a fresh data gid.
  template <typename T, typename... Args>
  gas::gid new_object(gas::locality_id where, Args&&... args) {
    auto obj = std::make_shared<T>(std::forward<Args>(args)...);
    const gas::gid id = agas_.allocate(gas::gid_kind::data, where);
    agas_.bind(id, where);
    at(where).put_object(id, std::move(obj));
    return id;
  }

  // Local pointer to an object owned by locality `where`; nullptr when the
  // object is not (or no longer) there.
  template <typename T>
  std::shared_ptr<T> get_local(gas::locality_id where, gas::gid id) {
    return std::static_pointer_cast<T>(at(where).get_object(id));
  }

  // Moves a serializable object to `to`, updating AGAS.  Parcels routed on
  // stale caches are forwarded by the delivery path.
  template <typename T>
  void migrate_object(gas::gid id, gas::locality_id to);

  // Like new_object, but tags the gid with T's registered migratable type
  // (PX_REGISTER_MIGRATABLE), making it eligible for *cross-process*
  // migration (migrate_gid / the distributed rebalancer).  Untagged
  // objects still migrate freely in-process.
  template <typename T, typename... Args>
  gas::gid new_migratable(gas::locality_id where, Args&&... args) {
    const gas::gid id = new_object<T>(where, std::forward<Args>(args)...);
    tag_migratable_object(id, parcel::migratable_type<T>::name());
    return id;
  }

  // Moves object `id` to rank/locality `to`, by gid alone.  Single-process
  // this is the untyped control-plane move (shared_ptr handoff).
  // Distributed it is the px.migrate_object two-phase handoff: serialize
  // the payload, implant at `to`, flip the home directory (home-mediated
  // when home != to), then — only after the acknowledgment LCO fires —
  // retire the source copy, so a racing parcel always finds the object
  // wherever its resolution lands it.  Must run on a ParalleX thread of
  // the owning rank in distributed mode (it blocks on the ack).  Returns
  // false when the object is missing here, not data-kind, not tagged
  // migratable (cross-process), or already mid-migration.
  //
  // Coherence caveat (documented, not checked): between implant and
  // retire both ranks hold a copy and each dispatches the parcels that
  // land on it, so an object whose *state* is mutated by actions should be
  // quiescent while it migrates.  Delivery stays exactly-once per parcel
  // throughout.
  bool migrate_gid(gas::gid id, gas::locality_id to);

  // Non-blocking form of the distributed handoff, for callers that cannot
  // suspend (the rebalancer acts from the transport progress thread, where
  // a fiber could starve behind the very backlog it is trying to shed).
  // Returns true when the handoff was *issued* — the synchronous checks
  // (data-kind, tagged migratable, present here, not already mid-flight)
  // passed and the px.migrate_object parcel is on its way; `done(true)`
  // then fires exactly once on the delivery thread after the ack retires
  // the source copy.  Returns false (and never calls `done`) when the
  // synchronous checks fail.
  bool migrate_gid_async(gas::gid id, gas::locality_id to,
                         std::function<void(bool)> done);

  // Records/queries the migratable type name a gid was created under
  // (new_migratable tags at creation; cross-process implants re-tag at the
  // destination so onward migrations keep working).
  void tag_migratable_object(gas::gid id, std::string type_name);
  std::optional<std::string> migration_type_of(gas::gid id) const;

  // Up to `max` migratable-tagged gids currently resident at this rank's
  // locality.  The rebalancer's fallback candidate source: a latency-bound
  // backlog delivers too rarely for the 1-in-8 heat sampler to name the
  // hot objects, and on a deeply imbalanced rank shedding *any* resident
  // beats shedding nothing.
  std::vector<gas::gid> migratable_residents(std::size_t max) const;

  // Internal: the receiving side of px.migrate_object (implant + directory
  // flip), and the home side of the directory update.  Both run as typed
  // actions (runtime.cpp).
  std::uint8_t migrate_implant(const parcel::migration_record& rec);
  std::uint8_t apply_agas_update(gas::gid id, gas::locality_id new_owner);

  // ----------------------------------------------------------- resilience
  //
  // Surviving rank loss (docs/resilience.md).  Deaths funnel through
  // note_peer_failure from every detector — the bootstrap lease expiry,
  // the transport's own link-death accounting, and px.peer_down parcels
  // from peers that saw it first.  The first observation per casualty
  // folds the loss into the transport books, tells the control plane
  // (rank 0 re-broadcasts), re-homes the directory, and gossips
  // px.peer_down to the other survivors; later observations are no-ops.

  // Idempotent external death verdict for `rank`.  Thread-safe; callable
  // from the heartbeat thread, the transport progress thread, and parcel
  // handlers alike.
  void note_peer_failure(gas::locality_id rank);

  // The live authority for gids homed at `id.home()`: the home itself
  // while it lives, else the deterministic successor — the next live rank
  // scanning upward mod nranks, so every survivor elects the same one
  // with no coordination.
  gas::locality_id effective_home(gas::gid id) const noexcept;

  // Confirmed-dead peer ranks as a bitmask (bit r = rank r lost), and
  // whether any loss has been confirmed at all.
  std::uint64_t lost_peer_mask() const noexcept {
    return peer_dead_mask_.load(std::memory_order_acquire);
  }
  bool has_lost_peers() const noexcept { return lost_peer_mask() != 0; }

  // Objects whose gid can no longer resolve because they died with a lost
  // rank: unique-gid count (the runtime/agas/gids_lost counter), and the
  // recording hook the route/arrival paths call per affected gid.
  std::uint64_t gids_lost() const noexcept {
    return gids_lost_.load(std::memory_order_relaxed);
  }
  void note_lost_gid(gas::gid id);

 private:
  friend class locality;

  void deliver_from_fabric(net::message& m);
  void register_counters();
  std::uint64_t activity_snapshot() const;
  // One pass of the local quiescence fixed point; true when stable.
  bool local_quiescent_pass();
  // Wire-relevant runtime knobs as a blob rank 0 broadcasts at bootstrap
  // so every process runs identical parcel-pipeline behavior.
  std::vector<std::byte> encode_wire_params() const;
  void apply_wire_params(std::span<const std::byte> blob);
  // Rank-loss repair steps (called once per casualty by note_peer_failure):
  // purge hints at the casualty, drop directory entries for objects that
  // died with it, re-register resident remotely-homed gids at the
  // successor; then gossip px.peer_down to the remaining survivors.
  void rehome_gids_after_loss(gas::locality_id dead);
  void broadcast_peer_down(gas::locality_id dead);

  runtime_params params_;
  gas::agas agas_;
  gas::name_service names_;
  introspect::registry introspect_;
  // Declaration order is load-bearing for destruction: the transport must
  // die first (its progress thread's handlers and idle callback reference
  // the localities, ports, monitors, and rebalancer), so fabric_/dist_ are
  // declared last of this group; the bootstrap (plain sockets, no
  // callbacks) may outlive the transport.
  std::vector<std::unique_ptr<locality>> localities_;  // sparse when distributed
  std::vector<std::unique_ptr<parcel_port>> ports_;  // one per local locality
  std::vector<std::unique_ptr<introspect::monitor>> monitors_;
  std::unique_ptr<rebalancer> balancer_;
  std::unique_ptr<net::bootstrap> bootstrap_;  // distributed control plane
  // PX_FAULT injector, armed on dist_'s send seam; declared before the
  // transport so the progress thread never outlives it.
  std::unique_ptr<util::fault_injector> fault_;
  std::unique_ptr<net::fabric> fabric_;        // sim backend
  std::unique_ptr<net::distributed_transport> dist_;  // tcp or shm backend
  net::transport* transport_ = nullptr;        // whichever backend is live
  // After the transports: the collector's sampler thread reads counter
  // callbacks that reference them, so it must be destroyed (joined) first.
  std::unique_ptr<introspect::stats_collector> stats_;
  std::vector<gas::gid> locality_gids_;
  std::unique_ptr<echo_manager> echo_;
  std::unique_ptr<percolation_manager> percolation_;

  // Per-process credit ledgers for this rank (process_sites()).
  process_site_table psites_;

  // Serializes object migrations: a rebalancer round racing a user
  // migrate_object on the same gid could otherwise implant a stale
  // pointer over the other's move.  Migration is control-plane rare, so
  // one lock for all of them is fine.
  util::spinlock migrate_lock_;

  // Cross-process migration bookkeeping: which gids carry a registered
  // migratable type (gid -> type name), and which are mid-handoff (the
  // blocking migrate_gid protocol cannot hold a spinlock across its
  // suspension points, so in-flight gids are claimed in a set instead).
  mutable util::spinlock mig_types_lock_;
  std::unordered_map<gas::gid, std::string> mig_types_;
  util::spinlock migrating_lock_;
  std::unordered_set<gas::gid> migrating_;

  // Flight-recorder bookkeeping: the boot-time counter snapshot the dump
  // trailer deltas against, and this rank's steady-clock offset from rank
  // 0 (sampled over the bootstrap control plane; 0 when sim or rank 0).
  // The offset is shared by the trace and stats planes — both normalize
  // local timestamps onto rank 0's clock.
  std::vector<introspect::counter_sample> trace_boot_counters_;
  std::int64_t clock_offset_ns_ = 0;

  // Resilience bookkeeping: which peer ranks this process has confirmed
  // dead (the idempotence guard for note_peer_failure — one repair sweep
  // and one gossip round per casualty, no matter how many detectors fire),
  // and the unique gids reported lost with them.
  std::atomic<std::uint64_t> peer_dead_mask_{0};
  // Set once the inline repair sweep (directory re-homing, gossip) for a
  // casualty has finished; the transport's close fold is asynchronous and
  // tracked separately by dist_->folded_peer_mask().  wait_quiescent
  // gates local stability on *both* masks matching the bootstrap's dead
  // mask, so a quiescence verdict cannot land while a survivor's
  // directory still routes through the dead rank or its conservation
  // books are still settling.
  std::atomic<std::uint64_t> peer_swept_mask_{0};
  mutable util::spinlock lost_gids_lock_;
  std::unordered_set<gas::gid> lost_gids_;
  std::atomic<std::uint64_t> gids_lost_{0};

  bool eager_flush_ = true;  // resolved from params/env in the ctor
  bool migration_enabled_ = false;  // cross-process protocol (tcp only)
  bool distributed_ = false;
  gas::locality_id rank_ = 0;  // this process's locality (0 when sim)
  bool started_ = false;
};

template <typename T>
void runtime::migrate_object(gas::gid id, gas::locality_id to) {
  // Synchronous control-plane migration.  Same implant-rebind-erase order
  // as rebalance_migrate: a parcel racing the move always finds the object
  // present wherever its resolution lands it.  Data-plane traffic routed
  // on stale caches is healed by delivery-path forwarding; concurrent
  // *migrations* of the same object are serialized by migrate_lock_.
  std::lock_guard migration(migrate_lock_);
  const auto resolved = agas_.resolve_authoritative(to, id);
  PX_ASSERT_MSG(resolved.has_value(), "migrate of unbound gid");
  const gas::locality_id owner = *resolved;
  if (owner == to) return;
  auto obj = std::static_pointer_cast<T>(at(owner).get_object(id));
  PX_ASSERT_MSG(obj != nullptr, "migrate: object not at resolved owner");
  at(to).put_object(id, std::move(obj));
  agas_.migrate(id, to);
  at(owner).erase_object(id);
}

}  // namespace px::core
