// The ParalleX runtime: localities + AGAS + parcel transport + lifecycle.
//
// One runtime models a whole machine: K localities (each a scheduler
// domain) connected by a parcel transport.  The runtime owns the global
// services — AGAS directory, symbolic name service, echo manager,
// percolation staging — and the system-wide quiescence protocol used for
// clean shutdown.
//
// Two deployment shapes share this class (PX_NET_BACKEND / net_params):
//
//   * single-process (default): every locality lives here, connected by
//     the latency-modelled net::fabric — the shape every pre-PR-4 test,
//     bench, and example runs in, unchanged;
//   * distributed ("tcp"): the machine spans N processes ("ranks"), one
//     locality per process, connected by net::tcp_transport over real
//     sockets with a net::bootstrap control plane.  localities_ is sparse
//     (only this rank's slot is populated; at() on a remote id asserts),
//     ownership resolution for remotely-homed gids is home-based (objects
//     do not migrate across processes, so the rebalancer is forced off and
//     remote_spawn/migrate_object/echo are local-only), and wait_quiescent
//     extends the local fixed point with a counting termination-detection
//     collective over the bootstrap.  Boot-time gid allocation (locality
//     gids, counter gids) replays identically in every process, so those
//     names are machine-wide valid without any directory traffic.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "core/locality.hpp"
#include "core/parcel_port.hpp"
#include "core/rebalancer.hpp"
#include "gas/agas.hpp"
#include "gas/name_service.hpp"
#include "introspect/monitor.hpp"
#include "introspect/registry.hpp"
#include "net/fabric.hpp"
#include "net/transport.hpp"
#include "parcel/action_registry.hpp"
#include "parcel/parcel.hpp"
#include "util/config.hpp"

namespace px::net {
class tcp_transport;
class bootstrap;
}  // namespace px::net

namespace px::core {

class echo_manager;
class percolation_manager;

struct runtime_params {
  std::size_t localities = 4;
  unsigned workers_per_locality = 1;
  std::size_t stack_bytes = 64 * 1024;
  unsigned staging_slots_per_locality = 16;  // percolation staging depth
  // Transport backend + distributed identity (PX_NET_*); with the "tcp"
  // backend `localities` is overwritten with the rank count and this
  // process hosts exactly the locality numbered by its rank.
  net::net_params net{};
  // Fabric physics (sim backend only); `endpoints` is overwritten with
  // `localities`.
  net::fabric_params fabric{};
  std::uint64_t seed = 7;
  // Outbound parcel coalescing thresholds.  0 means "resolve from the
  // PX_PARCEL_FLUSH_BYTES / PX_PARCEL_FLUSH_COUNT environment, falling
  // back to the built-in defaults"; an explicit nonzero value wins over
  // the environment (flush_count = 1 disables coalescing).
  std::size_t parcel_flush_bytes = 0;
  std::uint32_t parcel_flush_count = 0;
  // Stale-cache forwarding hop bound: a parcel forwarded more than this
  // many times is dropped with a diagnostic (locality_stats counts drops).
  // Clamped to 254 — the u8 forwards counter must be able to exceed it.
  std::uint8_t max_forwards = 16;
  // First-parcel eager flush: when an isolated parcel opens a quiet port
  // channel and the sending scheduler has no other ready work, ship the
  // frame immediately instead of waiting for the flush-on-idle pass —
  // single-request latency without giving up batched throughput (bursts
  // are detected and left to coalesce).  -1 resolves from
  // PX_PARCEL_EAGER_FLUSH, defaulting to on.
  int parcel_eager_flush = -1;
  // Introspection-driven adaptive rebalancing (core/rebalancer.hpp).
  // `rebalance` is tri-state: -1 resolves from PX_REBALANCE (default
  // off).  Zero-valued tuning fields resolve from PX_REBALANCE_THRESHOLD /
  // PX_REBALANCE_MIN_DEPTH / PX_REBALANCE_MAX_MIGRATIONS /
  // PX_REBALANCE_INTERVAL_US, falling back to the rebalancer_params
  // built-ins.
  int rebalance = -1;
  double rebalance_threshold = 0.0;
  std::uint32_t rebalance_min_depth = 0;
  std::uint32_t rebalance_max_migrations = 0;
  std::uint64_t rebalance_interval_us = 0;
};

class runtime {
 public:
  explicit runtime(runtime_params params = {});
  ~runtime();

  runtime(const runtime&) = delete;
  runtime& operator=(const runtime&) = delete;

  void start();
  void stop();
  bool started() const noexcept { return started_; }

  std::size_t num_localities() const noexcept { return localities_.size(); }
  // In distributed mode only this process's rank is addressable; asking
  // for a remote locality asserts (reach it with parcels instead).
  locality& at(gas::locality_id id);
  const runtime_params& params() const noexcept { return params_; }

  // Distributed identity: rank() == 0 and distributed() == false in the
  // single-process shape, so callers can be written once for both.
  bool distributed() const noexcept { return distributed_; }
  gas::locality_id rank() const noexcept { return rank_; }
  // The locality this process hosts (rank in distributed mode, 0 here).
  locality& here() { return at(rank_); }

  gas::agas& gas() noexcept { return agas_; }
  gas::name_service& names() noexcept { return names_; }
  // The wire, backend-agnostic; and the simulated fabric specifically
  // (latency model, histogram — asserts under the tcp backend).
  net::transport& transport() noexcept { return *transport_; }
  net::fabric& fabric();
  parcel_port& port(gas::locality_id id) { return *ports_.at(id); }
  echo_manager& echo_mgr() noexcept { return *echo_; }
  percolation_manager& percolation_mgr() noexcept { return *percolation_; }

  // Introspection: the counter registry (every counter is gid-addressable
  // and path-named; see introspect/registry.hpp), the per-locality load
  // monitors, and the adaptive rebalancer acting on them.
  introspect::registry& introspection() noexcept { return introspect_; }
  introspect::monitor& monitor_at(gas::locality_id id) {
    return *monitors_.at(id);
  }
  rebalancer& balancer() noexcept { return *balancer_; }

  // Untyped control-plane migration used by the rebalancer: moves the
  // object's table entry (implant at destination, then AGAS rebind, then
  // erase at source — the object is continuously resolvable and present at
  // whichever locality a racing parcel lands on).  Returns false when the
  // object vanished or no longer lives at `from` (a stale heat entry for
  // an object that already migrated away must not be yanked off an
  // innocent locality).
  bool rebalance_migrate(gas::gid id, gas::locality_id from,
                         gas::locality_id to);

  // The typed hardware gid naming locality `id` (paper: hardware resources
  // are first-class named entities).
  gas::gid locality_gid(gas::locality_id id) const;

  // Routes a parcel from locality `from` toward its destination's current
  // owner.  Local destinations dispatch without touching the fabric;
  // remote destinations coalesce through `from`'s parcel port.  Parcels
  // past the max_forwards hop bound are dropped with a diagnostic.
  void route(gas::locality_id from, parcel::parcel p);

  // Owner locality for a destination gid as seen from `from` (LCO/hardware
  // gids never migrate: owner == home).
  gas::locality_id owner_of(gas::locality_id from, gas::gid id);

  // Blocks until every scheduler is quiescent and the transport is drained
  // — i.e. no thread, parcel, or pending wakeup exists anywhere.
  // Internally loops until a pass over all counters is bracketed by two
  // identical activity snapshots (see activity_snapshot), which makes the
  // check race-free against threads that hand off work and terminate
  // mid-pass.  Distributed mode extends the local fixed point with a
  // counting termination-detection collective (bootstrap::quiesce_round):
  // ALL ranks must call wait_quiescent (directly or via run()/stop()) the
  // same number of times — it is a collective operation.
  void wait_quiescent();

  // Ships a closure to `where` as a parcel (paying fabric latency) and runs
  // it there as a ParalleX thread.  The closure body itself is passed by
  // reference through the shared address space — an in-process shortcut; the
  // *control transfer* is what is modeled.  Prefer typed actions (apply/
  // async) for anything measured; this exists for control-plane work and
  // the LITL-X layer.
  void remote_spawn(locality& from, gas::locality_id where,
                    std::function<void()> fn);

  // Internal: executes a closure stashed by remote_spawn (built-in action).
  void run_stashed(std::uint64_t key);

  // Convenience driver: start if needed, run `root`, wait for global
  // quiescence.  Single-process: `root` runs once, on locality 0.
  // Distributed: every rank runs its own `root` on its own locality (SPMD
  // — branch on rank() inside), and the quiescence wait is the collective.
  void run(std::function<void()> root);

  // ------------------------------------------------- global object API

  // Constructs a T at locality `where`, binds a fresh data gid.
  template <typename T, typename... Args>
  gas::gid new_object(gas::locality_id where, Args&&... args) {
    auto obj = std::make_shared<T>(std::forward<Args>(args)...);
    const gas::gid id = agas_.allocate(gas::gid_kind::data, where);
    agas_.bind(id, where);
    at(where).put_object(id, std::move(obj));
    return id;
  }

  // Local pointer to an object owned by locality `where`; nullptr when the
  // object is not (or no longer) there.
  template <typename T>
  std::shared_ptr<T> get_local(gas::locality_id where, gas::gid id) {
    return std::static_pointer_cast<T>(at(where).get_object(id));
  }

  // Moves a serializable object to `to`, updating AGAS.  Parcels routed on
  // stale caches are forwarded by the delivery path.
  template <typename T>
  void migrate_object(gas::gid id, gas::locality_id to);

 private:
  friend class locality;

  void deliver_from_fabric(net::message& m);
  void register_counters();
  std::uint64_t activity_snapshot() const;
  // One pass of the local quiescence fixed point; true when stable.
  bool local_quiescent_pass();
  // Wire-relevant runtime knobs as a blob rank 0 broadcasts at bootstrap
  // so every process runs identical parcel-pipeline behavior.
  std::vector<std::byte> encode_wire_params() const;
  void apply_wire_params(std::span<const std::byte> blob);

  runtime_params params_;
  gas::agas agas_;
  gas::name_service names_;
  introspect::registry introspect_;
  // Declaration order is load-bearing for destruction: the transport must
  // die first (its progress thread's handlers and idle callback reference
  // the localities, ports, monitors, and rebalancer), so fabric_/tcp_ are
  // declared last of this group; the bootstrap (plain sockets, no
  // callbacks) may outlive the transport.
  std::vector<std::unique_ptr<locality>> localities_;  // sparse when distributed
  std::vector<std::unique_ptr<parcel_port>> ports_;  // one per local locality
  std::vector<std::unique_ptr<introspect::monitor>> monitors_;
  std::unique_ptr<rebalancer> balancer_;
  std::unique_ptr<net::bootstrap> bootstrap_;  // distributed control plane
  std::unique_ptr<net::fabric> fabric_;        // sim backend
  std::unique_ptr<net::tcp_transport> tcp_;    // tcp backend
  net::transport* transport_ = nullptr;        // whichever backend is live
  std::vector<gas::gid> locality_gids_;
  std::unique_ptr<echo_manager> echo_;
  std::unique_ptr<percolation_manager> percolation_;

  // Closure stash for remote_spawn parcels.
  util::spinlock closures_lock_;
  std::unordered_map<std::uint64_t, std::function<void()>> closures_;
  std::atomic<std::uint64_t> next_closure_{1};

  // Serializes object migrations: a rebalancer round racing a user
  // migrate_object on the same gid could otherwise implant a stale
  // pointer over the other's move.  Migration is control-plane rare, so
  // one lock for all of them is fine.
  util::spinlock migrate_lock_;

  bool eager_flush_ = true;  // resolved from params/env in the ctor
  bool distributed_ = false;
  gas::locality_id rank_ = 0;  // this process's locality (0 when sim)
  bool started_ = false;
};

template <typename T>
void runtime::migrate_object(gas::gid id, gas::locality_id to) {
  // Synchronous control-plane migration.  Same implant-rebind-erase order
  // as rebalance_migrate: a parcel racing the move always finds the object
  // present wherever its resolution lands it.  Data-plane traffic routed
  // on stale caches is healed by delivery-path forwarding; concurrent
  // *migrations* of the same object are serialized by migrate_lock_.
  std::lock_guard migration(migrate_lock_);
  const auto resolved = agas_.resolve_authoritative(to, id);
  PX_ASSERT_MSG(resolved.has_value(), "migrate of unbound gid");
  const gas::locality_id owner = *resolved;
  if (owner == to) return;
  auto obj = std::static_pointer_cast<T>(at(owner).get_object(id));
  PX_ASSERT_MSG(obj != nullptr, "migrate: object not at resolved owner");
  at(to).put_object(id, std::move(obj));
  agas_.migrate(id, to);
  at(owner).erase_object(id);
}

}  // namespace px::core
