#include "core/runtime.hpp"

#include <mutex>
#include <string>
#include <tuple>

#include "core/action.hpp"
#include "core/echo.hpp"
#include "core/percolation.hpp"
#include "introspect/query.hpp"
#include "lco/lco.hpp"
#include "net/bootstrap.hpp"
#include "net/shm_transport.hpp"
#include "net/tcp_transport.hpp"
#include "patterns/counters.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/serialize.hpp"

namespace px::core {

// Built-in continuation target: fire a single-shot LCO sink.  Runs on the
// fabric progress thread by design — firing a future is enqueue-only work
// and skipping the thread spawn keeps continuation latency minimal.
// Registered as a raw function pointer (non-allocating dispatch); the sink
// closure may outlive the wire frame, so the parcel is materialized here.
parcel::action_id sink_action_id() {
  static const parcel::action_id id =
      parcel::action_registry::global().register_action(
          "px.sink", +[](void* ctx, const parcel::parcel_view& pv) {
            auto* loc = static_cast<locality*>(ctx);
            const bool fired =
                loc->fire_sink(pv.destination(), pv.to_parcel());
            PX_ASSERT_MSG(fired, "continuation parcel for unknown sink");
          });
  return id;
}

namespace {

// Resolves the transport backend + distributed identity before any member
// whose size depends on the locality count constructs (AGAS shards are per
// locality, and under the tcp backend the locality count *is* the rank
// count from the launcher's environment).
runtime_params resolve_net(runtime_params p) {
  util::config cfg;
  cfg.load_environment();
  if (p.net.backend.empty()) {
    p.net.backend = cfg.get_string("net.backend", "sim");
  }
  if (p.net.rank < 0) p.net.rank = cfg.get_int("net.rank", 0);
  if (p.net.ranks <= 0) p.net.ranks = cfg.get_int("net.ranks", 0);
  if (p.net.listen.empty()) {
    p.net.listen = cfg.get_string("net.listen", "127.0.0.1:0");
  }
  if (p.net.root.empty()) {
    p.net.root = cfg.get_string("net.root", "127.0.0.1:7733");
  }
  if (p.net.migration < 0) {
    p.net.migration = cfg.get_bool("migration", true) ? 1 : 0;
  }
  PX_ASSERT_MSG(p.net.backend == "sim" || p.net.backend == "tcp" ||
                    p.net.backend == "shm",
                "PX_NET_BACKEND must be \"sim\", \"tcp\", or \"shm\"");
  if (p.net.backend == "tcp" || p.net.backend == "shm") {
    PX_ASSERT_MSG(p.net.ranks >= 1,
                  "distributed backend: PX_NET_RANKS (or net.ranks) required");
    PX_ASSERT_MSG(p.net.rank >= 0 && p.net.rank < p.net.ranks,
                  "PX_NET_RANK out of range");
    p.localities = static_cast<std::size_t>(p.net.ranks);
  }
  return p;
}

}  // namespace

runtime::runtime(runtime_params params)
    : params_(resolve_net(std::move(params))),
      agas_(params_.localities),
      introspect_(agas_, names_) {
  PX_ASSERT(params_.localities >= 1);
  distributed_ =
      params_.net.backend == "tcp" || params_.net.backend == "shm";
  rank_ = distributed_ ? static_cast<gas::locality_id>(params_.net.rank) : 0;
  params_.fabric.endpoints = params_.localities;
  // parcel::forwards is u8: a bound of 255 could never trip (the counter
  // would wrap to 0 first), silently restoring unbounded forwarding.
  params_.max_forwards = std::min<std::uint8_t>(params_.max_forwards, 254);

  // Coalescing thresholds: explicit params win, then PX_PARCEL_FLUSH_*
  // environment variables, then built-in defaults.  The eager-flush and
  // rebalancer knobs resolve the same way (PX_PARCEL_EAGER_FLUSH,
  // PX_REBALANCE, PX_REBALANCE_*).
  parcel_port_params pp;
  rebalancer_params rp;
  {
    util::config cfg;
    cfg.load_environment();
    if (params_.parcel_flush_bytes == 0) {
      params_.parcel_flush_bytes = static_cast<std::size_t>(cfg.get_int(
          "parcel.flush_bytes", static_cast<std::int64_t>(pp.flush_bytes)));
    }
    if (params_.parcel_flush_count == 0) {
      params_.parcel_flush_count = static_cast<std::uint32_t>(cfg.get_int(
          "parcel.flush_count", static_cast<std::int64_t>(pp.flush_count)));
    }
    eager_flush_ = params_.parcel_eager_flush < 0
                       ? cfg.get_bool("parcel.eager_flush", true)
                       : params_.parcel_eager_flush != 0;
    rp.enabled = params_.rebalance < 0 ? cfg.get_bool("rebalance", false)
                                       : params_.rebalance != 0;
    rp.threshold = params_.rebalance_threshold > 0.0
                       ? params_.rebalance_threshold
                       : cfg.get_double("rebalance.threshold", rp.threshold);
    rp.min_depth =
        params_.rebalance_min_depth > 0
            ? params_.rebalance_min_depth
            : static_cast<std::uint32_t>(cfg.get_int(
                  "rebalance.min_depth",
                  static_cast<std::int64_t>(rp.min_depth)));
    rp.max_migrations =
        params_.rebalance_max_migrations > 0
            ? params_.rebalance_max_migrations
            : static_cast<std::uint32_t>(cfg.get_int(
                  "rebalance.max_migrations",
                  static_cast<std::int64_t>(rp.max_migrations)));
    rp.interval_us =
        params_.rebalance_interval_us > 0
            ? params_.rebalance_interval_us
            : static_cast<std::uint64_t>(cfg.get_int(
                  "rebalance.interval_us",
                  static_cast<std::int64_t>(rp.interval_us)));
    if (params_.trace < 0) {
      params_.trace = cfg.get_bool("trace", false) ? 1 : 0;
    } else {
      params_.trace = params_.trace != 0 ? 1 : 0;
    }
    if (params_.trace_ring_bytes == 0) {
      params_.trace_ring_bytes = static_cast<std::size_t>(
          cfg.get_int("trace.ring_bytes", 1 << 20));
    }
    if (params_.trace_dir.empty()) {
      params_.trace_dir = cfg.get_string("trace.dir", ".");
    }
    if (params_.stats < 0) {
      params_.stats = cfg.get_bool("stats", false) ? 1 : 0;
    } else {
      params_.stats = params_.stats != 0 ? 1 : 0;
    }
    if (params_.stats_interval_us == 0) {
      params_.stats_interval_us =
          static_cast<std::uint64_t>(cfg.get_int("stats.interval_us", 10'000));
    }
    if (params_.stats_dir.empty()) {
      params_.stats_dir = cfg.get_string("stats.dir", ".");
    }
  }
  // Normalize the resolved toggles into params_ so rank 0's wire blob
  // carries them (apply_wire_params overwrites them on other ranks — the
  // whole machine must agree on routing/forwarding/rebalance behavior).
  params_.rebalance = rp.enabled ? 1 : 0;
  migration_enabled_ = distributed_ && params_.net.migration != 0;

  threads::scheduler_params sp;
  sp.workers = params_.workers_per_locality;
  sp.stack_bytes = params_.stack_bytes;

  // In distributed mode this process hosts exactly one locality (its
  // rank); the other slots stay null so a stray in-process access to a
  // remote locality asserts instead of silently reading the wrong machine.
  for (std::size_t i = 0; i < params_.localities; ++i) {
    if (distributed_ && i != rank_) {
      localities_.push_back(nullptr);
      continue;
    }
    sp.seed = params_.seed + i * 0x9e3779b9u;
    localities_.push_back(std::make_unique<locality>(
        *this, static_cast<gas::locality_id>(i), sp));
  }

  // Bind the typed hardware name of each locality and expose it in the
  // symbolic namespace ("hw/locality/<i>").  Every process replays the
  // allocation for *all* localities: boot-time gid sequences must be
  // identical machine-wide so `locality_gid(r)` addresses rank r's
  // locality from any process.
  for (std::size_t i = 0; i < params_.localities; ++i) {
    const auto lid = static_cast<gas::locality_id>(i);
    const gas::gid g = agas_.allocate(gas::gid_kind::hardware, lid);
    agas_.bind(g, lid);
    locality_gids_.push_back(g);
    if (localities_[i] != nullptr) localities_[i]->here_ = g;
    names_.register_name("hw/locality/" + std::to_string(i), g);
  }

  // Transport backend.  The distributed path is three-phase: claim the
  // data plane (ctor — tcp binds its listener, shm creates its segments),
  // trade endpoints + wire params through the bootstrap (the endpoint
  // string is opaque to the control plane: "host:port" for tcp, a segment
  // token for shm), and — only after every local consumer below is wired
  // up — establish the mesh (connect_peers starts the progress thread, so
  // the handler must already be in place; a fast peer may send the moment
  // its ctor ends).
  std::vector<std::string> peer_table;
  if (distributed_) {
    if (params_.net.backend == "tcp") {
      net::tcp_params tp;
      tp.rank = rank_;
      tp.nranks = static_cast<std::uint32_t>(params_.localities);
      tp.listen = params_.net.listen;
      dist_ = std::make_unique<net::tcp_transport>(tp);
    } else {
      util::config shm_cfg;
      shm_cfg.load_environment();
      net::shm_params sp;
      sp.rank = rank_;
      sp.nranks = static_cast<std::uint32_t>(params_.localities);
      sp.ring_bytes = static_cast<std::size_t>(shm_cfg.get_int(
          "shm.ring_bytes", static_cast<std::int64_t>(sp.ring_bytes)));
      sp.spin_us = shm_cfg.get_int("shm.spin_us", sp.spin_us);
      dist_ = std::make_unique<net::shm_transport>(sp);
    }
    // Resilience knobs + fault plan resolve from this rank's own
    // environment: the heartbeat/lease must be live *before* the wire-params
    // exchange (a rank that dies mid-boot must not hang the others), so
    // they cannot ride rank 0's blob; launchers set them uniformly.
    util::config rcfg;
    rcfg.load_environment();
    net::bootstrap_params bp;
    bp.rank = rank_;
    bp.nranks = static_cast<std::uint32_t>(params_.localities);
    bp.root = params_.net.root;
    bp.heartbeat_interval_us = static_cast<std::uint64_t>(rcfg.get_int(
        "heartbeat.interval_us",
        static_cast<std::int64_t>(bp.heartbeat_interval_us)));
    bp.lease_ms = static_cast<std::uint64_t>(
        rcfg.get_int("lease.ms", static_cast<std::int64_t>(bp.lease_ms)));
    if (rcfg.contains("fault")) {
      const std::string spec = rcfg.get_string("fault", "");
      const auto plan = util::fault_plan::parse(spec);
      PX_ASSERT_MSG(plan.has_value(),
                    "PX_FAULT does not parse — a fault plan that cannot arm "
                    "must refuse to run, not silently do nothing");
      fault_ = std::make_unique<util::fault_injector>(
          plan->for_rank(static_cast<std::uint64_t>(rank_)),
          static_cast<std::uint64_t>(rank_));
      if (!fault_->empty()) dist_->arm_faults(fault_.get());
    }
    // Locally-detected link deaths (tcp EOF, shm pid probe) feed the same
    // funnel as the control plane's lease expiry.  Installed before
    // connect_peers per the transport contract; until survive mode is
    // armed below, the funnel's bootstrap leg makes any death fatal.
    dist_->set_peer_death_handler([this](std::size_t r) {
      note_peer_failure(static_cast<gas::locality_id>(r));
    });
    bootstrap_ = std::make_unique<net::bootstrap>(bp);
    const std::vector<std::byte> blob =
        rank_ == 0 ? encode_wire_params() : std::vector<std::byte>{};
    auto ex = bootstrap_->exchange(dist_->listen_address(), blob);
    // Rank 0's wire-relevant knobs win everywhere: ranks coalescing with
    // different thresholds or forward bounds would be a debugging trap.
    if (rank_ != 0) apply_wire_params(ex.params_blob);
    peer_table = std::move(ex.endpoints);
    transport_ = dist_.get();
  } else {
    fabric_ = std::make_unique<net::fabric>(params_.fabric);
    transport_ = fabric_.get();
  }

  // Re-read the toggles the exchange may have overwritten (rank 0's values
  // win machine-wide).  Cross-process rebalancing *is* cross-process
  // migration, so it cannot run with the protocol off.
  rp.enabled = params_.rebalance != 0;
  if (distributed_) {
    migration_enabled_ = params_.net.migration != 0;
    if (rp.enabled && !migration_enabled_) {
      PX_LOG_WARN("rebalancer disabled: PX_MIGRATION=0 pins objects to "
                  "their home ranks");
      rp.enabled = false;
    }
  }

  pp.flush_bytes = params_.parcel_flush_bytes;
  pp.flush_count = std::max<std::uint32_t>(1, params_.parcel_flush_count);

  for (std::size_t i = 0; i < params_.localities; ++i) {
    if (localities_[i] == nullptr) {
      ports_.push_back(nullptr);
      monitors_.push_back(nullptr);
      continue;
    }
    const auto ep = static_cast<net::endpoint_id>(i);
    transport_->set_handler(ep, [this](net::message& m) {
      deliver_from_fabric(m);
    });
    ports_.push_back(std::make_unique<parcel_port>(*transport_, ep, pp));
    monitors_.push_back(
        std::make_unique<introspect::monitor>(localities_[i]->sched_));
  }
  balancer_ = std::make_unique<rebalancer>(*this, rp);
  if (rp.enabled) {
    for (auto& loc : localities_) {
      if (loc != nullptr) loc->enable_heat_tracking();
    }
  }

  for (std::size_t i = 0; i < params_.localities; ++i) {
    if (localities_[i] == nullptr) continue;
    // Flush-on-idle: a worker with nothing to run ships this locality's
    // half-full frames (communication fills the compute troughs), samples
    // its own load (decaying the monitor signal toward idle), and gives
    // the rebalancer a rate-limited chance to pull work its way.
    localities_[i]->sched_.set_idle_hook(
        [port = ports_[i].get(), mon = monitors_[i].get(),
         bal = balancer_.get()] {
          port->flush_all();
          mon->tick();
          bal->poll();
        });
  }
  // Backstop: if every worker of a locality is pinned busy (or asleep with
  // the inject path quiet), the transport progress thread flushes,
  // samples, and rebalances for them — the overloaded locality never runs
  // its own idle hook, so this is the path that observes it.
  transport_->set_idle_callback([this] {
    for (auto& port : ports_) {
      if (port != nullptr) port->flush_all();
    }
    for (auto& mon : monitors_) {
      if (mon != nullptr) mon->tick();
    }
    balancer_->poll();
  });

  // Telemetry collector: constructed before register_counters so the
  // /stats/* rows can sample it; armed last (below), after clock sync, so
  // its t=0 tick sees the final counter schema.  params_.stats is already
  // machine-agreed here — the wire-params exchange above overwrote it on
  // non-zero ranks.
  {
    introspect::stats_params stp;
    stp.enabled = params_.stats != 0;
    stp.interval_us = params_.stats_interval_us;
    stp.dir = params_.stats_dir;
    stp.rank = static_cast<std::uint32_t>(rank_);
    stats_ = std::make_unique<introspect::stats_collector>(introspect_, stp);
  }

  register_counters();

  echo_ = std::make_unique<echo_manager>(*this);
  percolation_ = std::make_unique<percolation_manager>(
      *this, params_.staging_slots_per_locality);

  if (distributed_) {
    dist_->connect_peers(peer_table);
    // Barrier before traffic: no rank leaves its ctor (and starts sending
    // parcels) until every rank's mesh and handlers are up.  The barrier
    // also cross-checks the counter-schema digest — boot-time gid
    // allocation must have replayed identically in every process.
    bootstrap_->barrier(introspect_.schema_digest());
    // Survive mode arms only now, after every rank proved it booted: a
    // death *during* boot stays fatal machine-wide (the partial machine
    // exits with a diagnostic inside the lease), while a death after this
    // point is survivable — the handler funnels into note_peer_failure.
    bootstrap_->set_peer_down_handler([this](std::uint32_t r) {
      note_peer_failure(static_cast<gas::locality_id>(r));
    });
    // Clock sync rides the control plane after the barrier so the RTT
    // samples are not polluted by the connect storm.  Collective, so it
    // runs only under the machine-agreed toggles (rank 0's wire blob) —
    // the trace and stats planes share one offset.
    if (params_.trace != 0 || params_.stats != 0) {
      clock_offset_ns_ = bootstrap_->clock_sync();
    }
  }
  // Arm the flight recorder last: every consumer above is wired and no
  // parcel can have flowed yet, so the rings start at a clean epoch.
  trace::recorder::global().configure(
      params_.trace != 0, params_.trace_ring_bytes, params_.trace_dir,
      static_cast<std::uint32_t>(rank_));
  if (params_.trace != 0) trace_boot_counters_ = introspect_.snapshot_all();
  // Same epoch discipline for the stats sampler: armed only now, so its
  // t=0 tick (and every parcel send-timestamp stamp) happens after the
  // offset is known.
  if (params_.stats != 0) {
    stats_->set_clock_offset(clock_offset_ns_);
    stats_->arm();
  }
}

// Every load-bearing runtime quantity becomes a first-class, gid-named,
// path-addressable counter (paper: hardware resources are typed first-class
// entities).  Schema: runtime/loc<i>/<subsystem>/<metric> for per-locality
// counters, runtime/<service>/<metric> for machine-global ones (homed at
// locality 0, which hosts the global services).
//
// Distributed mode replays the *identical* registration sequence in every
// process — locality slots this process doesn't host (and the globals on
// non-zero ranks) register sampler-less via add_remote — so counter gids
// allocate in the same order machine-wide and any rank can query any
// other's counters by path or gid (introspect::query_counter pays a parcel
// round trip to the home rank, whose registry holds the live callback).
// Keep both arms of the branch below in lock-step when adding counters.
void runtime::register_counters() {
  // Per-locality schema, in registration order (remote replay).
  static constexpr const char* kLocalitySchema[] = {
      "/sched/ready_depth", "/sched/live_threads", "/sched/spawned",
      "/sched/steals", "/sched/suspends", "/sched/sleeps",
      "/parcels/sent", "/parcels/delivered", "/parcels/forwarded",
      "/parcels/dropped", "/port/pending", "/port/enqueued",
      "/port/frames_sent", "/port/eager_flushes", "/fabric/frames_sent",
      "/fabric/parcels_sent", "/fabric/bytes_sent",
      "/monitor/ready_ewma_milli", "/monitor/samples", "/net/bytes_tx",
      "/net/bytes_rx", "/net/msgs_tx", "/net/msgs_rx", "/trace/events",
      "/trace/drops", "/parcels/hist_dispatch_ns", "/sched/hist_run_ns",
      "/sched/hist_wait_ns", "/sched/hist_ready_depth", "/stats/ticks",
      "/stats/dropped_points"};

  for (std::size_t i = 0; i < localities_.size(); ++i) {
    const auto lid = static_cast<gas::locality_id>(i);
    locality* loc = localities_[i].get();
    parcel_port* port = ports_[i].get();
    introspect::monitor* mon = monitors_[i].get();
    const std::string p = "runtime/loc" + std::to_string(i);
    auto& reg = introspect_;

    if (loc == nullptr) {  // remote rank: schema without samplers
      for (const char* path : kLocalitySchema) reg.add_remote(lid, p + path);
      // Backend-specific rows replay by *name* (sampling a remote
      // endpoint's books locally would assert); every rank runs the same
      // backend, so the positional gid sequence still matches.
      const auto own_ep = static_cast<net::endpoint_id>(rank_);
      for (const auto& c : transport_->extra_link_counters(own_ep)) {
        reg.add_remote(lid, p + "/net/" + c.name);
      }
      continue;
    }

    threads::scheduler& sched = loc->sched();
    reg.add(lid, p + "/sched/ready_depth",
            [&sched] { return sched.ready_estimate(); });
    reg.add(lid, p + "/sched/live_threads",
            [&sched] { return sched.live_threads(); });
    reg.add(lid, p + "/sched/spawned",
            [&sched] { return sched.spawn_count(); });
    reg.add(lid, p + "/sched/steals",
            [&sched] { return sched.stats().steals; });
    reg.add(lid, p + "/sched/suspends",
            [&sched] { return sched.stats().suspends; });
    reg.add(lid, p + "/sched/sleeps",
            [&sched] { return sched.stats().sleeps; });

    reg.add(lid, p + "/parcels/sent",
            [loc] { return loc->stats().parcels_sent; });
    reg.add(lid, p + "/parcels/delivered",
            [loc] { return loc->stats().parcels_delivered; });
    reg.add(lid, p + "/parcels/forwarded",
            [loc] { return loc->stats().parcels_forwarded; });
    reg.add(lid, p + "/parcels/dropped",
            [loc] { return loc->stats().parcels_dropped; });

    reg.add(lid, p + "/port/pending", [port] { return port->pending(); });
    reg.add(lid, p + "/port/enqueued",
            [port] { return port->enqueued_total(); });
    reg.add(lid, p + "/port/frames_sent",
            [port] { return port->stats().frames_sent; });
    reg.add(lid, p + "/port/eager_flushes",
            [port] { return port->stats().eager_flushes; });

    net::transport* t = transport_;
    const auto ep = static_cast<net::endpoint_id>(i);
    reg.add(lid, p + "/fabric/frames_sent",
            [t, ep] { return t->stats(ep).messages_sent; });
    reg.add(lid, p + "/fabric/parcels_sent",
            [t, ep] { return t->stats(ep).parcels_sent; });
    reg.add(lid, p + "/fabric/bytes_sent",
            [t, ep] { return t->stats(ep).bytes_sent; });

    reg.add(lid, p + "/monitor/ready_ewma_milli",
            [mon] { return mon->ready_ewma_milli(); });
    reg.add(lid, p + "/monitor/samples",
            [mon] { return mon->samples_taken(); });

    // Per-locality wire totals (PR 4): what this endpoint's transport put
    // on and took off the wire — the rebalancer's (and any dashboard's)
    // view of real-network traffic, not just the modeled fabric's.
    reg.add(lid, p + "/net/bytes_tx",
            [t, ep] { return t->link(ep).bytes_tx; });
    reg.add(lid, p + "/net/bytes_rx",
            [t, ep] { return t->link(ep).bytes_rx; });
    reg.add(lid, p + "/net/msgs_tx",
            [t, ep] { return t->link(ep).msgs_tx; });
    reg.add(lid, p + "/net/msgs_rx",
            [t, ep] { return t->link(ep).msgs_rx; });
    // Flight-recorder totals.  The recorder is a process singleton, so in
    // the sim shape every locality row reads the same process-wide value;
    // distributed (one locality per process) the row is genuinely
    // per-rank.  Registered before the backend extras to keep positional
    // gid order identical to the remote replay above.
    reg.add(lid, p + "/trace/events",
            [] { return trace::recorder::global().events_total(); });
    reg.add(lid, p + "/trace/drops",
            [] { return trace::recorder::global().drops_total(); });
    // Telemetry distributions (populated only while PX_STATS is armed).
    // The registry slot reads the population count; quantiles go through
    // read_quantile / px.query_hist, and the stats sampler expands each
    // into per-quantile series.  Histogram gids are positional like every
    // other counter, so the remote arm replays them with plain add_remote.
    reg.add_hist(lid, p + "/parcels/hist_dispatch_ns",
                 [loc] { return loc->dispatch_hist_snapshot(); });
    reg.add_hist(lid, p + "/sched/hist_run_ns",
                 [&sched] { return sched.run_hist_snapshot(); });
    reg.add_hist(lid, p + "/sched/hist_wait_ns",
                 [&sched] { return sched.wait_hist_snapshot(); });
    reg.add_hist(lid, p + "/sched/hist_ready_depth",
                 [mon] { return mon->depth_hist_snapshot(); });
    // Sampler self-observation (like /trace/*: a process singleton read
    // through every locality row in the sim shape, genuinely per-rank
    // distributed).
    introspect::stats_collector* st = stats_.get();
    reg.add(lid, p + "/stats/ticks", [st] { return st->ticks(); });
    reg.add(lid, p + "/stats/dropped_points",
            [st] { return st->dropped_points(); });
    // Backend-specific rows (tcp: reconnects; shm: ring_full_waits,
    // wakeups; sim: none) — registered only when the active backend
    // actually maintains them, so the schema never carries an
    // always-zero row for a counter the backend cannot produce.
    const auto extras = t->extra_link_counters(ep);
    for (std::size_t k = 0; k < extras.size(); ++k) {
      reg.add(lid, p + "/net/" + extras[k].name,
              [t, ep, k] { return t->extra_link_counters(ep)[k].value; });
    }
  }

  // Machine-global services, homed where they conceptually live (loc 0 ==
  // rank 0; other ranks replay the schema sampler-less).
  auto& reg = introspect_;
  if (distributed_ && rank_ != 0) {
    for (const char* path :
         {"runtime/agas/binds", "runtime/agas/cache_hits",
          "runtime/agas/cache_misses", "runtime/agas/migrations",
          "runtime/agas/stale_refreshes", "runtime/agas/hint_evictions",
          "runtime/agas/gids_lost",
          "runtime/lco/depleted_threads",
          "runtime/lco/continuations", "runtime/lco/fires",
          "runtime/fabric/in_flight", "runtime/rebalance/rounds",
          "runtime/rebalance/triggers", "runtime/rebalance/migrations",
          "runtime/rebalance/redirects",
          "runtime/rebalance/imbalance_milli",
          "runtime/patterns/pipelines", "runtime/patterns/pipeline_items",
          "runtime/patterns/map_reduce_jobs", "runtime/patterns/map_tasks",
          "runtime/patterns/pool_tasks", "runtime/patterns/nested"}) {
      reg.add_remote(0, path);
    }
    return;
  }
  reg.add(0, "runtime/agas/binds", [this] { return agas_.stats().binds; });
  reg.add(0, "runtime/agas/cache_hits",
          [this] { return agas_.stats().cache_hits; });
  reg.add(0, "runtime/agas/cache_misses",
          [this] { return agas_.stats().cache_misses; });
  reg.add(0, "runtime/agas/migrations",
          [this] { return agas_.stats().migrations; });
  reg.add(0, "runtime/agas/stale_refreshes",
          [this] { return agas_.stats().stale_refreshes; });
  reg.add(0, "runtime/agas/hint_evictions",
          [this] { return agas_.stats().hint_evictions; });
  // Unique gids that can no longer resolve because they died with a lost
  // rank (docs/resilience.md); 0 for the whole life of a healthy machine.
  reg.add(0, "runtime/agas/gids_lost", [this] { return gids_lost(); });

  reg.add_raw(0, "runtime/lco/depleted_threads",
              lco::lco_counters::depleted_threads_created);
  reg.add_raw(0, "runtime/lco/continuations",
              lco::lco_counters::continuations_attached);
  reg.add_raw(0, "runtime/lco/fires", lco::lco_counters::fires);

  reg.add(0, "runtime/fabric/in_flight",
          [this] { return transport_->in_flight(); });

  rebalancer* bal = balancer_.get();
  reg.add(0, "runtime/rebalance/rounds",
          [bal] { return bal->stats().rounds; });
  reg.add(0, "runtime/rebalance/triggers",
          [bal] { return bal->stats().triggers; });
  reg.add(0, "runtime/rebalance/migrations",
          [bal] { return bal->stats().objects_migrated; });
  reg.add(0, "runtime/rebalance/redirects",
          [bal] { return bal->stats().placement_redirects; });
  reg.add(0, "runtime/rebalance/imbalance_milli", [bal] {
    return static_cast<std::uint64_t>(bal->stats().last_imbalance * 1000.0);
  });

  // Pattern-library counters (src/patterns): process-wide statics, homed at
  // rank 0 like the other global services.
  reg.add_raw(0, "runtime/patterns/pipelines",
              patterns::pattern_counters::pipelines_built);
  reg.add_raw(0, "runtime/patterns/pipeline_items",
              patterns::pattern_counters::pipeline_items);
  reg.add_raw(0, "runtime/patterns/map_reduce_jobs",
              patterns::pattern_counters::map_reduce_jobs);
  reg.add_raw(0, "runtime/patterns/map_tasks",
              patterns::pattern_counters::map_tasks);
  reg.add_raw(0, "runtime/patterns/pool_tasks",
              patterns::pattern_counters::pool_tasks);
  reg.add_raw(0, "runtime/patterns/nested",
              patterns::pattern_counters::nested_patterns);
}

runtime::~runtime() {
  if (started_) stop();
}

void runtime::start() {
  PX_ASSERT_MSG(!started_, "runtime started twice");
  for (auto& loc : localities_) {
    if (loc != nullptr) loc->sched_.start();
  }
  started_ = true;
  PX_LOG_INFO("parallex runtime up: %zu localities x %u workers (%s)",
              localities_.size(), params_.workers_per_locality,
              transport_->backend_name());
}

void runtime::stop() {
  if (!started_) return;
  wait_quiescent();
  // Drain the rings after quiescence (no producer is mid-request) but
  // before the shutdown barrier, so a fast rank's exit cannot outrun a
  // slow rank's shard write in a distributed trace collection.
  dump_trace();
  // Stats shard rides the same window: disarm first (joins the sampler
  // and takes the closing tick), then write — the shard always ends at
  // quiescence time.
  if (params_.stats != 0) {
    stats_->disarm();
    stats_->dump();
  }
  // Shutdown sequencing across processes: the quiescence verdict already
  // synchronized everyone, but the barrier keeps a fast rank from tearing
  // its sockets down while a slow one is still inside its final drain.
  if (distributed_) {
    // Flag the orderly shutdown *before* the barrier: once any rank is
    // past it, every rank has already marked peer disconnects expected.
    dist_->expect_peer_disconnects();
    bootstrap_->barrier();
    // Goodbye handshake after the barrier: from here on heartbeat EOFs
    // and lease expiries are orderly teardown, not deaths — without it a
    // fast-exiting rank would be declared a casualty by the survivors.
    bootstrap_->expect_shutdown();
  }
  for (auto& loc : localities_) {
    if (loc != nullptr) loc->sched_.stop();
  }
  started_ = false;
}

void runtime::dump_trace() {
  if (params_.trace == 0) return;
  trace::recorder::global().dump(
      clock_offset_ns_,
      introspect::registry::delta(trace_boot_counters_,
                                  introspect_.snapshot_all()));
}

void runtime::dump_stats() {
  if (params_.stats == 0) return;
  stats_->tick_now();  // freshness: the shard ends at dump time
  stats_->dump();
}

std::string runtime::stats_serialize() {
  if (params_.stats == 0) return {};
  stats_->tick_now();
  return stats_->serialize_jsonl();
}

locality& runtime::at(gas::locality_id id) {
  PX_ASSERT(id < localities_.size());
  PX_ASSERT_MSG(localities_[id] != nullptr,
                "at(): locality lives in another process (distributed "
                "mode); reach it with parcels, not pointers");
  return *localities_[id];
}

net::fabric& runtime::fabric() {
  PX_ASSERT_MSG(fabric_ != nullptr,
                "fabric(): no simulated fabric under the tcp backend");
  return *fabric_;
}

gas::gid runtime::locality_gid(gas::locality_id id) const {
  PX_ASSERT(id < locality_gids_.size());
  return locality_gids_[id];
}

gas::locality_id runtime::effective_home(gas::gid id) const noexcept {
  const gas::locality_id home = id.home();
  if (!distributed_) return home;
  const std::uint64_t mask = peer_dead_mask_.load(std::memory_order_acquire);
  if (((mask >> home) & 1u) == 0) return home;
  // Deterministic succession: the next live rank scanning upward mod
  // nranks.  Pure arithmetic over the dead mask, so every survivor elects
  // the same successor without a coordination round; repeated losses just
  // step further along the ring.
  const std::size_t n = params_.localities;
  for (std::size_t step = 1; step < n; ++step) {
    const auto r =
        static_cast<gas::locality_id>((home + step) % n);
    if (((mask >> r) & 1u) == 0) return r;
  }
  return home;  // unreachable while this process lives (we are a live rank)
}

gas::locality_id runtime::owner_of(gas::locality_id from, gas::gid id) {
  // LCO sinks and hardware names never migrate: the home *is* the owner —
  // and both die with their home's process (a sink is process-local state),
  // so no successor is consulted; route() retires parcels for them.
  if (id.kind() == gas::gid_kind::lco ||
      id.kind() == gas::gid_kind::hardware) {
    return id.home();
  }
  if (distributed_ && id.home() != rank_) {
    const gas::locality_id home = effective_home(id);
    if (home != rank_) {
      // The authoritative directory shard lives in the (effective) home
      // rank's process.  With migration off the home *is* the owner by
      // construction; with it on, a forwarding-cache hint (learned from a
      // home forward's piggyback or an explicit px.agas_resolve)
      // short-circuits the extra hop — unless it points at a casualty
      // (purged on the death verdict, but a racing read can still see
      // one), and absent a hint the parcel routes to the home, whose
      // directory forwards it onward — always correct, at most one hop
      // stale.
      if (migration_enabled_) {
        if (const auto hint = agas_.cached(rank_, id)) {
          if (((peer_dead_mask_.load(std::memory_order_acquire) >> *hint) &
               1u) == 0) {
            return *hint;
          }
        }
      }
      return home;
    }
    // We are the casualty's successor for this gid: fall through — the
    // adopted shard below is the authority now (populated by survivors'
    // re-registrations; still-missing entries resolve unbound and the
    // parcel is reported lost rather than wedging).
  }
  const auto owner = agas_.resolve(from, id);
  return owner.value_or(gas::invalid_locality);
}

void runtime::route(gas::locality_id from, parcel::parcel p) {
  if (p.forwards > params_.max_forwards) {
    // Stale-cache forwarding loop (or a migration storm outrunning the
    // directory): drop with a diagnostic rather than bouncing forever.
    at(from).note_dropped();
    PX_LOG_WARN(
        "dropping parcel after %u forwards (action %u, dest %s, source %u)",
        static_cast<unsigned>(p.forwards), p.action,
        p.destination.to_string().c_str(), p.source);
    return;
  }
  const gas::locality_id owner = owner_of(from, p.destination);
  if (owner == gas::invalid_locality) {
    // Unbound destination.  With a confirmed casualty this is the expected
    // fate of an object that died with it (entry purged from our shard, or
    // never re-registered into an adopted one): retire the parcel into the
    // dropped books — never wedge resolution.  Healthy machine: the hard
    // bug it always was.
    PX_ASSERT_MSG(has_lost_peers(), "route: destination gid is unbound");
    note_lost_gid(p.destination);
    at(from).note_dropped();
    return;
  }
  if (distributed_ && owner != rank_ &&
      ((peer_dead_mask_.load(std::memory_order_acquire) >> owner) & 1u) !=
          0) {
    // The owner rank is confirmed dead (non-migratable gid homed there, or
    // a resolution that still names the casualty): the object is gone with
    // its process.  Drop here, before the transport — the link is already
    // torn down.
    note_lost_gid(p.destination);
    at(from).note_dropped();
    return;
  }
  if (owner == from) {
    // Local fast path: intra-locality parcels do not touch the fabric
    // (the locality is the synchronous domain; its internal latency is
    // the scheduler's, not the network's).
    at(owner).deliver(std::move(p));
    return;
  }
  const auto dest_ep = static_cast<net::endpoint_id>(owner);
  if (p.trace_id != 0 && trace::enabled()) {
    trace::emit(trace::event_kind::parcel_enqueue, p.trace_id, p.trace_span,
                0, static_cast<std::uint64_t>(dest_ep),
                static_cast<std::uint32_t>(p.action));
  }
  const auto res = ports_[from]->enqueue(dest_ep, p);
  // First-parcel eager flush: an isolated request from an otherwise-empty
  // port, sent by a locality with no other ready work, would sit buffered
  // until the sender suspends and the flush-on-idle pass runs — pure added
  // latency with nothing to coalesce behind it.  Three guards keep bursts
  // batching: the channel must have been quiet (a storm re-opens its frame
  // within the burst window), the whole port must hold nothing but this
  // parcel (a multi-destination storm keeps sibling frames open), and the
  // scheduler must have no ready backlog (queued threads mean more
  // parcels are coming).
  if (res.quiet_first && !res.shipped && eager_flush_ &&
      ports_[from]->pending() <= 1 &&
      at(from).sched().ready_estimate() == 0) {
    ports_[from]->flush_eager(dest_ep);
  }
}

void runtime::deliver_from_fabric(net::message& m) {
  // Zero-copy receive: walk the batch frame in place; each parcel_view
  // borrows the message payload, which the fabric recycles after we
  // return.  Actions that keep state copy what they need.
  const auto frame = parcel::frame_view::parse(m.payload);
  PX_ASSERT_MSG(frame.has_value(), "fabric delivered an invalid parcel frame");
  if (trace::enabled()) {
    trace::emit_here(trace::event_kind::wire_rx, m.payload.size(),
                     static_cast<std::uint32_t>(m.source));
  }
  locality& dst = at(m.dest);
  for (auto it = frame->begin(); it != frame->end(); ++it) {
    dst.deliver(*it);
  }
}

std::uint64_t runtime::activity_snapshot() const {
  // Monotonic count of work-creation events across this process: every
  // thread spawn, every parcel enqueued on a port, and every parcel the
  // transport accepts bumps it before the work becomes visible.  Two equal
  // snapshots bracketing a pass of zero-valued counter reads prove the
  // pass observed a true fixed point.  (A parcel moving port -> transport
  // is counted by both monotonic counters; only equality matters.)
  std::uint64_t n = transport_->messages_sent_total();
  for (const auto& port : ports_) {
    if (port != nullptr) n += port->enqueued_total();
  }
  for (const auto& loc : localities_) {
    if (loc != nullptr) n += loc->sched_.spawn_count();
  }
  return n;
}

bool runtime::local_quiescent_pass() {
  // Fixed point: every scheduler idle AND no parcel coalescing in a port
  // AND no parcel in flight.  A drained transport can re-populate
  // schedulers (handlers spawn threads), idle schedulers can re-populate
  // the ports, and flushed ports re-populate the transport, so the caller
  // loops until a pass observes all three conditions with no intervening
  // activity.
  //
  // The per-counter reads below are not atomic as a group, so a thread
  // that sends a parcel and terminates *between* the in_flight() read and
  // its locality's live_threads() read would make the pass look stable
  // with a parcel still in flight — the premature-quiescence race behind
  // the Runtime.ApplyRunsOnTargetLocality hang.  The activity snapshot
  // closes it: any such hidden transition performed a spawn or an enqueue
  // during the pass, which changes the snapshot and forces another loop.
  // A parcel buffered in a port is visible as pending() from the moment
  // it is counted, so coalescing cannot fake quiescence either.
  const std::uint64_t before = activity_snapshot();
  for (auto& port : ports_) {
    if (port != nullptr) port->flush_all();
  }
  for (auto& loc : localities_) {
    if (loc != nullptr) loc->sched_.wait_quiescent();
  }
  transport_->drain();
  bool stable = transport_->in_flight() == 0;
  for (auto& port : ports_) {
    if (port != nullptr) stable = stable && port->pending() == 0;
  }
  for (auto& loc : localities_) {
    if (loc != nullptr) stable = stable && loc->sched_.live_threads() == 0;
  }
  return stable && activity_snapshot() == before;
}

void runtime::wait_quiescent() {
  for (;;) {
    const bool locally_stable = local_quiescent_pass();
    if (!distributed_) {
      if (locally_stable) return;
      continue;
    }
    // Distributed: local stability is necessary, not sufficient — a peer
    // may still have parcels for us on the wire (invisible to any local
    // counter once its sender wrote them to the kernel).  Every rank
    // reports its books each round; rank 0 declares global quiescence
    // when all ranks were locally stable with machine-wide sent ==
    // delivered across two identical consecutive rounds (counting
    // termination detection — see net/bootstrap.hpp).  The round is
    // paced naturally: local passes block while local work is live.
    // Dropped parcels (dead links, fault drops) leave the sent balance:
    // they will never be delivered anywhere, and counting them would make
    // the global sent == delivered test unsatisfiable forever.  Under
    // rank loss the round runs over the live membership with the
    // casualty's whole column subtracted from both sides — the units we
    // sent it are unknowable, the units it sent us already counted — so
    // the collective converges minus the casualty (the control plane's
    // mask agreement keeps ranks with divergent views from quiescing).
    // A rank whose failure sweep (transport fold, directory re-homing,
    // gossip) has not caught up with the control plane's dead mask must
    // not report stable: the verdict would let peers resume sending while
    // this rank's directory still routes through the casualty.  The
    // bootstrap can flag a death (heartbeat EOF) strictly before the
    // peer-down handler finishes the sweep, so the mask comparison — not
    // the handler having been called — is the gate.  Two masks, because
    // the sweep's transport step is asynchronous: peer_swept_mask_ covers
    // the directory/gossip repairs done inline in note_peer_failure, and
    // the transport's folded mask covers the close fold that
    // mark_peer_dead only *queues* on the progress thread.  Requiring
    // both means the conservation books (parcels_lost, peer_failed) are
    // final for every casualty before a verdict can land.
    const std::uint64_t dead = bootstrap_->dead_mask();
    const bool swept =
        peer_swept_mask_.load(std::memory_order_acquire) == dead &&
        (dist_->folded_peer_mask() & dead) == dead;
    if (bootstrap_->quiesce_round(locally_stable && swept,
                                  activity_snapshot(),
                                  dist_->live_units_sent(dead),
                                  dist_->live_units_received(dead))) {
      return;
    }
  }
}

void runtime::run(std::function<void()> root) {
  if (!started_) start();
  // Single-process: root runs once on locality 0.  Distributed: SPMD —
  // every rank runs its own copy on its own locality (rank_ is 0 when
  // single-process, so one expression serves both).
  at(rank_).spawn(std::move(root));
  wait_quiescent();
}

bool runtime::rebalance_migrate(gas::gid id, gas::locality_id from,
                                gas::locality_id to) {
  if (id.kind() != gas::gid_kind::data) return false;
  PX_ASSERT(to < localities_.size());
  std::lock_guard migration(migrate_lock_);
  const auto resolved = agas_.resolve_authoritative(to, id);
  if (!resolved.has_value()) return false;  // unbound (object destroyed)
  const gas::locality_id owner = *resolved;
  if (owner != from || owner == to) return false;  // stale heat entry
  auto obj = at(owner).get_object(id);
  if (obj == nullptr) return false;  // racing migrate/destroy; skip
  // Implant before rebinding, erase after: a parcel racing this move finds
  // the object wherever its resolution lands it (old owner until the
  // directory flips, new owner afterwards) — never a gap where dispatch
  // would run against a missing object.
  at(to).put_object(id, std::move(obj));
  agas_.migrate(id, to);
  at(owner).erase_object(id);
  return true;
}

// ------------------------------------------------ cross-process migration

namespace {

// Receiving side of px.migrate_object: reconstruct, implant, flip the home
// directory; the return value rides the continuation back to the source as
// the acknowledgment that gates retiring its copy.  A typed action (the
// handoff blocks on the home round trip, so it needs a fiber) — the
// destination of a migration is a below-mean rank with worker headroom.
std::uint8_t migrate_implant_action(parcel::migration_record rec);
PX_REGISTER_ACTION_AS(migrate_implant_action, "px.migrate_object")

std::uint8_t migrate_implant_action(parcel::migration_record rec) {
  return this_locality()->rt().migrate_implant(rec);
}

// On-demand shard dump: `apply<&...>(locality_gid(r))` (or any parcel to
// "px.trace_dump") drains rank r's rings mid-run without waiting for
// shutdown.  Typed — the dump does file I/O, which has no place on the
// delivery thread.  Eagerly registered so action tables stay identical
// machine-wide whether or not a run ever triggers it.
std::uint8_t trace_dump_action();
PX_REGISTER_ACTION_AS(trace_dump_action, "px.trace_dump")

std::uint8_t trace_dump_action() {
  this_locality()->rt().dump_trace();
  return 1;
}

// Mid-run stats dump, the px.trace_dump twin: any parcel to
// "px.stats_dump" (apply<&...>(locality_gid(r))) makes rank r take a
// fresh tick and rewrite its shard now.  Typed — the dump does file I/O.
std::uint8_t stats_dump_action();
PX_REGISTER_ACTION_AS(stats_dump_action, "px.stats_dump")

std::uint8_t stats_dump_action() {
  this_locality()->rt().dump_stats();
  return 1;
}

// Machine-wide gather: replies with this rank's full jsonl shard so rank 0
// (or any rank) can pull every rank's series over the wire without
// touching remote filesystems (introspect::stats_pull).  Typed — the
// serialization walks every series under a mutex, which has no place on
// the delivery thread.
std::string stats_pull_action();
PX_REGISTER_ACTION_AS(stats_pull_action, "px.stats_pull")

std::string stats_pull_action() {
  return this_locality()->rt().stats_serialize();
}

// Home side of the directory flip.  Raw-registered (non-spawning, like
// px.sink): a directory write is control plane and must not queue behind
// user fibers — the home of a hot object is often exactly the monopolized
// rank the migration is shedding load from, and a spawned handler there
// would stall every handoff until the backlog drained.
parcel::action_id agas_update_action_id() {
  static const parcel::action_id id =
      parcel::action_registry::global().register_action(
          "px.agas_update", +[](void* ctx, const parcel::parcel_view& pv) {
            auto* loc = static_cast<locality*>(ctx);
            const auto args =
                util::from_bytes<std::tuple<std::uint64_t, gas::locality_id>>(
                    pv.arguments());
            const std::uint8_t ok = loc->rt().apply_agas_update(
                gas::gid::from_bits(std::get<0>(args)), std::get<1>(args));
            send_continuation_reply(*loc, pv.cont(), util::to_bytes(ok));
          });
  return id;
}

// Eager: action ids are positional; every rank must mint this at boot.
[[maybe_unused]] const parcel::action_id k_agas_update_registration =
    agas_update_action_id();

// Death gossip: the first rank to confirm a casualty tells the others, so
// survivors that never exchanged a byte with the dead rank still fold it
// into their books (the control plane's kTagPeerDown covers ranks root
// reaches; this covers root learning from a non-root detector, and any
// rank the heartbeat hasn't timed out yet).  Raw-registered like px.sink:
// a death verdict is control plane and must not queue behind user fibers.
parcel::action_id peer_down_action_id() {
  static const parcel::action_id id =
      parcel::action_registry::global().register_action(
          "px.peer_down", +[](void* ctx, const parcel::parcel_view& pv) {
            auto* loc = static_cast<locality*>(ctx);
            const auto dead = util::from_bytes<std::uint32_t>(pv.arguments());
            loc->rt().note_peer_failure(
                static_cast<gas::locality_id>(dead));
          });
  return id;
}

// Eager: action ids are positional; every rank must mint this at boot.
[[maybe_unused]] const parcel::action_id k_peer_down_registration =
    peer_down_action_id();

}  // namespace

void runtime::tag_migratable_object(gas::gid id, std::string type_name) {
  std::lock_guard lock(mig_types_lock_);
  mig_types_[id] = std::move(type_name);
}

std::optional<std::string> runtime::migration_type_of(gas::gid id) const {
  std::lock_guard lock(mig_types_lock_);
  const auto it = mig_types_.find(id);
  if (it == mig_types_.end()) return std::nullopt;
  return it->second;
}

std::vector<gas::gid> runtime::migratable_residents(std::size_t max) const {
  std::vector<gas::gid> tagged;
  {
    std::lock_guard lock(mig_types_lock_);
    tagged.reserve(mig_types_.size());
    for (const auto& [id, type] : mig_types_) {
      (void)type;
      tagged.push_back(id);
    }
  }
  // Residency check outside the types lock (has_object takes the object
  // table lock; never hold both).
  std::vector<gas::gid> out;
  const locality& here = *localities_[rank_];
  for (const auto id : tagged) {
    if (out.size() >= max) break;
    if (here.has_object(id)) out.push_back(id);
  }
  return out;
}

std::uint8_t runtime::apply_agas_update(gas::gid id,
                                        gas::locality_id new_owner) {
  // effective_home: after a rank loss this update may land at the
  // casualty's successor, whose adopted shard starts empty — hence the
  // tolerant rebind (upsert) instead of migrate's bound-entry assert.
  PX_ASSERT_MSG(!distributed_ || effective_home(id) == rank_,
                "px.agas_update landed off the home rank");
  agas_.rebind(id, new_owner);
  // Refresh this rank's own forwarding view too: routing from the home
  // should go straight to the new owner, not through a stale cache entry
  // that would bounce the parcel off the previous one.
  agas_.note_owner(rank_, id, new_owner);
  return 1;
}

// ------------------------------------------------------------- resilience

void runtime::note_peer_failure(gas::locality_id rank) {
  if (!distributed_ || rank == rank_ ||
      rank >= static_cast<gas::locality_id>(params_.localities)) {
    return;
  }
  const std::uint64_t bit = 1ull << rank;
  if (peer_dead_mask_.fetch_or(bit, std::memory_order_acq_rel) & bit) {
    return;  // a verdict for this casualty already ran the sweep
  }
  PX_LOG_WARN("rank %u: peer rank %u confirmed dead — continuing with "
              "reduced membership",
              static_cast<unsigned>(rank_), static_cast<unsigned>(rank));
  // (1) Ask the transport to fold the casualty into the conservation
  // books.  This only *requests* the fold: close_link queues the close on
  // the backend progress thread, so the books (parcels_lost freeze,
  // peer_failed) may settle after this function returns — which is why
  // wait_quiescent gates on the transport's folded mask in addition to
  // peer_swept_mask_ below.  (2) Tell the control plane: its dead mask
  // gates the quiesce verdict, and on rank 0 it broadcasts kTagPeerDown
  // to the other survivors.  Note: when the control plane or the
  // transport is what detected the death, the corresponding step is a
  // no-op (its mask is already set), which is also what breaks the
  // handler cycle.  (3) Repair the directory so routing keeps resolving.
  // (4) Gossip px.peer_down — the parcels route with the repaired view.
  dist_->mark_peer_dead(rank);
  bootstrap_->note_rank_dead(static_cast<std::uint32_t>(rank));
  rehome_gids_after_loss(rank);
  broadcast_peer_down(rank);
  // Directory sweep complete: wait_quiescent may report this casualty as
  // handled once it also sees the transport's folded bit (the close
  // queued in step (1) may still be in flight on the progress thread).
  peer_swept_mask_.fetch_or(bit, std::memory_order_release);
}

void runtime::note_lost_gid(gas::gid id) {
  bool fresh = false;
  {
    std::lock_guard lock(lost_gids_lock_);
    fresh = lost_gids_.insert(id).second;
  }
  if (fresh) {
    gids_lost_.fetch_add(1, std::memory_order_relaxed);
    // Once per gid, not per parcel: a storm aimed at a lost object must
    // not turn the log into the bottleneck.
    PX_LOG_WARN("gid %s lost with a dead rank; parcels for it are dropped",
                id.to_string().c_str());
  }
}

void runtime::rehome_gids_after_loss(gas::locality_id dead) {
  // Hints pointing at the casualty would bounce parcels off a torn-down
  // link; purge them so routing falls back to (effective-)home.
  agas_.purge_owner_hints(rank_, dead);
  // Entries in our own directory shard whose owner was the casualty: the
  // objects died with its process.  Unbind them — resolution answers
  // "unbound" and route() retires the parcel — and report each lost.
  for (const gas::gid id : agas_.drop_entries_owned_by(rank_, dead)) {
    note_lost_gid(id);
  }
  // Resident objects homed at the casualty survive here but their
  // directory authority is gone: re-register each at the successor (who
  // adopts the casualty's shard index; possibly us).  Objects that were
  // *resident at* the casualty have nobody to speak for them — their first
  // parcel resolves unbound at the successor and is reported lost there.
  const gas::locality_id succ =
      effective_home(gas::gid::make(gas::gid_kind::data, dead, 1));
  for (const gas::gid id : here().resident_objects_homed_at(dead)) {
    if (succ == rank_) {
      agas_.rebind(id, rank_);
      agas_.note_owner(rank_, id, rank_);
      continue;
    }
    parcel::parcel p;
    p.destination = locality_gid(succ);
    p.action = agas_update_action_id();
    p.arguments = util::to_bytes(
        std::tuple<std::uint64_t, gas::locality_id>(id.bits(), rank_));
    here().send(std::move(p));
  }
}

void runtime::broadcast_peer_down(gas::locality_id dead) {
  const std::uint64_t mask = peer_dead_mask_.load(std::memory_order_acquire);
  for (std::size_t r = 0; r < params_.localities; ++r) {
    if (r == rank_ || ((mask >> r) & 1u) != 0) continue;
    parcel::parcel p;
    p.destination = locality_gid(static_cast<gas::locality_id>(r));
    p.action = peer_down_action_id();
    p.arguments = util::to_bytes(static_cast<std::uint32_t>(dead));
    here().send(std::move(p));
  }
}

std::uint8_t runtime::migrate_implant(const parcel::migration_record& rec) {
  const gas::gid id = gas::gid::from_bits(rec.gid_bits);
  if (trace::enabled()) {
    trace::emit_here(trace::event_kind::migrate_implant, rec.gid_bits,
                     static_cast<std::uint32_t>(rank_));
  }
  const auto* vt = parcel::migratable_registry::global().find(rec.type_name);
  PX_ASSERT_MSG(vt != nullptr,
                "migration record names an unregistered type — ranks must "
                "run the same binary with PX_REGISTER_MIGRATABLE in effect");
  auto obj = vt->decode(rec.payload);
  PX_ASSERT(obj != nullptr);
  // Claim the gid for the whole implant, *including* the home round trip:
  // the object must not be eligible for an onward migration until the
  // home has acknowledged ours.  Without this, a chained A->B->C handoff
  // could put B's and C's px.agas_update parcels on different connections
  // and the home could apply them out of order, leaving the directory
  // pointing at a rank that already retired its copy — a permanently
  // stranded object.  Serializing handoff N+1 behind handoff N's home ack
  // makes directory-update application order follow real time.
  {
    std::lock_guard lock(migrating_lock_);
    const bool claimed = migrating_.insert(id).second;
    PX_ASSERT_MSG(claimed,
                  "migration implant for a gid already mid-handoff here");
  }
  tag_migratable_object(id, rec.type_name);
  // Implant before the directory flips: from this moment a parcel landing
  // here (raced ahead on a fresh hint) dispatches instead of bouncing.
  here().put_object(id, std::move(obj));
  // effective_home: if the gid's encoded home died, the directory flip
  // goes to (or happens at) the adopted shard's successor instead.
  const gas::locality_id dir_home = effective_home(id);
  if (dir_home == rank_) {
    apply_agas_update(id, rank_);
  } else {
    lco::promise<std::uint8_t> prom;
    auto fut = prom.get_future();
    const parcel::continuation cont =
        make_promise_sink<std::uint8_t>(here(), std::move(prom));
    parcel::parcel p;
    p.destination = locality_gid(dir_home);
    p.action = agas_update_action_id();
    p.cont = cont;
    p.arguments = util::to_bytes(
        std::tuple<std::uint64_t, gas::locality_id>(id.bits(), rank_));
    here().send(std::move(p));
    const std::uint8_t ok = fut.get();
    PX_ASSERT_MSG(ok == 1, "home rank refused the directory update");
  }
  agas_.note_owner(rank_, id, rank_);
  {
    std::lock_guard lock(migrating_lock_);
    migrating_.erase(id);
  }
  return 1;
}

bool runtime::migrate_gid(gas::gid id, gas::locality_id to) {
  if (id.kind() != gas::gid_kind::data) return false;
  PX_ASSERT(to < params_.localities);
  if (!distributed_) {
    // Single-process: the untyped shared_ptr handoff already has the
    // required ordering; reuse it (asking slot 0 exists in every shape).
    const auto owner = agas_.resolve_authoritative(0, id);
    if (!owner.has_value()) return false;
    if (*owner == to) return true;
    return rebalance_migrate(id, *owner, to);
  }
  if (to == rank_) return here().has_object(id);
  PX_ASSERT_MSG(this_locality() != nullptr,
                "migrate_gid must run on a ParalleX thread in distributed "
                "mode (it blocks on the handoff acknowledgment)");
  // The blocking form is the async handoff plus a future on the ack.
  lco::promise<std::uint8_t> prom;
  auto fut = prom.get_future();
  const bool issued = migrate_gid_async(
      id, to, [prom](bool ok) mutable { prom.set_value(ok ? 1 : 0); });
  if (!issued) return false;
  return fut.get() == 1;
}

bool runtime::migrate_gid_async(gas::gid id, gas::locality_id to,
                                std::function<void(bool)> done) {
  PX_ASSERT(distributed_);
  if (id.kind() != gas::gid_kind::data || !migration_enabled_ ||
      to == rank_ || to >= params_.localities) {
    return false;
  }
  {
    std::lock_guard lock(migrating_lock_);
    if (!migrating_.insert(id).second) return false;
  }
  const auto obj = here().get_object(id);
  const auto type = migration_type_of(id);
  const parcel::migratable_registry::vtable* vt =
      type.has_value() ? parcel::migratable_registry::global().find(*type)
                       : nullptr;
  if (obj == nullptr || vt == nullptr) {
    std::lock_guard lock(migrating_lock_);
    migrating_.erase(id);
    return false;
  }
  parcel::migration_record rec;
  rec.gid_bits = id.bits();
  rec.type_name = *type;
  rec.payload = vt->encode(obj);
  if (trace::enabled()) {
    trace::emit_here(trace::event_kind::migrate_begin, id.bits(),
                     static_cast<std::uint32_t>(to));
  }
  // The ack continuation is a plain sink: its fire closure runs on the
  // delivery thread and does only non-blocking work (same retire sequence
  // as the blocking path).
  const gas::gid sink = here().register_sink(
      [this, id, to, done = std::move(done)](parcel::parcel) {
        here().erase_object(id);
        {
          // Retire the type tag with the copy: the destination re-tagged
          // on implant, and keeping ours would grow mig_types_ (and the
          // rebalancer's residency scans) with every object that ever
          // passed through this rank.
          std::lock_guard lock(mig_types_lock_);
          mig_types_.erase(id);
        }
        agas_.note_owner(rank_, id, to);
        {
          std::lock_guard lock(migrating_lock_);
          migrating_.erase(id);
        }
        if (trace::enabled()) {
          trace::emit_here(trace::event_kind::migrate_end, id.bits(),
                           static_cast<std::uint32_t>(to));
        }
        if (done) done(true);
      });
  apply_cont_from<&migrate_implant_action>(
      here(), locality_gid(to),
      parcel::continuation{sink, sink_action_id()}, rec);
  return true;
}

namespace {

// Action ids are positional (assigned in registration order), so every
// process must hold the identical table before cross-process dispatch: a
// parcel carries only the id, and rank A's id 7 must be rank B's id 7.
// Static registrations (PX_REGISTER_ACTION) of one binary are
// link-ordered and deterministic; this snapshot, traded at bootstrap,
// catches mismatched binaries — or eager-vs-lazy registration drift —
// before the first parcel instead of as a wrong-action dispatch.
std::string action_table_snapshot() {
  auto& reg = parcel::action_registry::global();
  std::string out;
  const auto n = static_cast<parcel::action_id>(reg.size());
  for (parcel::action_id id = 1; id <= n; ++id) {
    out += reg.name_of(id);
    out += '\n';
  }
  return out;
}

using wire_tuple =
    std::tuple<std::uint64_t, std::uint32_t, std::uint8_t, std::uint8_t,
               std::uint8_t, std::uint8_t, std::uint8_t, std::uint8_t,
               std::string>;

}  // namespace

// Wire-relevant knobs every rank must agree on: ranks coalescing with
// different flush thresholds, dropping at different forward bounds, or
// disagreeing on whether objects may leave their home rank would behave
// "the same program, different machine".  Rank 0's resolved values (and
// its action table, for verification) ride the bootstrap table reply.
std::vector<std::byte> runtime::encode_wire_params() const {
  return util::to_bytes(wire_tuple(
      static_cast<std::uint64_t>(params_.parcel_flush_bytes),
      params_.parcel_flush_count,
      static_cast<std::uint8_t>(params_.max_forwards),
      static_cast<std::uint8_t>(eager_flush_ ? 1 : 0),
      static_cast<std::uint8_t>(params_.net.migration != 0 ? 1 : 0),
      static_cast<std::uint8_t>(params_.rebalance != 0 ? 1 : 0),
      static_cast<std::uint8_t>(params_.trace != 0 ? 1 : 0),
      static_cast<std::uint8_t>(params_.stats != 0 ? 1 : 0),
      action_table_snapshot()));
}

void runtime::apply_wire_params(std::span<const std::byte> blob) {
  const auto t = util::from_bytes<wire_tuple>(blob);
  params_.parcel_flush_bytes = static_cast<std::size_t>(std::get<0>(t));
  params_.parcel_flush_count = std::get<1>(t);
  params_.max_forwards = std::get<2>(t);
  eager_flush_ = std::get<3>(t) != 0;
  params_.net.migration = std::get<4>(t);
  params_.rebalance = std::get<5>(t);
  // Tracing and stats are machine-wide or not at all: the clock-sync
  // collective and the per-parcel wire extensions all assume every rank
  // agrees.
  params_.trace = std::get<6>(t);
  params_.stats = std::get<7>(t);
  PX_ASSERT_MSG(std::get<8>(t) == action_table_snapshot(),
                "ranks disagree on the registered action table — all ranks "
                "must run the same binary, and actions used cross-process "
                "must be registered eagerly (PX_REGISTER_ACTION)");
}

}  // namespace px::core

namespace px::introspect {

lco::future<std::string> stats_pull(core::locality& from,
                                    gas::locality_id rank) {
  return core::async_from<&core::stats_pull_action>(
      from, from.rt().locality_gid(rank));
}

}  // namespace px::introspect
