#include "core/parcel_port.hpp"

#include <mutex>

#include "trace/trace.hpp"
#include "util/assert.hpp"
#include "util/clock.hpp"

namespace px::core {

using util::now_ns;

parcel_port::parcel_port(net::transport& transport, net::endpoint_id self,
                         parcel_port_params params)
    : transport_(transport), self_(self), params_(params) {
  PX_ASSERT(params_.flush_count >= 1);
  for (std::size_t i = 0; i < transport_.endpoints(); ++i) {
    channels_.push_back(std::make_unique<out_channel>());
  }
}

std::uint32_t parcel_port::take_frame(out_channel& ch,
                                      std::vector<std::byte>& out) {
  const std::uint32_t count = ch.count;
  out = std::move(ch.buf);
  ch.buf.clear();
  ch.count = 0;
  ch.last_close_ns = now_ns();
  return count;
}

parcel_enqueue_result parcel_port::enqueue(net::endpoint_id dest,
                                           const parcel::parcel& p) {
  PX_ASSERT_MSG(dest < channels_.size(), "parcel_port: dest out of range");
  PX_ASSERT_MSG(dest != self_, "parcel_port: local parcels bypass the port");
  // Visibility order matters for quiescence: the monotonic counter first
  // (any racing snapshot pass re-loops), then pending (the parcel is
  // "somewhere" before it is buffered).
  enqueued_total_.fetch_add(1, std::memory_order_acq_rel);
  pending_.fetch_add(1, std::memory_order_acq_rel);

  parcel_enqueue_result res;
  std::vector<std::byte> to_ship;
  std::uint32_t shipped_count = 0;
  {
    out_channel& ch = *channels_[dest];
    std::lock_guard lock(ch.lock);
    if (ch.buf.empty()) {
      // Opening a frame: the clock read (~20ns) runs at most once per
      // frame, so the storm path pays it once per flush_count parcels.
      res.quiet_first = now_ns() - ch.last_close_ns > eager_quiet_ns;
      ch.buf = transport_.pool().acquire();
      parcel::frame_begin(ch.buf);
    }
    parcel::frame_append(ch.buf, p);
    ch.count += 1;
    if (ch.buf.size() >= params_.flush_bytes ||
        ch.count >= params_.flush_count) {
      shipped_count = take_frame(ch, to_ship);
    }
  }
  if (shipped_count > 0) {
    res.shipped = true;
    threshold_flushes_.fetch_add(1, std::memory_order_relaxed);
    ship(std::move(to_ship), shipped_count, dest);
  }
  return res;
}

void parcel_port::flush_counted(net::endpoint_id dest,
                                std::atomic<std::uint64_t>& counter) {
  PX_ASSERT(dest < channels_.size());
  std::vector<std::byte> to_ship;
  std::uint32_t shipped_count = 0;
  {
    out_channel& ch = *channels_[dest];
    std::lock_guard lock(ch.lock);
    if (ch.count == 0) return;
    shipped_count = take_frame(ch, to_ship);
  }
  counter.fetch_add(1, std::memory_order_relaxed);
  ship(std::move(to_ship), shipped_count, dest);
}

void parcel_port::flush(net::endpoint_id dest) {
  flush_counted(dest, demand_flushes_);
}

void parcel_port::flush_eager(net::endpoint_id dest) {
  flush_counted(dest, eager_flushes_);
}

void parcel_port::flush_all() {
  for (net::endpoint_id d = 0; d < channels_.size(); ++d) {
    if (d == self_) continue;
    flush(d);
  }
}

void parcel_port::ship(std::vector<std::byte> frame, std::uint32_t count,
                       net::endpoint_id dest) {
  net::message m;
  m.source = self_;
  m.dest = dest;
  m.units = count;
  m.payload = std::move(frame);
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  if (trace::enabled()) {
    trace::emit_here(trace::event_kind::wire_tx, m.payload.size(),
                     static_cast<std::uint32_t>(dest));
  }
  // send() marks the units in flight before they become invisible here;
  // decrementing pending_ only afterwards keeps every parcel continuously
  // accounted (see the quiescence contract in the header).
  transport_.send(std::move(m));
  pending_.fetch_sub(count, std::memory_order_acq_rel);
}

parcel_port_stats parcel_port::stats() const {
  parcel_port_stats s;
  s.parcels_enqueued = enqueued_total_.load(std::memory_order_relaxed);
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.threshold_flushes = threshold_flushes_.load(std::memory_order_relaxed);
  s.demand_flushes = demand_flushes_.load(std::memory_order_relaxed);
  s.eager_flushes = eager_flushes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace px::core
