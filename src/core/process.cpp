#include "core/process.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace px::core {

process::process(runtime& rt, gas::gid id, std::vector<gas::locality_id> span)
    : rt_(rt), id_(id), span_(std::move(span)) {
  PX_ASSERT(!span_.empty());
}

void process::spawn(gas::locality_id where, std::function<void()> fn) {
  PX_ASSERT_MSG(std::find(span_.begin(), span_.end(), where) != span_.end(),
                "spawn outside the process span");
  const std::int64_t prev =
      outstanding_.fetch_add(1, std::memory_order_acq_rel);
  PX_ASSERT_MSG(prev > 0, "spawn on a terminated process");
  spawned_.fetch_add(1, std::memory_order_relaxed);
  // The child holds a shared_ptr so the process outlives all its work.
  rt_.at(where).spawn(
      [self = shared_from_this(), fn = std::move(fn)]() mutable {
        fn();
        self->complete_one();
      });
}

void process::spawn_any(std::function<void()> fn) {
  // Adaptive placement: the rebalancer steers toward the shallowest ready
  // queue in the span (falling back to static round-robin when disabled
  // or balanced) — the paper's dynamic resource management applied at the
  // moment work is created, not just after it has piled up.
  const std::uint64_t slot =
      next_placement_.fetch_add(1, std::memory_order_relaxed);
  if (rt_.distributed()) {
    // The closure cannot cross a process boundary, so the only legal
    // placement is this rank; spawn_any<Fn> steers across the whole span.
    PX_ASSERT_MSG(
        std::find(span_.begin(), span_.end(), rt_.rank()) != span_.end(),
        "spawn_any(closure): this rank is not in the span");
    spawn(rt_.rank(), std::move(fn));
    return;
  }
  spawn(rt_.balancer().place(span_, slot), std::move(fn));
}

// The credit parcel's landing site is the process gid itself, which AGAS
// resolves to the primary locality — where the token counter lives.
void process_credit_action(std::uint64_t proc_bits, std::uint64_t n) {
  locality* here = this_locality();
  auto obj = here->get_object(gas::gid::from_bits(proc_bits));
  PX_ASSERT_MSG(obj != nullptr,
                "process credit parcel landed off the primary");
  std::static_pointer_cast<process>(obj)->complete_n(n);
}
PX_REGISTER_ACTION_AS(process_credit_action, "px.process_credit")

namespace {

// Drains one edge ledger whose last local child / split credit just
// retired: returns its owed credits upstream in a single batched parcel.
// Racing re-entries are benign — a new child arriving on this edge after
// the drain simply reopens the owed count, and the upstream counter it
// draws on cannot have drained (its issuer still holds the credit that
// covers the child in flight).
void process_site_return(std::uint64_t proc_bits, std::uint64_t edge) {
  locality* here = this_locality();
  runtime& rt = here->rt();
  process_site& site = rt.process_sites().site(proc_bits);
  std::uint32_t parent_rank = kProcessParentPrimary;
  std::uint64_t parent_edge = kProcessNoEdge;
  std::uint64_t owed = 0;
  {
    std::lock_guard g(site.lock);
    edge_ledger& led = site.edges[edge];
    if (led.active != 0 || led.owed == 0) return;
    parent_rank = led.parent_rank;
    parent_edge = led.parent_edge;
    owed = led.owed;
    led.owed = 0;
  }
  if (parent_rank == kProcessParentPrimary) {
    apply<&process_credit_action>(gas::gid::from_bits(proc_bits), proc_bits,
                                  owed);
  } else {
    apply<&process_site_credit_action>(rt.locality_gid(parent_rank),
                                       proc_bits, parent_edge, owed);
  }
}

}  // namespace

// A split credit coming home: the grandchild's rank finished the work this
// rank's ledger lent out.
void process_site_credit_action(std::uint64_t proc_bits, std::uint64_t edge,
                                std::uint64_t n) {
  locality* here = this_locality();
  process_site& site = here->rt().process_sites().site(proc_bits);
  {
    std::lock_guard g(site.lock);
    PX_ASSERT_MSG(edge < site.edges.size(),
                  "process site credit for an unknown edge");
    edge_ledger& led = site.edges[edge];
    led.active -= static_cast<std::int64_t>(n);
    PX_ASSERT_MSG(led.active >= 0, "process site credit underflow");
  }
  process_site_return(proc_bits, edge);
}
PX_REGISTER_ACTION_AS(process_site_credit_action, "px.process_site_credit")

std::uint64_t process_site_enter(const child_ctx& ctx) {
  locality* here = this_locality();
  process_site& site = here->rt().process_sites().site(ctx.proc_bits);
  std::lock_guard g(site.lock);
  const std::uint64_t edge =
      site.edge_for(ctx.parent_rank, ctx.parent_edge);
  edge_ledger& led = site.edges[edge];
  led.active += 1;
  led.owed += 1;
  if (site.span.empty()) site.span = ctx.span;
  return edge;
}

void process_site_leave(std::uint64_t proc_bits, std::uint64_t edge) {
  locality* here = this_locality();
  process_site& site = here->rt().process_sites().site(proc_bits);
  {
    std::lock_guard g(site.lock);
    edge_ledger& led = site.edges[edge];
    led.active -= 1;
    PX_ASSERT_MSG(led.active >= 0, "process site leave underflow");
  }
  process_site_return(proc_bits, edge);
}

void process::seal() { complete_one(); }

void process::complete_n(std::uint64_t n) {
  const std::int64_t prev = outstanding_.fetch_sub(
      static_cast<std::int64_t>(n), std::memory_order_acq_rel);
  PX_ASSERT(prev >= static_cast<std::int64_t>(n));
  if (prev == static_cast<std::int64_t>(n)) done_.set_value();
}

std::shared_ptr<process> create_process(runtime& rt,
                                        std::vector<gas::locality_id> span) {
  PX_ASSERT(!span.empty());
  const gas::locality_id primary = span.front();
  const gas::gid id = rt.gas().allocate(gas::gid_kind::process, primary);
  rt.gas().bind(id, primary);
  auto proc = std::make_shared<process>(rt, id, std::move(span));
  rt.at(primary).put_object(id, proc);
  return proc;
}

}  // namespace px::core
