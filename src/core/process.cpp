#include "core/process.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace px::core {

process::process(runtime& rt, gas::gid id, std::vector<gas::locality_id> span)
    : rt_(rt), id_(id), span_(std::move(span)) {
  PX_ASSERT(!span_.empty());
}

void process::spawn(gas::locality_id where, std::function<void()> fn) {
  PX_ASSERT_MSG(std::find(span_.begin(), span_.end(), where) != span_.end(),
                "spawn outside the process span");
  const std::int64_t prev =
      outstanding_.fetch_add(1, std::memory_order_acq_rel);
  PX_ASSERT_MSG(prev > 0, "spawn on a terminated process");
  spawned_.fetch_add(1, std::memory_order_relaxed);
  // The child holds a shared_ptr so the process outlives all its work.
  rt_.at(where).spawn(
      [self = shared_from_this(), fn = std::move(fn)]() mutable {
        fn();
        self->complete_one();
      });
}

void process::spawn_any(std::function<void()> fn) {
  // Adaptive placement: the rebalancer steers toward the shallowest ready
  // queue in the span (falling back to static round-robin when disabled
  // or balanced) — the paper's dynamic resource management applied at the
  // moment work is created, not just after it has piled up.
  const std::uint64_t slot =
      next_placement_.fetch_add(1, std::memory_order_relaxed);
  if (rt_.distributed()) {
    // The closure cannot cross a process boundary, so the only legal
    // placement is this rank; spawn_any<Fn> steers across the whole span.
    PX_ASSERT_MSG(
        std::find(span_.begin(), span_.end(), rt_.rank()) != span_.end(),
        "spawn_any(closure): this rank is not in the span");
    spawn(rt_.rank(), std::move(fn));
    return;
  }
  spawn(rt_.balancer().place(span_, slot), std::move(fn));
}

// The credit parcel's landing site is the process gid itself, which AGAS
// resolves to the primary locality — where the token counter lives.
void process_credit_action(std::uint64_t proc_bits) {
  locality* here = this_locality();
  auto obj = here->get_object(gas::gid::from_bits(proc_bits));
  PX_ASSERT_MSG(obj != nullptr,
                "process credit parcel landed off the primary");
  std::static_pointer_cast<process>(obj)->complete_one();
}
PX_REGISTER_ACTION_AS(process_credit_action, "px.process_credit")

void process::seal() { complete_one(); }

void process::complete_one() {
  const std::int64_t prev =
      outstanding_.fetch_sub(1, std::memory_order_acq_rel);
  PX_ASSERT(prev >= 1);
  if (prev == 1) done_.set_value();
}

std::shared_ptr<process> create_process(runtime& rt,
                                        std::vector<gas::locality_id> span) {
  PX_ASSERT(!span.empty());
  const gas::locality_id primary = span.front();
  const gas::gid id = rt.gas().allocate(gas::gid_kind::process, primary);
  rt.gas().bind(id, primary);
  auto proc = std::make_shared<process>(rt, id, std::move(span));
  rt.at(primary).put_object(id, proc);
  return proc;
}

}  // namespace px::core
