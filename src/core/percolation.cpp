#include "core/percolation.hpp"

namespace px::core {

percolation_manager::percolation_manager(runtime& rt,
                                         unsigned staging_slots_per_locality)
    : rt_(rt), slots_per_locality_(staging_slots_per_locality) {
  PX_ASSERT(staging_slots_per_locality >= 1);
  for (std::size_t i = 0; i < rt_.num_localities(); ++i) {
    slots_.push_back(std::make_unique<lco::counting_semaphore>(
        staging_slots_per_locality));
  }
}

void percolation_manager::acquire_slot(gas::locality_id target) {
  PX_ASSERT(target < slots_.size());
  lco::counting_semaphore& sem = *slots_[target];
  if (!sem.try_acquire()) {
    slot_waits_.fetch_add(1, std::memory_order_relaxed);
    sem.acquire();
  }
}

void percolation_manager::release_slot(gas::locality_id target) {
  PX_ASSERT(target < slots_.size());
  slots_[target]->release();
}

percolation_stats percolation_manager::stats() const {
  percolation_stats s;
  s.tasks_percolated = tasks_.load(std::memory_order_relaxed);
  s.slot_waits = slot_waits_.load(std::memory_order_relaxed);
  return s;
}

void percolate_release_action(std::uint32_t target) {
  locality* here = this_locality();
  here->rt().percolation_mgr().release_slot(target);
}
PX_REGISTER_ACTION_AS(percolate_release_action, "px.percolate_release")

}  // namespace px::core
