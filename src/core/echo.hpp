// Echo: ParalleX copy semantics for shared writable data without cache
// coherence.
//
// Paper §2.2 "Echo": when one writable variable is used by many execution
// points in the same interval, echo "identifies the tree of equivalent
// locations all of which are to be operated upon as if a single value".
// There is no coherence protocol outside a locality; instead:
//
//   * reads return the local replica immediately, tagged with the version
//     the reader saw (optimistic, zero latency);
//   * side-effect commits are split-phase: the writer proposes
//     (read_version, new_value) to the object's home, continues computing,
//     and only treats the side effect as durable when the acknowledgement
//     arrives confirming the value it used was current;
//   * a stale commit is rejected and the writer retries against the
//     authoritative copy (the home serializes commits, so retries make
//     progress).
//
// This realizes the paper's "overlap between coherency verification and
// continued computation with the latest known value".  Inspired by — but
// deliberately simpler than — location consistency [Gao & Sarkar 2000].
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gas/gid.hpp"
#include "lco/lco.hpp"
#include "util/cache.hpp"
#include "util/serialize.hpp"
#include "util/spinlock.hpp"

namespace px::core {

class runtime;
class locality;

struct echo_stats {
  std::uint64_t reads = 0;
  std::uint64_t commits_ok = 0;
  std::uint64_t commits_stale = 0;
  std::uint64_t update_broadcasts = 0;  // replica refresh parcels sent
  std::uint64_t fetches = 0;            // authoritative re-reads after stale
};

// Type-erased value plane: values travel and are stored serialized, exactly
// as they would cross a real fabric.  The typed view is `echo<T>` below.
class echo_manager {
 public:
  explicit echo_manager(runtime& rt);

  // Creates an echo object homed at `home`, replicated everywhere
  // (control-plane setup, analogous to object construction).
  gas::gid create(gas::locality_id home, std::vector<std::byte> initial);

  // Immediate local read at `at`: (replica bytes, version seen).
  std::pair<std::vector<std::byte>, std::uint64_t> read(gas::locality_id at,
                                                        gas::gid id);

  // Split-phase commit from locality `from`; resolves true when the home
  // accepted (our read version was current), false when stale.
  lco::future<bool> commit(locality& from, gas::gid id,
                           std::uint64_t read_version,
                           std::vector<std::byte> new_value);

  // Authoritative (home) read: used by writers after a stale commit.
  lco::future<std::pair<std::vector<std::byte>, std::uint64_t>> fetch(
      locality& from, gas::gid id);

  echo_stats stats() const;

  // --- internal, used by the registered echo actions ---
  bool home_commit(gas::gid id, std::uint64_t read_version,
                   std::vector<std::byte> new_value);
  void replica_update(gas::locality_id at, gas::gid id, std::uint64_t version,
                      std::vector<std::byte> value);
  std::pair<std::vector<std::byte>, std::uint64_t> home_read(gas::gid id);

 private:
  struct replica {
    std::vector<std::byte> value;
    std::uint64_t version = 1;
  };
  struct table {
    util::spinlock lock;
    std::unordered_map<gas::gid, replica> entries;
  };

  table& table_at(gas::locality_id at);
  replica read_replica(gas::locality_id at, gas::gid id);

  runtime& rt_;
  std::vector<util::padded<table>> tables_;

  std::atomic<std::uint64_t> reads_{0};
  std::atomic<std::uint64_t> commits_ok_{0};
  std::atomic<std::uint64_t> commits_stale_{0};
  std::atomic<std::uint64_t> update_broadcasts_{0};
  std::atomic<std::uint64_t> fetches_{0};
};

// Typed echo handle.  T must be archive-serializable.
template <typename T>
class echo {
 public:
  echo() = default;
  echo(runtime& rt, gas::locality_id home, const T& initial);
  // Attaches to an echo object created in another process (gid learned out
  // of band); the first read pulls the replica from the home.
  explicit echo(gas::gid id) : id_(id) {}

  gas::gid id() const noexcept { return id_; }
  bool valid() const noexcept { return id_.valid(); }

  // Immediate optimistic read at the calling thread's locality.
  std::pair<T, std::uint64_t> read() const;

  // Split-phase commit; see echo_manager::commit.
  lco::future<bool> commit(std::uint64_t read_version, const T& value) const;

  // Read-modify-write with validation/retry; returns the committed value.
  // Blocks the calling ParalleX thread only on round trips, not on other
  // writers' compute.
  T update(const std::function<T(T)>& fn) const;

 private:
  gas::gid id_;
};

}  // namespace px::core

// ---------------------------------------------------------------------
// echo<T> implementation (needs the complete runtime type).

#include "core/runtime.hpp"

namespace px::core {

template <typename T>
echo<T>::echo(runtime& rt, gas::locality_id home, const T& initial)
    : id_(rt.echo_mgr().create(home, util::to_bytes(initial))) {}

template <typename T>
std::pair<T, std::uint64_t> echo<T>::read() const {
  locality* here = this_locality();
  PX_ASSERT_MSG(here != nullptr, "echo read outside a ParalleX thread");
  auto [bytes, version] = here->rt().echo_mgr().read(here->id(), id_);
  return {util::from_bytes<T>(bytes), version};
}

template <typename T>
lco::future<bool> echo<T>::commit(std::uint64_t read_version,
                                  const T& value) const {
  locality* here = this_locality();
  PX_ASSERT_MSG(here != nullptr, "echo commit outside a ParalleX thread");
  return here->rt().echo_mgr().commit(*here, id_, read_version,
                                      util::to_bytes(value));
}

template <typename T>
T echo<T>::update(const std::function<T(T)>& fn) const {
  locality* here = this_locality();
  PX_ASSERT_MSG(here != nullptr, "echo update outside a ParalleX thread");
  echo_manager& mgr = here->rt().echo_mgr();

  // First attempt against the optimistic local replica; on staleness,
  // re-arm from the authoritative home copy (the home serializes commits,
  // so a bounded number of retries always lands).
  auto [value, version] = read();
  for (;;) {
    T proposed = fn(value);
    if (commit(version, proposed).get()) return proposed;
    auto fetched = mgr.fetch(*here, id_).get();
    value = util::from_bytes<T>(fetched.first);
    version = fetched.second;
  }
}

}  // namespace px::core
