// Percolation: prestaging work and data at a precious compute resource.
//
// Paper §2.2 "Percolation": "a workflow strategy that employs ancillary
// mechanisms to prestage data and tasks in high speed memory near the high
// cost compute elements when a task is to be performed" — a parcel variant
// whose target is *hardware*, devised (HTMT project) so the expensive
// execution unit never stalls on remote fetches and never pays the
// prestaging overhead itself (that is the difference from prefetching,
// which the compute element issues and accounts for).
//
// Model: each locality owns a bounded staging area (task slots standing in
// for staging memory).  percolate<Fn>(target, args...) (1) reserves a slot
// at the target — parking the *source* thread when the area is full, which
// is exactly the back-pressure a real prestaging engine applies upstream —
// (2) ships task+operands in one parcel, and (3) releases the slot at the
// target when the task retires.  The competing strategies measured by
// PERC-1 (demand fetch; compute-element-issued prefetch) are built from the
// ordinary apply/async API in the bench harness.
//
// Distributed mode: the slot table is per-process, so the semaphore a
// source acquires for a remote target is its *own* window of
// `staging_slots` credits toward that target (per-source back-pressure
// rather than one globally shared staging area — the owner check the
// single-address-space version never needed).  The retiring task therefore
// returns the credit to the *source* rank with a px.percolate_release
// parcel instead of releasing the count in its own process, which would
// leak the source's window shut within `staging_slots` percolations.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/action.hpp"
#include "core/locality.hpp"
#include "core/runtime.hpp"
#include "lco/lco.hpp"

namespace px::core {

struct percolation_stats {
  std::uint64_t tasks_percolated = 0;
  std::uint64_t slot_waits = 0;  // times a source stalled on a full area
};

class percolation_manager {
 public:
  percolation_manager(runtime& rt, unsigned staging_slots_per_locality);

  unsigned staging_slots() const noexcept { return slots_per_locality_; }

  // Reserves a staging slot at `target`; parks the calling ParalleX thread
  // when the area is full.
  void acquire_slot(gas::locality_id target);
  void release_slot(gas::locality_id target);

  void note_percolated() {
    tasks_.fetch_add(1, std::memory_order_relaxed);
  }
  percolation_stats stats() const;

 private:
  runtime& rt_;
  unsigned slots_per_locality_;
  std::vector<std::unique_ptr<lco::counting_semaphore>> slots_;
  std::atomic<std::uint64_t> tasks_{0};
  std::atomic<std::uint64_t> slot_waits_{0};
};

// Returns a staging credit to the source's window (runs at the source
// rank; the argument is the slot index, i.e. the target the credit was
// acquired for).
void percolate_release_action(std::uint32_t target);

namespace detail {

// Wraps the user task so the staging slot is released when the task
// retires, whatever Fn returns: in-process that is a direct semaphore
// release (same object either way); cross-process the credit parcels back
// to the source's window (see the header comment).
template <auto Fn, typename ArgsTuple>
struct percolate_wrapper;

template <auto Fn, typename... As>
struct percolate_wrapper<Fn, std::tuple<As...>> {
  using result_type = std::invoke_result_t<decltype(Fn), As...>;

  static void release(std::uint32_t src) {
    locality* here = this_locality();
    runtime& rt = here->rt();
    if (!rt.distributed() || src == here->id()) {
      rt.percolation_mgr().release_slot(here->id());
    } else {
      apply_from<&percolate_release_action>(
          *here, rt.locality_gid(src),
          static_cast<std::uint32_t>(here->id()));
    }
  }

  static result_type run(std::uint32_t src, As... args) {
    if constexpr (std::is_void_v<result_type>) {
      Fn(std::move(args)...);
      release(src);
    } else {
      result_type r = Fn(std::move(args)...);
      release(src);
      return r;
    }
  }
};

}  // namespace detail

// Prestages Fn(args...) at `target`; returns the completion future.  Must
// be called on a ParalleX thread (it may park for back-pressure).  When
// the target is a remote rank, register PX_REGISTER_PERCOLATABLE(Fn) at
// namespace scope so the wrapper's action id is minted at boot in every
// rank.
//
// GCC 12's -O2 inliner mis-tracks the source-rank prefix element ahead of
// vector-typed operands in the argument tuple and reports a spurious
// stringop-overflow out of the serialization copy; scoped off rather than
// restructuring the tuple around a diagnostics bug.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
template <auto Fn, typename... Args>
auto percolate(gas::locality_id target, Args&&... args) {
  locality* here = this_locality();
  PX_ASSERT_MSG(here != nullptr, "percolate outside a ParalleX thread");
  runtime& rt = here->rt();
  percolation_manager& pm = rt.percolation_mgr();
  pm.acquire_slot(target);
  pm.note_percolated();
  using W = detail::percolate_wrapper<Fn, typename action<Fn>::args_tuple>;
  return async_from<&W::run>(*here, rt.locality_gid(target),
                             static_cast<std::uint32_t>(here->id()),
                             std::forward<Args>(args)...);
}
#pragma GCC diagnostic pop

// Eager registration of Fn's percolation wrapper (cross-process spans).
#define PX_REGISTER_PERCOLATABLE_AS(fn, name)                               \
  namespace {                                                               \
  [[maybe_unused]] const ::px::parcel::action_id PX_DETAIL_CONCAT(          \
      px_percolatable_registration_, __COUNTER__) =                         \
      ::px::core::action<&::px::core::detail::percolate_wrapper<           \
          &fn, typename ::px::core::action<&fn>::args_tuple>::run>::       \
          ensure_registered(name);                                          \
  }
#define PX_REGISTER_PERCOLATABLE(fn) \
  PX_REGISTER_PERCOLATABLE_AS(fn, "px.percolate." #fn)

}  // namespace px::core
