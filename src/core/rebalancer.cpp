#include "core/rebalancer.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <string>
#include <utility>

#include "core/locality.hpp"
#include "core/runtime.hpp"
#include "introspect/query.hpp"
#include "lco/lco.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"

namespace px::core {

using util::now_ns;

rebalancer::rebalancer(runtime& rt, rebalancer_params params)
    : rt_(rt), params_(params) {
  if (rt_.distributed() && params_.enabled) {
    rank_depths_ =
        std::make_unique<std::atomic<std::uint64_t>[]>(rt_.num_localities());
    for (std::size_t i = 0; i < rt_.num_localities(); ++i) {
      rank_depths_[i].store(0, std::memory_order_relaxed);
    }
  }
}

void rebalancer::poll() noexcept {
  if (!params_.enabled) return;
  const std::int64_t now = now_ns();
  std::int64_t last = last_poll_ns_.load(std::memory_order_relaxed);
  auto interval_ns = static_cast<std::int64_t>(params_.interval_us) * 1000;
  if (rt_.distributed()) interval_ns *= params_.dist_interval_mult;
  if (now - last < interval_ns) return;
  if (!last_poll_ns_.compare_exchange_strong(last, now,
                                             std::memory_order_relaxed)) {
    return;  // a concurrent poller took this slot
  }
  if (rt_.distributed()) {
    poll_distributed();
    return;
  }
  if (!round_lock_.try_lock()) return;  // a round is still running
  rebalance_once();
  round_lock_.unlock();
}

void rebalancer::poll_distributed() {
  // A one-rank machine has nowhere to push — and with zero probes to
  // send, a claimed round latch would never be released by a reply.
  if (rt_.num_localities() < 2) return;
  // Fire only while this rank has a real backlog: an idle rank owns
  // nothing worth pushing (decisions are push-only), and the gate is what
  // lets the machine quiesce — once the backlog drains, no new round
  // fires and the termination collective can settle.
  if (rt_.here().sched().ready_estimate() < params_.min_depth) return;
  bool expected = false;
  if (!round_active_.compare_exchange_strong(expected, true)) return;
  start_round();
}

void rebalancer::release_round_slot() {
  if (round_slots_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    round_active_.store(false, std::memory_order_release);
  }
}

void rebalancer::start_round() {
  const std::size_t n = rt_.num_localities();
  const auto rank = rt_.rank();
  if (depth_counter_gids_.empty()) {
    // Counter gids replay identically in every process at boot, so the
    // path -> gid resolution is purely local even for remote ranks.
    depth_counter_gids_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto id = rt_.introspection().find(
          "runtime/loc" + std::to_string(i) + "/sched/ready_depth");
      PX_ASSERT_MSG(id.has_value(), "ready_depth counter missing");
      depth_counter_gids_.push_back(*id);
    }
  }

  // Observe: our own depth is a local read; every remote rank's is a
  // px.query_counter round trip whose reply lands in note_depth.  The
  // probes overlap; the last reply advances the round.
  rank_depths_[rank].store(rt_.here().sched().ready_estimate(),
                           std::memory_order_relaxed);
  probes_pending_.store(static_cast<std::uint32_t>(n - 1),
                        std::memory_order_release);
  for (std::size_t i = 0; i < n; ++i) {
    if (static_cast<gas::locality_id>(i) == rank) continue;
    introspect::query_counter_cb(
        rt_.here(), depth_counter_gids_[i],
        [this, i](std::uint64_t d) { note_depth(i, d); });
  }
}

void rebalancer::note_depth(std::size_t idx, std::uint64_t depth) {
  rank_depths_[idx].store(
      depth == introspect::no_such_counter ? 0 : depth,
      std::memory_order_relaxed);
  if (probes_pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    finish_round();
  }
}

// Decide + act: runs inline in the last probe reply's delivery, so
// everything here must stay non-blocking.
void rebalancer::finish_round() {
  const std::size_t n = rt_.num_localities();
  const auto rank = rt_.rank();
  rounds_.fetch_add(1, std::memory_order_relaxed);
  have_samples_.store(true, std::memory_order_release);

  std::uint64_t total = 0, max_depth = 0;
  gas::locality_id deepest = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t d = rank_depths_[i].load(std::memory_order_relaxed);
    total += d;
    if (d > max_depth) {
      max_depth = d;
      deepest = static_cast<gas::locality_id>(i);
    }
  }
  const double mean = static_cast<double>(total) / static_cast<double>(n);
  const double imbalance =
      mean > 0.0 ? static_cast<double>(max_depth) / mean : 0.0;
  last_imbalance_milli_.store(static_cast<std::uint64_t>(imbalance * 1000.0),
                              std::memory_order_relaxed);

  // Push-only: act only when *we* are the overloaded rank (we own the hot
  // objects; every rank runs this same policy).
  if (deepest != rank || max_depth < params_.min_depth ||
      imbalance < params_.threshold) {
    round_active_.store(false, std::memory_order_release);
    return;
  }
  triggers_.fetch_add(1, std::memory_order_relaxed);

  std::vector<std::pair<std::uint64_t, gas::locality_id>> dests;
  for (std::size_t i = 0; i < n; ++i) {
    const auto lid = static_cast<gas::locality_id>(i);
    if (lid == rank) continue;
    const std::uint64_t d = rank_depths_[i].load(std::memory_order_relaxed);
    if (static_cast<double>(d) <= mean) dests.emplace_back(d, lid);
  }
  if (dests.empty()) {
    round_active_.store(false, std::memory_order_release);
    return;
  }
  std::sort(dests.begin(), dests.end());

  // Act: ship the hottest migratable objects away through the async
  // px.migrate_object handoff.  The sync-reject path (untagged, missing,
  // already mid-flight) burns a heat-list slot, not migration budget —
  // the list is oversampled for exactly that.  When heat names fewer
  // candidates than the budget (a latency-bound backlog delivers too
  // rarely for the 1-in-8 sampler to chart it), fall back to shedding any
  // migratable resident: on a rank this imbalanced, moving something
  // beats moving nothing.  Each issued handoff holds one round slot; its
  // ack (or the sentinel drop below, if nothing issued) re-arms the latch.
  round_slots_.store(1, std::memory_order_release);  // sentinel
  std::vector<gas::gid> candidates;
  for (const auto& [id, heat] :
       rt_.here().hottest_objects(4u * params_.max_migrations)) {
    (void)heat;
    candidates.push_back(id);
  }
  for (const auto id : rt_.migratable_residents(4u * params_.max_migrations)) {
    candidates.push_back(id);  // dup retries sync-reject on the claim; cheap
  }
  std::uint32_t issued = 0;
  std::size_t next_dest = 0;
  for (const auto id : candidates) {
    if (issued >= params_.max_migrations) break;
    const gas::locality_id to = dests[next_dest % dests.size()].second;
    round_slots_.fetch_add(1, std::memory_order_relaxed);
    const bool accepted = rt_.migrate_gid_async(id, to, [this](bool ok) {
      if (ok) migrated_.fetch_add(1, std::memory_order_relaxed);
      release_round_slot();
    });
    if (accepted) {
      ++issued;
      ++next_dest;
    } else {
      round_slots_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  if (issued > 0) {
    PX_LOG_DEBUG("rebalancer: shipping %u hot objects off rank %u "
                 "(imbalance %.2f, depth %llu)",
                 issued, rank, imbalance,
                 static_cast<unsigned long long>(max_depth));
  }
  release_round_slot();  // drop the sentinel
}

void rebalancer::rebalance_once() {
  const std::size_t n = rt_.num_localities();
  if (n < 2) return;

  // Freshen every monitor (the overloaded locality never runs its own
  // idle hook), then read instantaneous depths: acting on a stale signal
  // would migrate objects *toward* yesterday's idle site.
  std::uint64_t total = 0, max_depth = 0;
  gas::locality_id deepest = 0;
  for (std::size_t i = 0; i < n; ++i) {
    rt_.monitor_at(static_cast<gas::locality_id>(i)).tick();
    const std::uint64_t d =
        rt_.at(static_cast<gas::locality_id>(i)).sched().ready_estimate();
    total += d;
    if (d > max_depth) {
      max_depth = d;
      deepest = static_cast<gas::locality_id>(i);
    }
  }
  rounds_.fetch_add(1, std::memory_order_relaxed);

  const double mean =
      static_cast<double>(total) / static_cast<double>(n);
  const double imbalance =
      mean > 0.0 ? static_cast<double>(max_depth) / mean : 0.0;
  last_imbalance_milli_.store(static_cast<std::uint64_t>(imbalance * 1000.0),
                              std::memory_order_relaxed);
  if (max_depth < params_.min_depth || imbalance < params_.threshold) return;
  triggers_.fetch_add(1, std::memory_order_relaxed);

  // Every locality below the mean is an eligible destination, shallowest
  // first; migrations cycle across them so one idle site does not absorb
  // the entire hot spot (which would just move the imbalance).
  std::vector<std::pair<std::uint64_t, gas::locality_id>> dests;
  for (std::size_t i = 0; i < n; ++i) {
    const auto lid = static_cast<gas::locality_id>(i);
    if (lid == deepest) continue;
    const std::uint64_t d = rt_.at(lid).sched().ready_estimate();
    if (static_cast<double>(d) <= mean) dests.emplace_back(d, lid);
  }
  if (dests.empty()) return;
  std::sort(dests.begin(), dests.end());

  // Oversample the heat list: entries for objects that already migrated
  // away linger (cooling) in the table; rebalance_migrate rejects them
  // (owner != deepest), so they cost a directory lookup but never a slot
  // of the migration budget — and never yank an object off the innocent
  // locality it moved to.
  const auto hot =
      rt_.at(deepest).hottest_objects(4u * params_.max_migrations);
  std::uint32_t moved = 0;
  std::size_t next_dest = 0;
  for (const auto& [id, heat] : hot) {
    (void)heat;
    if (moved >= params_.max_migrations) break;
    const gas::locality_id to = dests[next_dest % dests.size()].second;
    if (rt_.rebalance_migrate(id, deepest, to)) {
      ++moved;
      ++next_dest;
    }
  }
  if (moved > 0) {
    migrated_.fetch_add(moved, std::memory_order_relaxed);
    PX_LOG_DEBUG("rebalancer: moved %u hot objects off L%u "
                 "(imbalance %.2f, depth %llu)",
                 moved, deepest, imbalance,
                 static_cast<unsigned long long>(max_depth));
  }
}

gas::locality_id rebalancer::place(
    const std::vector<gas::locality_id>& span, std::uint64_t rr) {
  PX_ASSERT_MSG(!span.empty(), "placement over an empty span");
  const gas::locality_id fallback = span[rr % span.size()];
  if (!params_.enabled || span.size() < 2) return fallback;
  // Distributed: remote depths come from the round fibers' last samples
  // (a live read would cost a parcel round trip per spawn); until a first
  // round has run there is nothing to steer by, so stay round-robin.
  const bool dist = rt_.distributed();
  if (dist && !have_samples_.load(std::memory_order_acquire)) return fallback;
  // Least-loaded placement over the span; round-robin breaks ties so a
  // balanced span degenerates to exactly the old static behaviour.  One
  // pass, one depth read per locality: re-reading the (constantly moving)
  // depths to pick among ties would race its own first scan.  Depths are
  // cached on the stack for typical spans — this runs per spawn_any, and
  // an allocator round trip per task would dwarf the fetch_add it
  // replaces.
  constexpr std::size_t kStackSpan = 64;
  std::uint64_t stack_depths[kStackSpan];
  std::vector<std::uint64_t> heap_depths;
  std::uint64_t* depths = stack_depths;
  if (span.size() > kStackSpan) {
    heap_depths.resize(span.size());
    depths = heap_depths.data();
  }
  std::uint64_t best = ~0ull;
  std::size_t ties = 0;
  for (std::size_t i = 0; i < span.size(); ++i) {
    depths[i] = dist && span[i] != rt_.rank()
                    ? rank_depths_[span[i]].load(std::memory_order_relaxed)
                    : rt_.at(span[i]).sched().ready_estimate();
    if (depths[i] < best) {
      best = depths[i];
      ties = 1;
    } else if (depths[i] == best) {
      ++ties;
    }
  }
  std::size_t pick = rr % ties;
  gas::locality_id chosen = fallback;
  for (std::size_t i = 0; i < span.size(); ++i) {
    if (depths[i] == best && pick-- == 0) {
      chosen = span[i];
      break;
    }
  }
  if (chosen != fallback) redirects_.fetch_add(1, std::memory_order_relaxed);
  return chosen;
}

rebalancer_stats rebalancer::stats() const {
  rebalancer_stats s;
  s.rounds = rounds_.load(std::memory_order_relaxed);
  s.triggers = triggers_.load(std::memory_order_relaxed);
  s.objects_migrated = migrated_.load(std::memory_order_relaxed);
  s.placement_redirects = redirects_.load(std::memory_order_relaxed);
  s.last_imbalance =
      static_cast<double>(
          last_imbalance_milli_.load(std::memory_order_relaxed)) /
      1000.0;
  return s;
}

}  // namespace px::core
