#include "core/rebalancer.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <utility>

#include "core/locality.hpp"
#include "core/runtime.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"

namespace px::core {

using util::now_ns;

rebalancer::rebalancer(runtime& rt, rebalancer_params params)
    : rt_(rt), params_(params) {}

void rebalancer::poll() noexcept {
  if (!params_.enabled) return;
  const std::int64_t now = now_ns();
  std::int64_t last = last_poll_ns_.load(std::memory_order_relaxed);
  const auto interval_ns =
      static_cast<std::int64_t>(params_.interval_us) * 1000;
  if (now - last < interval_ns) return;
  if (!last_poll_ns_.compare_exchange_strong(last, now,
                                             std::memory_order_relaxed)) {
    return;  // a concurrent poller took this slot
  }
  if (!round_lock_.try_lock()) return;  // a round is still running
  rebalance_once();
  round_lock_.unlock();
}

void rebalancer::rebalance_once() {
  const std::size_t n = rt_.num_localities();
  if (n < 2) return;

  // Freshen every monitor (the overloaded locality never runs its own
  // idle hook), then read instantaneous depths: acting on a stale signal
  // would migrate objects *toward* yesterday's idle site.
  std::uint64_t total = 0, max_depth = 0;
  gas::locality_id deepest = 0;
  for (std::size_t i = 0; i < n; ++i) {
    rt_.monitor_at(static_cast<gas::locality_id>(i)).tick();
    const std::uint64_t d =
        rt_.at(static_cast<gas::locality_id>(i)).sched().ready_estimate();
    total += d;
    if (d > max_depth) {
      max_depth = d;
      deepest = static_cast<gas::locality_id>(i);
    }
  }
  rounds_.fetch_add(1, std::memory_order_relaxed);

  const double mean =
      static_cast<double>(total) / static_cast<double>(n);
  const double imbalance =
      mean > 0.0 ? static_cast<double>(max_depth) / mean : 0.0;
  last_imbalance_milli_.store(static_cast<std::uint64_t>(imbalance * 1000.0),
                              std::memory_order_relaxed);
  if (max_depth < params_.min_depth || imbalance < params_.threshold) return;
  triggers_.fetch_add(1, std::memory_order_relaxed);

  // Every locality below the mean is an eligible destination, shallowest
  // first; migrations cycle across them so one idle site does not absorb
  // the entire hot spot (which would just move the imbalance).
  std::vector<std::pair<std::uint64_t, gas::locality_id>> dests;
  for (std::size_t i = 0; i < n; ++i) {
    const auto lid = static_cast<gas::locality_id>(i);
    if (lid == deepest) continue;
    const std::uint64_t d = rt_.at(lid).sched().ready_estimate();
    if (static_cast<double>(d) <= mean) dests.emplace_back(d, lid);
  }
  if (dests.empty()) return;
  std::sort(dests.begin(), dests.end());

  // Oversample the heat list: entries for objects that already migrated
  // away linger (cooling) in the table; rebalance_migrate rejects them
  // (owner != deepest), so they cost a directory lookup but never a slot
  // of the migration budget — and never yank an object off the innocent
  // locality it moved to.
  const auto hot =
      rt_.at(deepest).hottest_objects(4u * params_.max_migrations);
  std::uint32_t moved = 0;
  std::size_t next_dest = 0;
  for (const auto& [id, heat] : hot) {
    (void)heat;
    if (moved >= params_.max_migrations) break;
    const gas::locality_id to = dests[next_dest % dests.size()].second;
    if (rt_.rebalance_migrate(id, deepest, to)) {
      ++moved;
      ++next_dest;
    }
  }
  if (moved > 0) {
    migrated_.fetch_add(moved, std::memory_order_relaxed);
    PX_LOG_DEBUG("rebalancer: moved %u hot objects off L%u "
                 "(imbalance %.2f, depth %llu)",
                 moved, deepest, imbalance,
                 static_cast<unsigned long long>(max_depth));
  }
}

gas::locality_id rebalancer::place(
    const std::vector<gas::locality_id>& span, std::uint64_t rr) {
  const gas::locality_id fallback = span[rr % span.size()];
  if (!params_.enabled || span.size() < 2) return fallback;
  // Least-loaded placement over the span; round-robin breaks ties so a
  // balanced span degenerates to exactly the old static behaviour.  One
  // pass, one depth read per locality: re-reading the (constantly moving)
  // depths to pick among ties would race its own first scan.  Depths are
  // cached on the stack for typical spans — this runs per spawn_any, and
  // an allocator round trip per task would dwarf the fetch_add it
  // replaces.
  constexpr std::size_t kStackSpan = 64;
  std::uint64_t stack_depths[kStackSpan];
  std::vector<std::uint64_t> heap_depths;
  std::uint64_t* depths = stack_depths;
  if (span.size() > kStackSpan) {
    heap_depths.resize(span.size());
    depths = heap_depths.data();
  }
  std::uint64_t best = ~0ull;
  std::size_t ties = 0;
  for (std::size_t i = 0; i < span.size(); ++i) {
    depths[i] = rt_.at(span[i]).sched().ready_estimate();
    if (depths[i] < best) {
      best = depths[i];
      ties = 1;
    } else if (depths[i] == best) {
      ++ties;
    }
  }
  std::size_t pick = rr % ties;
  gas::locality_id chosen = fallback;
  for (std::size_t i = 0; i < span.size(); ++i) {
    if (depths[i] == best && pick-- == 0) {
      chosen = span[i];
      break;
    }
  }
  if (chosen != fallback) redirects_.fetch_add(1, std::memory_order_relaxed);
  return chosen;
}

rebalancer_stats rebalancer::stats() const {
  rebalancer_stats s;
  s.rounds = rounds_.load(std::memory_order_relaxed);
  s.triggers = triggers_.load(std::memory_order_relaxed);
  s.objects_migrated = migrated_.load(std::memory_order_relaxed);
  s.placement_redirects = redirects_.load(std::memory_order_relaxed);
  s.last_imbalance =
      static_cast<double>(
          last_imbalance_milli_.load(std::memory_order_relaxed)) /
      1000.0;
  return s;
}

}  // namespace px::core
