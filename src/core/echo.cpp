#include "core/echo.hpp"

#include <mutex>

#include "core/action.hpp"
#include "core/runtime.hpp"
#include "util/assert.hpp"

namespace px::core {

// --------------------------------------------------------- echo actions
//
// The echo protocol's wire surface: three plain actions.  `commit` runs at
// the home (the version authority), `update` at every replica, `fetch`
// serves authoritative re-reads after a stale commit.
namespace echo_actions {

bool commit(std::uint64_t gid_bits, std::uint64_t read_version,
            std::vector<std::byte> value) {
  locality* here = this_locality();
  return here->rt().echo_mgr().home_commit(gas::gid::from_bits(gid_bits),
                                           read_version, std::move(value));
}

void update(std::uint64_t gid_bits, std::uint64_t version,
            std::vector<std::byte> value) {
  locality* here = this_locality();
  here->rt().echo_mgr().replica_update(
      here->id(), gas::gid::from_bits(gid_bits), version, std::move(value));
}

std::pair<std::vector<std::byte>, std::uint64_t> fetch(
    std::uint64_t gid_bits) {
  locality* here = this_locality();
  return here->rt().echo_mgr().home_read(gas::gid::from_bits(gid_bits));
}

}  // namespace echo_actions

PX_REGISTER_ACTION(px::core::echo_actions::commit)
PX_REGISTER_ACTION(px::core::echo_actions::update)
PX_REGISTER_ACTION(px::core::echo_actions::fetch)

// --------------------------------------------------------- echo_manager

echo_manager::echo_manager(runtime& rt)
    : rt_(rt), tables_(rt.num_localities()) {}

echo_manager::table& echo_manager::table_at(gas::locality_id at) {
  PX_ASSERT(at < tables_.size());
  return *tables_[at];
}

gas::gid echo_manager::create(gas::locality_id home,
                              std::vector<std::byte> initial) {
  // Distributed: the home rank's AGAS shard (and its sequence counter) is
  // the single authority for gids homed there, so creation must run in the
  // home rank's process; other ranks attach by gid (echo<T>(gid)) and pull
  // their first replica through the fetch-on-first-read path.
  PX_ASSERT_MSG(!rt_.distributed() || home == rt_.rank(),
                "distributed echo objects must be created at their home "
                "rank; attach elsewhere with echo<T>(gid)");
  const gas::gid id = rt_.gas().allocate(gas::gid_kind::data, home);
  rt_.gas().bind(id, home);
  // Control-plane setup: implant the replica tree (paper: "the tree of
  // equivalent locations") at every locality this process hosts.
  for (std::size_t i = 0; i < tables_.size(); ++i) {
    if (rt_.distributed() && i != rt_.rank()) continue;
    table& t = *tables_[i];
    std::lock_guard lock(t.lock);
    t.entries.emplace(id, replica{initial, 1});
  }
  return id;
}

echo_manager::replica echo_manager::read_replica(gas::locality_id at,
                                                 gas::gid id) {
  table& t = table_at(at);
  std::lock_guard lock(t.lock);
  const auto it = t.entries.find(id);
  PX_ASSERT_MSG(it != t.entries.end(), "echo read of unknown object");
  return it->second;
}

std::pair<std::vector<std::byte>, std::uint64_t> echo_manager::read(
    gas::locality_id at, gas::gid id) {
  reads_.fetch_add(1, std::memory_order_relaxed);
  {
    table& t = table_at(at);
    std::lock_guard lock(t.lock);
    const auto it = t.entries.find(id);
    if (it != t.entries.end()) return {it->second.value, it->second.version};
  }
  // First touch of an object created in another process (gid attach): pull
  // the authoritative copy once and implant it — subsequent reads are the
  // usual zero-latency optimistic replica hits.  Blocks the calling fiber
  // on the round trip, like any split-phase wait.
  auto fetched = fetch(rt_.at(at), id).get();
  replica_update(at, id, fetched.second, fetched.first);
  return fetched;
}

lco::future<bool> echo_manager::commit(locality& from, gas::gid id,
                                       std::uint64_t read_version,
                                       std::vector<std::byte> new_value) {
  return async_from<&echo_actions::commit>(from,
                                           rt_.locality_gid(id.home()),
                                           id.bits(), read_version,
                                           std::move(new_value));
}

lco::future<std::pair<std::vector<std::byte>, std::uint64_t>>
echo_manager::fetch(locality& from, gas::gid id) {
  fetches_.fetch_add(1, std::memory_order_relaxed);
  return async_from<&echo_actions::fetch>(from, rt_.locality_gid(id.home()),
                                          id.bits());
}

bool echo_manager::home_commit(gas::gid id, std::uint64_t read_version,
                               std::vector<std::byte> new_value) {
  const gas::locality_id home = id.home();
  std::uint64_t new_version = 0;
  {
    table& t = table_at(home);
    std::lock_guard lock(t.lock);
    const auto it = t.entries.find(id);
    PX_ASSERT_MSG(it != t.entries.end(), "echo commit to unknown object");
    if (it->second.version != read_version) {
      commits_stale_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    it->second.version += 1;
    it->second.value = new_value;
    new_version = it->second.version;
  }
  commits_ok_.fetch_add(1, std::memory_order_relaxed);
  // Propagate down the replica tree.  Replicas apply monotonically by
  // version, so reordered updates cannot regress a copy.
  locality& here = rt_.at(home);
  for (std::size_t i = 0; i < tables_.size(); ++i) {
    if (i == home) continue;
    update_broadcasts_.fetch_add(1, std::memory_order_relaxed);
    apply_from<&echo_actions::update>(
        here, rt_.locality_gid(static_cast<gas::locality_id>(i)), id.bits(),
        new_version, new_value);
  }
  return true;
}

void echo_manager::replica_update(gas::locality_id at, gas::gid id,
                                  std::uint64_t version,
                                  std::vector<std::byte> value) {
  table& t = table_at(at);
  std::lock_guard lock(t.lock);
  // Insert-if-absent: an update broadcast (or a fetch-on-first-read) may be
  // this rank's first sight of an object created in another process.
  const auto [it, inserted] = t.entries.try_emplace(id);
  if (inserted || version > it->second.version) {
    it->second.version = version;
    it->second.value = std::move(value);
  }
}

std::pair<std::vector<std::byte>, std::uint64_t> echo_manager::home_read(
    gas::gid id) {
  replica r = read_replica(id.home(), id);
  return {std::move(r.value), r.version};
}

echo_stats echo_manager::stats() const {
  echo_stats s;
  s.reads = reads_.load(std::memory_order_relaxed);
  s.commits_ok = commits_ok_.load(std::memory_order_relaxed);
  s.commits_stale = commits_stale_.load(std::memory_order_relaxed);
  s.update_broadcasts = update_broadcasts_.load(std::memory_order_relaxed);
  s.fetches = fetches_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace px::core
