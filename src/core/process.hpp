// Parallel processes: first-class process objects spanning localities.
//
// Paper §2.2 "Parallel Processes": a process "may have many parts, either
// subprocesses or threads, running concurrently ... and distributed across
// many execution sites", and — being object oriented — new work is created
// by messages incident on the process.  Here a process is a gid-addressable
// object whose child threads may run on any locality in its span; its
// termination event is an LCO detected by activity counting (the creator
// holds a token until seal(), children hold one each, the event fires when
// the count drains).
//
// Distributed mode: the span may name remote ranks.  Closure children
// (spawn/spawn_any with a std::function) stay local-only — closures cannot
// cross a process boundary — but the *typed* children spawn_on<Fn>/
// spawn_any<Fn> place work on any rank of the span: the token is taken at
// the primary before the parcel ships and a px.process_credit parcel
// returns it when the child retires (the Dijkstra–Scholten credit scheme
// over parcels).  Typed spawns must be issued from the primary rank (the
// token counter lives in the process object there), and — as with every
// cross-process action — Fn's wrapper must be registered eagerly in every
// rank with PX_REGISTER_PROCESS_CHILD(Fn) so action tables match at
// bootstrap.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <tuple>
#include <vector>

#include "core/action.hpp"
#include "core/locality.hpp"
#include "core/runtime.hpp"
#include "lco/lco.hpp"

namespace px::core {

// Returns the creditor's token for a typed remote child: runs at the
// process's primary rank (the parcel's destination is the process gid).
void process_credit_action(std::uint64_t proc_bits);

namespace detail {

// Wraps a typed child so the activity token flows back to the primary when
// the child retires, wherever it ran.
template <auto Fn, typename ArgsTuple>
struct process_child;

template <auto Fn, typename... As>
struct process_child<Fn, std::tuple<As...>> {
  static void run(std::uint64_t proc_bits, As... args) {
    Fn(std::move(args)...);
    core::apply<&process_credit_action>(gas::gid::from_bits(proc_bits),
                                        proc_bits);
  }
};

}  // namespace detail

class process : public std::enable_shared_from_this<process> {
 public:
  process(runtime& rt, gas::gid id, std::vector<gas::locality_id> span);

  gas::gid id() const noexcept { return id_; }
  const std::vector<gas::locality_id>& span() const noexcept { return span_; }
  gas::locality_id primary() const noexcept { return span_.front(); }

  // Spawns a tracked child thread at `where` (must be in the span).  Legal
  // from any thread, including the process's own children (nesting).
  void spawn(gas::locality_id where, std::function<void()> fn);

  // Placement over the span: least-loaded locality when the runtime's
  // rebalancer is enabled, round-robin otherwise (rebalancer::place).
  // Closure-carrying, so in distributed mode candidates are restricted to
  // this rank; use spawn_any<Fn> to place across ranks.
  void spawn_any(std::function<void()> fn);

  // Typed tracked child at `where` (any rank of the span).  Local targets
  // run like spawn(); remote targets ship Fn(args...) as a parcel whose
  // completion returns the activity token with a px.process_credit parcel.
  // Must be issued at the primary.  Register PX_REGISTER_PROCESS_CHILD(Fn)
  // at namespace scope when the span crosses processes.
  template <auto Fn, typename... Args>
  void spawn_on(gas::locality_id where, Args&&... args) {
    PX_ASSERT_MSG(
        std::find(span_.begin(), span_.end(), where) != span_.end(),
        "spawn outside the process span");
    if (!rt_.distributed() || where == rt_.rank()) {
      auto args_tup = typename action<Fn>::args_tuple(
          std::forward<Args>(args)...);
      spawn(where, [args_tup = std::move(args_tup)]() mutable {
        std::apply(Fn, std::move(args_tup));
      });
      return;
    }
    PX_ASSERT_MSG(rt_.rank() == primary(),
                  "typed cross-rank spawns must be issued at the primary "
                  "(the activity counter lives there)");
    const std::int64_t prev =
        outstanding_.fetch_add(1, std::memory_order_acq_rel);
    PX_ASSERT_MSG(prev > 0, "spawn on a terminated process");
    spawned_.fetch_add(1, std::memory_order_relaxed);
    using W = detail::process_child<Fn, typename action<Fn>::args_tuple>;
    apply_from<&W::run>(rt_.here(), rt_.locality_gid(where), id_.bits(),
                        std::forward<Args>(args)...);
  }

  // spawn_on through rebalancer placement over the whole span (remote
  // depths come from the distributed sampling rounds).
  template <auto Fn, typename... Args>
  void spawn_any(Args&&... args) {
    const std::uint64_t slot =
        next_placement_.fetch_add(1, std::memory_order_relaxed);
    spawn_on<Fn>(rt_.balancer().place(span_, slot),
                 std::forward<Args>(args)...);
  }

  // Invokes action Fn(args...) on every locality of the span (untracked
  // fire-and-forget parcels; use spawn for tracked work).
  template <auto Fn, typename... Args>
  void broadcast(locality& from, Args&&... args) {
    for (const auto where : span_) {
      apply_from<Fn>(from, rt_.locality_gid(where), args...);
    }
  }

  // Drops the creator's activity token: after this, the process terminates
  // when the last child (and its descendants) retires.
  void seal();

  // Fires once the process has terminated.
  lco::future<void> terminated() const { return done_.get_future(); }

  std::uint64_t children_spawned() const noexcept {
    return spawned_.load(std::memory_order_relaxed);
  }

 private:
  friend void process_credit_action(std::uint64_t proc_bits);

  void complete_one();

  runtime& rt_;
  gas::gid id_;
  std::vector<gas::locality_id> span_;
  std::atomic<std::int64_t> outstanding_{1};  // creator token
  std::atomic<std::uint64_t> spawned_{0};
  std::atomic<std::uint64_t> next_placement_{0};
  lco::promise<void> done_;
};

// Creates a process spanning `span` (primary = span.front()), binds its gid
// and registers the instance at the primary locality.  Distributed: the
// primary must be this rank; remote span members are parcel targets only.
std::shared_ptr<process> create_process(runtime& rt,
                                        std::vector<gas::locality_id> span);

// Eagerly registers Fn's tracked-child wrapper action at static-init time.
// Required for any Fn given to spawn_on<Fn>/spawn_any<Fn> over a span that
// crosses processes: action ids are positional, so every rank must mint
// the wrapper's id at boot, not at first use on one rank.
#define PX_REGISTER_PROCESS_CHILD_AS(fn, name)                              \
  namespace {                                                               \
  [[maybe_unused]] const ::px::parcel::action_id PX_DETAIL_CONCAT(          \
      px_pchild_registration_, __COUNTER__) =                               \
      ::px::core::action<&::px::core::detail::process_child<               \
          &fn, typename ::px::core::action<&fn>::args_tuple>::run>::       \
          ensure_registered(name);                                          \
  }
#define PX_REGISTER_PROCESS_CHILD(fn) \
  PX_REGISTER_PROCESS_CHILD_AS(fn, "px.pchild." #fn)

}  // namespace px::core
