// Parallel processes: first-class process objects spanning localities.
//
// Paper §2.2 "Parallel Processes": a process "may have many parts, either
// subprocesses or threads, running concurrently ... and distributed across
// many execution sites", and — being object oriented — new work is created
// by messages incident on the process.  Here a process is a gid-addressable
// object whose child threads may run on any locality in its span; its
// termination event is an LCO detected by activity counting (the creator
// holds a token until seal(), children hold one each, the event fires when
// the count drains — sound because counts live in one address space; a
// distributed build would use Dijkstra–Scholten credits over parcels).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/action.hpp"
#include "core/locality.hpp"
#include "core/runtime.hpp"
#include "lco/lco.hpp"

namespace px::core {

class process : public std::enable_shared_from_this<process> {
 public:
  process(runtime& rt, gas::gid id, std::vector<gas::locality_id> span);

  gas::gid id() const noexcept { return id_; }
  const std::vector<gas::locality_id>& span() const noexcept { return span_; }
  gas::locality_id primary() const noexcept { return span_.front(); }

  // Spawns a tracked child thread at `where` (must be in the span).  Legal
  // from any thread, including the process's own children (nesting).
  void spawn(gas::locality_id where, std::function<void()> fn);

  // Placement over the span: least-loaded locality when the runtime's
  // rebalancer is enabled, round-robin otherwise (rebalancer::place).
  void spawn_any(std::function<void()> fn);

  // Invokes action Fn(args...) on every locality of the span (untracked
  // fire-and-forget parcels; use spawn for tracked work).
  template <auto Fn, typename... Args>
  void broadcast(locality& from, Args&&... args) {
    for (const auto where : span_) {
      apply_from<Fn>(from, rt_.locality_gid(where), args...);
    }
  }

  // Drops the creator's activity token: after this, the process terminates
  // when the last child (and its descendants) retires.
  void seal();

  // Fires once the process has terminated.
  lco::future<void> terminated() const { return done_.get_future(); }

  std::uint64_t children_spawned() const noexcept {
    return spawned_.load(std::memory_order_relaxed);
  }

 private:
  void complete_one();

  runtime& rt_;
  gas::gid id_;
  std::vector<gas::locality_id> span_;
  std::atomic<std::int64_t> outstanding_{1};  // creator token
  std::atomic<std::uint64_t> spawned_{0};
  std::atomic<std::uint64_t> next_placement_{0};
  lco::promise<void> done_;
};

// Creates a process spanning `span` (primary = span.front()), binds its gid
// and registers the instance at the primary locality.
std::shared_ptr<process> create_process(runtime& rt,
                                        std::vector<gas::locality_id> span);

}  // namespace px::core
