// Parallel processes: first-class process objects spanning localities.
//
// Paper §2.2 "Parallel Processes": a process "may have many parts, either
// subprocesses or threads, running concurrently ... and distributed across
// many execution sites", and — being object oriented — new work is created
// by messages incident on the process.  Here a process is a gid-addressable
// object whose child threads may run on any locality in its span; its
// termination event is an LCO detected by activity counting (the creator
// holds a token until seal(), children hold one each, the event fires when
// the count drains).
//
// Distributed mode: the span may name remote ranks.  Closure children
// (spawn/spawn_any with a std::function) stay local-only — closures cannot
// cross a process boundary — but the *typed* children spawn_on<Fn>/
// spawn_any<Fn> place work on any rank of the span: the token is taken at
// the primary before the parcel ships and a px.process_credit parcel
// returns it when the child retires (the Dijkstra–Scholten credit scheme
// over parcels).  Since PR 6 credits split per spawn edge
// (core/process_site.hpp): a typed child lands in its rank's
// process_site edge ledger, and may itself spawn tracked grandchildren
// through process_ref — splitting the credit covering itself instead of
// asking the primary — so the whole tree retires leaf-first and the
// primary's counter drains exactly once the last descendant does.  As with every
// cross-process action, Fn's wrapper must be registered eagerly in every
// rank with PX_REGISTER_PROCESS_CHILD(Fn) so action tables match at
// bootstrap.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <tuple>
#include <vector>

#include "core/action.hpp"
#include "core/locality.hpp"
#include "core/process_site.hpp"
#include "core/runtime.hpp"
#include "lco/lco.hpp"
#include "threads/scheduler.hpp"
#include "threads/thread.hpp"

namespace px::core {

// Returns `n` credits to the process's activity counter: runs at the
// primary rank (the parcel's destination is the process gid).
void process_credit_action(std::uint64_t proc_bits, std::uint64_t n);

// Returns `n` split credits to ledger `edge` of the rank that lent them
// (the parcel's destination is that rank's locality gid).
void process_site_credit_action(std::uint64_t proc_bits, std::uint64_t edge,
                                std::uint64_t n);

// Edge-ledger bookkeeping for a typed child running on this rank: enter
// before the body (records the credit owed upstream, returns the ledger
// id), leave after it (drains the ledger once its last local child and
// split credit retire, returning the owed credits up the Dijkstra–Scholten
// tree).
std::uint64_t process_site_enter(const child_ctx& ctx);
void process_site_leave(std::uint64_t proc_bits, std::uint64_t edge);

namespace detail {

// Publishes the tracked-child identity (process bits + credit-ledger edge)
// in the running fiber's descriptor, so process_ref can split this child's
// credit from anywhere in its call tree; restores the previous identity on
// exit.  Descriptor storage, not thread_local: a suspended fiber may
// resume on a different worker.
struct child_scope {
  explicit child_scope(std::uint64_t bits, std::uint64_t edge)
      : td_(threads::scheduler::self()) {
    PX_ASSERT_MSG(td_ != nullptr, "tracked child outside a ParalleX thread");
    saved_bits_ = td_->child_proc_bits;
    saved_edge_ = td_->child_edge;
    td_->child_proc_bits = bits;
    td_->child_edge = edge;
  }
  ~child_scope() {
    td_->child_proc_bits = saved_bits_;
    td_->child_edge = saved_edge_;
  }
  child_scope(const child_scope&) = delete;
  child_scope& operator=(const child_scope&) = delete;

 private:
  threads::thread_descriptor* td_;
  std::uint64_t saved_bits_;
  std::uint64_t saved_edge_;
};

// Wraps a typed child so the activity credit flows back up the tree when
// the child retires, wherever it ran.
template <auto Fn, typename ArgsTuple>
struct process_child;

template <auto Fn, typename... As>
struct process_child<Fn, std::tuple<As...>> {
  static void run(child_ctx ctx, As... args) {
    const std::uint64_t bits = ctx.proc_bits;
    const std::uint64_t edge = process_site_enter(ctx);
    {
      child_scope scope(bits, edge);
      Fn(std::move(args)...);
    }
    process_site_leave(bits, edge);
  }
};

}  // namespace detail

class process : public std::enable_shared_from_this<process> {
 public:
  process(runtime& rt, gas::gid id, std::vector<gas::locality_id> span);

  gas::gid id() const noexcept { return id_; }
  const std::vector<gas::locality_id>& span() const noexcept { return span_; }
  gas::locality_id primary() const noexcept { return span_.front(); }

  // Spawns a tracked child thread at `where` (must be in the span).  Legal
  // from any thread, including the process's own children (nesting).
  void spawn(gas::locality_id where, std::function<void()> fn);

  // Placement over the span: least-loaded locality when the runtime's
  // rebalancer is enabled, round-robin otherwise (rebalancer::place).
  // Closure-carrying, so in distributed mode candidates are restricted to
  // this rank; use spawn_any<Fn> to place across ranks.
  void spawn_any(std::function<void()> fn);

  // Typed tracked child at `where` (any rank of the span).  Local targets
  // run like spawn(); remote targets ship Fn(args...) as a parcel whose
  // completion returns the activity token with a px.process_credit parcel.
  // Must be issued at the primary.  Register PX_REGISTER_PROCESS_CHILD(Fn)
  // at namespace scope when the span crosses processes.
  template <auto Fn, typename... Args>
  void spawn_on(gas::locality_id where, Args&&... args) {
    PX_ASSERT_MSG(
        std::find(span_.begin(), span_.end(), where) != span_.end(),
        "spawn outside the process span");
    if (!rt_.distributed() || where == rt_.rank()) {
      auto args_tup = typename action<Fn>::args_tuple(
          std::forward<Args>(args)...);
      spawn(where, [args_tup = std::move(args_tup)]() mutable {
        std::apply(Fn, std::move(args_tup));
      });
      return;
    }
    PX_ASSERT_MSG(rt_.rank() == primary(),
                  "typed cross-rank spawns must be issued at the primary "
                  "(the activity counter lives there); remote children use "
                  "process_ref to split their rank's credit");
    const std::int64_t prev =
        outstanding_.fetch_add(1, std::memory_order_acq_rel);
    PX_ASSERT_MSG(prev > 0, "spawn on a terminated process");
    spawned_.fetch_add(1, std::memory_order_relaxed);
    using W = detail::process_child<Fn, typename action<Fn>::args_tuple>;
    apply_from<&W::run>(
        rt_.here(), rt_.locality_gid(where),
        child_ctx{id_.bits(), kProcessParentPrimary, kProcessNoEdge, span_},
        std::forward<Args>(args)...);
  }

  // spawn_on through rebalancer placement over the whole span (remote
  // depths come from the distributed sampling rounds).
  template <auto Fn, typename... Args>
  void spawn_any(Args&&... args) {
    const std::uint64_t slot =
        next_placement_.fetch_add(1, std::memory_order_relaxed);
    spawn_on<Fn>(rt_.balancer().place(span_, slot),
                 std::forward<Args>(args)...);
  }

  // Invokes action Fn(args...) on every locality of the span (untracked
  // fire-and-forget parcels; use spawn for tracked work).
  template <auto Fn, typename... Args>
  void broadcast(locality& from, Args&&... args) {
    for (const auto where : span_) {
      apply_from<Fn>(from, rt_.locality_gid(where), args...);
    }
  }

  // Drops the creator's activity token: after this, the process terminates
  // when the last child (and its descendants) retires.
  void seal();

  // Fires once the process has terminated.
  lco::future<void> terminated() const { return done_.get_future(); }

  std::uint64_t children_spawned() const noexcept {
    return spawned_.load(std::memory_order_relaxed);
  }

 private:
  friend void process_credit_action(std::uint64_t proc_bits, std::uint64_t n);

  void complete_one() { complete_n(1); }
  void complete_n(std::uint64_t n);

  runtime& rt_;
  gas::gid id_;
  std::vector<gas::locality_id> span_;
  std::atomic<std::int64_t> outstanding_{1};  // creator token
  std::atomic<std::uint64_t> spawned_{0};
  std::atomic<std::uint64_t> next_placement_{0};
  lco::promise<void> done_;
};

// Creates a process spanning `span` (primary = span.front()), binds its gid
// and registers the instance at the primary locality.  Distributed: the
// primary must be this rank; remote span members are parcel targets only.
std::shared_ptr<process> create_process(runtime& rt,
                                        std::vector<gas::locality_id> span);

// A process handle valid on ANY rank, addressed by the process gid's bits
// (which every typed child receives in its child_ctx).  At the primary it
// delegates to the process object; elsewhere it spawns tracked
// grandchildren by splitting the credit this rank's site ledger holds — so
// it may only be used from inside a tracked child (or its descendants)
// while that work is still active.  This is how remote children extend the
// process tree without a round trip to the primary.
class process_ref {
 public:
  process_ref(runtime& rt, std::uint64_t proc_bits)
      : rt_(rt), bits_(proc_bits) {
    const gas::gid id = gas::gid::from_bits(proc_bits);
    const gas::locality_id primary = id.home();
    if (!rt.distributed() || primary == rt.rank()) {
      local_ = std::static_pointer_cast<process>(
          rt.at(primary).get_object(id));
    }
  }

  // Typed tracked child at `where`; same span rules as process::spawn_on.
  template <auto Fn, typename... Args>
  void spawn_on(gas::locality_id where, Args&&... args) {
    if (local_ != nullptr) {
      local_->spawn_on<Fn>(where, std::forward<Args>(args)...);
      return;
    }
    auto [span, edge] = split_credit();
    PX_ASSERT_MSG(std::find(span.begin(), span.end(), where) != span.end(),
                  "spawn outside the process span");
    dispatch<Fn>(where, std::move(span), edge, std::forward<Args>(args)...);
  }

  // Rebalancer-steered placement over the span (like process::spawn_any).
  template <auto Fn, typename... Args>
  void spawn_any(Args&&... args) {
    if (local_ != nullptr) {
      local_->spawn_any<Fn>(std::forward<Args>(args)...);
      return;
    }
    auto [span, edge] = split_credit();
    auto& site = rt_.process_sites().site(bits_);
    std::uint64_t slot;
    {
      std::lock_guard g(site.lock);
      slot = site.next_placement++;
    }
    // Sequence the placement before the call: dispatch takes the span by
    // value, and an unsequenced std::move(span) argument may gut the
    // vector before place() reads it.
    const gas::locality_id where = rt_.balancer().place(span, slot);
    dispatch<Fn>(where, std::move(span), edge, std::forward<Args>(args)...);
  }

 private:
  // Takes one more unit of the credit line covering the calling fiber's
  // tracked child; returns the process span plus the ledger the unit was
  // charged to.  The fiber-descriptor check is the credit-splitting
  // precondition: only code running under a tracked child of THIS process
  // holds a credit to split — anywhere else the process may already have
  // terminated.
  std::pair<std::vector<gas::locality_id>, std::uint64_t> split_credit() {
    threads::thread_descriptor* td = threads::scheduler::self();
    PX_ASSERT_MSG(td != nullptr && td->child_proc_bits == bits_ &&
                      td->child_edge != kProcessNoEdge,
                  "process_ref spawn outside a tracked child of this "
                  "process: no credit to split");
    const std::uint64_t edge = td->child_edge;
    auto& site = rt_.process_sites().site(bits_);
    std::lock_guard g(site.lock);
    edge_ledger& led = site.edges[edge];
    PX_ASSERT_MSG(led.active > 0, "split of a drained credit line");
    led.active += 1;
    return {site.span, edge};
  }

  template <auto Fn, typename... Args>
  void dispatch(gas::locality_id where, std::vector<gas::locality_id> span,
                std::uint64_t edge, Args&&... args) {
    if (where == rt_.rank()) {
      // Local grandchild: covered by the unit just split — no new owed
      // entry, and its own splits charge the same upstream line.
      auto args_tup =
          typename action<Fn>::args_tuple(std::forward<Args>(args)...);
      const std::uint64_t bits = bits_;
      rt_.here().spawn(
          [bits, edge, args_tup = std::move(args_tup)]() mutable {
            {
              detail::child_scope scope(bits, edge);
              std::apply(Fn, std::move(args_tup));
            }
            process_site_leave(bits, edge);
          });
      return;
    }
    using W = detail::process_child<Fn, typename action<Fn>::args_tuple>;
    apply_from<&W::run>(rt_.here(), rt_.locality_gid(where),
                        child_ctx{bits_, rt_.rank(), edge, std::move(span)},
                        std::forward<Args>(args)...);
  }

  runtime& rt_;
  std::uint64_t bits_;
  std::shared_ptr<process> local_;
};

// Eagerly registers Fn's tracked-child wrapper action at static-init time.
// Required for any Fn given to spawn_on<Fn>/spawn_any<Fn> over a span that
// crosses processes: action ids are positional, so every rank must mint
// the wrapper's id at boot, not at first use on one rank.
#define PX_REGISTER_PROCESS_CHILD_AS(fn, name)                              \
  namespace {                                                               \
  [[maybe_unused]] const ::px::parcel::action_id PX_DETAIL_CONCAT(          \
      px_pchild_registration_, __COUNTER__) =                               \
      ::px::core::action<&::px::core::detail::process_child<               \
          &fn, typename ::px::core::action<&fn>::args_tuple>::run>::       \
          ensure_registered(name);                                          \
  }
#define PX_REGISTER_PROCESS_CHILD(fn) \
  PX_REGISTER_PROCESS_CHILD_AS(fn, "px.pchild." #fn)

}  // namespace px::core
