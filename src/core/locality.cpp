#include "core/locality.hpp"

#include <algorithm>
#include <mutex>

#include "core/runtime.hpp"
#include "gas/resolve.hpp"
#include "introspect/stats.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"
#include "util/clock.hpp"

namespace px::core {

namespace {
thread_local locality* tl_locality = nullptr;
}

// Not inlined: must be re-evaluated after suspension points (a ParalleX
// thread only ever resumes on workers of its own locality, but the
// compiler cannot know that TLS is stable across the switch).
__attribute__((noinline)) locality* this_locality() noexcept {
  return tl_locality;
}

void detail::set_this_locality(locality* loc) noexcept { tl_locality = loc; }

locality::locality(runtime& rt, gas::locality_id id,
                   threads::scheduler_params sched_params)
    : rt_(rt), id_(id), sched_(sched_params) {
  // Every worker OS thread of this scheduler serves exactly this locality;
  // establish the context once per worker so it holds for spawned *and*
  // resumed threads alike.
  sched_.set_worker_init([this](unsigned) { detail::set_this_locality(this); });
}

void locality::spawn(std::function<void()> fn) {
  threads_spawned_.fetch_add(1, std::memory_order_relaxed);
  sched_.spawn(std::move(fn));
}

void locality::put_object(gas::gid id, std::shared_ptr<void> object) {
  PX_ASSERT(object != nullptr);
  std::lock_guard lock(objects_lock_);
  objects_[id] = std::move(object);
}

std::shared_ptr<void> locality::get_object(gas::gid id) const {
  std::lock_guard lock(objects_lock_);
  const auto it = objects_.find(id);
  return it != objects_.end() ? it->second : nullptr;
}

bool locality::has_object(gas::gid id) const {
  std::lock_guard lock(objects_lock_);
  return objects_.count(id) != 0;
}

bool locality::erase_object(gas::gid id) {
  std::lock_guard lock(objects_lock_);
  return objects_.erase(id) != 0;
}

std::size_t locality::object_count() const {
  std::lock_guard lock(objects_lock_);
  return objects_.size();
}

std::vector<gas::gid> locality::resident_objects_homed_at(
    gas::locality_id home) const {
  std::vector<gas::gid> out;
  std::lock_guard lock(objects_lock_);
  for (const auto& [id, obj] : objects_) {
    (void)obj;
    if (id.home() == home) out.push_back(id);
  }
  return out;
}

gas::gid locality::register_sink(std::function<void(parcel::parcel)> fire) {
  const gas::gid id = rt_.gas().allocate(gas::gid_kind::lco, id_);
  std::lock_guard lock(sinks_lock_);
  sinks_.emplace(id, std::move(fire));
  return id;
}

bool locality::fire_sink(gas::gid id, parcel::parcel p) {
  std::function<void(parcel::parcel)> fn;
  {
    std::lock_guard lock(sinks_lock_);
    auto it = sinks_.find(id);
    if (it == sinks_.end()) return false;
    fn = std::move(it->second);
    sinks_.erase(it);
  }
  fn(std::move(p));
  return true;
}

void locality::send(parcel::parcel p) {
  parcels_sent_.fetch_add(1, std::memory_order_relaxed);
  p.source = id_;
  if (trace::enabled()) {
    trace::context ctx = trace::current();
    if (!ctx.valid()) {
      // This send is the root of a new causal chain (main thread, timer,
      // untraced machinery): mint a trace id here so everything downstream
      // shares it.
      ctx.trace_id = trace::new_id();
      ctx.span = trace::new_id();
      trace::set_current(ctx);
    }
    p.trace_id = ctx.trace_id;
    p.trace_span = trace::new_id();  // one span per parcel hop
    trace::emit(trace::event_kind::parcel_send, p.trace_id, p.trace_span,
                ctx.span, p.destination.bits(),
                static_cast<std::uint32_t>(p.action));
  }
  if (introspect::stats_armed()) {
    // Normalized to the rank-0 clock on both ends (offsets cancel within a
    // rank), so the receiving rank's histogram measures true cross-rank
    // send→dispatch latency.  Saturate at 1: 0 means "unstamped" on the
    // wire, and clock_sync skew could otherwise produce a nonpositive
    // stamp in the first nanoseconds of a run.
    const std::int64_t ts = util::now_ns() - rt_.clock_offset_ns();
    p.send_ts_ns = ts > 0 ? static_cast<std::uint64_t>(ts) : 1;
  }
  rt_.route(id_, std::move(p));
}

bool locality::arriving_needs_forward(gas::gid dest) {
  // Establish locality context for the delivery path: on the fabric
  // progress thread this makes sink-fired continuations (and anything they
  // apply) run with the receiving locality as "here".  On a worker thread
  // the destination equals the current locality, so the write is
  // idempotent.
  detail::set_this_locality(this);

  // Ownership check for migratable kinds: if the object moved away and we
  // were reached through a stale cache, the parcel must be rerouted toward
  // the authoritative owner (bounded by runtime::route's forward cap; each
  // forward refreshes the sender-side cache).
  if (dest.kind() != gas::gid_kind::data &&
      dest.kind() != gas::gid_kind::process) {
    return false;
  }
  if (has_object(dest)) return false;
  // effective_home: after rank loss the casualty's directory duties fall to
  // its successor, so "are we the authority?" must be asked of the live
  // home, not the gid's encoded one (identical when nobody has died).
  if (rt_.distributed() && rt_.effective_home(dest) != id_) {
    // We are neither the owner (no object) nor the home: a stale
    // forwarding hint sent this parcel here.  Drop our own hint for this
    // gid — not because it is necessarily wrong (ours may be fresher than
    // the sender's), but so the reroute below goes through the *home*,
    // whose directory is authoritative.  Forwarding hint-to-hint could
    // chase a cycle of mutually stale piggybacked hints and burn the
    // whole hop budget without ever consulting an authority; paying at
    // most one extra hop via home can never loop.
    rt_.gas().invalidate_cache(id_, dest);
    return true;
  }
  // Home rank (or single-process): the local directory shard is the
  // authority.
  const auto owner = rt_.gas().resolve_authoritative(id_, dest);
  if (!owner.has_value()) {
    // Unbound at the authority.  With a rank down this is the expected
    // fate of an object that died with the casualty (its entry was purged,
    // or the adopted shard never saw a re-registration): report it lost
    // and reroute — runtime::route recognizes the unbound destination and
    // retires the parcel into the dropped books, keeping the conservation
    // identity balanced (delivered and forwarded cancel; dropped absorbs
    // the unit).  Without a casualty it remains the hard bug it always was.
    PX_ASSERT_MSG(rt_.has_lost_peers(), "parcel for unbound object gid");
    rt_.note_lost_gid(dest);
    return true;
  }
  // When the authoritative owner is us but the object is gone, creation is
  // racing delivery; dispatch and let the action handle or assert.
  return *owner != id_;
}

bool locality::hint_gate_allows(gas::gid dest, gas::locality_id source) {
  const std::int64_t now = util::now_ns();
  const std::uint64_t key =
      dest.bits() ^
      (static_cast<std::uint64_t>(source) * 0x9e3779b97f4a7c15ull);
  std::lock_guard lock(hint_gate_lock_);
  if (hint_gate_.size() >= kMaxHintGateEntries) hint_gate_.clear();
  const auto [it, inserted] = hint_gate_.try_emplace(key, now);
  if (inserted) return true;
  if (now - it->second < kHintGateIntervalNs) return false;
  it->second = now;
  return true;
}

void locality::send_forward_feedback(const parcel::parcel& p) {
  if (!rt_.distributed() || !rt_.migration_enabled()) return;
  if (p.source == gas::invalid_locality || p.source == id_) return;
  if (!hint_gate_allows(p.destination, p.source)) return;
  if (rt_.effective_home(p.destination) == id_) {
    // resolve_authoritative just refreshed our cache with the directory's
    // answer; piggyback it to the sender.
    if (const auto owner = rt_.gas().cached(id_, p.destination)) {
      gas::send_owner_hint(*this, p.source, p.destination, *owner);
    }
  } else {
    gas::send_owner_hint(*this, p.source, p.destination,
                         gas::invalid_locality);
  }
}

void locality::note_heat(gas::gid dest) noexcept {
  if (!heat_enabled_.load(std::memory_order_relaxed)) return;
  if (dest.kind() != gas::gid_kind::data) return;  // only migratable heat
  // Heat is a rough rate signal (halved every rebalance round), so a 1-in-8
  // sample preserves its shape while keeping the delivery hot path off the
  // lock seven times out of eight — the dispatch path stays near the
  // lock-free budget PR 2 bought even with the rebalancer enabled.
  if ((heat_seq_.fetch_add(1, std::memory_order_relaxed) & 7u) != 0) return;
  std::lock_guard lock(heat_lock_);
  if (heat_.size() >= kMaxHeatEntries &&
      heat_.find(dest) == heat_.end()) {
    // Bound the table even when load stays balanced and the rebalancer
    // never drains it: age everything in place so entries for cooled-off
    // (or destroyed) objects fall out instead of accumulating forever.
    // The aging scan is rate-limited — a saturated table of persistently
    // hot entries must not turn every sampled delivery into an O(table)
    // walk under the lock, nor erode the heat signal between rounds.
    const std::int64_t now = util::now_ns();
    if (now - heat_last_age_ns_ < kHeatAgeIntervalNs) return;  // drop sample
    heat_last_age_ns_ = now;
    for (auto it = heat_.begin(); it != heat_.end();) {
      it->second /= 2;
      it = it->second == 0 ? heat_.erase(it) : std::next(it);
    }
    if (heat_.size() >= kMaxHeatEntries) return;  // everything still hot
  }
  heat_[dest] += 1;
}

std::vector<std::pair<gas::gid, std::uint64_t>> locality::hottest_objects(
    std::size_t n) {
  std::vector<std::pair<gas::gid, std::uint64_t>> out;
  std::lock_guard lock(heat_lock_);
  out.reserve(heat_.size());
  for (const auto& [id, count] : heat_) out.emplace_back(id, count);
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (out.size() > n) out.resize(n);
  // Age everything: heat is a rate signal, not a lifetime total.
  for (auto it = heat_.begin(); it != heat_.end();) {
    it->second /= 2;
    it = it->second == 0 ? heat_.erase(it) : std::next(it);
  }
  return out;
}

void locality::note_dispatch_latency(std::uint64_t send_ts_ns) noexcept {
  const std::int64_t now = util::now_ns() - rt_.clock_offset_ns();
  const std::int64_t lat = now - static_cast<std::int64_t>(send_ts_ns);
  // Cross-rank clock-sync error can make a fast hop appear to arrive
  // "before" it was sent; clamp rather than wrap.
  dispatch_hist_.add(lat > 0 ? static_cast<double>(lat) : 0.0);
}

void locality::deliver(parcel::parcel p) {
  parcels_delivered_.fetch_add(1, std::memory_order_relaxed);
  if (arriving_needs_forward(p.destination)) {
    send_forward_feedback(p);
    p.forwards += 1;
    parcels_forwarded_.fetch_add(1, std::memory_order_relaxed);
    rt_.route(id_, std::move(p));
    return;
  }
  note_heat(p.destination);
  if (introspect::stats_armed() && p.send_ts_ns != 0) {
    note_dispatch_latency(p.send_ts_ns);
  }
  if (p.trace_id != 0 && trace::enabled()) {
    trace::emit(trace::event_kind::parcel_dispatch, p.trace_id, p.trace_span,
                0, p.destination.bits(),
                static_cast<std::uint32_t>(p.action));
    // Run the action under the parcel's causal identity: a raw action
    // dispatches inline under this scope, and a typed action's fiber
    // inherits it through scheduler::spawn's context capture.
    trace::scope s(trace::context{p.trace_id, p.trace_span});
    parcel::action_registry::global().dispatch(this, std::move(p));
    return;
  }
  parcel::action_registry::global().dispatch(this, std::move(p));
}

void locality::deliver(const parcel::parcel_view& pv) {
  parcels_delivered_.fetch_add(1, std::memory_order_relaxed);
  if (arriving_needs_forward(pv.destination())) {
    // Rare path: the view's frame is owned by the fabric, so the reroute
    // needs an owning copy.
    parcel::parcel p = pv.to_parcel();
    send_forward_feedback(p);
    p.forwards += 1;
    parcels_forwarded_.fetch_add(1, std::memory_order_relaxed);
    rt_.route(id_, std::move(p));
    return;
  }
  note_heat(pv.destination());
  if (introspect::stats_armed() && pv.send_ts_ns() != 0) {
    note_dispatch_latency(pv.send_ts_ns());
  }
  if (pv.trace_id() != 0 && trace::enabled()) {
    trace::emit(trace::event_kind::parcel_dispatch, pv.trace_id(),
                pv.trace_span(), 0, pv.destination().bits(),
                static_cast<std::uint32_t>(pv.action()));
    trace::scope s(trace::context{pv.trace_id(), pv.trace_span()});
    parcel::action_registry::global().dispatch(this, pv);
    return;
  }
  parcel::action_registry::global().dispatch(this, pv);
}

locality_stats locality::stats() const {
  locality_stats s;
  s.parcels_sent = parcels_sent_.load(std::memory_order_relaxed);
  s.parcels_delivered = parcels_delivered_.load(std::memory_order_relaxed);
  s.parcels_forwarded = parcels_forwarded_.load(std::memory_order_relaxed);
  s.parcels_dropped = parcels_dropped_.load(std::memory_order_relaxed);
  s.threads_spawned = threads_spawned_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace px::core
