// Locality: the ParalleX unit of guaranteed synchronous operation.
//
// Paper §2.2 "Locality": "the locus of resources that can be guaranteed to
// operate synchronously and for which hardware can guarantee compound
// atomic operations on local data elements".  Here a locality owns a
// work-stealing scheduler (its execution sites), an object table (the local
// partition of the global address space), an LCO sink table (single-shot
// continuation targets such as future write-ends), and a parcel port on the
// shared fabric.
//
// Threads are locality-bound: work crosses localities only as parcels.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gas/gid.hpp"
#include "parcel/parcel.hpp"
#include "threads/scheduler.hpp"
#include "util/histogram.hpp"
#include "util/spinlock.hpp"

namespace px::core {

class runtime;

struct locality_stats {
  std::uint64_t parcels_sent = 0;
  std::uint64_t parcels_delivered = 0;
  std::uint64_t parcels_forwarded = 0;  // stale AGAS cache reroutes
  std::uint64_t parcels_dropped = 0;    // forward-bound exceeded
  std::uint64_t threads_spawned = 0;
};

class locality {
 public:
  locality(runtime& rt, gas::locality_id id,
           threads::scheduler_params sched_params);

  locality(const locality&) = delete;
  locality& operator=(const locality&) = delete;

  gas::locality_id id() const noexcept { return id_; }
  runtime& rt() noexcept { return rt_; }
  threads::scheduler& sched() noexcept { return sched_; }

  // The typed hardware name of this locality in the global name space.
  gas::gid here() const noexcept { return here_; }

  // ------------------------------------------------------------- threads

  // Spawns a ParalleX thread on this locality (establishes the
  // this_locality() context for the thread).
  void spawn(std::function<void()> fn);

  // -------------------------------------------------------- object table

  void put_object(gas::gid id, std::shared_ptr<void> object);
  std::shared_ptr<void> get_object(gas::gid id) const;  // nullptr if absent
  bool has_object(gas::gid id) const;
  bool erase_object(gas::gid id);
  std::size_t object_count() const;

  // Resident objects whose gid is homed at `home` — the survivors'
  // re-registration sweep after rank loss (runtime::note_peer_failure)
  // re-homes exactly these at the casualty's successor.
  std::vector<gas::gid> resident_objects_homed_at(gas::locality_id home) const;

  // ----------------------------------------------------------- LCO sinks

  // Registers a single-shot parcel target (e.g. a future's write end) and
  // returns its gid; the sink is erased when fired.
  gas::gid register_sink(std::function<void(parcel::parcel)> fire);
  // Fires and erases; returns false for unknown/already-fired gids.
  bool fire_sink(gas::gid id, parcel::parcel p);

  // -------------------------------------------------------------- parcels

  // Routes a parcel toward its destination (local fast path or fabric).
  void send(parcel::parcel p);

  // A parcel has arrived at this locality: verify ownership, forward if
  // stale, else dispatch.  The owned-parcel overload serves the local fast
  // path (no encode round trip); the view overload serves the fabric path
  // and dispatches zero-copy — the view's backing frame is only borrowed,
  // so a forward (the rare path) materializes a copy.
  void deliver(parcel::parcel p);
  void deliver(const parcel::parcel_view& pv);

  // Bookkeeping for runtime::route's forward-bound enforcement.
  void note_dropped() noexcept {
    parcels_dropped_.fetch_add(1, std::memory_order_relaxed);
  }

  // --------------------------------------------- object heat (rebalancer)

  // Turns on per-object delivery accounting; set once by the runtime when
  // the rebalancer is enabled (the disabled fast path is a single relaxed
  // load per delivery).
  void enable_heat_tracking() noexcept {
    heat_enabled_.store(true, std::memory_order_relaxed);
  }

  // The up-to-n hottest migratable (data-kind) objects delivered here,
  // hottest first.  Ages all remaining heat by half so a former hot spot
  // cools off instead of being re-migrated forever.
  std::vector<std::pair<gas::gid, std::uint64_t>> hottest_objects(
      std::size_t n);

  locality_stats stats() const;

  // Distribution of parcel send→dispatch latencies (ns, on the rank-0
  // clock) observed at this locality while PX_STATS is armed; registered
  // as the runtime/loc<i>/parcels/hist_dispatch_ns histogram counter.
  util::log_histogram dispatch_hist_snapshot() const {
    return dispatch_hist_.snapshot();
  }

 private:
  friend class runtime;

  // True when the parcel for `dest` must be rerouted (object migrated away
  // and we were reached through a stale cache); establishes the locality
  // context as a side effect of the arrival.
  bool arriving_needs_forward(gas::gid dest);

  // Distributed forwarding feedback (no-op otherwise): when this rank
  // forwards a parcel, tell the original sender what we know — the home
  // rank piggybacks the authoritative owner so senders converge on direct
  // routing; a stale ex-owner sends an invalidation so the sender falls
  // back to home routing and picks up a fresh hint there.  Rate-gated per
  // (gid, sender): a sender with a storm in flight needs one corrective
  // hint, not one per forwarded parcel — the forwarding rank is exactly
  // the overloaded one, and doubling its outbound control traffic during
  // a migration wave defeats the point.
  void send_forward_feedback(const parcel::parcel& p);
  bool hint_gate_allows(gas::gid dest, gas::locality_id source);

  // Delivery-path heat accounting (no-op unless heat tracking is enabled).
  void note_heat(gas::gid dest) noexcept;

  // Telemetry: fold one send→dispatch latency into dispatch_hist_ (the
  // caller has already checked introspect::stats_armed() and a nonzero
  // wire timestamp).
  void note_dispatch_latency(std::uint64_t send_ts_ns) noexcept;

  // Heat-table size bound; crossing it ages the table in place (see
  // note_heat), so balanced workloads cannot grow it without limit.  The
  // aging scan itself runs at most once per interval.
  static constexpr std::size_t kMaxHeatEntries = 1024;
  static constexpr std::int64_t kHeatAgeIntervalNs = 1000 * 1000;  // 1ms

  runtime& rt_;
  gas::locality_id id_;
  gas::gid here_;
  threads::scheduler sched_;

  mutable util::spinlock objects_lock_;
  std::unordered_map<gas::gid, std::shared_ptr<void>> objects_;

  mutable util::spinlock sinks_lock_;
  std::unordered_map<gas::gid, std::function<void(parcel::parcel)>> sinks_;

  std::atomic<bool> heat_enabled_{false};
  std::atomic<std::uint64_t> heat_seq_{0};  // 1-in-8 delivery sampling
  mutable util::spinlock heat_lock_;
  std::unordered_map<gas::gid, std::uint64_t> heat_;
  std::int64_t heat_last_age_ns_ = 0;  // guarded by heat_lock_

  // Forwarding-feedback rate gate (see send_forward_feedback).  Keyed by
  // mixed (gid, sender); bounded by clearing — a false suppression only
  // delays a hint by one interval, so precision is not worth memory.
  static constexpr std::int64_t kHintGateIntervalNs = 200 * 1000;  // 200us
  static constexpr std::size_t kMaxHintGateEntries = 256;
  util::spinlock hint_gate_lock_;
  std::unordered_map<std::uint64_t, std::int64_t> hint_gate_;

  util::log_histogram dispatch_hist_;  // internally locked

  std::atomic<std::uint64_t> parcels_sent_{0};
  std::atomic<std::uint64_t> parcels_delivered_{0};
  std::atomic<std::uint64_t> parcels_forwarded_{0};
  std::atomic<std::uint64_t> parcels_dropped_{0};
  std::atomic<std::uint64_t> threads_spawned_{0};
};

// The locality whose scheduler runs the calling thread (set for ParalleX
// threads and for parcel handlers), or nullptr on an unrelated OS thread.
locality* this_locality() noexcept;

namespace detail {
void set_this_locality(locality* loc) noexcept;
}

}  // namespace px::core
