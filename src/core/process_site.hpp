// Per-rank, per-edge credit ledgers for distributed process trees.
//
// Dijkstra–Scholten termination detection over parcels: the process object
// at its primary rank holds the activity counter; every typed child shipped
// to another rank carries one credit.  PR 6 splits credits *per spawn
// edge*: a remote child that spawns a tracked grandchild does not ask the
// primary for a new credit — it splits the one covering itself.  Each rank
// keeps a process_site per process, and inside it one edge_ledger per
// distinct upstream credit line (parent rank + the parent's own ledger id):
// `active` counts local children of that line plus credits it split off to
// other ranks, `owed` records how many credits the line must return
// upstream once `active` drains to zero.
//
// The per-edge granularity is load-bearing, not an optimization.  A single
// per-rank counter conflates independent subtrees that happen to share a
// rank: with ranks 1..3 each spawning grandchildren on the others, every
// rank ends up both owing credits to its peers and waiting on credits from
// them through the same counter — a cycle that never drains.  Ledgers keyed
// by the upstream edge make the wait-for graph exactly the spawn tree,
// which is acyclic, so the collapse is leaf-first and the primary's counter
// reaches zero exactly when the whole tree has retired.
//
// Deliberately free of runtime/locality dependencies so core/runtime can
// own the table without an include cycle.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gas/gid.hpp"
#include "util/spinlock.hpp"

namespace px::core {

// Parent sentinel: credits owed directly to the process object's activity
// counter at the primary rank (via px.process_credit), not to a peer site.
inline constexpr std::uint32_t kProcessParentPrimary = 0xffffffffu;

// Edge sentinel: the upstream credit line is the primary's own counter,
// which has no ledger id.
inline constexpr std::uint64_t kProcessNoEdge = ~0ull;

// Wire context shipped with every typed tracked child: which process it
// belongs to, which rank's credit covers it (and which of that rank's
// ledgers), and the span (so the child can place tracked grandchildren
// with spawn_any without asking the primary).
struct child_ctx {
  std::uint64_t proc_bits = 0;
  std::uint32_t parent_rank = kProcessParentPrimary;
  std::uint64_t parent_edge = kProcessNoEdge;
  std::vector<gas::locality_id> span;
};

template <typename Ar>
void serialize(Ar& ar, child_ctx& c) {
  ar & c.proc_bits & c.parent_rank & c.parent_edge & c.span;
}

// One upstream credit line landing on this rank.
struct edge_ledger {
  std::uint32_t parent_rank = kProcessParentPrimary;
  std::uint64_t parent_edge = kProcessNoEdge;
  // Local children of this line still running + credits it split off to
  // remote grandchildren that have not returned yet.
  std::int64_t active = 0;
  // Credits to return upstream when `active` drains to zero.
  std::uint64_t owed = 0;
};

struct process_site {
  util::spinlock lock;
  // Ledger id (the wire `parent_edge` for credits this rank lends out) is
  // the index into `edges`; `edge_ids` maps an upstream identity to it.
  std::vector<edge_ledger> edges;
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint64_t> edge_ids;
  // Span learned from the first child's ctx; placement state for spawn_any.
  std::vector<gas::locality_id> span;
  std::uint64_t next_placement = 0;

  // Get-or-create the ledger for the upstream line (parent_rank,
  // parent_edge).  Caller holds `lock`.
  std::uint64_t edge_for(std::uint32_t parent_rank,
                         std::uint64_t parent_edge) {
    const auto key = std::make_pair(parent_rank, parent_edge);
    auto [it, fresh] = edge_ids.try_emplace(key, edges.size());
    if (fresh) {
      edge_ledger led;
      led.parent_rank = parent_rank;
      led.parent_edge = parent_edge;
      edges.push_back(led);
    }
    return it->second;
  }
};

class process_site_table {
 public:
  // Get-or-create; sites are tiny and live for the runtime's lifetime
  // (bounded by the number of distinct processes this rank worked for).
  process_site& site(std::uint64_t proc_bits) {
    std::lock_guard g(lock_);
    auto& slot = sites_[proc_bits];
    if (slot == nullptr) slot = std::make_unique<process_site>();
    return *slot;
  }

 private:
  util::spinlock lock_;
  std::unordered_map<std::uint64_t, std::unique_ptr<process_site>> sites_;
};

}  // namespace px::core
