// Per-locality parcel port: outbound coalescing onto the fabric.
//
// The paper's parcel model makes communication overhead *amortizable*; this
// is where the amortization happens.  Each locality owns one port holding
// one open batch frame per remote destination.  enqueue() encodes the
// parcel straight into that frame (buffer drawn from the fabric's pool —
// steady state allocates nothing) and the frame ships when it crosses a
// byte or count threshold, when a scheduler worker runs out of work
// (flush-on-idle hook), when the fabric progress thread goes idle
// (backstop), or when the runtime's quiescence loop forces it.
//
// Quiescence contract: a parcel is continuously visible to
// runtime::wait_quiescent as pending() here, then in_flight() in the
// fabric, then a live thread at the destination — and every transition
// bumps a monotonic counter (enqueued_total here, messages_sent_total in
// the fabric) *before* the previous stage's count drops, so the activity-
// snapshot bracketing stays race-free with coalescing enabled.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "gas/gid.hpp"
#include "net/transport.hpp"
#include "parcel/parcel.hpp"
#include "util/spinlock.hpp"

namespace px::core {

struct parcel_port_params {
  std::size_t flush_bytes = 4096;  // ship a frame at this payload size...
  std::uint32_t flush_count = 64;  // ...or at this many coalesced parcels
};

struct parcel_port_stats {
  std::uint64_t parcels_enqueued = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t threshold_flushes = 0;  // frames shipped by size/count
  std::uint64_t demand_flushes = 0;     // frames shipped by flush()/idle
  std::uint64_t eager_flushes = 0;      // first-parcel latency flushes
};

// What enqueue() observed, so the routing layer can decide on an eager
// flush without a second trip through the channel lock.
struct parcel_enqueue_result {
  bool shipped = false;      // a threshold flush already sent the frame
  bool quiet_first = false;  // p opened the frame of a *quiet* channel:
                             // nothing shipped from it for longer than the
                             // burst window, so this parcel is likely an
                             // isolated request, not the head of a storm
};

class parcel_port {
 public:
  // Burst-detection window for quiet_first: a channel that shipped a frame
  // within this many ns is mid-burst, and eager-flushing it would defeat
  // coalescing (a storm re-opens its frame right after every threshold
  // ship).  Isolated request/reply traffic has gaps of at least a fabric
  // round trip, comfortably above this.
  static constexpr std::int64_t eager_quiet_ns = 5000;

  parcel_port(net::transport& transport, net::endpoint_id self,
              parcel_port_params params);

  parcel_port(const parcel_port&) = delete;
  parcel_port& operator=(const parcel_port&) = delete;

  // Coalesces p into the open frame for `dest` (must be a remote
  // endpoint), shipping it if a threshold is crossed.  Thread-safe.
  parcel_enqueue_result enqueue(net::endpoint_id dest,
                                const parcel::parcel& p);

  // Ships the open frame for `dest` / for every destination, if any.
  void flush(net::endpoint_id dest);
  void flush_all();

  // flush(dest) accounted as a first-parcel eager flush (latency path).
  void flush_eager(net::endpoint_id dest);

  // Parcels coalesced but not yet handed to the fabric.
  std::uint64_t pending() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }

  // Monotonic count of enqueue() calls, bumped before the parcel is
  // buffered (quiescence activity snapshots).
  std::uint64_t enqueued_total() const noexcept {
    return enqueued_total_.load(std::memory_order_acquire);
  }

  parcel_port_stats stats() const;
  const parcel_port_params& params() const noexcept { return params_; }

 private:
  struct out_channel {
    util::spinlock lock;
    std::vector<std::byte> buf;  // empty => no open frame
    std::uint32_t count = 0;
    std::int64_t last_close_ns = 0;  // when a frame last shipped from here
  };

  // Takes the channel's open frame into `out` and closes the channel;
  // returns the parcel count.  Caller holds ch.lock.
  static std::uint32_t take_frame(out_channel& ch,
                                  std::vector<std::byte>& out);

  void ship(std::vector<std::byte> frame, std::uint32_t count,
            net::endpoint_id dest);
  void flush_counted(net::endpoint_id dest,
                     std::atomic<std::uint64_t>& counter);

  net::transport& transport_;
  net::endpoint_id self_;
  parcel_port_params params_;
  std::vector<std::unique_ptr<out_channel>> channels_;  // by destination

  std::atomic<std::uint64_t> enqueued_total_{0};
  std::atomic<std::uint64_t> pending_{0};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> threshold_flushes_{0};
  std::atomic<std::uint64_t> demand_flushes_{0};
  std::atomic<std::uint64_t> eager_flushes_{0};
};

}  // namespace px::core
