// Typed actions: the bridge from C++ functions to parcels.
//
// An action is a registered free function invocable through the global name
// space.  `apply<&fn>(dest, args...)` ships a parcel whose arrival spawns a
// ParalleX thread running fn(args...) at the destination's locality —
// moving the work to the data.  `async<&fn>` additionally creates a future
// LCO at the caller and attaches it as the parcel's *continuation
// specifier*, so the result flows back (or onward) without the caller ever
// blocking the execution site.
//
// Registration is lazy and race-free (magic statics); because all
// localities share one program image, an action_id minted at first use is
// valid everywhere before any parcel carrying it can arrive.
#pragma once

#include <tuple>
#include <type_traits>
#include <typeinfo>
#include <utility>

#include "core/locality.hpp"
#include "core/runtime.hpp"
#include "lco/lco.hpp"
#include "parcel/action_registry.hpp"
#include "util/serialize.hpp"

namespace px::core {

namespace detail {

template <typename>
struct function_traits;

template <typename R, typename... As>
struct function_traits<R (*)(As...)> {
  using result_type = R;
  using args_tuple = std::tuple<std::decay_t<As>...>;
};

}  // namespace detail

// The built-in continuation target: fires a single-shot LCO sink at the
// destination locality (future write-ends, gate openers, ...).
parcel::action_id sink_action_id();

// Sends an action result onward through a parcel's continuation specifier
// (no-op when the parcel carried none).  The raw-registered control-plane
// handlers (px.agas_update / px.agas_resolve / px.query_counter) reply
// inline on the delivery thread through this instead of the typed-action
// machinery.
inline void send_continuation_reply(locality& from,
                                    const parcel::continuation& cont,
                                    std::vector<std::byte> args) {
  if (!cont.valid()) return;
  parcel::parcel done;
  done.destination = cont.target;
  done.action = cont.action;
  done.arguments = std::move(args);
  from.send(std::move(done));
}

template <auto Fn>
struct action {
  using traits = detail::function_traits<decltype(Fn)>;
  using result_type = typename traits::result_type;
  using args_tuple = typename traits::args_tuple;

  // Stable id; registers on first use under an automatic unique name.
  static parcel::action_id id() { return ensure_registered(nullptr); }

  // Optional: register under a human-readable name (must run before any
  // id() call for this Fn; see PX_REGISTER_ACTION).
  static parcel::action_id ensure_registered(const char* name) {
    static const parcel::action_id the_id = do_register(name);
    return the_id;
  }

 private:
  static parcel::action_id do_register(const char* name) {
    std::string reg_name =
        name != nullptr ? std::string(name)
                        : std::string("auto.") + typeid(action).name();
    // &invoke is a plain function pointer: dispatch for typed actions is
    // the registry's non-allocating fast path (no std::function erasure).
    return parcel::action_registry::global().register_action(
        std::move(reg_name), &invoke);
  }

  static void invoke(void* ctx, const parcel::parcel_view& pv) {
    auto* loc = static_cast<locality*>(ctx);
    // Zero-copy argument decode: the typed tuple is materialized straight
    // from the wire bytes here, before the view's backing frame is
    // recycled; nothing else of the parcel is copied.
    args_tuple args = util::from_bytes<args_tuple>(pv.arguments());
    const parcel::continuation cont = pv.cont();
    // Message-driven execution: the parcel's arrival *is* the thread
    // creation event (paper: parcels let execution sites operate via a
    // work-queue model).
    loc->spawn([loc, cont, args = std::move(args)]() mutable {
      if constexpr (std::is_void_v<result_type>) {
        std::apply(Fn, std::move(args));
        if (cont.valid()) {
          parcel::parcel done;
          done.destination = cont.target;
          done.action = cont.action;
          loc->send(std::move(done));
        }
      } else {
        result_type result = std::apply(Fn, std::move(args));
        if (cont.valid()) {
          parcel::parcel done;
          done.destination = cont.target;
          done.action = cont.action;
          done.arguments = util::to_bytes(result);
          loc->send(std::move(done));
        }
      }
    });
  }
};

// Registers fn eagerly under a readable name at static-init time.  The
// function may be namespace-qualified; the registration variable name is
// generated from __COUNTER__.
#define PX_DETAIL_CONCAT2(a, b) a##b
#define PX_DETAIL_CONCAT(a, b) PX_DETAIL_CONCAT2(a, b)
#define PX_REGISTER_ACTION_AS(fn, name)                            \
  namespace {                                                      \
  [[maybe_unused]] const ::px::parcel::action_id PX_DETAIL_CONCAT( \
      px_action_registration_, __COUNTER__) =                      \
      ::px::core::action<&fn>::ensure_registered(name);            \
  }
#define PX_REGISTER_ACTION(fn) PX_REGISTER_ACTION_AS(fn, #fn)

// ------------------------------------------------------------------ apply

// Fire-and-forget: run Fn(args...) where `dest` lives.  `from` is the
// sending locality (use the this_locality() overloads inside threads).
template <auto Fn, typename... Args>
void apply_from(locality& from, gas::gid dest, Args&&... args) {
  using A = action<Fn>;
  parcel::parcel p;
  p.destination = dest;
  p.action = A::id();
  p.arguments =
      util::to_bytes(typename A::args_tuple(std::forward<Args>(args)...));
  from.send(std::move(p));
}

// Fire-and-forget with an explicit continuation: after Fn completes at the
// destination, its result is applied to (cont.target, cont.action) — the
// locus of control migrates onward instead of returning.
template <auto Fn, typename... Args>
void apply_cont_from(locality& from, gas::gid dest, parcel::continuation cont,
                     Args&&... args) {
  using A = action<Fn>;
  parcel::parcel p;
  p.destination = dest;
  p.action = A::id();
  p.cont = cont;
  p.arguments =
      util::to_bytes(typename A::args_tuple(std::forward<Args>(args)...));
  from.send(std::move(p));
}

// -------------------------------------------------------------- sinks

// Registers a single-shot sink that satisfies `prom` when the continuation
// parcel arrives; returns the sink's continuation specifier.
template <typename R>
parcel::continuation make_promise_sink(locality& at, lco::promise<R> prom) {
  gas::gid sink = at.register_sink([prom](parcel::parcel p) mutable {
    if constexpr (std::is_void_v<R>) {
      (void)p;
      prom.set_value();
    } else {
      prom.set_value(util::from_bytes<R>(p.arguments));
    }
  });
  return parcel::continuation{sink, sink_action_id()};
}

// ------------------------------------------------------------------ async

// Split-phase remote invocation: returns immediately with a future the
// destination's completion parcel will satisfy.
template <auto Fn, typename... Args>
auto async_from(locality& from, gas::gid dest, Args&&... args)
    -> lco::future<typename action<Fn>::result_type> {
  using R = typename action<Fn>::result_type;
  lco::promise<R> prom;
  auto fut = prom.get_future();
  apply_cont_from<Fn>(from, dest, make_promise_sink<R>(from, std::move(prom)),
                      std::forward<Args>(args)...);
  return fut;
}

// --------------------------------------- this-locality convenience forms

// Valid inside ParalleX threads (and parcel handlers), where the calling
// locality is implicit.
template <auto Fn, typename... Args>
void apply(gas::gid dest, Args&&... args) {
  locality* here = this_locality();
  PX_ASSERT_MSG(here != nullptr, "apply outside a ParalleX thread");
  apply_from<Fn>(*here, dest, std::forward<Args>(args)...);
}

template <auto Fn, typename... Args>
void apply_cont(gas::gid dest, parcel::continuation cont, Args&&... args) {
  locality* here = this_locality();
  PX_ASSERT_MSG(here != nullptr, "apply_cont outside a ParalleX thread");
  apply_cont_from<Fn>(*here, dest, cont, std::forward<Args>(args)...);
}

template <auto Fn, typename... Args>
auto async(gas::gid dest, Args&&... args) {
  locality* here = this_locality();
  PX_ASSERT_MSG(here != nullptr, "async outside a ParalleX thread");
  return async_from<Fn>(*here, dest, std::forward<Args>(args)...);
}

}  // namespace px::core
