// Adaptive load rebalancer: introspection counters turned into action.
//
// Paper §2.1: starvation is "idle cycles ... caused either due to
// inadequate program parallelism or due to poor load balancing"; the model
// answers with dynamic adaptive resource management.  This policy engine
// closes the loop over the introspection subsystem:
//
//   observe   per-locality instantaneous ready depths
//             (scheduler::ready_estimate; acting on a lagged signal would
//             chase yesterday's imbalance, so decisions read the live
//             counters while the introspect::monitor EWMA — refreshed on
//             every poll — serves the exported counters and remote
//             observers)
//   decide    load-imbalance coefficient = max_depth / mean_depth;
//             act only when it exceeds a threshold and the deepest queue
//             is deep enough to matter
//   act       (a) migrate the hottest gid-bound data objects away from the
//                 overloaded locality (agas::migrate; in-flight parcels
//                 heal through the stale-cache forwarding path), so the
//                 *message-driven work follows the objects* to idle sites;
//             (b) steer process::spawn_any placement toward the shallowest
//                 ready queues, replacing static round-robin.
//
// poll() is cheap, rate-limited, and runs opportunistically on whichever
// thread has nothing better to do: idle scheduler workers (a starved
// locality lobbies for work on its own idle cycles) and the fabric
// progress thread's idle callback (so a machine whose workers are all
// pinned busy is still rebalanced from outside).
//
// Distributed mode (PR 5): the observe/decide/act loop crosses process
// boundaries.  Sampling a remote rank's ready depth is a px.query_counter
// parcel round trip and acting is a px.migrate_object handoff, so a round
// is a *continuation chain*, never a blocking thread: poll() fires the
// probes (query_counter_cb), each reply lands on the delivery thread and
// counts down, the last one runs decide+act inline, and each issued
// migration's ack releases its slot of the round latch.  Nothing in the
// chain needs a fiber on the overloaded rank — critical, because that
// rank's workers are exactly the ones monopolized by the backlog the
// round exists to shed (a round fiber would starve behind it).
// Decisions are *push-only and symmetric*: every rank runs the same
// policy, but only the rank that observes itself deepest migrates — it
// owns the hot objects, so no cross-rank coordination (or conflict) is
// possible.  A round only fires while this rank has a real backlog
// (ready depth >= min_depth); that gate is what lets the machine quiesce
// — once the backlog drains no new round fires, so wait_quiescent's
// fixed point stays reachable.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "gas/gid.hpp"
#include "util/spinlock.hpp"

namespace px::core {

class runtime;

struct rebalancer_params {
  bool enabled = false;
  // Trigger: max ready depth / mean ready depth must exceed this...
  double threshold = 2.0;
  // ...and the deepest queue must hold at least this many ready threads
  // (rebalancing a near-idle machine is noise, not adaptation).
  std::uint32_t min_depth = 8;
  // Object migrations per rebalance round (the next round re-evaluates,
  // so correction is incremental rather than oscillatory).
  std::uint32_t max_migrations = 4;
  // Minimum spacing between rebalance rounds.  Distributed rounds cost
  // parcel round trips, so they run at interval_us * dist_interval_mult.
  std::uint64_t interval_us = 200;
  std::uint32_t dist_interval_mult = 16;
};

struct rebalancer_stats {
  std::uint64_t rounds = 0;             // imbalance evaluations
  std::uint64_t triggers = 0;           // rounds that exceeded threshold
  std::uint64_t objects_migrated = 0;
  std::uint64_t placement_redirects = 0;  // spawn_any steered off round-robin
  double last_imbalance = 0.0;          // most recent coefficient
};

class rebalancer {
 public:
  rebalancer(runtime& rt, rebalancer_params params);

  rebalancer(const rebalancer&) = delete;
  rebalancer& operator=(const rebalancer&) = delete;

  bool enabled() const noexcept { return params_.enabled; }
  const rebalancer_params& params() const noexcept { return params_; }

  // Evaluates imbalance and acts; rate-limited and self-serializing, so
  // safe (and cheap) to call from any thread on any idle pass.
  void poll() noexcept;

  // Placement choice for spawn_any-style calls: the span member with the
  // shallowest ready queue (ties broken round-robin by `rr`); plain
  // round-robin when disabled.
  gas::locality_id place(const std::vector<gas::locality_id>& span,
                         std::uint64_t rr);

  rebalancer_stats stats() const;

 private:
  void rebalance_once();
  // Distributed round stages (see the class comment): gate + fire probes,
  // per-reply countdown, decide + act, latch slot release.
  void poll_distributed();
  void start_round();
  void note_depth(std::size_t idx, std::uint64_t depth);
  void finish_round();
  void release_round_slot();

  runtime& rt_;
  rebalancer_params params_;

  std::atomic<std::int64_t> last_poll_ns_{0};
  util::spinlock round_lock_;  // one rebalance round at a time

  // Distributed state: last sampled ready depth per rank (place() reads
  // them; probe replies write), the round-in-flight latch, and the two
  // countdowns pacing a round's stages.  The depth-counter gids are
  // resolved lazily inside the first round and touched only under the
  // latch, so they need no lock.
  std::unique_ptr<std::atomic<std::uint64_t>[]> rank_depths_;
  std::atomic<bool> have_samples_{false};
  std::atomic<bool> round_active_{false};
  std::atomic<std::uint32_t> probes_pending_{0};
  std::atomic<std::uint32_t> round_slots_{0};  // issued migrations + sentinel
  std::vector<gas::gid> depth_counter_gids_;

  std::atomic<std::uint64_t> rounds_{0};
  std::atomic<std::uint64_t> triggers_{0};
  std::atomic<std::uint64_t> migrated_{0};
  std::atomic<std::uint64_t> redirects_{0};
  std::atomic<std::uint64_t> last_imbalance_milli_{0};
};

}  // namespace px::core
