// Multi-process distributed runtime tests: the TCP transport end to end.
//
// Every test here runs as parent + ranks (see distributed_helpers.hpp):
// the parent forks this binary once per rank with PX_NET_* set, and each
// rank constructs a runtime whose ctor resolves the tcp backend from that
// environment, bootstraps against rank 0, and meshes up.  The rank body is
// ordinary runtime code — same actions, futures, and quiescence calls as
// the single-process tests — which is the point: the transport is a
// backend, not a programming model.
//
// Collective discipline: all ranks make the same sequence of
// run()/wait_quiescent()/stop() calls (they are collectives over the
// bootstrap control plane).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>

#include "core/action.hpp"
#include "core/runtime.hpp"
#include "distributed_helpers.hpp"
#include "introspect/query.hpp"

namespace {

using namespace px;
using core::runtime;
using core::runtime_params;

// Per-process globals: each rank is its own process, so these are the
// rank-local books the assertions below read.
std::atomic<std::uint64_t> g_hits{0};
std::atomic<std::uint64_t> g_tally{0};

std::uint64_t ping(std::uint64_t x) { return x + 1; }
PX_REGISTER_ACTION(ping)

std::uint64_t whoami() {
  return core::this_locality()->id();
}
PX_REGISTER_ACTION(whoami)

void tally() { g_tally.fetch_add(1); }
PX_REGISTER_ACTION(tally)

// Fan-out storm target: bump the local count, then chain a parcel back to
// rank 0 — quiescence must hold through the second hop too.
void storm_hit() {
  g_hits.fetch_add(1);
  core::locality* here = core::this_locality();
  core::apply<&tally>(here->rt().locality_gid(0));
}
PX_REGISTER_ACTION(storm_hit)

// Rank body shared by the pingpong tests: every rank pings its ring
// neighbor `iters` times and checks the incremented echoes; rank count
// comes from the environment the parent set.
void pingpong_rank_body(int iters) {
  runtime rt;  // backend/rank/ranks resolve from PX_NET_*
  ASSERT_TRUE(rt.distributed());
  const auto n = static_cast<std::uint32_t>(rt.num_localities());
  const std::uint32_t next = (rt.rank() + 1) % n;
  rt.run([&] {
    // Identity first: the action really runs in the neighbor process.
    auto who = core::async<&whoami>(rt.locality_gid(next));
    EXPECT_EQ(who.get(), next);
    for (int i = 0; i < iters; ++i) {
      auto fut = core::async<&ping>(rt.locality_gid(next),
                                    static_cast<std::uint64_t>(i));
      EXPECT_EQ(fut.get(), static_cast<std::uint64_t>(i) + 1);
    }
  });
  rt.stop();
}

TEST(Distributed, Pingpong2) {
  if (px::test::is_rank_child()) {
    pingpong_rank_body(50);
    return;
  }
  px::test::run_ranks(2, "Distributed.Pingpong2");
}

TEST(Distributed, Pingpong4) {
  if (px::test::is_rank_child()) {
    pingpong_rank_body(25);
    return;
  }
  px::test::run_ranks(4, "Distributed.Pingpong4");
}

TEST(Distributed, FanoutStormQuiescence4) {
  constexpr std::uint64_t kPerPeer = 200;
  if (px::test::is_rank_child()) {
    runtime rt;
    const auto n = static_cast<std::uint32_t>(rt.num_localities());
    rt.run([&] {
      if (rt.rank() != 0) return;
      for (std::uint32_t r = 1; r < n; ++r) {
        for (std::uint64_t i = 0; i < kPerPeer; ++i) {
          core::apply<&storm_hit>(rt.locality_gid(r));
        }
      }
    });
    // run() returned == the machine reached *global* quiescence: every
    // storm parcel landed on its peer AND every chained tally landed back
    // on rank 0 — nothing was still on a wire when the verdict fired.
    if (rt.rank() == 0) {
      EXPECT_EQ(g_tally.load(), kPerPeer * (n - 1));
      EXPECT_EQ(g_hits.load(), 0u);
    } else {
      EXPECT_EQ(g_hits.load(), kPerPeer);
    }
    rt.stop();
    return;
  }
  px::test::run_ranks(4, "Distributed.FanoutStormQuiescence4");
}

TEST(Distributed, RepeatedRunsStayCollective) {
  if (px::test::is_rank_child()) {
    runtime rt;
    const auto n = static_cast<std::uint32_t>(rt.num_localities());
    // Three full run/quiesce rounds: the bootstrap collectives must stay
    // aligned across rounds, not just survive one.
    for (int round = 0; round < 3; ++round) {
      rt.run([&] {
        if (rt.rank() != 0) return;
        for (std::uint32_t r = 1; r < n; ++r) {
          for (int i = 0; i < 20; ++i) {
            core::apply<&storm_hit>(rt.locality_gid(r));
          }
        }
      });
    }
    if (rt.rank() == 0) {
      EXPECT_EQ(g_tally.load(), 3u * 20u * (n - 1));
    } else {
      EXPECT_EQ(g_hits.load(), 3u * 20u);
    }
    rt.stop();
    return;
  }
  px::test::run_ranks(2, "Distributed.RepeatedRunsStayCollective");
}

TEST(Distributed, QueryCounterAcrossProcesses) {
  constexpr int kPings = 30;
  if (px::test::is_rank_child()) {
    runtime rt;
    rt.run([&] {
      if (rt.rank() != 0) return;
      for (int i = 0; i < kPings; ++i) {
        auto fut = core::async<&ping>(rt.locality_gid(1),
                                      static_cast<std::uint64_t>(i));
        EXPECT_EQ(fut.get(), static_cast<std::uint64_t>(i) + 1);
      }
      // The counter gid was allocated by *this* process's boot replay but
      // is sampled live in rank 1's process — introspection pays the same
      // parcel round trip as any other remote read.
      auto delivered = introspect::query_counter(
          rt.here(), "runtime/loc1/parcels/delivered");
      ASSERT_TRUE(delivered.has_value());
      EXPECT_GE(delivered->get(), static_cast<std::uint64_t>(kPings));
      auto msgs_rx =
          introspect::query_counter(rt.here(), "runtime/loc1/net/msgs_rx");
      ASSERT_TRUE(msgs_rx.has_value());
      EXPECT_GE(msgs_rx->get(), 1u);
      // Local read of a *remote* counter must refuse (no sampler here)
      // rather than return this process's number for rank 1's path.
      EXPECT_FALSE(
          rt.introspection().read("runtime/loc1/parcels/delivered")
              .has_value());
    });
    rt.stop();
    return;
  }
  px::test::run_ranks(2, "Distributed.QueryCounterAcrossProcesses");
}

// The wire totals the new per-locality net/* counters report must line up
// with what actually crossed the transport.
TEST(Distributed, LinkCountersSeeRealTraffic) {
  if (px::test::is_rank_child()) {
    runtime rt;
    rt.run([&] {
      if (rt.rank() != 0) return;
      for (int i = 0; i < 10; ++i) {
        auto fut = core::async<&ping>(rt.locality_gid(1),
                                      static_cast<std::uint64_t>(i));
        fut.get();
      }
    });
    const auto link = rt.transport().link(rt.rank());
    EXPECT_GT(link.bytes_tx, 0u);
    EXPECT_GT(link.bytes_rx, 0u);
    EXPECT_GT(link.msgs_tx, 0u);
    EXPECT_GT(link.msgs_rx, 0u);
    rt.stop();
    return;
  }
  px::test::run_ranks(2, "Distributed.LinkCountersSeeRealTraffic");
}

}  // namespace
