// Multi-process distributed runtime tests: the tcp and shm transports end
// to end.
//
// Every test here runs as parent + ranks (see distributed_helpers.hpp):
// the parent forks this binary once per rank with PX_NET_* set, and each
// rank constructs a runtime whose ctor resolves the backend from that
// environment, bootstraps against rank 0, and meshes up.  The rank body is
// ordinary runtime code — same actions, futures, and quiescence calls as
// the single-process tests — which is the point: the transport is a
// backend, not a programming model.  The headline scenarios (pingpong,
// fan-out storm, migration storm, percolation) run the *same rank body*
// under both backends; only the run_ranks() backend tag differs.
//
// Collective discipline: all ranks make the same sequence of
// run()/wait_quiescent()/stop() calls (they are collectives over the
// bootstrap control plane).
#include <gtest/gtest.h>

#include <array>
#include <vector>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <thread>

#include "core/action.hpp"
#include "core/echo.hpp"
#include "core/percolation.hpp"
#include "core/process.hpp"
#include "core/runtime.hpp"
#include "distributed_helpers.hpp"
#include "introspect/query.hpp"
#include "litlx/litlx.hpp"
#include "parcel/migration.hpp"

namespace {

using namespace px;
using core::runtime;
using core::runtime_params;

// Per-process globals: each rank is its own process, so these are the
// rank-local books the assertions below read.
std::atomic<std::uint64_t> g_hits{0};
std::atomic<std::uint64_t> g_tally{0};

std::uint64_t ping(std::uint64_t x) { return x + 1; }
PX_REGISTER_ACTION(ping)

std::uint64_t whoami() {
  return core::this_locality()->id();
}
PX_REGISTER_ACTION(whoami)

void tally() { g_tally.fetch_add(1); }
PX_REGISTER_ACTION(tally)

// Fan-out storm target: bump the local count, then chain a parcel back to
// rank 0 — quiescence must hold through the second hop too.
void storm_hit() {
  g_hits.fetch_add(1);
  core::locality* here = core::this_locality();
  core::apply<&tally>(here->rt().locality_gid(0));
}
PX_REGISTER_ACTION(storm_hit)

// Rank body shared by the pingpong tests: every rank pings its ring
// neighbor `iters` times and checks the incremented echoes; rank count
// comes from the environment the parent set.
void pingpong_rank_body(int iters) {
  runtime rt;  // backend/rank/ranks resolve from PX_NET_*
  ASSERT_TRUE(rt.distributed());
  const auto n = static_cast<std::uint32_t>(rt.num_localities());
  const std::uint32_t next = (rt.rank() + 1) % n;
  rt.run([&] {
    // Identity first: the action really runs in the neighbor process.
    auto who = core::async<&whoami>(rt.locality_gid(next));
    EXPECT_EQ(who.get(), next);
    for (int i = 0; i < iters; ++i) {
      auto fut = core::async<&ping>(rt.locality_gid(next),
                                    static_cast<std::uint64_t>(i));
      EXPECT_EQ(fut.get(), static_cast<std::uint64_t>(i) + 1);
    }
  });
  rt.stop();
}

TEST(Distributed, Pingpong2) {
  if (px::test::is_rank_child()) {
    pingpong_rank_body(50);
    return;
  }
  px::test::run_ranks(2, "Distributed.Pingpong2");
}

TEST(Distributed, Pingpong4) {
  if (px::test::is_rank_child()) {
    pingpong_rank_body(25);
    return;
  }
  px::test::run_ranks(4, "Distributed.Pingpong4");
}

TEST(Distributed, PingpongShm2) {
  if (px::test::is_rank_child()) {
    pingpong_rank_body(50);
    return;
  }
  px::test::run_ranks(2, "Distributed.PingpongShm2", "shm");
}

// Rank body shared by the fan-out storm tests (tcp and shm).
void fanout_storm_rank_body(std::uint64_t per_peer) {
  runtime rt;
  const auto n = static_cast<std::uint32_t>(rt.num_localities());
  rt.run([&] {
    if (rt.rank() != 0) return;
    for (std::uint32_t r = 1; r < n; ++r) {
      for (std::uint64_t i = 0; i < per_peer; ++i) {
        core::apply<&storm_hit>(rt.locality_gid(r));
      }
    }
  });
  // run() returned == the machine reached *global* quiescence: every
  // storm parcel landed on its peer AND every chained tally landed back
  // on rank 0 — nothing was still on a wire when the verdict fired.
  if (rt.rank() == 0) {
    EXPECT_EQ(g_tally.load(), per_peer * (n - 1));
    EXPECT_EQ(g_hits.load(), 0u);
  } else {
    EXPECT_EQ(g_hits.load(), per_peer);
  }
  rt.stop();
}

TEST(Distributed, FanoutStormQuiescence4) {
  if (px::test::is_rank_child()) {
    fanout_storm_rank_body(200);
    return;
  }
  px::test::run_ranks(4, "Distributed.FanoutStormQuiescence4");
}

TEST(Distributed, FanoutStormQuiescenceShm4) {
  if (px::test::is_rank_child()) {
    fanout_storm_rank_body(200);
    return;
  }
  px::test::run_ranks(4, "Distributed.FanoutStormQuiescenceShm4", "shm");
}

TEST(Distributed, RepeatedRunsStayCollective) {
  if (px::test::is_rank_child()) {
    runtime rt;
    const auto n = static_cast<std::uint32_t>(rt.num_localities());
    // Three full run/quiesce rounds: the bootstrap collectives must stay
    // aligned across rounds, not just survive one.
    for (int round = 0; round < 3; ++round) {
      rt.run([&] {
        if (rt.rank() != 0) return;
        for (std::uint32_t r = 1; r < n; ++r) {
          for (int i = 0; i < 20; ++i) {
            core::apply<&storm_hit>(rt.locality_gid(r));
          }
        }
      });
    }
    if (rt.rank() == 0) {
      EXPECT_EQ(g_tally.load(), 3u * 20u * (n - 1));
    } else {
      EXPECT_EQ(g_hits.load(), 3u * 20u);
    }
    rt.stop();
    return;
  }
  px::test::run_ranks(2, "Distributed.RepeatedRunsStayCollective");
}

TEST(Distributed, QueryCounterAcrossProcesses) {
  constexpr int kPings = 30;
  if (px::test::is_rank_child()) {
    runtime rt;
    rt.run([&] {
      if (rt.rank() != 0) return;
      for (int i = 0; i < kPings; ++i) {
        auto fut = core::async<&ping>(rt.locality_gid(1),
                                      static_cast<std::uint64_t>(i));
        EXPECT_EQ(fut.get(), static_cast<std::uint64_t>(i) + 1);
      }
      // The counter gid was allocated by *this* process's boot replay but
      // is sampled live in rank 1's process — introspection pays the same
      // parcel round trip as any other remote read.
      auto delivered = introspect::query_counter(
          rt.here(), "runtime/loc1/parcels/delivered");
      ASSERT_TRUE(delivered.has_value());
      EXPECT_GE(delivered->get(), static_cast<std::uint64_t>(kPings));
      auto msgs_rx =
          introspect::query_counter(rt.here(), "runtime/loc1/net/msgs_rx");
      ASSERT_TRUE(msgs_rx.has_value());
      EXPECT_GE(msgs_rx->get(), 1u);
      // Local read of a *remote* counter must refuse (no sampler here)
      // rather than return this process's number for rank 1's path.
      EXPECT_FALSE(
          rt.introspection().read("runtime/loc1/parcels/delivered")
              .has_value());
    });
    rt.stop();
    return;
  }
  px::test::run_ranks(2, "Distributed.QueryCounterAcrossProcesses");
}

// Same cross-process counter query over the shared-memory data plane: the
// introspection round trip must be backend-agnostic.
TEST(Distributed, QueryCounterAcrossProcessesShm) {
  constexpr int kPings = 30;
  if (px::test::is_rank_child()) {
    runtime rt;
    rt.run([&] {
      if (rt.rank() != 0) return;
      for (int i = 0; i < kPings; ++i) {
        auto fut = core::async<&ping>(rt.locality_gid(1),
                                      static_cast<std::uint64_t>(i));
        EXPECT_EQ(fut.get(), static_cast<std::uint64_t>(i) + 1);
      }
      auto delivered = introspect::query_counter(
          rt.here(), "runtime/loc1/parcels/delivered");
      ASSERT_TRUE(delivered.has_value());
      EXPECT_GE(delivered->get(), static_cast<std::uint64_t>(kPings));
      auto msgs_rx =
          introspect::query_counter(rt.here(), "runtime/loc1/net/msgs_rx");
      ASSERT_TRUE(msgs_rx.has_value());
      EXPECT_GE(msgs_rx->get(), 1u);
      EXPECT_FALSE(
          rt.introspection().read("runtime/loc1/parcels/delivered")
              .has_value());
    });
    rt.stop();
    return;
  }
  px::test::run_ranks(2, "Distributed.QueryCounterAcrossProcessesShm", "shm");
}

// The load monitor's EWMA must be live and queryable across ranks on the
// shm backend — the rebalancer's view of remote load depends on it.
TEST(Distributed, MonitorEwmaQueryableAcrossProcessesShm) {
  if (px::test::is_rank_child()) {
    runtime rt;
    rt.run([&] {
      if (rt.rank() != 0) return;
      for (int i = 0; i < 50; ++i) {
        auto fut = core::async<&ping>(rt.locality_gid(1),
                                      static_cast<std::uint64_t>(i));
        EXPECT_EQ(fut.get(), static_cast<std::uint64_t>(i) + 1);
      }
      // Fifty round trips leave rank 1 plenty of idle passes, and the
      // monitor samples from the flush-on-idle hook every 100us.
      auto samples = introspect::query_counter(
          rt.here(), "runtime/loc1/monitor/samples");
      ASSERT_TRUE(samples.has_value());
      EXPECT_GE(samples->get(), 1u);
      // The EWMA's value is load-dependent; what must hold is that the
      // remote sampler answers (the future resolves) rather than hanging
      // or refusing on a locality this process does not host.
      auto ewma = introspect::query_counter(
          rt.here(), "runtime/loc1/monitor/ready_ewma_milli");
      ASSERT_TRUE(ewma.has_value());
      (void)ewma->get();
    });
    rt.stop();
    return;
  }
  px::test::run_ranks(2, "Distributed.MonitorEwmaQueryableAcrossProcessesShm",
                      "shm");
}

// The wire totals the new per-locality net/* counters report must line up
// with what actually crossed the transport.
TEST(Distributed, LinkCountersSeeRealTraffic) {
  if (px::test::is_rank_child()) {
    runtime rt;
    rt.run([&] {
      if (rt.rank() != 0) return;
      for (int i = 0; i < 10; ++i) {
        auto fut = core::async<&ping>(rt.locality_gid(1),
                                      static_cast<std::uint64_t>(i));
        fut.get();
      }
    });
    const auto link = rt.transport().link(rt.rank());
    EXPECT_GT(link.bytes_tx, 0u);
    EXPECT_GT(link.bytes_rx, 0u);
    EXPECT_GT(link.msgs_tx, 0u);
    EXPECT_GT(link.msgs_rx, 0u);
    rt.stop();
    return;
  }
  px::test::run_ranks(2, "Distributed.LinkCountersSeeRealTraffic");
}

// ===================================================================
// Cross-process AGAS migration (PR 5).
//
// Phase discipline: every rt.run() below is a collective — each phase ends
// at *global* quiescence, so a phase's parcels (including owner hints and
// handoff acks) are fully drained before the next phase's assertions read
// local state.

// A migratable payload every rank can reconstruct (same binary).
struct mig_payload {
  std::uint64_t value = 0;

  template <typename Ar>
  friend void serialize(Ar& ar, mig_payload& p) {
    ar& p.value;
  }
};
PX_REGISTER_MIGRATABLE(mig_payload)

constexpr std::size_t kMaxObjs = 16;
std::array<std::atomic<std::uint64_t>, kMaxObjs> g_objs{};
void announce_obj(std::uint64_t slot, std::uint64_t bits) {
  g_objs[slot].store(bits);
}
PX_REGISTER_ACTION(announce_obj)

// Dispatch counter: bumps wherever the destination object currently lives,
// so per-process sums measure exactly-once delivery under migration.
std::atomic<std::uint64_t> g_pokes{0};
void poke() { g_pokes.fetch_add(1); }
PX_REGISTER_ACTION(poke)

// Book-keeping report each rank sends to rank 0 from a snapshot taken at a
// globally quiescent point: the machine-wide parcel conservation law is
//   sum(sent) == sum(delivered - forwarded) + sum(dropped)
// (delivered counts every landing, forwarded subtracts the re-routed ones,
// dropped accounts parcels retired by the hop bound).
struct books {
  std::atomic<std::uint64_t> reports{0};
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> delivered{0};
  std::atomic<std::uint64_t> forwarded{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> pokes_dispatched{0};
  std::atomic<std::uint64_t> pokes_sent{0};
};
books g_books;

void report_books(std::uint64_t sent, std::uint64_t delivered,
                  std::uint64_t forwarded, std::uint64_t dropped,
                  std::uint64_t pokes_dispatched, std::uint64_t pokes_sent) {
  g_books.sent.fetch_add(sent);
  g_books.delivered.fetch_add(delivered);
  g_books.forwarded.fetch_add(forwarded);
  g_books.dropped.fetch_add(dropped);
  g_books.pokes_dispatched.fetch_add(pokes_dispatched);
  g_books.pokes_sent.fetch_add(pokes_sent);
  g_books.reports.fetch_add(1);
}
PX_REGISTER_ACTION(report_books)

// Snapshot local books (call only between collective runs) and ship them
// to rank 0 inside one more collective run; returns after it completes.
void gather_books(runtime& rt, std::uint64_t pokes_sent_here) {
  const auto st = rt.here().stats();
  const std::uint64_t pokes_here = g_pokes.load();
  // Barrier before reporting: the quiescence verdict reaches the non-root
  // ranks slightly before rank 0 returns from the collective, so without
  // this a fast rank's report parcel can land on rank 0 *before* rank 0
  // snapshots — inflating its delivered count with a post-snapshot send.
  // An empty collective cannot complete until every rank (and so every
  // snapshot above) has entered it.
  rt.run([] {});
  rt.run([&] {
    core::apply<&report_books>(rt.locality_gid(0), st.parcels_sent,
                               st.parcels_delivered, st.parcels_forwarded,
                               st.parcels_dropped, pokes_here,
                               pokes_sent_here);
  });
}

void expect_conservation() {
  EXPECT_EQ(g_books.sent.load(),
            g_books.delivered.load() - g_books.forwarded.load() +
                g_books.dropped.load());
  EXPECT_EQ(g_books.pokes_dispatched.load(), g_books.pokes_sent.load());
}

// An object migrates home -> rank 1 -> rank 2 while every rank keeps
// poking it; dispatches land wherever the object is, senders converge via
// piggybacked owner hints, stale hints self-correct, and the machine-wide
// books reconcile exactly-once delivery.
TEST(Distributed, MigrationMovesObjectAndParcelsFollow4) {
  constexpr std::uint64_t kPokes = 40;
  if (px::test::is_rank_child()) {
    runtime rt;
    ASSERT_TRUE(rt.migration_enabled());
    const auto n = static_cast<std::uint32_t>(rt.num_localities());
    std::uint64_t pokes_sent_here = 0;

    // Phase 1: rank 0 creates the migratable object and announces its gid.
    rt.run([&] {
      if (rt.rank() != 0) return;
      const gas::gid o = rt.new_migratable<mig_payload>(0, 7ull);
      for (std::uint32_t r = 0; r < n; ++r) {
        core::apply<&announce_obj>(rt.locality_gid(r), 0ull, o.bits());
      }
    });
    const gas::gid o = gas::gid::from_bits(g_objs[0].load());
    ASSERT_TRUE(o.valid());

    // Phase 2: everyone pokes the object at its home.
    rt.run([&] {
      for (std::uint64_t i = 0; i < kPokes; ++i) core::apply<&poke>(o);
    });
    pokes_sent_here += kPokes;
    if (rt.rank() == 0) {
      EXPECT_EQ(g_pokes.load(), n * kPokes);
    }

    // Phase 3: migrate off the home rank.
    rt.run([&] {
      if (rt.rank() == 0) {
        EXPECT_TRUE(rt.migrate_gid(o, 1));
      }
    });
    if (rt.rank() == 0) {
      EXPECT_FALSE(rt.here().has_object(o));
      const auto owner = rt.gas().resolve_authoritative(0, o);
      ASSERT_TRUE(owner.has_value());
      EXPECT_EQ(*owner, 1u);
    }
    if (rt.rank() == 1) {
      EXPECT_TRUE(rt.here().has_object(o));
    }

    // Phase 4: everyone pokes again — senders route via home forwarding
    // and converge on direct routing through the piggybacked hints.
    rt.run([&] {
      for (std::uint64_t i = 0; i < kPokes; ++i) core::apply<&poke>(o);
    });
    pokes_sent_here += kPokes;
    if (rt.rank() == 1) {
      EXPECT_EQ(g_pokes.load(), n * kPokes);
    }
    if (rt.rank() >= 2) {
      const auto hint = rt.gas().cached(rt.rank(), o);
      ASSERT_TRUE(hint.has_value());
      EXPECT_EQ(*hint, 1u);
    }

    // Barrier: the hint assertions above must finish on every rank before
    // any rank starts phase 5 (its implant would legitimately rewrite
    // rank 2's hint mid-assertion).
    rt.run([] {});

    // Phase 5: migrate again (initiated by the *current* owner, not the
    // home), leaving rank 2+'s hints stale.
    rt.run([&] {
      if (rt.rank() == 1) {
        EXPECT_TRUE(rt.migrate_gid(o, 2));
      }
    });

    // Phase 6: rank 3 pokes on its stale hint — the parcel lands at the
    // ex-owner, gets invalidated+rerouted via home, and still dispatches
    // exactly once at rank 2.
    rt.run([&] {
      if (rt.rank() != 3) return;
      for (std::uint64_t i = 0; i < kPokes; ++i) core::apply<&poke>(o);
    });
    if (rt.rank() == 3) pokes_sent_here += kPokes;
    if (rt.rank() == 2) {
      EXPECT_EQ(g_pokes.load(), kPokes);
    }

    gather_books(rt, pokes_sent_here);
    if (rt.rank() == 0) {
      EXPECT_EQ(g_books.reports.load(), n);
      EXPECT_EQ(g_books.dropped.load(), 0u);
      expect_conservation();
    }
    rt.stop();
    return;
  }
  px::test::run_ranks(4, "Distributed.MigrationMovesObjectAndParcelsFollow4");
}

// With the forward budget at zero, a parcel that needs even one home
// forward is dropped with a diagnostic and the conservation books still
// reconcile; the piggybacked hint (sent before the drop) lets the next
// poke route directly and land.
TEST(Distributed, ForwardBoundExhaustedDropsWithDiagnostic) {
  if (px::test::is_rank_child()) {
    runtime_params p;
    p.max_forwards = 0;
    runtime rt(p);

    rt.run([&] {
      if (rt.rank() != 0) return;
      const gas::gid o = rt.new_migratable<mig_payload>(0, 1ull);
      for (std::uint32_t r = 0; r < 3; ++r) {
        core::apply<&announce_obj>(rt.locality_gid(r), 0ull, o.bits());
      }
    });
    const gas::gid o = gas::gid::from_bits(g_objs[0].load());

    rt.run([&] {
      if (rt.rank() == 0) {
        EXPECT_TRUE(rt.migrate_gid(o, 1));
      }
    });

    // One poke from rank 2: home-routed, needs a forward, budget is 0.
    rt.run([&] {
      if (rt.rank() == 2) core::apply<&poke>(o);
    });
    if (rt.rank() == 0) {
      EXPECT_EQ(rt.here().stats().parcels_dropped, 1u);
    }
    if (rt.rank() == 1) {
      EXPECT_EQ(g_pokes.load(), 0u);
    }
    if (rt.rank() == 2) {
      // The hint still arrived (feedback precedes the drop)...
      const auto hint = rt.gas().cached(rt.rank(), o);
      ASSERT_TRUE(hint.has_value());
      EXPECT_EQ(*hint, 1u);
    }

    // Barrier: rank 1's zero-dispatch assertion must land before rank 2's
    // retry can reach it.
    rt.run([] {});

    // ...so the retry routes directly and dispatches.
    rt.run([&] {
      if (rt.rank() == 2) core::apply<&poke>(o);
    });
    if (rt.rank() == 1) {
      EXPECT_EQ(g_pokes.load(), 1u);
    }

    gather_books(rt, rt.rank() == 2 ? 2u : 0u);
    if (rt.rank() == 0) {
      EXPECT_EQ(g_books.dropped.load(), 1u);
      EXPECT_EQ(g_books.sent.load(),
                g_books.delivered.load() - g_books.forwarded.load() +
                    g_books.dropped.load());
      // One of the two pokes was dropped, one dispatched.
      EXPECT_EQ(g_books.pokes_dispatched.load(), 1u);
    }
    rt.stop();
    return;
  }
  px::test::run_ranks(3, "Distributed.ForwardBoundExhaustedDropsWithDiagnostic");
}

// Migration storm: rank 0 migrates a whole population of hot objects while
// every rank keeps a parcel storm pointed at them.  Every poke dispatches
// exactly once somewhere, nothing drops, and the books reconcile.  Shared
// rank body — the shm variant reruns it over rings instead of sockets,
// where the forwarding races are tighter (no kernel socket buffering to
// space the parcels out).
void migration_storm_rank_body() {
  constexpr std::size_t kObjs = 6;
  constexpr std::uint64_t kPokes = 25;  // per rank per object
  runtime rt;
  const auto n = static_cast<std::uint32_t>(rt.num_localities());

  rt.run([&] {
    if (rt.rank() != 0) return;
    for (std::size_t i = 0; i < kObjs; ++i) {
      const gas::gid o = rt.new_migratable<mig_payload>(0, i);
      for (std::uint32_t r = 0; r < n; ++r) {
        core::apply<&announce_obj>(rt.locality_gid(r), i, o.bits());
      }
    }
  });

  // One collective run: the storm races the migrations.
  rt.run([&] {
    if (rt.rank() == 0) {
      // Interleave: migrate each object away mid-storm.
      for (std::size_t i = 0; i < kObjs; ++i) {
        for (std::uint64_t k = 0; k < kPokes; ++k) {
          core::apply<&poke>(gas::gid::from_bits(g_objs[i].load()));
        }
        EXPECT_TRUE(rt.migrate_gid(gas::gid::from_bits(g_objs[i].load()),
                                   1 + static_cast<gas::locality_id>(
                                           i % (n - 1))));
      }
    } else {
      for (std::size_t i = 0; i < kObjs; ++i) {
        for (std::uint64_t k = 0; k < kPokes; ++k) {
          core::apply<&poke>(gas::gid::from_bits(g_objs[i].load()));
        }
      }
    }
  });

  gather_books(rt, kObjs * kPokes);
  if (rt.rank() == 0) {
    EXPECT_EQ(g_books.reports.load(), n);
    EXPECT_EQ(g_books.dropped.load(), 0u);
    EXPECT_EQ(g_books.pokes_dispatched.load(),
              static_cast<std::uint64_t>(n) * kObjs * kPokes);
    expect_conservation();
    // The population really left home.
    EXPECT_EQ(rt.here().object_count(), 0u);
  }
  rt.stop();
}

TEST(Distributed, MigrationStorm4) {
  if (px::test::is_rank_child()) {
    migration_storm_rank_body();
    return;
  }
  px::test::run_ranks(4, "Distributed.MigrationStorm4");
}

TEST(Distributed, MigrationStormShm4) {
  if (px::test::is_rank_child()) {
    migration_storm_rank_body();
    return;
  }
  px::test::run_ranks(4, "Distributed.MigrationStormShm4", "shm");
}

// End-to-end adaptive loop over real sockets: a skewed message-driven
// workload pinned to rank 0, the distributed rebalancer sampling remote
// ready depths via query_counter and shipping hot objects away through
// px.migrate_object — chains follow their objects, every hop dispatches
// exactly once, and rank 0 ends the run lighter than it started.
std::atomic<std::uint64_t> g_hops_done{0};
void dist_chain_hop(std::uint64_t gid_bits, std::uint32_t remaining) {
  // A short blocking service hold: queued hops behind it wait, which is
  // what builds the ready-depth skew the rebalancer feeds on.
  std::this_thread::sleep_for(std::chrono::microseconds(50));
  g_hops_done.fetch_add(1);
  if (remaining > 0) {
    core::apply<&dist_chain_hop>(gas::gid::from_bits(gid_bits), gid_bits,
                                 remaining - 1);
  }
}
PX_REGISTER_ACTION(dist_chain_hop)

std::uint64_t hops_report() { return g_hops_done.load(); }
PX_REGISTER_ACTION(hops_report)

TEST(Distributed, RebalancerMigratesAcrossRanks4) {
  constexpr std::size_t kObjs = 10;
  constexpr std::uint32_t kHops = 50;
  if (px::test::is_rank_child()) {
    runtime_params p;
    p.rebalance = 1;
    p.rebalance_min_depth = 4;
    p.rebalance_interval_us = 50;  // x dist_interval_mult between rounds
    runtime rt(p);
    ASSERT_TRUE(rt.balancer().enabled());
    const auto n = static_cast<std::uint32_t>(rt.num_localities());

    rt.run([&] {
      if (rt.rank() != 0) return;
      for (std::size_t i = 0; i < kObjs; ++i) {
        const gas::gid o = rt.new_migratable<mig_payload>(0, i);
        for (std::uint32_t r = 0; r < n; ++r) {
          core::apply<&announce_obj>(rt.locality_gid(r), i, o.bits());
        }
      }
    });

    rt.run([&] {
      if (rt.rank() != 0) return;
      for (std::size_t i = 0; i < kObjs; ++i) {
        core::apply<&dist_chain_hop>(gas::gid::from_bits(g_objs[i].load()),
                                     g_objs[i].load(), kHops - 1);
      }
    });

    // Exactly-once across the machine: gather per-rank hop counts.
    rt.run([&] {
      if (rt.rank() != 0) return;
      std::uint64_t total = 0;
      for (std::uint32_t r = 0; r < n; ++r) {
        total += core::async<&hops_report>(rt.locality_gid(r)).get();
      }
      EXPECT_EQ(total, static_cast<std::uint64_t>(kObjs) * kHops);
    });
    if (rt.rank() == 0) {
      EXPECT_GE(rt.balancer().stats().objects_migrated, 1u);
      EXPECT_LT(rt.here().object_count(), kObjs);
    }
    rt.stop();
    return;
  }
  px::test::run_ranks(4, "Distributed.RebalancerMigratesAcrossRanks4");
}

// Typed tracked children place work on any rank of a process span: the
// activity token is taken at the primary before the parcel ships and a
// px.process_credit parcel returns it when the child retires, so
// terminated() observes genuinely remote work.
std::atomic<std::uint64_t> g_child_runs{0};
void child_work(std::uint64_t x) { g_child_runs.fetch_add(x); }
PX_REGISTER_PROCESS_CHILD(child_work)

TEST(Distributed, ProcessSpawnsTypedChildrenAcrossRanks) {
  if (px::test::is_rank_child()) {
    runtime rt;
    const auto n = static_cast<std::uint32_t>(rt.num_localities());
    rt.run([&] {
      if (rt.rank() != 0) return;
      std::vector<gas::locality_id> span;
      for (std::uint32_t r = 0; r < n; ++r) span.push_back(r);
      auto proc = core::create_process(rt, span);
      // Rebalancer off => spawn_any degenerates to round-robin: exactly
      // three children per rank.
      for (int i = 0; i < 12; ++i) proc->spawn_any<&child_work>(1ull);
      proc->seal();
      proc->terminated().get();
    });
    EXPECT_EQ(g_child_runs.load(), 3u);
    rt.stop();
    return;
  }
  px::test::run_ranks(4, "Distributed.ProcessSpawnsTypedChildrenAcrossRanks");
}

// Percolation across a process boundary: the staging credit a source
// acquires for a remote target must flow back to the *source's* window
// when the task retires (px.percolate_release), or the window wedges shut
// after staging_slots tasks.  40 sequential percolations through a
// 16-slot window prove the credits recycle.
std::uint64_t perc_task(std::uint64_t x) { return x * 2; }
PX_REGISTER_PERCOLATABLE(perc_task)

void percolate_rank_body() {
  runtime rt;
  rt.run([&] {
    if (rt.rank() != 0) return;
    for (std::uint64_t i = 0; i < 40; ++i) {
      auto fut = core::percolate<&perc_task>(1, i);
      EXPECT_EQ(fut.get(), 2 * i);
    }
  });
  if (rt.rank() == 0) {
    EXPECT_EQ(rt.percolation_mgr().stats().tasks_percolated, 40u);
  }
  rt.stop();
}

TEST(Distributed, PercolateAcrossRanksRecyclesSlots) {
  if (px::test::is_rank_child()) {
    percolate_rank_body();
    return;
  }
  px::test::run_ranks(2, "Distributed.PercolateAcrossRanksRecyclesSlots");
}

// The convolve-style staged-dataflow substrate (percolation windows and
// their credit recycling) over shm rings.
TEST(Distributed, PercolateAcrossRanksShm2) {
  if (px::test::is_rank_child()) {
    percolate_rank_body();
    return;
  }
  px::test::run_ranks(2, "Distributed.PercolateAcrossRanksShm2", "shm");
}

// ===================================================================
// PR 6: the retired remote_spawn surface, re-proved over its typed
// replacements — echo replication, litlx atomic sections, and grandchild
// credit splitting, each driven to global quiescence on 4 real ranks with
// the parcel conservation law checked at the end.

// ECHO-1 over TCP: an echo object created at rank 0, first-touch fetched
// by the other ranks, updated by rank 1, converged everywhere — the
// optimistic-copy protocol entirely over real sockets.
TEST(Distributed, EchoReplicasConvergeAcrossRanks4) {
  if (px::test::is_rank_child()) {
    runtime rt;
    const auto n = static_cast<std::uint32_t>(rt.num_localities());

    rt.run([&] {
      if (rt.rank() != 0) return;
      core::echo<std::uint64_t> var(rt, 0, 5ull);
      for (std::uint32_t r = 0; r < n; ++r) {
        core::apply<&announce_obj>(rt.locality_gid(r), 0ull,
                                   var.id().bits());
      }
    });
    core::echo<std::uint64_t> var(gas::gid::from_bits(g_objs[0].load()));
    ASSERT_TRUE(var.valid());

    // First touch: non-home ranks fetch the authoritative copy, implant a
    // local replica, and subsequent reads are replica hits.
    rt.run([&] {
      EXPECT_EQ(var.read().first, 5ull);
      EXPECT_EQ(var.read().first, 5ull);
    });

    // A non-home writer commits through the split-phase validate path.
    rt.run([&] {
      if (rt.rank() != 1) return;
      EXPECT_EQ(var.update([](std::uint64_t v) { return v + 10; }), 15ull);
    });

    // The commit's replica broadcast drained inside the collective above:
    // every rank's local replica now agrees.
    rt.run([&] { EXPECT_EQ(var.read().first, 15ull); });
    if (rt.rank() == 0) {
      EXPECT_GE(rt.echo_mgr().stats().commits_ok, 1u);
    }

    gather_books(rt, 0);
    if (rt.rank() == 0) {
      EXPECT_EQ(g_books.reports.load(), n);
      EXPECT_EQ(g_books.dropped.load(), 0u);
      expect_conservation();
    }
    rt.stop();
    return;
  }
  px::test::run_ranks(4, "Distributed.EchoReplicasConvergeAcrossRanks4");
}

// LITL-X atomic sections over TCP: every rank hammers one guarded cell at
// rank 0 through the typed-section parcels; the handoffs ride the same
// per-locality parcel accounting as every other parcel (identical in sim
// and tcp), and the count is exact.
std::int64_t add_i64(std::int64_t& value, std::int64_t d) {
  value += d;
  return value;
}
PX_REGISTER_ATOMIC_SECTION(std::int64_t, add_i64)

std::int64_t read_i64(std::int64_t& value) { return value; }
PX_REGISTER_ATOMIC_SECTION(std::int64_t, read_i64)

TEST(Distributed, LitlxAtomicSectionsAcrossRanks4) {
  constexpr std::uint64_t kOps = 25;
  if (px::test::is_rank_child()) {
    runtime rt;
    const auto n = static_cast<std::uint32_t>(rt.num_localities());

    rt.run([&] {
      if (rt.rank() != 0) return;
      litlx::atomic_object<std::int64_t> acc(rt, 0, 0);
      for (std::uint32_t r = 0; r < n; ++r) {
        core::apply<&announce_obj>(rt.locality_gid(r), 0ull, acc.id().bits());
      }
    });
    litlx::atomic_object<std::int64_t> acc(
        gas::gid::from_bits(g_objs[0].load()));

    const std::uint64_t sent_before = rt.here().stats().parcels_sent;
    rt.run([&] {
      std::vector<lco::future<std::int64_t>> acks;
      for (std::uint64_t i = 0; i < kOps; ++i) {
        acks.push_back(acc.atomically<&add_i64>(std::int64_t{1}));
      }
      for (auto& a : acks) a.get();
    });
    rt.run([&] {
      if (rt.rank() != 0) return;
      EXPECT_EQ(acc.atomically<&read_i64>().get(),
                static_cast<std::int64_t>(n * kOps));
    });
    if (rt.rank() != 0) {
      // Satellite check: each section handoff was a real counted parcel.
      EXPECT_GE(rt.here().stats().parcels_sent - sent_before, kOps);
    }

    gather_books(rt, 0);
    if (rt.rank() == 0) {
      EXPECT_EQ(g_books.reports.load(), n);
      EXPECT_EQ(g_books.dropped.load(), 0u);
      expect_conservation();
    }
    rt.stop();
    return;
  }
  px::test::run_ranks(4, "Distributed.LitlxAtomicSectionsAcrossRanks4");
}

// Credit splitting: remote children spawn tracked grandchildren through
// process_ref — no round trip to the primary — and the primary's
// termination event still waits for every leaf, wherever spawn_any placed
// it.  The site ledgers drain leaf-first and the books reconcile.
std::atomic<std::uint64_t> g_leaves{0};
void grand_leaf(std::uint64_t x) { g_leaves.fetch_add(x); }
PX_REGISTER_PROCESS_CHILD(grand_leaf)

void grand_parent(std::uint64_t proc_bits, std::uint64_t kids) {
  core::runtime& rt = core::this_locality()->rt();
  core::process_ref ref(rt, proc_bits);
  for (std::uint64_t i = 0; i < kids; ++i) {
    ref.spawn_any<&grand_leaf>(1ull);  // splits this rank's credit
  }
}
PX_REGISTER_PROCESS_CHILD(grand_parent)

std::uint64_t leaves_report() { return g_leaves.load(); }
PX_REGISTER_ACTION(leaves_report)

TEST(Distributed, GrandchildrenSplitCreditsAcrossRanks4) {
  constexpr std::uint64_t kKids = 8;
  if (px::test::is_rank_child()) {
    runtime rt;
    const auto n = static_cast<std::uint32_t>(rt.num_localities());

    rt.run([&] {
      if (rt.rank() != 0) return;
      std::vector<gas::locality_id> span;
      for (std::uint32_t r = 0; r < n; ++r) span.push_back(r);
      auto proc = core::create_process(rt, span);
      for (std::uint32_t r = 1; r < n; ++r) {
        proc->spawn_on<&grand_parent>(r, proc->id().bits(), kKids);
      }
      proc->seal();
      // Fires only after every grandchild — spawned remotely, placed
      // anywhere by spawn_any — has retired and its split credit returned.
      proc->terminated().get();
      std::uint64_t total = 0;
      for (std::uint32_t r = 0; r < n; ++r) {
        total += core::async<&leaves_report>(rt.locality_gid(r)).get();
      }
      EXPECT_EQ(total, static_cast<std::uint64_t>(n - 1) * kKids);
    });

    gather_books(rt, 0);
    if (rt.rank() == 0) {
      EXPECT_EQ(g_books.reports.load(), n);
      EXPECT_EQ(g_books.dropped.load(), 0u);
      expect_conservation();
    }
    rt.stop();
    return;
  }
  px::test::run_ranks(4, "Distributed.GrandchildrenSplitCreditsAcrossRanks4");
}

}  // namespace
