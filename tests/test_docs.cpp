// Doc-consistency suite: the reference pages under docs/ cannot rot.
//
// Two invariants, both checked against the *live* runtime rather than a
// hand-maintained list:
//
//   * every counter path the introspection registry actually exposes
//     appears in docs/counters.md (per-locality paths normalized to the
//     documented loc<i> placeholder), so the counter reference always
//     matches the schema the code registers;
//   * every knob in util::config::known_knobs() is documented in
//     docs/counters.md AND is accepted by the environment-loading path
//     (the PR 3 underscore-normalization bug class), and — the reverse
//     direction — every PX_* token the doc mentions is either a known knob
//     or an explicitly allowlisted bench-harness variable, so the doc
//     cannot drift ahead of the code either.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>

#include "core/runtime.hpp"
#include "util/config.hpp"

namespace {

using namespace px;

std::string read_doc(const std::string& rel) {
  const std::string path = std::string(PX_SOURCE_DIR) + "/" + rel;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// runtime/loc3/sched/ready_depth -> runtime/loc<i>/sched/ready_depth
std::string normalize_locality(const std::string& path) {
  static const std::regex loc_re("loc[0-9]+");
  return std::regex_replace(path, loc_re, "loc<i>");
}

TEST(Docs, EveryLiveCounterPathIsDocumented) {
  const std::string doc = read_doc("docs/counters.md");
  ASSERT_FALSE(doc.empty());

  core::runtime_params p;
  p.localities = 2;
  p.workers_per_locality = 1;
  core::runtime rt(p);  // counters register at construction; no start()

  const auto counters = rt.introspection().list("runtime");
  ASSERT_GT(counters.size(), 20u);
  std::set<std::string> missing;
  for (const auto& c : counters) {
    const std::string normalized = normalize_locality(c.path);
    if (doc.find(normalized) == std::string::npos) {
      missing.insert(normalized);
    }
  }
  EXPECT_TRUE(missing.empty())
      << "live counter paths absent from docs/counters.md:\n  "
      << [&] {
           std::string out;
           for (const auto& m : missing) out += m + "\n  ";
           return out;
         }();
}

TEST(Docs, EveryKnownKnobIsDocumentedAndAccepted) {
  const std::string doc = read_doc("docs/counters.md");
  const auto knobs = util::config::known_knobs();
  ASSERT_GT(knobs.size(), 10u);

  for (const auto& k : knobs) {
    EXPECT_NE(doc.find(k.env), std::string::npos)
        << k.env << " (" << k.key << ") is not documented in "
        << "docs/counters.md";

    // Accepted-by-config check: set the variable, reload the environment,
    // and demand the documented dotted key resolves to it.  This is the
    // regression net for the underscore-flattening lookup bug PR 3 fixed.
    const char* old = std::getenv(k.env.c_str());
    const std::string saved = old != nullptr ? old : "";
    ASSERT_EQ(setenv(k.env.c_str(), "probe-value", 1), 0);
    util::config cfg;
    cfg.load_environment();
    EXPECT_TRUE(cfg.contains(k.key))
        << k.env << " did not surface as config key \"" << k.key << "\"";
    EXPECT_EQ(cfg.get_string(k.key, ""), "probe-value") << k.key;
    if (old != nullptr) {
      setenv(k.env.c_str(), saved.c_str(), 1);
    } else {
      unsetenv(k.env.c_str());
    }
  }
}

TEST(Docs, NoUndocumentedKnobTokensInCountersDoc) {
  const std::string doc = read_doc("docs/counters.md");
  std::set<std::string> known;
  for (const auto& k : util::config::known_knobs()) known.insert(k.env);
  // Bench/test-harness variables documented for completeness but resolved
  // by the bench drivers and launchers, not by util::config.
  for (const char* extra :
       {"PX_BENCH_SMOKE", "PX_BENCH_NET", "PX_BENCH_DIST"}) {
    known.insert(extra);
  }

  const std::regex env_re("PX_[A-Z0-9_]+");
  std::set<std::string> unknown;
  for (auto it = std::sregex_iterator(doc.begin(), doc.end(), env_re);
       it != std::sregex_iterator(); ++it) {
    const std::string tok = it->str();
    if (known.count(tok) == 0) unknown.insert(tok);
  }
  EXPECT_TRUE(unknown.empty())
      << "docs/counters.md mentions PX_* variables the runtime does not "
         "declare in util::config::known_knobs():\n  "
      << [&] {
           std::string out;
           for (const auto& u : unknown) out += u + "\n  ";
           return out;
         }();
}

// The reference pages exist and README links into each of them.
TEST(Docs, ReferenceTreeExistsAndIsLinkedFromReadme) {
  const std::string readme = read_doc("README.md");
  for (const char* page :
       {"docs/architecture.md", "docs/agas.md", "docs/wire-protocol.md",
        "docs/counters.md", "docs/metrics.md", "docs/resilience.md"}) {
    EXPECT_FALSE(read_doc(page).empty()) << page;
    EXPECT_NE(readme.find(page), std::string::npos)
        << "README.md does not link " << page;
  }
}

}  // namespace
