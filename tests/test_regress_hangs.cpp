// Regression stress tests for the boot-time hangs: lost wakeups between
// enqueue and the idle sleep path, suspend-hook vs. cross-thread resume
// races, and the runtime quiescence/fabric-drain fixed point.  Each test is
// a tightened loop around one of the originally-hanging scenarios, run with
// workers_per_locality >= 2 so cross-worker wakeups actually occur.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/action.hpp"
#include "core/runtime.hpp"
#include "lco/lco.hpp"
#include "threads/scheduler.hpp"

namespace {

using namespace px;

std::atomic<int> g_hits{0};

void bump_hits(int n) { g_hits.fetch_add(n, std::memory_order_relaxed); }

int which_locality_plus(int i) {
  return static_cast<int>(core::this_locality()->id()) + i;
}

// Repeated nested fan-out: the scenario behind Scheduler.NestedSpawnFanOut.
// Each round re-crosses the worker sleep/wake boundary, so a lost wakeup
// shows up as a timeout here long before it would in one big tree.
TEST(RegressHangs, RepeatedNestedFanOut) {
  threads::scheduler sched(threads::scheduler_params{.workers = 4});
  sched.start();
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> hits{0};
    std::function<void(int)> node = [&](int depth) {
      if (depth == 0) {
        hits.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      sched.spawn([&, depth] { node(depth - 1); });
      sched.spawn([&, depth] { node(depth - 1); });
    };
    sched.spawn([&] { node(6); });
    sched.wait_quiescent();
    ASSERT_EQ(hits.load(), 64) << "round " << round;
  }
  sched.stop();
}

// Suspend/resume ping-pong between a ParalleX thread and an external OS
// thread; exercises the two-phase suspend hook against immediate wakeups.
TEST(RegressHangs, SuspendResumeStorm) {
  threads::scheduler sched(threads::scheduler_params{.workers = 2});
  sched.start();
  constexpr int kThreads = 64;
  constexpr int kRounds = 50;
  std::atomic<int> completions{0};
  for (int i = 0; i < kThreads; ++i) {
    sched.spawn([&] {
      for (int r = 0; r < kRounds; ++r) {
        // Hook resumes immediately: maximal pressure on the window between
        // parking and the cross-thread wake.
        threads::scheduler::suspend(
            [](threads::thread_descriptor* td, void*) {
              td->owner->resume(td);
            },
            nullptr);
      }
      completions.fetch_add(1, std::memory_order_relaxed);
    });
  }
  sched.wait_quiescent();
  EXPECT_EQ(completions.load(), kThreads);
  sched.stop();
}

// Future handoff between ParalleX threads, repeated: the scenario behind
// LcoOnScheduler.FutureDeliversValueToDepletedThread.
TEST(RegressHangs, FutureHandoffStorm) {
  threads::scheduler sched(threads::scheduler_params{.workers = 2});
  sched.start();
  for (int round = 0; round < 200; ++round) {
    lco::promise<int> prom;
    auto fut = prom.get_future();
    std::atomic<int> got{0};
    sched.spawn([&, fut] { got.store(fut.get()); });
    sched.spawn([&, prom]() mutable { prom.set_value(round + 1); });
    sched.wait_quiescent();
    ASSERT_EQ(got.load(), round + 1) << "round " << round;
  }
  sched.stop();
}

// Cross-locality apply storm with multi-worker localities: the scenario
// behind Runtime.ApplyRunsOnTargetLocality, scaled up so the quiescence /
// fabric-drain fixed point is probed repeatedly while parcels are in
// flight.
TEST(RegressHangs, CrossLocalityApplyStorm) {
  core::runtime_params params;
  params.localities = 4;
  params.workers_per_locality = 2;
  params.fabric.base_latency_ns = 500;
  params.fabric.jitter_ns = 2000;  // force reordering
  core::runtime rt(params);
  g_hits.store(0);
  rt.run([&] {
    for (int wave = 0; wave < 8; ++wave) {
      for (int i = 0; i < 4; ++i) {
        core::apply<&bump_hits>(rt.locality_gid(i), 1);
      }
    }
  });
  EXPECT_EQ(g_hits.load(), 32);
}

// Suspended threads woken from a *different* locality's worker (via future
// continuations riding continuation parcels).
TEST(RegressHangs, RemoteFutureWakeups) {
  core::runtime_params params;
  params.localities = 2;
  params.workers_per_locality = 2;
  params.fabric.base_latency_ns = 1000;
  core::runtime rt(params);
  std::atomic<int> sum{0};
  rt.run([&] {
    std::vector<lco::future<int>> futs;
    for (int i = 0; i < 32; ++i) {
      futs.push_back(core::async<&which_locality_plus>(
          rt.locality_gid(i % 2), i));
    }
    for (auto& f : futs) sum.fetch_add(f.get());
  });
  // sum of (locality + i) for i in 0..31 with locality = i % 2.
  int expect = 0;
  for (int i = 0; i < 32; ++i) expect += (i % 2) + i;
  EXPECT_EQ(sum.load(), expect);
}

}  // namespace
