// Telemetry plane (src/introspect/stats.hpp): collector tick/ring/drop
// semantics, histogram counters and quantile-addressed queries, the
// px.stats_dump / px.stats_pull control actions, the jsonl shard format —
// single-process and across real tcp/shm processes.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/action.hpp"
#include "core/runtime.hpp"
#include "distributed_helpers.hpp"
#include "introspect/query.hpp"
#include "introspect/stats.hpp"
#include "parcel/action_registry.hpp"
#include "parcel/parcel.hpp"
#include "threads/scheduler.hpp"
#include "util/serialize.hpp"

namespace {

using namespace px;
using core::runtime;
using core::runtime_params;

std::uint64_t stats_ping(std::uint64_t x) { return x + 1; }
PX_REGISTER_ACTION(stats_ping)

// ------------------------------------------------------------ shard reader

// Minimal C++ twin of tools/px_stats.py's parser: splits a jsonl shard
// into its header line and series lines, with just enough field plucking
// to verify the contract the Python side relies on.
struct parsed_shard {
  std::string header;
  std::vector<std::string> series;
};

bool read_shard(const std::string& path, parsed_shard& out) {
  std::ifstream f(path);
  if (!f.is_open()) return false;
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    if (line.find("\"kind\":\"header\"") != std::string::npos) {
      if (!out.header.empty()) return false;  // duplicate header
      out.header = line;
    } else if (line.find("\"kind\":\"series\"") != std::string::npos) {
      if (out.header.empty()) return false;  // series before header
      out.series.push_back(line);
    } else {
      return false;  // unknown line kind
    }
  }
  return !out.header.empty();
}

bool has_series(const parsed_shard& s, const std::string& series_path) {
  for (const auto& line : s.series) {
    if (line.find("\"path\":\"" + series_path + "\"") != std::string::npos) {
      return true;
    }
  }
  return false;
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

std::string fresh_dir(const std::string& tag) {
  const std::string dir =
      testing::TempDir() + "/px_stats_" + tag + "_" + std::to_string(::getpid());
  if (::mkdir(dir.c_str(), 0755) != 0) {
    EXPECT_EQ(errno, EEXIST) << "mkdir " << dir;
    for (int r = 0; r < 4; ++r) {
      std::remove((dir + "/px_stats." + std::to_string(r) + ".jsonl").c_str());
    }
  }
  return dir;
}

// --------------------------------------------------------------- collector

TEST(Stats, CollectorTickRingBoundAndDropSemantics) {
  runtime rt;  // sim, stats off: the runtime's own collector stays dormant
  introspect::stats_params prm;
  prm.enabled = true;
  prm.ring_points = 4;
  introspect::stats_collector col(rt.introspection(), prm);

  constexpr int kTicks = 10;
  for (int i = 0; i < kTicks; ++i) col.tick_now();
  EXPECT_EQ(col.ticks(), static_cast<std::uint64_t>(kTicks));

  // The ring keeps the newest `ring_points` points, oldest first, with
  // monotone timestamps; the overflow is counted, not blocked on.
  const auto win = col.window("runtime/loc0/parcels/sent");
  ASSERT_EQ(win.size(), 4u);
  for (std::size_t i = 1; i < win.size(); ++i) {
    EXPECT_GT(win[i].ts_ns, win[i - 1].ts_ns);
  }
  const auto last = col.latest("runtime/loc0/parcels/sent");
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->ts_ns, win.back().ts_ns);
  EXPECT_GT(col.dropped_points(), 0u);

  // Unknown series: empty window, no invented points.
  EXPECT_TRUE(col.window("runtime/loc0/no/such/series").empty());
  EXPECT_FALSE(col.latest("runtime/loc0/no/such/series").has_value());

  // Rate over the retained window: ticks are wall-clock ordered, so a
  // monotone counter yields a finite non-negative rate.
  rt.run([&] {
    for (int i = 0; i < 32; ++i) core::this_locality()->spawn([] {});
  });
  col.tick_now();
  const auto rate = col.rate_per_sec("runtime/loc0/sched/spawned");
  ASSERT_TRUE(rate.has_value());
  EXPECT_GE(*rate, 0.0);
  rt.stop();
}

TEST(Stats, ArmDisarmDrivesTheGlobalFlagAndSampler) {
  runtime rt;
  introspect::stats_params prm;
  prm.enabled = true;
  prm.interval_us = 1000;
  introspect::stats_collector col(rt.introspection(), prm);

  ASSERT_FALSE(introspect::stats_armed());
  col.arm();
  EXPECT_TRUE(introspect::stats_armed());
  // The sampler thread ticks on its own (t=0 tick plus periodic ones).
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(2);
  while (col.ticks() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(col.ticks(), 3u);
  col.disarm();
  EXPECT_FALSE(introspect::stats_armed());
  const std::uint64_t after = col.ticks();  // includes the closing tick
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(col.ticks(), after);  // sampler really joined

  // A disabled collector never arms the machine.
  introspect::stats_params off;
  off.enabled = false;
  introspect::stats_collector cold(rt.introspection(), off);
  cold.arm();
  EXPECT_FALSE(introspect::stats_armed());
  EXPECT_EQ(cold.ticks(), 0u);
  rt.stop();
}

// ----------------------------------------------- histogram counters + query

TEST(Stats, HistogramCountersSampleAndAnswerQuantiles) {
  const std::string dir = fresh_dir("hist");
  runtime_params prm;
  prm.localities = 2;
  prm.stats = 1;
  prm.stats_interval_us = 2000;
  prm.stats_dir = dir;
  runtime rt(prm);
  rt.run([&] {
    for (int i = 0; i < 50; ++i) {
      auto fut = core::async<&stats_ping>(rt.locality_gid(1),
                                          static_cast<std::uint64_t>(i));
      EXPECT_EQ(fut.get(), static_cast<std::uint64_t>(i) + 1);
    }
  });

  // The dispatch-latency histogram is a first-class registry counter:
  // read() reports its population, read_quantile its distribution.
  const auto pop =
      rt.introspection().read("runtime/loc1/parcels/hist_dispatch_ns");
  ASSERT_TRUE(pop.has_value());
  EXPECT_GE(*pop, 50u);
  const auto p50 = rt.introspection().read_quantile(
      "runtime/loc1/parcels/hist_dispatch_ns", 0.5);
  ASSERT_TRUE(p50.has_value());
  EXPECT_GT(*p50, 0u);
  // Scheduler run-time histograms populated too.
  EXPECT_GT(rt.introspection().read("runtime/loc0/sched/hist_run_ns").value(),
            0u);
  // Scalar counters are not quantile-addressable.
  EXPECT_FALSE(rt.introspection()
                   .read_quantile("runtime/loc0/parcels/sent", 0.5)
                   .has_value());

  // Cross-locality quantile query over the px.query_hist action.
  rt.run([&] {
    auto fut = introspect::query_hist(
        *core::this_locality(), "runtime/loc1/parcels/hist_dispatch_ns", 0.99);
    ASSERT_TRUE(fut.has_value());
    EXPECT_GT(fut->get(), 0u);
    // A scalar counter answers the sentinel instead of wedging the asker.
    auto scalar = introspect::query_hist(
        *core::this_locality(), "runtime/loc1/parcels/sent", 0.99);
    ASSERT_TRUE(scalar.has_value());
    EXPECT_EQ(scalar->get(), introspect::no_such_counter);
  });

  // The sampler expanded the histogram into per-quantile series.
  rt.telemetry().tick_now();
  EXPECT_FALSE(
      rt.telemetry()
          .window("runtime/loc1/parcels/hist_dispatch_ns/p99")
          .empty());
  rt.stop();

  // Shutdown drained a shard whose series include the quantile expansion.
  parsed_shard shard;
  ASSERT_TRUE(read_shard(dir + "/px_stats.0.jsonl", shard));
  EXPECT_NE(shard.header.find("\"rank\":0"), std::string::npos);
  EXPECT_NE(shard.header.find("\"version\":1"), std::string::npos);
  EXPECT_FALSE(shard.series.empty());
  EXPECT_TRUE(has_series(shard, "runtime/loc0/parcels/delivered"));
  EXPECT_TRUE(has_series(shard, "runtime/loc1/parcels/hist_dispatch_ns/p99"));
}

// ------------------------------------------------------- dump/pull actions

TEST(Stats, StatsDumpActionWritesShardMidRun) {
  const std::string dir = fresh_dir("dump");
  runtime_params prm;
  prm.localities = 2;
  prm.stats = 1;
  prm.stats_dir = dir;
  runtime rt(prm);
  const std::string shard_path = dir + "/px_stats.0.jsonl";

  rt.run([&] {
    for (int i = 0; i < 10; ++i) {
      core::async<&stats_ping>(rt.locality_gid(1), 1ull).get();
    }
    ASSERT_FALSE(file_exists(shard_path));
    // Trigger the dump the way a remote rank would: a parcel addressed to
    // the eagerly-registered px.stats_dump action (no-arg typed action).
    const auto id =
        parcel::action_registry::global().find("px.stats_dump");
    ASSERT_TRUE(id.has_value());
    parcel::parcel p;
    p.destination = rt.locality_gid(0);
    p.action = *id;
    p.arguments = util::to_bytes(std::tuple<>{});
    core::this_locality()->send(std::move(p));
    // Yield, don't sleep: the dump fiber needs this same worker.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(2);
    while (!file_exists(shard_path) &&
           std::chrono::steady_clock::now() < deadline) {
      threads::scheduler::yield();
    }
    EXPECT_TRUE(file_exists(shard_path));
  });

  parsed_shard shard;
  ASSERT_TRUE(read_shard(shard_path, shard));
  EXPECT_TRUE(has_series(shard, "runtime/loc0/parcels/delivered"));
  rt.stop();
}

TEST(Stats, StatsPullReturnsSerializedSeries) {
  runtime_params prm;
  prm.localities = 2;
  prm.stats = 1;
  runtime rt(prm);
  rt.run([&] {
    core::async<&stats_ping>(rt.locality_gid(1), 1ull).get();
    const std::string body =
        introspect::stats_pull(*core::this_locality(), 1).get();
    EXPECT_NE(body.find("\"kind\":\"header\""), std::string::npos);
    EXPECT_NE(body.find("\"kind\":\"series\""), std::string::npos);
    EXPECT_NE(body.find("runtime/loc0/parcels/delivered"), std::string::npos);
  });
  rt.stop();
}

// ------------------------------------------------------------ disabled mode

TEST(Stats, DisabledModeWritesNothing) {
  const std::string dir = fresh_dir("off");
  runtime_params prm;
  prm.localities = 2;
  prm.stats = 0;
  prm.stats_dir = dir;
  runtime rt(prm);
  rt.run([&] {
    core::async<&stats_ping>(rt.locality_gid(1), 1ull).get();
    EXPECT_FALSE(introspect::stats_armed());
    // Mid-run dump is a no-op, not a crash or an empty shard.
    rt.dump_stats();
    EXPECT_EQ(rt.stats_serialize(), "");
  });
  EXPECT_EQ(rt.telemetry().ticks(), 0u);
  rt.stop();
  EXPECT_FALSE(file_exists(dir + "/px_stats.0.jsonl"));
  // Instrumented histograms never observed anything: the one-relaxed-load
  // gate kept every site cold.
  EXPECT_EQ(rt.introspection()
                .read("runtime/loc0/parcels/hist_dispatch_ns")
                .value(),
            0u);
}

// ---------------------------------------------- end-to-end (distributed)

// Rank body shared by the tcp and shm cases: rank 0 drives pings, pulls
// rank 1's series over px.stats_pull, and queries a remote histogram
// quantile; every rank's shutdown then writes a jsonl shard the parent
// verifies (the tools/px_stats.py input contract).
void distributed_stats_rank_body() {
  runtime rt;
  rt.run([&] {
    if (rt.rank() != 0) return;
    for (int i = 0; i < 40; ++i) {
      auto fut = core::async<&stats_ping>(rt.locality_gid(1),
                                          static_cast<std::uint64_t>(i));
      EXPECT_EQ(fut.get(), static_cast<std::uint64_t>(i) + 1);
    }
    const std::string body =
        introspect::stats_pull(*core::this_locality(), 1).get();
    EXPECT_NE(body.find("\"rank\":1"), std::string::npos);
    EXPECT_NE(body.find("\"kind\":\"series\""), std::string::npos);
    auto q = introspect::query_hist(
        *core::this_locality(), "runtime/loc1/parcels/hist_dispatch_ns", 0.99);
    ASSERT_TRUE(q.has_value());
    EXPECT_GT(q->get(), 0u);
  });
  rt.stop();
}

void distributed_stats_parent_checks(const std::string& dir) {
  parsed_shard s0, s1;
  ASSERT_TRUE(read_shard(dir + "/px_stats.0.jsonl", s0));
  ASSERT_TRUE(read_shard(dir + "/px_stats.1.jsonl", s1));
  EXPECT_NE(s0.header.find("\"rank\":0"), std::string::npos);
  EXPECT_NE(s1.header.find("\"rank\":1"), std::string::npos);
  // Rank 0 is the clock reference; both headers carry the offset field
  // px_stats.py merges timelines with.
  EXPECT_NE(s0.header.find("\"clock_offset_ns\":0,"), std::string::npos);
  EXPECT_NE(s1.header.find("\"clock_offset_ns\":"), std::string::npos);
  // Each rank samples its own locality's counters (loc1 rows exist on
  // rank 0's shard too — schema parity — but only as remote names, which
  // the sampler skips).
  EXPECT_TRUE(has_series(s0, "runtime/loc0/parcels/sent"));
  EXPECT_FALSE(has_series(s0, "runtime/loc1/parcels/sent"));
  EXPECT_TRUE(has_series(s1, "runtime/loc1/parcels/delivered"));
  EXPECT_TRUE(has_series(s1, "runtime/loc1/parcels/hist_dispatch_ns/p99"));
}

TEST(Distributed, StatsShardsOverTcp) {
  if (px::test::is_rank_child()) {
    distributed_stats_rank_body();
    return;
  }
  const std::string dir = fresh_dir("tcp");
  ::setenv("PX_STATS", "1", 1);
  ::setenv("PX_STATS_DIR", dir.c_str(), 1);
  ::setenv("PX_STATS_INTERVAL_US", "2000", 1);
  px::test::run_ranks(2, "Distributed.StatsShardsOverTcp", "tcp");
  ::unsetenv("PX_STATS");
  ::unsetenv("PX_STATS_DIR");
  ::unsetenv("PX_STATS_INTERVAL_US");
  distributed_stats_parent_checks(dir);
}

TEST(Distributed, StatsShardsOverShm) {
  if (px::test::is_rank_child()) {
    distributed_stats_rank_body();
    return;
  }
  const std::string dir = fresh_dir("shm");
  ::setenv("PX_STATS", "1", 1);
  ::setenv("PX_STATS_DIR", dir.c_str(), 1);
  ::setenv("PX_STATS_INTERVAL_US", "2000", 1);
  px::test::run_ranks(2, "Distributed.StatsShardsOverShm", "shm");
  ::unsetenv("PX_STATS");
  ::unsetenv("PX_STATS_DIR");
  ::unsetenv("PX_STATS_INTERVAL_US");
  distributed_stats_parent_checks(dir);
}

}  // namespace
