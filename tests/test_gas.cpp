// Unit tests: gids, the AGAS directory (resolution, caching, migration),
// and the hierarchical name service.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gas/agas.hpp"
#include "gas/gid.hpp"
#include "gas/name_service.hpp"
#include "util/rng.hpp"

namespace {

using namespace px::gas;

// -------------------------------------------------------------------- gid

TEST(Gid, EncodesKindHomeSequence) {
  const gid g = gid::make(gid_kind::lco, 137, 0x123456789abull);
  EXPECT_EQ(g.kind(), gid_kind::lco);
  EXPECT_EQ(g.home(), 137u);
  EXPECT_EQ(g.sequence(), 0x123456789abull);
  EXPECT_TRUE(g.valid());
  EXPECT_FALSE(gid{}.valid());
}

TEST(Gid, RoundTripsThroughBits) {
  const gid g = gid::make(gid_kind::process, 4095, (1ull << 48) - 1);
  const gid back = gid::from_bits(g.bits());
  EXPECT_EQ(g, back);
  EXPECT_EQ(back.home(), 4095u);
  EXPECT_EQ(back.sequence(), (1ull << 48) - 1);
}

TEST(Gid, ToStringNamesKind) {
  const gid g = gid::make(gid_kind::hardware, 3, 9);
  EXPECT_NE(g.to_string().find("hardware"), std::string::npos);
  EXPECT_NE(g.to_string().find("L3"), std::string::npos);
}

class GidProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GidProperty, EncodeDecodeIdentity) {
  px::util::xoshiro256 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const auto kind = static_cast<gid_kind>(rng.below(5));
    const auto home = static_cast<locality_id>(rng.below(4096));
    const std::uint64_t seq = rng.below(1ull << 48);
    const gid g = gid::make(kind, home, seq);
    EXPECT_EQ(g.kind(), kind);
    EXPECT_EQ(g.home(), home);
    EXPECT_EQ(g.sequence(), seq);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GidProperty, ::testing::Values(11, 22, 33));

// Regression: `make` used to mask home & 0xfff silently, so locality 4096
// aliased locality 0 — its gids would resolve against the wrong directory
// shard.  Out-of-range fields are now a hard assert, not a wrap.
TEST(GidDeathTest, MakeRejectsOutOfRangeHome) {
  EXPECT_DEATH(gid::make(gid_kind::data, 4096, 1),
               "home locality out of range");
  EXPECT_DEATH(gid::make(gid_kind::data, 0xffffffffu, 1),
               "home locality out of range");
}

TEST(GidDeathTest, MakeRejectsOutOfRangeSequence) {
  EXPECT_DEATH(gid::make(gid_kind::data, 0, 1ull << 48),
               "sequence out of range");
}

TEST(GidDeathTest, AllocateRejectsOutOfRangeHome) {
  agas a(4);
  EXPECT_DEATH(a.allocate(gid_kind::data, 4), "assertion failed");
}

// ------------------------------------------------------------------- agas

TEST(Agas, AllocateYieldsUniqueGids) {
  agas a(4);
  const gid g1 = a.allocate(gid_kind::data, 2);
  const gid g2 = a.allocate(gid_kind::data, 2);
  EXPECT_NE(g1, g2);
  EXPECT_EQ(g1.home(), 2u);
}

TEST(Agas, BindResolveFromEveryLocality) {
  agas a(4);
  const gid g = a.allocate(gid_kind::data, 1);
  a.bind(g, 1);
  for (locality_id from = 0; from < 4; ++from) {
    EXPECT_EQ(a.resolve(from, g).value(), 1u);
  }
}

TEST(Agas, ResolveUnboundReturnsNullopt) {
  agas a(2);
  const gid g = a.allocate(gid_kind::data, 0);
  EXPECT_FALSE(a.resolve(1, g).has_value());
}

TEST(Agas, CachesHitAfterFirstResolve) {
  agas a(2);
  const gid g = a.allocate(gid_kind::data, 0);
  a.bind(g, 0);
  (void)a.resolve(1, g);
  const auto misses_before = a.stats().cache_misses;
  (void)a.resolve(1, g);
  (void)a.resolve(1, g);
  EXPECT_EQ(a.stats().cache_misses, misses_before);
  EXPECT_GE(a.stats().cache_hits, 2u);
}

TEST(Agas, MigrationLeavesCachesStaleUntilAuthoritative) {
  agas a(3);
  const gid g = a.allocate(gid_kind::data, 0);
  a.bind(g, 0);
  ASSERT_EQ(a.resolve(2, g).value(), 0u);  // warm cache at 2
  a.migrate(g, 1);
  // Cached (stale) view persists...
  EXPECT_EQ(a.resolve(2, g).value(), 0u);
  // ...until an authoritative resolve refreshes it.
  EXPECT_EQ(a.resolve_authoritative(2, g).value(), 1u);
  EXPECT_EQ(a.resolve(2, g).value(), 1u);
  EXPECT_EQ(a.stats().migrations, 1u);
}

TEST(Agas, InvalidateCacheForcesDirectoryLookup) {
  agas a(2);
  const gid g = a.allocate(gid_kind::data, 0);
  a.bind(g, 0);
  (void)a.resolve(1, g);
  a.migrate(g, 1);
  a.invalidate_cache(1, g);
  EXPECT_EQ(a.resolve(1, g).value(), 1u);
}

TEST(Agas, UnbindRemovesEntry) {
  agas a(2);
  const gid g = a.allocate(gid_kind::data, 0);
  a.bind(g, 0);
  a.unbind(g);
  EXPECT_FALSE(a.resolve_authoritative(1, g).has_value());
}

// Property: concurrent resolve storm against migrations never yields a
// locality id outside the valid set, and authoritative resolves after the
// last migration converge.
TEST(Agas, ConcurrentResolveAndMigrateStaysConsistent) {
  constexpr std::size_t kLoc = 8;
  agas a(kLoc);
  const gid g = a.allocate(gid_kind::data, 0);
  a.bind(g, 0);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      while (!stop.load()) {
        auto owner = a.resolve(static_cast<locality_id>(t), g);
        ASSERT_TRUE(owner.has_value());
        ASSERT_LT(*owner, kLoc);
      }
    });
  }
  for (int i = 1; i <= 100; ++i) {
    a.migrate(g, static_cast<locality_id>(i % kLoc));
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(a.resolve_authoritative(0, g).value(), 100 % kLoc);
}

// Deterministic stats accounting: every resolve is exactly one hit or one
// miss, a stale-cache refresh is counted when an authoritative resolve
// overwrites an existing cache entry, and migrations count once each.
TEST(Agas, StatsAccountingIsExact) {
  agas a(2);
  const gid g = a.allocate(gid_kind::data, 0);
  a.bind(g, 0);
  EXPECT_EQ(a.stats().binds, 1u);

  (void)a.resolve(1, g);  // cold: miss, fresh cache insert
  (void)a.resolve(1, g);  // warm: hit
  a.migrate(g, 1);
  (void)a.resolve(1, g);                // stale hit (cache not coherent)
  (void)a.resolve_authoritative(1, g);  // miss + stale refresh
  (void)a.resolve(1, g);                // hit, now fresh

  const auto st = a.stats();
  EXPECT_EQ(st.cache_hits, 3u);
  EXPECT_EQ(st.cache_misses, 2u);
  EXPECT_EQ(st.stale_refreshes, 1u);
  EXPECT_EQ(st.migrations, 1u);
}

// Satellite: agas_stats under a migration storm — hits + misses must equal
// the total resolution attempts (no lost or double-counted accounting),
// and the migrator's repeated authoritative refreshes show up as stale
// refreshes.
TEST(Agas, StatsReconcileUnderMigrationStorm) {
  constexpr std::size_t kLoc = 8;
  constexpr int kReaders = 3;
  constexpr int kResolvesPer = 4000;
  constexpr int kMigrations = 300;
  agas a(kLoc);
  const gid g = a.allocate(gid_kind::data, 0);
  a.bind(g, 0);

  std::atomic<std::uint64_t> resolves{0}, auths{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kResolvesPer; ++i) {
        const auto owner = a.resolve(static_cast<locality_id>(t), g);
        ASSERT_TRUE(owner.has_value());
        ASSERT_LT(*owner, kLoc);
        resolves.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 1; i <= kMigrations; ++i) {
      a.migrate(g, static_cast<locality_id>(i % kLoc));
      const auto owner =
          a.resolve_authoritative(static_cast<locality_id>(kLoc - 1), g);
      ASSERT_TRUE(owner.has_value());
      auths.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (auto& t : threads) t.join();

  const auto st = a.stats();
  EXPECT_EQ(st.migrations, static_cast<std::uint64_t>(kMigrations));
  // Conservation: every attempt was classified exactly once.
  EXPECT_EQ(st.cache_hits + st.cache_misses,
            resolves.load() + auths.load());
  // The migrator refreshed its own warm cache kMigrations - 1 times at
  // minimum (the first authoritative resolve inserts fresh).
  EXPECT_GE(st.stale_refreshes,
            static_cast<std::uint64_t>(kMigrations - 1));
  EXPECT_GT(st.cache_hits, 0u);
  EXPECT_EQ(a.resolve_authoritative(0, g).value(), kMigrations % kLoc);
}

// ----------------------------------------------------------- name service

TEST(NameService, RegisterLookupUnregister) {
  name_service ns;
  const gid g = gid::make(gid_kind::data, 0, 1);
  EXPECT_TRUE(ns.register_name("app/graph/root", g));
  EXPECT_EQ(ns.lookup("app/graph/root").value(), g);
  EXPECT_FALSE(ns.register_name("app/graph/root", g));  // taken
  EXPECT_TRUE(ns.unregister_name("app/graph/root"));
  EXPECT_FALSE(ns.lookup("app/graph/root").has_value());
  EXPECT_FALSE(ns.unregister_name("app/graph/root"));
}

TEST(NameService, HierarchicalPrefixListing) {
  name_service ns;
  const gid g = gid::make(gid_kind::data, 0, 1);
  ns.register_name("app/graph/a", g);
  ns.register_name("app/graph/b", g);
  ns.register_name("app/grid/c", g);
  ns.register_name("app2/x", g);
  auto under_graph = ns.list("app/graph");
  EXPECT_EQ(under_graph.size(), 2u);
  auto under_app = ns.list("app");
  EXPECT_EQ(under_app.size(), 3u);
  // Prefix must respect segment boundaries: "app/gr" matches nothing.
  EXPECT_TRUE(ns.list("app/gr").empty());
}

// Satellite: concurrent register/lookup/list must neither lose bindings
// nor hand out torn state (the introspection registry leans on this —
// counter registration races live lookup/list traffic).
TEST(NameService, ConcurrentRegisterLookupListStaysConsistent) {
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 250;
  name_service ns;
  std::atomic<bool> stop{false};
  std::atomic<int> registered{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        const gid g = gid::make(gid_kind::data, 0,
                                static_cast<std::uint64_t>(w) * kPerWriter +
                                    i + 1);
        const std::string path =
            "app/w" + std::to_string(w) + "/n" + std::to_string(i);
        ASSERT_TRUE(ns.register_name(path, g));
        registered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      px::util::xoshiro256 rng(91 + r);
      while (!stop.load(std::memory_order_acquire)) {
        const int w = static_cast<int>(rng.below(kWriters));
        const int i = static_cast<int>(rng.below(kPerWriter));
        const auto hit = ns.lookup("app/w" + std::to_string(w) + "/n" +
                                   std::to_string(i));
        if (hit.has_value()) {
          ASSERT_EQ(hit->sequence(),
                    static_cast<std::uint64_t>(w) * kPerWriter + i + 1);
        }
        // A prefix listing taken mid-storm is a valid snapshot: every
        // entry it returns is fully formed and within bounds.
        const auto listing = ns.list("app/w" + std::to_string(w));
        ASSERT_LE(listing.size(), static_cast<std::size_t>(kPerWriter));
        for (const auto& [path, g] : listing) {
          ASSERT_TRUE(g.valid()) << path;
        }
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_release);
  for (std::size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(registered.load(), kWriters * kPerWriter);
  EXPECT_EQ(ns.size(), static_cast<std::size_t>(kWriters * kPerWriter));
  EXPECT_EQ(ns.list("app").size(),
            static_cast<std::size_t>(kWriters * kPerWriter));
}

TEST(NameService, RejectsMalformedPaths) {
  name_service ns;
  const gid g = gid::make(gid_kind::data, 0, 1);
  EXPECT_FALSE(ns.register_name("", g));
  EXPECT_FALSE(ns.register_name("/lead", g));
  EXPECT_FALSE(ns.register_name("trail/", g));
  EXPECT_FALSE(ns.register_name("a//b", g));
  EXPECT_FALSE(ns.register_name("ok", gid{}));  // invalid gid
  EXPECT_EQ(ns.size(), 0u);
}

// Forwarding-cache hint surface (distributed AGAS, PR 5): cache-only
// lookups never touch the directory, note_owner installs/corrects hints,
// and invalidation clears them.
TEST(Agas, CachedAndNoteOwnerManageForwardingHints) {
  agas g(4);
  const gid id = g.allocate(gid_kind::data, 0);
  // No directory entry needed: hints live purely in the asking cache.
  EXPECT_FALSE(g.cached(2, id).has_value());
  g.note_owner(2, id, 1);
  auto hint = g.cached(2, id);
  ASSERT_TRUE(hint.has_value());
  EXPECT_EQ(*hint, 1u);
  // Re-installing the identical value is convergence, not a correction:
  // the stale_refreshes counter must not move.
  const auto before = g.stats().stale_refreshes;
  g.note_owner(2, id, 1);
  EXPECT_EQ(g.stats().stale_refreshes, before);
  // Overwriting with a *different* owner counts as a stale refresh.
  g.note_owner(2, id, 3);
  EXPECT_EQ(g.stats().stale_refreshes, before + 1);
  hint = g.cached(2, id);
  ASSERT_TRUE(hint.has_value());
  EXPECT_EQ(*hint, 3u);
  // Hints are per asking locality.
  EXPECT_FALSE(g.cached(1, id).has_value());
  g.invalidate_cache(2, id);
  EXPECT_FALSE(g.cached(2, id).has_value());
}

TEST(Agas, CachedLookupCountsAsHit) {
  agas g(2);
  const gid id = g.allocate(gid_kind::data, 0);
  g.note_owner(1, id, 0);
  const auto hits = g.stats().cache_hits;
  ASSERT_TRUE(g.cached(1, id).has_value());
  EXPECT_EQ(g.stats().cache_hits, hits + 1);
  // A miss is not an authoritative lookup: the miss counter must not move.
  const auto misses = g.stats().cache_misses;
  EXPECT_FALSE(g.cached(0, id).has_value());
  EXPECT_EQ(g.stats().cache_misses, misses);
}

}  // namespace
