// Helpers for multi-process (distributed tcp/shm) gtest cases.
//
// Pattern: a distributed test runs twice.  The *parent* invocation (no
// PX_NET_RANK in the environment) re-executes this very test binary once
// per rank, each child filtered to the same test with PX_NET_* set; the
// *child* invocation takes the other branch and runs the rank body, its
// gtest failures surfacing to the parent as a nonzero exit code.
//
//   TEST(Distributed, Pingpong2) {
//     if (px::test::is_rank_child()) { /* rank body, EXPECTs ok */ return; }
//     px::test::run_ranks(2, "Distributed.Pingpong2");
//   }
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "util/subproc.hpp"

namespace px::test {

inline bool is_rank_child() {
  return std::getenv("PX_NET_RANK") != nullptr;
}

// Spawns `nranks` copies of the current test binary filtered to
// `test_name` and expects every one to exit 0.  Children get 100 seconds —
// inside the parent's own 120s CTest timeout — so a wedged rank fails
// *this* test instead of wedging the suite.  `backend` picks the data
// plane the ranks talk over ("tcp" or "shm").
inline void run_ranks(int nranks, const std::string& test_name,
                      const std::string& backend = "tcp") {
  const int root_port = util::pick_free_tcp_port();
  const std::vector<std::string> argv = {
      util::self_exe_path(),
      "--gtest_filter=" + test_name,
      // A child must run even if the parent was invoked with a filter
      // that it would not match (e.g. ctest's exact-name invocation).
      "--gtest_also_run_disabled_tests",
  };
  std::vector<pid_t> pids;
  for (int r = 0; r < nranks; ++r) {
    pids.push_back(util::spawn_process(
        argv, util::net_rank_env(r, nranks, root_port, backend)));
  }
  for (int r = 0; r < nranks; ++r) {
    EXPECT_EQ(util::wait_exit(pids[r], 100'000), 0)
        << test_name << ": rank " << r << " of " << nranks
        << " failed (nonzero exit, signal, or timeout)";
  }
}

}  // namespace px::test
