// Integration tests: the ParalleX runtime end to end — localities, typed
// actions, parcels with continuations, AGAS migration with stale-cache
// forwarding, processes, and quiescence.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "core/action.hpp"
#include "core/process.hpp"
#include "core/runtime.hpp"

namespace {

using namespace px;
using core::runtime;
using core::runtime_params;

std::atomic<int> g_side_effect{0};

void bump(int amount) { g_side_effect.fetch_add(amount); }
PX_REGISTER_ACTION(bump)

int add(int a, int b) { return a + b; }
PX_REGISTER_ACTION(add)

int which_locality() {
  return static_cast<int>(core::this_locality()->id());
}
PX_REGISTER_ACTION(which_locality)

std::uint64_t fib(std::uint64_t n) {
  if (n < 2) return n;
  // Distribute the left branch to a pseudo-random locality; keep the right
  // branch local.  Classic message-driven recursive decomposition.
  core::locality* here = core::this_locality();
  runtime& rt = here->rt();
  const auto target = static_cast<gas::locality_id>(
      (n * 2654435761u) % rt.num_localities());
  auto left = core::async<&fib>(rt.locality_gid(target), n - 1);
  const std::uint64_t right = fib(n - 2);
  return left.get() + right;
}
PX_REGISTER_ACTION(fib)

runtime_params quick_params(std::size_t localities, unsigned workers = 2) {
  runtime_params p;
  p.localities = localities;
  p.workers_per_locality = workers;
  return p;
}

TEST(Runtime, StartsAndStopsCleanly) {
  runtime rt(quick_params(2));
  rt.start();
  rt.stop();
}

TEST(Runtime, RunExecutesRootAndQuiesces) {
  runtime rt(quick_params(2));
  std::atomic<bool> ran{false};
  rt.run([&] { ran.store(true); });
  EXPECT_TRUE(ran.load());
}

TEST(Runtime, ApplyRunsOnTargetLocality) {
  runtime rt(quick_params(4));
  g_side_effect.store(0);
  rt.run([&] {
    for (int i = 0; i < 4; ++i) {
      core::apply<&bump>(rt.locality_gid(i), 10);
    }
  });
  EXPECT_EQ(g_side_effect.load(), 40);
}

TEST(Runtime, AsyncReturnsRemoteResult) {
  runtime rt(quick_params(2));
  int result = 0;
  rt.run([&] {
    auto f = core::async<&add>(rt.locality_gid(1), 20, 22);
    result = f.get();
  });
  EXPECT_EQ(result, 42);
}

TEST(Runtime, AsyncLandsOnTheNamedLocality) {
  runtime rt(quick_params(4));
  std::vector<int> where(4, -1);
  rt.run([&] {
    for (int i = 0; i < 4; ++i) {
      where[i] = core::async<&which_locality>(rt.locality_gid(i)).get();
    }
  });
  EXPECT_EQ(where, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Runtime, DistributedFibonacci) {
  runtime rt(quick_params(4, 2));
  std::uint64_t result = 0;
  rt.run([&] {
    result = core::async<&fib>(rt.locality_gid(0), 16).get();
  });
  EXPECT_EQ(result, 987u);
}

TEST(Runtime, DistributedFibonacciWithLatency) {
  runtime_params p = quick_params(4, 2);
  p.fabric.base_latency_ns = 20'000;  // 20us per parcel hop
  runtime rt(p);
  std::uint64_t result = 0;
  rt.run([&] {
    result = core::async<&fib>(rt.locality_gid(0), 12).get();
  });
  EXPECT_EQ(result, 144u);
}

TEST(Runtime, LocalityGidsAreRegisteredNames) {
  runtime rt(quick_params(3));
  auto g0 = rt.names().lookup("hw/locality/0");
  auto g2 = rt.names().lookup("hw/locality/2");
  ASSERT_TRUE(g0.has_value());
  ASSERT_TRUE(g2.has_value());
  EXPECT_EQ(*g0, rt.locality_gid(0));
  EXPECT_EQ(*g2, rt.locality_gid(2));
  EXPECT_EQ(g0->kind(), gas::gid_kind::hardware);
}

// ------------------------------------------------------- object migration

struct counter_object {
  std::atomic<int> hits{0};
};

void hit_counter(std::uint64_t gid_bits) {
  auto* here = core::this_locality();
  auto obj = std::static_pointer_cast<counter_object>(
      here->get_object(gas::gid::from_bits(gid_bits)));
  ASSERT_NE(obj, nullptr);  // delivery path must have routed us correctly
  obj->hits.fetch_add(1);
}
PX_REGISTER_ACTION(hit_counter)

TEST(Runtime, ParcelsFollowMigratedObjects) {
  runtime rt(quick_params(3));
  rt.start();
  const gas::gid obj = rt.new_object<counter_object>(0);

  rt.run([&] { core::apply<&hit_counter>(obj, obj.bits()); });
  EXPECT_EQ(rt.get_local<counter_object>(0, obj)->hits.load(), 1);

  // Warm locality 1's AGAS cache, then migrate away and send again from
  // locality 1: the parcel lands on the stale owner and must be forwarded.
  rt.migrate_object<counter_object>(obj, 2);
  rt.run([&] { core::apply<&hit_counter>(obj, obj.bits()); });
  auto moved = rt.get_local<counter_object>(2, obj);
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved->hits.load(), 2);
  EXPECT_FALSE(rt.at(0).has_object(obj));
}

TEST(Runtime, StaleCacheForwardingDelivers) {
  runtime rt(quick_params(3));
  rt.start();
  const gas::gid obj = rt.new_object<counter_object>(1);

  // Populate locality 0's cache with owner=1.
  rt.run([&] { core::apply<&hit_counter>(obj, obj.bits()); });
  // Move to 2; locality 0 still believes 1.
  rt.migrate_object<counter_object>(obj, 2);
  auto cached = rt.gas().resolve(0, obj);
  ASSERT_TRUE(cached.has_value());

  rt.run([&] { core::apply<&hit_counter>(obj, obj.bits()); });
  EXPECT_EQ(rt.get_local<counter_object>(2, obj)->hits.load(), 2);
  // The forward refreshed the authoritative route.
  EXPECT_EQ(rt.gas().resolve_authoritative(0, obj).value(), 2u);
}

// ---------------------------------------------------------------- process

TEST(Process, TerminationDetectsNestedChildren) {
  runtime rt(quick_params(3));
  rt.start();
  auto proc = core::create_process(rt, {0, 1, 2});
  std::atomic<int> work{0};

  rt.run([&] {
    for (int i = 0; i < 3; ++i) {
      proc->spawn_any([&, proc] {
        work.fetch_add(1);
        // Nested (grandchild) work, spawned from inside a child.
        proc->spawn_any([&] { work.fetch_add(10); });
      });
    }
    proc->seal();
    proc->terminated().wait();
    EXPECT_EQ(work.load(), 33);
  });
  EXPECT_EQ(proc->children_spawned(), 6u);
}

TEST(Process, IsAddressableInTheGlobalNamespace) {
  runtime rt(quick_params(2));
  rt.start();
  auto proc = core::create_process(rt, {0, 1});
  EXPECT_EQ(proc->id().kind(), gas::gid_kind::process);
  auto obj = rt.at(0).get_object(proc->id());
  EXPECT_EQ(obj.get(), proc.get());
  proc->seal();
  proc->terminated().wait();
}

}  // namespace
